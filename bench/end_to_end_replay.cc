// End-to-end workload replay: the first bench that measures the *whole*
// pipeline — normalize → plan-cache → parse → optimize → evaluate — the
// way a served system pays for it, rather than operator microcosts. The
// artifact phase replays a committed `.gqlw` workload twice through one
// engine session and asserts (a) zero errors and every pinned expected
// cardinality, (b) plan-cache hits > 0 (pass 2 must be all hits), and
// (c) identical cardinalities across passes. It then prints the replay
// report as compare.py-compatible JSON (see bench/compare.py).
//
// Flags (besides google-benchmark's):
//   --verify_only        artifact assertions only (CI smoke)
//   --workload <file>    replay a different .gqlw file
//   --json <file>        also write the JSON report to <file>
//   --passes <n>         replay passes in the artifact phase (default 2)

#include <cstring>
#include <fstream>
#include <string>

#include "bench_util.h"
#include "engine/replay.h"

namespace pathalg {
namespace bench {
namespace {

#ifndef PATHALG_WORKLOAD_DIR
#define PATHALG_WORKLOAD_DIR "bench/workloads"
#endif

std::string g_workload_path = PATHALG_WORKLOAD_DIR "/social_mixed.gqlw";
std::string g_json_path;
size_t g_passes = 2;

engine::Workload LoadWorkloadOrDie(const std::string& path) {
  Result<engine::Workload> w = engine::LoadWorkloadFile(path);
  if (!w.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", w.status().ToString().c_str());
    std::abort();
  }
  return std::move(w).value();
}

void PrintArtifact() {
  PrintHeader("end-to-end workload replay (engine::ReplayWorkload)");
  std::printf("workload: %s\n", g_workload_path.c_str());
  engine::Workload w = LoadWorkloadOrDie(g_workload_path);
  Check(!w.entries.empty(), "workload has no queries");

  Result<PropertyGraph> g = engine::BuildWorkloadGraph(w.graph_spec);
  Check(g.ok(), "workload graph spec failed to build");
  engine::QueryEngine eng(std::move(g).value());
  std::printf("graph: %s (%zu nodes, %zu edges)\n\n",
              w.graph_spec.empty() ? "figure1" : w.graph_spec.c_str(),
              eng.graph().num_nodes(), eng.graph().num_edges());

  engine::ReplayOptions opts;
  opts.passes = g_passes;
  Result<engine::ReplayReport> report = engine::ReplayWorkload(eng, w, opts);
  Check(report.ok(), "replay failed to run");
  std::printf("%s\n", engine::ReplayReportToTable(*report).c_str());

  Check(report->errors == 0, "replay produced query errors");
  Check(report->expect_failures == 0,
        "expected-cardinality or cross-pass stability check failed");
  Check(report->cache_hits > 0, "plan cache produced no hits");
  // Pass 2 replays the identical workload: every run must hit the cache
  // (distinct normalized queries <= cache capacity here).
  size_t runs_per_pass = 0;
  for (const engine::WorkloadEntry& e : w.entries) runs_per_pass += e.repeat;
  Check(report->cache_misses < runs_per_pass + 1,
        "pass 2 was not served from the plan cache");

  std::string json = engine::ReplayReportToJson(*report);
  std::printf("-- JSON report --------------------------------------\n%s",
              json.c_str());
  if (!g_json_path.empty()) {
    std::ofstream out(g_json_path);
    out << json;
    std::printf("(wrote %s)\n", g_json_path.c_str());
  }
}

/// Strips "--flag value" pairs that google-benchmark would reject.
/// A flag missing its value is a hard error here — leaving it in argv
/// would surface as a confusing google-benchmark diagnostic instead.
void StripFlags(int* argc, char** argv) {
  for (int i = 1; i < *argc;) {
    auto take_value = [&](std::string* dst) {
      if (i + 1 >= *argc) {
        std::fprintf(stderr, "FATAL: %s needs a value\n", argv[i]);
        std::exit(1);
      }
      *dst = argv[i + 1];
      for (int j = i; j + 2 < *argc; ++j) argv[j] = argv[j + 2];
      *argc -= 2;
      argv[*argc] = nullptr;
      return true;
    };
    std::string value;
    if (std::strcmp(argv[i], "--workload") == 0 && take_value(&value)) {
      g_workload_path = value;
    } else if (std::strcmp(argv[i], "--json") == 0 && take_value(&value)) {
      g_json_path = value;
    } else if (std::strcmp(argv[i], "--passes") == 0 && take_value(&value)) {
      g_passes = static_cast<size_t>(std::stoull(value));
      if (g_passes == 0) g_passes = 1;
    } else {
      ++i;
    }
  }
}

// Benchmark state shared across timing cases: workload + graph built once.
struct ReplayFixture {
  engine::Workload workload;
  PropertyGraph graph;
  static const ReplayFixture& Get() {
    static ReplayFixture* f = [] {
      auto* fx = new ReplayFixture();
      fx->workload = LoadWorkloadOrDie(g_workload_path);
      fx->graph =
          engine::BuildWorkloadGraph(fx->workload.graph_spec).value();
      return fx;
    }();
    return *f;
  }
};

/// Cold session: every iteration pays parse + optimize for each query
/// (fresh plan cache), the "first request" latency of a served system.
void BM_ReplayColdSession(benchmark::State& state) {
  const ReplayFixture& fx = ReplayFixture::Get();
  for (auto _ : state) {
    // Engine construction copies the graph — keep it out of the timing.
    state.PauseTiming();
    engine::QueryEngine eng(fx.graph);
    state.ResumeTiming();
    auto report = engine::ReplayWorkload(eng, fx.workload);
    Check(report.ok() && report->ok(), "cold replay failed");
    benchmark::DoNotOptimize(report->total_runs);
  }
  state.SetLabel("fresh engine per pass: all cache misses");
}
BENCHMARK(BM_ReplayColdSession)->Unit(benchmark::kMillisecond);

/// Warm session: the plan cache absorbs parse + optimize, the steady-state
/// cost of serving a repeating workload.
void BM_ReplayWarmSession(benchmark::State& state) {
  const ReplayFixture& fx = ReplayFixture::Get();
  engine::QueryEngine eng(fx.graph);
  {
    auto warmup = engine::ReplayWorkload(eng, fx.workload);
    Check(warmup.ok() && warmup->ok(), "warmup replay failed");
  }
  for (auto _ : state) {
    auto report = engine::ReplayWorkload(eng, fx.workload);
    Check(report.ok() && report->ok(), "warm replay failed");
    benchmark::DoNotOptimize(report->total_runs);
  }
  state.SetLabel("shared engine: plan-cache hits");
}
BENCHMARK(BM_ReplayWarmSession)->Unit(benchmark::kMillisecond);

/// Prepare-path microcosts: a plan-cache hit vs a full parse + optimize.
void BM_PrepareHit(benchmark::State& state) {
  const ReplayFixture& fx = ReplayFixture::Get();
  engine::QueryEngine eng(fx.graph);
  const std::string& text = fx.workload.entries.front().query;
  (void)eng.Prepare(text);
  for (auto _ : state) {
    auto prepared = eng.Prepare(text);
    benchmark::DoNotOptimize(prepared);
  }
}
BENCHMARK(BM_PrepareHit);

void BM_PrepareMiss(benchmark::State& state) {
  const ReplayFixture& fx = ReplayFixture::Get();
  engine::QueryEngine eng(fx.graph);
  const std::string& text = fx.workload.entries.front().query;
  for (auto _ : state) {
    eng.cache().Clear();
    auto prepared = eng.Prepare(text);
    benchmark::DoNotOptimize(prepared);
  }
}
BENCHMARK(BM_PrepareMiss);

}  // namespace
}  // namespace bench
}  // namespace pathalg

int main(int argc, char** argv) {
  pathalg::bench::StripFlags(&argc, argv);
  return pathalg::bench::BenchMain(argc, argv,
                                   pathalg::bench::PrintArtifact);
}
