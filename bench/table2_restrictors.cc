// Reproduces Table 2: the four GQL restrictors (plus the extended-grammar
// SHORTEST), their informal semantics, verified live by running ϕ under
// each on Figure 1 and checking the answer-set properties; then benchmarks
// the restrictors against each other on scaled graphs — the "who is
// cheaper" shape: acyclic/simple < trail < bounded walk.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "gql/selector.h"

namespace pathalg {
namespace {

using bench::Check;

void PrintTable2() {
  bench::PrintHeader("Table 2 — restrictors in GQL");
  Figure1Ids ids;
  PropertyGraph g = MakeFigure1Graph(&ids);
  PathSet knows = bench::LabelEdges(g, "Knows");

  std::printf("%-10s %-8s %s\n", "Restrictor", "|result|", "semantics");
  for (PathSemantics sem :
       {PathSemantics::kWalk, PathSemantics::kTrail, PathSemantics::kAcyclic,
        PathSemantics::kSimple, PathSemantics::kShortest}) {
    EvalLimits limits;
    if (sem == PathSemantics::kWalk) {
      limits.max_path_length = 6;
      limits.truncate = true;
    }
    PathSet result = *Recursive(knows, sem, limits);
    std::string size = std::to_string(result.size());
    if (sem == PathSemantics::kWalk) size = "inf (" + size + " at len<=6)";
    std::printf("%-10s %-8s %s\n", PathSemanticsToString(sem), size.c_str(),
                RestrictorSemantics(sem));
    for (const Path& p : result) {
      Check(SatisfiesSemantics(p, sem), "restrictor contract");
    }
  }
  std::printf("\n");
}

void BM_Restrictor(benchmark::State& state) {
  auto sem = static_cast<PathSemantics>(state.range(0));
  PropertyGraph g = bench::ScaledSocialGraph(24);
  PathSet knows = bench::LabelEdges(g, "Knows");
  EvalLimits limits;
  limits.max_path_length = 5;
  limits.truncate = true;
  size_t answer = 0;
  for (auto _ : state) {
    auto r = Recursive(knows, sem, limits);
    answer = r->size();
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(PathSemanticsToString(sem));
  state.counters["answer"] = static_cast<double>(answer);
}
BENCHMARK(BM_Restrictor)->DenseRange(0, 4);

void BM_RestrictorScaling(benchmark::State& state) {
  // Trail restrictor across graph sizes.
  PropertyGraph g =
      bench::ScaledSocialGraph(static_cast<size_t>(state.range(0)));
  PathSet knows = bench::LabelEdges(g, "Knows");
  EvalLimits limits;
  limits.max_path_length = 4;
  limits.truncate = true;
  for (auto _ : state) {
    auto r = Recursive(knows, PathSemantics::kTrail, limits);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RestrictorScaling)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
}  // namespace pathalg

int main(int argc, char** argv) {
  return pathalg::bench::BenchMain(argc, argv, pathalg::PrintTable2);
}
