// Reproduces Figure 4: the evaluation tree of the recursive query with a
// Kleene star — ϕ(Likes ⋈ Has_creator) ∪ Nodes(G) — built both by hand
// and through the regex compiler (they must coincide), evaluated on
// Figure 1, then benchmarked.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "plan/evaluator.h"
#include "regex/compile.h"
#include "regex/parser.h"

namespace pathalg {
namespace {

using bench::Check;

void PrintFigure4() {
  bench::PrintHeader("Figure 4 — evaluation tree with Kleene star");
  Figure1Ids ids;
  PropertyGraph g = MakeFigure1Graph(&ids);

  // The full Figure 4 tree: σ_{Moe,Apu}(ϕ(Knows) ∪ (ϕ(Likes ⋈ HC) ∪ Nodes)).
  CompileOptions copts;
  copts.semantics = PathSemantics::kSimple;
  RegexPtr regex = *ParseRegex("(:Knows+)|(:Likes/:Has_creator)*");
  PlanPtr plan = CompileRpq(
      regex, copts,
      Condition::And(FirstPropEq("name", Value("Moe")),
                     LastPropEq("name", Value("Apu"))));
  std::printf("%s\n", plan->ToTreeString().c_str());

  // The star branch must have the Figure 4 shape: ϕ(...) ∪ Nodes(G).
  const PlanPtr& union_node = plan->child();
  Check(union_node->kind() == PlanKind::kUnion, "root below σ is ∪");
  const PlanPtr& star = union_node->child(1);
  Check(star->kind() == PlanKind::kUnion, "star branch is a union");
  Check(star->child(0)->kind() == PlanKind::kRecursive,
        "star = ϕ(...) ∪ Nodes(G): left is ϕ");
  Check(star->child(1)->kind() == PlanKind::kNodesScan,
        "star = ϕ(...) ∪ Nodes(G): right is Nodes(G)");

  PathSet result = *Evaluate(g, plan);
  // Same two answers as Figure 2 (the zero-length paths fail the
  // Moe→Apu endpoint filter).
  Check(result.size() == 2, "Figure 4 under Simple: two paths");
  std::printf("result: %s\n\n", result.ToString(g).c_str());
}

void BM_KleeneStar(benchmark::State& state) {
  auto sem = static_cast<PathSemantics>(state.range(0));
  PropertyGraph g = bench::ScaledSocialGraph(24);
  CompileOptions copts;
  copts.semantics = sem;
  PlanPtr plan =
      CompileRegex(*ParseRegex("(:Likes/:Has_creator)*"), copts);
  EvalOptions opts;
  opts.limits.max_path_length = 6;
  opts.limits.truncate = true;
  for (auto _ : state) {
    auto r = Evaluate(g, plan, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(PathSemanticsToString(sem));
}
BENCHMARK(BM_KleeneStar)->DenseRange(0, 4);

void BM_StarVsPlus(benchmark::State& state) {
  // The ∪ Nodes(G) of star adds |N| zero-length paths: measure the delta.
  bool star = state.range(0) == 1;
  PropertyGraph g = bench::ScaledSocialGraph(48);
  CompileOptions copts;
  copts.semantics = PathSemantics::kAcyclic;
  PlanPtr plan = CompileRegex(
      *ParseRegex(star ? ":Knows*" : ":Knows+"), copts);
  for (auto _ : state) {
    auto r = Evaluate(g, plan);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(star ? "Knows*" : "Knows+");
}
BENCHMARK(BM_StarVsPlus)->Arg(0)->Arg(1);

}  // namespace
}  // namespace pathalg

int main(int argc, char** argv) {
  return pathalg::bench::BenchMain(argc, argv, pathalg::PrintFigure4);
}
