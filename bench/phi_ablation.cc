// Ablation of the two ϕ engines (DESIGN.md design-choice index): the naive
// Definition 4.1 fixpoint (re-joins the whole accumulated set every round)
// versus the optimized engines (semi-naive frontier expansion; best-first
// search for shortest). Verifies equality, then times both — the expected
// shape: optimized wins, and the gap grows with the answer size.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace pathalg {
namespace {

using bench::Check;

void PrintAblation() {
  bench::PrintHeader("ϕ engine ablation — naive Def. 4.1 vs optimized");
  PropertyGraph g = bench::ScaledSocialGraph(16);
  PathSet knows = bench::LabelEdges(g, "Knows");
  for (PathSemantics sem :
       {PathSemantics::kTrail, PathSemantics::kAcyclic,
        PathSemantics::kSimple, PathSemantics::kShortest}) {
    // Bound trail/acyclic/simple by length: the bounded answer is complete
    // for the bound and identical across engines; shortest is finite.
    EvalLimits limits;
    if (sem != PathSemantics::kShortest) {
      limits.max_path_length = 4;
      limits.truncate = true;
    }
    auto naive = Recursive(knows, sem, limits, PhiEngine::kNaive);
    auto opt = Recursive(knows, sem, limits, PhiEngine::kOptimized);
    Check(naive.ok() && opt.ok(), "both engines succeed");
    Check(*naive == *opt, "engines agree");
    std::printf("  %-9s |answer| = %-7zu (engines agree)\n",
                PathSemanticsToString(sem), opt->size());
  }
  std::printf("\n");
}

void BM_PhiEngine(benchmark::State& state) {
  auto engine = static_cast<PhiEngine>(state.range(0));
  auto sem = static_cast<PathSemantics>(state.range(1));
  PropertyGraph g = bench::ScaledSocialGraph(16);
  PathSet knows = bench::LabelEdges(g, "Knows");
  EvalLimits limits;
  if (sem != PathSemantics::kShortest) {
    limits.max_path_length = 4;
    limits.truncate = true;
  }
  for (auto _ : state) {
    auto r = Recursive(knows, sem, limits, engine);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::string(engine == PhiEngine::kNaive ? "naive/"
                                                         : "optimized/") +
                 PathSemanticsToString(sem));
}
BENCHMARK(BM_PhiEngine)
    ->ArgsProduct({{0, 1}, {0, 1, 2, 3, 4}});

void BM_ShortestEngineScaling(benchmark::State& state) {
  auto engine = static_cast<PhiEngine>(state.range(0));
  PropertyGraph g =
      bench::ScaledSocialGraph(static_cast<size_t>(state.range(1)));
  PathSet knows = bench::LabelEdges(g, "Knows");
  for (auto _ : state) {
    auto r = Recursive(knows, PathSemantics::kShortest, {}, engine);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(engine == PhiEngine::kNaive ? "naive" : "dijkstra");
}
BENCHMARK(BM_ShortestEngineScaling)
    ->ArgsProduct({{0, 1}, {12, 16, 24}});

}  // namespace
}  // namespace pathalg

int main(int argc, char** argv) {
  return pathalg::bench::BenchMain(argc, argv, pathalg::PrintAblation);
}
