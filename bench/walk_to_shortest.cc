// Reproduces §7.3's second optimization: replacing ϕWalk with ϕShortest
// turns a diverging plan into a terminating one ("the change of ϕWalk by
// ϕShortest is very important because now the query returns a finite
// number of solutions, i.e. it always terminates"). Prints both plans,
// demonstrates the divergence/termination behaviour, and benchmarks the
// shortest plan against bounded-walk evaluation.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "plan/evaluator.h"
#include "plan/optimizer.h"

namespace pathalg {
namespace {

using bench::Check;

PlanPtr Section73Plan(PathSemantics sem) {
  // π(1,1,*)(τG(γL(ϕ(σ_{Knows}(Edges))))).
  return PlanNode::Project(
      {1, 1, std::nullopt},
      PlanNode::OrderBy(
          OrderKey::kG,
          PlanNode::GroupBy(
              GroupKey::kL,
              PlanNode::Recursive(
                  sem, PlanNode::Select(EdgeLabelEq(1, "Knows"),
                                        PlanNode::EdgesScan())))));
}

void PrintSection73() {
  bench::PrintHeader("§7.3 — the ϕWalk → ϕShortest rewrite");
  Figure1Ids ids;
  PropertyGraph g = MakeFigure1Graph(&ids);

  PlanPtr walk_plan = Section73Plan(PathSemantics::kWalk);
  OptimizeResult opt = Optimize(walk_plan);
  std::printf("before: %s\n", walk_plan->ToAlgebraString().c_str());
  std::printf("after:  %s  (rules:", opt.plan->ToAlgebraString().c_str());
  for (const std::string& rule : opt.applied) {
    std::printf(" %s", rule.c_str());
  }
  std::printf(")\n\n");

  EvalOptions tight;
  tight.limits.max_path_length = 64;
  auto diverges = Evaluate(g, walk_plan, tight);
  Check(diverges.status().IsResourceExhausted(),
        "ϕWalk plan diverges on the cyclic Knows subgraph");
  auto terminates = Evaluate(g, opt.plan, tight);
  Check(terminates.ok(), "ϕShortest plan terminates");
  // π(1,1,*) of τG(γL(·)) keeps the globally shortest paths: length 1.
  for (const Path& p : *terminates) {
    Check(p.Len() == 1, "first length-group = the four Knows edges");
  }
  Check(terminates->size() == 4, "four globally shortest paths");
  std::printf(
      "walk plan: %s\nshortest plan: %zu paths (all of length 1)\n\n",
      diverges.status().ToString().c_str(), terminates->size());
}

void BM_BoundedWalkPlan(benchmark::State& state) {
  PropertyGraph g = bench::ScaledSocialGraph(24);
  PlanPtr plan = Section73Plan(PathSemantics::kWalk);
  EvalOptions opts;
  opts.limits.max_path_length = static_cast<size_t>(state.range(0));
  opts.limits.truncate = true;
  for (auto _ : state) {
    auto r = Evaluate(g, plan, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("walk, len<=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_BoundedWalkPlan)->Arg(3)->Arg(4)->Arg(5);

void BM_ShortestPlan(benchmark::State& state) {
  PropertyGraph g = bench::ScaledSocialGraph(24);
  PlanPtr plan = Section73Plan(PathSemantics::kShortest);
  for (auto _ : state) {
    auto r = Evaluate(g, plan);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("shortest, exact");
}
BENCHMARK(BM_ShortestPlan);

void BM_ShortestPlanScaling(benchmark::State& state) {
  PropertyGraph g =
      bench::ScaledSocialGraph(static_cast<size_t>(state.range(0)));
  PlanPtr plan = Section73Plan(PathSemantics::kShortest);
  for (auto _ : state) {
    auto r = Evaluate(g, plan);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ShortestPlanScaling)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
}  // namespace pathalg

int main(int argc, char** argv) {
  return pathalg::bench::BenchMain(argc, argv, pathalg::PrintSection73);
}
