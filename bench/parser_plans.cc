// Reproduces §7.2: the parser's textual query plans. Prints the paper's
// example query and its plan in the paper's output style, verifies the
// format, and benchmarks parsing + plan generation.

#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_util.h"
#include "gql/query.h"

namespace pathalg {
namespace {

using bench::Check;

void PrintParserOutput() {
  bench::PrintHeader("§7.2 — query parser and textual logical plans");
  const char* query =
      "MATCH ALL PARTITIONS ALL GROUPS 1 PATHS "
      "TRAIL p = (?x)-[(:Knows)*]->(?y) "
      "GROUP BY TARGET ORDER BY PATH";
  std::printf("query:\n  %s\n\nplan:\n", query);
  auto parsed = ParseQuery(query);
  Check(parsed.ok(), "the paper's §7.1 example parses");
  std::string text = parsed->ToPlanText();
  std::printf("%s\n", text.c_str());
  Check(text.find("Projection (ALL PARTITIONS ALL GROUPS 1 PATHS)") !=
            std::string::npos,
        "projection line matches the paper");
  Check(text.find("OrderBy (Path)") != std::string::npos, "order-by line");
  Check(text.find("Group (Target)") != std::string::npos, "group-by line");
  Check(text.find("Restrictor (TRAIL)") != std::string::npos,
        "restrictor line");
  Check(text.find("Recursive Join (restrictor: TRAIL)") != std::string::npos,
        "recursive join line");
  Check(text.find("Select: (label(edge(1)) = \"Knows\" , EDGES(G))") !=
            std::string::npos,
        "select line matches the paper's inline EDGES(G) style");

  // A standard-form example too.
  const char* std_query =
      "MATCH ANY SHORTEST TRAIL p = (x)-[:Knows+]->(y)";
  auto std_parsed = ParseQuery(std_query);
  Check(std_parsed.ok(), "standard form parses");
  std::printf("query:\n  %s\n\nplan:\n%s\n", std_query,
              std_parsed->ToPlanText().c_str());
  std::printf("algebra: %s\n\n",
              std_parsed->ToPlan()->ToAlgebraString().c_str());
}

void BM_ParseAndPlan(benchmark::State& state) {
  const char* query =
      "MATCH ALL PARTITIONS ALL GROUPS 1 PATHS "
      "TRAIL p = (?x)-[(:Knows)*]->(?y) "
      "GROUP BY TARGET ORDER BY PATH";
  for (auto _ : state) {
    auto parsed = ParseQuery(query);
    benchmark::DoNotOptimize(parsed);
    auto plan = parsed->ToPlan();
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_ParseAndPlan);

void BM_PlanTextGeneration(benchmark::State& state) {
  auto parsed = ParseQuery(
      "MATCH ALL PARTITIONS ALL GROUPS 1 PATHS "
      "TRAIL p = (?x)-[(:Knows)*]->(?y) "
      "GROUP BY TARGET ORDER BY PATH");
  for (auto _ : state) {
    std::string text = parsed->ToPlanText();
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_PlanTextGeneration);

}  // namespace
}  // namespace pathalg

int main(int argc, char** argv) {
  return pathalg::bench::BenchMain(argc, argv, pathalg::PrintParserOutput);
}
