#ifndef PATHALG_BENCH_BENCH_UTIL_H_
#define PATHALG_BENCH_BENCH_UTIL_H_

/// Shared helpers for the reproduction benches. Every bench binary first
/// prints the paper artifact it regenerates (table rows / plan / result
/// set), asserts the pinned facts, and then runs google-benchmark timings.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "algebra/condition.h"
#include "algebra/core_ops.h"
#include "algebra/recursive.h"
#include "path/path_ops.h"
#include "workload/figure1.h"
#include "workload/generators.h"

namespace pathalg {
namespace bench {

/// Abort the bench with a message when a pinned paper fact fails — a bench
/// that silently regenerates the wrong artifact is worse than one that
/// crashes.
inline void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FATAL: paper artifact mismatch: %s\n", what);
    std::abort();
  }
}

/// σ_{label(edge(1))=label}(Edges(G)).
inline PathSet LabelEdges(const PropertyGraph& g, const std::string& label) {
  return Select(g, EdgesOf(g), *EdgeLabelEq(1, label));
}

/// The ten Table 3 trails, the input of the paper's §5 walkthrough
/// (Table 5 / Figure 5).
inline PathSet Table3Trails(const Figure1Ids& i) {
  PathSet s;
  s.Insert(Path({i.n1, i.n2}, {i.e1}));                               // p1
  s.Insert(Path({i.n1, i.n2, i.n3, i.n2}, {i.e1, i.e2, i.e3}));       // p2
  s.Insert(Path({i.n1, i.n2, i.n3}, {i.e1, i.e2}));                   // p3
  s.Insert(Path({i.n1, i.n2, i.n4}, {i.e1, i.e4}));                   // p5
  s.Insert(
      Path({i.n1, i.n2, i.n3, i.n2, i.n4}, {i.e1, i.e2, i.e3, i.e4}));  // p6
  s.Insert(Path({i.n2, i.n3, i.n2}, {i.e2, i.e3}));                   // p7
  s.Insert(Path({i.n2, i.n3}, {i.e2}));                               // p9
  s.Insert(Path({i.n2, i.n4}, {i.e4}));                               // p11
  s.Insert(Path({i.n2, i.n3, i.n2, i.n4}, {i.e2, i.e3, i.e4}));       // p12
  s.Insert(Path({i.n3, i.n2, i.n4}, {i.e3, i.e4}));                   // p13
  return s;
}

/// A social graph scaled by `persons` with proportional messages/chords,
/// deterministic per size.
inline PropertyGraph ScaledSocialGraph(size_t persons) {
  SocialGraphOptions opts;
  opts.num_persons = persons;
  opts.num_messages = persons * 2;
  opts.ring_degree = 2;
  opts.random_knows = persons;
  opts.likes_per_message = 2;
  opts.seed = 7;
  return MakeSocialGraph(opts);
}

inline void PrintHeader(const char* what) {
  std::printf("================================================================\n");
  std::printf("  Reproducing %s\n", what);
  std::printf("================================================================\n");
}

/// Strips `--verify_only` out of argv. When present the caller should exit
/// right after the artifact assertions, skipping timings — this is how CI
/// smokes all 17 benches in seconds instead of minutes.
inline bool StripVerifyOnly(int* argc, char** argv) {
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--verify_only") == 0) {
      for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
      --*argc;
      argv[*argc] = nullptr;
      return true;
    }
  }
  return false;
}

/// The shared tail of every bench main(): hand the remaining flags to
/// google-benchmark and run the timings.
inline int RunTimings(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

/// The whole bench main(): regenerate and assert the paper artifact, then
/// (unless --verify_only) run the timings.
inline int BenchMain(int argc, char** argv, void (*print_artifact)()) {
  const bool verify_only = StripVerifyOnly(&argc, argv);
  print_artifact();
  if (verify_only) return 0;
  return RunTimings(argc, argv);
}

}  // namespace bench
}  // namespace pathalg

#endif  // PATHALG_BENCH_BENCH_UTIL_H_
