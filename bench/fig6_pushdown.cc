// Reproduces Figure 6: the predicate-pushdown rewrite. Prints the 6a and
// 6b plans, verifies result equality, and benchmarks both across graph
// scales — the paper's claim is that 6b "reduce[s] the number of
// intermediate results (paths) in advance, and consequently, reduce[s]
// the number of join comparisons": the optimized plan must win, and the
// gap must widen with scale.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "plan/evaluator.h"
#include "plan/optimizer.h"

namespace pathalg {
namespace {

using bench::Check;

PlanPtr Plan6a(const Value& name) {
  PlanPtr knows =
      PlanNode::Select(EdgeLabelEq(1, "Knows"), PlanNode::EdgesScan());
  return PlanNode::Select(FirstPropEq("name", name),
                          PlanNode::Join(knows, knows));
}

void PrintFigure6() {
  bench::PrintHeader("Figure 6 — predicate pushdown");
  Figure1Ids ids;
  PropertyGraph g = MakeFigure1Graph(&ids);

  PlanPtr plan_a = Plan6a(Value("Moe"));
  OptimizeResult opt = Optimize(plan_a);
  std::printf("(a) basic query plan:\n%s\n",
              plan_a->ToTreeString().c_str());
  std::printf("(b) optimized query plan (rules:");
  for (const std::string& rule : opt.applied) {
    std::printf(" %s", rule.c_str());
  }
  std::printf("):\n%s\n", opt.plan->ToTreeString().c_str());

  PathSet before = *Evaluate(g, plan_a);
  PathSet after = *Evaluate(g, opt.plan);
  Check(before == after, "pushdown preserves the result");
  std::printf("both plans return: %s\n\n", before.ToString(g).c_str());
}

void BM_Figure6Unoptimized(benchmark::State& state) {
  PropertyGraph g =
      bench::ScaledSocialGraph(static_cast<size_t>(state.range(0)));
  PlanPtr plan = Plan6a(Value("person0"));
  for (auto _ : state) {
    auto r = Evaluate(g, plan);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Figure6Unoptimized)->Arg(64)->Arg(256)->Arg(1024);

void BM_Figure6Optimized(benchmark::State& state) {
  PropertyGraph g =
      bench::ScaledSocialGraph(static_cast<size_t>(state.range(0)));
  PlanPtr plan = Optimize(Plan6a(Value("person0"))).plan;
  for (auto _ : state) {
    auto r = Evaluate(g, plan);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Figure6Optimized)->Arg(64)->Arg(256)->Arg(1024);

void BM_OptimizerItself(benchmark::State& state) {
  // Plan rewriting cost (it runs once per query; must be trivially cheap).
  PlanPtr plan = Plan6a(Value("person0"));
  for (auto _ : state) {
    auto r = Optimize(plan);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_OptimizerItself);

}  // namespace
}  // namespace pathalg

int main(int argc, char** argv) {
  return pathalg::bench::BenchMain(argc, argv, pathalg::PrintFigure6);
}
