/// bench/mutation_churn.cc — write-path economics of the live-mutation
/// subsystem: what one acknowledged mutation costs with and without the
/// fsync'd journal, what re-materializing the overlay after a write adds
/// to the next query, the interleaved mutate/query churn a mutable served
/// graph actually experiences, periodic compaction, and crash-recovery
/// replay of a journal tail.
///
/// The artifact section pins the PR 10 acceptance facts on a scaled
/// social graph:
///   * the overlay merge and the from-scratch reference rebuild agree
///     byte-for-byte, and the live version id is exactly the
///     content-addressed checksum of the merged graph;
///   * compaction preserves the version id while folding the journal
///     tail into the base snapshot (pending drops to 0);
///   * a reopen over the compacted state — and a reopen over an
///     *uncompacted* journal tail (the kill-and-recover path) —
///     reproduce the pre-"crash" version id exactly;
///   * a query on the live overlay version matches the same query on the
///     reference rebuild.

#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/query_engine.h"
#include "mutation/delta_log.h"
#include "mutation/live_graph.h"
#include "mutation/overlay.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

namespace pathalg {
namespace bench {
namespace {

constexpr size_t kPersons = 400;
constexpr size_t kChurn = 64;  // mutations in the artifact/recovery tails
constexpr const char* kQuery = "MATCH ANY SHORTEST p = (?x)-[:Knows+]->(?y)";

const std::string& JournalPath() {
  static const std::string path = "mutation_churn_bench.journal";
  return path;
}
const std::string& BasePath() {
  static const std::string path = "mutation_churn_bench.base.snap";
  return path;
}

std::shared_ptr<const PropertyGraph> BaseGraph() {
  static const std::shared_ptr<const PropertyGraph> g =
      std::make_shared<const PropertyGraph>(ScaledSocialGraph(kPersons));
  return g;
}

/// The deterministic churn script: mostly Knows edges between random
/// persons (auto node names are n1..n<kPersons>), some fresh nodes, an
/// occasional removal — the mix a mutable social graph sees.
std::vector<std::string> ChurnScript(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::string> cmds;
  size_t fresh = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t roll = rng() % 10;
    const std::string a = "n" + std::to_string(1 + rng() % kPersons);
    const std::string b = "n" + std::to_string(1 + rng() % kPersons);
    if (roll < 6) {
      cmds.push_back("add-edge " + a + " " + b + " label=Knows");
    } else if (roll < 8) {
      cmds.push_back("add-node churn" + std::to_string(++fresh) +
                     " label=Person");
    } else if (fresh > 0 && roll == 8) {
      cmds.push_back("rm-node churn" + std::to_string(fresh--));
    } else {
      cmds.push_back("add-edge " + a + " " + b + " label=Likes");
    }
  }
  return cmds;
}

mutation::DeltaRecord MustParse(const std::string& cmd) {
  Result<mutation::DeltaRecord> rec = mutation::ParseMutationCommand(cmd);
  Check(rec.ok(), "churn command failed to parse");
  return *rec;
}

std::shared_ptr<mutation::LiveGraph> OpenLive(bool journaled) {
  mutation::LiveGraphOptions opts;
  if (journaled) {
    opts.journal_path = JournalPath();
    opts.base_snapshot_path = BasePath();
  }
  // Same contract the server's GraphCatalog honors: when a compacted
  // base snapshot exists on disk it IS the base; the from-spec build is
  // only the root version.
  std::shared_ptr<const PropertyGraph> base = BaseGraph();
  if (journaled) {
    Result<PropertyGraph> on_disk = storage::SnapshotReader::Open(BasePath());
    if (on_disk.ok()) {
      base = std::make_shared<const PropertyGraph>(std::move(*on_disk));
    }
  }
  Result<std::shared_ptr<mutation::LiveGraph>> live =
      mutation::LiveGraph::Open(std::move(base), std::move(opts));
  Check(live.ok(), "LiveGraph::Open failed");
  return *live;
}

void RemoveLiveFiles() {
  std::remove(JournalPath().c_str());
  std::remove((JournalPath() + ".next").c_str());
  std::remove((JournalPath() + ".stale").c_str());
  std::remove(BasePath().c_str());
}

size_t CountPaths(const std::shared_ptr<const PropertyGraph>& g) {
  engine::QueryEngine qe{PropertyGraph(*g)};
  Result<PathSet> r = qe.Execute(kQuery);
  Check(r.ok(), "churn query failed");
  return r->size();
}

void PrintArtifact() {
  PrintHeader("live-mutation churn: overlay, compaction, recovery (PR 10)");
  RemoveLiveFiles();
  const std::vector<std::string> script = ChurnScript(kChurn, 2025);

  auto live = OpenLive(true);
  const uint64_t base_id = live->VersionId();
  mutation::DeltaState mirror(BaseGraph());
  for (const std::string& cmd : script) {
    const mutation::DeltaRecord rec = MustParse(cmd);
    Check(live->Mutate(rec).ok(), "live mutate failed");
    mutation::DeltaRecord resolved = rec;
    Check(mirror.Apply(&resolved).ok(), "mirror apply failed");
  }
  Check(live->counters().mutations_applied == kChurn,
        "mutation count drifted");
  Check(live->counters().pending == kChurn, "journal tail count drifted");

  // Overlay merge ≡ reference rebuild, and the version id is the
  // content-addressed checksum of exactly that graph.
  const PropertyGraph merged = mutation::DeltaOverlayGraph::Apply(mirror);
  const PropertyGraph rebuilt =
      mutation::DeltaOverlayGraph::RebuildReference(mirror);
  Check(storage::SnapshotWriter::Serialize(merged) ==
            storage::SnapshotWriter::Serialize(rebuilt),
        "overlay merge != reference rebuild");
  const uint64_t churn_id = live->VersionId();
  Check(churn_id == storage::SnapshotWriter::VersionId(merged),
        "live version id is not the merged graph's checksum");
  Check(churn_id != base_id, "churn did not change the version id");

  // Query on the live overlay version ≡ query on the reference rebuild.
  const size_t live_paths = CountPaths(live->Current());
  Check(live_paths ==
            CountPaths(std::make_shared<const PropertyGraph>(
                PropertyGraph(rebuilt))),
        "overlay query disagrees with rebuilt query");

  // Kill-and-recover over the *uncompacted* journal tail: a fresh open
  // replays all kChurn records and lands on the same version id.
  live = OpenLive(true);
  Check(live->counters().recovered_records == kChurn,
        "recovery replayed the wrong record count");
  Check(live->VersionId() == churn_id,
        "journal recovery lost the pre-crash version id");

  // Compaction folds the tail, preserves the id, and survives reopen.
  Check(live->Compact().ok(), "compaction failed");
  Check(live->counters().pending == 0, "compaction left pending records");
  Check(live->VersionId() == churn_id, "compaction changed the version id");
  live = OpenLive(true);
  Check(live->counters().recovered_records == 0,
        "compacted journal still replayed records");
  Check(live->VersionId() == churn_id,
        "reopen after compaction lost the version id");

  std::printf("graph: social persons=%zu -> %zu nodes, %zu edges\n",
              kPersons, BaseGraph()->num_nodes(), BaseGraph()->num_edges());
  std::printf("churn: %zu mutations, version %016llx -> %016llx\n", kChurn,
              static_cast<unsigned long long>(base_id),
              static_cast<unsigned long long>(churn_id));
  std::printf("query `%s`: %zu paths on the live overlay\n", kQuery,
              live_paths);
  RemoveLiveFiles();
}

/// One acknowledged mutation, no durability (the pure DeltaState cost).
void BM_MutateInMemory(benchmark::State& state) {
  auto live = OpenLive(false);
  std::mt19937_64 rng(7);
  for (auto _ : state) {
    const std::string a = "n" + std::to_string(1 + rng() % kPersons);
    const std::string b = "n" + std::to_string(1 + rng() % kPersons);
    Check(live->Mutate(MustParse("add-edge " + a + " " + b +
                                 " label=Knows"))
              .ok(),
          "mutate failed");
  }
}
BENCHMARK(BM_MutateInMemory)->Unit(benchmark::kMicrosecond);

/// One acknowledged mutation through the fsync'd journal (the durability
/// premium a served `!mutate` pays).
void BM_MutateJournaled(benchmark::State& state) {
  RemoveLiveFiles();
  auto live = OpenLive(true);
  std::mt19937_64 rng(7);
  for (auto _ : state) {
    const std::string a = "n" + std::to_string(1 + rng() % kPersons);
    const std::string b = "n" + std::to_string(1 + rng() % kPersons);
    Check(live->Mutate(MustParse("add-edge " + a + " " + b +
                                 " label=Knows"))
              .ok(),
          "mutate failed");
  }
  RemoveLiveFiles();
}
BENCHMARK(BM_MutateJournaled)->Unit(benchmark::kMicrosecond);

/// Mutate + re-materialize the current version: the worst-case cost the
/// *next* query after a write observes (the overlay cache is
/// invalidated, so Current() rebuilds the merged CSR graph).
void BM_MutateAndMaterialize(benchmark::State& state) {
  auto live = OpenLive(false);
  std::mt19937_64 rng(7);
  for (auto _ : state) {
    const std::string a = "n" + std::to_string(1 + rng() % kPersons);
    const std::string b = "n" + std::to_string(1 + rng() % kPersons);
    Check(live->Mutate(MustParse("add-edge " + a + " " + b +
                                 " label=Knows"))
              .ok(),
          "mutate failed");
    benchmark::DoNotOptimize(live->Current()->num_edges());
  }
}
BENCHMARK(BM_MutateAndMaterialize)->Unit(benchmark::kMillisecond);

/// The served churn mix end to end: mutate, republish, query through a
/// QueryEngine session (plan-cache warm, graph token fresh per version).
void BM_ChurnQueryMix(benchmark::State& state) {
  auto live = OpenLive(false);
  engine::QueryEngine qe{PropertyGraph(*BaseGraph())};
  std::mt19937_64 rng(7);
  for (auto _ : state) {
    const std::string a = "n" + std::to_string(1 + rng() % kPersons);
    const std::string b = "n" + std::to_string(1 + rng() % kPersons);
    Check(live->Mutate(MustParse("add-edge " + a + " " + b +
                                 " label=Knows"))
              .ok(),
          "mutate failed");
    qe.SetGraph(live->Current());
    Result<PathSet> r = qe.Execute(kQuery);
    Check(r.ok(), "churn query failed");
    benchmark::DoNotOptimize(r->size());
  }
}
BENCHMARK(BM_ChurnQueryMix)->Unit(benchmark::kMillisecond);

/// Eight journaled mutations + one compaction: the steady-state cost of
/// keeping the recovery tail short.
void BM_CompactEvery8(benchmark::State& state) {
  RemoveLiveFiles();
  auto live = OpenLive(true);
  std::mt19937_64 rng(7);
  for (auto _ : state) {
    for (int i = 0; i < 8; ++i) {
      const std::string a = "n" + std::to_string(1 + rng() % kPersons);
      const std::string b = "n" + std::to_string(1 + rng() % kPersons);
      Check(live->Mutate(MustParse("add-edge " + a + " " + b +
                                   " label=Knows"))
                .ok(),
            "mutate failed");
    }
    Check(live->Compact().ok(), "compaction failed");
  }
  RemoveLiveFiles();
}
BENCHMARK(BM_CompactEvery8)->Unit(benchmark::kMillisecond);

/// Crash recovery: reopen a live graph whose journal carries a
/// kChurn-record tail (replay + version rebind, no compaction).
void BM_RecoveryReplay(benchmark::State& state) {
  RemoveLiveFiles();
  {
    auto writer = OpenLive(true);
    for (const std::string& cmd : ChurnScript(kChurn, 2025)) {
      Check(writer->Mutate(MustParse(cmd)).ok(), "tail write failed");
    }
  }
  for (auto _ : state) {
    auto live = OpenLive(true);
    Check(live->counters().recovered_records == kChurn, "short replay");
    benchmark::DoNotOptimize(live->VersionId());
  }
  RemoveLiveFiles();
}
BENCHMARK(BM_RecoveryReplay)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace pathalg

int main(int argc, char** argv) {
  const int rc =
      pathalg::bench::BenchMain(argc, argv, pathalg::bench::PrintArtifact);
  pathalg::bench::RemoveLiveFiles();
  return rc;
}
