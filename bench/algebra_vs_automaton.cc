// The §8.2 comparison: the algebra's operator-at-a-time evaluation versus
// the classical automaton-based product-graph traversal, on the same RPQs
// and graphs. Verifies set equality first (the differential guarantee),
// then times both across scales — the expected shape: the automaton wins
// on selective single-pair queries (it never materializes the full answer
// of subexpressions), while the algebra is competitive for all-pairs
// answers and composes with the optimizer.

#include <benchmark/benchmark.h>

#include "baseline/automaton_eval.h"
#include "bench_util.h"
#include "plan/evaluator.h"
#include "regex/compile.h"
#include "regex/parser.h"

namespace pathalg {
namespace {

using bench::Check;

void PrintComparison() {
  bench::PrintHeader(
      "§8.2 — algebra evaluation vs automaton baseline (equality check)");
  PropertyGraph g = bench::ScaledSocialGraph(16);
  for (const char* regex_text :
       {":Knows+", "(:Likes/:Has_creator)+", ":Knows+|:Likes+"}) {
    RegexPtr regex = *ParseRegex(regex_text);
    for (PathSemantics sem :
         {PathSemantics::kTrail, PathSemantics::kAcyclic,
          PathSemantics::kSimple, PathSemantics::kShortest}) {
      // Trail counts explode combinatorially on this graph; compare the
      // length-bounded answers (complete and engine-independent for a
      // given bound) except for the finite shortest semantics.
      EvalLimits limits;
      if (sem != PathSemantics::kShortest) {
        limits.max_path_length = 4;
        limits.truncate = true;
      }
      CompileOptions copts;
      copts.semantics = sem;
      EvalOptions eopts;
      eopts.limits = limits;
      auto algebra = Evaluate(g, CompileRegex(regex, copts), eopts);
      AutomatonEvalOptions aopts;
      aopts.semantics = sem;
      aopts.limits = limits;
      auto automaton = EvaluateRpqAutomaton(g, regex, aopts);
      Check(algebra.ok() && automaton.ok(), "both evaluators succeed");
      Check(*algebra == *automaton, "algebra == automaton");
      std::printf("  %-28s %-9s |answer| = %zu  (both engines agree)\n",
                  regex_text, PathSemanticsToString(sem), algebra->size());
    }
  }
  std::printf("\n");
}

void BM_AlgebraAllPairs(benchmark::State& state) {
  PropertyGraph g =
      bench::ScaledSocialGraph(static_cast<size_t>(state.range(0)));
  CompileOptions copts;
  copts.semantics = PathSemantics::kShortest;
  PlanPtr plan = CompileRegex(*ParseRegex(":Knows+"), copts);
  for (auto _ : state) {
    auto r = Evaluate(g, plan);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("algebra shortest all-pairs");
}
BENCHMARK(BM_AlgebraAllPairs)->Arg(16)->Arg(32)->Arg(64);

void BM_AutomatonAllPairs(benchmark::State& state) {
  PropertyGraph g =
      bench::ScaledSocialGraph(static_cast<size_t>(state.range(0)));
  RegexPtr regex = *ParseRegex(":Knows+");
  AutomatonEvalOptions aopts;
  aopts.semantics = PathSemantics::kShortest;
  for (auto _ : state) {
    auto r = EvaluateRpqAutomaton(g, regex, aopts);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("automaton shortest all-pairs");
}
BENCHMARK(BM_AutomatonAllPairs)->Arg(16)->Arg(32)->Arg(64);

void BM_AlgebraSinglePair(benchmark::State& state) {
  // The algebra computes the full ϕ then filters: single-pair queries pay
  // for the whole answer.
  PropertyGraph g =
      bench::ScaledSocialGraph(static_cast<size_t>(state.range(0)));
  CompileOptions copts;
  copts.semantics = PathSemantics::kShortest;
  PlanPtr plan = CompileRpq(
      *ParseRegex(":Knows+"), copts,
      Condition::And(FirstPropEq("name", Value("person0")),
                     LastPropEq("name", Value("person1"))));
  for (auto _ : state) {
    auto r = Evaluate(g, plan);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("algebra shortest single-pair");
}
BENCHMARK(BM_AlgebraSinglePair)->Arg(16)->Arg(32)->Arg(64);

void BM_AutomatonSinglePair(benchmark::State& state) {
  // The automaton BFS starts at the source only: sublinear in the answer.
  PropertyGraph g =
      bench::ScaledSocialGraph(static_cast<size_t>(state.range(0)));
  RegexPtr regex = *ParseRegex(":Knows+");
  AutomatonEvalOptions aopts;
  aopts.semantics = PathSemantics::kShortest;
  aopts.source = g.FindNodeByProperty("name", Value("person0"));
  aopts.target = g.FindNodeByProperty("name", Value("person1"));
  for (auto _ : state) {
    auto r = EvaluateRpqAutomaton(g, regex, aopts);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("automaton shortest single-pair");
}
BENCHMARK(BM_AutomatonSinglePair)->Arg(16)->Arg(32)->Arg(64);

void BM_AlgebraTrailAllPairs(benchmark::State& state) {
  PropertyGraph g =
      bench::ScaledSocialGraph(static_cast<size_t>(state.range(0)));
  CompileOptions copts;
  copts.semantics = PathSemantics::kTrail;
  PlanPtr plan = CompileRegex(*ParseRegex("(:Likes/:Has_creator)+"), copts);
  EvalOptions opts;
  opts.limits.max_path_length = 6;
  opts.limits.truncate = true;
  for (auto _ : state) {
    auto r = Evaluate(g, plan, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("algebra trail 2-label");
}
BENCHMARK(BM_AlgebraTrailAllPairs)->Arg(16)->Arg(32);

void BM_AutomatonTrailAllPairs(benchmark::State& state) {
  PropertyGraph g =
      bench::ScaledSocialGraph(static_cast<size_t>(state.range(0)));
  RegexPtr regex = *ParseRegex("(:Likes/:Has_creator)+");
  AutomatonEvalOptions aopts;
  aopts.semantics = PathSemantics::kTrail;
  aopts.limits.max_path_length = 6;
  aopts.limits.truncate = true;
  for (auto _ : state) {
    auto r = EvaluateRpqAutomaton(g, regex, aopts);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("automaton trail 2-label");
}
BENCHMARK(BM_AutomatonTrailAllPairs)->Arg(16)->Arg(32);

}  // namespace
}  // namespace pathalg

int main(int argc, char** argv) {
  return pathalg::bench::BenchMain(argc, argv, pathalg::PrintComparison);
}
