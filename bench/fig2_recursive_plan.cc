// Reproduces Figure 2: the evaluation tree of the paper's introductory
// recursive query — σ_{first.name="Moe" AND last.name="Apu"} over
// ϕ(Knows) ∪ ϕ(Likes ⋈ Has_creator) — printed as a plan and evaluated
// under Simple semantics, where the paper states the answer is exactly
// {path1, path2}. Benchmarks the plan across graph scales.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "plan/evaluator.h"

namespace pathalg {
namespace {

using bench::Check;

PlanPtr Figure2Plan(PathSemantics sem) {
  PlanPtr knows =
      PlanNode::Select(EdgeLabelEq(1, "Knows"), PlanNode::EdgesScan());
  PlanPtr likes =
      PlanNode::Select(EdgeLabelEq(1, "Likes"), PlanNode::EdgesScan());
  PlanPtr hc =
      PlanNode::Select(EdgeLabelEq(1, "Has_creator"), PlanNode::EdgesScan());
  return PlanNode::Select(
      Condition::And(FirstPropEq("name", Value("Moe")),
                     LastPropEq("name", Value("Apu"))),
      PlanNode::Union(PlanNode::Recursive(sem, knows),
                      PlanNode::Recursive(sem, PlanNode::Join(likes, hc))));
}

void PrintFigure2() {
  bench::PrintHeader(
      "Figure 2 — plan of the recursive intro query (phi = Kleene plus)");
  Figure1Ids ids;
  PropertyGraph g = MakeFigure1Graph(&ids);

  PlanPtr plan = Figure2Plan(PathSemantics::kSimple);
  std::printf("%s\n", plan->ToTreeString().c_str());

  // §4: "if we change the recursive operators in our example query tree
  // with ϕSimple, then the result of the query will only contain path1 and
  // path2".
  PathSet result = *Evaluate(g, plan);
  Path path1({ids.n1, ids.n2, ids.n4}, {ids.e1, ids.e4});
  Path path2({ids.n1, ids.n6, ids.n3, ids.n7, ids.n4},
             {ids.e8, ids.e11, ids.e7, ids.e10});
  Check(result.size() == 2, "Figure 2 under Simple yields two paths");
  Check(result.Contains(path1), "path1 = (n1, e1, n2, e4, n4)");
  Check(result.Contains(path2),
        "path2 = (n1, e8, n6, e11, n3, e7, n7, e10, n4)");
  std::printf("phi_Simple result: %s\n", result.ToString(g).c_str());

  // §1: under Walk semantics this same tree "will never halt".
  EvalOptions tight;
  tight.limits.max_path_length = 64;
  auto walk = Evaluate(g, Figure2Plan(PathSemantics::kWalk), tight);
  Check(walk.status().IsResourceExhausted(),
        "Figure 2 under Walk diverges (budget reported)");
  std::printf(
      "phi_Walk on the same tree: %s (infinite answer, as the paper "
      "describes)\n\n",
      walk.status().ToString().c_str());
}

void BM_Figure2PlanScaling(benchmark::State& state) {
  PropertyGraph g =
      bench::ScaledSocialGraph(static_cast<size_t>(state.range(0)));
  // Endpoint names exist in the social generator as person0 / person1.
  PlanPtr knows =
      PlanNode::Select(EdgeLabelEq(1, "Knows"), PlanNode::EdgesScan());
  PlanPtr likes =
      PlanNode::Select(EdgeLabelEq(1, "Likes"), PlanNode::EdgesScan());
  PlanPtr hc =
      PlanNode::Select(EdgeLabelEq(1, "Has_creator"), PlanNode::EdgesScan());
  PlanPtr plan = PlanNode::Select(
      Condition::And(FirstPropEq("name", Value("person0")),
                     LastPropEq("name", Value("person1"))),
      PlanNode::Union(
          PlanNode::Recursive(PathSemantics::kSimple, knows),
          PlanNode::Recursive(PathSemantics::kSimple,
                              PlanNode::Join(likes, hc))));
  EvalOptions opts;
  opts.limits.max_path_length = 6;
  opts.limits.truncate = true;
  for (auto _ : state) {
    auto r = Evaluate(g, plan, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Figure2PlanScaling)->Arg(12)->Arg(16)->Arg(24);

}  // namespace
}  // namespace pathalg

int main(int argc, char** argv) {
  return pathalg::bench::BenchMain(argc, argv, pathalg::PrintFigure2);
}
