// Reproduces Table 1: the seven GQL selectors, their informal semantics,
// and the semantics verified live — each selector evaluated over the same
// ϕTrail(Knows+) input on the Figure 1 graph must satisfy its contract.
// Then benchmarks every selector on a scaled social graph.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"
#include "gql/query.h"
#include "gql/translate.h"

namespace pathalg {
namespace {

using bench::Check;

void PrintTable1() {
  bench::PrintHeader("Table 1 — selectors in GQL");
  Figure1Ids ids;
  PropertyGraph g = MakeFigure1Graph(&ids);

  std::vector<Selector> selectors = {
      {SelectorKind::kAll, 1},         {SelectorKind::kAnyShortest, 1},
      {SelectorKind::kAllShortest, 1}, {SelectorKind::kAny, 1},
      {SelectorKind::kAnyK, 2},        {SelectorKind::kShortestK, 2},
      {SelectorKind::kShortestKGroup, 2},
  };
  PlanPtr pattern = PlanNode::Recursive(
      PathSemantics::kTrail,
      PlanNode::Select(EdgeLabelEq(1, "Knows"), PlanNode::EdgesScan()));
  PathSet trails = *Evaluate(g, pattern);

  std::printf("%-20s %-8s %s\n", "Selector", "|result|", "semantics");
  for (const Selector& sel : selectors) {
    PlanPtr plan = TranslateSelector(sel, pattern);
    PathSet result = *Evaluate(g, plan);
    std::printf("%-20s %-8zu %s\n", sel.ToString().c_str(), result.size(),
                SelectorSemantics(sel.kind));

    // Verify each selector's contract against the full trail answer.
    std::map<std::pair<NodeId, NodeId>, std::vector<const Path*>> pairs;
    for (const Path& p : trails) {
      pairs[{p.First(), p.Last()}].push_back(&p);
    }
    switch (sel.kind) {
      case SelectorKind::kAll:
        Check(result == trails, "ALL returns everything");
        break;
      case SelectorKind::kAnyShortest:
      case SelectorKind::kAny:
        Check(result.size() == pairs.size(), "one path per partition");
        break;
      case SelectorKind::kAllShortest:
        Check(result == KeepShortestPerEndpointPair(trails),
              "ALL SHORTEST = per-pair minima");
        break;
      case SelectorKind::kAnyK:
      case SelectorKind::kShortestK: {
        size_t want = 0;
        for (const auto& [key, paths] : pairs) {
          want += std::min(paths.size(), sel.k);
        }
        Check(result.size() == want, "k paths per partition (clamped)");
        break;
      }
      case SelectorKind::kShortestKGroup: {
        // First k length-groups per partition.
        size_t want = 0;
        for (const auto& [key, paths] : pairs) {
          std::set<size_t> lens;
          for (const Path* p : paths) lens.insert(p->Len());
          size_t kept_groups = std::min(lens.size(), sel.k);
          auto it = lens.begin();
          for (size_t i = 0; i < kept_groups; ++i, ++it) {
            for (const Path* p : paths) want += (p->Len() == *it) ? 1 : 0;
          }
        }
        Check(result.size() == want, "first k groups per partition");
        break;
      }
    }
  }
  std::printf("\n");
}

void BM_Selector(benchmark::State& state) {
  std::vector<Selector> selectors = {
      {SelectorKind::kAll, 1},         {SelectorKind::kAnyShortest, 1},
      {SelectorKind::kAllShortest, 1}, {SelectorKind::kAny, 1},
      {SelectorKind::kAnyK, 2},        {SelectorKind::kShortestK, 2},
      {SelectorKind::kShortestKGroup, 2},
  };
  Selector sel = selectors[static_cast<size_t>(state.range(0))];
  PropertyGraph g = bench::ScaledSocialGraph(32);
  PlanPtr pattern = PlanNode::Recursive(
      PathSemantics::kTrail,
      PlanNode::Select(EdgeLabelEq(1, "Knows"), PlanNode::EdgesScan()));
  PlanPtr plan = TranslateSelector(sel, pattern);
  EvalOptions opts;
  opts.limits.max_path_length = 3;
  opts.limits.truncate = true;
  for (auto _ : state) {
    auto r = Evaluate(g, plan, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(sel.ToString());
}
BENCHMARK(BM_Selector)->DenseRange(0, 6);

}  // namespace
}  // namespace pathalg

int main(int argc, char** argv) {
  return pathalg::bench::BenchMain(argc, argv, pathalg::PrintTable1);
}
