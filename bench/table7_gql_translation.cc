// Reproduces Table 7: the algebra expression for every GQL selector (shown
// with the WALK restrictor as in the paper, and validated for all 28
// selector × restrictor combinations); then benchmarks parse+translate+
// evaluate end-to-end for each combination.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "gql/query.h"
#include "gql/translate.h"

namespace pathalg {
namespace {

using bench::Check;

void PrintTable7() {
  bench::PrintHeader("Table 7 — GQL selector → path algebra translation");
  PlanPtr re = PlanNode::Recursive(
      PathSemantics::kWalk,
      PlanNode::Select(EdgeLabelEq(1, "Knows"), PlanNode::EdgesScan()));
  std::vector<std::pair<Selector, const char*>> rows = {
      {{SelectorKind::kAll, 1}, "ALL WALK ppe"},
      {{SelectorKind::kAnyShortest, 1}, "ANY SHORTEST WALK ppe"},
      {{SelectorKind::kAllShortest, 1}, "ALL SHORTEST WALK ppe"},
      {{SelectorKind::kAny, 1}, "ANY WALK ppe"},
      {{SelectorKind::kAnyK, 2}, "ANY k WALK ppe (k=2)"},
      {{SelectorKind::kShortestK, 2}, "SHORTEST k WALK ppe (k=2)"},
      {{SelectorKind::kShortestKGroup, 2},
       "SHORTEST k GROUP WALK ppe (k=2)"},
  };
  std::printf("%-34s %s\n", "GQL expression", "path algebra expression");
  for (const auto& [sel, label] : rows) {
    PlanPtr plan = TranslateSelector(sel, re);
    std::printf("%-34s %s\n", label, plan->ToAlgebraString().c_str());
    Check(plan->Validate().ok(), "Table 7 plan validates");
  }

  // All 28 combinations evaluate correctly on Figure 1 (WALK via the
  // any-shortest rewrite or a bounded budget).
  PropertyGraph g = MakeFigure1Graph();
  int evaluated = 0;
  for (const auto& [sel, label] : rows) {
    for (PathSemantics r : {PathSemantics::kWalk, PathSemantics::kTrail,
                            PathSemantics::kAcyclic, PathSemantics::kSimple}) {
      PlanPtr pattern = PlanNode::Recursive(
          r, PlanNode::Select(EdgeLabelEq(1, "Knows"),
                              PlanNode::EdgesScan()));
      PlanPtr plan = TranslateSelector(sel, pattern);
      EvalOptions opts;
      opts.limits.max_path_length = 6;
      opts.limits.truncate = true;  // WALK needs a budget
      auto result = Evaluate(g, plan, opts);
      Check(result.ok(), "28-combination evaluation");
      ++evaluated;
    }
  }
  Check(evaluated == 28, "evaluated 7 selectors x 4 restrictors");
  std::printf("\nAll 28 selector-restrictor combinations evaluated OK.\n\n");
}

void BM_EndToEndQuery(benchmark::State& state) {
  static const char* kQueries[] = {
      "MATCH ALL TRAIL p = (x)-[:Knows+]->(y)",
      "MATCH ANY SHORTEST WALK p = (x)-[:Knows+]->(y)",
      "MATCH ALL SHORTEST TRAIL p = (x)-[:Knows+]->(y)",
      "MATCH ANY 2 SIMPLE p = (x)-[:Knows+]->(y)",
      "MATCH SHORTEST 2 ACYCLIC p = (x)-[:Knows+]->(y)",
      "MATCH SHORTEST 2 GROUP TRAIL p = (x)-[:Knows+]->(y)",
  };
  const char* query = kQueries[state.range(0)];
  PropertyGraph g = bench::ScaledSocialGraph(24);
  QueryOptions opts;
  opts.eval.limits.max_path_length = 4;
  opts.eval.limits.truncate = true;
  for (auto _ : state) {
    auto r = ExecuteQuery(g, query, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(query);
}
BENCHMARK(BM_EndToEndQuery)->DenseRange(0, 5);

void BM_ParseOnly(benchmark::State& state) {
  for (auto _ : state) {
    auto q = Query::Parse(
        "MATCH SHORTEST 3 GROUP TRAIL p = (?x {name:\"Moe\"})"
        "-[(:Knows+)|(:Likes/:Has_creator)+]->(?y) "
        "WHERE len() >= 2 AND label(first) = \"Person\"");
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_ParseOnly);

}  // namespace
}  // namespace pathalg

int main(int argc, char** argv) {
  return pathalg::bench::BenchMain(argc, argv, pathalg::PrintTable7);
}
