// Reproduces Table 3: the paper's 14 sample Knows+ paths on the Figure 1
// graph, classified under Walk / Trail / Acyclic / Simple / Shortest — the
// classification is *recomputed* by running ϕ under each semantics, not
// hard-coded. Then benchmarks ϕ per semantics on Figure 1 and on scaled
// cyclic graphs.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace pathalg {
namespace {

using bench::Check;
using bench::LabelEdges;

std::vector<std::pair<const char*, Path>> Table3Paths(const Figure1Ids& i) {
  return {
      {"p1", Path({i.n1, i.n2}, {i.e1})},
      {"p2", Path({i.n1, i.n2, i.n3, i.n2}, {i.e1, i.e2, i.e3})},
      {"p3", Path({i.n1, i.n2, i.n3}, {i.e1, i.e2})},
      {"p4",
       Path({i.n1, i.n2, i.n3, i.n2, i.n3}, {i.e1, i.e2, i.e3, i.e2})},
      {"p5", Path({i.n1, i.n2, i.n4}, {i.e1, i.e4})},
      {"p6",
       Path({i.n1, i.n2, i.n3, i.n2, i.n4}, {i.e1, i.e2, i.e3, i.e4})},
      {"p7", Path({i.n2, i.n3, i.n2}, {i.e2, i.e3})},
      {"p8",
       Path({i.n2, i.n3, i.n2, i.n3, i.n2}, {i.e2, i.e3, i.e2, i.e3})},
      {"p9", Path({i.n2, i.n3}, {i.e2})},
      {"p10", Path({i.n2, i.n3, i.n2, i.n3}, {i.e2, i.e3, i.e2})},
      {"p11", Path({i.n2, i.n4}, {i.e4})},
      {"p12", Path({i.n2, i.n3, i.n2, i.n4}, {i.e2, i.e3, i.e4})},
      {"p13", Path({i.n3, i.n2, i.n4}, {i.e3, i.e4})},
      {"p14",
       Path({i.n3, i.n2, i.n3, i.n2, i.n4}, {i.e3, i.e2, i.e3, i.e4})},
  };
}

void PrintTable3() {
  bench::PrintHeader("Table 3 — Knows+ paths under W/T/A/S/Sh semantics");
  Figure1Ids ids;
  PropertyGraph g = MakeFigure1Graph(&ids);
  PathSet knows = LabelEdges(g, "Knows");

  // Walk membership is tested against the bounded enumeration (the answer
  // set is infinite; every Table 3 path has length <= 4).
  PathSet walk = *Recursive(knows, PathSemantics::kWalk,
                            {.max_path_length = 4, .truncate = true});
  PathSet trail = *Recursive(knows, PathSemantics::kTrail);
  PathSet acyclic = *Recursive(knows, PathSemantics::kAcyclic);
  PathSet simple = *Recursive(knows, PathSemantics::kSimple);
  PathSet shortest = *Recursive(knows, PathSemantics::kShortest);

  std::printf("%-4s %-42s %-4s %-4s %-4s %-4s %-4s\n", "ID", "Path", "W",
              "T", "A", "S", "Sh");
  int trail_count = 0;
  for (const auto& [name, p] : Table3Paths(ids)) {
    std::printf("%-4s %-42s %-4s %-4s %-4s %-4s %-4s\n", name,
                p.ToString(g).c_str(), walk.Contains(p) ? "x" : "",
                trail.Contains(p) ? "x" : "",
                acyclic.Contains(p) ? "x" : "",
                simple.Contains(p) ? "x" : "",
                shortest.Contains(p) ? "x" : "");
    Check(walk.Contains(p), "every Table 3 path is a walk");
    trail_count += trail.Contains(p) ? 1 : 0;
  }
  // §5 Step 3: the trails among Table 3's paths are exactly 10.
  Check(trail_count == 10, "Table 3 has 10 trails (column T)");
  Check(trail.size() == 12, "complete trail answer has 12 paths");
  Check(acyclic.size() == 7, "complete acyclic answer has 7 paths");
  Check(simple.size() == 9, "complete simple answer has 9 paths");
  Check(shortest.size() == 9, "complete shortest answer has 9 paths");
  std::printf(
      "\nComplete answer sizes on Figure 1: walk(<=4)=%zu trail=%zu "
      "acyclic=%zu simple=%zu shortest=%zu\n\n",
      walk.size(), trail.size(), acyclic.size(), simple.size(),
      shortest.size());
}

void BM_PhiOnFigure1(benchmark::State& state) {
  auto semantics = static_cast<PathSemantics>(state.range(0));
  PropertyGraph g = MakeFigure1Graph();
  PathSet knows = LabelEdges(g, "Knows");
  EvalLimits limits;
  if (semantics == PathSemantics::kWalk) {
    limits.max_path_length = 8;
    limits.truncate = true;
  }
  for (auto _ : state) {
    auto r = Recursive(knows, semantics, limits);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(PathSemanticsToString(semantics));
}
BENCHMARK(BM_PhiOnFigure1)->DenseRange(0, 4);

void BM_PhiOnSocialGraph(benchmark::State& state) {
  auto semantics = static_cast<PathSemantics>(state.range(0));
  PropertyGraph g = bench::ScaledSocialGraph(32);
  PathSet knows = LabelEdges(g, "Knows");
  EvalLimits limits;
  limits.max_path_length = 4;  // bounded for every semantics: comparability
  limits.truncate = true;
  for (auto _ : state) {
    auto r = Recursive(knows, semantics, limits);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(PathSemanticsToString(semantics));
}
BENCHMARK(BM_PhiOnSocialGraph)->DenseRange(0, 4);

}  // namespace
}  // namespace pathalg

int main(int argc, char** argv) {
  return pathalg::bench::BenchMain(argc, argv, pathalg::PrintTable3);
}
