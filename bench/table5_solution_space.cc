// Reproduces Table 5: the solution space produced by γST over the trails
// of Table 3 (the paper's §5 walkthrough), with the MinL(P)/MinL(G)/Len(p)
// columns, then benchmarks the group-by/order-by/projection pipeline.

#include <benchmark/benchmark.h>

#include "algebra/solution_space.h"
#include "bench_util.h"

namespace pathalg {
namespace {

using bench::Check;

void PrintTable5() {
  bench::PrintHeader("Table 5 — solution space of γST over Table 3 trails");
  Figure1Ids ids;
  PropertyGraph g = MakeFigure1Graph(&ids);
  PathSet trails = bench::Table3Trails(ids);
  SolutionSpace ss = GroupBy(trails, GroupKey::kST);
  std::printf("%s\n", ss.ToTableString(g).c_str());

  Check(ss.num_partitions() == 7, "Table 5 has 7 partitions");
  Check(ss.num_groups() == 7, "Table 5 has one group per partition");
  Check(ss.num_paths() == 10, "Table 5 covers 10 paths");

  // §5 Step 6: π(*,*,1)(τA(γST(...))) = {p1,p3,p5,p7,p9,p11,p13}.
  auto projected =
      Project(OrderBy(ss, OrderKey::kA), {std::nullopt, std::nullopt, 1});
  Check(projected.ok(), "projection evaluates");
  Check(projected->size() == 7, "Fig 5 output has 7 paths");
  PathSet expected;
  expected.Insert(Path({ids.n1, ids.n2}, {ids.e1}));
  expected.Insert(Path({ids.n1, ids.n2, ids.n3}, {ids.e1, ids.e2}));
  expected.Insert(Path({ids.n1, ids.n2, ids.n4}, {ids.e1, ids.e4}));
  expected.Insert(Path({ids.n2, ids.n3, ids.n2}, {ids.e2, ids.e3}));
  expected.Insert(Path({ids.n2, ids.n3}, {ids.e2}));
  expected.Insert(Path({ids.n2, ids.n4}, {ids.e4}));
  expected.Insert(Path({ids.n3, ids.n2, ids.n4}, {ids.e3, ids.e4}));
  Check(*projected == expected, "Fig 5 output matches the paper");
  std::printf("pi(*,*,1)(tau_A(gamma_ST(...))) = %s\n\n",
              projected->ToString(g).c_str());
}

PathSet BigTrailSet(size_t persons) {
  PropertyGraph g = bench::ScaledSocialGraph(persons);
  PathSet knows = bench::LabelEdges(g, "Knows");
  return *Recursive(knows, PathSemantics::kTrail,
                    {.max_path_length = 4, .truncate = true});
}

void BM_GroupBy(benchmark::State& state) {
  auto key = static_cast<GroupKey>(state.range(0));
  PathSet trails = BigTrailSet(32);
  for (auto _ : state) {
    SolutionSpace ss = GroupBy(trails, key);
    benchmark::DoNotOptimize(ss);
  }
  state.SetLabel(std::string("gamma_") + GroupKeyToString(key));
  state.counters["paths"] = static_cast<double>(trails.size());
}
BENCHMARK(BM_GroupBy)->DenseRange(0, 7);

void BM_FullSelectorPipeline(benchmark::State& state) {
  PathSet trails = BigTrailSet(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = Project(OrderBy(GroupBy(trails, GroupKey::kST), OrderKey::kA),
                     {std::nullopt, std::nullopt, 1});
    benchmark::DoNotOptimize(r);
  }
  state.counters["paths"] = static_cast<double>(trails.size());
}
BENCHMARK(BM_FullSelectorPipeline)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
}  // namespace pathalg

int main(int argc, char** argv) {
  return pathalg::bench::BenchMain(argc, argv, pathalg::PrintTable5);
}
