#!/usr/bin/env bash
# Runs every bench binary with --benchmark_format json output and
# aggregates the per-bench results into one machine-readable file,
# seeding the repo's perf trajectory (BENCH_baseline.json, then
# BENCH_<change>.json for future PRs to diff against).
#
# Usage: bench/run_all.sh [--runs N] [BUILD_DIR] [OUT_FILE]
#   --runs N   run every binary N times and aggregate the *median* wall
#              time / per-iteration sum (default 1). Medians make the
#              compare.py --max-regression gate robust to one-off runner
#              load spikes, which is what lets CI treat it as blocking.
#   BUILD_DIR  directory holding the bench_* binaries (default: build/bench)
#   OUT_FILE   aggregated JSON output (default: BENCH_new.json — never the
#              committed baseline, so `diff BENCH_baseline.json BENCH_new.json`
#              style comparisons have something to compare against)
# Env:
#   BENCH_MIN_TIME  forwarded as --benchmark_min_time; a plain double in
#                   seconds (e.g. 0.05) — benchmark 1.7 rejects "0.05s"

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
RUNS=1
POSITIONAL=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --runs)
      [[ $# -ge 2 ]] || { echo "--runs needs a value" >&2; exit 2; }
      RUNS="$2"
      shift 2
      ;;
    *)
      POSITIONAL+=("$1")
      shift
      ;;
  esac
done
[[ "${RUNS}" =~ ^[1-9][0-9]*$ ]] || { echo "--runs must be >= 1" >&2; exit 2; }
BUILD_DIR="${POSITIONAL[0]:-${REPO_ROOT}/build/bench}"
OUT_FILE="${POSITIONAL[1]:-${REPO_ROOT}/BENCH_new.json}"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT

EXTRA_ARGS=()
if [[ -n "${BENCH_MIN_TIME:-}" ]]; then
  EXTRA_ARGS+=("--benchmark_min_time=${BENCH_MIN_TIME}")
fi

benches=("${BUILD_DIR}"/bench_*)
if [[ ! -e "${benches[0]}" ]]; then
  echo "no bench_* binaries in ${BUILD_DIR}; build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

# Sorted middle element (lower median for even N) of one number per line.
median() {
  sort -n | awk '{a[NR]=$1} END {print a[int((NR+1)/2)]}'
}

for bin in "${benches[@]}"; do
  [[ -x "${bin}" ]] || continue
  name="$(basename "${bin}")"
  echo "== ${name} (${RUNS} run(s))" >&2
  # Artifact assertions print to stdout; the JSON goes to its own file so
  # the two streams can't mix. Wall time is the whole binary run
  # (assertions + all benchmark cases), measured here rather than summed
  # from per-iteration means. `date +%s%N` needs GNU coreutils.
  : > "${TMP_DIR}/${name}.walls"
  for run in $(seq 1 "${RUNS}"); do
    start_ns="$(date +%s%N)"
    "${bin}" --benchmark_out="${TMP_DIR}/${name}.run${run}.json" \
             --benchmark_out_format=json \
             ${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"} >/dev/null
    end_ns="$(date +%s%N)"
    echo $(( (end_ns - start_ns) / 1000000 )) >> "${TMP_DIR}/${name}.walls"
    # Per-run sum of per-iteration mean times across cases (the
    # load-independent rollup compare.py gates on).
    jq '[.benchmarks[]? | select(.run_type != "aggregate")
         | .real_time * (if .time_unit == "ns" then 1e-6
                         elif .time_unit == "us" then 1e-3
                         elif .time_unit == "ms" then 1
                         else 1e3 end)] | add // 0' \
       "${TMP_DIR}/${name}.run${run}.json" >> "${TMP_DIR}/${name}.sums"
  done
  median < "${TMP_DIR}/${name}.walls" > "${TMP_DIR}/${name}.wall"
  median < "${TMP_DIR}/${name}.sums" > "${TMP_DIR}/${name}.sum"
  # The detailed google-benchmark report kept in the aggregate is run 1's.
  cp "${TMP_DIR}/${name}.run1.json" "${TMP_DIR}/${name}.json"
done

# Merge {bench name -> google-benchmark report} plus two per-bench
# rollups — median measured wall time of the whole run, and the median
# across runs of the per-iteration sums. jq is in the base image; no
# extra deps.
jq -n \
  --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  --argjson runs "${RUNS}" \
  '{schema: "pathalg-bench-v1", generated: $date, runs: $runs, benches: {},
    wall_time_ms: {}, sum_iteration_time_ms: {}}' \
  > "${TMP_DIR}/agg.json"

for f in "${TMP_DIR}"/bench_*.run1.json; do
  name="$(basename "${f}" .run1.json)"
  jq --arg name "${name}" --argjson wall "$(cat "${TMP_DIR}/${name}.wall")" \
     --argjson sum "$(cat "${TMP_DIR}/${name}.sum")" \
     --slurpfile report "${TMP_DIR}/${name}.json" \
     '.benches[$name] = $report[0]
      | .wall_time_ms[$name] = $wall
      | .sum_iteration_time_ms[$name] = $sum' \
     "${TMP_DIR}/agg.json" > "${TMP_DIR}/agg.next.json"
  mv "${TMP_DIR}/agg.next.json" "${TMP_DIR}/agg.json"
done

mv "${TMP_DIR}/agg.json" "${OUT_FILE}"
echo "wrote ${OUT_FILE} ($(jq '.benches | length' "${OUT_FILE}") benches, median of ${RUNS})" >&2
