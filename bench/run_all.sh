#!/usr/bin/env bash
# Runs every bench binary with --benchmark_format json output and
# aggregates the per-bench results into one machine-readable file,
# seeding the repo's perf trajectory (BENCH_baseline.json, then
# BENCH_<change>.json for future PRs to diff against).
#
# Usage: bench/run_all.sh [BUILD_DIR] [OUT_FILE]
#   BUILD_DIR  directory holding the bench_* binaries (default: build/bench)
#   OUT_FILE   aggregated JSON output (default: BENCH_new.json — never the
#              committed baseline, so `diff BENCH_baseline.json BENCH_new.json`
#              style comparisons have something to compare against)
# Env:
#   BENCH_MIN_TIME  forwarded as --benchmark_min_time; a plain double in
#                   seconds (e.g. 0.05) — benchmark 1.7 rejects "0.05s"

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build/bench}"
OUT_FILE="${2:-${REPO_ROOT}/BENCH_new.json}"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT

EXTRA_ARGS=()
if [[ -n "${BENCH_MIN_TIME:-}" ]]; then
  EXTRA_ARGS+=("--benchmark_min_time=${BENCH_MIN_TIME}")
fi

benches=("${BUILD_DIR}"/bench_*)
if [[ ! -e "${benches[0]}" ]]; then
  echo "no bench_* binaries in ${BUILD_DIR}; build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

for bin in "${benches[@]}"; do
  [[ -x "${bin}" ]] || continue
  name="$(basename "${bin}")"
  echo "== ${name}" >&2
  # Artifact assertions print to stdout; the JSON goes to its own file so
  # the two streams can't mix. Wall time is the whole binary run
  # (assertions + all benchmark cases), measured here rather than summed
  # from per-iteration means. `date +%s%N` needs GNU coreutils.
  start_ns="$(date +%s%N)"
  "${bin}" --benchmark_out="${TMP_DIR}/${name}.json" \
           --benchmark_out_format=json \
           ${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"} >/dev/null
  end_ns="$(date +%s%N)"
  echo $(( (end_ns - start_ns) / 1000000 )) > "${TMP_DIR}/${name}.wall"
done

# Merge {bench name -> google-benchmark report} plus two per-bench
# rollups — measured wall time of the whole run, and the sum of
# per-iteration mean times across cases (a load-independent signal for
# regression diffs). jq is in the base image; no extra deps.
jq -n \
  --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  '{schema: "pathalg-bench-v1", generated: $date, benches: {},
    wall_time_ms: {}, sum_iteration_time_ms: {}}' \
  > "${TMP_DIR}/agg.json"

for f in "${TMP_DIR}"/bench_*.json; do
  name="$(basename "${f}" .json)"
  jq --arg name "${name}" --argjson wall "$(cat "${TMP_DIR}/${name}.wall")" \
     --slurpfile report "${f}" \
     '.benches[$name] = $report[0]
      | .wall_time_ms[$name] = $wall
      | .sum_iteration_time_ms[$name] =
          ([$report[0].benchmarks[]? | select(.run_type != "aggregate")
            | .real_time * (if .time_unit == "ns" then 1e-6
                            elif .time_unit == "us" then 1e-3
                            elif .time_unit == "ms" then 1
                            else 1e3 end)] | add // 0)' \
     "${TMP_DIR}/agg.json" > "${TMP_DIR}/agg.next.json"
  mv "${TMP_DIR}/agg.next.json" "${TMP_DIR}/agg.json"
done

mv "${TMP_DIR}/agg.json" "${OUT_FILE}"
echo "wrote ${OUT_FILE} ($(jq '.benches | length' "${OUT_FILE}") benches)" >&2
