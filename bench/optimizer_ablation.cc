// Ablation of the optimizer rules: a fixed workload of plans evaluated
// with all rules on, all off, and each major rule toggled individually —
// quantifying what each rewrite contributes (the design-choice index of
// DESIGN.md). Correctness first: all configurations must return the same
// results (modulo termination, which is itself the any-shortest payoff).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "plan/evaluator.h"
#include "plan/optimizer.h"

namespace pathalg {
namespace {

using bench::Check;

PlanPtr KnowsEdgesPlan() {
  return PlanNode::Select(EdgeLabelEq(1, "Knows"), PlanNode::EdgesScan());
}

// The workload: one plan per rule family.
std::vector<PlanPtr> Workload() {
  PlanPtr knows = KnowsEdgesPlan();
  return {
      // pushdown + merge target (Figure 6).
      PlanNode::Select(FirstPropEq("name", Value("person0")),
                       PlanNode::Join(knows, knows)),
      // orderby-simplify target (§6).
      PlanNode::Project(
          {std::nullopt, std::nullopt, 1},
          PlanNode::OrderBy(
              OrderKey::kPG,
              PlanNode::GroupBy(
                  GroupKey::kNone,
                  PlanNode::Recursive(PathSemantics::kTrail, knows)))),
      // join-identity + union-dedup target.
      PlanNode::Union(PlanNode::Join(knows, PlanNode::NodesScan()), knows),
      // restrict-elim target.
      PlanNode::Restrict(
          PathSemantics::kTrail,
          PlanNode::Recursive(PathSemantics::kAcyclic, knows)),
  };
}

void PrintAblation() {
  bench::PrintHeader("optimizer rule ablation");
  PropertyGraph g = bench::ScaledSocialGraph(24);
  EvalOptions eval;
  eval.limits.max_path_length = 4;
  eval.limits.truncate = true;

  OptimizerOptions all_on;
  OptimizerOptions all_off;
  all_off.select_merge = all_off.select_pushdown = false;
  all_off.orderby_simplify = all_off.union_dedup = false;
  all_off.project_all = all_off.any_shortest = false;
  all_off.restrict_elim = all_off.join_identity = false;
  all_off.recursive_idempotent = false;

  size_t i = 0;
  for (const PlanPtr& plan : Workload()) {
    OptimizeResult on = Optimize(plan, all_on);
    OptimizeResult off = Optimize(plan, all_off);
    Check(off.applied.empty(), "all-off applies nothing");
    auto r_on = Evaluate(g, on.plan, eval);
    auto r_off = Evaluate(g, off.plan, eval);
    Check(r_on.ok() && r_off.ok(), "both configurations evaluate");
    Check(*r_on == *r_off, "optimization preserves results");
    std::printf("  plan %zu: %zu rule applications, |answer| = %zu\n", i++,
                on.applied.size(), r_on->size());
  }
  std::printf("\n");
}

void BM_WorkloadAllRules(benchmark::State& state) {
  PropertyGraph g = bench::ScaledSocialGraph(24);
  EvalOptions eval;
  eval.limits.max_path_length = 4;
  eval.limits.truncate = true;
  std::vector<PlanPtr> optimized;
  for (const PlanPtr& plan : Workload()) {
    optimized.push_back(Optimize(plan).plan);
  }
  for (auto _ : state) {
    for (const PlanPtr& plan : optimized) {
      auto r = Evaluate(g, plan, eval);
      benchmark::DoNotOptimize(r);
    }
  }
  state.SetLabel("all rules on");
}
BENCHMARK(BM_WorkloadAllRules);

void BM_WorkloadNoRules(benchmark::State& state) {
  PropertyGraph g = bench::ScaledSocialGraph(24);
  EvalOptions eval;
  eval.limits.max_path_length = 4;
  eval.limits.truncate = true;
  std::vector<PlanPtr> plans = Workload();
  for (auto _ : state) {
    for (const PlanPtr& plan : plans) {
      auto r = Evaluate(g, plan, eval);
      benchmark::DoNotOptimize(r);
    }
  }
  state.SetLabel("all rules off");
}
BENCHMARK(BM_WorkloadNoRules);

void BM_WorkloadSingleRuleOff(benchmark::State& state) {
  PropertyGraph g = bench::ScaledSocialGraph(24);
  EvalOptions eval;
  eval.limits.max_path_length = 4;
  eval.limits.truncate = true;
  OptimizerOptions opts;
  const char* label = "?";
  switch (state.range(0)) {
    case 0:
      opts.select_pushdown = false;
      label = "no select-pushdown";
      break;
    case 1:
      opts.orderby_simplify = false;
      label = "no orderby-simplify";
      break;
    case 2:
      opts.join_identity = false;
      label = "no join-identity";
      break;
    case 3:
      opts.restrict_elim = false;
      label = "no restrict-elim";
      break;
  }
  std::vector<PlanPtr> optimized;
  for (const PlanPtr& plan : Workload()) {
    optimized.push_back(Optimize(plan, opts).plan);
  }
  for (auto _ : state) {
    for (const PlanPtr& plan : optimized) {
      auto r = Evaluate(g, plan, eval);
      benchmark::DoNotOptimize(r);
    }
  }
  state.SetLabel(label);
}
BENCHMARK(BM_WorkloadSingleRuleOff)->DenseRange(0, 3);

}  // namespace
}  // namespace pathalg

int main(int argc, char** argv) {
  return pathalg::bench::BenchMain(argc, argv, pathalg::PrintAblation);
}
