// Reproduces Table 6: the Δ′ assignments of τθ for every θ, demonstrated
// live on the §5 walkthrough solution space; then benchmarks τθ.

#include <benchmark/benchmark.h>

#include "algebra/solution_space.h"
#include "bench_util.h"

namespace pathalg {
namespace {

using bench::Check;

void PrintTable6() {
  bench::PrintHeader("Table 6 — order-by semantics (Δ' assignments)");
  Figure1Ids ids;
  MakeFigure1Graph(&ids);
  PathSet trails = bench::Table3Trails(ids);
  SolutionSpace base = GroupBy(trails, GroupKey::kSTL);

  std::printf("%-5s %-18s %-18s %-14s\n", "theta", "Δ'(P)", "Δ'(G)",
              "Δ'(p)");
  for (int k = 0; k <= 6; ++k) {
    OrderKey key = static_cast<OrderKey>(k);
    SolutionSpace ordered = OrderBy(base, key);
    bool p_set = OrderKeyOrdersPartitions(key);
    bool g_set = OrderKeyOrdersGroups(key);
    bool a_set = OrderKeyOrdersPaths(key);
    std::printf("%-5s %-18s %-18s %-14s\n", OrderKeyToString(key),
                p_set ? "MinL(P)" : "Δ(P)  [unchanged]",
                g_set ? "MinL(G)" : "Δ(G)  [unchanged]",
                a_set ? "Len(p)" : "Δ(p)  [unchanged]");
    // Verify against the definitions.
    for (size_t p = 0; p < ordered.num_partitions(); ++p) {
      Check(ordered.PartitionRank(p) ==
                (p_set ? ordered.MinLenOfPartition(p) : 1),
            "partition rank per Table 6");
    }
    for (size_t grp = 0; grp < ordered.num_groups(); ++grp) {
      Check(ordered.GroupRank(grp) ==
                (g_set ? ordered.MinLenOfGroup(grp) : 1),
            "group rank per Table 6");
    }
    for (size_t i = 0; i < ordered.num_paths(); ++i) {
      Check(ordered.PathRank(i) == (a_set ? ordered.path(i).Len() : 1),
            "path rank per Table 6");
    }
  }
  std::printf("\n");
}

void BM_OrderBy(benchmark::State& state) {
  auto key = static_cast<OrderKey>(state.range(0));
  PropertyGraph g = bench::ScaledSocialGraph(48);
  PathSet knows = bench::LabelEdges(g, "Knows");
  PathSet trails = *Recursive(knows, PathSemantics::kTrail,
                              {.max_path_length = 4, .truncate = true});
  SolutionSpace base = GroupBy(trails, GroupKey::kSTL);
  for (auto _ : state) {
    SolutionSpace ss = OrderBy(base, key);
    benchmark::DoNotOptimize(ss);
  }
  state.SetLabel(std::string("tau_") + OrderKeyToString(key));
}
BENCHMARK(BM_OrderBy)->DenseRange(0, 6);

}  // namespace
}  // namespace pathalg

int main(int argc, char** argv) {
  return pathalg::bench::BenchMain(argc, argv, pathalg::PrintTable6);
}
