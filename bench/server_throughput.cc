// Multi-client server throughput (src/server): an in-process load driver
// that starts the concurrent TCP server on a kernel-picked loopback port
// and sweeps 1/2/4/8 concurrent sessions replaying the committed
// social_mixed workload, each client a real socket speaking the line
// protocol. This is the end-to-end concurrency measurement surface for
// future scaling PRs — QPS and p50/p99 round-trip latency per session
// count, emitted as compare.py-compatible JSON (`wall_time_ms` /
// `sum_iteration_time_ms` maps keyed by sessions_N, plus informational
// `qps` / `latency_p50_ms` / `latency_p99_ms` maps).
//
// The artifact phase enforces the serving determinism contract: sessions
// run with `!timing off`, so every response is a pure function of the
// request stream — each concurrent client's transcript must be
// byte-identical to a serial single-client run, and every `# expect`
// cardinality of the workload must appear verbatim in the responses.
//
// Flags (besides google-benchmark's):
//   --verify_only   determinism assertions + sweep table only
//   --json <file>   also write the sweep JSON to <file>
//
// POSIX-only (sockets); the artifact is skipped elsewhere.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timing.h"
#include "engine/workload_file.h"
#include "server/graph_catalog.h"
#include "server/line_client.h"
#include "server/session.h"
#include "server/tcp_server.h"

#ifndef PATHALG_WORKLOAD_DIR
#define PATHALG_WORKLOAD_DIR "bench/workloads"
#endif

namespace pathalg {
namespace bench {
namespace {

std::string g_json_path;

constexpr size_t kSessionCounts[] = {1, 2, 4, 8};
constexpr size_t kPasses = 3;  // full workload replays per client

/// The request stream every client sends: the workload's queries expanded
/// by their repeat counts, `kPasses` times over.
struct LoadPlan {
  engine::Workload workload;
  std::vector<std::string> requests;
  /// Expected response per request ("OK <n> paths") where the workload
  /// pins a cardinality; empty string = unpinned.
  std::vector<std::string> expected;
};

const LoadPlan& Plan() {
  static LoadPlan* plan = [] {
    auto* p = new LoadPlan();
    const std::string path =
        std::string(PATHALG_WORKLOAD_DIR) + "/social_mixed.gqlw";
    auto loaded = engine::LoadWorkloadFile(path);
    Check(loaded.ok(), "social_mixed.gqlw loads");
    p->workload = std::move(loaded).value();
    for (size_t pass = 0; pass < kPasses; ++pass) {
      for (const engine::WorkloadEntry& e : p->workload.entries) {
        for (size_t r = 0; r < e.repeat; ++r) {
          p->requests.push_back(e.query);
          p->expected.push_back(
              e.expect.has_value()
                  ? "OK " + std::to_string(*e.expect) + " paths"
                  : std::string());
        }
      }
    }
    return p;
  }();
  return *plan;
}

/// The server under test, shared by the artifact phase and the timing
/// cases (one catalog/cache/listener for the whole binary run — exactly
/// the long-lived shape a production deployment has).
struct ServerFixture {
  server::GraphCatalog catalog;
  std::unique_ptr<server::SessionManager> manager;
  std::unique_ptr<server::TcpServer> tcp;

  static ServerFixture& Get() {
    static ServerFixture* f = [] {
      auto* fx = new ServerFixture();
      server::SessionManagerOptions options;
      options.max_sessions = 16;  // above the widest sweep point
      options.default_graph_spec = Plan().workload.graph_spec;
      fx->manager = std::make_unique<server::SessionManager>(&fx->catalog,
                                                             options);
      fx->tcp = std::make_unique<server::TcpServer>(fx->manager.get());
      Status started = fx->tcp->Start({});
      Check(started.ok(), "in-process TCP server starts on an ephemeral "
                          "loopback port");
      return fx;
    }();
    return *f;
  }
};

/// One client: connect, switch to deterministic responses, replay the
/// whole request stream. Fills `transcript` (one response line per
/// request) and `latencies_us` (per round trip) when non-null.
void RunClient(uint16_t port, std::vector<std::string>* transcript,
               std::vector<uint64_t>* latencies_us, bool* ok) {
  const LoadPlan& plan = Plan();
  server::LineClient client;
  *ok = false;
  if (!client.Connect(port).ok()) return;
  auto timing_off = client.RoundTrip("!timing off");
  if (!timing_off.ok() || *timing_off != "OK timing off") return;
  for (const std::string& request : plan.requests) {
    const SteadyClock::time_point start = SteadyClock::now();
    auto response = client.RoundTrip(request);
    const uint64_t us = MicrosSince(start);
    if (!response.ok()) return;
    if (transcript != nullptr) transcript->push_back(*response);
    if (latencies_us != nullptr) latencies_us->push_back(us);
  }
  *ok = true;
}

/// Runs `sessions` concurrent clients; returns false if any failed.
bool RunWave(size_t sessions, std::vector<std::vector<std::string>>* scripts,
             std::vector<uint64_t>* all_latencies_us, uint64_t* wall_us) {
  const uint16_t port = ServerFixture::Get().tcp->port();
  std::vector<std::thread> threads;
  std::vector<std::vector<std::string>> transcripts(sessions);
  std::vector<std::vector<uint64_t>> latencies(sessions);
  std::vector<uint8_t> ok(sessions, 0);
  const SteadyClock::time_point start = SteadyClock::now();
  for (size_t c = 0; c < sessions; ++c) {
    threads.emplace_back([&, c] {
      bool client_ok = false;
      RunClient(port, &transcripts[c], &latencies[c], &client_ok);
      ok[c] = client_ok ? 1 : 0;
    });
  }
  for (std::thread& t : threads) t.join();
  if (wall_us != nullptr) *wall_us = MicrosSince(start);
  for (size_t c = 0; c < sessions; ++c) {
    if (ok[c] == 0) return false;
  }
  if (scripts != nullptr) *scripts = std::move(transcripts);
  if (all_latencies_us != nullptr) {
    for (const std::vector<uint64_t>& l : latencies) {
      all_latencies_us->insert(all_latencies_us->end(), l.begin(), l.end());
    }
  }
  return true;
}

double PercentileMs(std::vector<uint64_t> us, double p) {
  if (us.empty()) return 0.0;
  std::sort(us.begin(), us.end());
  const size_t idx = std::min(
      us.size() - 1, static_cast<size_t>(p * static_cast<double>(us.size())));
  return static_cast<double>(us[idx]) / 1000.0;
}

void PrintArtifact() {
#ifndef __unix__
  PrintHeader("server throughput (skipped: requires POSIX sockets)");
  return;
#else
  PrintHeader("concurrent serving — multi-client TCP throughput sweep");
  const LoadPlan& plan = Plan();
  ServerFixture& fx = ServerFixture::Get();
  std::printf("graph: %s; %zu requests/client (%zu queries x %zu passes); "
              "server 127.0.0.1:%u, max_sessions=16\n\n",
              plan.workload.graph_spec.c_str(), plan.requests.size(),
              plan.requests.size() / kPasses, kPasses, fx.tcp->port());

  // --- The contract: every concurrent client's transcript is
  // byte-identical to a serial single-client run. -----------------------
  std::vector<std::vector<std::string>> reference;
  Check(RunWave(1, &reference, nullptr, nullptr), "serial reference client");
  Check(reference.size() == 1 &&
            reference[0].size() == plan.requests.size(),
        "serial reference answered every request");
  for (size_t i = 0; i < plan.requests.size(); ++i) {
    if (!plan.expected[i].empty()) {
      Check(reference[0][i] == plan.expected[i],
            "responses carry the workload's pinned cardinalities");
    }
  }
  for (size_t sessions : {2u, 4u, 8u}) {
    std::vector<std::vector<std::string>> transcripts;
    Check(RunWave(sessions, &transcripts, nullptr, nullptr),
          "concurrent wave completed");
    for (const std::vector<std::string>& t : transcripts) {
      Check(t == reference[0],
            "concurrent client transcript byte-identical to the serial "
            "single-client run");
    }
    std::printf("  %zu concurrent sessions: %zu transcripts == serial "
                "reference\n",
                sessions, transcripts.size());
  }

  // --- The sweep: QPS + latency percentiles per session count. ---------
  std::printf("\n  %-10s %10s %10s %10s %10s\n", "sessions", "wall ms",
              "QPS", "p50 ms", "p99 ms");
  std::string wall_json, iter_json, qps_json, p50_json, p99_json;
  for (size_t sessions : kSessionCounts) {
    std::vector<uint64_t> latencies;
    uint64_t wall_us = 0;
    Check(RunWave(sessions, nullptr, &latencies, &wall_us),
          "sweep wave completed");
    const double wall_ms = static_cast<double>(wall_us) / 1000.0;
    const double qps =
        wall_us == 0 ? 0.0
                     : static_cast<double>(latencies.size()) * 1e6 /
                           static_cast<double>(wall_us);
    uint64_t sum_us = 0;
    for (uint64_t us : latencies) sum_us += us;
    const double mean_ms =
        latencies.empty()
            ? 0.0
            : static_cast<double>(sum_us) / 1000.0 /
                  static_cast<double>(latencies.size());
    const double p50 = PercentileMs(latencies, 0.50);
    const double p99 = PercentileMs(latencies, 0.99);
    std::printf("  %-10zu %10.2f %10.1f %10.2f %10.2f\n", sessions, wall_ms,
                qps, p50, p99);
    const std::string key = "sessions_" + std::to_string(sessions);
    auto append = [&](std::string& json, double v) {
      json += (json.empty() ? "" : ", ") + ("\"" + key + "\": ") +
              std::to_string(v);
    };
    append(wall_json, wall_ms);
    append(iter_json, mean_ms);  // mean round-trip latency per query
    append(qps_json, qps);
    append(p50_json, p50);
    append(p99_json, p99);
  }
  std::string json = "{\n  \"schema\": \"pathalg-server-throughput-v1\",\n";
  json += "  \"hardware_threads\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"requests_per_client\": " +
          std::to_string(plan.requests.size()) + ",\n";
  json += "  \"wall_time_ms\": {" + wall_json + "},\n";
  json += "  \"sum_iteration_time_ms\": {" + iter_json + "},\n";
  json += "  \"qps\": {" + qps_json + "},\n";
  json += "  \"latency_p50_ms\": {" + p50_json + "},\n";
  json += "  \"latency_p99_ms\": {" + p99_json + "}\n}\n";
  std::printf("\n-- JSON sweep ---------------------------------------\n%s",
              json.c_str());
  if (!g_json_path.empty()) {
    std::ofstream out(g_json_path);
    out << json;
    std::printf("(wrote %s)\n", g_json_path.c_str());
  }
  std::printf("\n");
#endif  // __unix__
}

#ifdef __unix__
void BM_ServerConcurrentSessions(benchmark::State& state) {
  const size_t sessions = static_cast<size_t>(state.range(0));
  ServerFixture::Get();  // server up before the timing loop
  size_t total_requests = 0;
  for (auto _ : state) {
    const bool ok = RunWave(sessions, nullptr, nullptr, nullptr);
    if (!ok) {
      state.SkipWithError("client wave failed");
      return;
    }
    total_requests += sessions * Plan().requests.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(total_requests));
  state.SetLabel("sessions:" + std::to_string(sessions));
}
BENCHMARK(BM_ServerConcurrentSessions)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
#endif  // __unix__

/// Strips "--json <file>" before google-benchmark sees it.
void StripFlags(int* argc, char** argv) {
  for (int i = 1; i < *argc;) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= *argc) {
        std::fprintf(stderr, "FATAL: --json needs a value\n");
        std::exit(1);
      }
      g_json_path = argv[i + 1];
      for (int j = i; j + 2 < *argc; ++j) argv[j] = argv[j + 2];
      *argc -= 2;
      argv[*argc] = nullptr;
    } else {
      ++i;
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace pathalg

int main(int argc, char** argv) {
  pathalg::bench::StripFlags(&argc, argv);
  return pathalg::bench::BenchMain(argc, argv,
                                   pathalg::bench::PrintArtifact);
}
