// Thread-scaling sweep for the parallel operator runtime (ROADMAP
// "Parallel Select/Join/Recursive"): σ, ⋈ and ϕ over the skewed
// (preferential-attachment) social graphs, at 1/2/4/8 eval threads.
//
// The artifact phase is the determinism contract, enforced: every
// workload is evaluated serially and at each thread count, and the
// outputs must be *byte-identical* — same paths in the same order, not
// just set-equal. It then measures a wall-time speedup curve and prints
// it as compare.py-compatible JSON (`wall_time_ms` /
// `sum_iteration_time_ms` maps keyed by workload/thread-count, plus an
// informational `speedup_vs_serial` map).
//
// Speedup is reported wherever the binary runs, but only *asserted*
// (>= 2x at 4 threads on the ϕ-dominated workloads) when the host
// actually has >= 4 hardware threads AND PATHALG_REQUIRE_SPEEDUP is set
// in the environment — a smoke container pinned to one core cannot
// physically exhibit parallel speedup, and a load-spiked CI runner
// should not fail the build on it. Determinism is always asserted.
//
// Flags (besides google-benchmark's):
//   --verify_only   determinism assertions + sweep table only
//   --json <file>   also write the sweep JSON to <file>

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timing.h"
#include "engine/replay.h"
#include "plan/evaluator.h"

namespace pathalg {
namespace bench {
namespace {

std::string g_json_path;

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

/// The sweep's parallel knobs: a small min_chunk so even mid-sized
/// frontiers fan out (the skewed graphs concentrate work in hub buckets,
/// which is exactly what chunk stealing is for).
ParallelOptions Par(size_t threads) { return {threads, /*min_chunk=*/64}; }

struct Fixture {
  PropertyGraph g;
  PathSet knows;
  PathSet follows;
  PathSet trails;  // bounded ϕTrail closure: the σ/⋈ input set
  EvalLimits trail_limits;

  static const Fixture& Get() {
    static Fixture* f = [] {
      auto* fx = new Fixture();
      SkewedSocialGraphOptions opts;
      opts.num_persons = 180;
      opts.knows_per_person = 4;
      opts.follows_per_person = 3;
      opts.seed = 7;
      fx->g = MakeSkewedSocialGraph(opts);
      fx->knows = LabelEdges(fx->g, "Knows");
      fx->follows = LabelEdges(fx->g, "Follows");
      fx->trail_limits.max_path_length = 3;
      fx->trail_limits.truncate = true;
      fx->trails = Recursive(fx->knows, PathSemantics::kTrail,
                             fx->trail_limits)
                       .value();
      return fx;
    }();
    return *f;
  }
};

/// One sweep workload: evaluate at `threads`, returning the result set.
struct Workload {
  const char* name;
  PathSet (*run)(size_t threads);
};

PathSet RunPhiTrail(size_t threads) {
  const Fixture& fx = Fixture::Get();
  return Recursive(fx.knows, PathSemantics::kTrail, fx.trail_limits,
                   PhiEngine::kOptimized, Par(threads))
      .value();
}

PathSet RunPhiAcyclic(size_t threads) {
  const Fixture& fx = Fixture::Get();
  return Recursive(fx.knows, PathSemantics::kAcyclic, fx.trail_limits,
                   PhiEngine::kOptimized, Par(threads))
      .value();
}

PathSet RunPhiShortest(size_t threads) {
  const Fixture& fx = Fixture::Get();
  return Recursive(fx.knows, PathSemantics::kShortest, {},
                   PhiEngine::kOptimized, Par(threads))
      .value();
}

PathSet RunSelect(size_t threads) {
  const Fixture& fx = Fixture::Get();
  // A per-path predicate over the materialized trail closure.
  return Select(fx.g, fx.trails, *LenCompare(CompareOp::kGe, 2),
                Par(threads));
}

PathSet RunJoin(size_t threads) {
  const Fixture& fx = Fixture::Get();
  return Join(fx.trails, fx.follows, Par(threads));
}

constexpr Workload kWorkloads[] = {
    {"phi_trail", RunPhiTrail},     {"phi_acyclic", RunPhiAcyclic},
    {"phi_shortest", RunPhiShortest}, {"select_len", RunSelect},
    {"join_follows", RunJoin},
};

/// Times 3 evaluations: `median` gets the per-evaluation median (the
/// load-resistant signal, = this artifact's sum_iteration_time_ms) and
/// `total` the summed wall clock of all 3 (= its wall_time_ms).
void TimeRuns(PathSet (*run)(size_t), size_t threads, double* median,
              double* total) {
  double times[3];
  for (double& t : times) {
    const SteadyClock::time_point start = SteadyClock::now();
    PathSet r = run(threads);
    benchmark::DoNotOptimize(r);
    t = static_cast<double>(MicrosSince(start)) / 1000.0;
  }
  *total = times[0] + times[1] + times[2];
  std::sort(std::begin(times), std::end(times));
  *median = times[1];
}

void PrintArtifact() {
  PrintHeader("parallel operator scaling — σ/⋈/ϕ over CSR partitions");
  const Fixture& fx = Fixture::Get();
  std::printf("graph: skewed social, %zu nodes, %zu edges; |Knows|=%zu, "
              "|trails<=3|=%zu; hardware threads: %u\n\n",
              fx.g.num_nodes(), fx.g.num_edges(), fx.knows.size(),
              fx.trails.size(), std::thread::hardware_concurrency());

  // --- The contract: parallel output byte-identical to serial. ---------
  for (const Workload& w : kWorkloads) {
    const PathSet serial = w.run(1);
    Check(!serial.empty(), "sweep workload produced paths");
    for (size_t t : kThreadCounts) {
      if (t == 1) continue;
      const PathSet parallel = w.run(t);
      Check(parallel.paths() == serial.paths(),
            "parallel output byte-identical to serial (same paths, same "
            "order)");
    }
    std::printf("  %-13s |answer| = %-7zu parallel == serial at t=2,4,8\n",
                w.name, serial.size());
  }

  // --- End-to-end: the # threads directive through ReplayWorkload. -----
  {
    engine::Workload wl;
    wl.graph_spec = "skewed persons=120 knows=4 follows=2 seed=7";
    wl.threads = 4;
    engine::WorkloadEntry e;
    e.name = "shortest_closure";
    e.query = "MATCH ANY SHORTEST p = (?x)-[:Knows+]->(?y)";
    wl.entries.push_back(e);
    engine::ReplayOptions serial_opts;
    serial_opts.threads = 1;
    auto serial = engine::ReplayWorkload(wl, serial_opts);
    auto par = engine::ReplayWorkload(wl, {});  // honors # threads

    Check(serial.ok() && par.ok(), "replay sweep ran");
    Check(serial->ok() && par->ok(), "replay sweep had no errors");
    Check(par->threads == 4, "replay honored the # threads directive");
    Check(serial->queries[0].result_paths == par->queries[0].result_paths,
          "replay cardinality identical across thread counts");
    std::printf("  %-13s |answer| = %-7zu replay(# threads 4) == replay(1)\n",
                "replay_e2e", par->queries[0].result_paths);
  }

  // --- Speedup curve (medians of 3). -----------------------------------
  std::string wall_json, iter_json, speedup_json;
  std::printf("\n  %-13s %10s %10s %10s %10s   speedup @4\n", "workload",
              "t=1 ms", "t=2 ms", "t=4 ms", "t=8 ms");
  double phi_best_speedup4 = 0.0;
  for (const Workload& w : kWorkloads) {
    double ms[4];
    double wall[4];
    size_t i = 0;
    for (size_t t : kThreadCounts) {
      TimeRuns(w.run, t, &ms[i], &wall[i]);
      ++i;
    }
    const double speedup4 = ms[2] > 0 ? ms[0] / ms[2] : 0.0;
    if (std::strncmp(w.name, "phi_", 4) == 0) {
      if (speedup4 > phi_best_speedup4) phi_best_speedup4 = speedup4;
    }
    std::printf("  %-13s %10.2f %10.2f %10.2f %10.2f   %9.2fx\n", w.name,
                ms[0], ms[1], ms[2], ms[3], speedup4);
    i = 0;
    for (size_t t : kThreadCounts) {
      const std::string key =
          std::string(w.name) + "/t" + std::to_string(t);
      wall_json += (wall_json.empty() ? "" : ", ") + ("\"" + key + "\": ") +
                   std::to_string(wall[i]);
      iter_json += (iter_json.empty() ? "" : ", ") + ("\"" + key + "\": ") +
                   std::to_string(ms[i]);
      ++i;
    }
    speedup_json += (speedup_json.empty() ? "" : ", ") + ("\"" + std::string(w.name) + "\": ") +
                    std::to_string(speedup4);
  }
  std::string json = "{\n  \"schema\": \"pathalg-parallel-scaling-v1\",\n";
  json += "  \"hardware_threads\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"wall_time_ms\": {" + wall_json + "},\n";
  json += "  \"sum_iteration_time_ms\": {" + iter_json + "},\n";
  json += "  \"speedup_vs_serial_at_4\": {" + speedup_json + "}\n}\n";
  std::printf("\n-- JSON sweep ---------------------------------------\n%s",
              json.c_str());
  if (!g_json_path.empty()) {
    std::ofstream out(g_json_path);
    out << json;
    std::printf("(wrote %s)\n", g_json_path.c_str());
  }

  // --- Merge-phase hashing: the serial fraction the chunk bodies now
  // pre-pay. The parallel operators' merge loop used to recompute every
  // candidate's hash on the calling thread (PathSet::Insert); chunk
  // bodies now carry precomputed hashes to PathSet::InsertHashed. This
  // comparison isolates that serial-phase saving — it is core-count
  // independent, so it is measurable even on a 1-CPU container where the
  // thread sweep above cannot show speedup.
  {
    const PathSet joined = RunJoin(1);
    std::vector<std::pair<Path, size_t>> candidates;
    candidates.reserve(joined.size());
    for (const Path& p : joined) candidates.emplace_back(p, p.Hash());
    auto merge_insert = [&] {
      PathSet s;
      for (const auto& [p, h] : candidates) s.Insert(p);
      return s;
    };
    auto merge_hashed = [&] {
      PathSet s;
      for (const auto& [p, h] : candidates) s.InsertHashed(p, h);
      return s;
    };
    Check(merge_insert().paths() == merge_hashed().paths(),
          "InsertHashed merge byte-identical to Insert merge");
    double insert_ms[3], hashed_ms[3];
    for (int r = 0; r < 3; ++r) {
      SteadyClock::time_point t0 = SteadyClock::now();
      PathSet a = merge_insert();
      benchmark::DoNotOptimize(a);
      insert_ms[r] = static_cast<double>(MicrosSince(t0)) / 1000.0;
      t0 = SteadyClock::now();
      PathSet b = merge_hashed();
      benchmark::DoNotOptimize(b);
      hashed_ms[r] = static_cast<double>(MicrosSince(t0)) / 1000.0;
    }
    std::sort(std::begin(insert_ms), std::end(insert_ms));
    std::sort(std::begin(hashed_ms), std::end(hashed_ms));
    std::printf("\n  merge of %zu candidates: Insert (rehash) %.2f ms, "
                "InsertHashed %.2f ms\n",
                candidates.size(), insert_ms[1], hashed_ms[1]);
  }

  // Only a genuinely multi-core host can show parallel speedup; opt in
  // where that is guaranteed (dev machines, perf CI).
  if (std::getenv("PATHALG_REQUIRE_SPEEDUP") != nullptr &&
      std::thread::hardware_concurrency() >= 4) {
    Check(phi_best_speedup4 >= 2.0,
          "a phi-dominated workload reached >= 2x speedup at 4 threads");
  }
  std::printf("\n");
}

void BM_OperatorThreads(benchmark::State& state) {
  const Workload& w = kWorkloads[static_cast<size_t>(state.range(0))];
  const size_t threads = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    PathSet r = w.run(threads);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::string(w.name) + "/threads:" +
                 std::to_string(threads));
}
BENCHMARK(BM_OperatorThreads)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

/// The σ/⋈/ϕ merge phase in isolation: arg 0 rehashes every candidate on
/// the merge thread (the pre-InsertHashed behavior), arg 1 consumes
/// hashes precomputed the way the chunk bodies now do.
void BM_MergePhase(benchmark::State& state) {
  const bool hashed = state.range(0) != 0;
  const PathSet joined = RunJoin(1);
  std::vector<std::pair<Path, size_t>> candidates;
  candidates.reserve(joined.size());
  for (const Path& p : joined) candidates.emplace_back(p, p.Hash());
  for (auto _ : state) {
    PathSet s;
    if (hashed) {
      for (const auto& [p, h] : candidates) s.InsertHashed(p, h);
    } else {
      for (const auto& [p, h] : candidates) s.Insert(p);
    }
    benchmark::DoNotOptimize(s);
  }
  state.SetLabel(hashed ? "insert_hashed" : "insert_rehash");
}
BENCHMARK(BM_MergePhase)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Strips "--json <file>" before google-benchmark sees it.
void StripFlags(int* argc, char** argv) {
  for (int i = 1; i < *argc;) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= *argc) {
        std::fprintf(stderr, "FATAL: --json needs a value\n");
        std::exit(1);
      }
      g_json_path = argv[i + 1];
      for (int j = i; j + 2 < *argc; ++j) argv[j] = argv[j + 2];
      *argc -= 2;
      argv[*argc] = nullptr;
    } else {
      ++i;
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace pathalg

int main(int argc, char** argv) {
  pathalg::bench::StripFlags(&argc, argv);
  return pathalg::bench::BenchMain(argc, argv,
                                   pathalg::bench::PrintArtifact);
}
