// Reproduces Table 4: the solution-space organization (partitions ×
// groups) induced by each of the eight γψ variants, computed live on the
// Table 3 trail set; then benchmarks γψ scaling.

#include <benchmark/benchmark.h>

#include "algebra/solution_space.h"
#include "bench_util.h"

namespace pathalg {
namespace {

using bench::Check;

const char* OrganizationText(GroupKey k) {
  switch (k) {
    case GroupKey::kNone:
      return "1 partition, 1 group";
    case GroupKey::kS:
    case GroupKey::kT:
    case GroupKey::kST:
      return "N partitions, 1 group per partition";
    case GroupKey::kL:
      return "1 partition, M groups per partition";
    case GroupKey::kSL:
    case GroupKey::kTL:
    case GroupKey::kSTL:
      return "N partitions, M groups per partition";
  }
  return "?";
}

void PrintTable4() {
  bench::PrintHeader("Table 4 — group-by expressions and organizations");
  Figure1Ids ids;
  MakeFigure1Graph(&ids);
  PathSet trails = bench::Table3Trails(ids);

  std::printf("%-10s %-44s %-11s %s\n", "gamma", "organization (paper)",
              "partitions", "groups");
  for (int k = 0; k <= 7; ++k) {
    GroupKey key = static_cast<GroupKey>(k);
    SolutionSpace ss = GroupBy(trails, key);
    std::printf("gamma_%-4s %-44s %-11zu %zu\n", GroupKeyToString(key),
                OrganizationText(key), ss.num_partitions(), ss.num_groups());
    // Structural checks per Table 4.
    bool single_partition = key == GroupKey::kNone || key == GroupKey::kL;
    Check((ss.num_partitions() == 1) == single_partition,
          "partition count shape");
    if (!GroupKeyUsesLength(key)) {
      Check(ss.num_groups() == ss.num_partitions(),
            "one group per partition when L unused");
    }
  }
  std::printf("\n");
}

void BM_GroupByScaling(benchmark::State& state) {
  PropertyGraph g = bench::ScaledSocialGraph(
      static_cast<size_t>(state.range(0)));
  PathSet knows = bench::LabelEdges(g, "Knows");
  PathSet trails = *Recursive(knows, PathSemantics::kTrail,
                              {.max_path_length = 4, .truncate = true});
  for (auto _ : state) {
    SolutionSpace ss = GroupBy(trails, GroupKey::kSTL);
    benchmark::DoNotOptimize(ss);
  }
  state.counters["paths"] = static_cast<double>(trails.size());
}
BENCHMARK(BM_GroupByScaling)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
}  // namespace pathalg

int main(int argc, char** argv) {
  return pathalg::bench::BenchMain(argc, argv, pathalg::PrintTable4);
}
