#!/usr/bin/env python3
"""Diff two pathalg bench/replay JSON files (ROADMAP "bench trajectory
tooling").

Works on any pair of files carrying the shared rollup maps — the
`bench/run_all.sh` aggregates (BENCH_*.json, schema pathalg-bench-v1) and
the `engine::ReplayWorkload` reports (schema pathalg-replay-v1) both emit
`wall_time_ms` and `sum_iteration_time_ms` keyed by bench/query name.

Usage:
  bench/compare.py BENCH_baseline.json BENCH_new.json
  bench/compare.py --metric wall_time_ms old.json new.json
  bench/compare.py --max-regression 25 BENCH_baseline.json BENCH_new.json

Unreadable files or files missing the rollup maps exit 2 (usage error)
in any mode. Beyond that, without --max-regression the diff is
informational and exits 0. With it, exits 1 when any bench present in
BOTH files regressed by more than the given percentage on the chosen
metric (new benches and removed benches are reported but never gate). The default metric is
sum_iteration_time_ms — the per-iteration signal, which unlike wall time
does not grow with --benchmark_min_time or machine load spikes.
"""

import argparse
import json
import sys


def load_rollup(path: str, metric: str) -> dict:
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"compare.py: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rollup = data.get(metric)
    if not isinstance(rollup, dict) or not rollup:
        print(
            f"compare.py: {path} has no '{metric}' map "
            f"(schema: {data.get('schema', '<missing>')})",
            file=sys.stderr,
        )
        sys.exit(2)
    return {k: float(v) for k, v in rollup.items()}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="old JSON (e.g. BENCH_baseline.json)")
    ap.add_argument("new", help="new JSON (e.g. BENCH_new.json)")
    ap.add_argument(
        "--metric",
        default="sum_iteration_time_ms",
        choices=["sum_iteration_time_ms", "wall_time_ms"],
        help="rollup map to diff (default: %(default)s)",
    )
    ap.add_argument(
        "--max-regression",
        type=float,
        default=None,
        metavar="PCT",
        help="exit 1 when any common bench slows down by more than PCT%%",
    )
    ap.add_argument(
        "--min-ms",
        type=float,
        default=1.0,
        metavar="MS",
        help="ignore regressions on benches faster than MS in the baseline "
        "(noise floor, default %(default)s)",
    )
    args = ap.parse_args()

    base = load_rollup(args.baseline, args.metric)
    new = load_rollup(args.new, args.metric)

    common = sorted(set(base) & set(new))
    added = sorted(set(new) - set(base))
    removed = sorted(set(base) - set(new))

    width = max((len(n) for n in common + added + removed), default=10)
    print(f"metric: {args.metric}")
    print(f"{'bench':<{width}} {'old ms':>12} {'new ms':>12} "
          f"{'delta ms':>12} {'delta %':>9}")
    regressions = []
    for name in common:
        old_ms, new_ms = base[name], new[name]
        delta = new_ms - old_ms
        pct = (delta / old_ms * 100.0) if old_ms > 0 else float("inf")
        flag = ""
        if (
            args.max_regression is not None
            and pct > args.max_regression
            and old_ms >= args.min_ms
        ):
            regressions.append((name, pct))
            flag = "  << REGRESSION"
        print(f"{name:<{width}} {old_ms:>12.3f} {new_ms:>12.3f} "
              f"{delta:>+12.3f} {pct:>+8.1f}%{flag}")
    for name in added:
        print(f"{name:<{width}} {'-':>12} {new[name]:>12.3f}   (new bench)")
    for name in removed:
        print(f"{name:<{width}} {base[name]:>12.3f} {'-':>12}   (removed)")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} bench(es) regressed more than "
            f"{args.max_regression:.1f}% "
            f"({', '.join(f'{n} +{p:.1f}%' for n, p in regressions)})"
        )
        return 1
    if args.max_regression is not None:
        print(f"\nOK: no bench regressed more than {args.max_regression:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
