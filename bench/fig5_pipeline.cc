// Reproduces Figure 5: the full extended-algebra pipeline
// π(*,*,1)(τA(γST(ϕTrail(σ_{Knows}(Edges(G)))))) — the ANY SHORTEST TRAIL
// query — printed, verified step by step against §5's walkthrough, and
// benchmarked stage by stage (ϕ vs γ vs τ vs π cost breakdown).

#include <benchmark/benchmark.h>

#include "algebra/solution_space.h"
#include "bench_util.h"
#include "plan/evaluator.h"

namespace pathalg {
namespace {

using bench::Check;

void PrintFigure5() {
  bench::PrintHeader("Figure 5 — order-by/group-by/projection pipeline");
  Figure1Ids ids;
  PropertyGraph g = MakeFigure1Graph(&ids);

  PlanPtr plan = PlanNode::Project(
      {std::nullopt, std::nullopt, 1},
      PlanNode::OrderBy(
          OrderKey::kA,
          PlanNode::GroupBy(
              GroupKey::kST,
              PlanNode::Recursive(
                  PathSemantics::kTrail,
                  PlanNode::Select(EdgeLabelEq(1, "Knows"),
                                   PlanNode::EdgesScan())))));
  std::printf("%s\n", plan->ToTreeString().c_str());
  std::printf("algebra: %s\n\n", plan->ToAlgebraString().c_str());

  // Step-by-step (§5 steps 1-6).
  PathSet edges = EdgesOf(g);                      // step 1
  PathSet knows = Select(g, edges, *EdgeLabelEq(1, "Knows"));  // step 2
  Check(knows.size() == 4, "step 2: e1..e4");
  PathSet trails = *Recursive(knows, PathSemantics::kTrail);  // step 3
  Check(trails.size() == 12, "step 3: complete trail answer");
  SolutionSpace grouped = GroupBy(trails, GroupKey::kST);  // step 4
  Check(grouped.num_partitions() == 9, "step 4: 9 endpoint partitions");
  SolutionSpace ordered = OrderBy(grouped, OrderKey::kA);  // step 5
  PathSet projected =
      *Project(ordered, {std::nullopt, std::nullopt, 1});  // step 6
  Check(projected.size() == 9, "step 6: one shortest trail per pair");

  PathSet full = *Evaluate(g, plan);
  Check(full == projected, "plan evaluation matches manual pipeline");
  // The paper's walkthrough (restricted to Table 3's paths) produces
  // {p1,p3,p5,p7,p9,p11,p13}; all are in the full answer.
  for (const Path& p : std::vector<Path>{
           Path({ids.n1, ids.n2}, {ids.e1}),
           Path({ids.n1, ids.n2, ids.n3}, {ids.e1, ids.e2}),
           Path({ids.n1, ids.n2, ids.n4}, {ids.e1, ids.e4}),
           Path({ids.n2, ids.n3, ids.n2}, {ids.e2, ids.e3}),
           Path({ids.n2, ids.n3}, {ids.e2}),
           Path({ids.n2, ids.n4}, {ids.e4}),
           Path({ids.n3, ids.n2, ids.n4}, {ids.e3, ids.e4})}) {
    Check(full.Contains(p), "paper walkthrough path present");
  }
  std::printf("result: %s\n\n", full.ToString(g).c_str());
}

struct StageInput {
  PropertyGraph g;
  PathSet trails;
  SolutionSpace grouped;
  SolutionSpace ordered;
};

StageInput MakeStageInput(size_t persons) {
  StageInput in{bench::ScaledSocialGraph(persons), {}, {}, {}};
  PathSet knows = bench::LabelEdges(in.g, "Knows");
  in.trails = *Recursive(knows, PathSemantics::kTrail,
                         {.max_path_length = 4, .truncate = true});
  in.grouped = GroupBy(in.trails, GroupKey::kST);
  in.ordered = OrderBy(in.grouped, OrderKey::kA);
  return in;
}

void BM_StagePhiTrail(benchmark::State& state) {
  StageInput in = MakeStageInput(32);
  PathSet knows = bench::LabelEdges(in.g, "Knows");
  for (auto _ : state) {
    auto r = Recursive(knows, PathSemantics::kTrail,
                       {.max_path_length = 4, .truncate = true});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_StagePhiTrail);

void BM_StageGroupBy(benchmark::State& state) {
  StageInput in = MakeStageInput(32);
  for (auto _ : state) {
    auto ss = GroupBy(in.trails, GroupKey::kST);
    benchmark::DoNotOptimize(ss);
  }
}
BENCHMARK(BM_StageGroupBy);

void BM_StageOrderBy(benchmark::State& state) {
  StageInput in = MakeStageInput(32);
  for (auto _ : state) {
    auto ss = OrderBy(in.grouped, OrderKey::kA);
    benchmark::DoNotOptimize(ss);
  }
}
BENCHMARK(BM_StageOrderBy);

void BM_StageProject(benchmark::State& state) {
  StageInput in = MakeStageInput(32);
  for (auto _ : state) {
    auto r = Project(in.ordered, {std::nullopt, std::nullopt, 1});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_StageProject);

void BM_WholePipeline(benchmark::State& state) {
  PropertyGraph g =
      bench::ScaledSocialGraph(static_cast<size_t>(state.range(0)));
  PlanPtr plan = PlanNode::Project(
      {std::nullopt, std::nullopt, 1},
      PlanNode::OrderBy(
          OrderKey::kA,
          PlanNode::GroupBy(
              GroupKey::kST,
              PlanNode::Recursive(
                  PathSemantics::kTrail,
                  PlanNode::Select(EdgeLabelEq(1, "Knows"),
                                   PlanNode::EdgesScan())))));
  EvalOptions opts;
  opts.limits.max_path_length = 4;
  opts.limits.truncate = true;
  for (auto _ : state) {
    auto r = Evaluate(g, plan, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_WholePipeline)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
}  // namespace pathalg

int main(int argc, char** argv) {
  return pathalg::bench::BenchMain(argc, argv, pathalg::PrintFigure5);
}
