// Microbenchmark for the CSR adjacency index: neighbor expansion and
// label lookups on a skewed (preferential-attachment) social graph, the
// degree distribution where adjacency layout matters most. Two layouts
// compete on the same access patterns:
//   csr    — flat offsets/edge_id arrays (contiguous range scans)
//   full   — no index at all: scan the whole edge list per lookup (what
//            EdgesWithLabel-style queries cost before any adjacency index)
// (The pre-CSR vector-of-vectors "legacy" layout was deleted after its
// PR 3–4 soak; its numbers live in the git history of BENCH_baseline.json.)
// The --verify_only artifact pins the structural facts: degree sums equal
// the edge count and the label CSR covers exactly the labelled edges.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <random>
#include <vector>

#include "bench_util.h"

namespace pathalg {
namespace {

using bench::Check;

PropertyGraph SkewedGraph(size_t persons) {
  SkewedSocialGraphOptions opts;
  opts.num_persons = persons;
  opts.knows_per_person = 6;
  opts.follows_per_person = 3;
  opts.seed = 17;
  return MakeSkewedSocialGraph(opts);
}

/// A deterministic uniform sample of nodes to expand, standing in for a
/// recursive frontier.
std::vector<NodeId> SampleFrontier(const PropertyGraph& g, size_t k) {
  std::mt19937_64 rng(99);
  std::vector<NodeId> frontier;
  frontier.reserve(k);
  std::uniform_int_distribution<NodeId> dist(
      0, static_cast<NodeId>(g.num_nodes() - 1));
  for (size_t i = 0; i < k; ++i) frontier.push_back(dist(rng));
  return frontier;
}

void PrintAdjacencyArtifact() {
  bench::PrintHeader(
      "CSR adjacency vs full edge scans (skewed graph)");
  PropertyGraph g = SkewedGraph(500);
  Check(g.num_edges() == 500 * 9, "skewed graph has persons*9 edges");

  size_t out_sum = 0, in_sum = 0;
  size_t max_in = 0;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    out_sum += g.OutDegree(n);
    in_sum += g.InDegree(n);
    max_in = std::max(max_in, g.InDegree(n));
  }
  Check(out_sum == g.num_edges(), "CSR out-degree sum == num_edges");
  Check(in_sum == g.num_edges(), "CSR in-degree sum == num_edges");

  LabelId knows = g.FindLabel("Knows");
  LabelId follows = g.FindLabel("Follows");
  Check(g.EdgesWithLabel(knows).size() == 500 * 6,
        "label CSR covers every Knows edge");
  Check(g.EdgesWithLabel(follows).size() == 500 * 3,
        "label CSR covers every Follows edge");
  Check(g.EdgesWithLabel(kNoLabel).empty(),
        "kNoLabel gets the canonical empty range");

  // Preferential attachment skews *in*-degree (targets are drawn by
  // popularity); out-degree is uniform at knows+follows per person.
  Check(max_in > 3 * (g.num_edges() / g.num_nodes()),
        "in-degree is hub-skewed (max >> mean)");
  std::printf(
      "persons=500 edges=%zu max_in_degree=%zu (hub skew; mean %0.1f)\n\n",
      g.num_edges(), max_in, double(g.num_edges()) / double(g.num_nodes()));
}

// --- Frontier expansion: visit the out-edges of 256 sampled nodes --------

void BM_FrontierExpandCsr(benchmark::State& state) {
  PropertyGraph g = SkewedGraph(static_cast<size_t>(state.range(0)));
  std::vector<NodeId> frontier = SampleFrontier(g, 256);
  for (auto _ : state) {
    uint64_t sum = 0;
    for (NodeId n : frontier) {
      for (EdgeId e : g.OutEdges(n)) sum += e;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_FrontierExpandCsr)->Arg(500)->Arg(2000)->Arg(8000);


void BM_FrontierExpandFullScan(benchmark::State& state) {
  PropertyGraph g = SkewedGraph(static_cast<size_t>(state.range(0)));
  std::vector<NodeId> frontier = SampleFrontier(g, 256);
  for (auto _ : state) {
    uint64_t sum = 0;
    for (NodeId n : frontier) {
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        if (g.Source(e) == n) sum += e;
      }
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_FrontierExpandFullScan)->Arg(500)->Arg(2000);

// --- Hub expansion: in-edges, where preferential attachment piles up -----

void BM_HubInExpandCsr(benchmark::State& state) {
  PropertyGraph g = SkewedGraph(static_cast<size_t>(state.range(0)));
  std::vector<NodeId> frontier = SampleFrontier(g, 256);
  for (auto _ : state) {
    uint64_t sum = 0;
    for (NodeId n : frontier) {
      for (EdgeId e : g.InEdges(n)) sum += e;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_HubInExpandCsr)->Arg(500)->Arg(2000)->Arg(8000);


// --- Label lookup: all edges carrying "Knows" ----------------------------

void BM_LabelScanCsr(benchmark::State& state) {
  PropertyGraph g = SkewedGraph(static_cast<size_t>(state.range(0)));
  LabelId knows = g.FindLabel("Knows");
  for (auto _ : state) {
    uint64_t sum = 0;
    for (EdgeId e : g.EdgesWithLabel(knows)) sum += e;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_LabelScanCsr)->Arg(2000)->Arg(8000);


void BM_LabelScanFull(benchmark::State& state) {
  PropertyGraph g = SkewedGraph(static_cast<size_t>(state.range(0)));
  LabelId knows = g.FindLabel("Knows");
  for (auto _ : state) {
    uint64_t sum = 0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (g.EdgeLabelId(e) == knows) sum += e;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_LabelScanFull)->Arg(2000)->Arg(8000);

// --- Per-(node,label) slices: the α-closure expansion primitive ----------

void BM_NodeLabelSliceCsr(benchmark::State& state) {
  PropertyGraph g = SkewedGraph(static_cast<size_t>(state.range(0)));
  std::vector<NodeId> frontier = SampleFrontier(g, 256);
  LabelId knows = g.FindLabel("Knows");
  for (auto _ : state) {
    uint64_t sum = 0;
    for (NodeId n : frontier) {
      for (EdgeId e : g.OutEdgesWithLabel(n, knows)) sum += e;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_NodeLabelSliceCsr)->Arg(500)->Arg(2000)->Arg(8000);


}  // namespace
}  // namespace pathalg

int main(int argc, char** argv) {
  return pathalg::bench::BenchMain(argc, argv,
                                   pathalg::PrintAdjacencyArtifact);
}
