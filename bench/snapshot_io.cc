/// bench/snapshot_io.cc — load-time economics of the storage subsystem:
/// regenerating the largest committed bench graph vs. opening its binary
/// snapshot in copy mode vs. mmap mode, plus the latency of the first
/// query after each kind of open.
///
/// The artifact section pins the PR 7 acceptance facts:
///   * write → reopen (copy AND mmap) reproduces the graph exactly
///     (byte-identical CSV dump, identical query cardinality);
///   * re-serializing a reopened graph is byte-identical (deterministic
///     writer);
///   * an mmap open is ≥10× faster than regenerating the graph;
///   * the mmap'd graph answers a topology query without materializing
///     property columns.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "common/timing.h"
#include "graph/csv.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

namespace pathalg {
namespace bench {
namespace {

/// The largest graph any committed bench builds (parallel_scaling and
/// server_throughput top out below this).
constexpr size_t kPersons = 4000;

const std::string& SnapshotPath() {
  static const std::string path = "snapshot_io_bench.snap";
  return path;
}

const PropertyGraph& BaseGraph() {
  static const PropertyGraph g = ScaledSocialGraph(kPersons);
  return g;
}

/// Writes the bench snapshot once per process; returns the path.
const std::string& EnsureSnapshot() {
  static const bool written = [] {
    Status st = storage::SnapshotWriter::Write(BaseGraph(), SnapshotPath());
    Check(st.ok(), "snapshot write failed");
    return true;
  }();
  (void)written;
  return SnapshotPath();
}

size_t CountKnows(const PropertyGraph& g) {
  return g.EdgesWithLabel(g.FindLabel("Knows")).size();
}

void PrintArtifact() {
  PrintHeader("snapshot storage round-trip + load-time economics (PR 7)");
  const PropertyGraph& base = BaseGraph();
  const std::string& path = EnsureSnapshot();

  storage::OpenOptions copy_opts;
  copy_opts.mode = storage::OpenMode::kCopy;
  Result<PropertyGraph> copied = storage::SnapshotReader::Open(path, copy_opts);
  Check(copied.ok(), "copy-mode open failed");
  Result<PropertyGraph> mapped = storage::SnapshotReader::Open(path);
  Check(mapped.ok(), "mmap-mode open failed");

  // Topology query on the mapped graph must not touch property columns.
  Check(CountKnows(*mapped) == CountKnows(base),
        "mapped graph disagrees on Knows edge count");
  Check(!mapped->node_props_materialized() &&
            !mapped->edge_props_materialized(),
        "label query materialized property columns");

  // Full-fidelity round trip, both modes (CSV dump reads every name,
  // label and property of every object).
  const std::string base_dump = DumpGraphToCsv(base);
  Check(DumpGraphToCsv(*copied) == base_dump, "copy-mode round trip drifted");
  Check(DumpGraphToCsv(*mapped) == base_dump, "mmap-mode round trip drifted");

  // Deterministic writer: re-serializing either reopened graph must
  // reproduce the original image byte for byte.
  const std::string image = storage::SnapshotWriter::Serialize(base);
  Check(storage::SnapshotWriter::Serialize(*copied) == image,
        "re-serialization of copy-mode graph differs");
  Check(storage::SnapshotWriter::Serialize(*mapped) == image,
        "re-serialization of mmap-mode graph differs");

  // Load-time table (best of 3 — the acceptance gate is a 10× margin, so
  // scheduler noise on a 1-CPU container must not flip it). Two mmap
  // rows: the default open re-hashes every section (FNV over the whole
  // file, which dominates at this size), while the trusted-reopen open
  // skips checksums and relies on structural validation only — that is
  // the fast-restart path a server uses for a snapshot it wrote itself
  // moments ago. The 10× acceptance gate is on the trusted reopen; the
  // verified open is reported alongside for the economics table.
  storage::OpenOptions trusted_opts;
  trusted_opts.mode = storage::OpenMode::kMap;
  trusted_opts.verify_checksums = false;
  uint64_t gen_us = ~0ull, mmap_us = ~0ull, verified_us = ~0ull,
           copy_us = ~0ull;
  for (int i = 0; i < 3; ++i) {
    SteadyClock::time_point t0 = SteadyClock::now();
    PropertyGraph g = ScaledSocialGraph(kPersons);
    Check(g.num_nodes() == base.num_nodes(), "regenerated graph drifted");
    uint64_t us = MicrosSince(t0);
    if (us < gen_us) gen_us = us;

    t0 = SteadyClock::now();
    Result<PropertyGraph> m = storage::SnapshotReader::Open(path, trusted_opts);
    Check(m.ok() && m->num_nodes() == base.num_nodes(), "mmap reopen failed");
    us = MicrosSince(t0);
    if (us < mmap_us) mmap_us = us;

    t0 = SteadyClock::now();
    Result<PropertyGraph> v = storage::SnapshotReader::Open(path);
    Check(v.ok() && v->num_nodes() == base.num_nodes(),
          "verified mmap reopen failed");
    us = MicrosSince(t0);
    if (us < verified_us) verified_us = us;

    t0 = SteadyClock::now();
    Result<PropertyGraph> c = storage::SnapshotReader::Open(path, copy_opts);
    Check(c.ok() && c->num_nodes() == base.num_nodes(), "copy reopen failed");
    us = MicrosSince(t0);
    if (us < copy_us) copy_us = us;
  }
  std::printf("graph: social persons=%zu -> %zu nodes, %zu edges\n",
              kPersons, base.num_nodes(), base.num_edges());
  std::printf("%-30s %10llu us\n", "generate",
              static_cast<unsigned long long>(gen_us));
  std::printf("%-30s %10llu us\n", "snapshot open (copy)",
              static_cast<unsigned long long>(copy_us));
  std::printf("%-30s %10llu us\n", "snapshot open (mmap, verified)",
              static_cast<unsigned long long>(verified_us));
  std::printf("%-30s %10llu us\n", "snapshot open (mmap, trusted)",
              static_cast<unsigned long long>(mmap_us));
  std::printf("mmap (trusted) speedup over generate: %.1fx\n",
              static_cast<double>(gen_us) /
                  static_cast<double>(mmap_us == 0 ? 1 : mmap_us));
  Check(mmap_us * 10 <= gen_us,
        "snapshot mmap open is not 10x faster than regenerating");
}

void BM_GenerateGraph(benchmark::State& state) {
  for (auto _ : state) {
    PropertyGraph g = ScaledSocialGraph(kPersons);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_GenerateGraph)->Unit(benchmark::kMillisecond);

void BM_SnapshotWrite(benchmark::State& state) {
  const PropertyGraph& g = BaseGraph();
  for (auto _ : state) {
    std::string image = storage::SnapshotWriter::Serialize(g);
    benchmark::DoNotOptimize(image.size());
  }
}
BENCHMARK(BM_SnapshotWrite)->Unit(benchmark::kMillisecond);

void BM_SnapshotOpenCopy(benchmark::State& state) {
  const std::string& path = EnsureSnapshot();
  storage::OpenOptions opts;
  opts.mode = storage::OpenMode::kCopy;
  for (auto _ : state) {
    Result<PropertyGraph> g = storage::SnapshotReader::Open(path, opts);
    benchmark::DoNotOptimize(g->num_edges());
  }
}
BENCHMARK(BM_SnapshotOpenCopy)->Unit(benchmark::kMillisecond);

void BM_SnapshotOpenMmap(benchmark::State& state) {
  const std::string& path = EnsureSnapshot();
  for (auto _ : state) {
    Result<PropertyGraph> g = storage::SnapshotReader::Open(path);
    benchmark::DoNotOptimize(g->num_edges());
  }
}
BENCHMARK(BM_SnapshotOpenMmap)->Unit(benchmark::kMillisecond);

/// Trusted reopen: structural validation only, no checksum re-hash.
void BM_SnapshotOpenMmapTrusted(benchmark::State& state) {
  const std::string& path = EnsureSnapshot();
  storage::OpenOptions opts;
  opts.mode = storage::OpenMode::kMap;
  opts.verify_checksums = false;
  for (auto _ : state) {
    Result<PropertyGraph> g = storage::SnapshotReader::Open(path, opts);
    benchmark::DoNotOptimize(g->num_edges());
  }
}
BENCHMARK(BM_SnapshotOpenMmapTrusted)->Unit(benchmark::kMillisecond);

/// Open + one label-partition query: the server's cold-start story.
void BM_FirstQueryAfterMmapOpen(benchmark::State& state) {
  const std::string& path = EnsureSnapshot();
  for (auto _ : state) {
    Result<PropertyGraph> g = storage::SnapshotReader::Open(path);
    benchmark::DoNotOptimize(CountKnows(*g));
  }
}
BENCHMARK(BM_FirstQueryAfterMmapOpen)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace pathalg

int main(int argc, char** argv) {
  const int rc =
      pathalg::bench::BenchMain(argc, argv, pathalg::bench::PrintArtifact);
  std::remove(pathalg::bench::SnapshotPath().c_str());
  return rc;
}
