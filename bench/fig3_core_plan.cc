// Reproduces Figure 3: the core-algebra evaluation tree for the
// friends-and-friends-of-friends query Knows|(Knows/Knows) filtered to
// first.name = "Moe"; prints the tree, checks the 3-path answer, and
// benchmarks the core operators (σ, ⋈, ∪) individually and composed.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "plan/evaluator.h"

namespace pathalg {
namespace {

using bench::Check;

PlanPtr Figure3Plan(const Value& name) {
  PlanPtr knows =
      PlanNode::Select(EdgeLabelEq(1, "Knows"), PlanNode::EdgesScan());
  return PlanNode::Select(
      FirstPropEq("name", name),
      PlanNode::Union(knows, PlanNode::Join(knows, knows)));
}

void PrintFigure3() {
  bench::PrintHeader("Figure 3 — core path algebra query tree");
  Figure1Ids ids;
  PropertyGraph g = MakeFigure1Graph(&ids);
  PlanPtr plan = Figure3Plan(Value("Moe"));
  std::printf("%s\n", plan->ToTreeString().c_str());
  PathSet result = *Evaluate(g, plan);
  Check(result.size() == 3, "Moe's 1-hop and 2-hop friends: 3 paths");
  Check(result.Contains(Path({ids.n1, ids.n2}, {ids.e1})), "1-hop");
  Check(
      result.Contains(Path({ids.n1, ids.n2, ids.n3}, {ids.e1, ids.e2})),
      "2-hop via Homer to Lisa");
  Check(
      result.Contains(Path({ids.n1, ids.n2, ids.n4}, {ids.e1, ids.e4})),
      "2-hop via Homer to Apu");
  std::printf("result: %s\n\n", result.ToString(g).c_str());
}

void BM_CoreSelect(benchmark::State& state) {
  PropertyGraph g =
      bench::ScaledSocialGraph(static_cast<size_t>(state.range(0)));
  PathSet edges = EdgesOf(g);
  auto cond = EdgeLabelEq(1, "Knows");
  for (auto _ : state) {
    PathSet r = Select(g, edges, *cond);
    benchmark::DoNotOptimize(r);
  }
  state.counters["edges"] = static_cast<double>(edges.size());
}
BENCHMARK(BM_CoreSelect)->Arg(64)->Arg(256)->Arg(1024);

void BM_CoreJoin(benchmark::State& state) {
  PropertyGraph g =
      bench::ScaledSocialGraph(static_cast<size_t>(state.range(0)));
  PathSet knows = bench::LabelEdges(g, "Knows");
  for (auto _ : state) {
    PathSet r = Join(knows, knows);
    benchmark::DoNotOptimize(r);
  }
  state.counters["input"] = static_cast<double>(knows.size());
}
BENCHMARK(BM_CoreJoin)->Arg(64)->Arg(256)->Arg(1024);

void BM_CoreUnion(benchmark::State& state) {
  PropertyGraph g =
      bench::ScaledSocialGraph(static_cast<size_t>(state.range(0)));
  PathSet knows = bench::LabelEdges(g, "Knows");
  PathSet likes = bench::LabelEdges(g, "Likes");
  for (auto _ : state) {
    PathSet r = Union(knows, likes);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CoreUnion)->Arg(64)->Arg(256)->Arg(1024);

void BM_Figure3Composed(benchmark::State& state) {
  PropertyGraph g =
      bench::ScaledSocialGraph(static_cast<size_t>(state.range(0)));
  PlanPtr plan = Figure3Plan(Value("person0"));
  for (auto _ : state) {
    auto r = Evaluate(g, plan);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Figure3Composed)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace pathalg

int main(int argc, char** argv) {
  return pathalg::bench::BenchMain(argc, argv, pathalg::PrintFigure3);
}
