#include "algebra/frontier_closure.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "algebra/eval_budget.h"
#include "baseline/nfa.h"
#include "baseline/product_index.h"

namespace pathalg {

bool FrontierEligible(const RegexPtr& inner) {
  if (inner == nullptr) return false;
  switch (inner->kind()) {
    case RegexKind::kLabel:
      return true;
    case RegexKind::kConcat:
    case RegexKind::kUnion:
      return FrontierEligible(inner->left()) &&
             FrontierEligible(inner->right());
    case RegexKind::kPlus:
    case RegexKind::kStar:
    case RegexKind::kOptional:
      return false;  // nested closure: fall back to the materializing engines
  }
  return false;
}

namespace {

/// Walks one full segment — a product traversal of NFA(inner) from a
/// prefix path's last node to any accepting state — enforcing the
/// restrictor semantics incrementally over the *whole* path (prefix
/// included), and reconstructs a Path object only when a walk survives
/// to an accepting state. A walk that repeats an edge under TRAIL or a
/// node under ACYCLIC dies at that product step; the doomed candidate is
/// never materialized. NFA(inner) is closure-free, hence a DAG, so every
/// segment walk terminates without a depth guard.
class SegmentWalker {
 public:
  SegmentWalker(const PropertyGraph& g, const Nfa& nfa,
                const ProductIndex& index, PathSemantics semantics,
                const EvalLimits& limits)
      : g_(g), nfa_(nfa), index_(index), semantics_(semantics),
        limits_(limits) {}

  /// Appends every surviving one-segment extension of `prefix` to `out`
  /// as (path, hash); sets *dropped when an admissible candidate
  /// exceeded max_path_length (the eval_budget.h predicate).
  void Extend(const Path& prefix,
              std::vector<std::pair<Path, size_t>>* out, bool* dropped) {
    // A closed simple path repeats its endpoint on any extension —
    // mirror of the semi-naive engine's frontier prune.
    if (semantics_ == PathSemantics::kSimple && prefix.Len() > 0 &&
        prefix.First() == prefix.Last()) {
      return;
    }
    out_ = out;
    dropped_ = dropped;
    nodes_ = prefix.nodes();
    edges_ = prefix.edges();
    Walk(prefix.Last(), nfa_.start());
  }

  size_t states_expanded = 0;
  size_t paths_reconstructed = 0;

 private:
  void Walk(NodeId node, uint32_t state) {
    if (stopped_) return;
    // Arcs are label-sorted and edge runs are CSR-ordered, so the
    // enumeration order — and with it every truncation point — is a pure
    // function of the graph and the regex.
    for (const ProductIndex::Arc& arc : index_.forward[state]) {
      for (EdgeId e : g_.OutEdgesWithLabel(node, arc.label)) {
        Step(e, arc.states);
      }
    }
  }

  /// One product step: edge `e` under all NFA transitions carrying λ(e).
  /// Restrictor membership is a linear scan of the walk itself — walks
  /// are bounded by max_path_length and usually far shorter, so scanning
  /// the live nodes_/edges_ vectors beats maintaining hash sets.
  void Step(EdgeId e, const std::vector<uint32_t>& next_states) {
    // Stride poll: a single segment's product walk can be long; once the
    // token trips the walker stops emitting and unwinds. Safe because a
    // cancelled evaluation discards every partial result (eval_budget.h),
    // so the truncated candidate buffers are never observed.
    if (limits_.cancel != nullptr && --cancel_countdown_ == 0) {
      cancel_countdown_ = kCancelCheckStride;
      if (limits_.cancel->Cancelled()) stopped_ = true;
    }
    if (stopped_) return;
    const NodeId next = g_.Target(e);
    bool closes_cycle = false;  // simple: path becomes closed at `next`
    switch (semantics_) {
      case PathSemantics::kWalk:
        break;
      case PathSemantics::kTrail:
        if (std::find(edges_.begin(), edges_.end(), e) != edges_.end()) {
          return;
        }
        break;
      case PathSemantics::kAcyclic:
        if (std::find(nodes_.begin(), nodes_.end(), next) != nodes_.end()) {
          return;
        }
        break;
      case PathSemantics::kSimple:
        if (std::find(nodes_.begin(), nodes_.end(), next) != nodes_.end()) {
          if (next != nodes_.front()) return;
          closes_cycle = true;
        }
        break;
      case PathSemantics::kShortest:
        return;  // shortest uses the product BFS, never this walker
    }

    nodes_.push_back(next);
    edges_.push_back(e);

    for (uint32_t next_state : next_states) {
      ++states_expanded;
      if (nfa_.IsAccepting(next_state)) {
        if (edges_.size() > limits_.max_path_length) {
          // Admissible candidate suppressed by the cap: the walk passed
          // every restrictor check, so this is exactly the `dropped`
          // predicate of eval_budget.h.
          *dropped_ = true;
        } else {
          EmitSurvivor();
        }
      }
      if (!closes_cycle) Walk(next, next_state);
    }

    nodes_.pop_back();
    edges_.pop_back();
  }

  /// Materializes the current walk as a candidate. The only place a Path
  /// object is constructed: walks pruned mid-segment never allocate.
  void EmitSurvivor() {
    Path p(nodes_, edges_);
    const size_t h = p.Hash();
    out_->emplace_back(std::move(p), h);
    ++paths_reconstructed;
  }

  const PropertyGraph& g_;
  const Nfa& nfa_;
  const ProductIndex& index_;
  const PathSemantics semantics_;
  const EvalLimits& limits_;

  std::vector<std::pair<Path, size_t>>* out_ = nullptr;
  bool* dropped_ = nullptr;
  std::vector<NodeId> nodes_;
  std::vector<EdgeId> edges_;
  uint32_t cancel_countdown_ = kCancelCheckStride;
  bool stopped_ = false;
};

/// Non-shortest engine: semi-naive rounds where round r extends every
/// r-segment result by one product-walked segment. Structure (segment
/// batching, chunk-order merge, budget checks on the calling thread)
/// mirrors RecursiveSemiNaive so the two engines share every budget
/// trip point.
Result<PathSet> FrontierDfs(const PropertyGraph& g, const Nfa& nfa,
                            const ProductIndex& index,
                            PathSemantics semantics, const EvalLimits& limits,
                            const ParallelOptions& parallel,
                            ParallelStats* parallel_stats,
                            FrontierClosureStats* stats) {
  PathSet acc;
  // The frontier holds indices into acc's append-only storage instead of
  // Path copies: merge inserts each accepted path once and records where
  // it landed. acc is only mutated on this thread between expansions, so
  // workers reading acc.paths()[i] never race a rehash or reallocation.
  std::vector<size_t> frontier;
  bool dropped = false;

  const size_t min_chunk = std::max<size_t>(parallel.min_chunk, 1);
  const size_t segment = std::max<size_t>(
      2 * min_chunk, 8 * parallel.EffectiveThreads() * min_chunk);

  // Expands `take(i)` for i in [0, n) in deterministic segments; merges
  // every chunk's candidates in chunk index order on this thread, where
  // the dedup, the max_paths budget and the next-frontier build live.
  // Returns false when the budget tripped with truncate=true (caller
  // returns the partial `acc`).
  auto expand_rounds =
      [&](size_t n, auto take,
          std::vector<size_t>* next) -> Result<bool> {
    for (size_t seg = 0; seg < n; seg += segment) {
      // Per-segment cancellation point, mirroring RecursiveSemiNaive.
      if (CancelRequested(limits.cancel)) {
        return EvalCancelled(*limits.cancel);
      }
      const size_t m = std::min(segment, n - seg);
      const ChunkLayout layout = ThreadPool::PlanFor(m, parallel);
      std::vector<std::vector<std::pair<Path, size_t>>> candidates(
          layout.num_chunks);
      std::vector<uint8_t> chunk_dropped(layout.num_chunks, 0);
      std::vector<std::pair<size_t, size_t>> chunk_counts(layout.num_chunks);
      ThreadPool::Shared().ParallelFor(
          m, parallel, parallel_stats,
          [&](size_t chunk, size_t begin, size_t end) {
            SegmentWalker walker(g, nfa, index, semantics, limits);
            bool mine_dropped = false;
            for (size_t i = begin; i < end; ++i) {
              walker.Extend(take(seg + i), &candidates[chunk], &mine_dropped);
            }
            chunk_dropped[chunk] = mine_dropped ? 1 : 0;
            chunk_counts[chunk] = {walker.states_expanded,
                                   walker.paths_reconstructed};
          });
      // Walkers that saw the token trip stopped mid-walk, so their chunk
      // buffers may be truncated — return before the merge can mistake
      // them for a complete segment.
      if (CancelRequested(limits.cancel)) {
        return EvalCancelled(*limits.cancel);
      }
      for (size_t c = 0; c < layout.num_chunks; ++c) {
        // `dropped` is only consulted at the natural fixpoint, never on
        // a budget return (eval_budget.h precedence), so folding chunk
        // flags before the budget loop cannot change behavior.
        if (chunk_dropped[c] != 0) dropped = true;
        if (stats != nullptr) {
          stats->states_expanded += chunk_counts[c].first;
          stats->paths_reconstructed += chunk_counts[c].second;
        }
        for (auto& [q, h] : candidates[c]) {
          if (acc.size() >= limits.max_paths) {
            // A full accumulator trips on the first NEW candidate;
            // duplicates never trip (eval_budget.h).
            if (acc.ContainsHashed(q, h)) continue;
            if (limits.truncate) return false;
            return BudgetExhausted("max_paths");
          }
          if (acc.InsertHashed(std::move(q), h)) {
            next->push_back(acc.size() - 1);
          }
        }
      }
    }
    return true;
  };

  // Round 0 — the base: every 1-segment path, walked from each node in
  // node order. This is the frontier analog of inserting the filtered
  // base set, so it is budgeted identically.
  {
    PATHALG_ASSIGN_OR_RETURN(
        bool keep_going,
        expand_rounds(g.num_nodes(),
                      [](size_t i) { return Path::SingleNode(NodeId(i)); },
                      &frontier));
    if (!keep_going) return acc;
  }

  size_t iterations = 0;
  while (!frontier.empty()) {
    if (++iterations > limits.max_iterations) {
      if (limits.truncate) return acc;
      return BudgetExhausted("max_iterations");
    }
    std::vector<size_t> next;
    PATHALG_ASSIGN_OR_RETURN(
        bool keep_going,
        expand_rounds(
            frontier.size(),
            [&](size_t i) -> const Path& { return acc.paths()[frontier[i]]; },
            &next));
    if (!keep_going) return acc;
    frontier = std::move(next);
  }
  if (dropped && !limits.truncate) {
    return BudgetExhausted("max_path_length");
  }
  return acc;
}

/// Shortest engine: per-source product BFS over NFA(inner+) computing
/// distances on (node, state) pairs, then backward enumeration of every
/// distance-decreasing product path — Path objects exist only for the
/// per-pair-minimal survivors. Sources fan out across chunks; chunk
/// buffers merge in chunk (= node) order.
class ShortestSource {
 public:
  ShortestSource(const PropertyGraph& g, const Nfa& nfa,
                 const ProductIndex& index, const EvalLimits& limits)
      : g_(g), nfa_(nfa), index_(index), limits_(limits),
        num_states_(nfa.num_states()),
        dist_(g.num_nodes() * nfa.num_states(), kInf) {}

  void Run(NodeId source, std::vector<std::pair<Path, size_t>>* out) {
    out_ = out;
    source_ = source;
    std::fill(dist_.begin(), dist_.end(), kInf);

    std::queue<std::pair<NodeId, uint32_t>> queue;
    dist_[Key(source, nfa_.start())] = 0;
    queue.push({source, nfa_.start()});
    while (!queue.empty()) {
      if (Poll()) return;
      auto [node, state] = queue.front();
      queue.pop();
      const size_t d = dist_[Key(node, state)];
      if (d >= limits_.max_path_length) continue;  // silent cap (contract)
      for (const ProductIndex::Arc& arc : index_.forward[state]) {
        for (EdgeId e : g_.OutEdgesWithLabel(node, arc.label)) {
          const NodeId next = g_.Target(e);
          for (uint32_t ns : arc.states) {
            ++states_expanded;
            if (dist_[Key(next, ns)] == kInf) {
              dist_[Key(next, ns)] = d + 1;
              queue.push({next, ns});
            }
          }
        }
      }
    }

    // Per target (node order): best = min dist over accepting states,
    // then every dist-decreasing backward path of exactly that length.
    for (NodeId t = 0; t < g_.num_nodes(); ++t) {
      if (stopped_) return;
      size_t best = kInf;
      for (uint32_t s = 0; s < num_states_; ++s) {
        if (nfa_.IsAccepting(s)) best = std::min(best, dist_[Key(t, s)]);
      }
      if (best == kInf) continue;
      if (best == 0) {
        // Reachable only if ε ∈ L(inner+); eligibility excludes that,
        // but stay correct under future relaxations.
        EmitSurvivor(Path::SingleNode(t));
        continue;
      }
      for (uint32_t s = 0; s < num_states_; ++s) {
        if (!nfa_.IsAccepting(s) || dist_[Key(t, s)] != best) continue;
        nodes_suffix_ = {t};
        edges_suffix_.clear();
        Backtrack(t, s, best);
      }
    }
  }

  /// True once the evaluation's CancelToken tripped; the caller skips
  /// the remaining sources of its chunk.
  bool stopped() const { return stopped_; }

  size_t states_expanded = 0;
  size_t paths_reconstructed = 0;

 private:
  static constexpr size_t kInf = std::numeric_limits<size_t>::max();

  size_t Key(NodeId n, uint32_t s) const { return n * num_states_ + s; }

  /// Stride poll shared by the BFS and the backtrack enumeration (same
  /// rationale as SegmentWalker::Step). Returns the sticky stop flag.
  bool Poll() {
    if (!stopped_ && limits_.cancel != nullptr && --cancel_countdown_ == 0) {
      cancel_countdown_ = kCancelCheckStride;
      if (limits_.cancel->Cancelled()) stopped_ = true;
    }
    return stopped_;
  }

  void Backtrack(NodeId node, uint32_t state, size_t d) {
    if (Poll()) return;
    if (d == 0) {
      if (node == source_ && state == nfa_.start()) {
        std::vector<NodeId> nodes(nodes_suffix_.rbegin(),
                                  nodes_suffix_.rend());
        std::vector<EdgeId> edges(edges_suffix_.rbegin(),
                                  edges_suffix_.rend());
        EmitSurvivor(Path(std::move(nodes), std::move(edges)));
      }
      return;
    }
    for (const ProductIndex::Arc& arc : index_.backward[state]) {
      for (EdgeId e : g_.InEdgesWithLabel(node, arc.label)) {
        const NodeId prev = g_.Source(e);
        for (uint32_t ps : arc.states) {
          if (dist_[Key(prev, ps)] != d - 1) continue;
          ++states_expanded;
          nodes_suffix_.push_back(prev);
          edges_suffix_.push_back(e);
          Backtrack(prev, ps, d - 1);
          nodes_suffix_.pop_back();
          edges_suffix_.pop_back();
        }
      }
    }
  }

  void EmitSurvivor(Path p) {
    const size_t h = p.Hash();
    out_->emplace_back(std::move(p), h);
    ++paths_reconstructed;
  }

  const PropertyGraph& g_;
  const Nfa& nfa_;
  const ProductIndex& index_;
  const EvalLimits& limits_;
  const size_t num_states_;
  std::vector<size_t> dist_;

  std::vector<std::pair<Path, size_t>>* out_ = nullptr;
  NodeId source_ = 0;
  // Backtrack working state (stored target-to-source, reversed on emit).
  std::vector<NodeId> nodes_suffix_;
  std::vector<EdgeId> edges_suffix_;
  uint32_t cancel_countdown_ = kCancelCheckStride;
  bool stopped_ = false;
};

Result<PathSet> FrontierShortest(const PropertyGraph& g, const RegexPtr& inner,
                                 const EvalLimits& limits,
                                 const ParallelOptions& parallel,
                                 ParallelStats* parallel_stats,
                                 FrontierClosureStats* stats) {
  const Nfa nfa = Nfa::FromRegex(RegexNode::Plus(inner));
  const ProductIndex index(g, nfa);

  const size_t n = g.num_nodes();
  const ChunkLayout layout = ThreadPool::PlanFor(n, parallel);
  std::vector<std::vector<std::pair<Path, size_t>>> results(layout.num_chunks);
  std::vector<std::pair<size_t, size_t>> chunk_counts(layout.num_chunks);
  ThreadPool::Shared().ParallelFor(
      n, parallel, parallel_stats, [&](size_t chunk, size_t begin, size_t end) {
        ShortestSource bfs(g, nfa, index, limits);
        for (size_t src = begin; src < end; ++src) {
          if (bfs.stopped()) break;
          bfs.Run(static_cast<NodeId>(src), &results[chunk]);
        }
        chunk_counts[chunk] = {bfs.states_expanded, bfs.paths_reconstructed};
      });
  // Cancellation discards every chunk's (possibly truncated) output.
  if (CancelRequested(limits.cancel)) return EvalCancelled(*limits.cancel);

  PathSet out;
  for (size_t c = 0; c < layout.num_chunks; ++c) {
    if (stats != nullptr) {
      stats->states_expanded += chunk_counts[c].first;
      stats->paths_reconstructed += chunk_counts[c].second;
    }
    for (auto& [q, h] : results[c]) {
      if (out.ContainsHashed(q, h)) continue;  // duplicates never trip
      if (out.size() >= limits.max_paths) {
        if (limits.truncate) return out;
        return BudgetExhausted("max_paths");
      }
      out.InsertHashed(std::move(q), h);
    }
  }
  return out;
}

}  // namespace

Result<PathSet> FrontierClosure(const PropertyGraph& g, const RegexPtr& inner,
                                PathSemantics semantics,
                                const EvalLimits& limits,
                                const ParallelOptions& parallel,
                                ParallelStats* parallel_stats,
                                FrontierClosureStats* stats) {
  if (!FrontierEligible(inner)) {
    return Status::InvalidArgument(
        "frontier closure requires a closure-free inner regex");
  }
  if (semantics == PathSemantics::kShortest) {
    return FrontierShortest(g, inner, limits, parallel, parallel_stats,
                            stats);
  }
  const Nfa nfa = Nfa::FromRegex(inner);
  const ProductIndex index(g, nfa);
  return FrontierDfs(g, nfa, index, semantics, limits, parallel,
                     parallel_stats, stats);
}

}  // namespace pathalg
