#include "algebra/core_ops.h"

#include <unordered_map>
#include <vector>

namespace pathalg {

PathSet Select(const PropertyGraph& g, const PathSet& s,
               const Condition& condition) {
  PathSet out;
  for (const Path& p : s) {
    if (condition.Evaluate(g, p)) out.Insert(p);
  }
  return out;
}

PathSet Join(const PathSet& s1, const PathSet& s2) {
  // Index the right side by First(p2).
  std::unordered_map<NodeId, std::vector<const Path*>> by_first;
  by_first.reserve(s2.size());
  for (const Path& p2 : s2) {
    by_first[p2.First()].push_back(&p2);
  }
  PathSet out;
  for (const Path& p1 : s1) {
    auto it = by_first.find(p1.Last());
    if (it == by_first.end()) continue;
    for (const Path* p2 : it->second) {
      out.Insert(Path::ConcatUnchecked(p1, *p2));
    }
  }
  return out;
}

PathSet Union(const PathSet& s1, const PathSet& s2) {
  PathSet out;
  for (const Path& p : s1) out.Insert(p);
  for (const Path& p : s2) out.Insert(p);
  return out;
}

PathSet Intersect(const PathSet& s1, const PathSet& s2) {
  PathSet out;
  for (const Path& p : s1) {
    if (s2.Contains(p)) out.Insert(p);
  }
  return out;
}

PathSet Difference(const PathSet& s1, const PathSet& s2) {
  PathSet out;
  for (const Path& p : s1) {
    if (!s2.Contains(p)) out.Insert(p);
  }
  return out;
}

}  // namespace pathalg
