#include "algebra/core_ops.h"

#include "path/path_index.h"

namespace pathalg {

PathSet Select(const PropertyGraph& g, const PathSet& s,
               const Condition& condition) {
  PathSet out;
  for (const Path& p : s) {
    if (condition.Evaluate(g, p)) out.Insert(p);
  }
  return out;
}

PathSet Join(const PathSet& s1, const PathSet& s2) {
  // CSR-style dense index of the right side by First(p2): node ids are
  // dense, so the per-p1 probe is an array index, not a hash lookup.
  PathFirstIndex by_first(s2);
  PathSet out;
  for (const Path& p1 : s1) {
    for (const Path* p2 : by_first.ForFirst(p1.Last())) {
      out.Insert(Path::ConcatUnchecked(p1, *p2));
    }
  }
  return out;
}

PathSet Union(const PathSet& s1, const PathSet& s2) {
  PathSet out;
  for (const Path& p : s1) out.Insert(p);
  for (const Path& p : s2) out.Insert(p);
  return out;
}

PathSet Intersect(const PathSet& s1, const PathSet& s2) {
  PathSet out;
  for (const Path& p : s1) {
    if (s2.Contains(p)) out.Insert(p);
  }
  return out;
}

PathSet Difference(const PathSet& s1, const PathSet& s2) {
  PathSet out;
  for (const Path& p : s1) {
    if (!s2.Contains(p)) out.Insert(p);
  }
  return out;
}

}  // namespace pathalg
