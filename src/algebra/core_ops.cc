#include "algebra/core_ops.h"

#include <utility>
#include <vector>

#include "path/path_index.h"

namespace pathalg {

PathSet Select(const PropertyGraph& g, const PathSet& s,
               const Condition& condition, const ParallelOptions& parallel,
               ParallelStats* parallel_stats) {
  const std::vector<Path>& in = s.paths();
  if (!parallel.ShouldParallelize(in.size())) {
    if (parallel_stats != nullptr && parallel.EffectiveThreads() > 1) {
      ++parallel_stats->serial_fallbacks;
    }
    PathSet out;
    for (size_t i = 0; i < in.size(); ++i) {
      if (condition.Evaluate(g, in[i])) {
        out.InsertHashed(in[i], s.hash_of(i));
      }
    }
    return out;
  }
  // Filter per contiguous chunk into chunk-private vectors, then
  // concatenate in chunk order: the kept paths appear in exactly the
  // input order, as in the serial loop (and the input is already
  // duplicate-free, so insertion order is the whole story). Chunk bodies
  // carry each kept path's hash so the serial merge never rehashes —
  // that recomputation was the merge phase's Amdahl ceiling.
  const ChunkLayout layout = ThreadPool::PlanFor(in.size(), parallel);
  std::vector<std::vector<std::pair<Path, size_t>>> kept(layout.num_chunks);
  ThreadPool::Shared().ParallelFor(
      in.size(), parallel, parallel_stats,
      [&](size_t chunk, size_t begin, size_t end) {
        std::vector<std::pair<Path, size_t>>& mine = kept[chunk];
        for (size_t i = begin; i < end; ++i) {
          if (condition.Evaluate(g, in[i])) {
            mine.emplace_back(in[i], s.hash_of(i));
          }
        }
      });
  PathSet out;
  for (std::vector<std::pair<Path, size_t>>& chunk : kept) {
    for (auto& [p, h] : chunk) out.InsertHashed(std::move(p), h);
  }
  return out;
}

PathSet Join(const PathSet& s1, const PathSet& s2,
             const ParallelOptions& parallel,
             ParallelStats* parallel_stats) {
  // CSR-style dense index of the right side by First(p2): node ids are
  // dense, so the per-p1 probe is an array index, not a hash lookup.
  PathFirstIndex by_first(s2);
  const std::vector<Path>& probe = s1.paths();
  if (!parallel.ShouldParallelize(probe.size())) {
    if (parallel_stats != nullptr && parallel.EffectiveThreads() > 1) {
      ++parallel_stats->serial_fallbacks;
    }
    PathSet out;
    for (const Path& p1 : probe) {
      for (const Path* p2 : by_first.ForFirst(p1.Last())) {
        out.Insert(Path::ConcatUnchecked(p1, *p2));
      }
    }
    return out;
  }
  // Chunk the probe side; each chunk emits its concatenations in (p1
  // order, bucket order) — merging chunks in index order reproduces the
  // serial enumeration, and the merge's InsertHashed dedups exactly where
  // the serial loop would (a ◦ can collide when zero-length paths join).
  // Hashing each concatenation happens in the chunk body, off the merge
  // thread.
  const ChunkLayout layout = ThreadPool::PlanFor(probe.size(), parallel);
  std::vector<std::vector<std::pair<Path, size_t>>> produced(
      layout.num_chunks);
  ThreadPool::Shared().ParallelFor(
      probe.size(), parallel, parallel_stats,
      [&](size_t chunk, size_t begin, size_t end) {
        std::vector<std::pair<Path, size_t>>& mine = produced[chunk];
        for (size_t i = begin; i < end; ++i) {
          const Path& p1 = probe[i];
          for (const Path* p2 : by_first.ForFirst(p1.Last())) {
            Path q = Path::ConcatUnchecked(p1, *p2);
            const size_t h = q.Hash();
            mine.emplace_back(std::move(q), h);
          }
        }
      });
  PathSet out;
  for (std::vector<std::pair<Path, size_t>>& chunk : produced) {
    for (auto& [p, h] : chunk) out.InsertHashed(std::move(p), h);
  }
  return out;
}

// ∪/∩/∖ move whole sets around without changing any path, so every hash
// is already known (PathSet::hash_of) — no rehashing.

PathSet Union(const PathSet& s1, const PathSet& s2) {
  PathSet out;
  out.Reserve(s1.size() + s2.size());
  for (size_t i = 0; i < s1.size(); ++i) out.InsertHashed(s1[i], s1.hash_of(i));
  for (size_t i = 0; i < s2.size(); ++i) out.InsertHashed(s2[i], s2.hash_of(i));
  return out;
}

PathSet Intersect(const PathSet& s1, const PathSet& s2) {
  PathSet out;
  for (size_t i = 0; i < s1.size(); ++i) {
    const size_t h = s1.hash_of(i);
    if (s2.ContainsHashed(s1[i], h)) out.InsertHashed(s1[i], h);
  }
  return out;
}

PathSet Difference(const PathSet& s1, const PathSet& s2) {
  PathSet out;
  for (size_t i = 0; i < s1.size(); ++i) {
    const size_t h = s1.hash_of(i);
    if (!s2.ContainsHashed(s1[i], h)) out.InsertHashed(s1[i], h);
  }
  return out;
}

}  // namespace pathalg
