#ifndef PATHALG_ALGEBRA_CONDITION_H_
#define PATHALG_ALGEBRA_CONDITION_H_

/// \file condition.h
/// Selection conditions (§3.1). A simple condition compares one path access
/// — `label(node(i))`, `label(edge(i))`, `label(first)`, `label(last)`,
/// `node(i).pr`, `edge(i).pr`, `first.pr`, `last.pr`, or `len()` — against a
/// constant; complex conditions combine them with ∧, ∨, ¬. Footnote 1 of the
/// paper extends the comparators to ≠ < > ≤ ≥, which we implement.
///
/// Missing-data semantics: a comparison whose accessed label/property does
/// not exist (unlabelled object, absent property, out-of-range position)
/// evaluates to False for every comparator, including ≠. This collapses the
/// three-valued logic of SQL into the two-valued logic the paper uses.

#include <memory>
#include <string>

#include "graph/property_graph.h"
#include "path/path.h"

namespace pathalg {

/// What a simple condition reads from the path.
enum class AccessKind {
  kNodeLabel,   // label(node(i))
  kEdgeLabel,   // label(edge(i))
  kFirstLabel,  // label(first)
  kLastLabel,   // label(last)
  kNodeProp,    // node(i).pr
  kEdgeProp,    // edge(i).pr
  kFirstProp,   // first.pr
  kLastProp,    // last.pr
  kLen,         // len()
};

/// Comparators. The paper's footnote 1 allows extending = with ≠ < > ≤ ≥
/// "and other built-in functions (e.g. substr or bound)" — kContains /
/// kStartsWith are the substring family and kExists is `bound` (true iff
/// the accessed label/property exists; the constant operand is ignored).
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kContains,
  kStartsWith,
  kExists,
};

const char* CompareOpToString(CompareOp op);

/// Immutable condition tree node. Build via the factory functions below and
/// share via ConditionPtr (plans may reference the same condition twice).
class Condition;
using ConditionPtr = std::shared_ptr<const Condition>;

class Condition {
 public:
  enum class Kind { kSimple, kAnd, kOr, kNot };

  Kind kind() const { return kind_; }

  // --- Simple condition fields (valid when kind == kSimple) ---
  AccessKind access() const { return access_; }
  /// 1-based position for kNodeLabel/kEdgeLabel/kNodeProp/kEdgeProp.
  size_t position() const { return position_; }
  /// Property name for the *Prop accesses.
  const std::string& property() const { return property_; }
  CompareOp op() const { return op_; }
  const Value& constant() const { return constant_; }

  // --- Complex condition fields ---
  const ConditionPtr& left() const { return left_; }
  const ConditionPtr& right() const { return right_; }

  /// ev(c, p) of §3.1: evaluates this condition over `p` in `g`.
  bool Evaluate(const PropertyGraph& g, const Path& p) const;

  /// Renders in the paper's syntax, e.g. `label(edge(1)) = "Knows"`,
  /// `(first.name = "Moe" AND last.name = "Apu")`.
  std::string ToString() const;

  /// Structural equality (used by plan equality and optimizer tests).
  bool Equals(const Condition& other) const;

  // Factories --------------------------------------------------------------
  static ConditionPtr MakeSimple(AccessKind access, size_t position,
                                 std::string property, CompareOp op,
                                 Value constant);
  static ConditionPtr And(ConditionPtr l, ConditionPtr r);
  static ConditionPtr Or(ConditionPtr l, ConditionPtr r);
  static ConditionPtr Not(ConditionPtr c);

 private:
  Condition() = default;

  Kind kind_ = Kind::kSimple;
  AccessKind access_ = AccessKind::kLen;
  size_t position_ = 0;
  std::string property_;
  CompareOp op_ = CompareOp::kEq;
  Value constant_;
  ConditionPtr left_;
  ConditionPtr right_;
};

// Convenience factories matching the paper's most-used atoms ---------------

/// label(node(i)) = v
ConditionPtr NodeLabelEq(size_t i, std::string label);
/// label(edge(i)) = v
ConditionPtr EdgeLabelEq(size_t i, std::string label);
/// label(first) = v
ConditionPtr FirstLabelEq(std::string label);
/// label(last) = v
ConditionPtr LastLabelEq(std::string label);
/// first.pr = v
ConditionPtr FirstPropEq(std::string property, Value v);
/// last.pr = v
ConditionPtr LastPropEq(std::string property, Value v);
/// node(i).pr = v
ConditionPtr NodePropEq(size_t i, std::string property, Value v);
/// edge(i).pr = v
ConditionPtr EdgePropEq(size_t i, std::string property, Value v);
/// len() <op> i
ConditionPtr LenCompare(CompareOp op, int64_t len);
/// len() = i
ConditionPtr LenEq(int64_t len);
/// first.pr CONTAINS v (substring test; footnote 1's substr family)
ConditionPtr FirstPropContains(std::string property, std::string needle);
/// first.pr EXISTS (footnote 1's bound)
ConditionPtr FirstPropExists(std::string property);
/// last.pr EXISTS
ConditionPtr LastPropExists(std::string property);

// Optimizer analysis -------------------------------------------------------

/// True if every leaf of `c` reads only the first node (`first.*`,
/// `label(first)`, `label(node(1))`, `node(1).*`). Such conditions commute
/// with joining on the right: First(p1 ◦ p2) = First(p1).
bool RefersOnlyToFirstNode(const Condition& c);

/// True if every leaf reads only the last node.
bool RefersOnlyToLastNode(const Condition& c);

/// True if `c` mentions len() anywhere.
bool UsesLen(const Condition& c);

/// The largest 1-based node position `c` reads (label(first) reads node 1;
/// last/len accesses return `fallback` because their position is dynamic).
/// Used by the optimizer's static length-bound reasoning.
size_t MaxNodePosition(const Condition& c, size_t fallback);

/// The largest 1-based edge position `c` reads (dynamic accesses return
/// `fallback`).
size_t MaxEdgePosition(const Condition& c, size_t fallback);

}  // namespace pathalg

#endif  // PATHALG_ALGEBRA_CONDITION_H_
