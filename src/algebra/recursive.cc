#include "algebra/recursive.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <vector>

#include "algebra/eval_budget.h"
#include "common/hash.h"
#include "path/path_index.h"

namespace pathalg {

const char* PathSemanticsToString(PathSemantics s) {
  switch (s) {
    case PathSemantics::kWalk:
      return "WALK";
    case PathSemantics::kTrail:
      return "TRAIL";
    case PathSemantics::kAcyclic:
      return "ACYCLIC";
    case PathSemantics::kSimple:
      return "SIMPLE";
    case PathSemantics::kShortest:
      return "SHORTEST";
  }
  return "?";
}

bool SatisfiesSemantics(const Path& p, PathSemantics s) {
  switch (s) {
    case PathSemantics::kWalk:
    case PathSemantics::kShortest:
      return true;
    case PathSemantics::kTrail:
      return p.IsTrail();
    case PathSemantics::kAcyclic:
      return p.IsAcyclic();
    case PathSemantics::kSimple:
      return p.IsSimple();
  }
  return false;
}

namespace {

struct PairHash {
  size_t operator()(const std::pair<NodeId, NodeId>& p) const {
    size_t h = std::hash<uint64_t>{}(p.first);
    HashCombine(h, std::hash<uint64_t>{}(p.second));
    return h;
  }
};

using BestMap =
    std::unordered_map<std::pair<NodeId, NodeId>, size_t, PairHash>;

// ---------------------------------------------------------------------------
// Naive engine: Definition 4.1 verbatim.
//   ϕ0(S) = S;  ϕi(S) = (ϕ{i-1}(S) ⋈ ϕ0(S)) ∪ ϕ{i-1}(S)  until fixpoint.
// The restrictor filter is applied to every candidate (§4: "filtering the
// paths generated during the recursion").
// ---------------------------------------------------------------------------
Result<PathSet> RecursiveNaive(const PathSet& base, PathSemantics semantics,
                               const EvalLimits& limits) {
  const bool shortest = semantics == PathSemantics::kShortest;
  BestMap best;
  bool dropped = false;

  PathSet acc;  // ϕ_{i}(S), accumulated.
  for (const Path& p : base) {
    if (p.empty()) continue;
    // Semantics before length: only *admissible* overlong candidates set
    // `dropped` (the eval_budget.h predicate).
    if (!SatisfiesSemantics(p, semantics)) continue;
    if (p.Len() > limits.max_path_length) {
      dropped = true;
      continue;
    }
    if (acc.Contains(p)) continue;  // duplicates never trip the budget
    if (acc.size() >= limits.max_paths) {
      if (limits.truncate) return acc;
      return BudgetExhausted("max_paths");
    }
    if (shortest) {
      auto key = std::make_pair(p.First(), p.Last());
      auto it = best.find(key);
      if (it == best.end() || p.Len() < it->second) best[key] = p.Len();
    }
    acc.Insert(p);
  }

  // ϕ0 is the *filtered* base — Definition 4.1 instantiated per semantics.
  // Copy it out: `acc` grows during the fixpoint and would invalidate
  // pointers into its storage.
  std::vector<Path> base_paths(acc.begin(), acc.end());
  PathFirstIndex index(base_paths);

  // The budget trips iff the fixpoint is not *verified* within
  // max_iterations rounds — a nonempty ϕ0 needs round 1 to verify even an
  // immediate fixpoint, while ϕ0 = ∅ is a fixpoint with zero rounds. This
  // matches the semi-naive engine's nonempty-frontier loop exactly
  // (eval_budget.h).
  bool grew = !acc.empty();
  size_t rounds = 0;
  while (grew) {
    if (CancelRequested(limits.cancel)) return EvalCancelled(*limits.cancel);
    if (rounds == limits.max_iterations) {
      if (limits.truncate) {
        return shortest ? KeepShortestPerEndpointPair(acc) : acc;
      }
      return BudgetExhausted("max_iterations");
    }
    ++rounds;
    // Join the full accumulated set with ϕ0 (this is what makes the naive
    // engine quadratic: older paths are re-joined every round).
    std::vector<Path> generated;
    uint32_t cancel_countdown = kCancelCheckStride;
    for (const Path& p1 : acc) {
      // A single quadratic round can dwarf the round boundary poll above;
      // the stride poll bounds cancellation latency inside it.
      if (limits.cancel != nullptr && --cancel_countdown == 0) {
        cancel_countdown = kCancelCheckStride;
        if (limits.cancel->Cancelled()) return EvalCancelled(*limits.cancel);
      }
      for (const Path* p2 : index.ForFirst(p1.Last())) {
        Path q = Path::ConcatUnchecked(p1, *p2);
        if (!SatisfiesSemantics(q, semantics)) continue;
        if (q.Len() > limits.max_path_length) {
          dropped = true;
          continue;
        }
        if (shortest) {
          auto key = std::make_pair(q.First(), q.Last());
          auto bit = best.find(key);
          if (bit != best.end() && q.Len() > bit->second) continue;
          if (bit == best.end() || q.Len() < bit->second) {
            best[key] = q.Len();
          }
        }
        generated.push_back(std::move(q));
      }
    }
    const size_t before = acc.size();
    for (Path& q : generated) {
      if (acc.Contains(q)) continue;  // duplicates never trip the budget
      if (acc.size() >= limits.max_paths) {
        if (limits.truncate) return acc;
        return BudgetExhausted("max_paths");
      }
      acc.Insert(std::move(q));
    }
    grew = acc.size() > before;
  }
  // Fixpoint verified: |ϕi| == |ϕ{i-1}|.
  if (dropped && !limits.truncate) {
    return BudgetExhausted("max_path_length");
  }
  return shortest ? KeepShortestPerEndpointPair(acc) : acc;
}

// ---------------------------------------------------------------------------
// Optimized engine, non-shortest: semi-naive frontier expansion. Each round
// extends only the paths discovered in the previous round, which generates
// every composition exactly once.
//
// Under parallel execution only the round's candidate generation (extend +
// length filter + restrictor filter — a pure function of the frontier and
// the base index) fans out, chunked over the frontier. Dedup against `acc`,
// the max_paths budget and the next-frontier build stay on the calling
// thread, merging chunks in index order — the serial enumeration order —
// so results, partial answers and Status are byte-identical at any thread
// count.
// ---------------------------------------------------------------------------
Result<PathSet> RecursiveSemiNaive(const PathSet& base,
                                   PathSemantics semantics,
                                   const EvalLimits& limits,
                                   const ParallelOptions& parallel,
                                   ParallelStats* parallel_stats) {
  PathSet acc;
  std::vector<Path> frontier;
  bool dropped = false;
  for (const Path& p : base) {
    if (p.empty()) continue;
    // Semantics before length: only *admissible* overlong candidates set
    // `dropped` (the eval_budget.h predicate).
    if (!SatisfiesSemantics(p, semantics)) continue;
    if (p.Len() > limits.max_path_length) {
      dropped = true;
      continue;
    }
    if (acc.Contains(p)) continue;  // duplicates never trip the budget
    if (acc.size() >= limits.max_paths) {
      if (limits.truncate) return acc;
      return BudgetExhausted("max_paths");
    }
    acc.Insert(p);
    frontier.push_back(p);
  }
  std::vector<Path> base_paths(acc.begin(), acc.end());
  // CSR-style dense index of ϕ0 by First(p): the frontier loop probes it
  // once per frontier path, so an array index beats a hash lookup.
  PathFirstIndex index(base_paths);

  size_t iterations = 0;
  while (!frontier.empty()) {
    if (++iterations > limits.max_iterations) {
      if (limits.truncate) return acc;
      return BudgetExhausted("max_iterations");
    }
    // Generate-and-merge in deterministic frontier *segments* rather than
    // one frontier-sized batch: serial generation stops within one
    // candidate of the max_paths budget, and materializing a whole
    // round's candidates up front would forfeit that memory bound (a
    // round can be |frontier| × bucket-size candidates). A segment fills
    // exactly one over-decomposed wave of pool chunks; the merge between
    // segments hits the budget at the same candidate the serial loop
    // would, so output and Status are unchanged — later segments are
    // simply never generated.
    const size_t min_chunk = std::max<size_t>(parallel.min_chunk, 1);
    const size_t segment = std::max<size_t>(
        2 * min_chunk, 8 * parallel.EffectiveThreads() * min_chunk);
    std::vector<Path> next;
    for (size_t seg = 0; seg < frontier.size(); seg += segment) {
      // The per-segment poll is the semi-naive engine's cancellation
      // point: segments bound both the latency and the wasted work of a
      // trip, and polling on the merge thread keeps chunk bodies pure.
      if (CancelRequested(limits.cancel)) {
        return EvalCancelled(*limits.cancel);
      }
      const size_t n = std::min(segment, frontier.size() - seg);
      const ChunkLayout layout = ThreadPool::PlanFor(n, parallel);
      // Candidates travel with their precomputed hash: the chunk bodies
      // pay the hashing cost in parallel, so the serial merge below is a
      // probe + push per candidate (PathSet::InsertHashed).
      std::vector<std::vector<std::pair<Path, size_t>>> candidates(
          layout.num_chunks);
      std::vector<uint8_t> chunk_dropped(layout.num_chunks, 0);
      ThreadPool::Shared().ParallelFor(
          n, parallel, parallel_stats,
          [&](size_t chunk, size_t begin, size_t end) {
            std::vector<std::pair<Path, size_t>>& mine = candidates[chunk];
            for (size_t i = begin; i < end; ++i) {
              const Path& p1 = frontier[seg + i];
              // A closed simple path repeats its endpoint on any
              // extension.
              if (semantics == PathSemantics::kSimple && p1.Len() > 0 &&
                  p1.First() == p1.Last()) {
                continue;
              }
              for (const Path* p2 : index.ForFirst(p1.Last())) {
                Path q = Path::ConcatUnchecked(p1, *p2);
                // Semantics before length: only *admissible* overlong
                // candidates set `dropped` (the eval_budget.h predicate).
                if (!SatisfiesSemantics(q, semantics)) continue;
                if (q.Len() > limits.max_path_length) {
                  chunk_dropped[chunk] = 1;
                  continue;
                }
                const size_t h = q.Hash();
                mine.emplace_back(std::move(q), h);
              }
            }
          });
      for (size_t c = 0; c < layout.num_chunks; ++c) {
        // `dropped` is only consulted at the natural fixpoint, never on a
        // budget return, so folding chunk flags before the budget loop
        // cannot change behavior.
        if (chunk_dropped[c] != 0) dropped = true;
        for (auto& [q, h] : candidates[c]) {
          if (acc.ContainsHashed(q, h)) continue;  // duplicates never trip
          if (acc.size() >= limits.max_paths) {
            if (limits.truncate) return acc;
            return BudgetExhausted("max_paths");
          }
          next.push_back(q);
          acc.InsertHashed(std::move(q), h);
        }
      }
    }
    frontier = std::move(next);
  }
  if (dropped && !limits.truncate) {
    return BudgetExhausted("max_path_length");
  }
  return acc;
}

// ---------------------------------------------------------------------------
// Optimized engine, shortest: best-first expansion in global length order.
// Only per-pair-optimal paths are expanded; this is sound because a prefix
// of a shortest composition can always be replaced by a shortest
// composition between the same endpoints.
//
// The heap is drained in *length layers*: expanding a path only ever
// pushes strictly longer paths, so once the first length-L path pops, the
// set of length-L entries is frozen. The pop phase of a layer (best-map
// updates, dedup, budgets, result insertion) is sequential and ordered by
// the heap's (length, canonical) comparator; the expansion phase then
// extends the whole accepted layer against a frozen best map — a pure
// read-only fan-out, chunked over the layer. Candidate pushes merge in
// chunk order, and since distinct paths pop in strict comparator order
// regardless of push order, results, partial answers and Status are
// byte-identical at any thread count. (Versus the pre-layered
// interleaved loop, the frozen best map prunes slightly more duplicate
// pushes — same answers, fewer wasted pops.)
// ---------------------------------------------------------------------------
Result<PathSet> RecursiveShortestLayered(const PathSet& base,
                                         const EvalLimits& limits,
                                         const ParallelOptions& parallel,
                                         ParallelStats* parallel_stats) {
  auto cmp = [](const Path& a, const Path& b) {
    // Min-heap by (length, canonical order) for determinism.
    if (a.Len() != b.Len()) return a.Len() > b.Len();
    return b < a;
  };
  std::priority_queue<Path, std::vector<Path>, decltype(cmp)> heap(cmp);
  PathFirstIndex index(base);

  for (const Path& p : base) {
    if (p.empty()) continue;
    if (p.Len() > limits.max_path_length) continue;
    heap.push(p);
  }

  BestMap best;
  PathSet out;
  PathSet expanded;  // dedup of heap pops (a path can be pushed twice)
  size_t pops = 0;
  std::vector<Path> layer;  // this length class's newly-optimal paths
  while (!heap.empty()) {
    if (CancelRequested(limits.cancel)) return EvalCancelled(*limits.cancel);
    const size_t layer_len = heap.top().Len();
    layer.clear();
    while (!heap.empty() && heap.top().Len() == layer_len) {
      if (++pops > limits.max_iterations * 64) {
        if (limits.truncate) return out;
        return BudgetExhausted("max_iterations");
      }
      Path p = heap.top();
      heap.pop();
      auto key = std::make_pair(p.First(), p.Last());
      auto it = best.find(key);
      if (it != best.end() && p.Len() > it->second) continue;  // not optimal
      if (it == best.end()) best[key] = p.Len();
      if (!expanded.Insert(p)) continue;  // already handled this exact path
      if (out.size() >= limits.max_paths) {
        if (limits.truncate) return out;
        return BudgetExhausted("max_paths");
      }
      out.Insert(p);
      layer.push_back(std::move(p));
    }
    // Expand every accepted layer path by every base path. `best` is
    // frozen here (all entries keyed this layer hold layer_len, which
    // already prunes any strictly-longer extension), so the chunk bodies
    // only read shared state.
    const size_t n = layer.size();
    const ChunkLayout layout = ThreadPool::PlanFor(n, parallel);
    std::vector<std::vector<Path>> pushes(layout.num_chunks);
    ThreadPool::Shared().ParallelFor(
        n, parallel, parallel_stats,
        [&](size_t chunk, size_t begin, size_t end) {
          std::vector<Path>& mine = pushes[chunk];
          for (size_t i = begin; i < end; ++i) {
            const Path& p = layer[i];
            for (const Path* b : index.ForFirst(p.Last())) {
              if (b->Len() == 0) continue;  // identity ext., no progress
              Path q = Path::ConcatUnchecked(p, *b);
              if (q.Len() > limits.max_path_length) continue;
              auto qkey = std::make_pair(q.First(), q.Last());
              auto qit = best.find(qkey);
              if (qit != best.end() && q.Len() > qit->second) continue;
              mine.push_back(std::move(q));
            }
          }
        });
    for (std::vector<Path>& chunk : pushes) {
      for (Path& q : chunk) heap.push(std::move(q));
    }
  }
  return out;
}

}  // namespace

Result<PathSet> Recursive(const PathSet& base, PathSemantics semantics,
                          const EvalLimits& limits, PhiEngine engine,
                          const ParallelOptions& parallel,
                          ParallelStats* parallel_stats) {
  if (engine == PhiEngine::kNaive) {
    // The naive engine is the literal Definition 4.1 reference the
    // parallel paths are differentially tested against; it stays serial
    // by design.
    if (parallel_stats != nullptr && parallel.EffectiveThreads() > 1) {
      ++parallel_stats->serial_fallbacks;
    }
    return RecursiveNaive(base, semantics, limits);
  }
  if (semantics == PathSemantics::kShortest) {
    return RecursiveShortestLayered(base, limits, parallel, parallel_stats);
  }
  return RecursiveSemiNaive(base, semantics, limits, parallel,
                            parallel_stats);
}

PathSet RestrictPaths(const PathSet& s, PathSemantics semantics) {
  if (semantics == PathSemantics::kShortest) {
    return KeepShortestPerEndpointPair(s);
  }
  PathSet out;
  for (const Path& p : s) {
    if (SatisfiesSemantics(p, semantics)) out.Insert(p);
  }
  return out;
}

PathSet KeepShortestPerEndpointPair(const PathSet& s) {
  BestMap best;
  for (const Path& p : s) {
    auto key = std::make_pair(p.First(), p.Last());
    auto it = best.find(key);
    if (it == best.end() || p.Len() < it->second) best[key] = p.Len();
  }
  PathSet out;
  for (const Path& p : s) {
    if (best[std::make_pair(p.First(), p.Last())] == p.Len()) out.Insert(p);
  }
  return out;
}

}  // namespace pathalg
