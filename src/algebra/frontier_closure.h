#ifndef PATHALG_ALGEBRA_FRONTIER_CLOSURE_H_
#define PATHALG_ALGEBRA_FRONTIER_CLOSURE_H_

/// \file frontier_closure.h
/// The NFA-fused frontier engine for ϕ: evaluates the recursive closure
/// ϕ_semantics over the set of paths matching a closure-free regex
/// `inner` directly against the graph's label CSR, without materializing
/// that base set or any intermediate join. This is the classical
/// product-automaton construction (PathFinder: "Evaluating Regular Path
/// Queries in GQL and SQL/PGQ") fused into the semi-naive frontier:
/// (node, NFA-state) pairs drive expansion and pruning, the restrictor
/// semantics are enforced *during* expansion (a walk that repeats an
/// edge under TRAIL dies at that edge, not after a full candidate path
/// was built and filtered), and Path objects are reconstructed only for
/// accepting survivors.
///
/// Round structure mirrors RecursiveSemiNaive exactly: round r extends
/// every (r)-segment result by one full segment — a product walk through
/// NFA(inner) from the path's last node to an accepting state — so the
/// max_iterations trip predicate is identical to the semi-naive engine's
/// (see algebra/eval_budget.h for the full budget contract). kShortest
/// instead runs a product BFS over NFA(inner+) per source node and
/// reconstructs all per-pair minimal paths backwards along
/// distance-decreasing product edges; it never consults max_iterations
/// (its depth is already bounded by max_path_length).
///
/// Parallel execution keeps the repo's determinism contract: the
/// non-shortest rounds chunk the frontier (each chunk walks its paths'
/// (node, state) buckets and buffers candidates), the shortest mode
/// chunks the per-source product BFS by source node, and both merge
/// chunk buffers in chunk index order on the calling thread — results,
/// partial answers and Status are byte-identical at any thread count.
/// No locks are introduced; workers only write chunk-private buffers.
///
/// Equivalence to ϕ_sem(Eval(compile(inner))) per semantics: for
/// trail/acyclic/simple a sub-walk of an admissible composition is
/// admissible (prefixes of simple paths are acyclic), so in-flight
/// pruning never kills a prefix of a surviving candidate; for shortest,
/// every segment of a globally minimal composition is segment-minimal
/// (replacement argument), so the product BFS's minima are the closure's
/// minima; walk is unrestricted. Checked against RecursiveSemiNaive and
/// the automaton baseline by tests/frontier_differential_test.cc.

#include "algebra/recursive.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "graph/property_graph.h"
#include "path/path_set.h"
#include "regex/ast.h"

namespace pathalg {

/// Counters for one FrontierClosure call; the evaluator folds them into
/// EvalStats (frontier_states_expanded / frontier_paths_reconstructed).
struct FrontierClosureStats {
  /// Product steps taken: one per (node, NFA-state) pair pushed during
  /// segment walks (non-shortest) or relaxed/backtracked (shortest).
  size_t states_expanded = 0;
  /// Candidate Path objects reconstructed for accepting survivors
  /// (before dedup against the accumulated result).
  size_t paths_reconstructed = 0;
};

/// True if `inner` is a closure-free regex (labels, concatenations,
/// unions) — the family the frontier engine fuses. Nested closures and
/// `?` fall back to the materializing engines.
bool FrontierEligible(const RegexPtr& inner);

/// ϕ_semantics over the base set {p : λ(p) ∈ L(inner)}, evaluated
/// NFA-fused. Precondition: FrontierEligible(inner); returns
/// InvalidArgument otherwise. Result is set-equal to
/// Recursive(Eval(CompileRegex(inner)), semantics, limits) with an
/// identical budget-trip predicate (algebra/eval_budget.h).
Result<PathSet> FrontierClosure(const PropertyGraph& g,
                                const RegexPtr& inner,
                                PathSemantics semantics,
                                const EvalLimits& limits = {},
                                const ParallelOptions& parallel = {},
                                ParallelStats* parallel_stats = nullptr,
                                FrontierClosureStats* stats = nullptr);

}  // namespace pathalg

#endif  // PATHALG_ALGEBRA_FRONTIER_CLOSURE_H_
