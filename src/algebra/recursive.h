#ifndef PATHALG_ALGEBRA_RECURSIVE_H_
#define PATHALG_ALGEBRA_RECURSIVE_H_

/// \file recursive.h
/// The Recursive Path Algebra (§4): ϕ computes a recursive self-join over a
/// set of paths until a fixpoint (Definition 4.1), under one of five GQL
/// path semantics (restrictors, Table 2):
///
///   ϕWalk     — all paths, no restriction (diverges on cyclic inputs);
///   ϕTrail    — no repeated edges;
///   ϕAcyclic  — no repeated nodes;
///   ϕSimple   — no repeated nodes except possibly first == last;
///   ϕShortest — per (first, last) pair, only minimum-length paths.
///
/// Two engines are provided: `kNaive` follows Definition 4.1 literally
/// (each round joins the full accumulated set with the base set), and
/// `kOptimized` uses semi-naive frontier expansion (trail/acyclic/simple/
/// walk) or length-layered best-first search (shortest). The two are
/// checked equal by differential tests; bench/phi_ablation measures the gap.
///
/// The optimized engine optionally fans each round's expansion out over
/// the chunked work-stealing pool (common/thread_pool.h). Parallel output
/// is byte-identical to serial at any thread count — candidate generation
/// (extend + filter) is chunked, while dedup, budget checks and result
/// insertion run on the calling thread in chunk order, which is exactly
/// the serial enumeration order. kNaive stays intentionally serial: it is
/// the reference the parallel engine is differentially tested against.

#include <cstddef>

#include "common/cancel.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "path/path_set.h"

namespace pathalg {

/// GQL restrictor semantics (Table 2 plus SHORTEST, §4).
enum class PathSemantics { kWalk, kTrail, kAcyclic, kSimple, kShortest };

const char* PathSemanticsToString(PathSemantics s);

/// True if `p` is admissible under `s`. Shortest is a set-level property
/// and always returns true here; it is enforced by the ϕ engines.
bool SatisfiesSemantics(const Path& p, PathSemantics s);

/// Budgets for a ϕ evaluation. ϕWalk over a cyclic input has an infinite
/// answer (§4); the budgets make evaluation total. When a budget truncates
/// a genuinely larger answer the engine either reports ResourceExhausted
/// (truncate == false, the default) or returns the partial answer
/// (truncate == true — used for "all walks up to length L" workloads).
struct EvalLimits {
  /// Paths longer than this are never produced.
  size_t max_path_length = 256;
  /// Hard cap on the number of result paths. Together with
  /// max_path_length this bounds ϕ's memory footprint; raise both for
  /// genuinely huge answers.
  size_t max_paths = 1'000'000;
  /// Hard cap on fixpoint rounds.
  size_t max_iterations = 100'000;
  /// Budget policy: error out (false) or return the partial answer (true).
  bool truncate = false;
  /// Optional cooperative-cancellation token (deadline or external),
  /// polled at every deterministic control point. Trip semantics —
  /// including why truncate never applies to a cancellation — are pinned
  /// in algebra/eval_budget.h. Not owned; must outlive the evaluation.
  const CancelToken* cancel = nullptr;
};

enum class PhiEngine { kNaive, kOptimized };

/// ϕ_semantics(base): Definition 4.1 with the restrictor filter applied to
/// every generated path (including the base paths themselves — ϕTrail of a
/// non-trail base path excludes it, matching Table 2's "returns paths that
/// do not have repeated edges").
Result<PathSet> Recursive(const PathSet& base, PathSemantics semantics,
                          const EvalLimits& limits = {},
                          PhiEngine engine = PhiEngine::kOptimized,
                          const ParallelOptions& parallel = {},
                          ParallelStats* parallel_stats = nullptr);

/// Keeps, for every (First, Last) pair in `s`, exactly the minimum-length
/// paths. Exposed for the optimizer and for tests.
PathSet KeepShortestPerEndpointPair(const PathSet& s);

/// The whole-path restrictor filter ρ (an extension operator): drops paths
/// violating trail/acyclic/simple, keeps per-pair minima for shortest, and
/// is the identity for walk. This is GQL's reading of a restrictor applied
/// to an existing set of paths, and the outer restrictor of §2.3 sequenced
/// path queries.
PathSet RestrictPaths(const PathSet& s, PathSemantics semantics);

}  // namespace pathalg

#endif  // PATHALG_ALGEBRA_RECURSIVE_H_
