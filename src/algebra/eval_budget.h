#ifndef PATHALG_ALGEBRA_EVAL_BUDGET_H_
#define PATHALG_ALGEBRA_EVAL_BUDGET_H_

/// \file eval_budget.h
/// The shared EvalLimits budget contract for every path-enumeration
/// engine: the three algebra ϕ engines (naive, semi-naive, layered
/// shortest), the NFA-fused frontier engine (frontier_closure.h) and the
/// automaton baseline (baseline/automaton_eval.h). The differential
/// contract — optimized ≡ baseline, including Status and truncation
/// points — is only as strong as the agreement of their budget edges, so
/// the edges are specified once, here, and every engine implements this
/// text:
///
/// **max_paths** — counts *distinct* result paths. The budget trips at
/// the moment a (max_paths+1)-th distinct admissible path is discovered;
/// re-discovering an already-emitted path never trips (duplicate
/// discovery order is an engine artifact, so a duplicate-sensitive check
/// would make the trip point engine-dependent). Base paths and
/// zero-length paths count like any other result. The trip predicate is
/// therefore a pure function of (graph, query, semantics, limits):
/// |answer| > max_paths. With truncate=true the engine returns exactly
/// min(|answer|, max_paths) paths — which max_paths paths is the
/// engine's own (deterministic, thread-count-independent) enumeration
/// order, and every returned path belongs to the full answer.
///
/// **max_path_length** — a silent filter while enumerating: paths longer
/// than the cap are never produced. Engines track a `dropped` flag that
/// is set when an *admissible* candidate was suppressed by the cap
/// (semantics are checked before length, so a candidate that would fail
/// the restrictor anyway never sets the flag). The flag is consulted
/// only at the natural end of a complete enumeration: truncate=false
/// reports BudgetExhausted("max_path_length"), truncate=true returns the
/// capped answer. kShortest treats the cap as a pure filter on both
/// sides (pairs whose minimal path exceeds the cap are absent, never
/// reported).
///
/// **max_iterations** — a fixpoint-round budget for the algebra engines:
/// round r composes (r+1)-segment paths, and the budget trips iff the
/// fixpoint has not been verified after max_iterations rounds (i.e. round
/// max_iterations still discovered a new path — including round 0: a
/// nonempty filtered base with max_iterations == 0 trips, an empty one
/// does not). The naive, semi-naive and frontier engines agree exactly
/// on this predicate; the automaton baseline has no fixpoint and does
/// not consult max_iterations.
///
/// **Precedence** — max_paths is checked during enumeration and returns
/// immediately; the `dropped` flag is only consulted at a completed
/// enumeration. When both budgets trip in one evaluation, every engine
/// reports BudgetExhausted("max_paths"). Pinned by
/// FrontierDifferentialTest.BudgetPrecedenceMaxPathsBeforeMaxPathLength.
///
/// **cancel** — an optional CancelToken (common/cancel.h) carried in
/// EvalLimits. Engines poll it at every deterministic control point
/// (fixpoint round, frontier segment, length layer, chunk merge, plan
/// node) and every kCancelCheckStride steps inside a DFS segment; a
/// tripped token returns EvalCancelled(token) — one kResourceExhausted
/// Status, wording fixed below — *immediately*, discarding all partial
/// results. truncate=true does NOT apply to cancellation: which paths
/// exist at the trip instant is a function of wall-clock timing, so a
/// truncated answer could never satisfy the determinism contract. A
/// deterministic budget (max_paths / max_iterations / max_path_length)
/// whose check fires before the next cancel poll wins and reports its
/// own Status; otherwise cancellation wins. *Whether* a given run trips
/// the deadline is wall-clock-dependent, so — exactly like `!timing`
/// output — deadline trips are excluded from the byte-identity surface;
/// the Status text itself is still byte-fixed per trip reason.

#include <string>

#include "common/cancel.h"
#include "common/status.h"

namespace pathalg {

/// The single Status every engine returns for a tripped budget;
/// `what` ∈ {"max_paths", "max_iterations", "max_path_length"}.
/// Identical wording across engines is part of the differential contract
/// (Status strings are compared byte-for-byte by the parity fuzz).
inline Status BudgetExhausted(const char* what) {
  return Status::ResourceExhausted(
      std::string("path enumeration exceeded budget (") + what +
      "); the answer set may be infinite under WALK semantics — "
      "use a restrictor, a length bound, or truncate=true");
}

/// The single Status every engine returns for a tripped CancelToken;
/// the reason ("deadline", "shutdown", ...) is the only varying part.
/// Partial results are always discarded (contract above).
inline Status EvalCancelled(const CancelToken& token) {
  return Status::ResourceExhausted(std::string("query cancelled (") +
                                   token.Reason() +
                                   "); partial results were discarded");
}

/// True when `limits.cancel`-style token polling should return. The
/// null check keeps the common (no token) path branch-predictable.
inline bool CancelRequested(const CancelToken* cancel) {
  return cancel != nullptr && cancel->Cancelled();
}

/// Classifies an engine Status as a cancellation (vs a budget trip or
/// any other error) by its pinned wording — the server uses this to
/// split deadline_trips from cancelled_queries.
inline bool IsCancelledStatus(const Status& s) {
  return s.IsResourceExhausted() &&
         s.message().rfind("query cancelled (", 0) == 0;
}

inline bool IsDeadlineCancelledStatus(const Status& s) {
  return s.IsResourceExhausted() &&
         s.message().rfind("query cancelled (deadline)", 0) == 0;
}

}  // namespace pathalg

#endif  // PATHALG_ALGEBRA_EVAL_BUDGET_H_
