#ifndef PATHALG_ALGEBRA_CORE_OPS_H_
#define PATHALG_ALGEBRA_CORE_OPS_H_

/// \file core_ops.h
/// The Core Path Algebra (Definition 3.1): selection σ, join ⋈ and union ∪
/// over sets of paths, plus the "natural graph operators missing from the
/// two proposals" (§1) — intersection and difference — which keep the
/// algebra closed under sets of paths.
///
/// All operators are pure functions PathSet×PathSet→PathSet (σ takes one
/// set); output insertion order is deterministic: σ preserves input order,
/// ⋈ enumerates left paths in order and right matches in order, ∪ takes the
/// left set followed by unseen right paths.
///
/// σ and ⋈ optionally fan out over a chunked work-stealing pool
/// (common/thread_pool.h). Parallel execution is byte-identical to serial:
/// the input is split into contiguous chunks, each chunk's output is
/// collected privately, and chunks are merged in chunk index order — the
/// exact enumeration order of the serial loop.

#include "algebra/condition.h"
#include "common/thread_pool.h"
#include "path/path_set.h"

namespace pathalg {

/// σ_c(S) = {p ∈ S | ev(c, p) = True}.
PathSet Select(const PropertyGraph& g, const PathSet& s,
               const Condition& condition,
               const ParallelOptions& parallel = {},
               ParallelStats* parallel_stats = nullptr);

/// S ⋈ S' = {p1 ◦ p2 | p1 ∈ S, p2 ∈ S', Last(p1) = First(p2)}.
/// Dense index on the connecting node; the probe side (s1) is chunked
/// under parallel execution.
PathSet Join(const PathSet& s1, const PathSet& s2,
             const ParallelOptions& parallel = {},
             ParallelStats* parallel_stats = nullptr);

/// S ∪ S' with set semantics (duplicates eliminated).
PathSet Union(const PathSet& s1, const PathSet& s2);

/// S ∩ S' — extension beyond the paper's core (§1 mentions the standards
/// lack such natural operators).
PathSet Intersect(const PathSet& s1, const PathSet& s2);

/// S − S' — extension, see Intersect.
PathSet Difference(const PathSet& s1, const PathSet& s2);

}  // namespace pathalg

#endif  // PATHALG_ALGEBRA_CORE_OPS_H_
