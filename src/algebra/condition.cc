#include "algebra/condition.h"

#include <optional>

#include "path/path_ops.h"

namespace pathalg {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kContains:
      return "CONTAINS";
    case CompareOp::kStartsWith:
      return "STARTS WITH";
    case CompareOp::kExists:
      return "EXISTS";
  }
  return "?";
}

namespace {

bool Compare(const Value& lhs, CompareOp op, const Value& rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kContains:
      return lhs.is_string() && rhs.is_string() &&
             lhs.AsString().find(rhs.AsString()) != std::string::npos;
    case CompareOp::kStartsWith:
      return lhs.is_string() && rhs.is_string() &&
             lhs.AsString().rfind(rhs.AsString(), 0) == 0;
    case CompareOp::kExists:
      return true;  // the access succeeded; Evaluate handles the miss case
  }
  return false;
}

/// Resolves the access of a simple condition; nullopt when the accessed
/// label/property/position does not exist.
std::optional<Value> Access(const Condition& c, const PropertyGraph& g,
                            const Path& p) {
  switch (c.access()) {
    case AccessKind::kNodeLabel: {
      std::string_view l = LabelOfNodeAt(g, p, c.position());
      if (l.empty()) return std::nullopt;
      return Value(std::string(l));
    }
    case AccessKind::kEdgeLabel: {
      std::string_view l = LabelOfEdgeAt(g, p, c.position());
      if (l.empty()) return std::nullopt;
      return Value(std::string(l));
    }
    case AccessKind::kFirstLabel: {
      std::string_view l = LabelOfNodeAt(g, p, 1);
      if (l.empty()) return std::nullopt;
      return Value(std::string(l));
    }
    case AccessKind::kLastLabel: {
      std::string_view l = LabelOfNodeAt(g, p, p.Len() + 1);
      if (l.empty()) return std::nullopt;
      return Value(std::string(l));
    }
    case AccessKind::kNodeProp: {
      const Value* v = PropOfNodeAt(g, p, c.position(), c.property());
      if (v == nullptr) return std::nullopt;
      return *v;
    }
    case AccessKind::kEdgeProp: {
      const Value* v = PropOfEdgeAt(g, p, c.position(), c.property());
      if (v == nullptr) return std::nullopt;
      return *v;
    }
    case AccessKind::kFirstProp: {
      const Value* v = PropOfNodeAt(g, p, 1, c.property());
      if (v == nullptr) return std::nullopt;
      return *v;
    }
    case AccessKind::kLastProp: {
      const Value* v = PropOfNodeAt(g, p, p.Len() + 1, c.property());
      if (v == nullptr) return std::nullopt;
      return *v;
    }
    case AccessKind::kLen:
      return Value(static_cast<int64_t>(p.Len()));
  }
  return std::nullopt;
}

std::string AccessToString(const Condition& c) {
  switch (c.access()) {
    case AccessKind::kNodeLabel:
      return "label(node(" + std::to_string(c.position()) + "))";
    case AccessKind::kEdgeLabel:
      return "label(edge(" + std::to_string(c.position()) + "))";
    case AccessKind::kFirstLabel:
      return "label(first)";
    case AccessKind::kLastLabel:
      return "label(last)";
    case AccessKind::kNodeProp:
      return "node(" + std::to_string(c.position()) + ")." + c.property();
    case AccessKind::kEdgeProp:
      return "edge(" + std::to_string(c.position()) + ")." + c.property();
    case AccessKind::kFirstProp:
      return "first." + c.property();
    case AccessKind::kLastProp:
      return "last." + c.property();
    case AccessKind::kLen:
      return "len()";
  }
  return "?";
}

}  // namespace

bool Condition::Evaluate(const PropertyGraph& g, const Path& p) const {
  switch (kind_) {
    case Kind::kSimple: {
      std::optional<Value> lhs = Access(*this, g, p);
      if (!lhs.has_value()) return false;
      return Compare(*lhs, op_, constant_);
    }
    case Kind::kAnd:
      return left_->Evaluate(g, p) && right_->Evaluate(g, p);
    case Kind::kOr:
      return left_->Evaluate(g, p) || right_->Evaluate(g, p);
    case Kind::kNot:
      return !left_->Evaluate(g, p);
  }
  return false;
}

std::string Condition::ToString() const {
  switch (kind_) {
    case Kind::kSimple:
      if (op_ == CompareOp::kExists) {
        return AccessToString(*this) + " EXISTS";
      }
      return AccessToString(*this) + " " + CompareOpToString(op_) + " " +
             constant_.ToString();
    case Kind::kAnd:
      return "(" + left_->ToString() + " AND " + right_->ToString() + ")";
    case Kind::kOr:
      return "(" + left_->ToString() + " OR " + right_->ToString() + ")";
    case Kind::kNot:
      return "NOT (" + left_->ToString() + ")";
  }
  return "?";
}

bool Condition::Equals(const Condition& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kSimple:
      return access_ == other.access_ && position_ == other.position_ &&
             property_ == other.property_ && op_ == other.op_ &&
             constant_ == other.constant_;
    case Kind::kAnd:
    case Kind::kOr:
      return left_->Equals(*other.left_) && right_->Equals(*other.right_);
    case Kind::kNot:
      return left_->Equals(*other.left_);
  }
  return false;
}

ConditionPtr Condition::MakeSimple(AccessKind access, size_t position,
                                   std::string property, CompareOp op,
                                   Value constant) {
  auto c = std::shared_ptr<Condition>(new Condition());
  c->kind_ = Kind::kSimple;
  c->access_ = access;
  c->position_ = position;
  c->property_ = std::move(property);
  c->op_ = op;
  c->constant_ = std::move(constant);
  return c;
}

ConditionPtr Condition::And(ConditionPtr l, ConditionPtr r) {
  auto c = std::shared_ptr<Condition>(new Condition());
  c->kind_ = Kind::kAnd;
  c->left_ = std::move(l);
  c->right_ = std::move(r);
  return c;
}

ConditionPtr Condition::Or(ConditionPtr l, ConditionPtr r) {
  auto c = std::shared_ptr<Condition>(new Condition());
  c->kind_ = Kind::kOr;
  c->left_ = std::move(l);
  c->right_ = std::move(r);
  return c;
}

ConditionPtr Condition::Not(ConditionPtr inner) {
  auto c = std::shared_ptr<Condition>(new Condition());
  c->kind_ = Kind::kNot;
  c->left_ = std::move(inner);
  return c;
}

ConditionPtr NodeLabelEq(size_t i, std::string label) {
  return Condition::MakeSimple(AccessKind::kNodeLabel, i, {}, CompareOp::kEq,
                               Value(std::move(label)));
}
ConditionPtr EdgeLabelEq(size_t i, std::string label) {
  return Condition::MakeSimple(AccessKind::kEdgeLabel, i, {}, CompareOp::kEq,
                               Value(std::move(label)));
}
ConditionPtr FirstLabelEq(std::string label) {
  return Condition::MakeSimple(AccessKind::kFirstLabel, 0, {}, CompareOp::kEq,
                               Value(std::move(label)));
}
ConditionPtr LastLabelEq(std::string label) {
  return Condition::MakeSimple(AccessKind::kLastLabel, 0, {}, CompareOp::kEq,
                               Value(std::move(label)));
}
ConditionPtr FirstPropEq(std::string property, Value v) {
  return Condition::MakeSimple(AccessKind::kFirstProp, 0, std::move(property),
                               CompareOp::kEq, std::move(v));
}
ConditionPtr LastPropEq(std::string property, Value v) {
  return Condition::MakeSimple(AccessKind::kLastProp, 0, std::move(property),
                               CompareOp::kEq, std::move(v));
}
ConditionPtr NodePropEq(size_t i, std::string property, Value v) {
  return Condition::MakeSimple(AccessKind::kNodeProp, i, std::move(property),
                               CompareOp::kEq, std::move(v));
}
ConditionPtr EdgePropEq(size_t i, std::string property, Value v) {
  return Condition::MakeSimple(AccessKind::kEdgeProp, i, std::move(property),
                               CompareOp::kEq, std::move(v));
}
ConditionPtr LenCompare(CompareOp op, int64_t len) {
  return Condition::MakeSimple(AccessKind::kLen, 0, {}, op, Value(len));
}
ConditionPtr LenEq(int64_t len) { return LenCompare(CompareOp::kEq, len); }
ConditionPtr FirstPropContains(std::string property, std::string needle) {
  return Condition::MakeSimple(AccessKind::kFirstProp, 0,
                               std::move(property), CompareOp::kContains,
                               Value(std::move(needle)));
}
ConditionPtr FirstPropExists(std::string property) {
  return Condition::MakeSimple(AccessKind::kFirstProp, 0,
                               std::move(property), CompareOp::kExists,
                               Value());
}
ConditionPtr LastPropExists(std::string property) {
  return Condition::MakeSimple(AccessKind::kLastProp, 0,
                               std::move(property), CompareOp::kExists,
                               Value());
}

namespace {

template <typename LeafPred>
bool AllLeaves(const Condition& c, const LeafPred& pred) {
  switch (c.kind()) {
    case Condition::Kind::kSimple:
      return pred(c);
    case Condition::Kind::kAnd:
    case Condition::Kind::kOr:
      return AllLeaves(*c.left(), pred) && AllLeaves(*c.right(), pred);
    case Condition::Kind::kNot:
      return AllLeaves(*c.left(), pred);
  }
  return false;
}

template <typename LeafFn>
size_t MaxOverLeaves(const Condition& c, const LeafFn& fn) {
  switch (c.kind()) {
    case Condition::Kind::kSimple:
      return fn(c);
    case Condition::Kind::kAnd:
    case Condition::Kind::kOr:
      return std::max(MaxOverLeaves(*c.left(), fn),
                      MaxOverLeaves(*c.right(), fn));
    case Condition::Kind::kNot:
      return MaxOverLeaves(*c.left(), fn);
  }
  return 0;
}

}  // namespace

bool RefersOnlyToFirstNode(const Condition& c) {
  return AllLeaves(c, [](const Condition& leaf) {
    switch (leaf.access()) {
      case AccessKind::kFirstLabel:
      case AccessKind::kFirstProp:
        return true;
      case AccessKind::kNodeLabel:
      case AccessKind::kNodeProp:
        return leaf.position() == 1;
      default:
        return false;
    }
  });
}

bool RefersOnlyToLastNode(const Condition& c) {
  return AllLeaves(c, [](const Condition& leaf) {
    return leaf.access() == AccessKind::kLastLabel ||
           leaf.access() == AccessKind::kLastProp;
  });
}

bool UsesLen(const Condition& c) {
  return !AllLeaves(c, [](const Condition& leaf) {
    return leaf.access() != AccessKind::kLen;
  });
}

size_t MaxNodePosition(const Condition& c, size_t fallback) {
  return MaxOverLeaves(c, [fallback](const Condition& leaf) -> size_t {
    switch (leaf.access()) {
      case AccessKind::kNodeLabel:
      case AccessKind::kNodeProp:
        return leaf.position();
      case AccessKind::kFirstLabel:
      case AccessKind::kFirstProp:
        return 1;
      case AccessKind::kLastLabel:
      case AccessKind::kLastProp:
      case AccessKind::kLen:
        return fallback;
      default:
        return 0;
    }
  });
}

size_t MaxEdgePosition(const Condition& c, size_t fallback) {
  return MaxOverLeaves(c, [fallback](const Condition& leaf) -> size_t {
    switch (leaf.access()) {
      case AccessKind::kEdgeLabel:
      case AccessKind::kEdgeProp:
        return leaf.position();
      case AccessKind::kLastLabel:
      case AccessKind::kLastProp:
      case AccessKind::kLen:
        return fallback;
      default:
        return 0;
    }
  });
}

}  // namespace pathalg
