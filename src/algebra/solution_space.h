#ifndef PATHALG_ALGEBRA_SOLUTION_SPACE_H_
#define PATHALG_ALGEBRA_SOLUTION_SPACE_H_

/// \file solution_space.h
/// The Extended Path Algebra (§5): solution spaces (Definition 5.1) and the
/// three operators that manipulate them —
///
///   γψ  group-by    PathSet → SolutionSpace   (ψ ∈ {∅,S,T,L,ST,SL,TL,STL})
///   τθ  order-by    SolutionSpace → SolutionSpace (θ ∈ {P,G,A,PG,PA,GA,PGA})
///   π   projection  SolutionSpace → PathSet   (Algorithm 1)
///
/// A solution space SS = (S, G, P, α, β, Δ) organizes a set of paths S into
/// groups (α) inside partitions (β); Δ assigns a positive-integer rank to
/// every path, group and partition, inducing the "virtual order" that τ
/// manipulates and π consumes. γ initializes every Δ to 1 (no order); τ
/// redefines Δ per Table 6 (MinL of partitions/groups, Len of paths).
///
/// Deviation noted: for an empty input set the paper's γ∅ formally creates
/// one empty group in one partition; we create an empty space (no
/// partitions) — π yields ∅ either way and MinL of an empty group would be
/// undefined.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "path/path_set.h"

namespace pathalg {

/// γψ grouping criteria (§5.1): which of Source / Target / Length take part
/// in the partition/group keys. S and T shape partitions; L shapes groups.
enum class GroupKey { kNone, kS, kT, kL, kST, kSL, kTL, kSTL };

/// τθ ordering criteria (§5.2, Table 6).
enum class OrderKey { kP, kG, kA, kPG, kPA, kGA, kPGA };

const char* GroupKeyToString(GroupKey k);
const char* OrderKeyToString(OrderKey k);

/// Whether ψ partitions by source / target, and groups by length.
bool GroupKeyUsesSource(GroupKey k);
bool GroupKeyUsesTarget(GroupKey k);
bool GroupKeyUsesLength(GroupKey k);
bool OrderKeyOrdersPartitions(OrderKey k);
bool OrderKeyOrdersGroups(OrderKey k);
bool OrderKeyOrdersPaths(OrderKey k);

/// A materialized solution space. Indices are dense: partitions and groups
/// are numbered canonically by their (source, target, length) keys — never
/// by input enumeration order — and paths keep set insertion order within
/// their group. This keeps every operator deterministic and makes spaces
/// built from differently-ordered but equal path sets identical.
class SolutionSpace {
 public:
  size_t num_paths() const { return paths_.size(); }
  size_t num_groups() const { return group_paths_.size(); }
  size_t num_partitions() const { return partition_groups_.size(); }

  const Path& path(size_t i) const { return paths_[i]; }
  const std::vector<Path>& paths() const { return paths_; }

  /// α: the group containing path i.
  uint32_t GroupOfPath(size_t i) const { return path_group_[i]; }
  /// β: the partition containing group g.
  uint32_t PartitionOfGroup(size_t g) const { return group_partition_[g]; }

  /// Inverse images; groups of a partition come sorted by their length
  /// component, paths of a group in set insertion order.
  const std::vector<uint32_t>& PathsOfGroup(size_t g) const {
    return group_paths_[g];
  }
  const std::vector<uint32_t>& GroupsOfPartition(size_t p) const {
    return partition_groups_[p];
  }

  /// Δ ranks (γ sets all to 1; τ rewrites them).
  size_t PathRank(size_t i) const { return path_rank_[i]; }
  size_t GroupRank(size_t g) const { return group_rank_[g]; }
  size_t PartitionRank(size_t p) const { return partition_rank_[p]; }

  /// MinL(G): length of the shortest path in group g (§5.2).
  size_t MinLenOfGroup(size_t g) const;
  /// MinL(P): minimum MinL over the groups of partition p (§5.2).
  size_t MinLenOfPartition(size_t p) const;

  /// Tabular rendering mirroring the paper's Table 5: one row per path with
  /// partition, group, MinL(P), MinL(G) and Len(p) columns.
  std::string ToTableString(const PropertyGraph& g) const;

 private:
  friend SolutionSpace GroupBy(const PathSet& s, GroupKey key);
  friend SolutionSpace OrderBy(const SolutionSpace& ss, OrderKey key);

  std::vector<Path> paths_;
  std::vector<uint32_t> path_group_;
  std::vector<uint32_t> group_partition_;
  std::vector<std::vector<uint32_t>> group_paths_;
  std::vector<std::vector<uint32_t>> partition_groups_;
  std::vector<size_t> path_rank_;
  std::vector<size_t> group_rank_;
  std::vector<size_t> partition_rank_;
};

/// γψ(S) (§5.1): partitions by the S/T components of ψ, groups by the L
/// component, Δ ≡ 1.
SolutionSpace GroupBy(const PathSet& s, GroupKey key);

/// τθ(SS) (§5.2, Table 6): returns SS with Δ replaced by Δ′.
SolutionSpace OrderBy(const SolutionSpace& ss, OrderKey key);

/// Projection parameters (#P, #G, #A); nullopt renders the paper's `*`.
/// Counts must be ≥ 1 ("each # is either the symbol * or a positive
/// integer"); 0 is rejected by Project.
struct ProjectionSpec {
  std::optional<size_t> partitions;
  std::optional<size_t> groups;
  std::optional<size_t> paths;

  std::string ToString() const;
};

/// π(#P,#G,#A)(SS): Algorithm 1. Sorts partitions / groups / paths by Δ
/// (stable — ties keep first-occurrence order, making ANY-style selections
/// deterministic in this implementation) and emits the requested prefix of
/// each level.
Result<PathSet> Project(const SolutionSpace& ss, const ProjectionSpec& spec);

}  // namespace pathalg

#endif  // PATHALG_ALGEBRA_SOLUTION_SPACE_H_
