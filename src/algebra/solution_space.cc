#include "algebra/solution_space.h"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <sstream>
#include <tuple>

namespace pathalg {

const char* GroupKeyToString(GroupKey k) {
  switch (k) {
    case GroupKey::kNone:
      return "";
    case GroupKey::kS:
      return "S";
    case GroupKey::kT:
      return "T";
    case GroupKey::kL:
      return "L";
    case GroupKey::kST:
      return "ST";
    case GroupKey::kSL:
      return "SL";
    case GroupKey::kTL:
      return "TL";
    case GroupKey::kSTL:
      return "STL";
  }
  return "?";
}

const char* OrderKeyToString(OrderKey k) {
  switch (k) {
    case OrderKey::kP:
      return "P";
    case OrderKey::kG:
      return "G";
    case OrderKey::kA:
      return "A";
    case OrderKey::kPG:
      return "PG";
    case OrderKey::kPA:
      return "PA";
    case OrderKey::kGA:
      return "GA";
    case OrderKey::kPGA:
      return "PGA";
  }
  return "?";
}

bool GroupKeyUsesSource(GroupKey k) {
  return k == GroupKey::kS || k == GroupKey::kST || k == GroupKey::kSL ||
         k == GroupKey::kSTL;
}
bool GroupKeyUsesTarget(GroupKey k) {
  return k == GroupKey::kT || k == GroupKey::kST || k == GroupKey::kTL ||
         k == GroupKey::kSTL;
}
bool GroupKeyUsesLength(GroupKey k) {
  return k == GroupKey::kL || k == GroupKey::kSL || k == GroupKey::kTL ||
         k == GroupKey::kSTL;
}
bool OrderKeyOrdersPartitions(OrderKey k) {
  return k == OrderKey::kP || k == OrderKey::kPG || k == OrderKey::kPA ||
         k == OrderKey::kPGA;
}
bool OrderKeyOrdersGroups(OrderKey k) {
  return k == OrderKey::kG || k == OrderKey::kPG || k == OrderKey::kGA ||
         k == OrderKey::kPGA;
}
bool OrderKeyOrdersPaths(OrderKey k) {
  return k == OrderKey::kA || k == OrderKey::kPA || k == OrderKey::kGA ||
         k == OrderKey::kPGA;
}

size_t SolutionSpace::MinLenOfGroup(size_t g) const {
  size_t min_len = std::numeric_limits<size_t>::max();
  for (uint32_t i : group_paths_[g]) {
    min_len = std::min(min_len, paths_[i].Len());
  }
  return min_len;
}

size_t SolutionSpace::MinLenOfPartition(size_t p) const {
  size_t min_len = std::numeric_limits<size_t>::max();
  for (uint32_t g : partition_groups_[p]) {
    min_len = std::min(min_len, MinLenOfGroup(g));
  }
  return min_len;
}

std::string SolutionSpace::ToTableString(const PropertyGraph& graph) const {
  std::ostringstream os;
  os << "Partition  Group     Path                                     "
        "MinL(P)  MinL(G)  Len(p)\n";
  for (size_t p = 0; p < num_partitions(); ++p) {
    for (size_t g_ix = 0; g_ix < partition_groups_[p].size(); ++g_ix) {
      uint32_t g = partition_groups_[p][g_ix];
      for (size_t i_ix = 0; i_ix < group_paths_[g].size(); ++i_ix) {
        uint32_t i = group_paths_[g][i_ix];
        std::string part = "part" + std::to_string(p + 1);
        std::string grp = "group" + std::to_string(p + 1) +
                          std::to_string(g_ix + 1);
        std::string path = paths_[i].ToString(graph);
        os << part << std::string(part.size() < 11 ? 11 - part.size() : 1, ' ')
           << grp << std::string(grp.size() < 10 ? 10 - grp.size() : 1, ' ')
           << path
           << std::string(path.size() < 41 ? 41 - path.size() : 1, ' ')
           << MinLenOfPartition(p) << "        " << MinLenOfGroup(g)
           << "        " << paths_[i].Len() << "\n";
      }
    }
  }
  return os.str();
}

SolutionSpace GroupBy(const PathSet& s, GroupKey key) {
  SolutionSpace ss;
  const bool use_s = GroupKeyUsesSource(key);
  const bool use_t = GroupKeyUsesTarget(key);
  const bool use_l = GroupKeyUsesLength(key);

  // Partition key: (source?, target?); group key refines it with (length?).
  // kInvalidId marks "component unused" so that all paths share the key.
  using PartKey = std::pair<uint32_t, uint32_t>;
  using GrpKey = std::tuple<uint32_t, uint32_t, size_t>;
  std::map<PartKey, uint32_t> partitions;
  std::map<GrpKey, uint32_t> groups;

  auto part_key = [&](const Path& p) -> PartKey {
    return {use_s ? p.First() : kInvalidId, use_t ? p.Last() : kInvalidId};
  };
  auto grp_key = [&](const Path& p) -> GrpKey {
    return {use_s ? p.First() : kInvalidId, use_t ? p.Last() : kInvalidId,
            use_l ? p.Len() : 0};
  };

  // Phase 1: collect keys, then number partitions and groups in key order.
  // Canonical numbering (by source/target/length, not first occurrence)
  // makes the solution space — and hence every ANY-style projection pick —
  // independent of how the input set was enumerated, which is what lets
  // the optimizer's rewrites preserve results exactly.
  for (const Path& p : s) {
    partitions[part_key(p)] = 0;
    groups[grp_key(p)] = 0;
  }
  uint32_t next = 0;
  for (auto& [k, v] : partitions) v = next++;
  next = 0;
  for (auto& [k, v] : groups) v = next++;

  ss.partition_groups_.resize(partitions.size());
  ss.group_paths_.resize(groups.size());
  ss.group_partition_.resize(groups.size());
  for (const auto& [gk, gi] : groups) {
    uint32_t pi = partitions[PartKey{std::get<0>(gk), std::get<1>(gk)}];
    ss.group_partition_[gi] = pi;
    // Map iteration is key order, so groups land in each partition sorted
    // by their length component.
    ss.partition_groups_[pi].push_back(gi);
  }

  // Phase 2: paths keep their set insertion order within each group.
  for (const Path& p : s) {
    uint32_t gi = groups[grp_key(p)];
    uint32_t path_ix = static_cast<uint32_t>(ss.paths_.size());
    ss.paths_.push_back(p);
    ss.path_group_.push_back(gi);
    ss.group_paths_[gi].push_back(path_ix);
  }

  // Δ(x) = 1 for every path, group and partition (§5.1): no virtual order.
  ss.path_rank_.assign(ss.num_paths(), 1);
  ss.group_rank_.assign(ss.num_groups(), 1);
  ss.partition_rank_.assign(ss.num_partitions(), 1);
  return ss;
}

SolutionSpace OrderBy(const SolutionSpace& in, OrderKey key) {
  SolutionSpace ss = in;  // Δ′ is the only change (Table 6).
  if (OrderKeyOrdersPartitions(key)) {
    for (size_t p = 0; p < ss.num_partitions(); ++p) {
      ss.partition_rank_[p] = ss.MinLenOfPartition(p);
    }
  }
  if (OrderKeyOrdersGroups(key)) {
    for (size_t g = 0; g < ss.num_groups(); ++g) {
      ss.group_rank_[g] = ss.MinLenOfGroup(g);
    }
  }
  if (OrderKeyOrdersPaths(key)) {
    for (size_t i = 0; i < ss.num_paths(); ++i) {
      ss.path_rank_[i] = ss.paths_[i].Len();
    }
  }
  return ss;
}

std::string ProjectionSpec::ToString() const {
  auto render = [](const std::optional<size_t>& v) {
    return v.has_value() ? std::to_string(*v) : std::string("*");
  };
  return "(" + render(partitions) + "," + render(groups) + "," +
         render(paths) + ")";
}

Result<PathSet> Project(const SolutionSpace& ss, const ProjectionSpec& spec) {
  for (const auto& field : {spec.partitions, spec.groups, spec.paths}) {
    if (field.has_value() && *field == 0) {
      return Status::InvalidArgument(
          "projection counts must be positive integers or *");
    }
  }

  // Algorithm 1. Sort(·) is a stable sort on Δ so that equal ranks keep
  // their first-occurrence order.
  auto take = [](const std::optional<size_t>& want, size_t have) {
    return (!want.has_value() || *want > have) ? have : *want;
  };

  std::vector<uint32_t> seq_p(ss.num_partitions());
  std::iota(seq_p.begin(), seq_p.end(), 0);
  std::stable_sort(seq_p.begin(), seq_p.end(),
                   [&](uint32_t a, uint32_t b) {
                     return ss.PartitionRank(a) < ss.PartitionRank(b);
                   });

  PathSet out;
  size_t max_p = take(spec.partitions, seq_p.size());
  for (size_t pi = 0; pi < max_p; ++pi) {
    std::vector<uint32_t> seq_g = ss.GroupsOfPartition(seq_p[pi]);
    std::stable_sort(seq_g.begin(), seq_g.end(),
                     [&](uint32_t a, uint32_t b) {
                       return ss.GroupRank(a) < ss.GroupRank(b);
                     });
    size_t max_g = take(spec.groups, seq_g.size());
    for (size_t gi = 0; gi < max_g; ++gi) {
      std::vector<uint32_t> seq_a = ss.PathsOfGroup(seq_g[gi]);
      // Path-level ties break by canonical path order (not insertion
      // order): the paper's ANY/ANY SHORTEST are non-deterministic; we
      // resolve them so the pick is independent of how the input set was
      // produced, which makes optimizer rewrites exactly result-preserving.
      std::stable_sort(seq_a.begin(), seq_a.end(),
                       [&](uint32_t a, uint32_t b) {
                         if (ss.PathRank(a) != ss.PathRank(b)) {
                           return ss.PathRank(a) < ss.PathRank(b);
                         }
                         return ss.path(a) < ss.path(b);
                       });
      size_t max_a = take(spec.paths, seq_a.size());
      for (size_t ai = 0; ai < max_a; ++ai) {
        out.Insert(ss.path(seq_a[ai]));
      }
    }
  }
  return out;
}

}  // namespace pathalg
