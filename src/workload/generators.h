#ifndef PATHALG_WORKLOAD_GENERATORS_H_
#define PATHALG_WORKLOAD_GENERATORS_H_

/// \file generators.h
/// Synthetic graph families used by tests (property/differential testing
/// over many seeds) and benches (scaling sweeps). All generators are
/// deterministic given their parameters and seed.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/property_graph.h"

namespace pathalg {

/// A directed cycle of `n` nodes whose edges all carry `label`. The
/// canonical adversarial input for ϕWalk (infinite answer set).
PropertyGraph MakeCycleGraph(size_t n, std::string_view label = "Knows");

/// A directed chain of `n` nodes (n-1 edges), all labelled `label`. The
/// canonical benign input (finite walks).
PropertyGraph MakeChainGraph(size_t n, std::string_view label = "Knows");

/// A "diamond chain": k diamonds in a row, where each diamond offers two
/// parallel 2-edge routes. Shortest-path count doubles per diamond —
/// exercises all-shortest enumeration blowup.
PropertyGraph MakeDiamondChainGraph(size_t k,
                                    std::string_view label = "Knows");

/// A w×h grid with East and South edges (labels "E"/"S" or `uniform_label`
/// for all edges if non-empty). Many shortest paths, no cycles.
PropertyGraph MakeGridGraph(size_t w, size_t h,
                            std::string_view uniform_label = "");

/// An Erdős–Rényi-style random multigraph: `n` nodes, `m` edges with
/// endpoints chosen uniformly, labels drawn uniformly from `labels`.
/// Each node gets label "Node" and property {"id": i}.
PropertyGraph MakeRandomGraph(size_t n, size_t m,
                              const std::vector<std::string>& labels,
                              uint64_t seed);

/// Parameters for MakeUniformMultigraph.
struct UniformMultigraphOptions {
  size_t num_nodes = 6;
  size_t num_edges = 10;
  std::vector<std::string> labels = {"a", "b", "c"};
  /// Per-edge chance (percent, 0-100) of carrying no label at all —
  /// exercises the λ-partial corner every adjacency layout must get right.
  uint32_t unlabeled_percent = 0;
  /// When true edges only run from lower to higher node id (a random DAG,
  /// so even WALK semantics terminates); when false self-loops and cycles
  /// are fair game.
  bool acyclic = false;
  uint64_t seed = 1;
};

/// The differential-fuzz workhorse: a uniform random directed multigraph
/// where parallel edges, self-loops (unless `acyclic`) and unlabelled
/// edges all occur naturally. Deterministic given the options.
PropertyGraph MakeUniformMultigraph(const UniformMultigraphOptions& options);

/// Parameters for the LDBC-SNB-like social graph (see MakeSocialGraph).
struct SocialGraphOptions {
  size_t num_persons = 100;
  size_t num_messages = 200;
  /// Each person Knows the next `ring_degree` persons on a ring (guarantees
  /// the inner Knows cycles of Figure 1 at scale) ...
  size_t ring_degree = 2;
  /// ... plus `random_knows` uniformly random Knows edges.
  size_t random_knows = 100;
  /// Each message has one Has_creator edge and `likes_per_message` incoming
  /// Likes edges, closing (Likes/Has_creator)+ cycles like Figure 1's outer
  /// cycle.
  size_t likes_per_message = 2;
  uint64_t seed = 42;
};

/// The paper substitutes for a real LDBC SNB dataset (Figure 1 is "drawn
/// from" it): persons with Knows ring+chords, messages with Likes and
/// Has_creator, names/contents as properties. Exercises exactly the label
/// structure of the paper's queries at any scale.
PropertyGraph MakeSocialGraph(const SocialGraphOptions& options);

/// Parameters for the skewed-degree social graph (see
/// MakeSkewedSocialGraph).
struct SkewedSocialGraphOptions {
  size_t num_persons = 200;
  /// Knows out-edges per person (preferential attachment).
  size_t knows_per_person = 4;
  /// Follows out-edges per person (preferential attachment, same degree
  /// pool — celebrities attract both).
  size_t follows_per_person = 2;
  uint64_t seed = 42;
};

/// A preferential-attachment (Barabási–Albert-style) social graph:
/// Person nodes, Knows and Follows edges whose targets are drawn with
/// probability proportional to current in-degree, yielding the heavy-tail
/// degree skew of real social networks — a few hub "celebrities" and many
/// low-degree members. Replay workloads over this topology stress the
/// engine the way uniform MakeRandomGraph cannot: recursive expansion
/// through hubs dominates cost. Deterministic given `seed`.
PropertyGraph MakeSkewedSocialGraph(const SkewedSocialGraphOptions& options);

}  // namespace pathalg

#endif  // PATHALG_WORKLOAD_GENERATORS_H_
