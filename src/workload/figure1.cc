#include "workload/figure1.h"

#include <cassert>

namespace pathalg {

PropertyGraph MakeFigure1Graph(Figure1Ids* ids) {
  GraphBuilder b;
  Figure1Ids out;
  out.n1 = b.AddNamedNode("n1", "Person", {{"name", Value("Moe")}});
  out.n2 = b.AddNamedNode("n2", "Person", {{"name", Value("Homer")}});
  out.n3 = b.AddNamedNode("n3", "Person", {{"name", Value("Lisa")}});
  out.n4 = b.AddNamedNode("n4", "Person", {{"name", Value("Apu")}});
  out.n5 = b.AddNamedNode(
      "n5", "Message", {{"content", Value("I am so smart, SMRT")}});
  out.n6 = b.AddNamedNode("n6", "Message",
                          {{"content", Value("Flaming Moe's tonight")}});
  out.n7 = b.AddNamedNode("n7", "Message",
                          {{"content", Value("Thank you, come again")}});

  auto edge = [&b](std::string name, NodeId s, NodeId t,
                   std::string_view label) {
    Result<EdgeId> e = b.AddNamedEdge(std::move(name), s, t, label);
    assert(e.ok());
    return e.value();
  };
  out.e1 = edge("e1", out.n1, out.n2, "Knows");
  out.e2 = edge("e2", out.n2, out.n3, "Knows");
  out.e3 = edge("e3", out.n3, out.n2, "Knows");
  out.e4 = edge("e4", out.n2, out.n4, "Knows");
  out.e5 = edge("e5", out.n2, out.n5, "Likes");
  out.e6 = edge("e6", out.n5, out.n1, "Has_creator");
  out.e7 = edge("e7", out.n3, out.n7, "Likes");
  out.e8 = edge("e8", out.n1, out.n6, "Likes");
  out.e9 = edge("e9", out.n4, out.n5, "Likes");
  out.e10 = edge("e10", out.n7, out.n4, "Has_creator");
  out.e11 = edge("e11", out.n6, out.n3, "Has_creator");

  if (ids != nullptr) *ids = out;
  return b.Build();
}

PropertyGraph MakeFigure1Graph() { return MakeFigure1Graph(nullptr); }

}  // namespace pathalg
