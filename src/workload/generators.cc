#include "workload/generators.h"

#include <algorithm>
#include <cassert>
#include <random>

namespace pathalg {

namespace {
EdgeId MustAddEdge(GraphBuilder& b, NodeId s, NodeId t,
                   std::string_view label) {
  Result<EdgeId> e = b.AddEdge(s, t, label);
  assert(e.ok());
  return e.value();
}
}  // namespace

PropertyGraph MakeCycleGraph(size_t n, std::string_view label) {
  GraphBuilder b;
  std::vector<NodeId> nodes;
  nodes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    nodes.push_back(b.AddNode("Node", {{"id", Value(int64_t(i))}}));
  }
  for (size_t i = 0; i < n; ++i) {
    MustAddEdge(b, nodes[i], nodes[(i + 1) % n], label);
  }
  return b.Build();
}

PropertyGraph MakeChainGraph(size_t n, std::string_view label) {
  GraphBuilder b;
  std::vector<NodeId> nodes;
  nodes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    nodes.push_back(b.AddNode("Node", {{"id", Value(int64_t(i))}}));
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    MustAddEdge(b, nodes[i], nodes[i + 1], label);
  }
  return b.Build();
}

PropertyGraph MakeDiamondChainGraph(size_t k, std::string_view label) {
  GraphBuilder b;
  NodeId prev = b.AddNode("Node", {{"id", Value(int64_t(0))}});
  for (size_t i = 0; i < k; ++i) {
    NodeId top = b.AddNode("Node");
    NodeId bottom = b.AddNode("Node");
    NodeId next = b.AddNode("Node", {{"id", Value(int64_t(i + 1))}});
    MustAddEdge(b, prev, top, label);
    MustAddEdge(b, prev, bottom, label);
    MustAddEdge(b, top, next, label);
    MustAddEdge(b, bottom, next, label);
    prev = next;
  }
  return b.Build();
}

PropertyGraph MakeGridGraph(size_t w, size_t h,
                            std::string_view uniform_label) {
  GraphBuilder b;
  std::vector<NodeId> nodes(w * h);
  for (size_t y = 0; y < h; ++y) {
    for (size_t x = 0; x < w; ++x) {
      nodes[y * w + x] =
          b.AddNode("Cell", {{"x", Value(int64_t(x))},
                             {"y", Value(int64_t(y))}});
    }
  }
  std::string_view east = uniform_label.empty() ? "E" : uniform_label;
  std::string_view south = uniform_label.empty() ? "S" : uniform_label;
  for (size_t y = 0; y < h; ++y) {
    for (size_t x = 0; x < w; ++x) {
      if (x + 1 < w) {
        MustAddEdge(b, nodes[y * w + x], nodes[y * w + x + 1], east);
      }
      if (y + 1 < h) {
        MustAddEdge(b, nodes[y * w + x], nodes[(y + 1) * w + x], south);
      }
    }
  }
  return b.Build();
}

PropertyGraph MakeRandomGraph(size_t n, size_t m,
                              const std::vector<std::string>& labels,
                              uint64_t seed) {
  assert(n > 0 && !labels.empty());
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<size_t> node_dist(0, n - 1);
  std::uniform_int_distribution<size_t> label_dist(0, labels.size() - 1);
  GraphBuilder b;
  std::vector<NodeId> nodes;
  nodes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    nodes.push_back(b.AddNode("Node", {{"id", Value(int64_t(i))}}));
  }
  for (size_t i = 0; i < m; ++i) {
    MustAddEdge(b, nodes[node_dist(rng)], nodes[node_dist(rng)],
                labels[label_dist(rng)]);
  }
  return b.Build();
}

PropertyGraph MakeUniformMultigraph(const UniformMultigraphOptions& options) {
  assert(options.num_nodes > 0);
  assert(!options.acyclic || options.num_nodes > 1);
  std::mt19937_64 rng(options.seed);
  std::uniform_int_distribution<size_t> node_dist(0, options.num_nodes - 1);
  std::uniform_int_distribution<uint32_t> percent_dist(0, 99);
  GraphBuilder b;
  std::vector<NodeId> nodes;
  nodes.reserve(options.num_nodes);
  for (size_t i = 0; i < options.num_nodes; ++i) {
    nodes.push_back(b.AddNode("Node", {{"id", Value(int64_t(i))}}));
  }
  for (size_t i = 0; i < options.num_edges; ++i) {
    size_t s = node_dist(rng);
    size_t t = node_dist(rng);
    if (options.acyclic) {
      // Lower→higher id only: redraw equal endpoints, then orient.
      while (s == t) t = node_dist(rng);
      if (s > t) std::swap(s, t);
    }
    const bool unlabeled = !options.labels.empty()
                               ? percent_dist(rng) < options.unlabeled_percent
                               : true;
    std::string_view label;
    if (!unlabeled) {
      std::uniform_int_distribution<size_t> label_dist(
          0, options.labels.size() - 1);
      label = options.labels[label_dist(rng)];
    }
    MustAddEdge(b, nodes[s], nodes[t], label);
  }
  return b.Build();
}

PropertyGraph MakeSocialGraph(const SocialGraphOptions& options) {
  assert(options.num_persons >= 2);
  std::mt19937_64 rng(options.seed);
  std::uniform_int_distribution<size_t> person_dist(
      0, options.num_persons - 1);
  GraphBuilder b;
  std::vector<NodeId> persons;
  persons.reserve(options.num_persons);
  for (size_t i = 0; i < options.num_persons; ++i) {
    persons.push_back(
        b.AddNode("Person", {{"name", Value("person" + std::to_string(i))},
                             {"id", Value(int64_t(i))}}));
  }
  // Knows ring: person i knows persons i+1..i+ring_degree (mod n). The ring
  // guarantees Knows cycles — the paper's inner-cycle structure — at scale.
  for (size_t i = 0; i < options.num_persons; ++i) {
    for (size_t d = 1; d <= options.ring_degree; ++d) {
      MustAddEdge(b, persons[i],
                  persons[(i + d) % options.num_persons], "Knows");
    }
  }
  for (size_t i = 0; i < options.random_knows; ++i) {
    size_t s = person_dist(rng), t = person_dist(rng);
    if (s == t) t = (t + 1) % options.num_persons;
    MustAddEdge(b, persons[s], persons[t], "Knows");
  }
  // Messages: each has one creator (Has_creator) and some likers (Likes).
  // A person liking a message created by another person yields the
  // Likes/Has_creator 2-step composition of the paper's outer cycle.
  for (size_t i = 0; i < options.num_messages; ++i) {
    NodeId msg = b.AddNode(
        "Message", {{"content", Value("message" + std::to_string(i))},
                    {"id", Value(int64_t(i))}});
    MustAddEdge(b, msg, persons[person_dist(rng)], "Has_creator");
    for (size_t l = 0; l < options.likes_per_message; ++l) {
      MustAddEdge(b, persons[person_dist(rng)], msg, "Likes");
    }
  }
  return b.Build();
}

PropertyGraph MakeSkewedSocialGraph(const SkewedSocialGraphOptions& options) {
  assert(options.num_persons >= 2);
  std::mt19937_64 rng(options.seed);
  GraphBuilder b;
  std::vector<NodeId> persons;
  persons.reserve(options.num_persons);
  for (size_t i = 0; i < options.num_persons; ++i) {
    persons.push_back(
        b.AddNode("Person", {{"name", Value("person" + std::to_string(i))},
                             {"id", Value(int64_t(i))}}));
  }
  // Preferential attachment over one shared endpoint pool: every time a
  // node is the target of an edge its index is appended, so drawing
  // uniformly from the pool picks targets with probability proportional to
  // in-degree + 1 (the +1 from seeding the pool with every person once,
  // which also keeps isolated nodes reachable as targets).
  std::vector<size_t> pool;
  pool.reserve(options.num_persons * (1 + options.knows_per_person +
                                      options.follows_per_person));
  for (size_t i = 0; i < options.num_persons; ++i) pool.push_back(i);
  auto attach = [&](size_t src, std::string_view label) {
    std::uniform_int_distribution<size_t> dist(0, pool.size() - 1);
    size_t dst = pool[dist(rng)];
    if (dst == src) dst = (dst + 1) % options.num_persons;  // no self-loops
    MustAddEdge(b, persons[src], persons[dst], label);
    pool.push_back(dst);
  };
  // Interleave persons' edges (rather than all of person 0's first) so
  // early edges do not anchor the skew on the lowest ids alone.
  const size_t rounds =
      std::max(options.knows_per_person, options.follows_per_person);
  for (size_t round = 0; round < rounds; ++round) {
    for (size_t i = 0; i < options.num_persons; ++i) {
      if (round < options.knows_per_person) attach(i, "Knows");
      if (round < options.follows_per_person) attach(i, "Follows");
    }
  }
  return b.Build();
}

}  // namespace pathalg
