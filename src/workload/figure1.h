#ifndef PATHALG_WORKLOAD_FIGURE1_H_
#define PATHALG_WORKLOAD_FIGURE1_H_

/// \file figure1.h
/// The paper's running example (Figure 1): a snippet of the LDBC Social
/// Network Benchmark graph with Persons and Messages connected by Knows,
/// Likes and Has_creator edges. Reconstructed from every textual constraint
/// in the paper (see DESIGN.md "Figure 1 reconstruction"):
///
///   Persons:  n1 "Moe", n2 "Homer", n3 "Lisa", n4 "Apu"
///   Messages: n5, n6, n7
///   Knows:        e1:(n1→n2)  e2:(n2→n3)  e3:(n3→n2)  e4:(n2→n4)
///   Likes:        e5:(n2→n5)  e7:(n3→n7)  e8:(n1→n6)  e9:(n4→n5)
///   Has_creator:  e6:(n5→n1)  e10:(n7→n4) e11:(n6→n3)
///
/// The inner cycle is n2→n3→n2 (Knows); the outer (Likes/Has_creator)+
/// cycle is n1→n6→n3→n7→n4→n5→n1.

#include "graph/property_graph.h"

namespace pathalg {

/// Node/edge indexes of the Figure 1 graph, for readable tests. The value
/// of `kN1` is the NodeId of node "n1", etc. (ids are zero-based; names are
/// one-based like the paper's).
struct Figure1Ids {
  NodeId n1, n2, n3, n4, n5, n6, n7;
  EdgeId e1, e2, e3, e4, e5, e6, e7, e8, e9, e10, e11;
};

/// Builds the Figure 1 graph.
PropertyGraph MakeFigure1Graph();

/// Builds the graph and returns the id map alongside.
PropertyGraph MakeFigure1Graph(Figure1Ids* ids);

}  // namespace pathalg

#endif  // PATHALG_WORKLOAD_FIGURE1_H_
