#ifndef PATHALG_REGEX_COMPILE_H_
#define PATHALG_REGEX_COMPILE_H_

/// \file compile.h
/// Compiles a regular path expression into a path-algebra logical plan,
/// exactly the way the paper's evaluation trees do it (Figures 2–4):
///
///   :L      →  σ[label(edge(1)) = "L"](Edges(G))
///   r1/r2   →  Compile(r1) ⋈ Compile(r2)
///   r1|r2   →  Compile(r1) ∪ Compile(r2)
///   r+      →  ϕ_sem(Compile(r))
///   r*      →  ϕ_sem(Compile(r)) ∪ Nodes(G)        (Figure 4)
///   r?      →  Compile(r) ∪ Nodes(G)
///
/// The restrictor semantics parameterizes every ϕ node, mirroring §4's
/// "change the recursive operators in our example query tree with ϕSimple".
/// Note (documented in DESIGN.md): the paper applies the restrictor to each
/// ϕ operator; GQL applies it to the whole path. The two coincide for the
/// paper's query shapes (a closure at the top of each union branch); for
/// nested closures under concatenation they may differ, and gql::Query
/// offers a whole-path post-filter for strict GQL conformance.

#include "plan/plan.h"
#include "regex/ast.h"

namespace pathalg {

struct CompileOptions {
  /// The restrictor applied to every ϕ node.
  PathSemantics semantics = PathSemantics::kWalk;
};

/// Compiles `regex` into a path-typed logical plan.
PlanPtr CompileRegex(const RegexPtr& regex, const CompileOptions& options = {});

/// Convenience: the endpoint-filtered RPQ plan for the paper's pattern
/// `(x {prop_key: source_value})-[regex]->(y {prop_key: target_value})`:
/// wraps CompileRegex in σ[first.key = v AND last.key = w]. Either endpoint
/// filter may be disabled by passing nullptr.
PlanPtr CompileRpq(const RegexPtr& regex, const CompileOptions& options,
                   const ConditionPtr& endpoint_filter);

}  // namespace pathalg

#endif  // PATHALG_REGEX_COMPILE_H_
