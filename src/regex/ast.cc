#include "regex/ast.h"

namespace pathalg {

// Factory plumbing mirroring PlanNode's: a single place may write fields.
struct RegexBuilderAccess {
  static std::shared_ptr<RegexNode> Make(RegexKind kind) {
    auto n = std::shared_ptr<RegexNode>(new RegexNode());
    n->kind_ = kind;
    return n;
  }
  static void SetLabel(RegexNode& n, std::string l) {
    n.label_ = std::move(l);
  }
  static void SetChildren(RegexNode& n, RegexPtr l, RegexPtr r) {
    n.left_ = std::move(l);
    n.right_ = std::move(r);
  }
};

RegexPtr RegexNode::Label(std::string label) {
  auto n = RegexBuilderAccess::Make(RegexKind::kLabel);
  RegexBuilderAccess::SetLabel(*n, std::move(label));
  return n;
}

RegexPtr RegexNode::Concat(RegexPtr l, RegexPtr r) {
  auto n = RegexBuilderAccess::Make(RegexKind::kConcat);
  RegexBuilderAccess::SetChildren(*n, std::move(l), std::move(r));
  return n;
}

RegexPtr RegexNode::Union(RegexPtr l, RegexPtr r) {
  auto n = RegexBuilderAccess::Make(RegexKind::kUnion);
  RegexBuilderAccess::SetChildren(*n, std::move(l), std::move(r));
  return n;
}

RegexPtr RegexNode::Plus(RegexPtr inner) {
  auto n = RegexBuilderAccess::Make(RegexKind::kPlus);
  RegexBuilderAccess::SetChildren(*n, std::move(inner), nullptr);
  return n;
}

RegexPtr RegexNode::Star(RegexPtr inner) {
  auto n = RegexBuilderAccess::Make(RegexKind::kStar);
  RegexBuilderAccess::SetChildren(*n, std::move(inner), nullptr);
  return n;
}

RegexPtr RegexNode::Optional(RegexPtr inner) {
  auto n = RegexBuilderAccess::Make(RegexKind::kOptional);
  RegexBuilderAccess::SetChildren(*n, std::move(inner), nullptr);
  return n;
}

bool RegexNode::MatchesEmpty() const {
  switch (kind_) {
    case RegexKind::kLabel:
      return false;
    case RegexKind::kConcat:
      return left_->MatchesEmpty() && right_->MatchesEmpty();
    case RegexKind::kUnion:
      return left_->MatchesEmpty() || right_->MatchesEmpty();
    case RegexKind::kPlus:
      return left_->MatchesEmpty();
    case RegexKind::kStar:
    case RegexKind::kOptional:
      return true;
  }
  return false;
}

namespace {
// Precedence: union(1) < concat(2) < postfix(3).
int Precedence(RegexKind k) {
  switch (k) {
    case RegexKind::kUnion:
      return 1;
    case RegexKind::kConcat:
      return 2;
    default:
      return 3;
  }
}

std::string Render(const RegexNode& n, int parent_prec) {
  int prec = Precedence(n.kind());
  std::string out;
  switch (n.kind()) {
    case RegexKind::kLabel:
      out = ":" + n.label();
      break;
    case RegexKind::kConcat:
      out = Render(*n.left(), prec) + "/" + Render(*n.right(), prec);
      break;
    case RegexKind::kUnion:
      out = Render(*n.left(), prec) + "|" + Render(*n.right(), prec);
      break;
    case RegexKind::kPlus:
      out = Render(*n.left(), prec + 1) + "+";
      break;
    case RegexKind::kStar:
      out = Render(*n.left(), prec + 1) + "*";
      break;
    case RegexKind::kOptional:
      out = Render(*n.left(), prec + 1) + "?";
      break;
  }
  if (prec < parent_prec) return "(" + out + ")";
  return out;
}
}  // namespace

std::string RegexNode::ToString() const { return Render(*this, 0); }

bool RegexNode::Equals(const RegexNode& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case RegexKind::kLabel:
      return label_ == other.label_;
    case RegexKind::kConcat:
    case RegexKind::kUnion:
      return left_->Equals(*other.left_) && right_->Equals(*other.right_);
    case RegexKind::kPlus:
    case RegexKind::kStar:
    case RegexKind::kOptional:
      return left_->Equals(*other.left_);
  }
  return false;
}

}  // namespace pathalg
