#ifndef PATHALG_REGEX_AST_H_
#define PATHALG_REGEX_AST_H_

/// \file ast.h
/// Regular path expressions (§2.3): the regex part of an RPQ
/// (x, regex, y). Atoms are edge labels; combinators are concatenation `/`,
/// alternation `|`, and the postfix closures `+`, `*`, `?` — exactly the
/// operators used by the paper's examples, e.g.
/// `(:Knows+)|(:Likes/:Has_creator)*`.

#include <memory>
#include <string>
#include <vector>

namespace pathalg {

enum class RegexKind { kLabel, kConcat, kUnion, kPlus, kStar, kOptional };

class RegexNode;
using RegexPtr = std::shared_ptr<const RegexNode>;

class RegexNode {
 public:
  RegexKind kind() const { return kind_; }

  /// kLabel only: the edge label to match.
  const std::string& label() const { return label_; }

  /// kConcat/kUnion: both children; kPlus/kStar/kOptional: left only.
  const RegexPtr& left() const { return left_; }
  const RegexPtr& right() const { return right_; }

  /// True if the regex matches the empty word (ε) — such expressions admit
  /// zero-length paths (single nodes).
  bool MatchesEmpty() const;

  /// Renders in the paper's syntax with minimal parentheses, e.g.
  /// `(:Knows+)|(:Likes/:Has_creator)*` prints as
  /// `:Knows+|(:Likes/:Has_creator)*`.
  std::string ToString() const;

  bool Equals(const RegexNode& other) const;

  // Factories ---------------------------------------------------------------
  static RegexPtr Label(std::string label);
  static RegexPtr Concat(RegexPtr l, RegexPtr r);
  static RegexPtr Union(RegexPtr l, RegexPtr r);
  static RegexPtr Plus(RegexPtr inner);
  static RegexPtr Star(RegexPtr inner);
  static RegexPtr Optional(RegexPtr inner);

 private:
  friend struct RegexBuilderAccess;
  RegexNode() = default;

  RegexKind kind_ = RegexKind::kLabel;
  std::string label_;
  RegexPtr left_;
  RegexPtr right_;
};

}  // namespace pathalg

#endif  // PATHALG_REGEX_AST_H_
