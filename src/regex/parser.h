#ifndef PATHALG_REGEX_PARSER_H_
#define PATHALG_REGEX_PARSER_H_

/// \file parser.h
/// Parser for the paper's regex syntax:
///
///   alt     := concat ('|' concat)*
///   concat  := postfix ('/' postfix)*
///   postfix := primary ('+' | '*' | '?')*
///   primary := ':'? IDENT | '(' alt ')'
///
/// Identifiers are [A-Za-z_][A-Za-z0-9_]*; the leading ':' (GQL label
/// syntax) is optional; whitespace is insignificant.

#include <string_view>

#include "common/result.h"
#include "regex/ast.h"

namespace pathalg {

/// Parses `text` into a regex AST; ParseError (with position) on failure.
Result<RegexPtr> ParseRegex(std::string_view text);

}  // namespace pathalg

#endif  // PATHALG_REGEX_PARSER_H_
