#include "regex/parser.h"

#include <cctype>

namespace pathalg {

namespace {

class RegexParser {
 public:
  explicit RegexParser(std::string_view text) : text_(text) {}

  Result<RegexPtr> Parse() {
    PATHALG_ASSIGN_OR_RETURN(RegexPtr r, ParseAlt());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("unexpected character '" + std::string(1, text_[pos_]) +
                   "'");
    }
    return r;
  }

 private:
  Status Error(const std::string& msg) {
    return Status::ParseError("regex: " + msg + " at position " +
                              std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Eat(char c) {
    if (!Peek(c)) return false;
    ++pos_;
    return true;
  }

  Result<RegexPtr> ParseAlt() {
    PATHALG_ASSIGN_OR_RETURN(RegexPtr left, ParseConcat());
    while (Eat('|')) {
      PATHALG_ASSIGN_OR_RETURN(RegexPtr right, ParseConcat());
      left = RegexNode::Union(std::move(left), std::move(right));
    }
    return left;
  }

  Result<RegexPtr> ParseConcat() {
    PATHALG_ASSIGN_OR_RETURN(RegexPtr left, ParsePostfix());
    while (Eat('/')) {
      PATHALG_ASSIGN_OR_RETURN(RegexPtr right, ParsePostfix());
      left = RegexNode::Concat(std::move(left), std::move(right));
    }
    return left;
  }

  Result<RegexPtr> ParsePostfix() {
    PATHALG_ASSIGN_OR_RETURN(RegexPtr inner, ParsePrimary());
    while (true) {
      if (Eat('+')) {
        inner = RegexNode::Plus(std::move(inner));
      } else if (Eat('*')) {
        inner = RegexNode::Star(std::move(inner));
      } else if (Eat('?')) {
        inner = RegexNode::Optional(std::move(inner));
      } else {
        break;
      }
    }
    return inner;
  }

  Result<RegexPtr> ParsePrimary() {
    SkipSpace();
    if (Eat('(')) {
      PATHALG_ASSIGN_OR_RETURN(RegexPtr inner, ParseAlt());
      if (!Eat(')')) return Error("expected ')'");
      return inner;
    }
    Eat(':');  // optional GQL label marker
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() &&
        (std::isalpha(static_cast<unsigned char>(text_[pos_])) ||
         text_[pos_] == '_')) {
      ++pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      return RegexNode::Label(std::string(text_.substr(start, pos_ - start)));
    }
    return Error("expected a label or '('");
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<RegexPtr> ParseRegex(std::string_view text) {
  return RegexParser(text).Parse();
}

}  // namespace pathalg
