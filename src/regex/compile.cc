#include "regex/compile.h"

namespace pathalg {

PlanPtr CompileRegex(const RegexPtr& regex, const CompileOptions& options) {
  if (regex == nullptr) return nullptr;
  switch (regex->kind()) {
    case RegexKind::kLabel:
      return PlanNode::Select(EdgeLabelEq(1, regex->label()),
                              PlanNode::EdgesScan());
    case RegexKind::kConcat:
      return PlanNode::Join(CompileRegex(regex->left(), options),
                            CompileRegex(regex->right(), options));
    case RegexKind::kUnion:
      return PlanNode::Union(CompileRegex(regex->left(), options),
                             CompileRegex(regex->right(), options));
    case RegexKind::kPlus:
      return PlanNode::Recursive(options.semantics,
                                 CompileRegex(regex->left(), options));
    case RegexKind::kStar:
      return PlanNode::Union(
          PlanNode::Recursive(options.semantics,
                              CompileRegex(regex->left(), options)),
          PlanNode::NodesScan());
    case RegexKind::kOptional:
      return PlanNode::Union(CompileRegex(regex->left(), options),
                             PlanNode::NodesScan());
  }
  return nullptr;
}

PlanPtr CompileRpq(const RegexPtr& regex, const CompileOptions& options,
                   const ConditionPtr& endpoint_filter) {
  PlanPtr plan = CompileRegex(regex, options);
  if (plan == nullptr) return nullptr;
  if (endpoint_filter != nullptr) {
    plan = PlanNode::Select(endpoint_filter, std::move(plan));
  }
  return plan;
}

}  // namespace pathalg
