#include "engine/workload_file.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/str_util.h"
#include "graph/csv.h"
#include "mutation/delta_log.h"
#include "storage/snapshot_reader.h"
#include "workload/figure1.h"
#include "workload/generators.h"

namespace pathalg {
namespace engine {

namespace {

Status DirectiveError(size_t line, const std::string& msg) {
  return Status::ParseError("workload line " + std::to_string(line) + ": " +
                            msg);
}

Result<size_t> ParseSize(std::string_view s) {
  size_t value = 0;
  if (!ParseSizeT(s, &value)) {
    return Status::ParseError("expected a non-negative integer, got '" +
                              std::string(s) + "'");
  }
  return value;
}

/// A parsed `# graph` spec: generator kind plus key=value parameters.
struct GraphSpec {
  std::string kind;
  std::vector<std::pair<std::string, std::string>> kv;

  /// The value of `key` as an integer, or `fallback` when absent.
  Result<size_t> Int(std::string_view key, size_t fallback) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return ParseSize(v);
    }
    return fallback;
  }
  std::string Str(std::string_view key, std::string fallback) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return v;
    }
    return fallback;
  }
};

/// Per-kind allowed parameter keys; shared by validation and building so
/// the two can never drift apart.
const std::vector<std::string>* AllowedKeys(std::string_view kind) {
  static const std::vector<std::string> kNone = {};
  static const std::vector<std::string> kSocial = {
      "persons", "messages", "ring", "chords", "likes", "seed"};
  static const std::vector<std::string> kSkewed = {"persons", "knows",
                                                   "follows", "seed"};
  static const std::vector<std::string> kCycleChain = {"n", "label"};
  static const std::vector<std::string> kDiamond = {"k"};
  static const std::vector<std::string> kGrid = {"w", "h"};
  static const std::vector<std::string> kRandom = {"n", "m", "seed",
                                                   "labels"};
  if (kind == "figure1") return &kNone;
  if (kind == "social") return &kSocial;
  if (kind == "skewed") return &kSkewed;
  if (kind == "cycle" || kind == "chain") return &kCycleChain;
  if (kind == "diamond") return &kDiamond;
  if (kind == "grid") return &kGrid;
  if (kind == "random") return &kRandom;
  return nullptr;
}

/// Parses and fully validates a graph spec (known kind, known keys,
/// integer values where required) without building the graph, so workload
/// loading can reject a bad spec up front. `csv <path>` validates only
/// the shape (a non-empty path) — the file itself is read at build time,
/// because a recorded workload may be loaded on a machine the CSV hasn't
/// reached yet.
Result<GraphSpec> ParseGraphSpec(std::string_view spec) {
  std::vector<std::string_view> words = SplitWhitespace(spec);
  if (words.empty()) {
    return Status::ParseError("empty graph spec");
  }
  GraphSpec parsed;
  parsed.kind = std::string(words[0]);
  if (parsed.kind == "csv" || parsed.kind == "snapshot") {
    std::string path(StripWhitespace(
        spec.substr(spec.find(parsed.kind) + parsed.kind.size())));
    if (path.empty()) {
      return Status::ParseError("'" + parsed.kind +
                                "' graph spec needs a file path");
    }
    parsed.kv.emplace_back("path", std::move(path));
    return parsed;
  }
  const std::vector<std::string>* allowed = AllowedKeys(parsed.kind);
  if (allowed == nullptr) {
    return Status::ParseError(
        "unknown graph kind '" + parsed.kind +
        "' (expected figure1, social, skewed, cycle, chain, diamond, grid, "
        "random, csv <path> or snapshot <path>)");
  }
  for (size_t i = 1; i < words.size(); ++i) {
    size_t eq = words[i].find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::ParseError("expected key=value, got '" +
                                std::string(words[i]) + "'");
    }
    std::string key(words[i].substr(0, eq));
    std::string value(words[i].substr(eq + 1));
    if (std::find(allowed->begin(), allowed->end(), key) == allowed->end()) {
      return Status::ParseError("unknown parameter '" + key + "' for graph '" +
                                parsed.kind + "'");
    }
    if (key != "label" && key != "labels") {
      PATHALG_ASSIGN_OR_RETURN(size_t unused, ParseSize(value));
      (void)unused;
    }
    parsed.kv.emplace_back(std::move(key), std::move(value));
  }
  return parsed;
}

}  // namespace

Result<Workload> ParseWorkload(std::string_view text) {
  Workload w;
  size_t sticky_repeat = 1;
  std::optional<size_t> pending_expect;
  std::string pending_name;
  size_t pending_meta_line = 0;  // line of the oldest unconsumed expect/name

  size_t line_no = 0;
  for (std::string_view raw : Split(text, '\n')) {
    ++line_no;
    std::string_view line = StripWhitespace(raw);
    if (line.empty()) continue;
    if (StartsWith(line, "##")) continue;  // free-text comment
    if (line[0] == '#') {
      std::vector<std::string_view> words = SplitWhitespace(line.substr(1));
      if (words.empty()) continue;  // a bare '#' reads as an empty comment
      std::string_view directive = words[0];
      if (directive == "graph") {
        if (!w.graph_spec.empty()) {
          return DirectiveError(line_no, "duplicate '# graph' directive");
        }
        if (!w.entries.empty()) {
          return DirectiveError(line_no,
                                "'# graph' must precede the first query");
        }
        // The spec is everything after the (first) word "graph".
        std::string_view spec =
            StripWhitespace(line.substr(line.find("graph") + 5));
        if (spec.empty()) {
          return DirectiveError(line_no, "'# graph' needs a spec");
        }
        Result<GraphSpec> parsed = ParseGraphSpec(spec);
        if (!parsed.ok()) {
          return DirectiveError(line_no, parsed.status().message());
        }
        w.graph_spec = std::string(spec);
      } else if (directive == "threads") {
        if (words.size() != 2) {
          return DirectiveError(line_no, "'# threads' takes one integer");
        }
        if (w.threads.has_value()) {
          return DirectiveError(line_no, "duplicate '# threads' directive");
        }
        if (!w.entries.empty()) {
          return DirectiveError(line_no,
                                "'# threads' must precede the first query");
        }
        Result<size_t> n = ParseSize(words[1]);
        if (!n.ok()) return DirectiveError(line_no, n.status().message());
        w.threads = *n;
      } else if (directive == "repeat") {
        if (words.size() != 2) {
          return DirectiveError(line_no, "'# repeat' takes one integer");
        }
        Result<size_t> n = ParseSize(words[1]);
        if (!n.ok()) return DirectiveError(line_no, n.status().message());
        if (*n == 0) {
          return DirectiveError(line_no, "'# repeat' must be >= 1");
        }
        sticky_repeat = *n;
      } else if (directive == "expect") {
        if (words.size() != 2) {
          return DirectiveError(line_no, "'# expect' takes one integer");
        }
        if (pending_expect.has_value()) {
          return DirectiveError(line_no,
                                "duplicate '# expect' before a query");
        }
        Result<size_t> n = ParseSize(words[1]);
        if (!n.ok()) return DirectiveError(line_no, n.status().message());
        if (pending_name.empty()) pending_meta_line = line_no;
        pending_expect = *n;
      } else if (directive == "mutate") {
        // A mutation step is an entry of its own: it changes the graph
        // every later query sees, so its position in the list matters.
        std::string_view cmd =
            StripWhitespace(line.substr(line.find("mutate") + 6));
        if (cmd.empty()) {
          return DirectiveError(line_no,
                                "'# mutate' needs a mutation command "
                                "(add-node/add-edge/rm-node/rm-edge ...)");
        }
        Result<mutation::DeltaRecord> rec =
            mutation::ParseMutationCommand(cmd);
        if (!rec.ok()) {
          return DirectiveError(line_no, rec.status().message());
        }
        if (pending_expect.has_value() || !pending_name.empty()) {
          return DirectiveError(line_no,
                                "'# expect'/'# name' must precede a query, "
                                "not a '# mutate'");
        }
        WorkloadEntry entry;
        entry.name = "q" + std::to_string(w.entries.size() + 1);
        entry.mutation = std::string(cmd);
        entry.line = line_no;
        w.entries.push_back(std::move(entry));
      } else if (directive == "name") {
        if (words.size() != 2) {
          return DirectiveError(line_no, "'# name' takes one word");
        }
        if (!pending_name.empty()) {
          return DirectiveError(line_no, "duplicate '# name' before a query");
        }
        if (!pending_expect.has_value()) pending_meta_line = line_no;
        pending_name = std::string(words[1]);
      } else {
        return DirectiveError(
            line_no, "unknown directive '# " + std::string(directive) +
                         "' (known: graph, threads, repeat, expect, name, "
                         "mutate; use '##' for comments)");
      }
      continue;
    }
    WorkloadEntry entry;
    entry.name = pending_name.empty()
                     ? "q" + std::to_string(w.entries.size() + 1)
                     : pending_name;
    // Names key the replay JSON rollups; a duplicate would silently
    // shadow the earlier query's numbers in every downstream diff.
    for (const WorkloadEntry& prev : w.entries) {
      if (prev.name == entry.name) {
        return DirectiveError(line_no, "duplicate query name '" +
                                           entry.name + "' (first used on "
                                           "line " +
                                           std::to_string(prev.line) + ")");
      }
    }
    entry.query = std::string(line);
    entry.repeat = sticky_repeat;
    entry.expect = pending_expect;
    entry.line = line_no;
    w.entries.push_back(std::move(entry));
    pending_expect.reset();
    pending_name.clear();
  }
  if (pending_expect.has_value() || !pending_name.empty()) {
    return DirectiveError(pending_meta_line,
                          "'# expect'/'# name' with no following query");
  }
  return w;
}

Result<Workload> LoadWorkloadFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open workload file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  Result<Workload> w = ParseWorkload(buffer.str());
  if (!w.ok()) {
    return Status(w.status().code(), path + ": " + w.status().message());
  }
  return w;
}

std::string FormatWorkload(const Workload& workload) {
  std::string out;
  if (!workload.graph_spec.empty()) {
    out += "# graph " + workload.graph_spec + "\n";
  }
  if (workload.threads.has_value()) {
    out += "# threads " + std::to_string(*workload.threads) + "\n";
  }
  size_t sticky_repeat = 1;
  for (size_t i = 0; i < workload.entries.size(); ++i) {
    const WorkloadEntry& e = workload.entries[i];
    if (!e.mutation.empty()) {
      out += "# mutate " + e.mutation + "\n";
      continue;
    }
    if (e.repeat != sticky_repeat) {
      out += "# repeat " + std::to_string(e.repeat) + "\n";
      sticky_repeat = e.repeat;
    }
    if (e.name != "q" + std::to_string(i + 1)) {
      out += "# name " + e.name + "\n";
    }
    if (e.expect.has_value()) {
      out += "# expect " + std::to_string(*e.expect) + "\n";
    }
    out += e.query + "\n";
  }
  return out;
}

Result<PropertyGraph> BuildWorkloadGraph(std::string_view spec) {
  if (StripWhitespace(spec).empty()) return MakeFigure1Graph();
  PATHALG_ASSIGN_OR_RETURN(GraphSpec parsed, ParseGraphSpec(spec));

  if (parsed.kind == "figure1") {
    return MakeFigure1Graph();
  }
  if (parsed.kind == "csv") {
    const std::string path = parsed.Str("path", "");
    std::ifstream file(path);
    if (!file) {
      return Status::NotFound("cannot open CSV graph file '" + path + "'");
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return LoadGraphFromCsv(buffer.str());
  }
  if (parsed.kind == "snapshot") {
    // mmap mode: topology is served zero-copy from the file; property
    // columns decode on first access (storage/snapshot_reader.h).
    return storage::SnapshotReader::Open(parsed.Str("path", ""));
  }
  if (parsed.kind == "social") {
    SocialGraphOptions o;
    PATHALG_ASSIGN_OR_RETURN(o.num_persons, parsed.Int("persons", 100));
    PATHALG_ASSIGN_OR_RETURN(o.num_messages, parsed.Int("messages", 200));
    PATHALG_ASSIGN_OR_RETURN(o.ring_degree, parsed.Int("ring", 2));
    PATHALG_ASSIGN_OR_RETURN(o.random_knows, parsed.Int("chords", 100));
    PATHALG_ASSIGN_OR_RETURN(o.likes_per_message, parsed.Int("likes", 2));
    PATHALG_ASSIGN_OR_RETURN(o.seed, parsed.Int("seed", 42));
    if (o.num_persons < 2) {
      return Status::InvalidArgument("social graph needs persons >= 2");
    }
    return MakeSocialGraph(o);
  }
  if (parsed.kind == "skewed") {
    SkewedSocialGraphOptions o;
    PATHALG_ASSIGN_OR_RETURN(o.num_persons, parsed.Int("persons", 200));
    PATHALG_ASSIGN_OR_RETURN(o.knows_per_person, parsed.Int("knows", 4));
    PATHALG_ASSIGN_OR_RETURN(o.follows_per_person, parsed.Int("follows", 2));
    PATHALG_ASSIGN_OR_RETURN(o.seed, parsed.Int("seed", 42));
    if (o.num_persons < 2) {
      return Status::InvalidArgument("skewed graph needs persons >= 2");
    }
    return MakeSkewedSocialGraph(o);
  }
  if (parsed.kind == "cycle" || parsed.kind == "chain") {
    PATHALG_ASSIGN_OR_RETURN(size_t n, parsed.Int("n", 16));
    std::string label = parsed.Str("label", "Knows");
    return parsed.kind == "cycle" ? MakeCycleGraph(n, label)
                                  : MakeChainGraph(n, label);
  }
  if (parsed.kind == "diamond") {
    PATHALG_ASSIGN_OR_RETURN(size_t k, parsed.Int("k", 8));
    return MakeDiamondChainGraph(k);
  }
  if (parsed.kind == "grid") {
    PATHALG_ASSIGN_OR_RETURN(size_t width, parsed.Int("w", 8));
    PATHALG_ASSIGN_OR_RETURN(size_t height, parsed.Int("h", 8));
    return MakeGridGraph(width, height);
  }
  if (parsed.kind == "random") {
    PATHALG_ASSIGN_OR_RETURN(size_t n, parsed.Int("n", 64));
    PATHALG_ASSIGN_OR_RETURN(size_t m, parsed.Int("m", 256));
    PATHALG_ASSIGN_OR_RETURN(size_t seed, parsed.Int("seed", 42));
    std::vector<std::string> labels;
    for (const std::string& l : Split(parsed.Str("labels", "Knows"), ',')) {
      if (!l.empty()) labels.push_back(l);
    }
    if (n == 0 || labels.empty()) {
      return Status::InvalidArgument("random graph needs n >= 1 and labels");
    }
    return MakeRandomGraph(n, m, labels, seed);
  }
  return Status::Internal("unhandled graph kind '" + parsed.kind + "'");
}

}  // namespace engine
}  // namespace pathalg
