#ifndef PATHALG_ENGINE_REPLAY_H_
#define PATHALG_ENGINE_REPLAY_H_

/// \file replay.h
/// The end-to-end workload replay driver: run every query of a `.gqlw`
/// workload through a QueryEngine session — normalize → plan-cache →
/// parse → optimize → evaluate — and report per-query and aggregate
/// stats. This is the measurement surface the ROADMAP's scaling work
/// (CSR adjacency, parallel operators, sharding) is judged through:
/// ReplayReportToJson emits `wall_time_ms` / `sum_iteration_time_ms`
/// maps in the same shape as the `BENCH_*.json` aggregates, so
/// bench/compare.py diffs replay reports and bench runs alike.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/query_engine.h"
#include "engine/workload_file.h"

namespace pathalg {
namespace engine {

struct ReplayOptions {
  /// Full passes over the workload. Pass 2+ of an unchanged workload
  /// should be all plan-cache hits; replaying with passes >= 2 is the
  /// standard way to measure the cache's effect.
  size_t passes = 1;
  /// Stop at the first query error instead of recording it and moving on.
  bool fail_fast = false;
  /// Eval thread count for the replay (EvalOptions::threads semantics;
  /// 0 = hardware concurrency). Overrides the workload's `# threads`
  /// directive when set — the knob bench sweeps use to replay one
  /// workload at several thread counts. Both the override and the
  /// directive are scoped to the replay: the engine's own setting is
  /// restored before ReplayWorkload returns.
  std::optional<size_t> threads;
};

/// Stats for one workload entry, summed over repeats and passes.
struct ReplayQueryStat {
  std::string name;
  std::string query;
  /// Non-empty for `# mutate` steps; `runs` then counts applications
  /// (one per pass) and `total_us` the apply + re-materialize cost.
  std::string mutation;
  size_t runs = 0;
  size_t cache_hits = 0;
  uint64_t parse_us = 0;
  uint64_t optimize_us = 0;
  uint64_t eval_us = 0;
  uint64_t total_us = 0;
  /// Per-operator evaluation stats, merged across all runs (timings
  /// summed, peak-cardinality high-water kept).
  EvalStats eval;
  /// Cardinality of the last successful run.
  size_t result_paths = 0;
  /// True when every run of this entry produced the same cardinality.
  bool stable_cardinality = true;
  std::optional<size_t> expect;
  /// False when `expect` is set and any run's cardinality differed.
  bool expect_ok = true;
  /// First error seen (OK when all runs succeeded).
  Status error = Status::OK();
};

struct ReplayReport {
  std::string graph_spec;
  size_t graph_nodes = 0;
  size_t graph_edges = 0;
  size_t passes = 0;
  /// Eval thread count the replay ran with (after directive/override
  /// resolution; 1 = serial, 0 = hardware concurrency).
  size_t threads = 1;
  std::vector<ReplayQueryStat> queries;
  // Aggregates over all runs:
  uint64_t wall_us = 0;  // whole replay, wall clock
  size_t total_runs = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t errors = 0;
  size_t expect_failures = 0;
  /// `# mutate` steps applied (passes × mutation entries). Each pass
  /// restarts from the workload's original graph, so expectations stay
  /// pass-independent.
  size_t mutations = 0;

  /// True when no run errored and every expectation held.
  bool ok() const { return errors == 0 && expect_failures == 0; }
};

/// Replays `workload` through `engine` (the caller picks/owns the graph —
/// use BuildWorkloadGraph(workload.graph_spec) to honor the file's
/// `# graph` directive). Only infrastructure failures return non-OK;
/// query errors and expectation misses are recorded in the report unless
/// `options.fail_fast` is set.
Result<ReplayReport> ReplayWorkload(QueryEngine& engine,
                                    const Workload& workload,
                                    const ReplayOptions& options = {});

/// One-call form: builds the graph from the workload's `# graph` spec and
/// a fresh QueryEngine session, then replays.
Result<ReplayReport> ReplayWorkload(const Workload& workload,
                                    const ReplayOptions& options = {},
                                    const EngineOptions& engine_options = {});

/// Renders the report as pretty-printed JSON: a `queries` array with
/// per-query timings and cache stats, an `aggregate` object, and the
/// compare.py-compatible `wall_time_ms` / `sum_iteration_time_ms` maps
/// keyed by query name.
std::string ReplayReportToJson(const ReplayReport& report);

/// Human-readable fixed-width table of the same numbers.
std::string ReplayReportToTable(const ReplayReport& report);

}  // namespace engine
}  // namespace pathalg

#endif  // PATHALG_ENGINE_REPLAY_H_
