#include "engine/query_engine.h"

#include <atomic>

#include "common/timing.h"

namespace pathalg {
namespace engine {

uint64_t QueryEngine::NextGraphToken() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::string QueryEngine::CacheKey(const std::string& normalized) const {
  // Graph-independent preparation (no optimizer stats) keys on the text
  // alone — the invariant that lets a server share one cache across
  // sessions sitting on different graphs. With stats set, plans embed
  // graph-derived decisions, so the graph token joins the key; the
  // '\x1f' separator is a control byte no parseable (hence cacheable)
  // query contains, keeping token keys disjoint from text keys.
  if (options_.query.optimizer.stats == nullptr) return normalized;
  return "g" + std::to_string(graph_token_) + "\x1f" + normalized;
}

void QueryEngine::ResetGraph(PropertyGraph graph) {
  graph_ = std::make_shared<const PropertyGraph>(std::move(graph));
  graph_token_ = NextGraphToken();
  cache_->Clear();
}

Result<PreparedQueryPtr> QueryEngine::Prepare(std::string_view text,
                                              ExecStats* stats) {
  ExecStats local;
  ExecStats& s = stats != nullptr ? *stats : local;
  s = ExecStats();
  s.normalized = NormalizeQueryText(text);
  const std::string key = CacheKey(s.normalized);

  if (PreparedQueryPtr hit = cache_->Get(key)) {
    s.cache_hit = true;
    return hit;
  }

  auto prepared = std::make_shared<PreparedQuery>();
  // Parse the *original* text (not the normalized cache key) so parse
  // errors report byte positions in what the caller actually sent.
  const SteadyClock::time_point parse_start = SteadyClock::now();
  Result<Query> parsed = Query::Parse(text);
  s.parse_us = MicrosSince(parse_start);
  if (!parsed.ok()) return parsed.status();
  prepared->query = std::move(parsed).value();

  if (options_.query.optimize) {
    const SteadyClock::time_point opt_start = SteadyClock::now();
    OptimizeResult optimized =
        Optimize(prepared->query.plan(), options_.query.optimizer);
    s.optimize_us = MicrosSince(opt_start);
    prepared->effective_plan = std::move(optimized.plan);
    prepared->optimizer_rules = std::move(optimized.applied);
  } else {
    prepared->effective_plan = prepared->query.plan();
  }
  prepared->parse_us = s.parse_us;
  prepared->optimize_us = s.optimize_us;

  PreparedQueryPtr shared = std::move(prepared);
  cache_->Put(key, shared);
  return shared;
}

Result<PathSet> QueryEngine::ExecutePrepared(const PreparedQuery& prepared,
                                             ExecStats* stats) {
  ExecStats local;
  ExecStats& s = stats != nullptr ? *stats : local;

  EvalOptions eval_options = options_.query.eval;
  eval_options.stats = &s.eval;
  const SteadyClock::time_point eval_start = SteadyClock::now();
  Result<PathSet> result =
      Evaluate(*graph_, prepared.effective_plan, eval_options);
  if (result.ok() && options_.query.whole_path_restrictor) {
    *result = ApplyWholePathRestrictor(*result,
                                       prepared.query.parsed().restrictor);
  }
  s.eval_us = MicrosSince(eval_start);
  if (result.ok()) s.result_paths = result->size();
  return result;
}

Result<PathSet> QueryEngine::Execute(std::string_view text,
                                     ExecStats* stats) {
  ExecStats local;
  ExecStats& s = stats != nullptr ? *stats : local;
  const SteadyClock::time_point start = SteadyClock::now();
  ++session_.queries;

  Result<PreparedQueryPtr> prepared = Prepare(text, &s);
  if (!prepared.ok()) {
    s.total_us = MicrosSince(start);
    ++session_.errors;
    session_.parse_us += s.parse_us;
    session_.optimize_us += s.optimize_us;
    session_.total_us += s.total_us;
    return prepared.status();
  }

  Result<PathSet> result = ExecutePrepared(**prepared, &s);
  s.total_us = MicrosSince(start);

  if (!result.ok()) ++session_.errors;
  session_.parse_us += s.parse_us;
  session_.optimize_us += s.optimize_us;
  session_.eval_us += s.eval_us;
  session_.total_us += s.total_us;
  session_.paths_produced += s.result_paths;
  return result;
}

}  // namespace engine
}  // namespace pathalg
