#ifndef PATHALG_ENGINE_WORKLOAD_FILE_H_
#define PATHALG_ENGINE_WORKLOAD_FILE_H_

/// \file workload_file.h
/// The `.gqlw` recorded-workload format: a replayable list of queries with
/// enough metadata to pick the graph, weight the queries, and check
/// results. One query per line; `#` lines are directives:
///
///   # graph social persons=100 seed=7   graph to replay on (at most one,
///                                       before the first query)
///   # threads 4                         eval thread count for the whole
///                                       replay (at most one, before the
///                                       first query; 0 = hardware)
///   # repeat 5                          sticky: following queries run 5x
///   # expect 42                         next query must yield 42 paths
///   # name two_hop                      next query's label (stats/JSON key)
///   # mutate add-edge n1 n2 label=Knows a live-mutation step: the replay
///                                       graph evolves here, affecting all
///                                       later queries (grammar:
///                                       mutation/delta_log.h; recorded by
///                                       the server's !mutate under
///                                       !record). Runs once per pass —
///                                       never repeated — and each pass
///                                       restarts from the original graph
///   ## free-text comment                ignored
///
/// Graph specs (first word selects the workload/generators.h family,
/// or `csv` to load a graph/csv.h file):
///   figure1
///   social  persons= messages= ring= chords= likes= seed=
///   skewed  persons= knows= follows= seed=
///   cycle   n= label=      chain n= label=      diamond k=
///   grid    w= h=          random n= m= seed= labels=a,b,c
///   csv <path>             (path validated at load, not parse, time —
///                          a recorded workload may travel to another
///                          machine before the file does)
///   snapshot <path>        (binary snapshot, storage/snapshot_reader.h;
///                          mmap'd zero-copy — same late path validation
///                          as csv)
///
/// Unknown directives, malformed key=value pairs and misplaced metadata
/// are hard errors with line numbers — a workload that silently drops a
/// directive would report wrong numbers forever.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/property_graph.h"

namespace pathalg {
namespace engine {

struct WorkloadEntry {
  /// Stats/JSON key; defaults to "q<1-based index>".
  std::string name;
  /// Query text, exactly as written. Empty for mutation steps.
  std::string query;
  /// Non-empty marks a `# mutate` step: the mutation command (validated
  /// at parse time against the mutation grammar) applied to the replay
  /// graph before later entries run. Mutually exclusive with `query`.
  std::string mutation;
  /// Times to run the query per replay pass (>= 1; always 1 for
  /// mutation steps — re-applying a mutation is not idempotent).
  size_t repeat = 1;
  /// Expected result cardinality; checked by the replay driver when set.
  std::optional<size_t> expect;
  /// 1-based source line of the query (diagnostics).
  size_t line = 0;

  bool operator==(const WorkloadEntry& o) const {
    return name == o.name && query == o.query && mutation == o.mutation &&
           repeat == o.repeat && expect == o.expect;
  }
};

struct Workload {
  /// Graph spec from the `# graph` directive; empty means the caller
  /// supplies the graph (BuildWorkloadGraph defaults to figure1).
  std::string graph_spec;
  /// Eval thread count from the `# threads` directive (applied to the
  /// whole replay session); unset means the replaying engine's setting
  /// stands. 0 = hardware concurrency (EvalOptions::threads semantics).
  std::optional<size_t> threads;
  std::vector<WorkloadEntry> entries;

  bool operator==(const Workload& o) const {
    return graph_spec == o.graph_spec && threads == o.threads &&
           entries == o.entries;
  }
};

/// Parses `.gqlw` text. Queries are not parsed as GQL here — a workload
/// may legitimately record queries that error, to measure error paths.
Result<Workload> ParseWorkload(std::string_view text);

/// Reads and parses a `.gqlw` file; errors are prefixed with `path`.
Result<Workload> LoadWorkloadFile(const std::string& path);

/// Renders a workload back to `.gqlw` text such that
/// ParseWorkload(FormatWorkload(w)) == w (round-trip).
std::string FormatWorkload(const Workload& workload);

/// Instantiates the graph named by a `# graph` spec (see file comment).
/// An empty spec yields the paper's Figure 1 graph.
Result<PropertyGraph> BuildWorkloadGraph(std::string_view spec);

}  // namespace engine
}  // namespace pathalg

#endif  // PATHALG_ENGINE_WORKLOAD_FILE_H_
