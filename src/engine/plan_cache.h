#ifndef PATHALG_ENGINE_PLAN_CACHE_H_
#define PATHALG_ENGINE_PLAN_CACHE_H_

/// \file plan_cache.h
/// LRU cache of prepared queries, keyed on normalized query text
/// (NormalizeQueryText in gql/query.h). A hit skips parse + optimize —
/// for the paper's small plans those two dominate end-to-end latency of
/// cheap queries, and for a served workload the same query text arrives
/// over and over. Entries are immutable and shared_ptr-owned, so a cached
/// plan stays valid even if it is evicted while a caller still holds it.
///
/// Thread-safe: every method takes an internal mutex, so one PlanCache
/// can back every session of the concurrent server (src/server) —
/// sessions on different graphs included, because prepared plans are
/// graph-independent (Optimize sees only the plan and OptimizerOptions;
/// see the SessionManager note on optimizer GraphStats). The mutex is
/// held only for the map/list manipulation, never while parsing or
/// optimizing — concurrent misses of one query may both prepare it, and
/// the second Put simply replaces the first (both plans are valid).

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "gql/query.h"

namespace pathalg {
namespace engine {

/// One prepared query: the parse result plus the plan the session will
/// actually evaluate (optimized under the session's OptimizerOptions).
struct PreparedQuery {
  Query query;
  /// query.plan() after Optimize; == query.plan() when optimization is
  /// disabled in the session options.
  PlanPtr effective_plan;
  /// Optimizer rules applied, in order (EXPLAIN-style provenance).
  std::vector<std::string> optimizer_rules;
  /// One-time preparation cost, for amortization accounting.
  uint64_t parse_us = 0;
  uint64_t optimize_us = 0;
};

using PreparedQueryPtr = std::shared_ptr<const PreparedQuery>;

/// Monotonic counters; exposed via PlanCache::stats().
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
};

/// Thread-safe LRU map: normalized query text -> PreparedQueryPtr.
/// Capacity 0 disables caching (every Get is a miss, Put is a no-op).
class PlanCache {
 public:
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the entry for `key` (promoting it to most-recently-used) or
  /// nullptr; counts a hit or a miss.
  PreparedQueryPtr Get(const std::string& key);

  /// Inserts or replaces the entry for `key` as most-recently-used,
  /// evicting the least-recently-used entry when over capacity.
  void Put(const std::string& key, PreparedQueryPtr prepared);

  /// Drops all entries; stats counters are preserved.
  void Clear();

  size_t size() const {
    MutexLock lock(mu_);
    return index_.size();
  }
  size_t capacity() const { return capacity_; }
  /// Coherent snapshot of the counters (by value: the counters mutate
  /// under the mutex on every Get/Put).
  PlanCacheStats stats() const {
    MutexLock lock(mu_);
    return stats_;
  }

 private:
  // Most-recently-used at the front.
  using LruList = std::list<std::pair<std::string, PreparedQueryPtr>>;
  const size_t capacity_;
  mutable Mutex mu_;
  LruList lru_ PA_GUARDED_BY(mu_);
  std::unordered_map<std::string, LruList::iterator> index_
      PA_GUARDED_BY(mu_);
  PlanCacheStats stats_ PA_GUARDED_BY(mu_);
};

}  // namespace engine
}  // namespace pathalg

#endif  // PATHALG_ENGINE_PLAN_CACHE_H_
