#include "engine/plan_cache.h"

namespace pathalg {
namespace engine {

PreparedQueryPtr PlanCache::Get(const std::string& key) {
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  ++stats_.hits;
  return it->second->second;
}

void PlanCache::Put(const std::string& key, PreparedQueryPtr prepared) {
  if (capacity_ == 0) return;
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second = std::move(prepared);
    return;
  }
  lru_.emplace_front(key, std::move(prepared));
  index_.emplace(key, lru_.begin());
  ++stats_.insertions;
  while (index_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void PlanCache::Clear() {
  MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace engine
}  // namespace pathalg
