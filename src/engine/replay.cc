#include "engine/replay.h"

#include <cstdio>
#include <memory>

#include "common/timing.h"
#include "mutation/delta_log.h"
#include "mutation/overlay.h"

namespace pathalg {
namespace engine {

namespace {

std::string Ms(uint64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(us) / 1000.0);
  return buf;
}

/// JSON string literal with full escaping (str_util's QuoteString only
/// handles quote/backslash; query text and Status messages may carry
/// tabs or newlines, which are illegal raw inside JSON strings).
std::string JsonQuote(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

Result<ReplayReport> ReplayWorkload(QueryEngine& engine,
                                    const Workload& workload,
                                    const ReplayOptions& options) {
  if (options.passes == 0) {
    return Status::InvalidArgument("replay needs passes >= 1");
  }
  // Thread-count resolution: an explicit ReplayOptions override wins,
  // then the workload's own `# threads` directive, then whatever the
  // session engine was configured with. The override is scoped to this
  // replay — a long-lived serving session must come back out with its
  // own configuration, whichever return path we take.
  // The graph is restored alongside: a workload with `# mutate` steps
  // walks the engine through derived versions, and a long-lived session
  // must come back out on the graph it went in with.
  struct SessionRestore {
    QueryEngine& engine;
    size_t original_threads;
    std::shared_ptr<const PropertyGraph> original_graph;
    ~SessionRestore() {
      engine.SetEvalThreads(original_threads);
      engine.SetGraph(std::move(original_graph));
    }
  } restore{engine, engine.eval_threads(), engine.shared_graph()};
  if (options.threads.has_value()) {
    engine.SetEvalThreads(*options.threads);
  } else if (workload.threads.has_value()) {
    engine.SetEvalThreads(*workload.threads);
  }
  ReplayReport report;
  report.graph_spec = workload.graph_spec;
  report.graph_nodes = engine.graph().num_nodes();
  report.graph_edges = engine.graph().num_edges();
  report.passes = options.passes;
  report.threads = engine.eval_threads();
  report.queries.reserve(workload.entries.size());
  bool has_mutations = false;
  for (const WorkloadEntry& e : workload.entries) {
    ReplayQueryStat stat;
    stat.name = e.name;
    stat.query = e.query;
    stat.mutation = e.mutation;
    stat.expect = e.expect;
    if (!e.mutation.empty()) has_mutations = true;
    report.queries.push_back(std::move(stat));
  }
  // First observed cardinality per entry, for the stability check.
  std::vector<std::optional<size_t>> first_card(workload.entries.size());

  const SteadyClock::time_point start = SteadyClock::now();
  const std::shared_ptr<const PropertyGraph> original = engine.shared_graph();
  std::unique_ptr<mutation::DeltaState> delta;
  for (size_t pass = 0; pass < options.passes; ++pass) {
    if (has_mutations) {
      // Per-pass reset: every pass replays the same evolution from the
      // original graph, so per-entry cardinality — and thus `# expect` —
      // is the same on pass 1 and pass N.
      engine.SetGraph(original);
      delta.reset();
    }
    for (size_t i = 0; i < workload.entries.size(); ++i) {
      const WorkloadEntry& entry = workload.entries[i];
      ReplayQueryStat& stat = report.queries[i];
      if (!entry.mutation.empty()) {
        const SteadyClock::time_point mutate_start = SteadyClock::now();
        Result<mutation::DeltaRecord> rec =
            mutation::ParseMutationCommand(entry.mutation);
        if (!rec.ok()) return rec.status();  // unreachable: parse-validated
        if (delta == nullptr) {
          delta = std::make_unique<mutation::DeltaState>(original);
        }
        mutation::DeltaRecord resolved = *rec;
        Status applied = delta->Apply(&resolved);
        if (!applied.ok()) {
          // A failed mutation poisons every later expectation — an
          // infrastructure error, not a per-query one.
          return Status(applied.code(), "workload mutation '" +
                                            entry.mutation +
                                            "' failed: " +
                                            applied.message());
        }
        engine.SetGraph(std::make_shared<const PropertyGraph>(
            mutation::DeltaOverlayGraph::Apply(*delta)));
        stat.total_us += MicrosSince(mutate_start);
        ++stat.runs;
        ++report.mutations;
        continue;
      }
      for (size_t r = 0; r < entry.repeat; ++r) {
        ExecStats es;
        Result<PathSet> result = engine.Execute(entry.query, &es);
        ++stat.runs;
        ++report.total_runs;
        if (es.cache_hit) {
          ++stat.cache_hits;
          ++report.cache_hits;
        } else {
          ++report.cache_misses;
        }
        stat.parse_us += es.parse_us;
        stat.optimize_us += es.optimize_us;
        stat.eval_us += es.eval_us;
        stat.total_us += es.total_us;
        stat.eval.Merge(es.eval);
        if (!result.ok()) {
          if (options.fail_fast) return result.status();
          if (stat.error.ok()) stat.error = result.status();
          ++report.errors;
          continue;
        }
        stat.result_paths = result->size();
        if (first_card[i].has_value() && *first_card[i] != result->size()) {
          stat.stable_cardinality = false;
        }
        if (!first_card[i].has_value()) first_card[i] = result->size();
        if (stat.expect.has_value() && *stat.expect != result->size()) {
          stat.expect_ok = false;
        }
      }
    }
  }
  report.wall_us = MicrosSince(start);
  for (const ReplayQueryStat& stat : report.queries) {
    if (!stat.expect_ok || !stat.stable_cardinality) {
      ++report.expect_failures;
    }
  }
  return report;
}

Result<ReplayReport> ReplayWorkload(const Workload& workload,
                                    const ReplayOptions& options,
                                    const EngineOptions& engine_options) {
  PATHALG_ASSIGN_OR_RETURN(PropertyGraph g,
                           BuildWorkloadGraph(workload.graph_spec));
  QueryEngine engine(std::move(g), engine_options);
  return ReplayWorkload(engine, workload, options);
}

std::string ReplayReportToJson(const ReplayReport& report) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"pathalg-replay-v1\",\n";
  out += "  \"graph\": {\"spec\": " + JsonQuote(report.graph_spec) +
         ", \"nodes\": " + std::to_string(report.graph_nodes) +
         ", \"edges\": " + std::to_string(report.graph_edges) + "},\n";
  out += "  \"passes\": " + std::to_string(report.passes) + ",\n";
  out += "  \"threads\": " + std::to_string(report.threads) + ",\n";
  out += "  \"queries\": [\n";
  for (size_t i = 0; i < report.queries.size(); ++i) {
    const ReplayQueryStat& q = report.queries[i];
    out += "    {\"name\": " + JsonQuote(q.name) +
           ", \"query\": " + JsonQuote(q.query) +
           (q.mutation.empty() ? ""
                               : ", \"mutation\": " + JsonQuote(q.mutation)) +
           ", \"runs\": " + std::to_string(q.runs) +
           ", \"cache_hits\": " + std::to_string(q.cache_hits) +
           ", \"parse_us\": " + std::to_string(q.parse_us) +
           ", \"optimize_us\": " + std::to_string(q.optimize_us) +
           ", \"eval_us\": " + std::to_string(q.eval_us) +
           ", \"total_us\": " + std::to_string(q.total_us) +
           ", \"result_paths\": " + std::to_string(q.result_paths) +
           ", \"plan_nodes_evaluated\": " +
           std::to_string(q.eval.nodes_evaluated) +
           ", \"peak_intermediate_paths\": " +
           std::to_string(q.eval.peak_intermediate_paths);
    if (q.expect.has_value()) {
      out += ", \"expect\": " + std::to_string(*q.expect);
    }
    out += std::string(", \"expect_ok\": ") + (q.expect_ok ? "true" : "false");
    out += std::string(", \"stable_cardinality\": ") +
           (q.stable_cardinality ? "true" : "false");
    if (!q.error.ok()) {
      out += ", \"error\": " + JsonQuote(q.error.ToString());
    }
    out += i + 1 < report.queries.size() ? "},\n" : "}\n";
  }
  out += "  ],\n";
  out += "  \"aggregate\": {\"wall_ms\": " + Ms(report.wall_us) +
         ", \"total_runs\": " + std::to_string(report.total_runs) +
         ", \"cache_hits\": " + std::to_string(report.cache_hits) +
         ", \"cache_misses\": " + std::to_string(report.cache_misses) +
         ", \"errors\": " + std::to_string(report.errors) +
         ", \"expect_failures\": " + std::to_string(report.expect_failures) +
         ", \"mutations\": " + std::to_string(report.mutations) + "},\n";
  // compare.py-compatible rollups (same keys as the BENCH_*.json
  // aggregates): per query, total wall time and mean time per run.
  out += "  \"wall_time_ms\": {";
  for (size_t i = 0; i < report.queries.size(); ++i) {
    const ReplayQueryStat& q = report.queries[i];
    out += (i ? ", " : "") + JsonQuote(q.name) + ": " + Ms(q.total_us);
  }
  out += "},\n";
  out += "  \"sum_iteration_time_ms\": {";
  for (size_t i = 0; i < report.queries.size(); ++i) {
    const ReplayQueryStat& q = report.queries[i];
    const uint64_t mean_us = q.runs == 0 ? 0 : q.total_us / q.runs;
    out += (i ? ", " : "") + JsonQuote(q.name) + ": " + Ms(mean_us);
  }
  out += "}\n";
  out += "}\n";
  return out;
}

std::string ReplayReportToTable(const ReplayReport& report) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-14s %5s %5s %10s %10s %10s %10s %8s  %s\n", "query",
                "runs", "hits", "parse ms", "opt ms", "eval ms", "total ms",
                "paths", "status");
  out += line;
  for (const ReplayQueryStat& q : report.queries) {
    const char* status = !q.error.ok()               ? "ERROR"
                         : !q.expect_ok              ? "EXPECT-FAIL"
                         : !q.stable_cardinality     ? "UNSTABLE"
                                                     : "ok";
    std::snprintf(line, sizeof(line),
                  "%-14s %5zu %5zu %10s %10s %10s %10s %8zu  %s\n",
                  q.name.c_str(), q.runs, q.cache_hits,
                  Ms(q.parse_us).c_str(), Ms(q.optimize_us).c_str(),
                  Ms(q.eval_us).c_str(), Ms(q.total_us).c_str(),
                  q.result_paths, status);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "total: %zu runs, %zu hits / %zu misses, %zu errors, "
                "%zu expect failures, %s ms wall\n",
                report.total_runs, report.cache_hits, report.cache_misses,
                report.errors, report.expect_failures,
                Ms(report.wall_us).c_str());
  out += line;
  return out;
}

}  // namespace engine
}  // namespace pathalg
