#include "engine/serve.h"

#include <istream>
#include <ostream>

#include "common/str_util.h"
#include "engine/workload_file.h"

namespace pathalg {
namespace engine {

std::string OneLine(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

std::string StatsLines(const QueryEngine& engine) {
  const SessionStats& s = engine.session_stats();
  const PlanCacheStats c = engine.cache().stats();
  std::string out;
  out += "STAT queries=" + std::to_string(s.queries) +
         " errors=" + std::to_string(s.errors) +
         " paths=" + std::to_string(s.paths_produced) + "\n";
  out += "STAT parse_us=" + std::to_string(s.parse_us) +
         " optimize_us=" + std::to_string(s.optimize_us) +
         " eval_us=" + std::to_string(s.eval_us) +
         " total_us=" + std::to_string(s.total_us) + "\n";
  out += "STAT cache_size=" + std::to_string(engine.cache().size()) +
         " cache_hits=" + std::to_string(c.hits) +
         " cache_misses=" + std::to_string(c.misses) +
         " cache_evictions=" + std::to_string(c.evictions) + "\n";
  out += "STAT graph_nodes=" + std::to_string(engine.graph().num_nodes()) +
         " graph_edges=" + std::to_string(engine.graph().num_edges()) + "\n";
  return out;
}

namespace {

bool HandleCommand(QueryEngine& engine, std::string_view cmd,
                   std::string* out, ServeResult* result) {
  std::string_view rest;
  auto is = [&](std::string_view name) {
    if (cmd == name) {
      rest = {};
      return true;
    }
    if (StartsWith(cmd, std::string(name) + " ")) {
      rest = StripWhitespace(cmd.substr(name.size()));
      return true;
    }
    return false;
  };
  if (is("!quit")) {
    *out += "OK bye\n";
    ++result->ok;
    return false;
  }
  if (is("!help")) {
    *out +=
        "HELP one query per line; directives: !help !stats !cache clear "
        "!graph <spec> !quit\n";
    *out += "OK help\n";
    ++result->ok;
    return true;
  }
  if (is("!stats")) {
    *out += StatsLines(engine);
    *out += "OK stats\n";
    ++result->ok;
    return true;
  }
  if (is("!cache") && rest == "clear") {
    engine.cache().Clear();
    *out += "OK cache cleared\n";
    ++result->ok;
    return true;
  }
  if (is("!graph")) {
    Result<PropertyGraph> g = BuildWorkloadGraph(rest);
    if (!g.ok()) {
      *out += "ERR " + OneLine(g.status().ToString()) + "\n";
      ++result->errors;
      return true;
    }
    engine.ResetGraph(std::move(g).value());
    *out += "OK graph " + std::to_string(engine.graph().num_nodes()) +
            " nodes " + std::to_string(engine.graph().num_edges()) +
            " edges\n";
    ++result->ok;
    return true;
  }
  *out += "ERR Invalid argument: unknown command '" + std::string(cmd) +
          "' (try !help)\n";
  ++result->errors;
  return true;
}

}  // namespace

bool HandleRequestLine(QueryEngine& engine, const std::string& line,
                       std::string* out, ServeResult* result,
                       const ServeOptions& options) {
  std::string_view trimmed = StripWhitespace(line);
  if (trimmed.empty()) return true;
  ++result->requests;
  if (trimmed[0] == '!') {
    return HandleCommand(engine, trimmed, out, result);
  }
  ExecStats stats;
  Result<PathSet> r = engine.Execute(trimmed, &stats);
  if (options.query_observer) options.query_observer(trimmed, r);
  if (!r.ok()) {
    *out += "ERR " + OneLine(r.status().ToString()) + "\n";
    ++result->errors;
    return true;
  }
  *out += "OK " + std::to_string(r->size()) + " paths";
  if (options.timings) {
    *out += std::string(" ") + (stats.cache_hit ? "hit" : "miss") +
            " parse=" + std::to_string(stats.parse_us) +
            "us opt=" + std::to_string(stats.optimize_us) +
            "us eval=" + std::to_string(stats.eval_us) +
            "us total=" + std::to_string(stats.total_us) + "us";
  }
  *out += "\n";
  ++result->ok;
  return true;
}

ServeResult ServeLines(QueryEngine& engine, std::istream& in,
                       std::ostream& out) {
  ServeResult result;
  std::string line;
  while (std::getline(in, line)) {
    std::string response;
    const bool keep_going =
        HandleRequestLine(engine, line, &response, &result);
    out << response << std::flush;
    if (!keep_going) break;
  }
  return result;
}

}  // namespace engine
}  // namespace pathalg
