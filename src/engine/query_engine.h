#ifndef PATHALG_ENGINE_QUERY_ENGINE_H_
#define PATHALG_ENGINE_QUERY_ENGINE_H_

/// \file query_engine.h
/// The session layer: the first component that treats the algebra as a
/// *served system* rather than a library. A QueryEngine holds a
/// PropertyGraph plus the session's QueryOptions, and runs query text
/// end-to-end — normalize → plan-cache lookup → (parse → optimize on a
/// miss) → evaluate — collecting per-stage wall timings for every call.
/// The replay driver (engine/replay.h), the line-protocol server
/// (engine/serve.h), the concurrent server (src/server) and
/// examples/query_shell all sit on this class, so end-to-end latency is
/// measured the same way everywhere.
///
/// Sharing model: the graph is held by shared_ptr<const PropertyGraph> —
/// immutable once built, so any number of sessions may share one instance
/// (the server's GraphCatalog loads each named graph exactly once). The
/// plan cache is shared_ptr-owned too: by default each engine gets a
/// private cache, but EngineOptions::shared_cache lets every session of a
/// server share one process-wide (thread-safe) cache.
///
/// A QueryEngine itself is still one session: its per-session state (the
/// stats counters, the options) is not synchronized — one QueryEngine per
/// connection/thread, sharing graph and cache underneath.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "engine/plan_cache.h"
#include "gql/query.h"
#include "graph/property_graph.h"

namespace pathalg {
namespace engine {

struct EngineOptions {
  /// Evaluation + optimizer knobs applied to every query in the session.
  QueryOptions query;
  /// Plan-cache capacity in entries; 0 disables plan caching. Ignored
  /// when `shared_cache` is set.
  size_t plan_cache_capacity = 128;
  /// When set, the engine uses this (thread-safe) cache instead of
  /// constructing a private one — the server hands every session the same
  /// instance. Sharing is sound across sessions and graphs because the
  /// cache key covers everything preparation depends on: plans are a
  /// function of the normalized text and the OptimizerOptions, which a
  /// server keeps identical across its sessions, and never of the graph
  /// or the eval-time knobs (threads, limits) that sessions vary.
  std::shared_ptr<PlanCache> shared_cache;
};

/// Per-call instrumentation, filled by Execute/Prepare when requested.
struct ExecStats {
  /// Cache key actually used (NormalizeQueryText of the input).
  std::string normalized;
  bool cache_hit = false;
  /// Zero on a cache hit (the prepared entry carries its one-time costs).
  uint64_t parse_us = 0;
  uint64_t optimize_us = 0;
  uint64_t eval_us = 0;
  /// Whole Execute call, including normalization and cache probing.
  uint64_t total_us = 0;
  size_t result_paths = 0;
  /// Per-operator breakdown of the evaluation (plan/evaluator.h).
  EvalStats eval;
};

/// Session-lifetime aggregates.
struct SessionStats {
  uint64_t queries = 0;  // Execute calls
  uint64_t errors = 0;   // Execute calls that returned a non-OK status
  uint64_t parse_us = 0;
  uint64_t optimize_us = 0;
  uint64_t eval_us = 0;
  uint64_t total_us = 0;
  uint64_t paths_produced = 0;
};

class QueryEngine {
 public:
  explicit QueryEngine(PropertyGraph graph, EngineOptions options = {})
      : QueryEngine(std::make_shared<const PropertyGraph>(std::move(graph)),
                    std::move(options)) {}

  /// Shares an already-loaded graph (the server's GraphCatalog path).
  explicit QueryEngine(std::shared_ptr<const PropertyGraph> graph,
                       EngineOptions options = {})
      : graph_(std::move(graph)),
        options_(std::move(options)),
        cache_(options_.shared_cache != nullptr
                   ? options_.shared_cache
                   : std::make_shared<PlanCache>(
                         options_.plan_cache_capacity)) {}

  const PropertyGraph& graph() const { return *graph_; }
  const std::shared_ptr<const PropertyGraph>& shared_graph() const {
    return graph_;
  }
  const EngineOptions& options() const { return options_; }

  /// Swaps in a new (session-private) graph and clears the plan cache.
  /// Historical, conservative behavior for single-session callers; use
  /// SetGraph to swap without touching a cache other sessions share.
  void ResetGraph(PropertyGraph graph);

  /// Swaps in a shared graph *without* clearing the plan cache — prepared
  /// plans are graph-independent (see EngineOptions::shared_cache), and
  /// the cache may belong to every other session of a server. When the
  /// session *does* prepare graph-dependently (optimizer stats are set),
  /// the cache key carries a per-graph token, so a swap — a `!graph`
  /// command or a live-mutation version publish — can never serve a plan
  /// memoized against the previous graph's statistics. Same-pointer
  /// swaps are no-ops (the token, and thus cached keys, stay valid).
  void SetGraph(std::shared_ptr<const PropertyGraph> graph) {
    if (graph.get() == graph_.get()) return;
    graph_ = std::move(graph);
    graph_token_ = NextGraphToken();
  }

  /// Sets the evaluation thread count (EvalOptions::threads; 0 = hardware
  /// concurrency) for subsequent Execute/ExecutePrepared calls. Plans are
  /// thread-count independent — parallel output is byte-identical to
  /// serial — so cached plans stay valid and the cache is kept.
  void SetEvalThreads(size_t threads) {
    options_.query.eval.threads = threads;
  }
  size_t eval_threads() const { return options_.query.eval.threads; }

  /// Sets the per-query evaluation budgets (admission control: the server
  /// exposes this per session via the `!limits` protocol command). Like
  /// threads, limits apply at eval time only, so cached plans stay valid.
  void SetEvalLimits(const EvalLimits& limits) {
    options_.query.eval.limits = limits;
  }
  const EvalLimits& eval_limits() const {
    return options_.query.eval.limits;
  }

  /// Installs (or clears, with nullptr) the cooperative-cancellation
  /// token polled by subsequent Execute/ExecutePrepared calls
  /// (EvalLimits::cancel; trip semantics in algebra/eval_budget.h). Not
  /// owned — the caller arms a deadline per query and must keep the
  /// token alive for the duration of the call.
  void SetCancelToken(const CancelToken* cancel) {
    options_.query.eval.limits.cancel = cancel;
  }

  /// Normalize → cache lookup → parse+optimize on miss (inserting into the
  /// cache). Returns the shared prepared entry; `stats`, when non-null,
  /// receives normalization/caching/parse/optimize numbers (eval fields
  /// stay zero).
  Result<PreparedQueryPtr> Prepare(std::string_view text,
                                   ExecStats* stats = nullptr);

  /// Prepare + evaluate. On error the stats still describe the attempt
  /// (e.g. parse_us for a parse error, eval_us for an eval error).
  Result<PathSet> Execute(std::string_view text, ExecStats* stats = nullptr);

  /// Evaluates an already-prepared query (shared, possibly evicted entry).
  /// Fills only the evaluation fields of `stats` (eval_us, result_paths,
  /// eval), leaving the prepare-phase fields untouched so Execute can
  /// layer the two. Does not update session_stats().
  Result<PathSet> ExecutePrepared(const PreparedQuery& prepared,
                                  ExecStats* stats = nullptr);

  PlanCache& cache() { return *cache_; }
  const PlanCache& cache() const { return *cache_; }
  const SessionStats& session_stats() const { return session_; }

 private:
  /// Process-unique token minted per distinct graph instance an engine
  /// has pointed at (monotonic atomic counter — tokens are never reused,
  /// so a key built against an old graph can never collide with a new
  /// one's).
  static uint64_t NextGraphToken();

  /// The plan-cache key for `normalized` query text: the text itself for
  /// graph-independent preparation (the shared-cache contract), prefixed
  /// with the graph token when optimizer statistics make prepared plans
  /// graph-dependent.
  std::string CacheKey(const std::string& normalized) const;

  std::shared_ptr<const PropertyGraph> graph_;
  EngineOptions options_;
  std::shared_ptr<PlanCache> cache_;
  SessionStats session_;
  uint64_t graph_token_ = NextGraphToken();
};

}  // namespace engine
}  // namespace pathalg

#endif  // PATHALG_ENGINE_QUERY_ENGINE_H_
