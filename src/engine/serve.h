#ifndef PATHALG_ENGINE_SERVE_H_
#define PATHALG_ENGINE_SERVE_H_

/// \file serve.h
/// The line protocol behind `pathalg_serve`: one request per line in, one
/// response line out, so throughput can be driven by anything that can
/// write lines — a pipe, netcat against the TCP front-end, or a load
/// generator. Responses:
///
///   query line  ->  OK <n> paths <hit|miss> parse=<us>us opt=<us>us
///                   eval=<us>us total=<us>us
///   error       ->  ERR <code>: <message>            (always one line)
///   !command    ->  one or more lines, last one "OK ..." or "ERR ..."
///
/// Commands: `!help`, `!stats` (session aggregates + plan-cache counters),
/// `!graph <spec>` (swap the session graph; clears the plan cache),
/// `!cache clear`, `!quit`. The protocol is intentionally dumb —
/// stateless, textual, no framing — so a smoke test is `printf ... |
/// pathalg_serve`.

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

#include "engine/query_engine.h"

namespace pathalg {
namespace engine {

struct ServeResult {
  size_t requests = 0;  // non-empty lines handled
  size_t ok = 0;        // responses that began with "OK"
  size_t errors = 0;    // responses that began with "ERR"
};

/// Per-session knobs for the line protocol (the concurrent server's
/// sessions own one each; the `!timing` command flips `timings`).
struct ServeOptions {
  /// Include the cache hit/miss token and the per-stage microsecond
  /// fields in OK query responses. With timings off a query answers
  /// exactly "OK <n> paths" — a *deterministic* response, which is what
  /// the server's byte-identity contract (concurrent session ≡ serial
  /// single-client run) is asserted against: wall timings and shared
  /// plan-cache hit/miss legitimately vary across runs, path counts and
  /// errors never do.
  bool timings = true;
  /// Observes every query line after execution (commands are not
  /// queries). The server's live workload recorder hangs off this. May
  /// be empty.
  std::function<void(std::string_view query, const Result<PathSet>& result)>
      query_observer;
};

/// Handles one request line (no trailing newline), appending one or more
/// response lines (each '\n'-terminated) to `out`. Returns false when the
/// session should end (`!quit`). Empty/whitespace lines are ignored.
bool HandleRequestLine(QueryEngine& engine, const std::string& line,
                       std::string* out, ServeResult* result,
                       const ServeOptions& options = {});

/// Serves `in` until EOF or `!quit`, writing responses to `out` (flushed
/// per line, so piped clients see answers promptly).
ServeResult ServeLines(QueryEngine& engine, std::istream& in,
                       std::ostream& out);

/// The session-stats block of the `!stats` response ("STAT ..." lines,
/// one per category, no trailing OK). Exported so the concurrent server
/// can append its catalog/session/pool counters before the OK line.
std::string StatsLines(const QueryEngine& engine);

/// Flattens newlines to spaces — the protocol is one line per response,
/// but Status messages (parser diagnostics) may span lines. Exported for
/// the concurrent server's error paths, so the one-line invariant has a
/// single implementation.
std::string OneLine(std::string s);

}  // namespace engine
}  // namespace pathalg

#endif  // PATHALG_ENGINE_SERVE_H_
