#ifndef PATHALG_ENGINE_SERVE_H_
#define PATHALG_ENGINE_SERVE_H_

/// \file serve.h
/// The line protocol behind `pathalg_serve`: one request per line in, one
/// response line out, so throughput can be driven by anything that can
/// write lines — a pipe, netcat against the TCP front-end, or a load
/// generator. Responses:
///
///   query line  ->  OK <n> paths <hit|miss> parse=<us>us opt=<us>us
///                   eval=<us>us total=<us>us
///   error       ->  ERR <code>: <message>            (always one line)
///   !command    ->  one or more lines, last one "OK ..." or "ERR ..."
///
/// Commands: `!help`, `!stats` (session aggregates + plan-cache counters),
/// `!graph <spec>` (swap the session graph; clears the plan cache),
/// `!cache clear`, `!quit`. The protocol is intentionally dumb —
/// stateless, textual, no framing — so a smoke test is `printf ... |
/// pathalg_serve`.

#include <cstddef>
#include <iosfwd>
#include <string>

#include "engine/query_engine.h"

namespace pathalg {
namespace engine {

struct ServeResult {
  size_t requests = 0;  // non-empty lines handled
  size_t ok = 0;        // responses that began with "OK"
  size_t errors = 0;    // responses that began with "ERR"
};

/// Handles one request line (no trailing newline), appending one or more
/// response lines (each '\n'-terminated) to `out`. Returns false when the
/// session should end (`!quit`). Empty/whitespace lines are ignored.
bool HandleRequestLine(QueryEngine& engine, const std::string& line,
                       std::string* out, ServeResult* result);

/// Serves `in` until EOF or `!quit`, writing responses to `out` (flushed
/// per line, so piped clients see answers promptly).
ServeResult ServeLines(QueryEngine& engine, std::istream& in,
                       std::ostream& out);

}  // namespace engine
}  // namespace pathalg

#endif  // PATHALG_ENGINE_SERVE_H_
