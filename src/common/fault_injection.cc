#include "common/fault_injection.h"

#include <string_view>
#include <vector>

#include "common/str_util.h"

namespace pathalg {

namespace {

// SplitMix64 (Steele/Lea/Flood): a full-period mixer, so distinct
// (seed, site, ordinal) triples map to effectively independent draws.
// determinism-lint: allow(raw-random) — fully seeded, no entropy source.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kSnapshotRead:
      return "snapshot-read";
    case FaultSite::kSnapshotMmap:
      return "snapshot-mmap";
    case FaultSite::kCatalogLoad:
      return "catalog-load";
    case FaultSite::kSocketWrite:
      return "socket-write";
    case FaultSite::kRecordFlush:
      return "record-flush";
  }
  return "?";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

Status FaultInjector::Configure(const std::string& spec) {
  uint64_t seed = 0;
  uint64_t rates[kNumFaultSites] = {};
  for (std::string_view field : Split(spec, ';')) {
    field = StripWhitespace(field);
    if (field.empty()) continue;
    const size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("fault spec field '" +
                                     std::string(field) +
                                     "' is not key=value");
    }
    const std::string_view key = StripWhitespace(field.substr(0, eq));
    const std::string_view value = StripWhitespace(field.substr(eq + 1));
    size_t n = 0;
    if (!ParseSizeT(value, &n)) {
      return Status::InvalidArgument("fault spec value '" +
                                     std::string(value) +
                                     "' is not a non-negative integer");
    }
    if (key == "seed") {
      seed = n;
      continue;
    }
    if (key == "*") {
      for (uint64_t& rate : rates) rate = n;
      continue;
    }
    bool known = false;
    for (int s = 0; s < kNumFaultSites; ++s) {
      if (key == FaultSiteName(static_cast<FaultSite>(s))) {
        rates[s] = n;
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("unknown fault site '" +
                                     std::string(key) + "'");
    }
  }
  seed_.store(seed, std::memory_order_relaxed);
  for (int s = 0; s < kNumFaultSites; ++s) {
    one_in_[s].store(rates[s], std::memory_order_relaxed);
    calls_[s].store(0, std::memory_order_relaxed);
    injected_[s].store(0, std::memory_order_relaxed);
  }
  return Status();
}

void FaultInjector::Disable() {
  for (int s = 0; s < kNumFaultSites; ++s) {
    one_in_[s].store(0, std::memory_order_relaxed);
    calls_[s].store(0, std::memory_order_relaxed);
    injected_[s].store(0, std::memory_order_relaxed);
  }
}

bool FaultInjector::ShouldFail(FaultSite site) {
  const int s = static_cast<int>(site);
  const uint64_t one_in = one_in_[s].load(std::memory_order_relaxed);
  if (one_in == 0) return false;
  const uint64_t ordinal = calls_[s].fetch_add(1, std::memory_order_relaxed);
  bool fire = one_in == 1;
  if (!fire) {
    const uint64_t seed = seed_.load(std::memory_order_relaxed);
    fire = SplitMix64(seed ^ (static_cast<uint64_t>(s) << 56) ^ ordinal) %
               one_in ==
           0;
  }
  if (fire) injected_[s].fetch_add(1, std::memory_order_relaxed);
  return fire;
}

bool FaultInjector::Enabled() const {
  for (int s = 0; s < kNumFaultSites; ++s) {
    if (one_in_[s].load(std::memory_order_relaxed) != 0) return true;
  }
  return false;
}

uint64_t FaultInjector::Calls(FaultSite site) const {
  return calls_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

uint64_t FaultInjector::Injected(FaultSite site) const {
  return injected_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

Status InjectedFault(FaultSite site) {
  return Status::Internal(std::string("injected fault at site ") +
                          FaultSiteName(site));
}

}  // namespace pathalg
