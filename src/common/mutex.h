#ifndef PATHALG_COMMON_MUTEX_H_
#define PATHALG_COMMON_MUTEX_H_

/// \file mutex.h
/// Thin annotated wrappers over the standard synchronization primitives,
/// so Clang's Thread Safety Analysis (common/thread_annotations.h) can
/// track lock acquisition statically. libstdc++'s std::mutex and
/// std::lock_guard carry no capability attributes — annotating members
/// PA_GUARDED_BY(a std::mutex) would flag every access because the
/// analysis never sees the lock being taken. These wrappers are the
/// annotated surface; they forward inline to the standard primitives, so
/// the generated code (and what TSan observes at runtime) is identical.
///
/// Usage pattern across src/:
///
///   Mutex mu_;
///   int guarded_ PA_GUARDED_BY(mu_);
///   CondVar cv_;
///   ...
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);   // explicit while-loop, not a
///   guarded_ = 1;                    // predicate lambda: the analysis
///                                    // does not propagate REQUIRES into
///                                    // lambda bodies
///
/// Condition waits use std::condition_variable_any (any BasicLockable,
/// which Mutex is via lock()/unlock()); its extra internal mutex is
/// irrelevant on these paths — every wait here is per-region /
/// per-connection / per-graph-load, never per-item.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace pathalg {

/// An annotated std::mutex. Prefer MutexLock over manual Lock/Unlock.
class PA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PA_ACQUIRE() { m_.lock(); }
  void Unlock() PA_RELEASE() { m_.unlock(); }
  bool TryLock() PA_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// BasicLockable spelling, so CondVar (condition_variable_any) can
  /// release/reacquire around a wait. Not for direct use in application
  /// code — use MutexLock.
  void lock() PA_ACQUIRE() { m_.lock(); }
  void unlock() PA_RELEASE() { m_.unlock(); }

 private:
  std::mutex m_;
};

/// RAII lock for Mutex (the annotated std::lock_guard).
class PA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PA_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() PA_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait() requires the mutex held
/// (it is released during the block and reacquired before returning);
/// spurious wakeups are possible, so always wait in a while loop over
/// the condition — which is also what keeps the guarded reads in the
/// condition inside the analyzed lock scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) PA_REQUIRES(mu) { cv_.wait(mu); }

  /// Timed variant for bounded drains (the TCP server's graceful stop):
  /// returns false when `deadline` passed without a notification. Same
  /// while-loop discipline as Wait — spurious wakeups return true.
  template <class Clock, class Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      PA_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace pathalg

#endif  // PATHALG_COMMON_MUTEX_H_
