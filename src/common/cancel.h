#ifndef PATHALG_COMMON_CANCEL_H_
#define PATHALG_COMMON_CANCEL_H_

/// \file cancel.h
/// Cooperative cancellation for long-running evaluations. A CancelToken
/// trips either when a wall-clock deadline passes (ArmDeadline) or when
/// some other thread calls Cancel() — e.g. the server's graceful-shutdown
/// drain. Tokens chain: a per-query token parented to a process-wide
/// shutdown token trips when either does, so one SIGTERM cancels every
/// in-flight query without the server tracking them individually.
///
/// Checking is cheap by design — an atomic load on the common path, a
/// clock read only when a deadline is armed — so engines can poll at
/// every chunk/round/layer boundary, and every few thousand steps inside
/// a DFS segment (kCancelCheckStride), without measurable overhead.
///
/// Thread-safety: Cancel() and Cancelled() are safe from any thread.
/// ArmDeadline() and parenting are setup-time operations: call them
/// before the token is shared with workers.
///
/// The *trip semantics* — what an engine returns when a token fires —
/// are pinned in algebra/eval_budget.h next to the budget contract.

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/timing.h"

namespace pathalg {

/// How many enumeration steps a tight inner loop (segment walker, product
/// DFS) may take between token polls. Bounds the cancellation latency of
/// a single pathological segment without a clock read per step.
inline constexpr uint32_t kCancelCheckStride = 4096;

class CancelToken {
 public:
  CancelToken() = default;
  /// A child token: trips when `parent` trips, in addition to its own
  /// deadline/Cancel. `parent` must outlive this token (or be null).
  explicit CancelToken(const CancelToken* parent) : parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arms a wall-clock deadline `budget_ms` from now. Setup-time only.
  void ArmDeadline(uint64_t budget_ms) {
    deadline_ = SteadyClock::now() + std::chrono::milliseconds(budget_ms);
    has_deadline_ = true;
  }

  /// Trips the token from any thread; `why` must be a string with static
  /// storage duration (it travels through an atomic pointer).
  void Cancel(const char* why = "shutdown") {
    reason_.store(why, std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_release);
  }

  /// True once the token has tripped (sticky). Latches a deadline or
  /// parent trip into the local flag so later polls are one atomic load.
  bool Cancelled() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    if (parent_ != nullptr && parent_->Cancelled()) {
      reason_.store(parent_->Reason(), std::memory_order_relaxed);
      cancelled_.store(true, std::memory_order_release);
      return true;
    }
    if (has_deadline_ && SteadyClock::now() >= deadline_) {
      reason_.store("deadline", std::memory_order_relaxed);
      cancelled_.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

  /// Why the token tripped ("deadline", "shutdown", ...); meaningful only
  /// after Cancelled() returned true.
  const char* Reason() const {
    const char* r = reason_.load(std::memory_order_relaxed);
    return r != nullptr ? r : "cancel";
  }

  /// True when the trip came from the armed deadline (vs an external
  /// Cancel) — drives the deadline_trips / cancelled_queries split.
  bool DeadlineTripped() const {
    const char* r = reason_.load(std::memory_order_relaxed);
    return r != nullptr && r[0] == 'd';
  }

 private:
  const CancelToken* parent_ = nullptr;
  bool has_deadline_ = false;
  SteadyClock::time_point deadline_{};
  // Mutable: Cancelled() latches deadline/parent trips on first
  // observation, which is a logical read.
  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<const char*> reason_{nullptr};
};

}  // namespace pathalg

#endif  // PATHALG_COMMON_CANCEL_H_
