#ifndef PATHALG_COMMON_THREAD_POOL_H_
#define PATHALG_COMMON_THREAD_POOL_H_

/// \file thread_pool.h
/// Chunked work-stealing parallel-for for the algebra's partitionable
/// operators (σ filters paths independently, ⋈ and ϕ expand independent
/// PathFirstIndex buckets). The design keeps determinism trivial for
/// callers: the *chunk layout* of an input range depends only on
/// (n, threads, min_chunk) — never on runtime scheduling — so a caller
/// that collects per-chunk results and merges them in chunk index order
/// produces byte-identical output at every thread count. Which worker
/// happens to execute a chunk is the only scheduling freedom.
///
/// Scheduling: chunks are pre-partitioned contiguously across the
/// participants; each participant drains its own range through an atomic
/// cursor, then steals remaining chunks from the other participants'
/// cursors. Stealing is chunk-granular (no deques): a `fetch_add` on the
/// victim's cursor claims one chunk, which is all the coordination the
/// operators need because every chunk is independent.
///
/// The pool is process-wide and lazy: workers are spawned on first use,
/// grown to the largest thread count ever requested, and idle on a
/// condition variable between parallel regions (an evaluation with many ϕ
/// rounds re-enters the pool per round; respawning threads per round
/// would dominate). One region runs at a time; concurrent callers
/// serialize on an internal mutex.
///
/// Besides fork-join regions the pool runs detached *tasks* (Submit):
/// long-lived jobs like the query server's accept loop and per-connection
/// handlers. Workers serve both kinds; Submit grows the pool so that
/// every unfinished task can hold a worker (tasks may block indefinitely
/// in I/O) while the fork-join high-water mark of workers stays free for
/// regions — a server full of idle connections must not serialize query
/// evaluation.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

namespace pathalg {

/// Knobs for parallel operator execution, threaded through
/// EvalOptions (plan/evaluator.h) into σ/⋈/ϕ.
struct ParallelOptions {
  /// Worker count including the calling thread. 1 = serial (never touches
  /// the pool), 0 = std::thread::hardware_concurrency(). Values are
  /// clamped to kMaxThreads — the knob reaches user-supplied surfaces
  /// (`--threads`, `# threads N`), and an absurd request must degrade to
  /// a big pool, not a thread-spawn std::system_error.
  size_t threads = 1;
  /// Load-balancing floor: inputs smaller than 2*min_chunk stay serial
  /// (the fork/join barrier would cost more than the work), and every
  /// chunk except possibly the remainder-taking last one holds at least
  /// min_chunk items.
  size_t min_chunk = 128;

  /// Upper bound on EffectiveThreads(). Far above any sane oversubscription
  /// of real hardware; output is thread-count independent, so clamping
  /// never changes results.
  static constexpr size_t kMaxThreads = 256;

  /// `threads` with 0 resolved to the hardware concurrency; min 1,
  /// max kMaxThreads.
  size_t EffectiveThreads() const;

  /// True when an input of `n` items should fan out under these options.
  bool ShouldParallelize(size_t n) const;
};

/// Race-free parallel-execution counters. Workers accumulate into
/// per-participant slots; the pool sums them after the join barrier, and
/// the operators fold them into EvalStats on the calling thread — no
/// worker ever writes a shared counter. All fields merge by summation,
/// so accumulation is associative.
struct ParallelStats {
  /// Chunks executed across all parallel regions.
  size_t chunks_executed = 0;
  /// Chunks executed by a participant other than the one whose partition
  /// they were assigned to (load imbalance indicator).
  size_t steal_count = 0;
  /// Parallel-eligible regions (one operator input, one ϕ segment wave,
  /// or one shortest length layer) that ran serially because the input
  /// was under the min_chunk threshold, plus one per ϕ call on the
  /// intentionally-serial PhiEngine::kNaive. Only counted when
  /// threads > 1 was requested; a single big operator can contribute
  /// several counts (e.g. the small tail layers of a closure whose big
  /// layers did parallelize — compare with chunks_executed).
  size_t serial_fallbacks = 0;

  void Merge(const ParallelStats& other) {
    chunks_executed += other.chunks_executed;
    steal_count += other.steal_count;
    serial_fallbacks += other.serial_fallbacks;
  }
};

/// Deterministic chunk layout of [0, n): `num_chunks` contiguous ranges of
/// `chunk_size` items each; the last chunk takes the remainder and may
/// hold fewer than min_chunk items (every other chunk holds at least
/// min_chunk). A pure function of (n, threads, min_chunk).
struct ChunkLayout {
  size_t num_chunks = 0;
  size_t chunk_size = 0;

  static ChunkLayout For(size_t n, size_t threads, size_t min_chunk);

  /// The half-open item range of `chunk` (< num_chunks) within [0, n).
  std::pair<size_t, size_t> Range(size_t chunk, size_t n) const {
    const size_t begin = chunk * chunk_size;
    const size_t end = (chunk + 1 == num_chunks) ? n : begin + chunk_size;
    return {begin, end};
  }
};

/// Monotonic process-lifetime counters, for `STATS`-style introspection
/// surfaces (the query server exposes them per session). Snapshot via
/// ThreadPool::Counters().
struct ThreadPoolCounters {
  /// Worker threads currently spawned (never shrinks).
  size_t workers = 0;
  /// Fork-join regions executed (ParallelFor calls that hit the pool).
  uint64_t regions = 0;
  /// Chunks / stolen chunks executed across all regions.
  uint64_t chunks = 0;
  uint64_t steals = 0;
  /// Detached tasks submitted / completed (Submit).
  uint64_t tasks_submitted = 0;
  uint64_t tasks_completed = 0;
};

class ThreadPool {
 public:
  /// The process-wide pool (workers are shared across evaluations; the
  /// `threads` knob caps how many participate per region).
  static ThreadPool& Shared();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The exact layout ParallelFor(n, options, ...) will execute: one
  /// inline chunk when the input stays serial, the work-stealing
  /// ChunkLayout otherwise. Callers size per-chunk result buffers with
  /// this — it is the single source of truth, so the buffer size and the
  /// chunk indices handed to `body` can never drift apart.
  static ChunkLayout PlanFor(size_t n, const ParallelOptions& options);

  /// Runs `body(chunk, begin, end)` for every chunk of
  /// PlanFor(n, options), blocking until all chunks completed (so the
  /// caller may read anything the bodies wrote). Each chunk runs exactly
  /// once, on the calling thread or a pool worker; `body` must not throw
  /// and must only write chunk-private state. When
  /// `options.ShouldParallelize(n)` is false the whole range runs inline
  /// as one chunk (counted as a serial fallback). `stats`, when
  /// non-null, is accumulated into on the calling thread.
  void ParallelFor(size_t n, const ParallelOptions& options,
                   ParallelStats* stats,
                   const std::function<void(size_t chunk, size_t begin,
                                            size_t end)>& body);

  /// Runs `task` on a pool worker, detached: Submit returns immediately
  /// and never reports the task's completion to the caller — tasks
  /// coordinate their own lifecycle (the server counts open connections
  /// itself). Tasks may block indefinitely (socket reads) and may re-enter
  /// the pool via ParallelFor; the pool is grown so blocked tasks never
  /// starve regions or other tasks. `task` must not throw.
  void Submit(std::function<void()> task);

  /// Lock-coherent snapshot of the lifetime counters.
  ThreadPoolCounters Counters() const;

 private:
  ThreadPool();
  struct Impl;

  void RunRegion(size_t n, const ChunkLayout& layout, size_t participants,
                 ParallelStats* stats,
                 const std::function<void(size_t, size_t, size_t)>& body);

  // Allocated eagerly in the constructor: Shared()'s magic-static
  // initialization is the only synchronization point, so all state must
  // exist before the first concurrent caller.
  Impl* const impl_;
};

}  // namespace pathalg

#endif  // PATHALG_COMMON_THREAD_POOL_H_
