#ifndef PATHALG_COMMON_THREAD_ANNOTATIONS_H_
#define PATHALG_COMMON_THREAD_ANNOTATIONS_H_

/// \file thread_annotations.h
/// Portable macros for Clang's Thread Safety Analysis
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under Clang
/// they expand to the `__attribute__((...))` annotations the analysis
/// consumes; everywhere else (GCC builds the default tier-1 tree) they
/// expand to nothing, so the annotations cost zero and the code stays
/// portable.
///
/// The annotations turn the repo's lock discipline into compile-time
/// contracts: every mutex-guarded member carries PA_GUARDED_BY, every
/// function with a lock precondition carries PA_REQUIRES, and the `tidy`
/// preset builds with `-Werror=thread-safety` so a guarded member read
/// outside its mutex is a build break, not a TSan roll of the dice.
/// The concurrency surfaces that use them (common/thread_pool.cc,
/// engine/plan_cache.h, server/graph_catalog.h, server/session.h,
/// server/tcp_server.cc) go through the annotated wrappers in
/// common/mutex.h — the analysis cannot see through an unannotated
/// std::mutex/std::lock_guard, so raw standard-library locking in those
/// trees is itself a review finding.
///
/// Macro set (names follow the Clang docs, PA_-prefixed):
///   PA_CAPABILITY(name)      type is a lockable capability
///   PA_SCOPED_CAPABILITY     RAII type that acquires in ctor/releases in dtor
///   PA_GUARDED_BY(mu)        member may only be touched while mu is held
///   PA_PT_GUARDED_BY(mu)     pointee may only be touched while mu is held
///   PA_REQUIRES(mu, ...)     caller must hold mu (use for _Locked helpers)
///   PA_ACQUIRE(mu, ...)      function acquires mu and does not release it
///   PA_RELEASE(mu, ...)      function releases mu
///   PA_TRY_ACQUIRE(b, mu)    returns `b` iff mu was acquired
///   PA_EXCLUDES(mu, ...)     caller must NOT hold mu (self-locking fns)
///   PA_RETURN_CAPABILITY(mu) function returns a reference to mu
///   PA_NO_THREAD_SAFETY_ANALYSIS  opt a function out (document why!)

#if defined(__clang__)
#define PA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PA_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define PA_CAPABILITY(x) PA_THREAD_ANNOTATION(capability(x))
#define PA_SCOPED_CAPABILITY PA_THREAD_ANNOTATION(scoped_lockable)
#define PA_GUARDED_BY(x) PA_THREAD_ANNOTATION(guarded_by(x))
#define PA_PT_GUARDED_BY(x) PA_THREAD_ANNOTATION(pt_guarded_by(x))
#define PA_REQUIRES(...) PA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PA_ACQUIRE(...) PA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PA_RELEASE(...) PA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PA_TRY_ACQUIRE(...) \
  PA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define PA_EXCLUDES(...) PA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PA_RETURN_CAPABILITY(x) PA_THREAD_ANNOTATION(lock_returned(x))
#define PA_ACQUIRED_BEFORE(...) \
  PA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define PA_ACQUIRED_AFTER(...) PA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define PA_NO_THREAD_SAFETY_ANALYSIS \
  PA_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // PATHALG_COMMON_THREAD_ANNOTATIONS_H_
