#include "common/str_util.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace pathalg {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool ParseSizeT(std::string_view s, size_t* out) {
  size_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = value;
  return true;
}

std::vector<std::string> SplitEscaped(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      cur.push_back(s[i + 1]);
      ++i;
    } else if (s[i] == sep) {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(s[i]);
    }
  }
  out.push_back(std::move(cur));
  return out;
}

std::string EscapeSeparator(std::string_view s, char sep) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == sep || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

std::string QuoteString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace pathalg
