#include "common/status.h"

namespace pathalg {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& st) {
  return os << st.ToString();
}

}  // namespace pathalg
