#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pathalg {

size_t ParallelOptions::EffectiveThreads() const {
  size_t t = threads;
  if (t == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    t = hw == 0 ? 1 : hw;
  }
  return std::min(t, kMaxThreads);
}

bool ParallelOptions::ShouldParallelize(size_t n) const {
  const size_t chunk = std::max<size_t>(min_chunk, 1);
  return EffectiveThreads() > 1 && n >= 2 * chunk;
}

ChunkLayout ChunkLayout::For(size_t n, size_t threads, size_t min_chunk) {
  ChunkLayout layout;
  if (n == 0) return layout;
  min_chunk = std::max<size_t>(min_chunk, 1);
  threads = std::max<size_t>(threads, 1);
  // Over-decompose (several chunks per participant) so stealing can
  // rebalance skewed per-item costs — e.g. ϕ frontier paths whose
  // First(p) bucket is a social-graph hub — but never below min_chunk.
  constexpr size_t kChunksPerThread = 8;
  const size_t by_size = n / min_chunk;  // floor: chunks never shrink below
  const size_t chunks = std::max<size_t>(
      1, std::min(by_size, threads * kChunksPerThread));
  layout.num_chunks = chunks;
  layout.chunk_size = (n + chunks - 1) / chunks;
  // The rounded-up chunk size may cover n with fewer chunks; shrink so
  // Range() never yields an empty chunk.
  layout.num_chunks = (n + layout.chunk_size - 1) / layout.chunk_size;
  return layout;
}

namespace {

/// One parallel region: the shared claim/steal state. Heap-allocated and
/// shared with the workers so a worker that wakes late (after the region
/// completed) never touches freed memory.
struct Region {
  const std::function<void(size_t, size_t, size_t)>* body = nullptr;
  size_t n = 0;
  ChunkLayout layout;
  size_t participants = 0;
  /// cursor[p] claims chunk indices in [partition_begin[p],
  /// partition_begin[p+1]); claiming past the end is harmless (checked
  /// against the bound before executing).
  std::vector<std::atomic<size_t>> cursors;
  std::vector<size_t> partition_end;
  /// Per-participant counters, summed by the caller after the barrier.
  std::vector<size_t> chunks_run;
  std::vector<size_t> steals;
  /// Completed chunk executions; the release/acquire pair on this counter
  /// is the happens-before edge that lets the caller read body results.
  std::atomic<size_t> executed{0};

  explicit Region(size_t p)
      : cursors(p), partition_end(p), chunks_run(p, 0), steals(p, 0) {}

  /// Claims and executes chunks until none remain anywhere: own partition
  /// first, then round-robin stealing from the other participants.
  void Work(size_t self) {
    auto run = [&](size_t chunk, bool stolen) {
      auto [begin, end] = layout.Range(chunk, n);
      (*body)(chunk, begin, end);
      ++chunks_run[self];
      if (stolen) ++steals[self];
      executed.fetch_add(1, std::memory_order_release);
    };
    for (;;) {
      const size_t chunk =
          cursors[self].fetch_add(1, std::memory_order_relaxed);
      if (chunk >= partition_end[self]) break;
      run(chunk, /*stolen=*/false);
    }
    for (size_t i = 1; i < participants; ++i) {
      const size_t victim = (self + i) % participants;
      for (;;) {
        if (cursors[victim].load(std::memory_order_relaxed) >=
            partition_end[victim]) {
          break;
        }
        const size_t chunk =
            cursors[victim].fetch_add(1, std::memory_order_relaxed);
        if (chunk >= partition_end[victim]) break;
        run(chunk, /*stolen=*/true);
      }
    }
  }
};

}  // namespace

struct ThreadPool::Impl {
  std::mutex region_mutex;  // one region at a time
  std::mutex m;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::vector<std::thread> workers;
  std::shared_ptr<Region> region;  // non-null while a region is live
  uint64_t generation = 0;
  bool shutdown = false;

  /// Workers idle here between regions. A worker that misses a whole
  /// region (woke after it completed) simply waits for the next
  /// generation; Region's shared_ptr keeps the claim state alive for
  /// stragglers mid-region.
  void WorkerLoop(size_t worker_index) {
    uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Region> r;
      {
        std::unique_lock<std::mutex> lock(m);
        work_cv.wait(lock, [&] {
          return shutdown || (region != nullptr && generation != seen);
        });
        if (shutdown) return;
        seen = generation;
        r = region;
      }
      // Participant 0 is the calling thread; workers take 1..P-1. Extra
      // workers (pool grown beyond this region's request) sit it out.
      const size_t self = worker_index + 1;
      if (self >= r->participants) continue;
      r->Work(self);
      std::lock_guard<std::mutex> lock(m);
      done_cv.notify_all();
    }
  }

  void EnsureWorkers(size_t count) {
    std::lock_guard<std::mutex> lock(m);
    while (workers.size() < count) {
      const size_t index = workers.size();
      workers.emplace_back([this, index] { WorkerLoop(index); });
    }
  }
};

ThreadPool::ThreadPool() : impl_(new Impl()) {}

ThreadPool& ThreadPool::Shared() {
  // Leaked intentionally: worker threads may outlive static destructors
  // (a detached-at-exit pool avoids joining during unwind of the very
  // runtime the workers still use).
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

ChunkLayout ThreadPool::PlanFor(size_t n, const ParallelOptions& options) {
  if (n == 0) return ChunkLayout();
  if (!options.ShouldParallelize(n)) {
    ChunkLayout inline_layout;
    inline_layout.num_chunks = 1;
    inline_layout.chunk_size = n;
    return inline_layout;
  }
  return ChunkLayout::For(n, options.EffectiveThreads(), options.min_chunk);
}

void ThreadPool::ParallelFor(
    size_t n, const ParallelOptions& options, ParallelStats* stats,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (n == 0) return;
  const ChunkLayout layout = PlanFor(n, options);
  if (layout.num_chunks <= 1) {
    // chunks_executed counts pool-region chunks only; an inline run is a
    // fallback (when parallelism was requested), not a chunk.
    if (stats != nullptr && !options.ShouldParallelize(n) &&
        options.EffectiveThreads() > 1) {
      ++stats->serial_fallbacks;
    }
    body(0, 0, n);
    return;
  }
  const size_t participants =
      std::min(options.EffectiveThreads(), layout.num_chunks);
  RunRegion(n, layout, participants, stats, body);
}

void ThreadPool::RunRegion(
    size_t n, const ChunkLayout& layout, size_t participants,
    ParallelStats* stats,
    const std::function<void(size_t, size_t, size_t)>& body) {
  Impl* pool = impl_;
  pool->EnsureWorkers(participants - 1);

  // One region at a time: a second evaluating thread queues here rather
  // than interleaving two claim states through the same workers.
  std::lock_guard<std::mutex> region_lock(pool->region_mutex);

  auto region = std::make_shared<Region>(participants);
  region->body = &body;
  region->n = n;
  region->layout = layout;
  region->participants = participants;
  for (size_t p = 0; p < participants; ++p) {
    region->cursors[p].store(p * layout.num_chunks / participants,
                             std::memory_order_relaxed);
    region->partition_end[p] = (p + 1) * layout.num_chunks / participants;
  }
  {
    std::lock_guard<std::mutex> lock(pool->m);
    pool->region = region;
    ++pool->generation;
  }
  pool->work_cv.notify_all();

  region->Work(0);  // the caller is participant 0

  {
    std::unique_lock<std::mutex> lock(pool->m);
    pool->done_cv.wait(lock, [&] {
      return region->executed.load(std::memory_order_acquire) ==
             layout.num_chunks;
    });
    pool->region = nullptr;
  }
  if (stats != nullptr) {
    for (size_t p = 0; p < participants; ++p) {
      stats->chunks_executed += region->chunks_run[p];
      stats->steal_count += region->steals[p];
    }
  }
}

}  // namespace pathalg
