#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace pathalg {

size_t ParallelOptions::EffectiveThreads() const {
  size_t t = threads;
  if (t == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    t = hw == 0 ? 1 : hw;
  }
  return std::min(t, kMaxThreads);
}

bool ParallelOptions::ShouldParallelize(size_t n) const {
  const size_t chunk = std::max<size_t>(min_chunk, 1);
  return EffectiveThreads() > 1 && n >= 2 * chunk;
}

ChunkLayout ChunkLayout::For(size_t n, size_t threads, size_t min_chunk) {
  ChunkLayout layout;
  if (n == 0) return layout;
  min_chunk = std::max<size_t>(min_chunk, 1);
  threads = std::max<size_t>(threads, 1);
  // Over-decompose (several chunks per participant) so stealing can
  // rebalance skewed per-item costs — e.g. ϕ frontier paths whose
  // First(p) bucket is a social-graph hub — but never below min_chunk.
  constexpr size_t kChunksPerThread = 8;
  const size_t by_size = n / min_chunk;  // floor: chunks never shrink below
  const size_t chunks = std::max<size_t>(
      1, std::min(by_size, threads * kChunksPerThread));
  layout.num_chunks = chunks;
  layout.chunk_size = (n + chunks - 1) / chunks;
  // The rounded-up chunk size may cover n with fewer chunks; shrink so
  // Range() never yields an empty chunk.
  layout.num_chunks = (n + layout.chunk_size - 1) / layout.chunk_size;
  return layout;
}

namespace {

/// One parallel region: the shared claim/steal state. Heap-allocated and
/// shared with the workers so a worker that wakes late (after the region
/// completed) never touches freed memory.
struct Region {
  const std::function<void(size_t, size_t, size_t)>* body = nullptr;
  size_t n = 0;
  ChunkLayout layout;
  size_t participants = 0;
  /// Participant slots 1..participants-1, claimed dynamically by
  /// whichever workers arrive first (slot 0 is the caller). Binding
  /// slots to static worker indices would let long-lived Submit tasks
  /// (the server's connection handlers) occupy the low indices and
  /// silently serialize every region even though idle workers exist.
  std::atomic<size_t> next_participant{1};
  /// cursor[p] claims chunk indices in [partition_begin[p],
  /// partition_begin[p+1]); claiming past the end is harmless (checked
  /// against the bound before executing).
  std::vector<std::atomic<size_t>> cursors;
  std::vector<size_t> partition_end;
  /// Per-participant counters, summed by the caller after the barrier.
  std::vector<size_t> chunks_run;
  std::vector<size_t> steals;
  /// Completed chunk executions; the release/acquire pair on this counter
  /// is the happens-before edge that lets the caller read body results.
  std::atomic<size_t> executed{0};

  explicit Region(size_t p)
      : cursors(p), partition_end(p), chunks_run(p, 0), steals(p, 0) {}

  /// Claims and executes chunks until none remain anywhere: own partition
  /// first, then round-robin stealing from the other participants.
  void Work(size_t self) {
    auto run = [&](size_t chunk, bool stolen) {
      auto [begin, end] = layout.Range(chunk, n);
      (*body)(chunk, begin, end);
      ++chunks_run[self];
      if (stolen) ++steals[self];
      executed.fetch_add(1, std::memory_order_release);
    };
    for (;;) {
      const size_t chunk =
          cursors[self].fetch_add(1, std::memory_order_relaxed);
      if (chunk >= partition_end[self]) break;
      run(chunk, /*stolen=*/false);
    }
    for (size_t i = 1; i < participants; ++i) {
      const size_t victim = (self + i) % participants;
      for (;;) {
        if (cursors[victim].load(std::memory_order_relaxed) >=
            partition_end[victim]) {
          break;
        }
        const size_t chunk =
            cursors[victim].fetch_add(1, std::memory_order_relaxed);
        if (chunk >= partition_end[victim]) break;
        run(chunk, /*stolen=*/true);
      }
    }
  }
};

}  // namespace

struct ThreadPool::Impl {
  Mutex region_mutex;  // one region at a time (serialization only; no data)
  Mutex m;
  CondVar work_cv;
  CondVar done_cv;
  std::vector<std::thread> workers PA_GUARDED_BY(m);
  /// Non-null while a region is live.
  std::shared_ptr<Region> region PA_GUARDED_BY(m);
  uint64_t generation PA_GUARDED_BY(m) = 0;
  bool shutdown PA_GUARDED_BY(m) = false;

  /// Detached tasks (Submit). `tasks_unfinished` counts queued + running
  /// tasks; the sizing invariant workers.size() >= tasks_unfinished +
  /// region_width_high_water guarantees every task eventually gets a
  /// worker even when every other task blocks forever, while the
  /// fork-join high-water of workers stays available for regions.
  std::deque<std::function<void()>> tasks PA_GUARDED_BY(m);
  size_t tasks_unfinished PA_GUARDED_BY(m) = 0;
  size_t region_width_high_water PA_GUARDED_BY(m) = 0;

  // Lifetime counters.
  uint64_t counter_regions PA_GUARDED_BY(m) = 0;
  uint64_t counter_chunks PA_GUARDED_BY(m) = 0;
  uint64_t counter_steals PA_GUARDED_BY(m) = 0;
  uint64_t counter_tasks_submitted PA_GUARDED_BY(m) = 0;
  uint64_t counter_tasks_completed PA_GUARDED_BY(m) = 0;

  /// Workers idle here between regions and tasks. A worker that misses a
  /// whole region (woke after it completed) simply waits for the next
  /// generation; Region's shared_ptr keeps the claim state alive for
  /// stragglers mid-region. Regions are preferred over tasks: they are
  /// short and latency-sensitive (one query's operator), while tasks are
  /// long-lived; the sizing invariant guarantees tasks still run.
  void WorkerLoop() PA_EXCLUDES(m) {
    uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Region> r;
      std::function<void()> task;
      {
        MutexLock lock(m);
        // Explicit while-loop (not a predicate lambda): the guarded
        // reads in the condition stay inside the analyzed lock scope.
        while (!shutdown && !(region != nullptr && generation != seen) &&
               tasks.empty()) {
          work_cv.Wait(m);
        }
        if (shutdown) return;
        if (region != nullptr && generation != seen) {
          seen = generation;
          r = region;
        } else {
          task = std::move(tasks.front());
          tasks.pop_front();
        }
      }
      if (r != nullptr) {
        // Participant 0 is the calling thread; arriving workers claim
        // slots 1..P-1 first-come-first-served. Latecomers (pool grown
        // beyond this region's request, or woken after the region
        // filled) sit it out.
        const size_t self =
            r->next_participant.fetch_add(1, std::memory_order_relaxed);
        if (self >= r->participants) continue;
        r->Work(self);
        MutexLock lock(m);
        done_cv.NotifyAll();
        continue;
      }
      task();
      MutexLock lock(m);
      --tasks_unfinished;
      ++counter_tasks_completed;
    }
  }

  void EnsureWorkers(size_t count) PA_EXCLUDES(m) {
    MutexLock lock(m);
    while (workers.size() < count) {
      workers.emplace_back([this] { WorkerLoop(); });
    }
  }
};

ThreadPool::ThreadPool() : impl_(new Impl()) {}

ThreadPool& ThreadPool::Shared() {
  // Leaked intentionally: worker threads may outlive static destructors
  // (a detached-at-exit pool avoids joining during unwind of the very
  // runtime the workers still use).
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

ThreadPool::~ThreadPool() {
  // Swap the worker vector out under the lock: joining while reading
  // impl_->workers unlocked was a (benign-by-usage, but unprovable)
  // guarded-member access the thread-safety analysis rightly rejects —
  // EnsureWorkers mutates the vector under m.
  std::vector<std::thread> workers;
  {
    MutexLock lock(impl_->m);
    impl_->shutdown = true;
    workers.swap(impl_->workers);
  }
  impl_->work_cv.NotifyAll();
  for (std::thread& t : workers) t.join();
  delete impl_;
}

ChunkLayout ThreadPool::PlanFor(size_t n, const ParallelOptions& options) {
  if (n == 0) return ChunkLayout();
  if (!options.ShouldParallelize(n)) {
    ChunkLayout inline_layout;
    inline_layout.num_chunks = 1;
    inline_layout.chunk_size = n;
    return inline_layout;
  }
  return ChunkLayout::For(n, options.EffectiveThreads(), options.min_chunk);
}

void ThreadPool::ParallelFor(
    size_t n, const ParallelOptions& options, ParallelStats* stats,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (n == 0) return;
  const ChunkLayout layout = PlanFor(n, options);
  if (layout.num_chunks <= 1) {
    // chunks_executed counts pool-region chunks only; an inline run is a
    // fallback (when parallelism was requested), not a chunk.
    if (stats != nullptr && !options.ShouldParallelize(n) &&
        options.EffectiveThreads() > 1) {
      ++stats->serial_fallbacks;
    }
    body(0, 0, n);
    return;
  }
  const size_t participants =
      std::min(options.EffectiveThreads(), layout.num_chunks);
  RunRegion(n, layout, participants, stats, body);
}

void ThreadPool::RunRegion(
    size_t n, const ChunkLayout& layout, size_t participants,
    ParallelStats* stats,
    const std::function<void(size_t, size_t, size_t)>& body) {
  Impl* pool = impl_;
  {
    // Size past any currently-unfinished detached tasks: a server full of
    // blocked connection handlers must still leave participants-1 workers
    // free to help this region.
    size_t need;
    {
      MutexLock lock(pool->m);
      pool->region_width_high_water =
          std::max(pool->region_width_high_water, participants - 1);
      need = pool->tasks_unfinished + participants - 1;
    }
    pool->EnsureWorkers(need);
  }

  // One region at a time: a second evaluating thread queues here rather
  // than interleaving two claim states through the same workers.
  MutexLock region_lock(pool->region_mutex);

  auto region = std::make_shared<Region>(participants);
  region->body = &body;
  region->n = n;
  region->layout = layout;
  region->participants = participants;
  for (size_t p = 0; p < participants; ++p) {
    region->cursors[p].store(p * layout.num_chunks / participants,
                             std::memory_order_relaxed);
    region->partition_end[p] = (p + 1) * layout.num_chunks / participants;
  }
  {
    MutexLock lock(pool->m);
    pool->region = region;
    ++pool->generation;
  }
  pool->work_cv.NotifyAll();

  region->Work(0);  // the caller is participant 0

  {
    MutexLock lock(pool->m);
    while (region->executed.load(std::memory_order_acquire) !=
           layout.num_chunks) {
      pool->done_cv.Wait(pool->m);
    }
    pool->region = nullptr;
  }
  size_t region_chunks = 0, region_steals = 0;
  for (size_t p = 0; p < participants; ++p) {
    region_chunks += region->chunks_run[p];
    region_steals += region->steals[p];
  }
  if (stats != nullptr) {
    stats->chunks_executed += region_chunks;
    stats->steal_count += region_steals;
  }
  {
    MutexLock lock(pool->m);
    ++pool->counter_regions;
    pool->counter_chunks += region_chunks;
    pool->counter_steals += region_steals;
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t need;
  {
    MutexLock lock(impl_->m);
    impl_->tasks.push_back(std::move(task));
    ++impl_->tasks_unfinished;
    ++impl_->counter_tasks_submitted;
    need = impl_->tasks_unfinished + impl_->region_width_high_water;
  }
  impl_->EnsureWorkers(need);
  impl_->work_cv.NotifyAll();
}

ThreadPoolCounters ThreadPool::Counters() const {
  MutexLock lock(impl_->m);
  ThreadPoolCounters c;
  c.workers = impl_->workers.size();
  c.regions = impl_->counter_regions;
  c.chunks = impl_->counter_chunks;
  c.steals = impl_->counter_steals;
  c.tasks_submitted = impl_->counter_tasks_submitted;
  c.tasks_completed = impl_->counter_tasks_completed;
  return c;
}

}  // namespace pathalg
