#ifndef PATHALG_COMMON_TIMING_H_
#define PATHALG_COMMON_TIMING_H_

/// \file timing.h
/// The one clock used for all instrumentation (plan/evaluator.h,
/// src/engine): monotonic, reported in integer microseconds.

#include <chrono>
#include <cstdint>

namespace pathalg {

using SteadyClock = std::chrono::steady_clock;

/// Wall-clock microseconds elapsed since `start`.
inline uint64_t MicrosSince(SteadyClock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          SteadyClock::now() - start)
          .count());
}

}  // namespace pathalg

#endif  // PATHALG_COMMON_TIMING_H_
