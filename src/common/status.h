#ifndef PATHALG_COMMON_STATUS_H_
#define PATHALG_COMMON_STATUS_H_

/// \file status.h
/// Error-handling substrate in the style of Apache Arrow / RocksDB: a cheap
/// `Status` value that is either OK or carries an error code plus a message.
/// The library never throws across public API boundaries; every fallible
/// operation returns a `Status` or a `Result<T>` (see result.h).

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace pathalg {

/// Machine-readable classification of an error.
enum class StatusCode : int {
  kOk = 0,
  /// Caller passed an argument that violates the API contract.
  kInvalidArgument = 1,
  /// An entity (node, edge, label, property, partition, ...) was not found.
  kNotFound = 2,
  /// An evaluation budget (path length / path count / iterations) was hit;
  /// used by ϕWalk on cyclic inputs where the true answer is infinite (§4).
  kResourceExhausted = 3,
  /// Input text failed to lex/parse (regex or GQL query).
  kParseError = 4,
  /// The operation is valid in general but not implemented / not applicable
  /// to this combination of operands.
  kNotImplemented = 5,
  /// Internal invariant violation: a bug in this library, not in the caller.
  kInternal = 6,
};

/// Human-readable name of a status code, e.g. "Invalid argument".
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. OK status is represented by a null pointer so
/// that the success path costs a single pointer test and no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// The error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& st);

/// Propagates a non-OK status to the caller.
#define PATHALG_RETURN_NOT_OK(expr)                 \
  do {                                              \
    ::pathalg::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                      \
  } while (false)

}  // namespace pathalg

#endif  // PATHALG_COMMON_STATUS_H_
