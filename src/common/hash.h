#ifndef PATHALG_COMMON_HASH_H_
#define PATHALG_COMMON_HASH_H_

/// \file hash.h
/// Hash combinators used by PathSet deduplication and plan hashing.

#include <cstddef>
#include <cstdint>
#include <functional>

namespace pathalg {

/// Mixes `v` into seed `h` (boost::hash_combine-style, 64-bit constants).
inline void HashCombine(size_t& h, size_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

/// Hashes a range of integral ids.
template <typename It>
size_t HashRange(It begin, It end, size_t seed = 0) {
  size_t h = seed;
  for (It it = begin; it != end; ++it) {
    HashCombine(h, std::hash<uint64_t>{}(static_cast<uint64_t>(*it)));
  }
  return h;
}

}  // namespace pathalg

#endif  // PATHALG_COMMON_HASH_H_
