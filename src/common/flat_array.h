#ifndef PATHALG_COMMON_FLAT_ARRAY_H_
#define PATHALG_COMMON_FLAT_ARRAY_H_

/// \file flat_array.h
/// A flat, immutable-after-construction array of trivially copyable
/// elements that either *owns* its storage (a std::vector moved in) or
/// *views* storage owned by someone else — in practice a section of a
/// memory-mapped graph snapshot (src/storage/), whose mapping the owning
/// PropertyGraph keeps alive. Readers are oblivious to which: operator[],
/// data() and iteration behave identically, which is what lets
/// PropertyGraph::OutEdges() serve CSR runs zero-copy straight out of a
/// mapping through the same code path that serves freshly built graphs.

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

namespace pathalg {

template <typename T>
class FlatArray {
  static_assert(std::is_trivially_copyable<T>::value,
                "FlatArray sections are raw bytes on disk");

 public:
  FlatArray() = default;

  /// Owning: adopts `v`'s buffer.
  explicit FlatArray(std::vector<T> v) : owned_(std::move(v)) {
    data_ = owned_.data();
    size_ = owned_.size();
  }

  /// Non-owning view of `[data, data + size)`; the caller guarantees the
  /// backing storage outlives this array (PropertyGraph holds the
  /// mapping keepalive).
  static FlatArray View(const T* data, size_t size) {
    FlatArray a;
    a.data_ = data;
    a.size_ = size;
    return a;
  }

  FlatArray(const FlatArray& other) { CopyFrom(other); }
  FlatArray& operator=(const FlatArray& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  FlatArray(FlatArray&& other) noexcept { MoveFrom(std::move(other)); }
  FlatArray& operator=(FlatArray&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T& back() const { return data_[size_ - 1]; }

  /// True when this array owns its elements (vs. viewing a mapping).
  bool owns() const { return owned_.data() == data_ || size_ == 0; }

 private:
  void CopyFrom(const FlatArray& other) {
    // A copy always owns: a view into someone else's mapping cannot
    // promise the keepalive travels with it.
    owned_.assign(other.begin(), other.end());
    data_ = owned_.data();
    size_ = owned_.size();
  }
  void MoveFrom(FlatArray&& other) {
    if (other.owned_.data() == other.data_) {
      // Owning: the vector move transfers the heap buffer, so the view
      // pointers stay valid.
      owned_ = std::move(other.owned_);
      data_ = owned_.data();
      size_ = owned_.size();
    } else {
      owned_.clear();
      data_ = other.data_;
      size_ = other.size_;
    }
    other.owned_.clear();
    other.data_ = nullptr;
    other.size_ = 0;
  }

  const T* data_ = nullptr;
  size_t size_ = 0;
  std::vector<T> owned_;
};

}  // namespace pathalg

#endif  // PATHALG_COMMON_FLAT_ARRAY_H_
