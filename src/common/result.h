#ifndef PATHALG_COMMON_RESULT_H_
#define PATHALG_COMMON_RESULT_H_

/// \file result.h
/// `Result<T>` carries either a value of type `T` or a non-OK `Status`,
/// mirroring `arrow::Result`. Use `PATHALG_ASSIGN_OR_RETURN` to unwrap.

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace pathalg {

template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure). Constructing a
  /// Result from an OK status is a programming error and is normalized to an
  /// internal error so that `ok()`/`status()` stay coherent.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The failure status, or OK if this result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or, on failure, the supplied fallback.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Unwraps a Result into `lhs`, returning the error status on failure.
/// `lhs` may be a declaration: PATHALG_ASSIGN_OR_RETURN(auto v, Foo());
#define PATHALG_CONCAT_IMPL(a, b) a##b
#define PATHALG_CONCAT(a, b) PATHALG_CONCAT_IMPL(a, b)
#define PATHALG_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  auto PATHALG_CONCAT(_res_, __LINE__) = (rexpr);                  \
  if (!PATHALG_CONCAT(_res_, __LINE__).ok())                       \
    return PATHALG_CONCAT(_res_, __LINE__).status();               \
  lhs = std::move(PATHALG_CONCAT(_res_, __LINE__)).value()

}  // namespace pathalg

#endif  // PATHALG_COMMON_RESULT_H_
