#ifndef PATHALG_COMMON_STR_UTIL_H_
#define PATHALG_COMMON_STR_UTIL_H_

/// \file str_util.h
/// Small string helpers shared by the parsers, printers and CSV loader.

#include <string>
#include <string_view>
#include <vector>

namespace pathalg {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace, dropping empty fields. The views
/// alias `s` — the caller keeps the backing string alive.
std::vector<std::string_view> SplitWhitespace(std::string_view s);

/// Like Split, but a backslash escapes the next character: `a\,b,c` yields
/// {"a,b", "c"}. Used by the CSV graph format so values may contain the
/// separator.
std::vector<std::string> SplitEscaped(std::string_view s, char sep);

/// Escapes `sep` and backslash with a backslash (inverse of SplitEscaped's
/// unescaping).
std::string EscapeSeparator(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Parses `s` as a whole non-negative decimal integer into `*out`;
/// returns false on empty input, sign characters, trailing junk or
/// overflow. The one number grammar behind the protocol-facing knobs
/// (`!limits`/`!threads`, `.gqlw` directives), so the surfaces cannot
/// drift.
bool ParseSizeT(std::string_view s, size_t* out);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Case-insensitive ASCII equality ("WALK" == "walk").
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Uppercases ASCII letters.
std::string ToUpper(std::string_view s);

/// Escapes `"` and `\` and wraps in double quotes, for printer output.
std::string QuoteString(std::string_view s);

}  // namespace pathalg

#endif  // PATHALG_COMMON_STR_UTIL_H_
