#ifndef PATHALG_COMMON_FAULT_INJECTION_H_
#define PATHALG_COMMON_FAULT_INJECTION_H_

/// \file fault_injection.h
/// Seeded, deterministic fault injection for the storage and server
/// layers. Each named site below wraps one real failure surface; code at
/// a site asks `FaultInjector::Global().ShouldFail(site)` and, on true,
/// behaves exactly as if the underlying I/O failed (same Status, same
/// errno-shaped path). Everything is off by default and costs one relaxed
/// atomic load per check when off.
///
/// Firing is a pure function of (seed, site, per-site call ordinal): call
/// n at a site fires iff `one_in == 1` or
/// `SplitMix64(seed ^ site ^ n) % one_in == 0`. Single-threaded call
/// sequences therefore replay bit-for-bit from a seed; concurrent
/// callers each draw a unique ordinal (fetch_add), so the *set* of fired
/// ordinals is still seed-determined even when their thread assignment
/// is not.
///
/// Enablement: tests call Configure()/Disable() directly;
/// `pathalg_serve --fault-inject <spec>` enables per-process. Spec
/// grammar: `seed=S` plus `<site>=N` ("fire one in N arms at <site>";
/// N=1 fires always, N=0 disables) with `*` for every site, joined by
/// ';' — e.g. `seed=42;snapshot-read=1` or `seed=7;*=4`.

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace pathalg {

/// The registered injection sites. Names (FaultSiteName) are the spec /
/// !stats spelling.
enum class FaultSite : int {
  kSnapshotRead = 0,  // snapshot image validation/decode (SnapshotReader)
  kSnapshotMmap,      // snapshot file open/mmap (MappedFile)
  kCatalogLoad,       // graph build inside GraphCatalog
  kSocketWrite,       // server response write to a client socket
  kRecordFlush,       // !record workload-capture file flush
};
inline constexpr int kNumFaultSites = 5;

const char* FaultSiteName(FaultSite site);

class FaultInjector {
 public:
  /// The process-wide injector every instrumented site consults.
  static FaultInjector& Global();

  /// Parses and applies a spec (grammar above). Replaces the previous
  /// configuration wholesale; counters are reset. InvalidArgument on a
  /// malformed spec (the previous configuration is kept).
  Status Configure(const std::string& spec);

  /// Turns every site off and zeroes counters.
  void Disable();

  /// Draws this call's ordinal at `site` and reports whether it fires.
  /// Increments the site's calls counter; injected counter too on fire.
  bool ShouldFail(FaultSite site);

  /// True when any site has a nonzero rate (cheap; used to skip
  /// diagnostics plumbing when injection is off).
  bool Enabled() const;

  uint64_t Calls(FaultSite site) const;
  uint64_t Injected(FaultSite site) const;

 private:
  FaultInjector() = default;

  std::atomic<uint64_t> seed_{0};
  std::atomic<uint64_t> one_in_[kNumFaultSites] = {};
  std::atomic<uint64_t> calls_[kNumFaultSites] = {};
  std::atomic<uint64_t> injected_[kNumFaultSites] = {};
};

/// The Status an instrumented site returns for an injected failure —
/// spelled like a real I/O error but tagged so tests can tell the two
/// apart. Always Status::Internal.
Status InjectedFault(FaultSite site);

}  // namespace pathalg

#endif  // PATHALG_COMMON_FAULT_INJECTION_H_
