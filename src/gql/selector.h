#ifndef PATHALG_GQL_SELECTOR_H_
#define PATHALG_GQL_SELECTOR_H_

/// \file selector.h
/// GQL selectors (Table 1) and restrictors (Table 2). Restrictors map 1:1
/// onto PathSemantics (the paper's extended grammar §7.1 additionally
/// allows SHORTEST as a restrictor); selectors are the path-mode
/// post-processing that Table 7 translates into γ/τ/π pipelines.

#include <cstdint>
#include <string>

#include "algebra/recursive.h"

namespace pathalg {

enum class SelectorKind {
  kAll,             // ALL
  kAnyShortest,     // ANY SHORTEST
  kAllShortest,     // ALL SHORTEST
  kAny,             // ANY
  kAnyK,            // ANY k
  kShortestK,       // SHORTEST k
  kShortestKGroup,  // SHORTEST k GROUP
};

struct Selector {
  SelectorKind kind = SelectorKind::kAll;
  /// Only for kAnyK / kShortestK / kShortestKGroup.
  size_t k = 1;

  /// GQL surface syntax, e.g. "SHORTEST 2 GROUP".
  std::string ToString() const;
};

/// The informal description from Table 1 (for docs and EXPLAIN output).
const char* SelectorSemantics(SelectorKind kind);

/// The informal description from Table 2.
const char* RestrictorSemantics(PathSemantics semantics);

}  // namespace pathalg

#endif  // PATHALG_GQL_SELECTOR_H_
