#ifndef PATHALG_GQL_TRANSLATE_H_
#define PATHALG_GQL_TRANSLATE_H_

/// \file translate.h
/// Table 7: the translation of every GQL selector–restrictor combination
/// into a path-algebra expression.
///
///   ALL r ppe               → π(*,*,*)(γ(ϕr(RE)))
///   ANY SHORTEST r ppe      → π(*,*,1)(τA(γST(ϕr(RE))))
///   ALL SHORTEST r ppe      → π(*,1,*)(τG(γSTL(ϕr(RE))))
///   ANY r ppe               → π(*,*,1)(γST(ϕr(RE)))
///   ANY k r ppe             → π(*,*,k)(γST(ϕr(RE)))
///   SHORTEST k r ppe        → π(*,*,k)(τA(γST(ϕr(RE))))
///   SHORTEST k GROUP r ppe  → π(*,k,*)(τG(γSTL(ϕr(RE))))
///
/// `RE` is the plan compiled from the path-pattern's regex with the
/// restrictor applied to its ϕ nodes (regex/compile.h); `pattern_plan`
/// below is that plan, including any endpoint/WHERE selections.

#include "gql/selector.h"
#include "plan/plan.h"

namespace pathalg {

/// Wraps `pattern_plan` in the γ/τ/π pipeline of Table 7 for `selector`.
/// The restrictor is already baked into pattern_plan's ϕ nodes.
PlanPtr TranslateSelector(const Selector& selector, PlanPtr pattern_plan);

}  // namespace pathalg

#endif  // PATHALG_GQL_TRANSLATE_H_
