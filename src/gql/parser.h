#ifndef PATHALG_GQL_PARSER_H_
#define PATHALG_GQL_PARSER_H_

/// \file parser.h
/// Parser for the paper's two query forms (§2.3 and §7.1) — the C++
/// counterpart of the paper's open-source ANTLR parser.
///
/// Standard GQL form:
///
///   MATCH <selector>? <restrictor>?
///         <var> = (<node>)-[<regex>]->(<node>)  (WHERE <condition>)?
///
///   selector   := ALL | ANY SHORTEST | ALL SHORTEST | ANY | ANY <int>
///               | SHORTEST <int> | SHORTEST <int> GROUP
///   restrictor := WALK | TRAIL | SIMPLE | ACYCLIC
///
/// Extended form (the paper's §7.1 grammar, exposing the full algebra):
///
///   MATCH (ALL|<int>) PARTITIONS (ALL|<int>) GROUPS (ALL|<int>) PATHS
///         <restrictor_ext>
///         <var> = (<node>)-[<regex>]->(<node>)  (WHERE <condition>)?
///         (GROUP BY (SOURCE)? (TARGET)? (LENGTH)?)?
///         (ORDER BY (PARTITION)? (GROUP)? (PATH)?)?
///
///   restrictor_ext := WALK | TRAIL | SIMPLE | ACYCLIC | SHORTEST
///
/// Node patterns: `(x)`, `(?x)`, `({name:"Moe"})`, `(?x {name:"Moe"})`.
/// WHERE conditions use the paper's accesses: label(first), label(last),
/// label(node(i)), label(edge(i)), first.p, last.p, node(i).p, edge(i).p,
/// len(), combined with AND / OR / NOT and = != <> < <= > >=.

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "algebra/condition.h"
#include "algebra/solution_space.h"
#include "common/result.h"
#include "gql/selector.h"
#include "graph/value.h"
#include "plan/plan.h"
#include "regex/ast.h"

namespace pathalg {

/// A node pattern `(?var :Label {key: value, ...})`; every element is
/// optional.
struct NodePattern {
  std::string var;    // empty if anonymous
  std::string label;  // empty if unconstrained
  std::vector<std::pair<std::string, Value>> properties;
};

struct ParsedQuery {
  /// Which grammar form was used.
  bool extended = false;

  // Standard form:
  Selector selector;

  // Extended form:
  ProjectionSpec projection;
  GroupKey group_by = GroupKey::kNone;
  std::optional<OrderKey> order_by;

  /// Both forms. The extended grammar allows SHORTEST here.
  PathSemantics restrictor = PathSemantics::kWalk;

  std::string path_var;
  NodePattern source;
  NodePattern target;
  RegexPtr regex;
  ConditionPtr where;  // nullptr if absent

  /// The endpoint/WHERE selection: first.p = v for each source property,
  /// last.p = v for each target property, AND'ed with the WHERE condition.
  /// nullptr when there is nothing to filter.
  ConditionPtr EndpointCondition() const;

  /// Compiles to a logical plan: regex → algebra (restrictor on every ϕ),
  /// σ for endpoints/WHERE, then the Table 7 pipeline (standard form) or
  /// the explicit γ/τ/π (extended form).
  PlanPtr ToPlan() const;

  /// §7.2-style textual plan, e.g.
  ///   Projection (ALL PARTITIONS ALL GROUPS 1 PATHS)
  ///   OrderBy (Path)
  ///   Group (Target)
  ///   Restrictor (TRAIL)
  ///   -> Recursive Join (restrictor: TRAIL)
  ///      -> Select: (label(edge(1)) = "Knows" , EDGES(G))
  std::string ToPlanText() const;
};

/// Parses a query in either form.
Result<ParsedQuery> ParseQuery(std::string_view text);

}  // namespace pathalg

#endif  // PATHALG_GQL_PARSER_H_
