#include "gql/translate.h"

namespace pathalg {

PlanPtr TranslateSelector(const Selector& selector, PlanPtr pattern_plan) {
  const std::optional<size_t> kStar = std::nullopt;
  switch (selector.kind) {
    case SelectorKind::kAll:
      // π(*,*,*)(γ(ϕ(RE)))
      return PlanNode::Project(
          {kStar, kStar, kStar},
          PlanNode::GroupBy(GroupKey::kNone, std::move(pattern_plan)));
    case SelectorKind::kAnyShortest:
      // π(*,*,1)(τA(γST(ϕ(RE))))
      return PlanNode::Project(
          {kStar, kStar, 1},
          PlanNode::OrderBy(
              OrderKey::kA,
              PlanNode::GroupBy(GroupKey::kST, std::move(pattern_plan))));
    case SelectorKind::kAllShortest:
      // π(*,1,*)(τG(γSTL(ϕ(RE))))
      return PlanNode::Project(
          {kStar, 1, kStar},
          PlanNode::OrderBy(
              OrderKey::kG,
              PlanNode::GroupBy(GroupKey::kSTL, std::move(pattern_plan))));
    case SelectorKind::kAny:
      // π(*,*,1)(γST(ϕ(RE)))
      return PlanNode::Project(
          {kStar, kStar, 1},
          PlanNode::GroupBy(GroupKey::kST, std::move(pattern_plan)));
    case SelectorKind::kAnyK:
      // π(*,*,k)(γST(ϕ(RE)))
      return PlanNode::Project(
          {kStar, kStar, selector.k},
          PlanNode::GroupBy(GroupKey::kST, std::move(pattern_plan)));
    case SelectorKind::kShortestK:
      // π(*,*,k)(τA(γST(ϕ(RE))))
      return PlanNode::Project(
          {kStar, kStar, selector.k},
          PlanNode::OrderBy(
              OrderKey::kA,
              PlanNode::GroupBy(GroupKey::kST, std::move(pattern_plan))));
    case SelectorKind::kShortestKGroup:
      // π(*,k,*)(τG(γSTL(ϕ(RE))))
      return PlanNode::Project(
          {kStar, selector.k, kStar},
          PlanNode::OrderBy(
              OrderKey::kG,
              PlanNode::GroupBy(GroupKey::kSTL, std::move(pattern_plan))));
  }
  return nullptr;
}

}  // namespace pathalg
