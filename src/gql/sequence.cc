#include "gql/sequence.h"

#include "regex/compile.h"

namespace pathalg {

Result<PlanPtr> BuildSequencePlan(const SequenceQuery& query) {
  if (query.parts.empty()) {
    return Status::InvalidArgument("sequence query needs at least one part");
  }
  PlanPtr joined;
  for (const SequencePart& part : query.parts) {
    if (part.regex == nullptr) {
      return Status::InvalidArgument("sequence part has a null regex");
    }
    CompileOptions copts;
    copts.semantics = part.restrictor;
    PlanPtr pattern = CompileRpq(part.regex, copts, part.filter);
    PlanPtr part_plan = TranslateSelector(part.selector, std::move(pattern));
    joined = joined == nullptr
                 ? std::move(part_plan)
                 : PlanNode::Join(std::move(joined), std::move(part_plan));
  }
  // Outer restrictor: the whole-path filter ρ over the concatenations
  // (§2.3: "require that the entire concatenated path be a shortest
  // trail"). ρWalk is the identity; the optimizer removes it.
  PlanPtr restricted =
      PlanNode::Restrict(query.restrictor, std::move(joined));
  return TranslateSelector(query.selector, std::move(restricted));
}

}  // namespace pathalg
