#ifndef PATHALG_GQL_QUERY_H_
#define PATHALG_GQL_QUERY_H_

/// \file query.h
/// End-to-end facade: parse → plan → optimize → evaluate. The one-call
/// entry point a downstream system embeds:
///
///   auto result = ExecuteQuery(graph,
///       "MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)");

#include <string_view>

#include "gql/parser.h"
#include "plan/evaluator.h"
#include "plan/optimizer.h"

namespace pathalg {

struct QueryOptions {
  EvalOptions eval;
  bool optimize = true;
  OptimizerOptions optimizer;
  /// Apply the restrictor to the *whole* result path in addition to the
  /// per-ϕ application the paper prescribes. The two coincide for the
  /// paper's query shapes; they differ when a restricted closure is nested
  /// under concatenation (e.g. `:a+/:b+` under TRAIL may concatenate two
  /// trails into a non-trail). Enable for strict GQL conformance.
  bool whole_path_restrictor = false;
};

/// A parsed, planned query ready for (repeated) execution.
class Query {
 public:
  /// Parses either grammar form (see gql/parser.h).
  static Result<Query> Parse(std::string_view text);

  const ParsedQuery& parsed() const { return parsed_; }
  /// The unoptimized logical plan.
  const PlanPtr& plan() const { return plan_; }

  /// Evaluates against `g`; applies the optimizer per `options`.
  Result<PathSet> Execute(const PropertyGraph& g,
                          const QueryOptions& options = {}) const;

  /// The plan actually evaluated under `options` (after optimization).
  PlanPtr EffectivePlan(const QueryOptions& options = {}) const;

 private:
  ParsedQuery parsed_;
  PlanPtr plan_;
};

/// One-shot parse + execute.
Result<PathSet> ExecuteQuery(const PropertyGraph& g, std::string_view text,
                             const QueryOptions& options = {});

/// Canonicalizes query text for use as a plan-cache key (src/engine):
/// re-lexes and re-joins the token stream so spelling differences that
/// cannot change the parse — surrounding/internal whitespace, string-quote
/// escapes, numeric spellings — map to one key. Deliberately conservative:
/// identifier case is preserved (labels and property keys are
/// case-sensitive, and keywords cannot be told apart from identifiers at
/// the lexer level), so `match` vs `MATCH` are distinct keys — a cache
/// miss, never a wrong hit. Unlexable text normalizes to itself stripped,
/// so errors still reach the parser (which owns the diagnostics).
std::string NormalizeQueryText(std::string_view text);

/// Re-filters `paths` with the whole-path reading of a restrictor: drops
/// paths violating trail/acyclic/simple, keeps per-pair minima for
/// shortest, and is the identity for walk.
PathSet ApplyWholePathRestrictor(const PathSet& paths,
                                 PathSemantics semantics);

}  // namespace pathalg

#endif  // PATHALG_GQL_QUERY_H_
