#include "gql/query.h"

#include "common/str_util.h"
#include "gql/lexer.h"

namespace pathalg {

Result<Query> Query::Parse(std::string_view text) {
  Query q;
  PATHALG_ASSIGN_OR_RETURN(q.parsed_, ParseQuery(text));
  q.plan_ = q.parsed_.ToPlan();
  if (q.plan_ == nullptr) {
    return Status::Internal("query compiled to a null plan");
  }
  PATHALG_RETURN_NOT_OK(q.plan_->Validate());
  return q;
}

PlanPtr Query::EffectivePlan(const QueryOptions& options) const {
  if (!options.optimize) return plan_;
  return Optimize(plan_, options.optimizer).plan;
}

Result<PathSet> Query::Execute(const PropertyGraph& g,
                               const QueryOptions& options) const {
  PlanPtr plan = EffectivePlan(options);
  PATHALG_ASSIGN_OR_RETURN(PathSet result, Evaluate(g, plan, options.eval));
  if (options.whole_path_restrictor) {
    result = ApplyWholePathRestrictor(result, parsed_.restrictor);
  }
  return result;
}

Result<PathSet> ExecuteQuery(const PropertyGraph& g, std::string_view text,
                             const QueryOptions& options) {
  PATHALG_ASSIGN_OR_RETURN(Query q, Query::Parse(text));
  return q.Execute(g, options);
}

PathSet ApplyWholePathRestrictor(const PathSet& paths,
                                 PathSemantics semantics) {
  return RestrictPaths(paths, semantics);
}

std::string NormalizeQueryText(std::string_view text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) {
    // Unlexable text: strip surrounding whitespace only and let the
    // parser (which owns the diagnostics) report the lex error. Failed
    // parses are never cached, so this key is only ever probed.
    return std::string(StripWhitespace(text));
  }
  // Single-space token join. The regex between `-[` and `]->` is re-sliced
  // from this text when the normalized form is parsed; regex/parser.h
  // skips whitespace between all its tokens, so the join is safe there
  // too. Strings re-quote canonically ('x' and "x" coincide); idents,
  // numbers and symbols keep their spelling.
  std::string out;
  out.reserve(text.size());
  for (const Token& tok : *tokens) {
    if (tok.kind == TokKind::kEnd) break;
    if (!out.empty()) out.push_back(' ');
    if (tok.kind == TokKind::kString) {
      out += QuoteString(tok.text);
    } else {
      out += tok.text;
    }
  }
  return out;
}

}  // namespace pathalg
