#include "gql/query.h"

namespace pathalg {

Result<Query> Query::Parse(std::string_view text) {
  Query q;
  PATHALG_ASSIGN_OR_RETURN(q.parsed_, ParseQuery(text));
  q.plan_ = q.parsed_.ToPlan();
  if (q.plan_ == nullptr) {
    return Status::Internal("query compiled to a null plan");
  }
  PATHALG_RETURN_NOT_OK(q.plan_->Validate());
  return q;
}

PlanPtr Query::EffectivePlan(const QueryOptions& options) const {
  if (!options.optimize) return plan_;
  return Optimize(plan_, options.optimizer).plan;
}

Result<PathSet> Query::Execute(const PropertyGraph& g,
                               const QueryOptions& options) const {
  PlanPtr plan = EffectivePlan(options);
  PATHALG_ASSIGN_OR_RETURN(PathSet result, Evaluate(g, plan, options.eval));
  if (options.whole_path_restrictor) {
    result = ApplyWholePathRestrictor(result, parsed_.restrictor);
  }
  return result;
}

Result<PathSet> ExecuteQuery(const PropertyGraph& g, std::string_view text,
                             const QueryOptions& options) {
  PATHALG_ASSIGN_OR_RETURN(Query q, Query::Parse(text));
  return q.Execute(g, options);
}

PathSet ApplyWholePathRestrictor(const PathSet& paths,
                                 PathSemantics semantics) {
  return RestrictPaths(paths, semantics);
}

}  // namespace pathalg
