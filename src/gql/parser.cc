#include "gql/parser.h"

#include "gql/lexer.h"
#include "gql/translate.h"
#include "regex/compile.h"
#include "regex/parser.h"

namespace pathalg {

namespace {

class QueryParser {
 public:
  QueryParser(std::string_view text, std::vector<Token> tokens)
      : text_(text), tokens_(std::move(tokens)) {}

  Result<ParsedQuery> Parse() {
    if (!EatKeyword("MATCH")) return Error("query must start with MATCH");
    ParsedQuery q;
    // Disambiguate: the extended form starts with (ALL|<int>) PARTITIONS.
    if ((Peek().IsKeyword("ALL") || Peek().kind == TokKind::kInt) &&
        tokens_[pos_ + 1].IsKeyword("PARTITIONS")) {
      q.extended = true;
      PATHALG_RETURN_NOT_OK(ParseProjection(&q));
      PATHALG_RETURN_NOT_OK(ParseRestrictor(&q, /*allow_shortest=*/true));
    } else {
      PATHALG_RETURN_NOT_OK(ParseSelector(&q));
      PATHALG_RETURN_NOT_OK(ParseRestrictor(&q, /*allow_shortest=*/false));
    }
    PATHALG_RETURN_NOT_OK(ParsePathPattern(&q));
    if (EatKeyword("WHERE")) {
      PATHALG_ASSIGN_OR_RETURN(q.where, ParseCondition());
    }
    if (q.extended) {
      PATHALG_RETURN_NOT_OK(ParseGroupBy(&q));
      PATHALG_RETURN_NOT_OK(ParseOrderBy(&q));
    }
    if (Peek().kind != TokKind::kEnd) {
      return Error("unexpected trailing input '" + Peek().text + "'");
    }
    return q;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool EatKeyword(std::string_view kw) {
    if (!Peek().IsKeyword(kw)) return false;
    ++pos_;
    return true;
  }
  bool EatSymbol(std::string_view sym) {
    if (!Peek().IsSymbol(sym)) return false;
    ++pos_;
    return true;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError("query: " + msg + " at position " +
                              std::to_string(Peek().offset));
  }

  // --- clause parsers ------------------------------------------------------

  Status ParseSelector(ParsedQuery* q) {
    Selector& sel = q->selector;
    if (EatKeyword("ALL")) {
      if (EatKeyword("SHORTEST")) {
        sel.kind = SelectorKind::kAllShortest;
      } else {
        sel.kind = SelectorKind::kAll;
      }
      return Status::OK();
    }
    if (EatKeyword("ANY")) {
      if (EatKeyword("SHORTEST")) {
        sel.kind = SelectorKind::kAnyShortest;
      } else if (Peek().kind == TokKind::kInt) {
        sel.kind = SelectorKind::kAnyK;
        sel.k = static_cast<size_t>(Advance().int_value);
        if (sel.k == 0) return Error("ANY k requires k >= 1");
      } else {
        sel.kind = SelectorKind::kAny;
      }
      return Status::OK();
    }
    if (EatKeyword("SHORTEST")) {
      if (Peek().kind != TokKind::kInt) {
        return Error("SHORTEST selector requires a count");
      }
      sel.k = static_cast<size_t>(Advance().int_value);
      if (sel.k == 0) return Error("SHORTEST k requires k >= 1");
      sel.kind = EatKeyword("GROUP") ? SelectorKind::kShortestKGroup
                                     : SelectorKind::kShortestK;
      return Status::OK();
    }
    sel.kind = SelectorKind::kAll;  // selector is optional; ALL by default
    return Status::OK();
  }

  Status ParseProjection(ParsedQuery* q) {
    auto component = [&](std::string_view kw,
                         std::optional<size_t>* out) -> Status {
      if (EatKeyword("ALL")) {
        *out = std::nullopt;
      } else if (Peek().kind == TokKind::kInt) {
        int64_t v = Advance().int_value;
        if (v <= 0) {
          return Error("projection counts must be positive");
        }
        *out = static_cast<size_t>(v);
      } else {
        return Error("expected ALL or a count before " + std::string(kw));
      }
      if (!EatKeyword(kw)) {
        return Error("expected " + std::string(kw));
      }
      return Status::OK();
    };
    PATHALG_RETURN_NOT_OK(component("PARTITIONS", &q->projection.partitions));
    PATHALG_RETURN_NOT_OK(component("GROUPS", &q->projection.groups));
    PATHALG_RETURN_NOT_OK(component("PATHS", &q->projection.paths));
    return Status::OK();
  }

  Status ParseRestrictor(ParsedQuery* q, bool allow_shortest) {
    if (EatKeyword("WALK")) {
      q->restrictor = PathSemantics::kWalk;
    } else if (EatKeyword("TRAIL")) {
      q->restrictor = PathSemantics::kTrail;
    } else if (EatKeyword("ACYCLIC")) {
      q->restrictor = PathSemantics::kAcyclic;
    } else if (EatKeyword("SIMPLE")) {
      q->restrictor = PathSemantics::kSimple;
    } else if (allow_shortest && EatKeyword("SHORTEST")) {
      q->restrictor = PathSemantics::kShortest;
    } else {
      q->restrictor = PathSemantics::kWalk;  // restrictor optional: WALK
    }
    return Status::OK();
  }

  Status ParsePathPattern(ParsedQuery* q) {
    if (Peek().kind != TokKind::kIdent) {
      return Error("expected a path variable");
    }
    q->path_var = Advance().text;
    if (!EatSymbol("=")) return Error("expected '=' after path variable");
    PATHALG_ASSIGN_OR_RETURN(q->source, ParseNodePattern());
    if (!EatSymbol("-[")) return Error("expected '-[' after node pattern");
    // Slice the regex out of the raw text: from here to the matching ']->'.
    size_t start = Peek().offset;
    int depth = 0;
    size_t end = std::string_view::npos;
    size_t end_pos = pos_;
    for (size_t i = pos_; i < tokens_.size(); ++i) {
      if (tokens_[i].IsSymbol("(")) ++depth;
      if (tokens_[i].IsSymbol(")")) --depth;
      if (tokens_[i].IsSymbol("]->") && depth == 0) {
        end = tokens_[i].offset;
        end_pos = i;
        break;
      }
    }
    if (end == std::string_view::npos) {
      return Error("expected ']->' closing the edge pattern");
    }
    PATHALG_ASSIGN_OR_RETURN(q->regex,
                             ParseRegex(text_.substr(start, end - start)));
    pos_ = end_pos + 1;
    PATHALG_ASSIGN_OR_RETURN(q->target, ParseNodePattern());
    return Status::OK();
  }

  Result<NodePattern> ParseNodePattern() {
    if (!EatSymbol("(")) return Error("expected '(' opening a node pattern");
    NodePattern np;
    EatSymbol("?");  // GQL-style optional variable marker
    if (Peek().kind == TokKind::kIdent) np.var = Advance().text;
    if (EatSymbol(":")) {
      if (Peek().kind != TokKind::kIdent) {
        return Error("expected a label after ':'");
      }
      np.label = Advance().text;
    }
    if (EatSymbol("{")) {
      while (true) {
        if (Peek().kind != TokKind::kIdent) {
          return Error("expected a property name");
        }
        std::string key = Advance().text;
        if (!EatSymbol(":")) return Error("expected ':' after property name");
        PATHALG_ASSIGN_OR_RETURN(Value v, ParseValue());
        np.properties.emplace_back(std::move(key), std::move(v));
        if (EatSymbol(",")) continue;
        break;
      }
      if (!EatSymbol("}")) return Error("expected '}'");
    }
    if (!EatSymbol(")")) return Error("expected ')' closing a node pattern");
    return np;
  }

  Result<Value> ParseValue() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokKind::kString:
        return Value(Advance().text);
      case TokKind::kInt:
        return Value(Advance().int_value);
      case TokKind::kDouble:
        return Value(Advance().double_value);
      case TokKind::kIdent:
        if (EatKeyword("TRUE")) return Value(true);
        if (EatKeyword("FALSE")) return Value(false);
        if (EatKeyword("NULL")) return Value();
        return Error("expected a literal value");
      default:
        return Error("expected a literal value");
    }
  }

  Status ParseGroupBy(ParsedQuery* q) {
    if (!EatKeyword("GROUP")) {
      q->group_by = GroupKey::kNone;
      return Status::OK();
    }
    if (!EatKeyword("BY")) return Error("expected BY after GROUP");
    bool s = EatKeyword("SOURCE");
    bool t = EatKeyword("TARGET");
    bool l = EatKeyword("LENGTH");
    if (!s && !t && !l) {
      return Error("GROUP BY requires SOURCE, TARGET and/or LENGTH");
    }
    if (s && t && l) {
      q->group_by = GroupKey::kSTL;
    } else if (s && t) {
      q->group_by = GroupKey::kST;
    } else if (s && l) {
      q->group_by = GroupKey::kSL;
    } else if (t && l) {
      q->group_by = GroupKey::kTL;
    } else if (s) {
      q->group_by = GroupKey::kS;
    } else if (t) {
      q->group_by = GroupKey::kT;
    } else {
      q->group_by = GroupKey::kL;
    }
    return Status::OK();
  }

  Status ParseOrderBy(ParsedQuery* q) {
    if (!EatKeyword("ORDER")) return Status::OK();
    if (!EatKeyword("BY")) return Error("expected BY after ORDER");
    bool p = EatKeyword("PARTITION");
    bool g = EatKeyword("GROUP");
    bool a = EatKeyword("PATH");
    if (p && g && a) {
      q->order_by = OrderKey::kPGA;
    } else if (p && g) {
      q->order_by = OrderKey::kPG;
    } else if (p && a) {
      q->order_by = OrderKey::kPA;
    } else if (g && a) {
      q->order_by = OrderKey::kGA;
    } else if (p) {
      q->order_by = OrderKey::kP;
    } else if (g) {
      q->order_by = OrderKey::kG;
    } else if (a) {
      q->order_by = OrderKey::kA;
    } else {
      return Error("ORDER BY requires PARTITION, GROUP and/or PATH");
    }
    return Status::OK();
  }

  // --- WHERE condition -----------------------------------------------------

  Result<ConditionPtr> ParseCondition() { return ParseOr(); }

  Result<ConditionPtr> ParseOr() {
    PATHALG_ASSIGN_OR_RETURN(ConditionPtr left, ParseAnd());
    while (EatKeyword("OR")) {
      PATHALG_ASSIGN_OR_RETURN(ConditionPtr right, ParseAnd());
      left = Condition::Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ConditionPtr> ParseAnd() {
    PATHALG_ASSIGN_OR_RETURN(ConditionPtr left, ParseUnary());
    while (EatKeyword("AND")) {
      PATHALG_ASSIGN_OR_RETURN(ConditionPtr right, ParseUnary());
      left = Condition::And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ConditionPtr> ParseUnary() {
    if (EatKeyword("NOT")) {
      PATHALG_ASSIGN_OR_RETURN(ConditionPtr inner, ParseUnary());
      return Condition::Not(std::move(inner));
    }
    // '(' may open a parenthesized condition.
    if (Peek().IsSymbol("(")) {
      ++pos_;
      PATHALG_ASSIGN_OR_RETURN(ConditionPtr inner, ParseCondition());
      if (!EatSymbol(")")) return Error("expected ')'");
      return inner;
    }
    return ParseSimpleCondition();
  }

  Result<ConditionPtr> ParseSimpleCondition() {
    AccessKind access;
    size_t position = 0;
    std::string property;

    if (EatKeyword("LABEL")) {
      if (!EatSymbol("(")) return Error("expected '(' after label");
      if (EatKeyword("FIRST")) {
        access = AccessKind::kFirstLabel;
      } else if (EatKeyword("LAST")) {
        access = AccessKind::kLastLabel;
      } else if (EatKeyword("NODE")) {
        access = AccessKind::kNodeLabel;
        PATHALG_ASSIGN_OR_RETURN(position, ParsePositionArg());
      } else if (EatKeyword("EDGE")) {
        access = AccessKind::kEdgeLabel;
        PATHALG_ASSIGN_OR_RETURN(position, ParsePositionArg());
      } else {
        return Error("label() expects first, last, node(i) or edge(i)");
      }
      if (!EatSymbol(")")) return Error("expected ')' closing label()");
    } else if (EatKeyword("LEN")) {
      if (!EatSymbol("(") || !EatSymbol(")")) {
        return Error("expected '()' after len");
      }
      access = AccessKind::kLen;
    } else if (EatKeyword("FIRST")) {
      access = AccessKind::kFirstProp;
      PATHALG_ASSIGN_OR_RETURN(property, ParsePropertySuffix());
    } else if (EatKeyword("LAST")) {
      access = AccessKind::kLastProp;
      PATHALG_ASSIGN_OR_RETURN(property, ParsePropertySuffix());
    } else if (EatKeyword("NODE")) {
      access = AccessKind::kNodeProp;
      PATHALG_ASSIGN_OR_RETURN(position, ParsePositionArg());
      PATHALG_ASSIGN_OR_RETURN(property, ParsePropertySuffix());
    } else if (EatKeyword("EDGE")) {
      access = AccessKind::kEdgeProp;
      PATHALG_ASSIGN_OR_RETURN(position, ParsePositionArg());
      PATHALG_ASSIGN_OR_RETURN(property, ParsePropertySuffix());
    } else {
      return Error("expected a path access (label/len/first/last/node/edge)");
    }

    CompareOp op;
    if (EatKeyword("EXISTS")) {
      return Condition::MakeSimple(access, position, std::move(property),
                                   CompareOp::kExists, Value());
    }
    if (EatKeyword("CONTAINS")) {
      PATHALG_ASSIGN_OR_RETURN(Value needle, ParseValue());
      return Condition::MakeSimple(access, position, std::move(property),
                                   CompareOp::kContains, std::move(needle));
    }
    if (EatKeyword("STARTS")) {
      if (!EatKeyword("WITH")) return Error("expected WITH after STARTS");
      PATHALG_ASSIGN_OR_RETURN(Value prefix, ParseValue());
      return Condition::MakeSimple(access, position, std::move(property),
                                   CompareOp::kStartsWith,
                                   std::move(prefix));
    }
    if (EatSymbol("=")) {
      op = CompareOp::kEq;
    } else if (EatSymbol("!=") || EatSymbol("<>")) {
      op = CompareOp::kNe;
    } else if (EatSymbol("<=")) {
      op = CompareOp::kLe;
    } else if (EatSymbol(">=")) {
      op = CompareOp::kGe;
    } else if (EatSymbol("<")) {
      op = CompareOp::kLt;
    } else if (EatSymbol(">")) {
      op = CompareOp::kGt;
    } else {
      return Error("expected a comparison operator");
    }
    PATHALG_ASSIGN_OR_RETURN(Value v, ParseValue());
    return Condition::MakeSimple(access, position, std::move(property), op,
                                 std::move(v));
  }

  Result<size_t> ParsePositionArg() {
    if (!EatSymbol("(")) return Error("expected '(' before position");
    if (Peek().kind != TokKind::kInt) return Error("expected a position");
    int64_t v = Advance().int_value;
    if (v < 1) return Error("positions are 1-based");
    if (!EatSymbol(")")) return Error("expected ')' after position");
    return static_cast<size_t>(v);
  }

  Result<std::string> ParsePropertySuffix() {
    if (!EatSymbol(".")) return Error("expected '.' before property name");
    if (Peek().kind != TokKind::kIdent) {
      return Error("expected a property name");
    }
    return Advance().text;
  }

  std::string_view text_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedQuery> ParseQuery(std::string_view text) {
  PATHALG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  return QueryParser(text, std::move(tokens)).Parse();
}

ConditionPtr ParsedQuery::EndpointCondition() const {
  ConditionPtr cond;
  auto add = [&cond](ConditionPtr c) {
    cond = cond == nullptr ? std::move(c)
                           : Condition::And(std::move(cond), std::move(c));
  };
  if (!source.label.empty()) add(FirstLabelEq(source.label));
  for (const auto& [key, value] : source.properties) {
    add(FirstPropEq(key, value));
  }
  if (!target.label.empty()) add(LastLabelEq(target.label));
  for (const auto& [key, value] : target.properties) {
    add(LastPropEq(key, value));
  }
  if (where != nullptr) add(where);
  return cond;
}

PlanPtr ParsedQuery::ToPlan() const {
  CompileOptions copts;
  copts.semantics = restrictor;
  PlanPtr pattern = CompileRpq(regex, copts, EndpointCondition());
  if (extended) {
    PlanPtr plan = PlanNode::GroupBy(group_by, std::move(pattern));
    if (order_by.has_value()) plan = PlanNode::OrderBy(*order_by, plan);
    return PlanNode::Project(projection, std::move(plan));
  }
  return TranslateSelector(selector, std::move(pattern));
}

namespace {

/// Renders the pattern subtree in the paper's "-> " style (§7.2).
void AppendPatternPlan(const PlanNode& node, size_t depth, std::string& out) {
  out.append(depth * 3, ' ');
  out += "-> ";
  switch (node.kind()) {
    case PlanKind::kSelect:
      // The paper prints selects over the edge scan inline:
      //   Select: (label(edge(1)) = "Knows" , EDGES(G))
      if (node.child()->kind() == PlanKind::kEdgesScan) {
        out += "Select: (" + node.condition()->ToString() + " , EDGES(G))\n";
        return;
      }
      if (node.child()->kind() == PlanKind::kNodesScan) {
        out += "Select: (" + node.condition()->ToString() + " , NODES(G))\n";
        return;
      }
      out += "Select: (" + node.condition()->ToString() + ")\n";
      break;
    case PlanKind::kRecursive:
      out += std::string("Recursive Join (restrictor: ") +
             PathSemanticsToString(node.semantics()) + ")\n";
      break;
    case PlanKind::kJoin:
      out += "Join\n";
      break;
    case PlanKind::kUnion:
      out += "Union\n";
      break;
    case PlanKind::kNodesScan:
      out += "NODES(G)\n";
      return;
    case PlanKind::kEdgesScan:
      out += "EDGES(G)\n";
      return;
    default:
      out += PlanKindToString(node.kind());
      out += "\n";
      break;
  }
  for (const PlanPtr& c : node.children()) {
    AppendPatternPlan(*c, depth + 1, out);
  }
}

std::string ProjectionText(const ProjectionSpec& spec) {
  auto render = [](const std::optional<size_t>& v) {
    return v.has_value() ? std::to_string(*v) : std::string("ALL");
  };
  return render(spec.partitions) + " PARTITIONS " + render(spec.groups) +
         " GROUPS " + render(spec.paths) + " PATHS";
}

std::string OrderKeyText(OrderKey k) {
  switch (k) {
    case OrderKey::kP:
      return "Partition";
    case OrderKey::kG:
      return "Group";
    case OrderKey::kA:
      return "Path";
    case OrderKey::kPG:
      return "Partition, Group";
    case OrderKey::kPA:
      return "Partition, Path";
    case OrderKey::kGA:
      return "Group, Path";
    case OrderKey::kPGA:
      return "Partition, Group, Path";
  }
  return "?";
}

std::string GroupKeyText(GroupKey k) {
  switch (k) {
    case GroupKey::kNone:
      return "-";
    case GroupKey::kS:
      return "Source";
    case GroupKey::kT:
      return "Target";
    case GroupKey::kL:
      return "Length";
    case GroupKey::kST:
      return "Source, Target";
    case GroupKey::kSL:
      return "Source, Length";
    case GroupKey::kTL:
      return "Target, Length";
    case GroupKey::kSTL:
      return "Source, Target, Length";
  }
  return "?";
}

}  // namespace

std::string ParsedQuery::ToPlanText() const {
  std::string out;
  if (extended) {
    out += "Projection (" + ProjectionText(projection) + ")\n";
    if (order_by.has_value()) {
      out += "OrderBy (" + OrderKeyText(*order_by) + ")\n";
    }
    out += "Group (" + GroupKeyText(group_by) + ")\n";
  } else {
    out += "Selector (" + selector.ToString() + ")\n";
  }
  out += std::string("Restrictor (") + PathSemanticsToString(restrictor) +
         ")\n";
  CompileOptions copts;
  copts.semantics = restrictor;
  PlanPtr pattern = CompileRpq(regex, copts, EndpointCondition());
  AppendPatternPlan(*pattern, 0, out);
  return out;
}

}  // namespace pathalg
