#ifndef PATHALG_GQL_LEXER_H_
#define PATHALG_GQL_LEXER_H_

/// \file lexer.h
/// Tokenizer for the paper's GQL-like query syntax (§7.1). Keywords are
/// case-insensitive identifiers; the regex between `-[` and `]->` is *not*
/// tokenized here — the parser slices it out of the source text and hands
/// it to regex/parser.h.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace pathalg {

enum class TokKind { kIdent, kInt, kDouble, kString, kSymbol, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  /// Identifier text, symbol spelling ("(", "]->", "!=", ...) or raw
  /// string contents (quotes stripped, escapes resolved).
  std::string text;
  int64_t int_value = 0;
  double double_value = 0;
  /// Byte offset in the source (for error messages and regex slicing).
  size_t offset = 0;

  bool IsSymbol(std::string_view s) const {
    return kind == TokKind::kSymbol && text == s;
  }
  /// Case-insensitive keyword test.
  bool IsKeyword(std::string_view kw) const;
};

/// Tokenizes `text`. Multi-character symbols: `-[`, `]->`, `!=`, `<>`,
/// `<=`, `>=`. ParseError on unterminated strings or stray characters.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace pathalg

#endif  // PATHALG_GQL_LEXER_H_
