#ifndef PATHALG_GQL_SEQUENCE_H_
#define PATHALG_GQL_SEQUENCE_H_

/// \file sequence.h
/// Sequenced path queries (§2.3): GQL/SQL-PGQ allow concatenating path
/// queries,
///
///     s r [s1 r1 (x, regex1, y)] · [s2 r2 (z, regex2, w)],
///
/// where each bracketed part runs with its own selector/restrictor, the
/// answers are concatenated pairwise (⋈ on the shared endpoint), and the
/// outer selector–restrictor combination applies to the concatenated set —
/// e.g. "all trails n1→n2, then all shortest walks n2→n3, and the entire
/// path must be a shortest trail".
///
/// This is the paper's composability story made executable: each part's
/// answer is a set of paths, so the parts are just subplans; the outer
/// restrictor is the whole-path filter ρ and the outer selector is the
/// usual Table 7 γ/τ/π pipeline.

#include <vector>

#include "common/result.h"
#include "gql/selector.h"
#include "gql/translate.h"
#include "regex/ast.h"

namespace pathalg {

/// One bracketed sub-query: selector? restrictor (x, regex, y).
struct SequencePart {
  Selector selector;                                    // default ALL
  PathSemantics restrictor = PathSemantics::kWalk;
  RegexPtr regex;
  /// Optional endpoint/WHERE filter (first.*/last.* conditions).
  ConditionPtr filter;
};

/// The whole sequenced query: outer selector/restrictor over the
/// concatenation of the parts.
struct SequenceQuery {
  Selector selector;                                    // outer s
  PathSemantics restrictor = PathSemantics::kWalk;      // outer r
  std::vector<SequencePart> parts;
};

/// Compiles to a logical plan:
///   Translate(s, ρ_r(part1 ⋈ part2 ⋈ ...)),
/// where part_i = Translate(s_i, σ_i(ϕ_{r_i}(RE_i))). Fails on empty
/// sequences or null regexes.
Result<PlanPtr> BuildSequencePlan(const SequenceQuery& query);

}  // namespace pathalg

#endif  // PATHALG_GQL_SEQUENCE_H_
