#include "gql/lexer.h"

#include <cctype>

#include "common/str_util.h"

namespace pathalg {

bool Token::IsKeyword(std::string_view kw) const {
  return kind == TokKind::kIdent && EqualsIgnoreCase(text, kw);
}

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> out;
  size_t i = 0;
  auto error = [&](const std::string& msg) {
    return Status::ParseError("query: " + msg + " at position " +
                              std::to_string(i));
  };
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_')) {
        ++i;
      }
      tok.kind = TokKind::kIdent;
      tok.text = std::string(text.substr(start, i - start));
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool has_dot = false;
      while (i < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[i])) ||
              (text[i] == '.' && !has_dot &&
               i + 1 < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[i + 1]))))) {
        if (text[i] == '.') has_dot = true;
        ++i;
      }
      std::string num(text.substr(start, i - start));
      if (has_dot) {
        tok.kind = TokKind::kDouble;
        tok.double_value = std::stod(num);
      } else {
        tok.kind = TokKind::kInt;
        tok.int_value = std::stoll(num);
      }
      tok.text = std::move(num);
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      std::string content;
      bool closed = false;
      while (i < text.size()) {
        if (text[i] == '\\' && i + 1 < text.size()) {
          content.push_back(text[i + 1]);
          i += 2;
        } else if (text[i] == quote) {
          ++i;
          closed = true;
          break;
        } else {
          content.push_back(text[i]);
          ++i;
        }
      }
      if (!closed) return error("unterminated string literal");
      tok.kind = TokKind::kString;
      tok.text = std::move(content);
      out.push_back(std::move(tok));
      continue;
    }
    // Multi-character symbols first.
    auto try_symbol = [&](std::string_view sym) {
      if (text.substr(i, sym.size()) == sym) {
        tok.kind = TokKind::kSymbol;
        tok.text = std::string(sym);
        i += sym.size();
        out.push_back(tok);
        return true;
      }
      return false;
    };
    if (try_symbol("]->") || try_symbol("-[") || try_symbol("!=") ||
        try_symbol("<>") || try_symbol("<=") || try_symbol(">=")) {
      continue;
    }
    if (std::string_view("()[]{}=<>,.:?*+|/-").find(c) !=
        std::string_view::npos) {
      tok.kind = TokKind::kSymbol;
      tok.text = std::string(1, c);
      ++i;
      out.push_back(std::move(tok));
      continue;
    }
    return error(std::string("unexpected character '") + c + "'");
  }
  Token end;
  end.kind = TokKind::kEnd;
  end.offset = text.size();
  out.push_back(std::move(end));
  return out;
}

}  // namespace pathalg
