#include "gql/selector.h"

namespace pathalg {

std::string Selector::ToString() const {
  switch (kind) {
    case SelectorKind::kAll:
      return "ALL";
    case SelectorKind::kAnyShortest:
      return "ANY SHORTEST";
    case SelectorKind::kAllShortest:
      return "ALL SHORTEST";
    case SelectorKind::kAny:
      return "ANY";
    case SelectorKind::kAnyK:
      return "ANY " + std::to_string(k);
    case SelectorKind::kShortestK:
      return "SHORTEST " + std::to_string(k);
    case SelectorKind::kShortestKGroup:
      return "SHORTEST " + std::to_string(k) + " GROUP";
  }
  return "?";
}

const char* SelectorSemantics(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kAll:
      return "Returns all paths, for every group, for every partition.";
    case SelectorKind::kAnyShortest:
      return "Returns one path with shortest length from each partition.";
    case SelectorKind::kAllShortest:
      return "Returns all paths in each partition that have the minimal "
             "length in the partition.";
    case SelectorKind::kAny:
      return "Returns one path in each partition arbitrarily.";
    case SelectorKind::kAnyK:
      return "Returns arbitrary k paths in each partition (if fewer than k, "
             "then all are retained).";
    case SelectorKind::kShortestK:
      return "Returns the shortest k paths (if fewer than k, then all are "
             "retained).";
    case SelectorKind::kShortestKGroup:
      return "Partitions by endpoints, sorts each partition by path length, "
             "groups paths with the same length, then returns all paths in "
             "the first k groups from each partition.";
  }
  return "?";
}

const char* RestrictorSemantics(PathSemantics semantics) {
  switch (semantics) {
    case PathSemantics::kWalk:
      return "Is the default option, corresponding to the absence of any "
             "filtering.";
    case PathSemantics::kTrail:
      return "Returns paths that do not have any repeated edges.";
    case PathSemantics::kAcyclic:
      return "Returns paths that do not have any repeated nodes.";
    case PathSemantics::kSimple:
      return "Returns paths with no repeated nodes, except for the first "
             "and last node if they are the same.";
    case PathSemantics::kShortest:
      return "Returns the paths with the shortest length between the first "
             "and the last node.";
  }
  return "?";
}

}  // namespace pathalg
