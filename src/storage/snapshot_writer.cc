#include "storage/snapshot_writer.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/snapshot_format.h"

namespace pathalg::storage {
namespace {

void AppendBytes(std::string& out, const void* data, size_t size) {
  out.append(static_cast<const char*>(data), size);
}

template <typename T>
void AppendPod(std::string& out, const T& v) {
  static_assert(std::is_trivially_copyable<T>::value, "raw bytes only");
  AppendBytes(out, &v, sizeof(v));
}

template <typename T>
std::string ArraySection(const FlatArray<T>& a) {
  std::string out;
  AppendBytes(out, a.data(), a.size() * sizeof(T));
  return out;
}

/// [count u64][offsets u64[count+1]][blob] — see snapshot_format.h.
std::string StringTableSection(const std::vector<std::string>& strings) {
  std::string out;
  AppendPod(out, static_cast<uint64_t>(strings.size()));
  uint64_t off = 0;
  AppendPod(out, off);
  for (const std::string& s : strings) {
    off += s.size();
    AppendPod(out, off);
  }
  for (const std::string& s : strings) out.append(s);
  return out;
}

uint64_t BitCast(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}
uint64_t BitCast(int64_t i) {
  uint64_t u;
  std::memcpy(&u, &i, sizeof(u));
  return u;
}

struct PropColumns {
  std::string offsets;   // u64[count + 1]
  std::string keys;      // u32 per entry
  std::string types;     // u8 per entry
  std::string payloads;  // u64 per entry
  std::string strings;   // string table of unique string payloads
};

PropColumns EncodeProps(const std::vector<PropertyList>& props) {
  PropColumns c;
  std::vector<std::string> pool;
  std::unordered_map<std::string, uint64_t> pool_index;
  uint64_t total = 0;
  AppendPod(c.offsets, total);
  for (const PropertyList& list : props) {
    total += list.size();
    AppendPod(c.offsets, total);
    for (const auto& [key, value] : list) {
      AppendPod(c.keys, static_cast<uint32_t>(key));
      AppendPod(c.types, static_cast<uint8_t>(value.type()));
      uint64_t payload = 0;
      switch (value.type()) {
        case Value::Type::kNull:
          break;
        case Value::Type::kBool:
          payload = value.AsBool() ? 1 : 0;
          break;
        case Value::Type::kInt:
          payload = BitCast(value.AsInt());
          break;
        case Value::Type::kDouble:
          payload = BitCast(value.AsDouble());
          break;
        case Value::Type::kString: {
          // Pool unique strings in first-use order — deterministic because
          // the order is driven by the (id-ordered) property scan, never by
          // hash-map iteration.
          auto [it, inserted] = pool_index.emplace(
              value.AsString(), static_cast<uint64_t>(pool.size()));
          if (inserted) pool.push_back(value.AsString());
          payload = it->second;
          break;
        }
      }
      AppendPod(c.payloads, payload);
    }
  }
  c.strings = StringTableSection(pool);
  return c;
}

}  // namespace

std::string SnapshotWriter::Serialize(const PropertyGraph& g,
                                      uint64_t parent_version) {
  // Lazy sections must be decoded before they can be re-encoded.
  g.EnsureNodeProps();
  g.EnsureEdgeProps();
  g.EnsureNames();

  PropColumns node_cols = EncodeProps(g.node_props_);
  PropColumns edge_cols = EncodeProps(g.edge_props_);

  // Payloads in ascending SectionId order (the on-disk order).
  std::vector<std::pair<SectionId, std::string>> sections;
  sections.reserve(kSectionCount);
  sections.emplace_back(SectionId::kNodeLabels, ArraySection(g.node_labels_));
  sections.emplace_back(SectionId::kEdgeSrc, ArraySection(g.edge_src_));
  sections.emplace_back(SectionId::kEdgeDst, ArraySection(g.edge_dst_));
  sections.emplace_back(SectionId::kEdgeLabels, ArraySection(g.edge_labels_));
  sections.emplace_back(SectionId::kCsrOutOffsets,
                        ArraySection(g.csr_out_offsets_));
  sections.emplace_back(SectionId::kCsrOutEdges,
                        ArraySection(g.csr_out_edges_));
  sections.emplace_back(SectionId::kCsrOutLabels,
                        ArraySection(g.csr_out_labels_));
  sections.emplace_back(SectionId::kCsrInOffsets,
                        ArraySection(g.csr_in_offsets_));
  sections.emplace_back(SectionId::kCsrInEdges, ArraySection(g.csr_in_edges_));
  sections.emplace_back(SectionId::kCsrInLabels,
                        ArraySection(g.csr_in_labels_));
  sections.emplace_back(SectionId::kLabelOffsets,
                        ArraySection(g.label_offsets_));
  sections.emplace_back(SectionId::kLabelEdges, ArraySection(g.label_edges_));
  sections.emplace_back(SectionId::kLabelNames, StringTableSection(g.labels_));
  sections.emplace_back(SectionId::kPropKeyNames,
                        StringTableSection(g.prop_keys_));
  sections.emplace_back(SectionId::kNodeNames,
                        StringTableSection(g.node_names_));
  sections.emplace_back(SectionId::kEdgeNames,
                        StringTableSection(g.edge_names_));
  sections.emplace_back(SectionId::kNodePropOffsets,
                        std::move(node_cols.offsets));
  sections.emplace_back(SectionId::kNodePropKeys, std::move(node_cols.keys));
  sections.emplace_back(SectionId::kNodePropTypes, std::move(node_cols.types));
  sections.emplace_back(SectionId::kNodePropPayloads,
                        std::move(node_cols.payloads));
  sections.emplace_back(SectionId::kNodePropStrings,
                        std::move(node_cols.strings));
  sections.emplace_back(SectionId::kEdgePropOffsets,
                        std::move(edge_cols.offsets));
  sections.emplace_back(SectionId::kEdgePropKeys, std::move(edge_cols.keys));
  sections.emplace_back(SectionId::kEdgePropTypes, std::move(edge_cols.types));
  sections.emplace_back(SectionId::kEdgePropPayloads,
                        std::move(edge_cols.payloads));
  sections.emplace_back(SectionId::kEdgePropStrings,
                        std::move(edge_cols.strings));

  // Lay out: header | table | aligned sections. Zero padding between
  // sections keeps the output a pure function of the payload bytes.
  const size_t table_bytes = sections.size() * sizeof(SectionEntry);
  size_t cursor = AlignUp(sizeof(SnapshotHeader) + table_bytes);
  std::vector<SectionEntry> table;
  table.reserve(sections.size());
  for (const auto& [id, payload] : sections) {
    SectionEntry e{};
    e.id = static_cast<uint32_t>(id);
    e.offset = cursor;
    e.size = payload.size();
    e.checksum = Fnv1a64(payload.data(), payload.size());
    table.push_back(e);
    cursor = AlignUp(cursor + payload.size());
  }

  SnapshotHeader header{};
  std::memcpy(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic));
  header.version = kSnapshotVersion;
  header.endian = kEndianCanary;
  header.section_count = static_cast<uint32_t>(sections.size());
  header.num_nodes = g.num_nodes();
  header.num_edges = g.num_edges();
  header.file_size = cursor;
  header.table_checksum = Fnv1a64(table.data(), table_bytes);
  header.parent_version = parent_version;

  std::string out;
  out.reserve(cursor);
  AppendPod(out, header);
  AppendBytes(out, table.data(), table_bytes);
  for (size_t i = 0; i < sections.size(); ++i) {
    out.resize(table[i].offset, '\0');
    out.append(sections[i].second);
  }
  out.resize(cursor, '\0');
  return out;
}

Status SnapshotWriter::Write(const PropertyGraph& g, const std::string& path,
                             uint64_t parent_version) {
  std::string image = Serialize(g, parent_version);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot create snapshot file '" + tmp +
                                   "'");
  }
  size_t written = image.empty()
                       ? 0
                       : std::fwrite(image.data(), 1, image.size(), f);
  bool flushed = std::fclose(f) == 0;
  if (written != image.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::InvalidArgument("short write on snapshot file '" + tmp +
                                   "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::InvalidArgument("cannot move snapshot into place at '" +
                                   path + "'");
  }
  return Status::OK();
}

uint64_t SnapshotWriter::VersionId(const PropertyGraph& g) {
  std::string image = Serialize(g);
  SnapshotHeader h;
  std::memcpy(&h, image.data(), sizeof(h));
  return h.table_checksum;
}

}  // namespace pathalg::storage
