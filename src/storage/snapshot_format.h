#ifndef PATHALG_STORAGE_SNAPSHOT_FORMAT_H_
#define PATHALG_STORAGE_SNAPSHOT_FORMAT_H_

/// \file snapshot_format.h
/// On-disk layout of a PropertyGraph binary snapshot (format version 1).
///
///   offset 0    SnapshotHeader          (64 bytes)
///   offset 64   SectionEntry[section_count]   (32 bytes each)
///   ...         sections, each 64-byte aligned, zero-padded between
///
/// All integers are little-endian host-width fields; the header carries an
/// endianness canary so a wrong-endian file fails cleanly instead of
/// decoding garbage. Every section has an FNV-1a-64 checksum in its table
/// entry, and the table itself is checksummed in the header, so any
/// single-byte corruption is detected before data is interpreted.
///
/// Sections are written in ascending SectionId order with deterministic
/// content (no timestamps, no pointers, no hash-map iteration order), so
/// serializing the same logical graph always yields byte-identical files —
/// the round-trip tests pin `Serialize(Open(Serialize(g))) == Serialize(g)`.
///
/// Fixed-width array sections are raw element dumps (the same bytes a
/// FlatArray views when the file is mmap'd). Variable-length string data
/// uses a string-table layout:
///
///   [count u64][offsets u64[count+1]][blob bytes]
///
/// where string i is blob[offsets[i], offsets[i+1]).
///
/// Property columns are struct-of-arrays per side (node/edge):
///   PropOffsets  u64[num_objects + 1]   object i owns entries
///                                       [offsets[i], offsets[i+1])
///   PropKeys     u32[total_entries]     interned PropKeyId, sorted per object
///   PropTypes    u8 [total_entries]     Value::Type
///   PropPayloads u64[total_entries]     bool: 0/1; int/double: bit cast;
///                                       string: index into PropStrings pool
///   PropStrings  string table           unique string payloads, first-use
///                                       order

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace pathalg::storage {

inline constexpr char kSnapshotMagic[8] = {'P', 'A', 'L', 'G',
                                           'S', 'N', 'A', 'P'};
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr uint32_t kEndianCanary = 0x01020304;
inline constexpr size_t kSectionAlignment = 64;

/// Identifies a section's meaning. Values are part of the on-disk format:
/// never renumber, only append.
enum class SectionId : uint32_t {
  kNodeLabels = 1,       // LabelId[num_nodes]
  kEdgeSrc = 2,          // NodeId[num_edges]
  kEdgeDst = 3,          // NodeId[num_edges]
  kEdgeLabels = 4,       // LabelId[num_edges]
  kCsrOutOffsets = 5,    // u32[num_nodes + 1]
  kCsrOutEdges = 6,      // EdgeId[num_edges]
  kCsrOutLabels = 7,     // LabelId[num_edges]
  kCsrInOffsets = 8,     // u32[num_nodes + 1]
  kCsrInEdges = 9,       // EdgeId[num_edges]
  kCsrInLabels = 10,     // LabelId[num_edges]
  kLabelOffsets = 11,    // u32[num_labels + 1]
  kLabelEdges = 12,      // EdgeId[count of labelled edges]
  kLabelNames = 13,      // string table
  kPropKeyNames = 14,    // string table
  kNodeNames = 15,       // string table
  kEdgeNames = 16,       // string table
  kNodePropOffsets = 17,  // u64[num_nodes + 1]
  kNodePropKeys = 18,     // u32
  kNodePropTypes = 19,    // u8
  kNodePropPayloads = 20,  // u64
  kNodePropStrings = 21,   // string table
  kEdgePropOffsets = 22,   // u64[num_edges + 1]
  kEdgePropKeys = 23,      // u32
  kEdgePropTypes = 24,     // u8
  kEdgePropPayloads = 25,  // u64
  kEdgePropStrings = 26,   // string table
};

inline constexpr uint32_t kSectionCount = 26;

struct SnapshotHeader {
  char magic[8];
  uint32_t version;
  uint32_t endian;         // kEndianCanary as written by the producer
  uint32_t section_count;
  uint32_t reserved0;
  uint64_t num_nodes;
  uint64_t num_edges;
  uint64_t file_size;      // total bytes, cross-checked against the file
  uint64_t table_checksum; // FNV-1a-64 over the section-table bytes
  /// Version chaining for live mutation (src/mutation/): the version id
  /// (= table_checksum) of the base snapshot this one was compacted
  /// from, or 0 for a root version. Not covered by table_checksum, so a
  /// graph's version id is a pure function of its content, independent
  /// of the mutation history that produced it. (Was `reserved1`,
  /// written as 0, so format version 1 is unchanged.)
  uint64_t parent_version;
};
static_assert(sizeof(SnapshotHeader) == 64, "header is one alignment unit");

struct SectionEntry {
  uint32_t id;        // SectionId
  uint32_t reserved;
  uint64_t offset;    // from file start; multiple of kSectionAlignment
  uint64_t size;      // payload bytes (excluding alignment padding)
  uint64_t checksum;  // FNV-1a-64 over the payload bytes
};
static_assert(sizeof(SectionEntry) == 32, "entries are packed");

/// FNV-1a 64-bit: simple, dependency-free, and good enough to catch the
/// corruption classes the robustness tests inject (bit flips, truncation,
/// swapped runs). Not cryptographic.
inline uint64_t Fnv1a64(const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline size_t AlignUp(size_t n) {
  return (n + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

}  // namespace pathalg::storage

#endif  // PATHALG_STORAGE_SNAPSHOT_FORMAT_H_
