#include "storage/snapshot_reader.h"

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "storage/mapped_file.h"
#include "storage/snapshot_format.h"

namespace pathalg::storage {
namespace {

struct SectionView {
  const unsigned char* data = nullptr;
  size_t size = 0;
  bool present = false;
};

/// The snapshot image after header/table validation: every section located
/// and bounds-checked, nothing decoded yet.
struct ParsedImage {
  const unsigned char* base = nullptr;
  size_t size = 0;
  SnapshotHeader header;
  // Indexed by SectionId value (1-based; slot 0 unused).
  std::array<SectionView, kSectionCount + 1> sections;

  const SectionView& at(SectionId id) const {
    return sections[static_cast<uint32_t>(id)];
  }
};

Status ParseImage(const void* data, size_t size, bool verify_checksums,
                  ParsedImage& out) {
  out.base = static_cast<const unsigned char*>(data);
  out.size = size;
  if (size < sizeof(SnapshotHeader)) {
    return Status::InvalidArgument(
        "snapshot truncated: " + std::to_string(size) +
        " bytes is smaller than the header");
  }
  std::memcpy(&out.header, out.base, sizeof(SnapshotHeader));
  const SnapshotHeader& h = out.header;
  if (std::memcmp(h.magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::InvalidArgument("bad magic: not a pathalg snapshot file");
  }
  if (h.endian != kEndianCanary) {
    return Status::InvalidArgument(
        "snapshot endianness mismatch: written on an incompatible platform");
  }
  if (h.version != kSnapshotVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(h.version) +
        " (this build reads version " + std::to_string(kSnapshotVersion) +
        ")");
  }
  if (h.file_size != size) {
    return Status::InvalidArgument(
        "snapshot truncated: header says " + std::to_string(h.file_size) +
        " bytes, file has " + std::to_string(size));
  }
  if (h.section_count != kSectionCount) {
    return Status::InvalidArgument(
        "snapshot section table has " + std::to_string(h.section_count) +
        " entries, expected " + std::to_string(kSectionCount));
  }
  const size_t table_bytes = size_t{h.section_count} * sizeof(SectionEntry);
  if (sizeof(SnapshotHeader) + table_bytes > size) {
    return Status::InvalidArgument(
        "snapshot truncated inside the section table");
  }
  const unsigned char* table = out.base + sizeof(SnapshotHeader);
  if (Fnv1a64(table, table_bytes) != h.table_checksum) {
    return Status::InvalidArgument("section table checksum mismatch");
  }
  for (uint32_t i = 0; i < h.section_count; ++i) {
    SectionEntry e;
    std::memcpy(&e, table + size_t{i} * sizeof(SectionEntry), sizeof(e));
    if (e.id == 0 || e.id > kSectionCount) {
      return Status::InvalidArgument("unknown section id " +
                                     std::to_string(e.id));
    }
    SectionView& v = out.sections[e.id];
    if (v.present) {
      return Status::InvalidArgument("duplicate section id " +
                                     std::to_string(e.id));
    }
    if (e.offset % kSectionAlignment != 0) {
      return Status::InvalidArgument("section " + std::to_string(e.id) +
                                     " is misaligned");
    }
    if (e.offset > size || e.size > size - e.offset) {
      return Status::InvalidArgument(
          "section " + std::to_string(e.id) +
          " extends past end of file (offset " + std::to_string(e.offset) +
          ", size " + std::to_string(e.size) + ")");
    }
    v.data = out.base + e.offset;
    v.size = e.size;
    v.present = true;
    if (verify_checksums && Fnv1a64(v.data, v.size) != e.checksum) {
      return Status::InvalidArgument("checksum mismatch in section " +
                                     std::to_string(e.id));
    }
  }
  for (uint32_t id = 1; id <= kSectionCount; ++id) {
    if (!out.sections[id].present) {
      return Status::InvalidArgument("missing section id " +
                                     std::to_string(id));
    }
  }
  return Status::OK();
}

/// A typed view of a fixed-width array section with an exact element count.
template <typename T>
Result<const T*> TypedSection(const ParsedImage& img, SectionId id,
                              size_t expected_count, const char* what) {
  const SectionView& v = img.at(id);
  if (v.size != expected_count * sizeof(T)) {
    return Status::InvalidArgument(
        std::string("section ") + what + " has " + std::to_string(v.size) +
        " bytes, expected " + std::to_string(expected_count * sizeof(T)));
  }
  return reinterpret_cast<const T*>(v.data);
}

struct StringTable {
  uint64_t count = 0;
  const uint64_t* offsets = nullptr;  // count + 1 entries
  const char* blob = nullptr;
  uint64_t blob_size = 0;

  std::string Get(uint64_t i) const {
    return std::string(blob + offsets[i], offsets[i + 1] - offsets[i]);
  }
};

Result<StringTable> ParseStringTable(const ParsedImage& img, SectionId id,
                                     const char* what) {
  const SectionView& v = img.at(id);
  StringTable t;
  if (v.size < sizeof(uint64_t)) {
    return Status::InvalidArgument(std::string("string table ") + what +
                                   " is truncated");
  }
  std::memcpy(&t.count, v.data, sizeof(uint64_t));
  // count+1 offsets must fit after the count word; guard the multiply.
  if (t.count > (v.size - sizeof(uint64_t)) / sizeof(uint64_t)) {
    return Status::InvalidArgument(std::string("string table ") + what +
                                   " count is out of bounds");
  }
  const size_t offsets_bytes = (t.count + 1) * sizeof(uint64_t);
  if (sizeof(uint64_t) + offsets_bytes > v.size) {
    return Status::InvalidArgument(std::string("string table ") + what +
                                   " offsets are truncated");
  }
  t.offsets = reinterpret_cast<const uint64_t*>(v.data + sizeof(uint64_t));
  t.blob = reinterpret_cast<const char*>(v.data + sizeof(uint64_t) +
                                         offsets_bytes);
  t.blob_size = v.size - sizeof(uint64_t) - offsets_bytes;
  if (t.offsets[0] != 0) {
    return Status::InvalidArgument(std::string("string table ") + what +
                                   " does not start at offset 0");
  }
  for (uint64_t i = 0; i < t.count; ++i) {
    if (t.offsets[i + 1] < t.offsets[i]) {
      return Status::InvalidArgument(std::string("string table ") + what +
                                     " offsets are not monotonic");
    }
  }
  if (t.offsets[t.count] != t.blob_size) {
    return Status::InvalidArgument(std::string("string table ") + what +
                                   " blob size mismatch");
  }
  return t;
}

template <typename T>
Status ValidateOffsets(const T* o, size_t num_keys, uint64_t expected_total,
                       const char* what) {
  if (o[0] != 0) {
    return Status::InvalidArgument(std::string(what) +
                                   " offsets do not start at 0");
  }
  for (size_t i = 0; i < num_keys; ++i) {
    if (o[i + 1] < o[i]) {
      return Status::InvalidArgument(std::string(what) +
                                     " offsets are not monotonic");
    }
  }
  if (o[num_keys] != expected_total) {
    return Status::InvalidArgument(
        std::string(what) + " offsets cover " + std::to_string(o[num_keys]) +
        " entries, expected " + std::to_string(expected_total));
  }
  return Status::OK();
}

Status ValidateIds(const uint32_t* ids, size_t count, uint32_t limit,
                   bool allow_no_label, const char* what) {
  for (size_t i = 0; i < count; ++i) {
    if (ids[i] >= limit && !(allow_no_label && ids[i] == kNoLabel)) {
      return Status::InvalidArgument(std::string(what) + "[" +
                                     std::to_string(i) + "] = " +
                                     std::to_string(ids[i]) +
                                     " is out of range");
    }
  }
  return Status::OK();
}

/// All typed pointers into a validated image, ready to wrap or decode.
struct DecodedLayout {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  size_t num_labels = 0;
  size_t num_prop_keys = 0;
  size_t num_label_edges = 0;

  const uint32_t* node_labels = nullptr;
  const uint32_t* edge_src = nullptr;
  const uint32_t* edge_dst = nullptr;
  const uint32_t* edge_labels = nullptr;
  const uint32_t* csr_out_offsets = nullptr;
  const uint32_t* csr_out_edges = nullptr;
  const uint32_t* csr_out_labels = nullptr;
  const uint32_t* csr_in_offsets = nullptr;
  const uint32_t* csr_in_edges = nullptr;
  const uint32_t* csr_in_labels = nullptr;
  const uint32_t* label_offsets = nullptr;
  const uint32_t* label_edges = nullptr;

  StringTable label_names;
  StringTable prop_key_names;
  StringTable node_names;
  StringTable edge_names;

  struct PropSide {
    const uint64_t* offsets = nullptr;  // num_objects + 1
    uint64_t total = 0;
    const uint32_t* keys = nullptr;
    const uint8_t* types = nullptr;
    const uint64_t* payloads = nullptr;
    StringTable strings;
  };
  PropSide node_props;
  PropSide edge_props;
};

Status ParsePropSide(const ParsedImage& img, size_t num_objects,
                     size_t num_prop_keys, SectionId offsets_id,
                     SectionId keys_id, SectionId types_id,
                     SectionId payloads_id, SectionId strings_id,
                     const char* what, DecodedLayout::PropSide& side) {
  PATHALG_ASSIGN_OR_RETURN(
      side.offsets,
      TypedSection<uint64_t>(img, offsets_id, num_objects + 1, what));
  side.total = side.offsets[num_objects];
  PATHALG_RETURN_NOT_OK(
      ValidateOffsets(side.offsets, num_objects, side.total, what));
  PATHALG_ASSIGN_OR_RETURN(
      side.keys, TypedSection<uint32_t>(img, keys_id, side.total, what));
  PATHALG_ASSIGN_OR_RETURN(
      side.types, TypedSection<uint8_t>(img, types_id, side.total, what));
  PATHALG_ASSIGN_OR_RETURN(
      side.payloads,
      TypedSection<uint64_t>(img, payloads_id, side.total, what));
  PATHALG_ASSIGN_OR_RETURN(side.strings,
                           ParseStringTable(img, strings_id, what));
  PATHALG_RETURN_NOT_OK(ValidateIds(side.keys, side.total,
                                    static_cast<uint32_t>(num_prop_keys),
                                    false, what));
  for (uint64_t i = 0; i < side.total; ++i) {
    if (side.types[i] > static_cast<uint8_t>(Value::Type::kString)) {
      return Status::InvalidArgument(std::string(what) +
                                     " has an unknown value type tag " +
                                     std::to_string(side.types[i]));
    }
    if (side.types[i] == static_cast<uint8_t>(Value::Type::kString) &&
        side.payloads[i] >= side.strings.count) {
      return Status::InvalidArgument(std::string(what) +
                                     " string payload index out of range");
    }
  }
  return Status::OK();
}

/// Validates every section of `img` and fills `out` with typed pointers.
/// After this returns OK, all decode paths (eager and lazy) can trust the
/// data unconditionally.
Status ParseLayout(const ParsedImage& img, DecodedLayout& out) {
  out.num_nodes = img.header.num_nodes;
  out.num_edges = img.header.num_edges;
  // Dense 32-bit ids: a count that cannot be represented rejects early
  // (also guards the (count+1) arithmetic below).
  if (out.num_nodes >= kInvalidId || out.num_edges >= kInvalidId) {
    return Status::InvalidArgument("snapshot node/edge count out of range");
  }

  PATHALG_ASSIGN_OR_RETURN(
      out.label_names, ParseStringTable(img, SectionId::kLabelNames, "labels"));
  PATHALG_ASSIGN_OR_RETURN(
      out.prop_key_names,
      ParseStringTable(img, SectionId::kPropKeyNames, "prop keys"));
  out.num_labels = out.label_names.count;
  out.num_prop_keys = out.prop_key_names.count;
  if (out.num_labels >= kNoLabel) {
    return Status::InvalidArgument("snapshot label count out of range");
  }

  const size_t n = out.num_nodes, e = out.num_edges, l = out.num_labels;
  PATHALG_ASSIGN_OR_RETURN(out.node_labels,
                           TypedSection<uint32_t>(img, SectionId::kNodeLabels,
                                                  n, "node labels"));
  PATHALG_ASSIGN_OR_RETURN(
      out.edge_src,
      TypedSection<uint32_t>(img, SectionId::kEdgeSrc, e, "edge sources"));
  PATHALG_ASSIGN_OR_RETURN(
      out.edge_dst,
      TypedSection<uint32_t>(img, SectionId::kEdgeDst, e, "edge targets"));
  PATHALG_ASSIGN_OR_RETURN(out.edge_labels,
                           TypedSection<uint32_t>(img, SectionId::kEdgeLabels,
                                                  e, "edge labels"));
  PATHALG_ASSIGN_OR_RETURN(
      out.csr_out_offsets,
      TypedSection<uint32_t>(img, SectionId::kCsrOutOffsets, n + 1,
                             "out-CSR offsets"));
  PATHALG_ASSIGN_OR_RETURN(
      out.csr_out_edges,
      TypedSection<uint32_t>(img, SectionId::kCsrOutEdges, e,
                             "out-CSR edges"));
  PATHALG_ASSIGN_OR_RETURN(
      out.csr_out_labels,
      TypedSection<uint32_t>(img, SectionId::kCsrOutLabels, e,
                             "out-CSR labels"));
  PATHALG_ASSIGN_OR_RETURN(
      out.csr_in_offsets,
      TypedSection<uint32_t>(img, SectionId::kCsrInOffsets, n + 1,
                             "in-CSR offsets"));
  PATHALG_ASSIGN_OR_RETURN(
      out.csr_in_edges,
      TypedSection<uint32_t>(img, SectionId::kCsrInEdges, e, "in-CSR edges"));
  PATHALG_ASSIGN_OR_RETURN(
      out.csr_in_labels,
      TypedSection<uint32_t>(img, SectionId::kCsrInLabels, e,
                             "in-CSR labels"));
  PATHALG_ASSIGN_OR_RETURN(
      out.label_offsets,
      TypedSection<uint32_t>(img, SectionId::kLabelOffsets, l + 1,
                             "label-CSR offsets"));
  // The label partition covers labelled edges only, so its length comes
  // from its own offsets array (≤ num_edges).
  {
    const SectionView& v = img.at(SectionId::kLabelEdges);
    if (v.size % sizeof(uint32_t) != 0) {
      return Status::InvalidArgument("label-CSR edges section is ragged");
    }
    out.num_label_edges = v.size / sizeof(uint32_t);
    if (out.num_label_edges > e) {
      return Status::InvalidArgument(
          "label-CSR edges section larger than the edge count");
    }
    out.label_edges = reinterpret_cast<const uint32_t*>(v.data);
  }

  const auto lim_n = static_cast<uint32_t>(n);
  const auto lim_e = static_cast<uint32_t>(e);
  const auto lim_l = static_cast<uint32_t>(l);
  PATHALG_RETURN_NOT_OK(
      ValidateIds(out.node_labels, n, lim_l, true, "node labels"));
  PATHALG_RETURN_NOT_OK(
      ValidateIds(out.edge_src, e, lim_n, false, "edge sources"));
  PATHALG_RETURN_NOT_OK(
      ValidateIds(out.edge_dst, e, lim_n, false, "edge targets"));
  PATHALG_RETURN_NOT_OK(
      ValidateIds(out.edge_labels, e, lim_l, true, "edge labels"));
  PATHALG_RETURN_NOT_OK(
      ValidateOffsets(out.csr_out_offsets, n, e, "out-CSR"));
  PATHALG_RETURN_NOT_OK(ValidateOffsets(out.csr_in_offsets, n, e, "in-CSR"));
  PATHALG_RETURN_NOT_OK(ValidateOffsets(out.label_offsets, l,
                                        out.num_label_edges, "label-CSR"));
  PATHALG_RETURN_NOT_OK(
      ValidateIds(out.csr_out_edges, e, lim_e, false, "out-CSR edges"));
  PATHALG_RETURN_NOT_OK(
      ValidateIds(out.csr_in_edges, e, lim_e, false, "in-CSR edges"));
  PATHALG_RETURN_NOT_OK(ValidateIds(out.label_edges, out.num_label_edges,
                                    lim_e, false, "label-CSR edges"));
  PATHALG_RETURN_NOT_OK(
      ValidateIds(out.csr_out_labels, e, lim_l, true, "out-CSR labels"));
  PATHALG_RETURN_NOT_OK(
      ValidateIds(out.csr_in_labels, e, lim_l, true, "in-CSR labels"));

  PATHALG_ASSIGN_OR_RETURN(
      out.node_names, ParseStringTable(img, SectionId::kNodeNames,
                                       "node names"));
  PATHALG_ASSIGN_OR_RETURN(
      out.edge_names, ParseStringTable(img, SectionId::kEdgeNames,
                                       "edge names"));
  if (out.node_names.count != n) {
    return Status::InvalidArgument("node name count mismatch");
  }
  if (out.edge_names.count != e) {
    return Status::InvalidArgument("edge name count mismatch");
  }

  PATHALG_RETURN_NOT_OK(ParsePropSide(
      img, n, out.num_prop_keys, SectionId::kNodePropOffsets,
      SectionId::kNodePropKeys, SectionId::kNodePropTypes,
      SectionId::kNodePropPayloads, SectionId::kNodePropStrings,
      "node props", out.node_props));
  PATHALG_RETURN_NOT_OK(ParsePropSide(
      img, e, out.num_prop_keys, SectionId::kEdgePropOffsets,
      SectionId::kEdgePropKeys, SectionId::kEdgePropTypes,
      SectionId::kEdgePropPayloads, SectionId::kEdgePropStrings,
      "edge props", out.edge_props));
  return Status::OK();
}

Value DecodeValue(uint8_t type, uint64_t payload, const StringTable& pool) {
  switch (static_cast<Value::Type>(type)) {
    case Value::Type::kNull:
      return Value();
    case Value::Type::kBool:
      return Value(payload != 0);
    case Value::Type::kInt: {
      int64_t i;
      std::memcpy(&i, &payload, sizeof(i));
      return Value(i);
    }
    case Value::Type::kDouble: {
      double d;
      std::memcpy(&d, &payload, sizeof(d));
      return Value(d);
    }
    case Value::Type::kString:
      return Value(pool.Get(payload));
  }
  return Value();
}

std::vector<PropertyList> DecodeProps(const DecodedLayout::PropSide& side,
                                      size_t num_objects) {
  std::vector<PropertyList> out(num_objects);
  for (size_t i = 0; i < num_objects; ++i) {
    PropertyList& list = out[i];
    list.reserve(side.offsets[i + 1] - side.offsets[i]);
    for (uint64_t j = side.offsets[i]; j < side.offsets[i + 1]; ++j) {
      list.emplace_back(side.keys[j],
                        DecodeValue(side.types[j], side.payloads[j],
                                    side.strings));
    }
  }
  return out;
}

std::vector<std::string> DecodeStrings(const StringTable& t) {
  std::vector<std::string> out;
  out.reserve(t.count);
  for (uint64_t i = 0; i < t.count; ++i) out.push_back(t.Get(i));
  return out;
}

template <typename Map>
Map BuildIndex(const std::vector<std::string>& names) {
  Map index;
  index.reserve(names.size());
  for (uint32_t i = 0; i < names.size(); ++i) {
    index.emplace(names[i], i);  // first occurrence wins, like GraphBuilder
  }
  return index;
}

template <typename T>
std::vector<T> CopyArray(const T* data, size_t count) {
  return std::vector<T>(data, data + count);
}

}  // namespace

/// PropertyGraph friend through which the reader writes private fields.
/// Defined only in this translation unit.
class SnapshotAccess {
 public:
  /// Builds the graph from a validated layout. `backing` is non-null for
  /// mapped mode (and keeps the mapping alive through the graph).
  static PropertyGraph Assemble(const DecodedLayout& d,
                                std::shared_ptr<const MappedFile> backing);
};

PropertyGraph SnapshotAccess::Assemble(
    const DecodedLayout& d, std::shared_ptr<const MappedFile> backing) {
  PropertyGraph g;
  const size_t n = d.num_nodes, e = d.num_edges;

  if (backing == nullptr) {
    g.node_labels_ = FlatArray<LabelId>(CopyArray(d.node_labels, n));
    g.edge_src_ = FlatArray<NodeId>(CopyArray(d.edge_src, e));
    g.edge_dst_ = FlatArray<NodeId>(CopyArray(d.edge_dst, e));
    g.edge_labels_ = FlatArray<LabelId>(CopyArray(d.edge_labels, e));
    g.csr_out_offsets_ =
        FlatArray<uint32_t>(CopyArray(d.csr_out_offsets, n + 1));
    g.csr_out_edges_ = FlatArray<EdgeId>(CopyArray(d.csr_out_edges, e));
    g.csr_out_labels_ = FlatArray<LabelId>(CopyArray(d.csr_out_labels, e));
    g.csr_in_offsets_ = FlatArray<uint32_t>(CopyArray(d.csr_in_offsets, n + 1));
    g.csr_in_edges_ = FlatArray<EdgeId>(CopyArray(d.csr_in_edges, e));
    g.csr_in_labels_ = FlatArray<LabelId>(CopyArray(d.csr_in_labels, e));
    g.label_offsets_ =
        FlatArray<uint32_t>(CopyArray(d.label_offsets, d.num_labels + 1));
    g.label_edges_ = FlatArray<EdgeId>(CopyArray(d.label_edges,
                                                 d.num_label_edges));
  } else {
    g.node_labels_ = FlatArray<LabelId>::View(d.node_labels, n);
    g.edge_src_ = FlatArray<NodeId>::View(d.edge_src, e);
    g.edge_dst_ = FlatArray<NodeId>::View(d.edge_dst, e);
    g.edge_labels_ = FlatArray<LabelId>::View(d.edge_labels, e);
    g.csr_out_offsets_ = FlatArray<uint32_t>::View(d.csr_out_offsets, n + 1);
    g.csr_out_edges_ = FlatArray<EdgeId>::View(d.csr_out_edges, e);
    g.csr_out_labels_ = FlatArray<LabelId>::View(d.csr_out_labels, e);
    g.csr_in_offsets_ = FlatArray<uint32_t>::View(d.csr_in_offsets, n + 1);
    g.csr_in_edges_ = FlatArray<EdgeId>::View(d.csr_in_edges, e);
    g.csr_in_labels_ = FlatArray<LabelId>::View(d.csr_in_labels, e);
    g.label_offsets_ =
        FlatArray<uint32_t>::View(d.label_offsets, d.num_labels + 1);
    g.label_edges_ = FlatArray<EdgeId>::View(d.label_edges,
                                             d.num_label_edges);
  }

  // Label & prop-key interning tables are tiny: always decoded eagerly so
  // FindLabel/σ planning needs no lazy hop.
  g.labels_ = DecodeStrings(d.label_names);
  g.label_index_ =
      BuildIndex<std::unordered_map<std::string, LabelId>>(g.labels_);
  g.prop_keys_ = DecodeStrings(d.prop_key_names);
  g.prop_key_index_ =
      BuildIndex<std::unordered_map<std::string, PropKeyId>>(g.prop_keys_);

  if (backing == nullptr) {
    g.node_props_ = DecodeProps(d.node_props, n);
    g.edge_props_ = DecodeProps(d.edge_props, e);
    g.node_names_ = DecodeStrings(d.node_names);
    g.edge_names_ = DecodeStrings(d.edge_names);
    g.node_name_index_ =
        BuildIndex<std::unordered_map<std::string, NodeId>>(g.node_names_);
    return g;
  }

  // Mapped mode: park decode hooks over the validated layout; they fire at
  // most once each, on first property/name access. The hooks capture `d`
  // by value (plain pointers into the mapping, which `backing` outlives).
  auto lazy = std::make_unique<PropertyGraph::LazySections>();
  lazy->backing_data = backing->data();
  lazy->backing_size = backing->size();
  lazy->decode_node_props = [d, n](PropertyGraph* pg) {
    pg->node_props_ = DecodeProps(d.node_props, n);
  };
  lazy->decode_edge_props = [d, e](PropertyGraph* pg) {
    pg->edge_props_ = DecodeProps(d.edge_props, e);
  };
  lazy->decode_names = [d](PropertyGraph* pg) {
    pg->node_names_ = DecodeStrings(d.node_names);
    pg->edge_names_ = DecodeStrings(d.edge_names);
    pg->node_name_index_ =
        BuildIndex<std::unordered_map<std::string, NodeId>>(pg->node_names_);
  };
  lazy->backing = std::shared_ptr<const void>(backing, backing->data());
  g.lazy_ = std::move(lazy);
  return g;
}

Result<PropertyGraph> SnapshotReader::Open(const std::string& path,
                                           const OpenOptions& options) {
  PATHALG_ASSIGN_OR_RETURN(std::shared_ptr<MappedFile> mf,
                           MappedFile::Open(path));
  // Fires where a real torn/corrupt image surfaces: after the file
  // mapped cleanly, before validation — the Status takes the same
  // "snapshot '<path>': ..." shape a checksum failure would.
  if (FaultInjector::Global().ShouldFail(FaultSite::kSnapshotRead)) {
    const Status injected = InjectedFault(FaultSite::kSnapshotRead);
    return Status(injected.code(),
                  "snapshot '" + path + "': " + injected.message());
  }
  ParsedImage img;
  Status st = ParseImage(mf->data(), mf->size(), options.verify_checksums,
                         img);
  if (!st.ok()) {
    return Status(st.code(), "snapshot '" + path + "': " + st.message());
  }
  DecodedLayout layout;
  st = ParseLayout(img, layout);
  if (!st.ok()) {
    return Status(st.code(), "snapshot '" + path + "': " + st.message());
  }
  return SnapshotAccess::Assemble(layout, options.mode == OpenMode::kMap
                                   ? std::move(mf)
                                   : nullptr);
}

Result<PropertyGraph> SnapshotReader::FromBuffer(const void* data, size_t size,
                                                 bool verify_checksums) {
  // Re-align: callers hand arbitrary buffers (std::string payloads in
  // tests); the typed section views need 8-byte alignment.
  std::vector<uint64_t> aligned((size + sizeof(uint64_t) - 1) /
                                sizeof(uint64_t));
  if (size > 0) std::memcpy(aligned.data(), data, size);
  ParsedImage img;
  PATHALG_RETURN_NOT_OK(
      ParseImage(aligned.data(), size, verify_checksums, img));
  DecodedLayout layout;
  PATHALG_RETURN_NOT_OK(ParseLayout(img, layout));
  return SnapshotAccess::Assemble(layout, nullptr);
}

Result<SnapshotReader::Info> SnapshotReader::Probe(const std::string& path) {
  PATHALG_ASSIGN_OR_RETURN(std::shared_ptr<MappedFile> mf,
                           MappedFile::Open(path));
  if (mf->size() < sizeof(SnapshotHeader)) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "': file smaller than the header");
  }
  SnapshotHeader h;
  std::memcpy(&h, mf->data(), sizeof(h));
  if (std::memcmp(h.magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "': bad magic: not a pathalg snapshot");
  }
  Info info;
  info.version = h.version;
  info.section_count = h.section_count;
  info.num_nodes = h.num_nodes;
  info.num_edges = h.num_edges;
  info.file_size = h.file_size;
  info.version_id = h.table_checksum;
  info.parent_version = h.parent_version;
  return info;
}

}  // namespace pathalg::storage
