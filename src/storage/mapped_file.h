#ifndef PATHALG_STORAGE_MAPPED_FILE_H_
#define PATHALG_STORAGE_MAPPED_FILE_H_

/// \file mapped_file.h
/// Read-only memory mapping of a whole file. On POSIX this is mmap(2), so
/// opening a multi-gigabyte snapshot costs a handful of syscalls and pages
/// fault in on demand — the out-of-core path the ROADMAP asks for. On
/// platforms without mmap the file is read into a private buffer, which
/// keeps the API (and callers) identical at the cost of eager I/O.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace pathalg::storage {

class MappedFile {
 public:
  /// Maps `path` read-only. Fails with NotFound when the file does not
  /// exist and InvalidArgument on I/O errors. Empty files map to a valid
  /// object with size() == 0.
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const void* data() const { return data_; }
  size_t size() const { return size_; }

  /// True when the contents live in a kernel mapping rather than a private
  /// buffer (introspection for tests; copy-mode readers don't care).
  bool is_mapped() const { return mapped_; }

 private:
  MappedFile() = default;

  const void* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::vector<unsigned char> fallback_;  // used when mmap is unavailable
};

}  // namespace pathalg::storage

#endif  // PATHALG_STORAGE_MAPPED_FILE_H_
