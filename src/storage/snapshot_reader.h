#ifndef PATHALG_STORAGE_SNAPSHOT_READER_H_
#define PATHALG_STORAGE_SNAPSHOT_READER_H_

/// \file snapshot_reader.h
/// Opens binary graph snapshots written by SnapshotWriter. Two modes:
///
///  - kCopy: every section is copied into graph-owned vectors and decoded
///    eagerly. Portable, no lifetime coupling to the file.
///  - kMap (default): the file is mmap'd and the query-hot flat arrays
///    (CSR offsets/edges/labels, label partitions, src/dst) are served
///    zero-copy straight out of the mapping; property columns and display
///    names stay encoded until first access (PropertyGraph's lazy
///    sections). Opening is O(validation), not O(decode) — the
///    `--snapshot-dir` fast-restart path.
///
/// Every open fully validates structure (magic, version, endianness,
/// section table bounds and alignment, offset-array monotonicity, id
/// ranges) before any array is trusted, and verifies per-section checksums
/// unless `verify_checksums` is cleared, so a corrupt or truncated file
/// always fails with a clean Status — never UB. The lazy decode hooks run
/// only over data that already passed validation.

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "graph/property_graph.h"

namespace pathalg::storage {

enum class OpenMode {
  kCopy,  // copy sections into owned vectors, decode everything eagerly
  kMap,   // zero-copy views over an mmap; lazy property/name decode
};

struct OpenOptions {
  OpenMode mode = OpenMode::kMap;
  /// Verify per-section FNV checksums (and the table checksum) at open.
  /// Clearing this skips the full-file scan; structural validation still
  /// runs.
  bool verify_checksums = true;
};

class SnapshotReader {
 public:
  using OpenMode = ::pathalg::storage::OpenMode;
  using OpenOptions = ::pathalg::storage::OpenOptions;

  /// Opens the snapshot at `path`.
  static Result<PropertyGraph> Open(const std::string& path,
                                    const OpenOptions& options = {});

  /// Decodes a snapshot image held in memory (always copy mode — the
  /// buffer need not outlive the graph). Used by the round-trip and
  /// corruption tests.
  static Result<PropertyGraph> FromBuffer(const void* data, size_t size,
                                          bool verify_checksums = true);

  /// Header-only metadata, for `graph_convert --info`, cache probes and
  /// the live-mutation recovery path (which binds delta journals to
  /// `version_id` without decoding the snapshot).
  struct Info {
    uint32_t version = 0;
    uint32_t section_count = 0;
    uint64_t num_nodes = 0;
    uint64_t num_edges = 0;
    uint64_t file_size = 0;
    /// Content-addressed version id: the header's section-table checksum
    /// (SnapshotWriter::VersionId of the stored graph).
    uint64_t version_id = 0;
    /// Version id of the base this snapshot was compacted from; 0 = root.
    uint64_t parent_version = 0;
  };
  static Result<Info> Probe(const std::string& path);
};

}  // namespace pathalg::storage

#endif  // PATHALG_STORAGE_SNAPSHOT_READER_H_
