#include "storage/mapped_file.h"

#include <cerrno>
#include <cstring>

#include "common/fault_injection.h"

#if defined(_WIN32)
#include <cstdio>
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace pathalg::storage {

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path) {
  auto mf = std::shared_ptr<MappedFile>(new MappedFile());
#if defined(_WIN32)
  // Portable fallback: read the whole file into a private buffer.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::fseek(f, 0, SEEK_END);
  long len = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (len < 0) {
    std::fclose(f);
    return Status::InvalidArgument("cannot stat '" + path + "'");
  }
  mf->fallback_.resize(static_cast<size_t>(len));
  if (len > 0 &&
      std::fread(mf->fallback_.data(), 1, mf->fallback_.size(), f) !=
          mf->fallback_.size()) {
    std::fclose(f);
    return Status::InvalidArgument("short read on '" + path + "'");
  }
  std::fclose(f);
  mf->data_ = mf->fallback_.data();
  mf->size_ = mf->fallback_.size();
#else
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such snapshot file: '" + path + "'");
    }
    return Status::InvalidArgument("cannot open '" + path +
                                   "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::InvalidArgument("cannot stat '" + path +
                                   "': " + std::strerror(errno));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument("snapshot path is not a regular file: '" +
                                   path + "'");
  }
  mf->size_ = static_cast<size_t>(st.st_size);
  // Injection fires after open/fstat succeed, so a missing file still
  // reports NotFound (a normal cache miss) and the injected Status
  // models an I/O error on an *existing* file — the case the catalog's
  // quarantine/rebuild path degrades around.
  if (FaultInjector::Global().ShouldFail(FaultSite::kSnapshotMmap)) {
    ::close(fd);
    return InjectedFault(FaultSite::kSnapshotMmap);
  }
  if (mf->size_ > 0) {
    void* p = ::mmap(nullptr, mf->size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      return Status::InvalidArgument("mmap failed on '" + path +
                                     "': " + std::strerror(errno));
    }
    mf->data_ = p;
    mf->mapped_ = true;
  }
  // The mapping keeps its own reference to the file; the descriptor is no
  // longer needed.
  ::close(fd);
#endif
  return mf;
}

MappedFile::~MappedFile() {
#if !defined(_WIN32)
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<void*>(data_), size_);
  }
#endif
}

}  // namespace pathalg::storage
