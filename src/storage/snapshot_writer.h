#ifndef PATHALG_STORAGE_SNAPSHOT_WRITER_H_
#define PATHALG_STORAGE_SNAPSHOT_WRITER_H_

/// \file snapshot_writer.h
/// Serializes a PropertyGraph into the versioned binary snapshot format
/// (snapshot_format.h). The writer is deterministic: the same logical
/// graph always produces byte-identical output, regardless of whether the
/// source graph was freshly built or itself loaded from a snapshot — the
/// round-trip tests pin this, and it is what makes the catalog's
/// `--snapshot-dir` cache files stable across server restarts.

#include <string>

#include "common/status.h"
#include "graph/property_graph.h"

namespace pathalg::storage {

class SnapshotWriter {
 public:
  /// Serializes `g` into an in-memory snapshot image.
  static std::string Serialize(const PropertyGraph& g);

  /// Serializes `g` and writes it to `path` (via a same-directory temp
  /// file + rename, so concurrent readers never observe a half-written
  /// snapshot).
  static Status Write(const PropertyGraph& g, const std::string& path);
};

}  // namespace pathalg::storage

#endif  // PATHALG_STORAGE_SNAPSHOT_WRITER_H_
