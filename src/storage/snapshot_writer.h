#ifndef PATHALG_STORAGE_SNAPSHOT_WRITER_H_
#define PATHALG_STORAGE_SNAPSHOT_WRITER_H_

/// \file snapshot_writer.h
/// Serializes a PropertyGraph into the versioned binary snapshot format
/// (snapshot_format.h). The writer is deterministic: the same logical
/// graph always produces byte-identical output, regardless of whether the
/// source graph was freshly built or itself loaded from a snapshot — the
/// round-trip tests pin this, and it is what makes the catalog's
/// `--snapshot-dir` cache files stable across server restarts.
///
/// Determinism also yields *content-addressable versions*: the header's
/// section-table checksum is a pure function of the graph's content, and
/// the live-mutation subsystem (src/mutation/) uses it as the version id
/// reported by `!version` and chained through `parent_version` when a
/// compaction writes the next version.

#include <cstdint>
#include <string>

#include "common/status.h"
#include "graph/property_graph.h"

namespace pathalg::storage {

class SnapshotWriter {
 public:
  /// Serializes `g` into an in-memory snapshot image. `parent_version`
  /// lands in the header's chaining field (0 = root version) and is
  /// excluded from the table checksum, so it never perturbs version ids.
  static std::string Serialize(const PropertyGraph& g,
                               uint64_t parent_version = 0);

  /// Serializes `g` and writes it to `path` (via a same-directory temp
  /// file + rename, so concurrent readers never observe a half-written
  /// snapshot).
  static Status Write(const PropertyGraph& g, const std::string& path,
                      uint64_t parent_version = 0);

  /// The stable content-addressed version id of `g`: the section-table
  /// checksum its serialized form carries. Two graphs have equal version
  /// ids iff their serialized snapshots are byte-identical (modulo the
  /// parent_version chaining field). O(serialization) — callers cache it
  /// per version.
  static uint64_t VersionId(const PropertyGraph& g);
};

}  // namespace pathalg::storage

#endif  // PATHALG_STORAGE_SNAPSHOT_WRITER_H_
