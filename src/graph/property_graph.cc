#include "graph/property_graph.h"

#include <algorithm>

namespace pathalg {

LabelId PropertyGraph::FindLabel(std::string_view name) const {
  auto it = label_index_.find(std::string(name));
  return it == label_index_.end() ? kNoLabel : it->second;
}

PropKeyId PropertyGraph::FindPropKey(std::string_view name) const {
  auto it = prop_key_index_.find(std::string(name));
  return it == prop_key_index_.end() ? kInvalidId : it->second;
}

namespace {
const Value* LookupProp(const PropertyList& props, PropKeyId key) {
  // Property lists are sorted by key id (see GraphBuilder::InternProps).
  auto it = std::lower_bound(
      props.begin(), props.end(), key,
      [](const std::pair<PropKeyId, Value>& p, PropKeyId k) {
        return p.first < k;
      });
  if (it != props.end() && it->first == key) return &it->second;
  return nullptr;
}
}  // namespace

const Value* PropertyGraph::NodeProperty(NodeId n, PropKeyId key) const {
  if (!IsValidNode(n) || key == kInvalidId) return nullptr;
  return LookupProp(node_props_[n], key);
}

const Value* PropertyGraph::EdgeProperty(EdgeId e, PropKeyId key) const {
  if (!IsValidEdge(e) || key == kInvalidId) return nullptr;
  return LookupProp(edge_props_[e], key);
}

const Value* PropertyGraph::NodeProperty(NodeId n,
                                         std::string_view key) const {
  return NodeProperty(n, FindPropKey(key));
}

const Value* PropertyGraph::EdgeProperty(EdgeId e,
                                         std::string_view key) const {
  return EdgeProperty(e, FindPropKey(key));
}

NeighborRange PropertyGraph::EdgesWithLabel(LabelId label) const {
  // kNoLabel (== UINT32_MAX) and never-interned ids both fall out of the
  // offsets range and get the canonical empty range — "no label" is not a
  // label and must not alias any bucket.
  return CsrSlice(label_offsets_, label_edges_, label);
}

NeighborRange PropertyGraph::LabelSlice(const std::vector<uint32_t>& offsets,
                                        const std::vector<EdgeId>& edges,
                                        const std::vector<LabelId>& labels,
                                        uint32_t key, LabelId label) {
  if (size_t{key} + 1 >= offsets.size() || label == kNoLabel) {
    return NeighborRange();
  }
  const LabelId* lo = labels.data() + offsets[key];
  const LabelId* hi = labels.data() + offsets[key + 1];
  const LabelId* first = std::lower_bound(lo, hi, label);
  const LabelId* last = std::upper_bound(first, hi, label);
  const EdgeId* base = edges.data() + (first - labels.data());
  return NeighborRange(base, base + (last - first));
}

NeighborRange PropertyGraph::OutEdgesWithLabel(NodeId n, LabelId label) const {
  return LabelSlice(csr_out_offsets_, csr_out_edges_, csr_out_labels_, n,
                    label);
}

NeighborRange PropertyGraph::InEdgesWithLabel(NodeId n, LabelId label) const {
  return LabelSlice(csr_in_offsets_, csr_in_edges_, csr_in_labels_, n, label);
}

NodeId PropertyGraph::FindNodeByName(std::string_view name) const {
  auto it = node_name_index_.find(std::string(name));
  return it == node_name_index_.end() ? kInvalidId : it->second;
}

NodeId PropertyGraph::FindNodeByProperty(std::string_view key,
                                         const Value& value) const {
  PropKeyId k = FindPropKey(key);
  if (k == kInvalidId) return kInvalidId;
  for (NodeId n = 0; n < num_nodes(); ++n) {
    const Value* v = NodeProperty(n, k);
    if (v != nullptr && *v == value) return n;
  }
  return kInvalidId;
}

NodeId GraphBuilder::AddNode(
    std::string_view label, std::vector<std::pair<std::string, Value>> props) {
  NodeId id = static_cast<NodeId>(graph_.num_nodes());
  return AddNamedNode("n" + std::to_string(id + 1), label, std::move(props));
}

NodeId GraphBuilder::AddNamedNode(
    std::string name, std::string_view label,
    std::vector<std::pair<std::string, Value>> props) {
  NodeId id = static_cast<NodeId>(graph_.num_nodes());
  graph_.node_labels_.push_back(label.empty() ? kNoLabel
                                              : InternLabel(label));
  graph_.node_props_.push_back(InternProps(std::move(props)));
  graph_.node_name_index_.emplace(name, id);
  graph_.node_names_.push_back(std::move(name));
  return id;
}

Result<EdgeId> GraphBuilder::AddEdge(
    NodeId src, NodeId dst, std::string_view label,
    std::vector<std::pair<std::string, Value>> props) {
  EdgeId id = static_cast<EdgeId>(graph_.num_edges());
  return AddNamedEdge("e" + std::to_string(id + 1), src, dst, label,
                      std::move(props));
}

Result<EdgeId> GraphBuilder::AddNamedEdge(
    std::string name, NodeId src, NodeId dst, std::string_view label,
    std::vector<std::pair<std::string, Value>> props) {
  if (!graph_.IsValidNode(src) || !graph_.IsValidNode(dst)) {
    return Status::InvalidArgument(
        "edge '" + name + "' references unknown node id " +
        std::to_string(graph_.IsValidNode(src) ? dst : src));
  }
  EdgeId id = static_cast<EdgeId>(graph_.num_edges());
  graph_.edge_src_.push_back(src);
  graph_.edge_dst_.push_back(dst);
  graph_.edge_labels_.push_back(label.empty() ? kNoLabel
                                              : InternLabel(label));
  graph_.edge_props_.push_back(InternProps(std::move(props)));
  graph_.edge_names_.push_back(std::move(name));
  return id;
}

namespace {

/// Counting-sorts edge ids into one CSR direction: bucket by `key(e)` over
/// `num_keys` buckets (ascending edge id within each bucket), then sorts
/// each bucket by label so per-(node,label) lookups are contiguous runs.
/// `labels` comes out parallel to `edges`, carrying each edge's label for
/// the binary-searched slice lookups.
template <typename KeyFn>
void BuildCsrDirection(size_t num_keys, size_t num_edges, KeyFn key,
                       const std::vector<LabelId>& edge_labels,
                       std::vector<uint32_t>& offsets,
                       std::vector<EdgeId>& edges,
                       std::vector<LabelId>& labels) {
  offsets.assign(num_keys + 1, 0);
  for (EdgeId e = 0; e < num_edges; ++e) offsets[key(e) + 1]++;
  for (size_t k = 0; k < num_keys; ++k) offsets[k + 1] += offsets[k];
  edges.assign(num_edges, 0);
  std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (EdgeId e = 0; e < num_edges; ++e) edges[cursor[key(e)]++] = e;
  // Per-bucket (label, edge id) order. stable_sort preserves the ascending
  // edge-id order within equal labels from the counting pass.
  for (size_t k = 0; k < num_keys; ++k) {
    std::stable_sort(edges.begin() + offsets[k],
                     edges.begin() + offsets[k + 1],
                     [&](EdgeId a, EdgeId b) {
                       return edge_labels[a] < edge_labels[b];
                     });
  }
  labels.assign(num_edges, kNoLabel);
  for (size_t i = 0; i < num_edges; ++i) {
    labels[i] = edge_labels[edges[i]];
  }
}

}  // namespace

PropertyGraph GraphBuilder::Build() {
  PropertyGraph g = std::move(graph_);
  graph_ = PropertyGraph();
  const size_t num_edges = g.num_edges();

  BuildCsrDirection(
      g.num_nodes(), num_edges, [&](EdgeId e) { return g.edge_src_[e]; },
      g.edge_labels_, g.csr_out_offsets_, g.csr_out_edges_,
      g.csr_out_labels_);
  BuildCsrDirection(
      g.num_nodes(), num_edges, [&](EdgeId e) { return g.edge_dst_[e]; },
      g.edge_labels_, g.csr_in_offsets_, g.csr_in_edges_,
      g.csr_in_labels_);

  // Global label CSR over labelled edges only; kNoLabel edges (key ==
  // UINT32_MAX) have no bucket by construction.
  const size_t num_labels = g.labels_.size();
  g.label_offsets_.assign(num_labels + 1, 0);
  for (EdgeId e = 0; e < num_edges; ++e) {
    if (g.edge_labels_[e] != kNoLabel) g.label_offsets_[g.edge_labels_[e] + 1]++;
  }
  for (size_t l = 0; l < num_labels; ++l) {
    g.label_offsets_[l + 1] += g.label_offsets_[l];
  }
  g.label_edges_.assign(g.label_offsets_[num_labels], 0);
  std::vector<uint32_t> cursor(g.label_offsets_.begin(),
                               g.label_offsets_.end() - 1);
  for (EdgeId e = 0; e < num_edges; ++e) {
    if (g.edge_labels_[e] != kNoLabel) {
      g.label_edges_[cursor[g.edge_labels_[e]]++] = e;
    }
  }
  return g;
}

LabelId GraphBuilder::InternLabel(std::string_view name) {
  auto [it, inserted] = graph_.label_index_.emplace(
      std::string(name), static_cast<LabelId>(graph_.labels_.size()));
  if (inserted) graph_.labels_.emplace_back(name);
  return it->second;
}

PropKeyId GraphBuilder::InternPropKey(std::string_view name) {
  auto [it, inserted] = graph_.prop_key_index_.emplace(
      std::string(name), static_cast<PropKeyId>(graph_.prop_keys_.size()));
  if (inserted) graph_.prop_keys_.emplace_back(name);
  return it->second;
}

PropertyList GraphBuilder::InternProps(
    std::vector<std::pair<std::string, Value>> props) {
  PropertyList out;
  out.reserve(props.size());
  for (auto& [key, value] : props) {
    out.emplace_back(InternPropKey(key), std::move(value));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  // Last writer wins on duplicate keys: within each equal-key run (stable
  // sort preserves insertion order) keep the final element.
  PropertyList dedup;
  for (size_t i = 0; i < out.size(); ++i) {
    if (i + 1 < out.size() && out[i + 1].first == out[i].first) continue;
    dedup.push_back(std::move(out[i]));
  }
  return dedup;
}

}  // namespace pathalg
