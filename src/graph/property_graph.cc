#include "graph/property_graph.h"

#include <algorithm>

namespace pathalg {

PropertyGraph::PropertyGraph(const PropertyGraph& other) { *this = other; }

PropertyGraph& PropertyGraph::operator=(const PropertyGraph& other) {
  if (this == &other) return *this;
  // Decode everything on the source first so the member-wise copy below
  // captures complete owned representations; the copy then drops lazy_,
  // making it a plain owned graph independent of any mapping.
  other.EnsureNodeProps();
  other.EnsureEdgeProps();
  other.EnsureNames();
  node_labels_ = other.node_labels_;
  node_props_ = other.node_props_;
  node_names_ = other.node_names_;
  edge_src_ = other.edge_src_;
  edge_dst_ = other.edge_dst_;
  edge_labels_ = other.edge_labels_;
  edge_props_ = other.edge_props_;
  edge_names_ = other.edge_names_;
  labels_ = other.labels_;
  label_index_ = other.label_index_;
  prop_keys_ = other.prop_keys_;
  prop_key_index_ = other.prop_key_index_;
  csr_out_offsets_ = other.csr_out_offsets_;
  csr_out_edges_ = other.csr_out_edges_;
  csr_out_labels_ = other.csr_out_labels_;
  csr_in_offsets_ = other.csr_in_offsets_;
  csr_in_edges_ = other.csr_in_edges_;
  csr_in_labels_ = other.csr_in_labels_;
  label_offsets_ = other.label_offsets_;
  label_edges_ = other.label_edges_;
  node_name_index_ = other.node_name_index_;
  lazy_.reset();
  return *this;
}

LabelId PropertyGraph::FindLabel(std::string_view name) const {
  auto it = label_index_.find(std::string(name));
  return it == label_index_.end() ? kNoLabel : it->second;
}

PropKeyId PropertyGraph::FindPropKey(std::string_view name) const {
  auto it = prop_key_index_.find(std::string(name));
  return it == prop_key_index_.end() ? kInvalidId : it->second;
}

namespace {
const Value* LookupProp(const PropertyList& props, PropKeyId key) {
  // Property lists are sorted by key id (see GraphBuilder::InternProps).
  auto it = std::lower_bound(
      props.begin(), props.end(), key,
      [](const std::pair<PropKeyId, Value>& p, PropKeyId k) {
        return p.first < k;
      });
  if (it != props.end() && it->first == key) return &it->second;
  return nullptr;
}
}  // namespace

void PropertyGraph::EnsureNodeProps() const {
  if (lazy_ == nullptr) return;
  PropertyGraph* self = const_cast<PropertyGraph*>(this);
  std::call_once(lazy_->node_props_once, [self] {
    self->lazy_->decode_node_props(self);
    self->lazy_->node_props_done.store(true, std::memory_order_release);
  });
}

void PropertyGraph::EnsureEdgeProps() const {
  if (lazy_ == nullptr) return;
  PropertyGraph* self = const_cast<PropertyGraph*>(this);
  std::call_once(lazy_->edge_props_once, [self] {
    self->lazy_->decode_edge_props(self);
    self->lazy_->edge_props_done.store(true, std::memory_order_release);
  });
}

void PropertyGraph::EnsureNames() const {
  if (lazy_ == nullptr) return;
  PropertyGraph* self = const_cast<PropertyGraph*>(this);
  std::call_once(lazy_->names_once, [self] {
    self->lazy_->decode_names(self);
    self->lazy_->names_done.store(true, std::memory_order_release);
  });
}

bool PropertyGraph::node_props_materialized() const {
  return lazy_ == nullptr ||
         lazy_->node_props_done.load(std::memory_order_acquire);
}

bool PropertyGraph::edge_props_materialized() const {
  return lazy_ == nullptr ||
         lazy_->edge_props_done.load(std::memory_order_acquire);
}

bool PropertyGraph::names_materialized() const {
  return lazy_ == nullptr ||
         lazy_->names_done.load(std::memory_order_acquire);
}

std::pair<const void*, size_t> PropertyGraph::backing_span() const {
  if (lazy_ == nullptr) return {nullptr, 0};
  return {lazy_->backing_data, lazy_->backing_size};
}

const Value* PropertyGraph::NodeProperty(NodeId n, PropKeyId key) const {
  if (!IsValidNode(n) || key == kInvalidId) return nullptr;
  EnsureNodeProps();
  return LookupProp(node_props_[n], key);
}

const Value* PropertyGraph::EdgeProperty(EdgeId e, PropKeyId key) const {
  if (!IsValidEdge(e) || key == kInvalidId) return nullptr;
  EnsureEdgeProps();
  return LookupProp(edge_props_[e], key);
}

const Value* PropertyGraph::NodeProperty(NodeId n,
                                         std::string_view key) const {
  return NodeProperty(n, FindPropKey(key));
}

const Value* PropertyGraph::EdgeProperty(EdgeId e,
                                         std::string_view key) const {
  return EdgeProperty(e, FindPropKey(key));
}

NeighborRange PropertyGraph::EdgesWithLabel(LabelId label) const {
  // kNoLabel (== UINT32_MAX) and never-interned ids both fall out of the
  // offsets range and get the canonical empty range — "no label" is not a
  // label and must not alias any bucket.
  return CsrSlice(label_offsets_, label_edges_, label);
}

NeighborRange PropertyGraph::LabelSlice(const FlatArray<uint32_t>& offsets,
                                        const FlatArray<EdgeId>& edges,
                                        const FlatArray<LabelId>& labels,
                                        uint32_t key, LabelId label) {
  if (size_t{key} + 1 >= offsets.size() || label == kNoLabel) {
    return NeighborRange();
  }
  const LabelId* lo = labels.data() + offsets[key];
  const LabelId* hi = labels.data() + offsets[key + 1];
  const LabelId* first = std::lower_bound(lo, hi, label);
  const LabelId* last = std::upper_bound(first, hi, label);
  const EdgeId* base = edges.data() + (first - labels.data());
  return NeighborRange(base, base + (last - first));
}

NeighborRange PropertyGraph::OutEdgesWithLabel(NodeId n, LabelId label) const {
  return LabelSlice(csr_out_offsets_, csr_out_edges_, csr_out_labels_, n,
                    label);
}

NeighborRange PropertyGraph::InEdgesWithLabel(NodeId n, LabelId label) const {
  return LabelSlice(csr_in_offsets_, csr_in_edges_, csr_in_labels_, n, label);
}

NodeId PropertyGraph::FindNodeByName(std::string_view name) const {
  EnsureNames();
  auto it = node_name_index_.find(std::string(name));
  return it == node_name_index_.end() ? kInvalidId : it->second;
}

NodeId PropertyGraph::FindNodeByProperty(std::string_view key,
                                         const Value& value) const {
  PropKeyId k = FindPropKey(key);
  if (k == kInvalidId) return kInvalidId;
  for (NodeId n = 0; n < num_nodes(); ++n) {
    const Value* v = NodeProperty(n, k);
    if (v != nullptr && *v == value) return n;
  }
  return kInvalidId;
}

NodeId GraphBuilder::AddNode(
    std::string_view label, std::vector<std::pair<std::string, Value>> props) {
  NodeId id = static_cast<NodeId>(num_nodes());
  return AddNamedNode("n" + std::to_string(id + 1), label, std::move(props));
}

NodeId GraphBuilder::AddNamedNode(
    std::string name, std::string_view label,
    std::vector<std::pair<std::string, Value>> props) {
  NodeId id = static_cast<NodeId>(num_nodes());
  node_labels_.push_back(label.empty() ? kNoLabel : InternLabel(label));
  node_props_.push_back(InternProps(std::move(props)));
  node_name_index_.emplace(name, id);
  node_names_.push_back(std::move(name));
  return id;
}

Result<EdgeId> GraphBuilder::AddEdge(
    NodeId src, NodeId dst, std::string_view label,
    std::vector<std::pair<std::string, Value>> props) {
  EdgeId id = static_cast<EdgeId>(num_edges());
  return AddNamedEdge("e" + std::to_string(id + 1), src, dst, label,
                      std::move(props));
}

Result<EdgeId> GraphBuilder::AddNamedEdge(
    std::string name, NodeId src, NodeId dst, std::string_view label,
    std::vector<std::pair<std::string, Value>> props) {
  if (src >= num_nodes() || dst >= num_nodes()) {
    return Status::InvalidArgument(
        "edge '" + name + "' references unknown node id " +
        std::to_string(src >= num_nodes() ? src : dst));
  }
  EdgeId id = static_cast<EdgeId>(num_edges());
  edge_src_.push_back(src);
  edge_dst_.push_back(dst);
  edge_labels_.push_back(label.empty() ? kNoLabel : InternLabel(label));
  edge_props_.push_back(InternProps(std::move(props)));
  edge_names_.push_back(std::move(name));
  return id;
}

namespace {

/// Counting-sorts edge ids into one CSR direction: bucket by `key(e)` over
/// `num_keys` buckets (ascending edge id within each bucket), then sorts
/// each bucket by label so per-(node,label) lookups are contiguous runs.
/// `labels` comes out parallel to `edges`, carrying each edge's label for
/// the binary-searched slice lookups.
template <typename KeyFn>
void BuildCsrDirection(size_t num_keys, size_t num_edges, KeyFn key,
                       const std::vector<LabelId>& edge_labels,
                       std::vector<uint32_t>& offsets,
                       std::vector<EdgeId>& edges,
                       std::vector<LabelId>& labels) {
  offsets.assign(num_keys + 1, 0);
  for (EdgeId e = 0; e < num_edges; ++e) offsets[key(e) + 1]++;
  for (size_t k = 0; k < num_keys; ++k) offsets[k + 1] += offsets[k];
  edges.assign(num_edges, 0);
  std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (EdgeId e = 0; e < num_edges; ++e) edges[cursor[key(e)]++] = e;
  // Per-bucket (label, edge id) order. stable_sort preserves the ascending
  // edge-id order within equal labels from the counting pass.
  for (size_t k = 0; k < num_keys; ++k) {
    std::stable_sort(edges.begin() + offsets[k],
                     edges.begin() + offsets[k + 1],
                     [&](EdgeId a, EdgeId b) {
                       return edge_labels[a] < edge_labels[b];
                     });
  }
  labels.assign(num_edges, kNoLabel);
  for (size_t i = 0; i < num_edges; ++i) {
    labels[i] = edge_labels[edges[i]];
  }
}

}  // namespace

PropertyGraph GraphBuilder::Build() {
  PropertyGraph g;
  const size_t num_edges = edge_src_.size();
  const size_t num_nodes = node_labels_.size();

  std::vector<uint32_t> out_offsets, in_offsets;
  std::vector<EdgeId> out_edges, in_edges;
  std::vector<LabelId> out_labels, in_labels;
  BuildCsrDirection(
      num_nodes, num_edges, [&](EdgeId e) { return edge_src_[e]; },
      edge_labels_, out_offsets, out_edges, out_labels);
  BuildCsrDirection(
      num_nodes, num_edges, [&](EdgeId e) { return edge_dst_[e]; },
      edge_labels_, in_offsets, in_edges, in_labels);

  // Global label CSR over labelled edges only; kNoLabel edges (key ==
  // UINT32_MAX) have no bucket by construction.
  const size_t num_labels = labels_.size();
  std::vector<uint32_t> label_offsets(num_labels + 1, 0);
  for (EdgeId e = 0; e < num_edges; ++e) {
    if (edge_labels_[e] != kNoLabel) label_offsets[edge_labels_[e] + 1]++;
  }
  for (size_t l = 0; l < num_labels; ++l) {
    label_offsets[l + 1] += label_offsets[l];
  }
  std::vector<EdgeId> label_edges(label_offsets[num_labels], 0);
  std::vector<uint32_t> cursor(label_offsets.begin(),
                               label_offsets.end() - 1);
  for (EdgeId e = 0; e < num_edges; ++e) {
    if (edge_labels_[e] != kNoLabel) {
      label_edges[cursor[edge_labels_[e]]++] = e;
    }
  }

  g.node_labels_ = FlatArray<LabelId>(std::move(node_labels_));
  g.node_props_ = std::move(node_props_);
  g.node_names_ = std::move(node_names_);
  g.edge_src_ = FlatArray<NodeId>(std::move(edge_src_));
  g.edge_dst_ = FlatArray<NodeId>(std::move(edge_dst_));
  g.edge_labels_ = FlatArray<LabelId>(std::move(edge_labels_));
  g.edge_props_ = std::move(edge_props_);
  g.edge_names_ = std::move(edge_names_);
  g.labels_ = std::move(labels_);
  g.label_index_ = std::move(label_index_);
  g.prop_keys_ = std::move(prop_keys_);
  g.prop_key_index_ = std::move(prop_key_index_);
  g.node_name_index_ = std::move(node_name_index_);
  g.csr_out_offsets_ = FlatArray<uint32_t>(std::move(out_offsets));
  g.csr_out_edges_ = FlatArray<EdgeId>(std::move(out_edges));
  g.csr_out_labels_ = FlatArray<LabelId>(std::move(out_labels));
  g.csr_in_offsets_ = FlatArray<uint32_t>(std::move(in_offsets));
  g.csr_in_edges_ = FlatArray<EdgeId>(std::move(in_edges));
  g.csr_in_labels_ = FlatArray<LabelId>(std::move(in_labels));
  g.label_offsets_ = FlatArray<uint32_t>(std::move(label_offsets));
  g.label_edges_ = FlatArray<EdgeId>(std::move(label_edges));

  *this = GraphBuilder();
  return g;
}

LabelId GraphBuilder::InternLabel(std::string_view name) {
  auto [it, inserted] = label_index_.emplace(
      std::string(name), static_cast<LabelId>(labels_.size()));
  if (inserted) labels_.emplace_back(name);
  return it->second;
}

PropKeyId GraphBuilder::InternPropKey(std::string_view name) {
  auto [it, inserted] = prop_key_index_.emplace(
      std::string(name), static_cast<PropKeyId>(prop_keys_.size()));
  if (inserted) prop_keys_.emplace_back(name);
  return it->second;
}

PropertyList GraphBuilder::InternProps(
    std::vector<std::pair<std::string, Value>> props) {
  PropertyList out;
  out.reserve(props.size());
  for (auto& [key, value] : props) {
    out.emplace_back(InternPropKey(key), std::move(value));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  // Last writer wins on duplicate keys: within each equal-key run (stable
  // sort preserves insertion order) keep the final element.
  PropertyList dedup;
  for (size_t i = 0; i < out.size(); ++i) {
    if (i + 1 < out.size() && out[i + 1].first == out[i].first) continue;
    dedup.push_back(std::move(out[i]));
  }
  return dedup;
}

}  // namespace pathalg
