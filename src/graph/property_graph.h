#ifndef PATHALG_GRAPH_PROPERTY_GRAPH_H_
#define PATHALG_GRAPH_PROPERTY_GRAPH_H_

/// \file property_graph.h
/// The property graph data model of Definition 2.1: a directed labelled
/// multigraph G = (N, E, ρ, λ, ν) where nodes and edges carry an optional
/// label (λ) and a set of property/value pairs (ν), and ρ maps each edge to
/// its (source, target) node pair.
///
/// Identifiers are dense 32-bit indexes assigned by `GraphBuilder`; labels
/// and property keys are interned per graph so that operator inner loops
/// compare integers, never strings. The graph is immutable once built.

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/value.h"

namespace pathalg {

using NodeId = uint32_t;
using EdgeId = uint32_t;
using LabelId = uint32_t;
using PropKeyId = uint32_t;

/// Sentinel meaning "no label" (λ is a partial function) / "no such id".
inline constexpr uint32_t kNoLabel = std::numeric_limits<uint32_t>::max();
inline constexpr uint32_t kInvalidId = std::numeric_limits<uint32_t>::max();

/// A sorted-by-key list of (property, value) pairs for one object.
using PropertyList = std::vector<std::pair<PropKeyId, Value>>;

/// Immutable property graph. Construct via GraphBuilder.
class PropertyGraph {
 public:
  /// Constructs the empty graph; populate via GraphBuilder.
  PropertyGraph() = default;

  size_t num_nodes() const { return node_labels_.size(); }
  size_t num_edges() const { return edge_src_.size(); }

  bool IsValidNode(NodeId n) const { return n < num_nodes(); }
  bool IsValidEdge(EdgeId e) const { return e < num_edges(); }

  /// ρ: the source / target node of an edge.
  NodeId Source(EdgeId e) const { return edge_src_[e]; }
  NodeId Target(EdgeId e) const { return edge_dst_[e]; }

  /// λ as interned ids (kNoLabel when the object is unlabelled).
  LabelId NodeLabelId(NodeId n) const { return node_labels_[n]; }
  LabelId EdgeLabelId(EdgeId e) const { return edge_labels_[e]; }

  /// λ as strings; empty string_view when unlabelled.
  std::string_view NodeLabel(NodeId n) const {
    return LabelName(node_labels_[n]);
  }
  std::string_view EdgeLabel(EdgeId e) const {
    return LabelName(edge_labels_[e]);
  }

  /// Interning lookups. Return kNoLabel / kInvalidId when absent — a label
  /// that was never used cannot match anything, which lets σ short-circuit.
  LabelId FindLabel(std::string_view name) const;
  PropKeyId FindPropKey(std::string_view name) const;
  std::string_view LabelName(LabelId id) const {
    return id == kNoLabel ? std::string_view() : labels_[id];
  }
  std::string_view PropKeyName(PropKeyId id) const {
    return id == kInvalidId ? std::string_view() : prop_keys_[id];
  }
  size_t num_labels() const { return labels_.size(); }

  /// ν: property access; nullptr when the property is not set.
  const Value* NodeProperty(NodeId n, PropKeyId key) const;
  const Value* EdgeProperty(EdgeId e, PropKeyId key) const;
  const Value* NodeProperty(NodeId n, std::string_view key) const;
  const Value* EdgeProperty(EdgeId e, std::string_view key) const;
  const PropertyList& NodeProperties(NodeId n) const {
    return node_props_[n];
  }
  const PropertyList& EdgeProperties(EdgeId e) const {
    return edge_props_[e];
  }

  /// Adjacency indexes: edges leaving / entering a node.
  const std::vector<EdgeId>& OutEdges(NodeId n) const { return out_[n]; }
  const std::vector<EdgeId>& InEdges(NodeId n) const { return in_[n]; }

  /// All edges carrying `label` (empty for unknown labels).
  const std::vector<EdgeId>& EdgesWithLabel(LabelId label) const;

  /// Display names ("n1", "e7", ...) used by printers and tests. Builder
  /// assigns "n{i+1}"/"e{i+1}" unless the caller provided explicit names.
  const std::string& NodeName(NodeId n) const { return node_names_[n]; }
  const std::string& EdgeName(EdgeId e) const { return edge_names_[e]; }
  /// Reverse display-name lookup, for tests/loaders; kInvalidId if unknown.
  NodeId FindNodeByName(std::string_view name) const;

  /// First node whose property `key` equals `value`; kInvalidId if none.
  NodeId FindNodeByProperty(std::string_view key, const Value& value) const;

 private:
  friend class GraphBuilder;

  std::vector<LabelId> node_labels_;
  std::vector<PropertyList> node_props_;
  std::vector<std::string> node_names_;

  std::vector<NodeId> edge_src_;
  std::vector<NodeId> edge_dst_;
  std::vector<LabelId> edge_labels_;
  std::vector<PropertyList> edge_props_;
  std::vector<std::string> edge_names_;

  std::vector<std::string> labels_;
  std::unordered_map<std::string, LabelId> label_index_;
  std::vector<std::string> prop_keys_;
  std::unordered_map<std::string, PropKeyId> prop_key_index_;

  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
  std::vector<std::vector<EdgeId>> edges_by_label_;

  std::unordered_map<std::string, NodeId> node_name_index_;
};

/// Mutable builder for PropertyGraph. Node/edge ids are assigned densely in
/// insertion order; edges validate their endpoints eagerly.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Adds a node; `label` may be empty (λ is partial). Returns its id.
  NodeId AddNode(std::string_view label = {},
                 std::vector<std::pair<std::string, Value>> props = {});

  /// Adds a node with an explicit display name (e.g. "n1").
  NodeId AddNamedNode(std::string name, std::string_view label = {},
                      std::vector<std::pair<std::string, Value>> props = {});

  /// Adds an edge src→dst. Fails with InvalidArgument on bad endpoints.
  Result<EdgeId> AddEdge(NodeId src, NodeId dst, std::string_view label = {},
                         std::vector<std::pair<std::string, Value>> props = {});

  /// Adds an edge with an explicit display name (e.g. "e1").
  Result<EdgeId> AddNamedEdge(std::string name, NodeId src, NodeId dst,
                              std::string_view label = {},
                              std::vector<std::pair<std::string, Value>> props = {});

  size_t num_nodes() const { return graph_.num_nodes(); }
  size_t num_edges() const { return graph_.num_edges(); }

  /// Finalizes adjacency and label indexes and returns the graph.
  /// The builder is left empty.
  PropertyGraph Build();

 private:
  LabelId InternLabel(std::string_view name);
  PropKeyId InternPropKey(std::string_view name);
  PropertyList InternProps(
      std::vector<std::pair<std::string, Value>> props);

  PropertyGraph graph_;
};

}  // namespace pathalg

#endif  // PATHALG_GRAPH_PROPERTY_GRAPH_H_
