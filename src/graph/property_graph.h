#ifndef PATHALG_GRAPH_PROPERTY_GRAPH_H_
#define PATHALG_GRAPH_PROPERTY_GRAPH_H_

/// \file property_graph.h
/// The property graph data model of Definition 2.1: a directed labelled
/// multigraph G = (N, E, ρ, λ, ν) where nodes and edges carry an optional
/// label (λ) and a set of property/value pairs (ν), and ρ maps each edge to
/// its (source, target) node pair.
///
/// Identifiers are dense 32-bit indexes assigned by `GraphBuilder`; labels
/// and property keys are interned per graph so that operator inner loops
/// compare integers, never strings. The graph is immutable once built.
///
/// Adjacency is a compressed-sparse-row (CSR) index built once in
/// `GraphBuilder::Build()`:
///
///   csr_out_offsets_ : [o0, o1, ..., oN]          (N+1 entries)
///   csr_out_edges_   : [ e ... | e ... | ... ]    (E entries)
///                        node0   node1
///
/// Node n's out-edges are the contiguous run csr_out_edges_[o_n, o_{n+1});
/// within a run edges are sorted by (label, edge id), so every per-(node,
/// label) lookup is a binary search plus a contiguous scan. In-edges mirror
/// the layout keyed by target; `label_offsets_`/`label_edges_` is the same
/// scheme keyed by label alone (EdgesWithLabel). (The pre-CSR
/// vector-of-vectors adjacency it replaced soaked behind the
/// PATHALG_LEGACY_ADJACENCY option through PRs 3–4 and was then deleted;
/// the NFA baseline remains the differential reference.)
///
/// Storage modes (PR 7): every flat array above is a `FlatArray` that
/// either owns its elements (graphs built by `GraphBuilder`, or loaded
/// from a snapshot in copy mode) or views sections of a memory-mapped
/// binary snapshot (src/storage/) zero-copy — `OutEdges`/`EdgesWithLabel`
/// are oblivious to where the arrays live. For mapped graphs the property
/// columns and display names are *lazy*: they stay encoded in the mapping
/// until the first property/name access materializes them (per side, via
/// std::call_once — safe under concurrent sessions), so a label-only
/// query after an mmap open never pays for columns it does not read.

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/flat_array.h"
#include "common/result.h"
#include "common/status.h"
#include "graph/value.h"

namespace pathalg {

namespace storage {
class SnapshotAccess;
class SnapshotReader;
class SnapshotWriter;
}  // namespace storage

namespace mutation {
class DeltaOverlayGraph;
}  // namespace mutation

using NodeId = uint32_t;
using EdgeId = uint32_t;
using LabelId = uint32_t;
using PropKeyId = uint32_t;

/// Sentinel meaning "no label" (λ is a partial function) / "no such id".
inline constexpr uint32_t kNoLabel = std::numeric_limits<uint32_t>::max();
inline constexpr uint32_t kInvalidId = std::numeric_limits<uint32_t>::max();

/// A sorted-by-key list of (property, value) pairs for one object.
using PropertyList = std::vector<std::pair<PropKeyId, Value>>;

/// Zero-copy view of one contiguous run of edge ids inside a CSR array.
/// Cheap to copy (two pointers); valid as long as the owning graph lives.
class NeighborRange {
 public:
  constexpr NeighborRange() = default;
  constexpr NeighborRange(const EdgeId* first, const EdgeId* last)
      : begin_(first), end_(last) {}

  const EdgeId* begin() const { return begin_; }
  const EdgeId* end() const { return end_; }
  const EdgeId* data() const { return begin_; }
  size_t size() const { return static_cast<size_t>(end_ - begin_); }
  bool empty() const { return begin_ == end_; }
  EdgeId operator[](size_t i) const { return begin_[i]; }
  EdgeId front() const { return *begin_; }
  EdgeId back() const { return *(end_ - 1); }

 private:
  const EdgeId* begin_ = nullptr;
  const EdgeId* end_ = nullptr;
};

/// Immutable property graph. Construct via GraphBuilder or open from a
/// binary snapshot (storage/snapshot_reader.h).
class PropertyGraph {
 public:
  /// Constructs the empty graph; populate via GraphBuilder.
  PropertyGraph() = default;

  /// Copying a mapped graph materializes it: the copy owns every array
  /// (FlatArray copies always own) and all lazy sections are decoded
  /// first, so the copy never depends on the original's mapping.
  PropertyGraph(const PropertyGraph& other);
  PropertyGraph& operator=(const PropertyGraph& other);
  PropertyGraph(PropertyGraph&&) noexcept = default;
  PropertyGraph& operator=(PropertyGraph&&) noexcept = default;

  size_t num_nodes() const { return node_labels_.size(); }
  size_t num_edges() const { return edge_src_.size(); }

  bool IsValidNode(NodeId n) const { return n < num_nodes(); }
  bool IsValidEdge(EdgeId e) const { return e < num_edges(); }

  /// ρ: the source / target node of an edge.
  NodeId Source(EdgeId e) const { return edge_src_[e]; }
  NodeId Target(EdgeId e) const { return edge_dst_[e]; }

  /// λ as interned ids (kNoLabel when the object is unlabelled).
  LabelId NodeLabelId(NodeId n) const { return node_labels_[n]; }
  LabelId EdgeLabelId(EdgeId e) const { return edge_labels_[e]; }

  /// λ as strings; empty string_view when unlabelled.
  std::string_view NodeLabel(NodeId n) const {
    return LabelName(node_labels_[n]);
  }
  std::string_view EdgeLabel(EdgeId e) const {
    return LabelName(edge_labels_[e]);
  }

  /// Interning lookups. Return kNoLabel / kInvalidId when absent — a label
  /// that was never used cannot match anything, which lets σ short-circuit.
  LabelId FindLabel(std::string_view name) const;
  PropKeyId FindPropKey(std::string_view name) const;
  std::string_view LabelName(LabelId id) const {
    return id == kNoLabel ? std::string_view() : labels_[id];
  }
  std::string_view PropKeyName(PropKeyId id) const {
    return id == kInvalidId ? std::string_view() : prop_keys_[id];
  }
  size_t num_labels() const { return labels_.size(); }
  size_t num_prop_keys() const { return prop_keys_.size(); }

  /// ν: property access; nullptr when the property is not set. On a
  /// mapped graph the first call materializes that side's property
  /// column out of the snapshot (thread-safe, once).
  const Value* NodeProperty(NodeId n, PropKeyId key) const;
  const Value* EdgeProperty(EdgeId e, PropKeyId key) const;
  const Value* NodeProperty(NodeId n, std::string_view key) const;
  const Value* EdgeProperty(EdgeId e, std::string_view key) const;
  const PropertyList& NodeProperties(NodeId n) const {
    EnsureNodeProps();
    return node_props_[n];
  }
  const PropertyList& EdgeProperties(EdgeId e) const {
    EnsureEdgeProps();
    return edge_props_[e];
  }

  /// CSR adjacency: edges leaving / entering a node as contiguous runs.
  /// Within a run edges are sorted by (label id, edge id); unlabelled edges
  /// (kNoLabel) sort last.
  NeighborRange OutEdges(NodeId n) const {
    return CsrSlice(csr_out_offsets_, csr_out_edges_, n);
  }
  NeighborRange InEdges(NodeId n) const {
    return CsrSlice(csr_in_offsets_, csr_in_edges_, n);
  }

  /// Label-partitioned CSR slices: the out-/in-edges of `n` carrying
  /// `label`. Canonical empty range for unknown labels and kNoLabel —
  /// unlabelled edges are reachable only through the full OutEdges/InEdges
  /// runs (λ is partial; "no label" is not a label).
  NeighborRange OutEdgesWithLabel(NodeId n, LabelId label) const;
  NeighborRange InEdgesWithLabel(NodeId n, LabelId label) const;

  /// All edges carrying `label`, sorted by edge id. Canonical empty range
  /// for unknown labels and kNoLabel.
  NeighborRange EdgesWithLabel(LabelId label) const;

  /// Out-degree / in-degree of `n` (sizes of the CSR runs).
  size_t OutDegree(NodeId n) const { return OutEdges(n).size(); }
  size_t InDegree(NodeId n) const { return InEdges(n).size(); }

  /// Display names ("n1", "e7", ...) used by printers and tests. Builder
  /// assigns "n{i+1}"/"e{i+1}" unless the caller provided explicit names.
  /// On a mapped graph the first call materializes the name pools.
  const std::string& NodeName(NodeId n) const {
    EnsureNames();
    return node_names_[n];
  }
  const std::string& EdgeName(EdgeId e) const {
    EnsureNames();
    return edge_names_[e];
  }
  /// Reverse display-name lookup, for tests/loaders; kInvalidId if unknown.
  NodeId FindNodeByName(std::string_view name) const;

  /// First node whose property `key` equals `value`; kInvalidId if none.
  NodeId FindNodeByProperty(std::string_view key, const Value& value) const;

  /// Storage introspection (tests, `graph_convert --info`).
  enum class StorageMode {
    kOwned,   // built by GraphBuilder or loaded in snapshot copy mode
    kMapped,  // flat arrays view a memory-mapped snapshot zero-copy
  };
  StorageMode storage_mode() const {
    return lazy_ == nullptr ? StorageMode::kOwned : StorageMode::kMapped;
  }
  /// Whether the property columns / display names have been decoded into
  /// private memory. Always true for owned graphs; for mapped graphs
  /// flips on first access — the "first query touches no columns"
  /// acceptance tests pin this.
  bool node_props_materialized() const;
  bool edge_props_materialized() const;
  bool names_materialized() const;
  /// The mapped snapshot's [base, base+size) byte range, or {nullptr, 0}
  /// for owned graphs — lets tests assert CSR ranges really point into
  /// the mapping.
  std::pair<const void*, size_t> backing_span() const;

 private:
  friend class GraphBuilder;
  friend class storage::SnapshotAccess;
  friend class storage::SnapshotReader;
  friend class storage::SnapshotWriter;
  friend class mutation::DeltaOverlayGraph;

  static NeighborRange CsrSlice(const FlatArray<uint32_t>& offsets,
                                const FlatArray<EdgeId>& edges,
                                uint32_t key) {
    // size_t arithmetic: key + 1 must not wrap for key == kNoLabel.
    if (size_t{key} + 1 >= offsets.size()) return NeighborRange();
    const EdgeId* base = edges.data();
    return NeighborRange(base + offsets[key], base + offsets[key + 1]);
  }

  /// Binary-searches the (label-sorted) CSR run of `key` for the sub-run
  /// carrying `label`. `labels` is parallel to `edges`.
  static NeighborRange LabelSlice(const FlatArray<uint32_t>& offsets,
                                  const FlatArray<EdgeId>& edges,
                                  const FlatArray<LabelId>& labels,
                                  uint32_t key, LabelId label);

  /// Lazy-decode state for snapshot-mapped graphs. The decode hooks are
  /// installed by storage::SnapshotReader and write the owned
  /// representations (node_props_/edge_props_/names + name index) out of
  /// the mapped sections; `backing` keeps the mapping alive.
  struct LazySections {
    std::function<void(PropertyGraph*)> decode_node_props;
    std::function<void(PropertyGraph*)> decode_edge_props;
    std::function<void(PropertyGraph*)> decode_names;
    std::once_flag node_props_once;
    std::once_flag edge_props_once;
    std::once_flag names_once;
    std::atomic<bool> node_props_done{false};
    std::atomic<bool> edge_props_done{false};
    std::atomic<bool> names_done{false};
    std::shared_ptr<const void> backing;
    const void* backing_data = nullptr;
    size_t backing_size = 0;
  };

  /// Materialization is logically const (it decodes immutable data the
  /// graph already owns a view of), hence the const_cast inside.
  void EnsureNodeProps() const;
  void EnsureEdgeProps() const;
  void EnsureNames() const;

  FlatArray<LabelId> node_labels_;
  std::vector<PropertyList> node_props_;
  std::vector<std::string> node_names_;

  FlatArray<NodeId> edge_src_;
  FlatArray<NodeId> edge_dst_;
  FlatArray<LabelId> edge_labels_;
  std::vector<PropertyList> edge_props_;
  std::vector<std::string> edge_names_;

  std::vector<std::string> labels_;
  std::unordered_map<std::string, LabelId> label_index_;
  std::vector<std::string> prop_keys_;
  std::unordered_map<std::string, PropKeyId> prop_key_index_;

  // CSR adjacency (see file comment for the layout). The *_labels_ arrays
  // are parallel to the *_edges_ arrays and carry each edge's label so
  // per-(node,label) binary searches never chase edge_labels_ indirection.
  FlatArray<uint32_t> csr_out_offsets_;
  FlatArray<EdgeId> csr_out_edges_;
  FlatArray<LabelId> csr_out_labels_;
  FlatArray<uint32_t> csr_in_offsets_;
  FlatArray<EdgeId> csr_in_edges_;
  FlatArray<LabelId> csr_in_labels_;
  FlatArray<uint32_t> label_offsets_;
  FlatArray<EdgeId> label_edges_;

  std::unordered_map<std::string, NodeId> node_name_index_;

  // Null for owned graphs; set by SnapshotReader in mapped mode.
  std::unique_ptr<LazySections> lazy_;
};

/// Mutable builder for PropertyGraph. Node/edge ids are assigned densely in
/// insertion order; edges validate their endpoints eagerly. The builder
/// stages into growable vectors and `Build()` freezes them into the
/// graph's flat arrays.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Adds a node; `label` may be empty (λ is partial). Returns its id.
  NodeId AddNode(std::string_view label = {},
                 std::vector<std::pair<std::string, Value>> props = {});

  /// Adds a node with an explicit display name (e.g. "n1").
  NodeId AddNamedNode(std::string name, std::string_view label = {},
                      std::vector<std::pair<std::string, Value>> props = {});

  /// Adds an edge src→dst. Fails with InvalidArgument on bad endpoints.
  Result<EdgeId> AddEdge(NodeId src, NodeId dst, std::string_view label = {},
                         std::vector<std::pair<std::string, Value>> props = {});

  /// Adds an edge with an explicit display name (e.g. "e1").
  Result<EdgeId> AddNamedEdge(std::string name, NodeId src, NodeId dst,
                              std::string_view label = {},
                              std::vector<std::pair<std::string, Value>> props = {});

  size_t num_nodes() const { return node_labels_.size(); }
  size_t num_edges() const { return edge_src_.size(); }

  /// Finalizes adjacency and label indexes and returns the graph.
  /// The builder is left empty.
  PropertyGraph Build();

 private:
  LabelId InternLabel(std::string_view name);
  PropKeyId InternPropKey(std::string_view name);
  PropertyList InternProps(
      std::vector<std::pair<std::string, Value>> props);

  std::vector<LabelId> node_labels_;
  std::vector<PropertyList> node_props_;
  std::vector<std::string> node_names_;
  std::vector<NodeId> edge_src_;
  std::vector<NodeId> edge_dst_;
  std::vector<LabelId> edge_labels_;
  std::vector<PropertyList> edge_props_;
  std::vector<std::string> edge_names_;
  std::vector<std::string> labels_;
  std::unordered_map<std::string, LabelId> label_index_;
  std::vector<std::string> prop_keys_;
  std::unordered_map<std::string, PropKeyId> prop_key_index_;
  std::unordered_map<std::string, NodeId> node_name_index_;
};

}  // namespace pathalg

#endif  // PATHALG_GRAPH_PROPERTY_GRAPH_H_
