#include "graph/value.h"

#include <cmath>
#include <functional>
#include <sstream>

#include "common/hash.h"
#include "common/str_util.h"

namespace pathalg {

bool Value::operator==(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    return AsNumeric() == other.AsNumeric();
  }
  return repr_ == other.repr_;
}

bool Value::operator<(const Value& other) const {
  // Numerics form a single rank so that Value(1) < Value(1.5) < Value(2).
  auto rank = [](const Value& v) -> int {
    switch (v.type()) {
      case Type::kNull:
        return 0;
      case Type::kBool:
        return 1;
      case Type::kInt:
      case Type::kDouble:
        return 2;
      case Type::kString:
        return 3;
    }
    return 4;
  };
  int ra = rank(*this), rb = rank(other);
  if (ra != rb) return ra < rb;
  switch (type()) {
    case Type::kNull:
      return false;
    case Type::kBool:
      return AsBool() < other.AsBool();
    case Type::kInt:
    case Type::kDouble:
      return AsNumeric() < other.AsNumeric();
    case Type::kString:
      return AsString() < other.AsString();
  }
  return false;
}

std::string Value::ToString() const {
  switch (type()) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return AsBool() ? "true" : "false";
    case Type::kInt:
      return std::to_string(AsInt());
    case Type::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case Type::kString:
      return QuoteString(AsString());
  }
  return "?";
}

size_t Value::Hash() const {
  size_t h = 0;
  switch (type()) {
    case Type::kNull:
      h = 0x6e756c6c;
      break;
    case Type::kBool:
      HashCombine(h, AsBool() ? 1u : 2u);
      break;
    case Type::kInt:
    case Type::kDouble: {
      // Ints and equal-valued doubles must hash alike (they compare equal).
      double d = AsNumeric();
      if (d == static_cast<double>(static_cast<int64_t>(d)) &&
          std::abs(d) < 9.0e18) {
        HashCombine(h, std::hash<int64_t>{}(static_cast<int64_t>(d)));
      } else {
        HashCombine(h, std::hash<double>{}(d));
      }
      break;
    }
    case Type::kString:
      HashCombine(h, std::hash<std::string>{}(AsString()));
      break;
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace pathalg
