#ifndef PATHALG_GRAPH_VALUE_H_
#define PATHALG_GRAPH_VALUE_H_

/// \file value.h
/// Property values (the set V of Definition 2.1). A dynamically-typed value
/// that can be null, boolean, 64-bit integer, double or string. Values are
/// totally ordered (by type rank, then by payload) so that result sets and
/// solution spaces have a canonical order.

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

namespace pathalg {

class Value {
 public:
  enum class Type { kNull = 0, kBool, kInt, kDouble, kString };

  /// Null value.
  Value() : repr_(std::monostate{}) {}
  Value(bool b) : repr_(b) {}                     // NOLINT(runtime/explicit)
  Value(int64_t i) : repr_(i) {}                  // NOLINT(runtime/explicit)
  Value(int i) : repr_(static_cast<int64_t>(i)) {}  // NOLINT
  Value(double d) : repr_(d) {}                   // NOLINT(runtime/explicit)
  Value(std::string s) : repr_(std::move(s)) {}   // NOLINT(runtime/explicit)
  Value(const char* s) : repr_(std::string(s)) {}  // NOLINT

  Type type() const { return static_cast<Type>(repr_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_string() const { return type() == Type::kString; }

  /// Typed accessors; preconditions checked by std::get.
  bool AsBool() const { return std::get<bool>(repr_); }
  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// Numeric view: ints and doubles compare with each other numerically.
  bool is_numeric() const { return is_int() || is_double(); }
  double AsNumeric() const {
    return is_int() ? static_cast<double>(AsInt()) : AsDouble();
  }

  /// Equality follows the paper's condition semantics: same-type payload
  /// equality, with int/double comparing numerically. Null equals only null.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order: null < bool < numeric < string; numerics compare by value.
  bool operator<(const Value& other) const;
  bool operator<=(const Value& other) const { return !(other < *this); }
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return !(*this < other); }

  /// Rendering used by plan printers: strings are quoted, null is "null".
  std::string ToString() const;

  size_t Hash() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> repr_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace pathalg

#endif  // PATHALG_GRAPH_VALUE_H_
