#ifndef PATHALG_GRAPH_TRANSFORM_H_
#define PATHALG_GRAPH_TRANSFORM_H_

/// \file transform.h
/// Graph-to-graph transformations used to extend the query repertoire:
///
/// * ReverseGraph — flips ρ on every edge. Evaluating an RPQ over the
///   reverse graph answers inverse-label queries (`^a` atoms of two-way
///   RPQs, §8.1's C2RPQ discussion) without breaking the paper's
///   forward-only path definition.
/// * SubgraphByEdgeLabels — keeps only edges with the given labels (all
///   nodes stay). A cheap static pre-filter for queries whose regex
///   alphabet is known, shrinking Edges(G) before σ even runs.

#include <string>
#include <vector>

#include "graph/property_graph.h"

namespace pathalg {

/// Returns G with every edge (u→v) replaced by (v→u). Labels, properties
/// and display names are preserved; node/edge ids are stable.
PropertyGraph ReverseGraph(const PropertyGraph& g);

/// Returns G restricted to edges whose label is in `labels`. Nodes (and
/// their ids) are preserved; edge ids are re-assigned densely in the
/// original order.
PropertyGraph SubgraphByEdgeLabels(const PropertyGraph& g,
                                   const std::vector<std::string>& labels);

}  // namespace pathalg

#endif  // PATHALG_GRAPH_TRANSFORM_H_
