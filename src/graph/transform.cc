#include "graph/transform.h"

#include <unordered_set>

namespace pathalg {

namespace {

std::vector<std::pair<std::string, Value>> CopyProps(
    const PropertyGraph& g, const PropertyList& props) {
  std::vector<std::pair<std::string, Value>> out;
  out.reserve(props.size());
  for (const auto& [key, value] : props) {
    out.emplace_back(std::string(g.PropKeyName(key)), value);
  }
  return out;
}

}  // namespace

PropertyGraph ReverseGraph(const PropertyGraph& g) {
  GraphBuilder b;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    b.AddNamedNode(g.NodeName(n), g.NodeLabel(n),
                   CopyProps(g, g.NodeProperties(n)));
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    // Endpoints are valid by construction; ignore the Result.
    (void)b.AddNamedEdge(g.EdgeName(e), g.Target(e), g.Source(e),
                         g.EdgeLabel(e), CopyProps(g, g.EdgeProperties(e)));
  }
  return b.Build();
}

PropertyGraph SubgraphByEdgeLabels(const PropertyGraph& g,
                                   const std::vector<std::string>& labels) {
  std::unordered_set<LabelId> keep;
  for (const std::string& label : labels) {
    LabelId id = g.FindLabel(label);
    if (id != kNoLabel) keep.insert(id);
  }
  GraphBuilder b;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    b.AddNamedNode(g.NodeName(n), g.NodeLabel(n),
                   CopyProps(g, g.NodeProperties(n)));
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (keep.count(g.EdgeLabelId(e)) == 0) continue;
    (void)b.AddNamedEdge(g.EdgeName(e), g.Source(e), g.Target(e),
                         g.EdgeLabel(e), CopyProps(g, g.EdgeProperties(e)));
  }
  return b.Build();
}

}  // namespace pathalg
