#ifndef PATHALG_GRAPH_CSV_H_
#define PATHALG_GRAPH_CSV_H_

/// \file csv.h
/// Minimal CSV-ish import/export for property graphs, so examples can ship
/// datasets as text. Format (one object per line):
///
///   N,<name>,<label>,key=value,key=value,...
///   E,<name>,<src-name>,<dst-name>,<label>,key=value,...
///
/// Values are typed by sniffing: `true`/`false` → bool, integral → int,
/// numeric with '.' → double, otherwise string. Lines starting with '#' and
/// blank lines are ignored.

#include <string>
#include <string_view>

#include "common/result.h"
#include "graph/property_graph.h"

namespace pathalg {

/// Parses a graph from the textual format above.
Result<PropertyGraph> LoadGraphFromCsv(std::string_view text);

/// Serializes `g` to the textual format above (round-trips with the loader).
std::string DumpGraphToCsv(const PropertyGraph& g);

/// Sniffs a value from text (see file comment for the rules).
Value ParseValueText(std::string_view text);

}  // namespace pathalg

#endif  // PATHALG_GRAPH_CSV_H_
