#include "graph/csv.h"

#include <cctype>
#include <charconv>
#include <sstream>
#include <unordered_map>

#include "common/str_util.h"

namespace pathalg {

Value ParseValueText(std::string_view text) {
  if (text == "true") return Value(true);
  if (text == "false") return Value(false);
  if (text == "null") return Value();
  if (!text.empty()) {
    bool digits = true, has_dot = false;
    size_t start = (text[0] == '-' || text[0] == '+') ? 1 : 0;
    if (start == text.size()) digits = false;
    for (size_t i = start; i < text.size(); ++i) {
      if (text[i] == '.' && !has_dot) {
        has_dot = true;
      } else if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
        digits = false;
        break;
      }
    }
    if (digits && !has_dot) {
      int64_t v = 0;
      auto [p, ec] =
          std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec == std::errc() && p == text.data() + text.size()) {
        return Value(v);
      }
    } else if (digits && has_dot) {
      return Value(std::stod(std::string(text)));
    }
  }
  return Value(std::string(text));
}

namespace {

std::vector<std::pair<std::string, Value>> ParseProps(
    const std::vector<std::string>& fields, size_t first) {
  std::vector<std::pair<std::string, Value>> props;
  for (size_t i = first; i < fields.size(); ++i) {
    std::string_view f = StripWhitespace(fields[i]);
    if (f.empty()) continue;
    size_t eq = f.find('=');
    if (eq == std::string_view::npos) continue;
    props.emplace_back(std::string(f.substr(0, eq)),
                       ParseValueText(f.substr(eq + 1)));
  }
  return props;
}

std::string ValueToCsvText(const Value& v) {
  // Strings are unquoted in the CSV format but must escape the separator.
  std::string text =
      v.is_string() ? v.AsString() : v.ToString();
  return EscapeSeparator(text, ',');
}

}  // namespace

Result<PropertyGraph> LoadGraphFromCsv(std::string_view text) {
  GraphBuilder builder;
  std::unordered_map<std::string, NodeId> nodes;
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::vector<std::string> f = SplitEscaped(stripped, ',');
    const std::string where = " (line " + std::to_string(lineno) + ")";
    if (f[0] == "N") {
      if (f.size() < 3) {
        return Status::ParseError("node line needs N,<name>,<label>" + where);
      }
      std::string name(StripWhitespace(f[1]));
      if (nodes.count(name) != 0) {
        return Status::ParseError("duplicate node name '" + name + "'" +
                                  where);
      }
      NodeId id = builder.AddNamedNode(name, StripWhitespace(f[2]),
                                       ParseProps(f, 3));
      nodes.emplace(std::move(name), id);
    } else if (f[0] == "E") {
      if (f.size() < 5) {
        return Status::ParseError(
            "edge line needs E,<name>,<src>,<dst>,<label>" + where);
      }
      auto src = nodes.find(std::string(StripWhitespace(f[2])));
      auto dst = nodes.find(std::string(StripWhitespace(f[3])));
      if (src == nodes.end() || dst == nodes.end()) {
        return Status::ParseError("edge references unknown node" + where);
      }
      PATHALG_ASSIGN_OR_RETURN(
          EdgeId ignored,
          builder.AddNamedEdge(std::string(StripWhitespace(f[1])),
                               src->second, dst->second,
                               StripWhitespace(f[4]), ParseProps(f, 5)));
      (void)ignored;
    } else {
      return Status::ParseError("unknown record type '" + f[0] + "'" + where);
    }
  }
  return builder.Build();
}

std::string DumpGraphToCsv(const PropertyGraph& g) {
  auto esc = [](std::string_view s) { return EscapeSeparator(s, ','); };
  std::string out;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    out += "N," + esc(g.NodeName(n)) + "," + esc(g.NodeLabel(n));
    for (const auto& [key, value] : g.NodeProperties(n)) {
      out += "," + esc(g.PropKeyName(key)) + "=" + ValueToCsvText(value);
    }
    out += "\n";
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    out += "E," + esc(g.EdgeName(e)) + "," + esc(g.NodeName(g.Source(e))) +
           "," + esc(g.NodeName(g.Target(e))) + "," +
           esc(g.EdgeLabel(e));
    for (const auto& [key, value] : g.EdgeProperties(e)) {
      out += "," + esc(g.PropKeyName(key)) + "=" + ValueToCsvText(value);
    }
    out += "\n";
  }
  return out;
}

}  // namespace pathalg
