#ifndef PATHALG_PATH_PATH_SET_H_
#define PATHALG_PATH_PATH_SET_H_

/// \file path_set.h
/// The primary data structure of the algebra: a duplicate-free set of paths
/// (§1: "a set of paths serves as the primary data structure for input and
/// output in the algebra operators"). Iteration order is insertion order,
/// which makes every operator deterministic; `Sorted()` gives the canonical
/// (length, ids) order used by tests and printers.

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "path/path.h"

namespace pathalg {

class PathSet {
 public:
  PathSet() = default;

  /// Builds a set from a vector, deduplicating.
  explicit PathSet(const std::vector<Path>& paths) {
    for (const Path& p : paths) Insert(p);
  }

  /// Inserts `p`; returns false if it was already present.
  bool Insert(Path p);

  bool Contains(const Path& p) const { return index_.count(p) != 0; }

  size_t size() const { return paths_.size(); }
  bool empty() const { return paths_.empty(); }

  const Path& operator[](size_t i) const { return paths_[i]; }
  std::vector<Path>::const_iterator begin() const { return paths_.begin(); }
  std::vector<Path>::const_iterator end() const { return paths_.end(); }
  const std::vector<Path>& paths() const { return paths_; }

  /// Paths in canonical (length, node-ids, edge-ids) order.
  std::vector<Path> Sorted() const;

  /// Set-level equality (order-insensitive).
  bool operator==(const PathSet& other) const;
  bool operator!=(const PathSet& other) const { return !(*this == other); }

  void clear() {
    paths_.clear();
    index_.clear();
  }

  /// Renders as "{(n1, e1, n2), ...}" in canonical order.
  std::string ToString(const PropertyGraph& g) const;

 private:
  std::vector<Path> paths_;
  std::unordered_set<Path, PathHash> index_;
};

}  // namespace pathalg

#endif  // PATHALG_PATH_PATH_SET_H_
