#ifndef PATHALG_PATH_PATH_SET_H_
#define PATHALG_PATH_PATH_SET_H_

/// \file path_set.h
/// The primary data structure of the algebra: a duplicate-free set of paths
/// (§1: "a set of paths serves as the primary data structure for input and
/// output in the algebra operators"). Iteration order is insertion order,
/// which makes every operator deterministic; `Sorted()` gives the canonical
/// (length, ids) order used by tests and printers.
///
/// The dedup index maps precomputed path hashes to indices into the
/// insertion-ordered storage (hash collisions fall back to full Path
/// equality), so the set never stores a second copy of any path. `Insert`
/// hashes for you; `InsertHashed` takes a caller-computed hash — the
/// parallel operators' chunk bodies hash their candidates off the merge
/// thread, leaving the serial merge loop a probe + push_back.

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "path/path.h"

namespace pathalg {

class PathSet {
 public:
  PathSet() = default;

  /// Builds a set from a vector, deduplicating.
  explicit PathSet(const std::vector<Path>& paths) {
    for (const Path& p : paths) Insert(p);
  }

  /// Inserts `p`; returns false if it was already present.
  bool Insert(Path p) {
    const size_t h = p.Hash();
    return InsertHashed(std::move(p), h);
  }

  /// Inserts `p` with its precomputed hash; precondition: hash == p.Hash().
  /// Byte-identical behavior to Insert — same dedup decisions, same
  /// insertion order — minus the hash computation on this thread.
  bool InsertHashed(Path p, size_t hash);

  bool Contains(const Path& p) const;

  /// Contains with a caller-computed hash; precondition: hash == p.Hash().
  /// The dedup-aware budget checks (algebra/eval_budget.h) probe candidates
  /// that were hashed off the merge thread.
  bool ContainsHashed(const Path& p, size_t hash) const;

  size_t size() const { return paths_.size(); }
  bool empty() const { return paths_.empty(); }

  const Path& operator[](size_t i) const { return paths_[i]; }
  std::vector<Path>::const_iterator begin() const { return paths_.begin(); }
  std::vector<Path>::const_iterator end() const { return paths_.end(); }
  const std::vector<Path>& paths() const { return paths_; }

  /// The stored hash of paths()[i] (== paths()[i].Hash()). Set-to-set
  /// operators (∪/∩/∖, σ's serial loop) propagate these instead of
  /// rehashing every path they copy.
  size_t hash_of(size_t i) const { return hashes_[i]; }

  /// Paths in canonical (length, node-ids, edge-ids) order.
  std::vector<Path> Sorted() const;

  /// Set-level equality (order-insensitive).
  bool operator==(const PathSet& other) const;
  bool operator!=(const PathSet& other) const { return !(*this == other); }

  /// Pre-sizes storage and the dedup index for `n` expected paths.
  void Reserve(size_t n) {
    paths_.reserve(n);
    hashes_.reserve(n);
    index_.reserve(n);
  }

  void clear() {
    paths_.clear();
    hashes_.clear();
    index_.clear();
  }

  /// Renders as "{(n1, e1, n2), ...}" in canonical order.
  std::string ToString(const PropertyGraph& g) const;

 private:
  /// Path::Hash() is already avalanche-mixed (common/hash.h), so the
  /// bucket mapping can consume it as-is.
  struct IdentityHash {
    size_t operator()(size_t h) const { return h; }
  };

  std::vector<Path> paths_;
  /// hashes_[i] == paths_[i].Hash(), for hash propagation (hash_of).
  std::vector<size_t> hashes_;
  /// hash -> index into paths_; multimap so colliding hashes coexist.
  std::unordered_multimap<size_t, size_t, IdentityHash> index_;
};

}  // namespace pathalg

#endif  // PATHALG_PATH_PATH_SET_H_
