#include "path/path_set.h"

#include <algorithm>

namespace pathalg {

bool PathSet::InsertHashed(Path p, size_t hash) {
  auto [first, last] = index_.equal_range(hash);
  for (auto it = first; it != last; ++it) {
    if (paths_[it->second] == p) return false;
  }
  index_.emplace(hash, paths_.size());
  paths_.push_back(std::move(p));
  hashes_.push_back(hash);
  return true;
}

bool PathSet::Contains(const Path& p) const {
  return ContainsHashed(p, p.Hash());
}

bool PathSet::ContainsHashed(const Path& p, size_t hash) const {
  auto [first, last] = index_.equal_range(hash);
  for (auto it = first; it != last; ++it) {
    if (paths_[it->second] == p) return true;
  }
  return false;
}

std::vector<Path> PathSet::Sorted() const {
  std::vector<Path> out = paths_;
  std::sort(out.begin(), out.end());
  return out;
}

bool PathSet::operator==(const PathSet& other) const {
  if (size() != other.size()) return false;
  for (const Path& p : paths_) {
    if (!other.Contains(p)) return false;
  }
  return true;
}

std::string PathSet::ToString(const PropertyGraph& g) const {
  std::string out = "{";
  bool first = true;
  for (const Path& p : Sorted()) {
    if (!first) out += ", ";
    first = false;
    out += p.ToString(g);
  }
  out += "}";
  return out;
}

}  // namespace pathalg
