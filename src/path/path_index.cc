#include "path/path_index.h"

#include <algorithm>

namespace pathalg {

void PathFirstIndex::BuildFrom(const std::vector<Path>& paths) {
  NodeId max_first = 0;
  bool any = false;
  for (const Path& p : paths) {
    if (p.empty()) continue;
    max_first = any ? std::max(max_first, p.First()) : p.First();
    any = true;
  }
  if (!any) return;

  // Counting sort by First(p); input order within each bucket (mirrors the
  // insertion-order buckets of the old hash index, so operators stay
  // deterministic).
  offsets_.assign(size_t{max_first} + 2, 0);
  size_t indexed = 0;
  for (const Path& p : paths) {
    if (p.empty()) continue;
    offsets_[size_t{p.First()} + 1]++;
    ++indexed;
  }
  for (size_t n = 0; n + 1 < offsets_.size(); ++n) {
    offsets_[n + 1] += offsets_[n];
  }
  slots_.assign(indexed, nullptr);
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Path& p : paths) {
    if (p.empty()) continue;
    slots_[cursor[p.First()]++] = &p;
  }
}

}  // namespace pathalg
