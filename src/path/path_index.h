#ifndef PATHALG_PATH_PATH_INDEX_H_
#define PATHALG_PATH_PATH_INDEX_H_

/// \file path_index.h
/// CSR-style index of a path collection by First(p), the access pattern of
/// every endpoint join (⋈, ϕ expansion): node ids are dense, so a flat
/// offsets/slots layout replaces the unordered_map<NodeId, vector<Path*>>
/// the operators used before — bucket lookup becomes one array index and a
/// contiguous scan instead of a hash probe per frontier path.

#include <cstdint>
#include <vector>

#include "path/path.h"
#include "path/path_set.h"

namespace pathalg {

/// Immutable index over paths owned elsewhere. The indexed container must
/// outlive the index and must not reallocate while the index is in use
/// (PathSet and std::vector<Path> are stable as long as nothing inserts).
class PathFirstIndex {
 public:
  /// A contiguous run of pointers to paths sharing First(p).
  class Bucket {
   public:
    constexpr Bucket() = default;
    constexpr Bucket(const Path* const* first, const Path* const* last)
        : begin_(first), end_(last) {}
    const Path* const* begin() const { return begin_; }
    const Path* const* end() const { return end_; }
    size_t size() const { return static_cast<size_t>(end_ - begin_); }
    bool empty() const { return begin_ == end_; }

   private:
    const Path* const* begin_ = nullptr;
    const Path* const* end_ = nullptr;
  };

  PathFirstIndex() = default;
  explicit PathFirstIndex(const PathSet& paths) {
    BuildFrom(paths.paths());
  }
  explicit PathFirstIndex(const std::vector<Path>& paths) {
    BuildFrom(paths);
  }

  /// Paths whose First() == n; empty bucket when none (or n out of range).
  Bucket ForFirst(NodeId n) const {
    if (size_t{n} + 1 >= offsets_.size()) return Bucket();
    const Path* const* base = slots_.data();
    return Bucket(base + offsets_[n], base + offsets_[n + 1]);
  }

  size_t size() const { return slots_.size(); }
  bool empty() const { return slots_.empty(); }

 private:
  void BuildFrom(const std::vector<Path>& paths);

  // offsets_ has max(First)+2 entries; slots_[offsets_[n], offsets_[n+1])
  // are the paths starting at node n, in input order.
  std::vector<uint32_t> offsets_;
  std::vector<const Path*> slots_;
};

}  // namespace pathalg

#endif  // PATHALG_PATH_PATH_INDEX_H_
