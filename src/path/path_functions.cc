#include "path/path_functions.h"

#include <unordered_set>

namespace pathalg {

std::vector<NodeId> NodesAlong(const Path& p) { return p.nodes(); }

std::vector<EdgeId> EdgesAlong(const Path& p) { return p.edges(); }

std::vector<std::optional<Value>> CollectNodeProperty(
    const PropertyGraph& g, const Path& p, std::string_view key) {
  std::vector<std::optional<Value>> out;
  out.reserve(p.nodes().size());
  PropKeyId id = g.FindPropKey(key);
  for (NodeId n : p.nodes()) {
    const Value* v = g.NodeProperty(n, id);
    out.push_back(v == nullptr ? std::nullopt : std::optional<Value>(*v));
  }
  return out;
}

std::vector<std::optional<Value>> CollectEdgeProperty(
    const PropertyGraph& g, const Path& p, std::string_view key) {
  std::vector<std::optional<Value>> out;
  out.reserve(p.edges().size());
  PropKeyId id = g.FindPropKey(key);
  for (EdgeId e : p.edges()) {
    const Value* v = g.EdgeProperty(e, id);
    out.push_back(v == nullptr ? std::nullopt : std::optional<Value>(*v));
  }
  return out;
}

std::vector<std::string> DistinctNodeLabels(const PropertyGraph& g,
                                            const Path& p) {
  std::vector<std::string> out;
  std::unordered_set<LabelId> seen;
  for (NodeId n : p.nodes()) {
    LabelId l = g.NodeLabelId(n);
    if (l == kNoLabel || !seen.insert(l).second) continue;
    out.emplace_back(g.LabelName(l));
  }
  return out;
}

std::optional<double> SumEdgeProperty(const PropertyGraph& g, const Path& p,
                                      std::string_view key) {
  PropKeyId id = g.FindPropKey(key);
  bool any = false;
  double sum = 0;
  for (EdgeId e : p.edges()) {
    const Value* v = g.EdgeProperty(e, id);
    if (v == nullptr || !v->is_numeric()) continue;
    sum += v->AsNumeric();
    any = true;
  }
  if (!any) return std::nullopt;
  return sum;
}

}  // namespace pathalg
