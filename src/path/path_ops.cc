#include "path/path_ops.h"

namespace pathalg {

PathSet NodesOf(const PropertyGraph& g) {
  PathSet out;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    out.Insert(Path::SingleNode(n));
  }
  return out;
}

PathSet EdgesOf(const PropertyGraph& g) {
  PathSet out;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    out.Insert(Path::EdgeOf(g, e));
  }
  return out;
}

PathSet EdgesWithLabelOf(const PropertyGraph& g, LabelId label) {
  PathSet out;
  for (EdgeId e : g.EdgesWithLabel(label)) {
    out.Insert(Path::EdgeOf(g, e));
  }
  return out;
}

std::string_view LabelOfNodeAt(const PropertyGraph& g, const Path& p,
                               size_t i) {
  NodeId n = p.NodeAt(i);
  if (n == kInvalidId) return {};
  return g.NodeLabel(n);
}

std::string_view LabelOfEdgeAt(const PropertyGraph& g, const Path& p,
                               size_t j) {
  EdgeId e = p.EdgeAt(j);
  if (e == kInvalidId) return {};
  return g.EdgeLabel(e);
}

const Value* PropOfNodeAt(const PropertyGraph& g, const Path& p, size_t i,
                          std::string_view key) {
  NodeId n = p.NodeAt(i);
  if (n == kInvalidId) return nullptr;
  return g.NodeProperty(n, key);
}

const Value* PropOfEdgeAt(const PropertyGraph& g, const Path& p, size_t j,
                          std::string_view key) {
  EdgeId e = p.EdgeAt(j);
  if (e == kInvalidId) return nullptr;
  return g.EdgeProperty(e, key);
}

std::string PathWord(const PropertyGraph& g, const Path& p) {
  std::string out;
  for (size_t j = 1; j <= p.Len(); ++j) {
    out += std::string(LabelOfEdgeAt(g, p, j));
  }
  return out;
}

}  // namespace pathalg
