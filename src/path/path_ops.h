#ifndef PATHALG_PATH_PATH_OPS_H_
#define PATHALG_PATH_PATH_OPS_H_

/// \file path_ops.h
/// The graph-aware path operators of §3.1 — Label(o) and Prop(o, pr) need λ
/// and ν, hence take the graph — plus the two atom producers Nodes(G) and
/// Edges(G) (§2.2: paths of length zero and one, the leaves of every
/// evaluation tree).

#include <optional>
#include <string_view>

#include "path/path.h"
#include "path/path_set.h"

namespace pathalg {

/// Nodes(G): all paths of length zero.
PathSet NodesOf(const PropertyGraph& g);

/// Edges(G): all paths of length one.
PathSet EdgesOf(const PropertyGraph& g);

/// σ_{label(edge(1))=label}(Edges(G)) straight off the label-partitioned
/// CSR slice: the length-one paths of every edge carrying `label`, without
/// materializing the full edge scan. Empty for kNoLabel / unknown labels.
PathSet EdgesWithLabelOf(const PropertyGraph& g, LabelId label);

/// Label(Node(p, i)); empty when i is out of range or the node unlabelled.
std::string_view LabelOfNodeAt(const PropertyGraph& g, const Path& p,
                               size_t i);

/// Label(Edge(p, j)); empty when j is out of range or the edge unlabelled.
std::string_view LabelOfEdgeAt(const PropertyGraph& g, const Path& p,
                               size_t j);

/// Prop(Node(p, i), key); nullptr when absent.
const Value* PropOfNodeAt(const PropertyGraph& g, const Path& p, size_t i,
                          std::string_view key);

/// Prop(Edge(p, j), key); nullptr when absent.
const Value* PropOfEdgeAt(const PropertyGraph& g, const Path& p, size_t j,
                          std::string_view key);

/// λ(p): the concatenation of the edge labels along p (§2.2). Unlabelled
/// edges contribute nothing. Labels are separated by nothing, exactly as the
/// paper's word-of-a-path definition.
std::string PathWord(const PropertyGraph& g, const Path& p);

}  // namespace pathalg

#endif  // PATHALG_PATH_PATH_OPS_H_
