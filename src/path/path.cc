#include "path/path.h"

#include <cassert>
#include <unordered_set>

#include "common/hash.h"

namespace pathalg {

Path::Path(std::vector<NodeId> nodes, std::vector<EdgeId> edges)
    : nodes_(std::move(nodes)), edges_(std::move(edges)) {
  assert(nodes_.size() == edges_.size() + 1);
}

Result<Path> Path::Concat(const Path& p1, const Path& p2) {
  if (p1.empty() || p2.empty()) {
    return Status::InvalidArgument("cannot concatenate an empty path");
  }
  if (p1.Last() != p2.First()) {
    return Status::InvalidArgument(
        "path concatenation requires Last(p1) == First(p2)");
  }
  return ConcatUnchecked(p1, p2);
}

Path Path::ConcatUnchecked(const Path& p1, const Path& p2) {
  std::vector<NodeId> nodes;
  nodes.reserve(p1.nodes_.size() + p2.nodes_.size() - 1);
  nodes = p1.nodes_;
  nodes.insert(nodes.end(), p2.nodes_.begin() + 1, p2.nodes_.end());
  std::vector<EdgeId> edges;
  edges.reserve(p1.edges_.size() + p2.edges_.size());
  edges = p1.edges_;
  edges.insert(edges.end(), p2.edges_.begin(), p2.edges_.end());
  return Path(std::move(nodes), std::move(edges));
}

namespace {

// These classification checks run once per candidate inside ϕ's frontier
// loop, so their constant factor is hot. Below the cutoff an O(L²)
// pairwise scan with zero allocations beats building an unordered_set per
// call by a wide margin; past it (rare — recursion budgets keep paths
// short) the hash set's O(L) takes over.
constexpr size_t kDistinctScanCutoff = 24;

/// True iff xs[0, limit) are pairwise distinct (small-size scan).
template <typename T>
bool PrefixDistinctSmall(const std::vector<T>& xs, size_t limit) {
  for (size_t i = 1; i < limit; ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (xs[i] == xs[j]) return false;
    }
  }
  return true;
}

template <typename T>
bool PrefixDistinctHashed(const std::vector<T>& xs, size_t limit) {
  std::unordered_set<T> seen;
  seen.reserve(limit);
  for (size_t i = 0; i < limit; ++i) {
    if (!seen.insert(xs[i]).second) return false;
  }
  return true;
}

template <typename T>
bool PrefixDistinct(const std::vector<T>& xs, size_t limit) {
  return limit <= kDistinctScanCutoff ? PrefixDistinctSmall(xs, limit)
                                      : PrefixDistinctHashed(xs, limit);
}

}  // namespace

bool Path::IsAcyclic() const {
  return PrefixDistinct(nodes_, nodes_.size());
}

bool Path::IsSimple() const {
  if (nodes_.size() <= 1) return true;
  // All nodes but the last must be pairwise distinct; the last may repeat
  // only the first (closed simple path / cycle).
  const size_t prefix = nodes_.size() - 1;
  if (!PrefixDistinct(nodes_, prefix)) return false;
  NodeId last = nodes_.back();
  if (last == nodes_.front()) return true;
  for (size_t i = 1; i < prefix; ++i) {
    if (nodes_[i] == last) return false;
  }
  return true;
}

bool Path::IsTrail() const {
  return PrefixDistinct(edges_, edges_.size());
}

Status Path::Validate(const PropertyGraph& g) const {
  if (empty()) return Status::InvalidArgument("empty path");
  for (NodeId n : nodes_) {
    if (!g.IsValidNode(n)) {
      return Status::InvalidArgument("path references unknown node #" +
                                     std::to_string(n));
    }
  }
  for (size_t j = 0; j < edges_.size(); ++j) {
    EdgeId e = edges_[j];
    if (!g.IsValidEdge(e)) {
      return Status::InvalidArgument("path references unknown edge #" +
                                     std::to_string(e));
    }
    if (g.Source(e) != nodes_[j] || g.Target(e) != nodes_[j + 1]) {
      return Status::InvalidArgument(
          "edge " + std::string(g.EdgeName(e)) +
          " does not connect the adjacent path nodes (rho mismatch)");
    }
  }
  return Status::OK();
}

bool Path::operator<(const Path& other) const {
  if (Len() != other.Len()) return Len() < other.Len();
  if (nodes_ != other.nodes_) return nodes_ < other.nodes_;
  return edges_ < other.edges_;
}

size_t Path::Hash() const {
  size_t h = HashRange(nodes_.begin(), nodes_.end(), 0x70617468);
  return HashRange(edges_.begin(), edges_.end(), h);
}

std::string Path::ToString(const PropertyGraph& g) const {
  std::string out = "(";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) {
      out += ", ";
      out += g.EdgeName(edges_[i - 1]);
      out += ", ";
    }
    out += g.NodeName(nodes_[i]);
  }
  out += ")";
  return out;
}

std::string Path::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) {
      out += ", #" + std::to_string(edges_[i - 1]) + ", ";
    }
    out += "#" + std::to_string(nodes_[i]);
  }
  out += ")";
  return out;
}

}  // namespace pathalg
