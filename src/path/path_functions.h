#ifndef PATHALG_PATH_PATH_FUNCTIONS_H_
#define PATHALG_PATH_PATH_FUNCTIONS_H_

/// \file path_functions.h
/// Group variables (§2.3): GQL collects the nodes or edges along a path
/// into lists. The paper notes that "incorporating them into our framework
/// is rather straightforward" — these functions are that incorporation:
/// per-path list extraction and property collection, usable as a
/// post-processing step over any PathSet.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "path/path.h"
#include "path/path_set.h"

namespace pathalg {

/// The nodes along p, in order — GQL's `nodes(p)` group variable.
std::vector<NodeId> NodesAlong(const Path& p);

/// The edges along p, in order — GQL's `edges(p)`.
std::vector<EdgeId> EdgesAlong(const Path& p);

/// The value of property `key` for every node along p, in order; absent
/// properties yield nullopt entries (GQL's list comprehension over a group
/// variable).
std::vector<std::optional<Value>> CollectNodeProperty(
    const PropertyGraph& g, const Path& p, std::string_view key);

/// Same for the edges along p.
std::vector<std::optional<Value>> CollectEdgeProperty(
    const PropertyGraph& g, const Path& p, std::string_view key);

/// The distinct node labels along p, in first-occurrence order.
std::vector<std::string> DistinctNodeLabels(const PropertyGraph& g,
                                            const Path& p);

/// Numeric aggregate over an edge property along p (e.g. total cost of a
/// route). Missing or non-numeric values are skipped; nullopt when no edge
/// carries the property.
std::optional<double> SumEdgeProperty(const PropertyGraph& g, const Path& p,
                                      std::string_view key);

}  // namespace pathalg

#endif  // PATHALG_PATH_PATH_FUNCTIONS_H_
