#ifndef PATHALG_PATH_PATH_H_
#define PATHALG_PATH_PATH_H_

/// \file path.h
/// Paths as first-class values (§2.2): a path is an alternating sequence
/// (n1, e1, n2, ..., ek, nk+1) with ρ(ei) = (ni, ni+1). A path of length 0
/// is a single node. This class stores the id sequences; operators needing
/// λ/ν take the graph as an argument (see path_ops.h).
///
/// The paper's path operators (§3.1) use 1-based positions: Node(p, i) is
/// the i-th node, Edge(p, j) the j-th edge. This API mirrors that.

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/property_graph.h"

namespace pathalg {

class Path {
 public:
  /// Constructs the zero-length path (n).
  static Path SingleNode(NodeId n) { return Path({n}, {}); }

  /// Constructs the length-one path (src, e, dst).
  static Path SingleEdge(NodeId src, EdgeId e, NodeId dst) {
    return Path({src, dst}, {e});
  }

  /// Constructs the length-one path for edge `e` of `g`.
  static Path EdgeOf(const PropertyGraph& g, EdgeId e) {
    return SingleEdge(g.Source(e), e, g.Target(e));
  }

  /// Constructs from explicit sequences; requires
  /// nodes.size() == edges.size() + 1. Does not validate ρ against a graph —
  /// use Validate() for that.
  Path(std::vector<NodeId> nodes, std::vector<EdgeId> edges);

  /// Default: the empty/invalid path (no nodes). Valid paths always have at
  /// least one node; empty paths only appear as moved-from or default state.
  Path() = default;
  bool empty() const { return nodes_.empty(); }

  /// Len(p): number of edges (§3.1).
  size_t Len() const { return edges_.size(); }

  /// First(p) / Last(p).
  NodeId First() const { return nodes_.front(); }
  NodeId Last() const { return nodes_.back(); }

  /// Node(p, i), 1-based; kInvalidId when out of range [1, Len()+1].
  NodeId NodeAt(size_t i) const {
    return (i >= 1 && i <= nodes_.size()) ? nodes_[i - 1] : kInvalidId;
  }

  /// Edge(p, j), 1-based; kInvalidId when out of range [1, Len()].
  EdgeId EdgeAt(size_t j) const {
    return (j >= 1 && j <= edges_.size()) ? edges_[j - 1] : kInvalidId;
  }

  const std::vector<NodeId>& nodes() const { return nodes_; }
  const std::vector<EdgeId>& edges() const { return edges_; }

  /// Path concatenation p1 ◦ p2 (§3.1). Requires Last(p1) == First(p2);
  /// returns InvalidArgument otherwise.
  static Result<Path> Concat(const Path& p1, const Path& p2);

  /// Unchecked concatenation for operator inner loops; precondition:
  /// !p1.empty() && !p2.empty() && p1.Last() == p2.First().
  static Path ConcatUnchecked(const Path& p1, const Path& p2);

  /// Classification (§2.2):
  /// acyclic — all nodes distinct.
  bool IsAcyclic() const;
  /// simple — all nodes distinct except possibly first == last.
  bool IsSimple() const;
  /// trail — all edges distinct.
  bool IsTrail() const;

  /// Checks ρ-consistency against `g`: every edge exists and connects the
  /// adjacent nodes of the sequence.
  Status Validate(const PropertyGraph& g) const;

  /// Paths are equal iff they have identical id sequences (§2.2); the total
  /// order (by length, then lexicographic ids) gives result sets a canonical
  /// order.
  bool operator==(const Path& other) const {
    return nodes_ == other.nodes_ && edges_ == other.edges_;
  }
  bool operator!=(const Path& other) const { return !(*this == other); }
  bool operator<(const Path& other) const;

  size_t Hash() const;

  /// Renders with display names: "(n1, e1, n2)".
  std::string ToString(const PropertyGraph& g) const;
  /// Renders with raw ids: "(#0, #0, #1)". Useful without a graph at hand.
  std::string ToString() const;

 private:
  std::vector<NodeId> nodes_;
  std::vector<EdgeId> edges_;
};

}  // namespace pathalg

#endif  // PATHALG_PATH_PATH_H_
