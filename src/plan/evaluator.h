#ifndef PATHALG_PLAN_EVALUATOR_H_
#define PATHALG_PLAN_EVALUATOR_H_

/// \file evaluator.h
/// The reference interpreter for logical plans: "to build a reference
/// implementation, one only needs to specify an algorithm for each operator
/// of the algebra" (§7.2). Each plan node maps 1:1 onto the algebra
/// implementations in src/algebra.

#include "algebra/recursive.h"
#include "common/result.h"
#include "graph/property_graph.h"
#include "path/path_set.h"
#include "plan/plan.h"

namespace pathalg {

/// Evaluation knobs threaded through every ϕ in the plan.
struct EvalOptions {
  EvalLimits limits;
  PhiEngine engine = PhiEngine::kOptimized;
};

/// Evaluates a path-typed plan (root must not be γ/τ). Validates first.
Result<PathSet> Evaluate(const PropertyGraph& g, const PlanPtr& plan,
                         const EvalOptions& options = {});

/// Evaluates a space-typed plan (root must be γ or τ). Validates first.
Result<SolutionSpace> EvaluateToSpace(const PropertyGraph& g,
                                      const PlanPtr& plan,
                                      const EvalOptions& options = {});

}  // namespace pathalg

#endif  // PATHALG_PLAN_EVALUATOR_H_
