#ifndef PATHALG_PLAN_EVALUATOR_H_
#define PATHALG_PLAN_EVALUATOR_H_

/// \file evaluator.h
/// The reference interpreter for logical plans: "to build a reference
/// implementation, one only needs to specify an algorithm for each operator
/// of the algebra" (§7.2). Each plan node maps 1:1 onto the algebra
/// implementations in src/algebra.

#include <array>
#include <cstdint>

#include "algebra/recursive.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "graph/property_graph.h"
#include "path/path_set.h"
#include "plan/plan.h"

namespace pathalg {

/// Per-evaluation instrumentation, filled in by Evaluate when
/// EvalOptions::stats is set. All timings are wall-clock microseconds;
/// per-operator entries are indexed by `static_cast<size_t>(PlanKind)` and
/// exclude time spent in the operator's children, so they sum (up to clock
/// granularity) to `wall_us`. The engine layer (src/engine) aggregates
/// these into per-query replay reports.
///
/// Race-freedom under parallel operators: pool workers never touch an
/// EvalStats — they accumulate into per-participant ParallelStats slots
/// that the pool sums after its join barrier, and the evaluator folds the
/// result in on the calling thread. Merge is associative (see below), so
/// per-worker/per-query stats can be combined in any grouping.
struct EvalStats {
  uint64_t wall_us = 0;
  /// Plan nodes visited (= operator applications; a node evaluated once).
  size_t nodes_evaluated = 0;
  /// Cardinality of the largest intermediate path set produced by any
  /// operator — the evaluation's memory high-water proxy. Merges as a
  /// *maximum* (a high-water mark over the merged runs), unlike every
  /// other field, which merges by summation.
  size_t peak_intermediate_paths = 0;
  std::array<uint64_t, kNumPlanKinds> op_us{};
  std::array<size_t, kNumPlanKinds> op_count{};
  /// σ_{label(edge(1))=L}(Edges(G)) subtrees answered from the graph's
  /// label-partitioned CSR slice instead of a full edge scan + filter. The
  /// fast path still books both operators into op_count/op_us, so these
  /// hits are a subset of op_count[kSelect].
  size_t label_scan_hits = 0;
  /// Work-stealing pool chunks executed by σ/⋈/ϕ parallel regions.
  size_t chunks_executed = 0;
  /// Chunks executed by a pool participant other than their assigned one.
  size_t steal_count = 0;
  /// NFA-fused ϕ (algebra/frontier_closure.h) instrumentation: ϕ nodes
  /// answered by the frontier engine (the ϕ's child subtree is never
  /// evaluated on a hit), product (node, NFA-state) steps taken, and Path
  /// objects reconstructed for accepting survivors. All sum on Merge.
  size_t fused_closure_hits = 0;
  size_t frontier_states_expanded = 0;
  size_t frontier_paths_reconstructed = 0;
  /// Per-operator count of parallel-eligible regions (one operator
  /// input, one ϕ segment wave, or one shortest length layer) that ran
  /// serially despite threads > 1 — input under the min_chunk threshold,
  /// or (one count per ϕ call) the intentionally-serial
  /// PhiEngine::kNaive. One big ϕ can contribute several counts: its
  /// small tail layers fall back while its big layers parallelize.
  std::array<size_t, kNumPlanKinds> op_serial_fallback{};

  /// Accumulates `other` into this (for multi-query and per-worker
  /// aggregation). Associative and commutative: counters and timings sum,
  /// peak_intermediate_paths takes the max — so merging {a,b,c} yields the
  /// same result under any grouping or order.
  void Merge(const EvalStats& other);
};

/// Evaluation knobs threaded through every ϕ in the plan.
struct EvalOptions {
  EvalLimits limits;
  PhiEngine engine = PhiEngine::kOptimized;
  /// Worker threads for σ/⋈/ϕ (common/thread_pool.h): 1 = serial (the
  /// default; never touches the pool), 0 = hardware concurrency. Parallel
  /// evaluation is byte-identical to serial — same paths, same order, same
  /// Status on budget exhaustion — at any thread count.
  size_t threads = 1;
  /// Inputs smaller than 2*min_chunk stay serial; every chunk except
  /// possibly the last holds at least min_chunk items.
  size_t min_chunk = 128;
  /// Fuse eligible ϕ subtrees into the NFA-driven frontier engine
  /// (algebra/frontier_closure.h): a kRecursive node whose child subtree
  /// is the compiled form of a closure-free regex is answered by product-
  /// automaton expansion without materializing the base set. Set-equal
  /// results and identical budget Status either way (the differential
  /// fuzz pins both); only applies under PhiEngine::kOptimized.
  bool fuse_closures = true;
  /// Optional stats collector (not owned; may be null). When set, Evaluate
  /// resets and fills it — including on error, so callers can attribute the
  /// cost of failed evaluations.
  EvalStats* stats = nullptr;
};

/// Evaluates a path-typed plan (root must not be γ/τ). Validates first.
Result<PathSet> Evaluate(const PropertyGraph& g, const PlanPtr& plan,
                         const EvalOptions& options = {});

/// Evaluates a space-typed plan (root must be γ or τ). Validates first.
Result<SolutionSpace> EvaluateToSpace(const PropertyGraph& g,
                                      const PlanPtr& plan,
                                      const EvalOptions& options = {});

}  // namespace pathalg

#endif  // PATHALG_PLAN_EVALUATOR_H_
