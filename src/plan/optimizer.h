#ifndef PATHALG_PLAN_OPTIMIZER_H_
#define PATHALG_PLAN_OPTIMIZER_H_

/// \file optimizer.h
/// Logical plan rewrites (§7.3): "a well-known advantage of having a query
/// algebra is that it facilitates query optimization."
///
/// Result-preserving rules (on by default):
///   1. select-merge      σc1(σc2(x))            → σ(c1 AND c2)(x)
///   2. select-pushdown   σ through ∪ (both sides), through ⋈ (first.*
///      conditions go left, last.* go right, fixed-position conditions go
///      left when the left input has a statically fixed length that covers
///      every accessed position — Figure 6's rewrite)
///   3. orderby-simplify  τθ(γψ(x)) drops ordering components that are
///      no-ops for ψ's organization (§6's τPG-after-γ∅ example); an empty
///      τ is removed
///   4. union-dedup       x ∪ x → x (structural equality)
///   5. project-all       π(*,*,*) over γ/τ chains → the underlying
///      path-typed subtree (projection of everything is the identity)
///   6. any-shortest      π(*,*,1)(τA(γST(ϕWalk(x)))) →
///                        π(*,*,1)(τA(γST(ϕShortest(x)))) — only the
///      per-pair shortest survive the projection, so ϕ need not enumerate
///      non-shortest walks; this turns a diverging plan into a terminating
///      one while preserving the answer exactly (ties resolve canonically).
///
/// Semantics-changing rescue (opt-in, §7.3's example):
///   7. walk-to-shortest  π(#p,#g,*)(τG(γL(ϕWalk(x)))) →
///                        π(#p,#g,*)(τG(γL(ϕShortest(x)))). The paper notes
///      this equivalence "just works well when the target graph does not
///      contain cycles" — it trades completeness of the walk enumeration
///      for termination, so it is gated behind
///      OptimizerOptions::enable_walk_rescue.

#include <string>
#include <vector>

#include "plan/cost.h"
#include "plan/plan.h"

namespace pathalg {

struct OptimizerOptions {
  bool select_merge = true;
  bool select_pushdown = true;
  bool orderby_simplify = true;
  bool union_dedup = true;
  bool project_all = true;
  bool any_shortest = true;
  /// ρs(ϕs(x)) → ϕs(x) when the producer's semantics already implies the
  /// filter (acyclic ⊆ simple ⊆ trail ⊆ walk); ρWalk and ρ over length-≤1
  /// inputs are identities.
  bool restrict_elim = true;
  /// x ⋈ Nodes(G) → x (zero-length paths are join identities).
  bool join_identity = true;
  /// ϕs(ϕs(x)) → ϕs(x).
  bool recursive_idempotent = true;
  /// §7.3's ϕWalk→ϕShortest rescue; changes semantics on cyclic graphs.
  bool enable_walk_rescue = false;
  /// Fixpoint bound.
  size_t max_passes = 16;
  /// Cost-based join re-association (⋈ is associative but not commutative:
  /// only the grouping may change). Requires `stats`; no-op otherwise.
  bool join_reassociation = true;
  /// Graph statistics for the cost-based rules; optional (not owned).
  const GraphStats* stats = nullptr;
};

struct OptimizeResult {
  PlanPtr plan;
  /// Rule names in application order, e.g. {"select-pushdown",
  /// "select-merge"}; useful for tests and EXPLAIN-style output.
  std::vector<std::string> applied;
};

/// Rewrites `plan` to a fixpoint of the enabled rules.
OptimizeResult Optimize(const PlanPtr& plan,
                        const OptimizerOptions& options = {});

}  // namespace pathalg

#endif  // PATHALG_PLAN_OPTIMIZER_H_
