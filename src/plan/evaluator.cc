#include "plan/evaluator.h"

#include <algorithm>
#include <variant>

#include "algebra/core_ops.h"
#include "algebra/eval_budget.h"
#include "algebra/frontier_closure.h"
#include "common/timing.h"
#include "path/path_ops.h"
#include "regex/ast.h"

namespace pathalg {

void EvalStats::Merge(const EvalStats& other) {
  // Sum every counter/timing; max the high-water mark. Both operations
  // are associative and commutative, so per-worker and per-query partial
  // stats combine to the same totals under any merge grouping
  // (tested by EvalStatsMergeTest.MergeIsAssociative).
  wall_us += other.wall_us;
  nodes_evaluated += other.nodes_evaluated;
  peak_intermediate_paths =
      std::max(peak_intermediate_paths, other.peak_intermediate_paths);
  for (size_t i = 0; i < kNumPlanKinds; ++i) {
    op_us[i] += other.op_us[i];
    op_count[i] += other.op_count[i];
    op_serial_fallback[i] += other.op_serial_fallback[i];
  }
  label_scan_hits += other.label_scan_hits;
  chunks_executed += other.chunks_executed;
  steal_count += other.steal_count;
  fused_closure_hits += other.fused_closure_hits;
  frontier_states_expanded += other.frontier_states_expanded;
  frontier_paths_reconstructed += other.frontier_paths_reconstructed;
}

namespace {

using EvalValue = std::variant<PathSet, SolutionSpace>;

/// Records one operator application into `stats` (null = no-op): own wall
/// time (children excluded — the caller passes the instant its own work
/// began) plus the intermediate-cardinality high-water mark.
void RecordOp(EvalStats* stats, const PlanNode& node,
              SteadyClock::time_point own_start, const EvalValue& out) {
  if (stats == nullptr) return;
  const size_t k = static_cast<size_t>(node.kind());
  stats->op_us[k] += MicrosSince(own_start);
  stats->op_count[k] += 1;
  stats->nodes_evaluated += 1;
  if (const PathSet* ps = std::get_if<PathSet>(&out)) {
    stats->peak_intermediate_paths =
        std::max(stats->peak_intermediate_paths, ps->size());
  }
}

Result<EvalValue> ApplyOp(const PropertyGraph& g, const PlanNode& node,
                          std::vector<EvalValue>& inputs,
                          const EvalOptions& options);

/// Matches σ_{label(edge(1))="L"}(Edges(G)) — the shape every compiled
/// regex label atom takes. Such subtrees are answered directly from the
/// graph's label CSR slice: same result as scan-then-filter (a missing
/// label matches nothing either way), but only |edges with L| paths are
/// ever materialized. Returns the matched condition, or nullptr.
const Condition* MatchEdgeLabelScan(const PlanNode& node) {
  if (node.kind() != PlanKind::kSelect) return nullptr;
  if (node.children().size() != 1 ||
      node.child()->kind() != PlanKind::kEdgesScan) {
    return nullptr;
  }
  const Condition* c = node.condition().get();
  if (c == nullptr || c->kind() != Condition::Kind::kSimple) return nullptr;
  if (c->access() != AccessKind::kEdgeLabel || c->position() != 1) {
    return nullptr;
  }
  if (c->op() != CompareOp::kEq || !c->constant().is_string()) return nullptr;
  return c;
}

/// Inverts the compile.cc regex→plan mapping for the closure-free shapes
/// the frontier engine fuses: σ_{label(edge(1))=L}(Edges) → :L,
/// Join → concatenation, Union → alternation. Returns nullptr when the
/// subtree is not the compiled form of a closure-free regex (e.g. it
/// contains a nested ϕ, a NodesScan from `*`/`?` lowering, or a
/// hand-built filter) — the caller then evaluates the subtree normally.
RegexPtr ReconstructRegex(const PlanNode& node) {
  if (const Condition* c = MatchEdgeLabelScan(node)) {
    return RegexNode::Label(c->constant().AsString());
  }
  if (node.children().size() != 2) return nullptr;
  if (node.kind() != PlanKind::kJoin && node.kind() != PlanKind::kUnion) {
    return nullptr;
  }
  RegexPtr l = ReconstructRegex(*node.children()[0]);
  if (l == nullptr) return nullptr;
  RegexPtr r = ReconstructRegex(*node.children()[1]);
  if (r == nullptr) return nullptr;
  return node.kind() == PlanKind::kJoin ? RegexNode::Concat(std::move(l),
                                                            std::move(r))
                                        : RegexNode::Union(std::move(l),
                                                           std::move(r));
}

// GCC 12 flags the Result<variant<...>> moves in Eval/ApplyOp returns —
// and, at -O2 (RelWithDebInfo, the TSan build), the inlined
// std::get<SolutionSpace> move in EvaluateToSpace — as
// maybe-uninitialized (a known std::variant false positive); every path
// that reaches those returns has fully constructed the value. The pop is
// at the end of the file so both regions stay covered.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
Result<EvalValue> Eval(const PropertyGraph& g, const PlanNode& node,
                       const EvalOptions& options) {
  // Per-plan-node cancellation point: covers σ/⋈ and the scans, whose
  // operator kernels return plain PathSets and so cannot trip mid-op;
  // the ϕ engines additionally poll at their own round/segment/layer
  // boundaries via options.limits.cancel.
  if (CancelRequested(options.limits.cancel)) {
    return EvalCancelled(*options.limits.cancel);
  }
  if (const Condition* c = MatchEdgeLabelScan(node)) {
    const SteadyClock::time_point own_start = SteadyClock::now();
    EvalValue out(
        EdgesWithLabelOf(g, g.FindLabel(c->constant().AsString())));
    if (options.stats != nullptr) {
      // Book both collapsed operators so op_count matches the slow path;
      // the scan's time is attributed to the Select.
      options.stats->op_count[static_cast<size_t>(PlanKind::kEdgesScan)] += 1;
      options.stats->nodes_evaluated += 1;
      options.stats->label_scan_hits += 1;
    }
    RecordOp(options.stats, node, own_start, out);
    return out;
  }
  // NFA-fused ϕ: when the closure's child subtree is the compiled form of
  // a closure-free regex, skip evaluating it (the base set is never
  // materialized) and run the product-automaton frontier engine instead.
  // Unlike the label-scan fast path the collapsed children are *not*
  // booked into op_count — no operator ran for them.
  if (node.kind() == PlanKind::kRecursive &&
      options.engine == PhiEngine::kOptimized && options.fuse_closures) {
    if (RegexPtr inner = ReconstructRegex(*node.children()[0]);
        inner != nullptr && FrontierEligible(inner)) {
      const SteadyClock::time_point own_start = SteadyClock::now();
      const ParallelOptions par{options.threads, options.min_chunk};
      ParallelStats pstats;
      FrontierClosureStats fstats;
      Result<PathSet> r = FrontierClosure(g, inner, node.semantics(),
                                          options.limits, par, &pstats,
                                          &fstats);
      if (options.stats != nullptr) {  // a failed ϕ still reports its work
        options.stats->chunks_executed += pstats.chunks_executed;
        options.stats->steal_count += pstats.steal_count;
        options.stats->op_serial_fallback[static_cast<size_t>(
            PlanKind::kRecursive)] += pstats.serial_fallbacks;
        options.stats->fused_closure_hits += 1;
        options.stats->frontier_states_expanded += fstats.states_expanded;
        options.stats->frontier_paths_reconstructed +=
            fstats.paths_reconstructed;
      }
      if (!r.ok()) {
        // Book the node even on a budget error, mirroring the non-fused
        // path where children evaluate before ϕ fails — callers attribute
        // the cost of failed evaluations (see EvalOptions::stats).
        if (options.stats != nullptr) {
          const size_t k = static_cast<size_t>(node.kind());
          options.stats->op_us[k] += MicrosSince(own_start);
          options.stats->op_count[k] += 1;
          options.stats->nodes_evaluated += 1;
        }
        return r.status();
      }
      EvalValue out(std::move(r).value());
      RecordOp(options.stats, node, own_start, out);
      return out;
    }
  }
  // Evaluate children first (all operators are strict).
  std::vector<EvalValue> inputs;
  inputs.reserve(node.children().size());
  for (const PlanPtr& c : node.children()) {
    PATHALG_ASSIGN_OR_RETURN(EvalValue v, Eval(g, *c, options));
    inputs.push_back(std::move(v));
  }
  const SteadyClock::time_point own_start = SteadyClock::now();
  PATHALG_ASSIGN_OR_RETURN(EvalValue out, ApplyOp(g, node, inputs, options));
  RecordOp(options.stats, node, own_start, out);
  return EvalValue(std::move(out));
}

/// Applies one operator to its already-evaluated inputs.
Result<EvalValue> ApplyOp(const PropertyGraph& g, const PlanNode& node,
                          std::vector<EvalValue>& inputs,
                          const EvalOptions& options) {
  auto paths = [&](size_t i) -> PathSet& {
    return std::get<PathSet>(inputs[i]);
  };
  const ParallelOptions par{options.threads, options.min_chunk};
  // Workers accumulate into pool-local slots; this folds the merged
  // region counters into the (calling-thread-only) EvalStats.
  ParallelStats pstats;
  auto fold_parallel = [&]() {
    if (options.stats == nullptr) return;
    options.stats->chunks_executed += pstats.chunks_executed;
    options.stats->steal_count += pstats.steal_count;
    options.stats->op_serial_fallback[static_cast<size_t>(node.kind())] +=
        pstats.serial_fallbacks;
  };
  switch (node.kind()) {
    case PlanKind::kNodesScan:
      return EvalValue(NodesOf(g));
    case PlanKind::kEdgesScan:
      return EvalValue(EdgesOf(g));
    case PlanKind::kSelect: {
      EvalValue out(Select(g, paths(0), *node.condition(), par, &pstats));
      fold_parallel();
      // σ/⋈ run to completion (their kernels return plain PathSets), so
      // a trip during the operator surfaces here, at the chunk-merge
      // boundary, before the result can flow further up the plan.
      if (CancelRequested(options.limits.cancel)) {
        return EvalCancelled(*options.limits.cancel);
      }
      return out;
    }
    case PlanKind::kJoin: {
      EvalValue out(Join(paths(0), paths(1), par, &pstats));
      fold_parallel();
      if (CancelRequested(options.limits.cancel)) {
        return EvalCancelled(*options.limits.cancel);
      }
      return out;
    }
    case PlanKind::kUnion:
      return EvalValue(Union(paths(0), paths(1)));
    case PlanKind::kIntersect:
      return EvalValue(Intersect(paths(0), paths(1)));
    case PlanKind::kDifference:
      return EvalValue(Difference(paths(0), paths(1)));
    case PlanKind::kRecursive: {
      Result<PathSet> r = Recursive(paths(0), node.semantics(),
                                    options.limits, options.engine, par,
                                    &pstats);
      fold_parallel();  // a failed ϕ still reports its parallel work
      PATHALG_RETURN_NOT_OK(r.status());
      return EvalValue(std::move(r).value());
    }
    case PlanKind::kRestrict:
      return EvalValue(RestrictPaths(paths(0), node.semantics()));
    case PlanKind::kGroupBy:
      return EvalValue(GroupBy(paths(0), node.group_key()));
    case PlanKind::kOrderBy:
      return EvalValue(
          OrderBy(std::get<SolutionSpace>(inputs[0]), node.order_key()));
    case PlanKind::kProject: {
      PATHALG_ASSIGN_OR_RETURN(
          PathSet r,
          Project(std::get<SolutionSpace>(inputs[0]), node.projection()));
      return EvalValue(std::move(r));
    }
  }
  return Status::Internal("unknown plan kind");
}

/// Shared prologue/epilogue of the two public entry points: resets the
/// stats collector, runs `body`, and stamps total wall time (errors
/// included, so failed evaluations still report their cost).
template <typename T, typename Body>
Result<T> Timed(const EvalOptions& options, Body body) {
  if (options.stats != nullptr) *options.stats = EvalStats();
  const SteadyClock::time_point start = SteadyClock::now();
  Result<T> r = body();
  if (options.stats != nullptr) options.stats->wall_us = MicrosSince(start);
  return r;
}

}  // namespace

Result<PathSet> Evaluate(const PropertyGraph& g, const PlanPtr& plan,
                         const EvalOptions& options) {
  return Timed<PathSet>(options, [&]() -> Result<PathSet> {
    if (plan == nullptr) return Status::InvalidArgument("null plan");
    PATHALG_RETURN_NOT_OK(plan->Validate());
    if (plan->ProducesSpace()) {
      return Status::InvalidArgument(
          "plan root produces a solution space; use EvaluateToSpace or add "
          "a Project");
    }
    PATHALG_ASSIGN_OR_RETURN(EvalValue v, Eval(g, *plan, options));
    return std::get<PathSet>(std::move(v));
  });
}

Result<SolutionSpace> EvaluateToSpace(const PropertyGraph& g,
                                      const PlanPtr& plan,
                                      const EvalOptions& options) {
  return Timed<SolutionSpace>(options, [&]() -> Result<SolutionSpace> {
    if (plan == nullptr) return Status::InvalidArgument("null plan");
    PATHALG_RETURN_NOT_OK(plan->Validate());
    if (!plan->ProducesSpace()) {
      return Status::InvalidArgument(
          "plan root produces a set of paths; use Evaluate");
    }
    PATHALG_ASSIGN_OR_RETURN(EvalValue v, Eval(g, *plan, options));
    return std::get<SolutionSpace>(std::move(v));
  });
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace pathalg
