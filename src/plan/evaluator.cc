#include "plan/evaluator.h"

#include <variant>

#include "algebra/core_ops.h"
#include "path/path_ops.h"

namespace pathalg {

namespace {

using EvalValue = std::variant<PathSet, SolutionSpace>;

Result<EvalValue> Eval(const PropertyGraph& g, const PlanNode& node,
                       const EvalOptions& options) {
  // Evaluate children first (all operators are strict).
  std::vector<EvalValue> inputs;
  inputs.reserve(node.children().size());
  for (const PlanPtr& c : node.children()) {
    PATHALG_ASSIGN_OR_RETURN(EvalValue v, Eval(g, *c, options));
    inputs.push_back(std::move(v));
  }
  auto paths = [&](size_t i) -> PathSet& {
    return std::get<PathSet>(inputs[i]);
  };
  switch (node.kind()) {
    case PlanKind::kNodesScan:
      return EvalValue(NodesOf(g));
    case PlanKind::kEdgesScan:
      return EvalValue(EdgesOf(g));
    case PlanKind::kSelect:
      return EvalValue(Select(g, paths(0), *node.condition()));
    case PlanKind::kJoin:
      return EvalValue(Join(paths(0), paths(1)));
    case PlanKind::kUnion:
      return EvalValue(Union(paths(0), paths(1)));
    case PlanKind::kIntersect:
      return EvalValue(Intersect(paths(0), paths(1)));
    case PlanKind::kDifference:
      return EvalValue(Difference(paths(0), paths(1)));
    case PlanKind::kRecursive: {
      PATHALG_ASSIGN_OR_RETURN(
          PathSet r, Recursive(paths(0), node.semantics(), options.limits,
                               options.engine));
      return EvalValue(std::move(r));
    }
    case PlanKind::kRestrict:
      return EvalValue(RestrictPaths(paths(0), node.semantics()));
    case PlanKind::kGroupBy:
      return EvalValue(GroupBy(paths(0), node.group_key()));
    case PlanKind::kOrderBy:
      return EvalValue(
          OrderBy(std::get<SolutionSpace>(inputs[0]), node.order_key()));
    case PlanKind::kProject: {
      PATHALG_ASSIGN_OR_RETURN(
          PathSet r,
          Project(std::get<SolutionSpace>(inputs[0]), node.projection()));
      return EvalValue(std::move(r));
    }
  }
  return Status::Internal("unknown plan kind");
}

}  // namespace

Result<PathSet> Evaluate(const PropertyGraph& g, const PlanPtr& plan,
                         const EvalOptions& options) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  PATHALG_RETURN_NOT_OK(plan->Validate());
  if (plan->ProducesSpace()) {
    return Status::InvalidArgument(
        "plan root produces a solution space; use EvaluateToSpace or add a "
        "Project");
  }
  PATHALG_ASSIGN_OR_RETURN(EvalValue v, Eval(g, *plan, options));
  return std::get<PathSet>(std::move(v));
}

Result<SolutionSpace> EvaluateToSpace(const PropertyGraph& g,
                                      const PlanPtr& plan,
                                      const EvalOptions& options) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  PATHALG_RETURN_NOT_OK(plan->Validate());
  if (!plan->ProducesSpace()) {
    return Status::InvalidArgument(
        "plan root produces a set of paths; use Evaluate");
  }
  PATHALG_ASSIGN_OR_RETURN(EvalValue v, Eval(g, *plan, options));
  return std::get<SolutionSpace>(std::move(v));
}

}  // namespace pathalg
