#ifndef PATHALG_PLAN_COST_H_
#define PATHALG_PLAN_COST_H_

/// \file cost.h
/// Cardinality estimation and a simple cost model over logical plans —
/// the ingredient §7.3 points at when it says algebra manipulations "are a
/// standard part of any cost-based query execution plan in SQL databases".
///
/// Estimates are deliberately coarse (independence assumptions, uniform
/// endpoints, capped recursion blowup): their job is to *rank* plan
/// alternatives (e.g. join associations), not to predict runtimes.

#include <string>
#include <unordered_map>

#include "graph/property_graph.h"
#include "plan/plan.h"

namespace pathalg {

/// Per-graph statistics the estimator consumes. Collect once per graph.
struct GraphStats {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  /// label → number of edges/nodes carrying it.
  std::unordered_map<std::string, size_t> edge_label_counts;
  std::unordered_map<std::string, size_t> node_label_counts;

  static GraphStats Collect(const PropertyGraph& g);
};

struct CostEstimate {
  /// Estimated number of output paths.
  double cardinality = 0;
  /// Cumulative work estimate (sum over the subtree of per-operator work).
  double cost = 0;
};

/// Estimates output cardinality and total cost of `plan` against `stats`.
/// Never fails: unknown constructs fall back to conservative defaults.
CostEstimate EstimateCost(const PlanPtr& plan, const GraphStats& stats);

/// Estimated fraction of paths satisfying `condition` (0..1), using label
/// histograms for label atoms, 1/num_nodes for endpoint property lookups,
/// and independence for AND/OR.
double EstimateSelectivity(const Condition& condition,
                           const GraphStats& stats);

}  // namespace pathalg

#endif  // PATHALG_PLAN_COST_H_
