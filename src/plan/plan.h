#ifndef PATHALG_PLAN_PLAN_H_
#define PATHALG_PLAN_PLAN_H_

/// \file plan.h
/// Logical plans: "evaluation trees for path algebra expressions can
/// function as logical plans for evaluating path queries" (§1, §7). A plan
/// is an immutable tree of algebra operators; leaves are the atoms Nodes(G)
/// and Edges(G).
///
/// Plans are value-typed at two levels: an operator either produces a *set
/// of paths* (σ, ⋈, ∪, ∩, −, ϕ, π and the scans) or a *solution space*
/// (γ, τ). Validate() enforces the paper's typing rules:
///   γ  : paths → space        τ : space → space      π : space → paths
///   everything else : paths → paths.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algebra/condition.h"
#include "algebra/recursive.h"
#include "algebra/solution_space.h"
#include "common/status.h"

namespace pathalg {

enum class PlanKind {
  kNodesScan,   // Nodes(G)
  kEdgesScan,   // Edges(G)
  kSelect,      // σ_c
  kJoin,        // ⋈
  kUnion,       // ∪
  kIntersect,   // ∩ (extension)
  kDifference,  // − (extension)
  kRecursive,   // ϕ_semantics
  kRestrict,    // ρ_semantics — whole-path restrictor filter (extension):
                // drops paths violating trail/acyclic/simple, keeps
                // per-pair minima for shortest. Lets plans express GQL's
                // whole-path restrictor reading and the outer restrictor of
                // §2.3 sequenced queries.
  kGroupBy,     // γ_ψ
  kOrderBy,     // τ_θ
  kProject,     // π_(#P,#G,#A)
};

/// Number of PlanKind enumerators; sizes per-operator stats arrays.
inline constexpr size_t kNumPlanKinds =
    static_cast<size_t>(PlanKind::kProject) + 1;

const char* PlanKindToString(PlanKind k);

class PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

/// Static [min, max] bound on the length of any path an operator can emit;
/// max is nullopt for "unbounded" (ϕ). Used by the optimizer to justify
/// positional-condition pushdown.
struct LengthBounds {
  size_t min = 0;
  std::optional<size_t> max;
};

class PlanNode {
 public:
  PlanKind kind() const { return kind_; }
  const std::vector<PlanPtr>& children() const { return children_; }
  const PlanPtr& child(size_t i = 0) const { return children_[i]; }

  /// kSelect only.
  const ConditionPtr& condition() const { return condition_; }
  /// kRecursive and kRestrict.
  PathSemantics semantics() const { return semantics_; }
  /// kGroupBy only.
  GroupKey group_key() const { return group_key_; }
  /// kOrderBy only.
  OrderKey order_key() const { return order_key_; }
  /// kProject only.
  const ProjectionSpec& projection() const { return projection_; }

  /// True if this operator produces a solution space (γ, τ); false if it
  /// produces a set of paths.
  bool ProducesSpace() const {
    return kind_ == PlanKind::kGroupBy || kind_ == PlanKind::kOrderBy;
  }

  /// Checks arity and path/space typing of the whole subtree.
  Status Validate() const;

  /// Static length-bounds analysis (meaningful for path-typed nodes).
  LengthBounds Bounds() const;

  /// Structural equality of plans (conditions compared structurally).
  bool Equals(const PlanNode& other) const;

  /// Compact algebra rendering, e.g.
  /// `π(*,*,1)(τ[A](γ[ST](ϕ[TRAIL](σ[label(edge(1)) = "Knows"](Edges(G))))))`.
  std::string ToAlgebraString() const;

  /// Indented tree rendering:
  ///   Project (* PARTITIONS, * GROUPS, 1 PATHS)
  ///     OrderBy (A)
  ///       ...
  std::string ToTreeString() const;

  // Factories ----------------------------------------------------------------
  static PlanPtr NodesScan();
  static PlanPtr EdgesScan();
  static PlanPtr Select(ConditionPtr condition, PlanPtr input);
  static PlanPtr Join(PlanPtr left, PlanPtr right);
  static PlanPtr Union(PlanPtr left, PlanPtr right);
  static PlanPtr Intersect(PlanPtr left, PlanPtr right);
  static PlanPtr Difference(PlanPtr left, PlanPtr right);
  static PlanPtr Recursive(PathSemantics semantics, PlanPtr input);
  static PlanPtr Restrict(PathSemantics semantics, PlanPtr input);
  static PlanPtr GroupBy(GroupKey key, PlanPtr input);
  static PlanPtr OrderBy(OrderKey key, PlanPtr input);
  static PlanPtr Project(ProjectionSpec spec, PlanPtr input);

 private:
  friend struct PlanBuilderAccess;
  PlanNode() = default;

  PlanKind kind_ = PlanKind::kNodesScan;
  std::vector<PlanPtr> children_;
  ConditionPtr condition_;
  PathSemantics semantics_ = PathSemantics::kWalk;
  GroupKey group_key_ = GroupKey::kNone;
  OrderKey order_key_ = OrderKey::kA;
  ProjectionSpec projection_;
};

}  // namespace pathalg

#endif  // PATHALG_PLAN_PLAN_H_
