#include "plan/optimizer.h"

#include <limits>
#include <optional>

namespace pathalg {

namespace {

constexpr size_t kDynamic = std::numeric_limits<size_t>::max();

/// Flattens a condition into its top-level conjuncts.
void Conjuncts(const ConditionPtr& c, std::vector<ConditionPtr>* out) {
  if (c->kind() == Condition::Kind::kAnd) {
    Conjuncts(c->left(), out);
    Conjuncts(c->right(), out);
  } else {
    out->push_back(c);
  }
}

/// Left-folds conjuncts back into a single condition; nullptr when empty.
ConditionPtr AndAll(const std::vector<ConditionPtr>& cs) {
  if (cs.empty()) return nullptr;
  ConditionPtr acc = cs[0];
  for (size_t i = 1; i < cs.size(); ++i) {
    acc = Condition::And(acc, cs[i]);
  }
  return acc;
}

/// Wraps `input` in a Select unless the condition is empty.
PlanPtr MaybeSelect(const std::vector<ConditionPtr>& conjuncts,
                    PlanPtr input) {
  ConditionPtr c = AndAll(conjuncts);
  return c == nullptr ? input : PlanNode::Select(std::move(c),
                                                 std::move(input));
}

/// True if every leaf of `c` reads only the path's endpoints (first/last
/// node label or property). Such conditions are constant within an
/// (source, target) partition, so they commute with the ϕWalk→ϕShortest
/// rewrites: a pair either keeps all of its paths or none.
bool DependsOnlyOnEndpoints(const Condition& c) {
  switch (c.kind()) {
    case Condition::Kind::kSimple:
      switch (c.access()) {
        case AccessKind::kFirstLabel:
        case AccessKind::kFirstProp:
        case AccessKind::kLastLabel:
        case AccessKind::kLastProp:
          return true;
        case AccessKind::kNodeLabel:
        case AccessKind::kNodeProp:
          return c.position() == 1;
        default:
          return false;
      }
    case Condition::Kind::kAnd:
    case Condition::Kind::kOr:
      return DependsOnlyOnEndpoints(*c.left()) &&
             DependsOnlyOnEndpoints(*c.right());
    case Condition::Kind::kNot:
      return DependsOnlyOnEndpoints(*c.left());
  }
  return false;
}

/// If `plan` is a (possibly empty) chain of endpoint-only Selects over
/// ϕWalk(x), returns ϕ<new_semantics>(x) re-wrapped in the same Selects;
/// nullptr when the shape does not match.
PlanPtr SwapWalkSemanticsThroughEndpointSelects(
    const PlanPtr& plan, PathSemantics new_semantics) {
  if (plan->kind() == PlanKind::kRecursive &&
      plan->semantics() == PathSemantics::kWalk) {
    return PlanNode::Recursive(new_semantics, plan->child());
  }
  if (plan->kind() == PlanKind::kSelect &&
      DependsOnlyOnEndpoints(*plan->condition())) {
    PlanPtr inner = SwapWalkSemanticsThroughEndpointSelects(
        plan->child(), new_semantics);
    if (inner == nullptr) return nullptr;
    return PlanNode::Select(plan->condition(), std::move(inner));
  }
  return nullptr;
}

struct Rewriter {
  const OptimizerOptions& options;
  std::vector<std::string>* applied;

  void Note(const char* rule) { applied->emplace_back(rule); }

  // --- σ rules -------------------------------------------------------------

  std::optional<PlanPtr> TrySelect(const PlanPtr& node) {
    const PlanPtr& input = node->child();
    const ConditionPtr& cond = node->condition();

    // select-merge: σc1(σc2(x)) → σ(c1 AND c2)(x).
    if (options.select_merge && input->kind() == PlanKind::kSelect) {
      Note("select-merge");
      return PlanNode::Select(Condition::And(cond, input->condition()),
                              input->child());
    }
    // select-pushdown through ∪: σc(a ∪ b) → σc(a) ∪ σc(b).
    if (options.select_pushdown && input->kind() == PlanKind::kUnion) {
      Note("select-pushdown");
      return PlanNode::Union(PlanNode::Select(cond, input->child(0)),
                             PlanNode::Select(cond, input->child(1)));
    }
    // select-pushdown through ∩ and −: membership in the right operand is
    // unaffected by filtering the left.
    if (options.select_pushdown &&
        (input->kind() == PlanKind::kIntersect ||
         input->kind() == PlanKind::kDifference)) {
      Note("select-pushdown");
      PlanPtr filtered_left = PlanNode::Select(cond, input->child(0));
      return input->kind() == PlanKind::kIntersect
                 ? PlanNode::Intersect(std::move(filtered_left),
                                       input->child(1))
                 : PlanNode::Difference(std::move(filtered_left),
                                        input->child(1));
    }
    // select-pushdown through a non-shortest ρ: both are per-path filters
    // and commute. (ρShortest is a set-level filter: pushing σ through it
    // could resurrect longer paths, so it stays put.)
    if (options.select_pushdown && input->kind() == PlanKind::kRestrict &&
        input->semantics() != PathSemantics::kShortest) {
      Note("select-pushdown");
      return PlanNode::Restrict(
          input->semantics(), PlanNode::Select(cond, input->child()));
    }
    // select-pushdown through ⋈ (Figure 6): move each conjunct to the side
    // that determines its accesses.
    if (options.select_pushdown && input->kind() == PlanKind::kJoin) {
      const PlanPtr& left = input->child(0);
      const PlanPtr& right = input->child(1);
      LengthBounds lb = left->Bounds();
      // Left has a statically fixed length k: positions 1..k+1 (nodes) and
      // 1..k (edges) of the joined path live entirely in the left operand.
      std::optional<size_t> fixed_k;
      if (lb.max.has_value() && *lb.max == lb.min) fixed_k = lb.min;

      std::vector<ConditionPtr> all, to_left, to_right, keep;
      Conjuncts(cond, &all);
      for (const ConditionPtr& c : all) {
        if (RefersOnlyToFirstNode(*c)) {
          // First(p1 ◦ p2) = First(p1): always safe to evaluate on p1.
          to_left.push_back(c);
        } else if (RefersOnlyToLastNode(*c)) {
          to_right.push_back(c);
        } else if (fixed_k.has_value() &&
                   MaxNodePosition(*c, kDynamic) <= *fixed_k + 1 &&
                   MaxEdgePosition(*c, kDynamic) <= *fixed_k &&
                   !UsesLen(*c)) {
          to_left.push_back(c);
        } else {
          keep.push_back(c);
        }
      }
      if (!to_left.empty() || !to_right.empty()) {
        Note("select-pushdown");
        PlanPtr join = PlanNode::Join(MaybeSelect(to_left, left),
                                      MaybeSelect(to_right, right));
        return MaybeSelect(keep, join);
      }
    }
    return std::nullopt;
  }

  // --- τ rules -------------------------------------------------------------

  std::optional<PlanPtr> TryOrderBy(const PlanPtr& node) {
    if (!options.orderby_simplify) return std::nullopt;
    const PlanPtr& input = node->child();
    OrderKey key = node->order_key();

    // Merge consecutive order-bys: the Δ′ formulas of Table 6 are
    // level-independent and idempotent, so τθ1(τθ2(x)) = τ(θ1 ∪ θ2)(x).
    if (input->kind() == PlanKind::kOrderBy) {
      bool p = OrderKeyOrdersPartitions(key) ||
               OrderKeyOrdersPartitions(input->order_key());
      bool grp = OrderKeyOrdersGroups(key) ||
                 OrderKeyOrdersGroups(input->order_key());
      bool a = OrderKeyOrdersPaths(key) ||
               OrderKeyOrdersPaths(input->order_key());
      Note("orderby-simplify");
      return PlanNode::OrderBy(*MakeOrderKeyFromComponents(p, grp, a),
                               input->child());
    }

    // Drop components that cannot matter for the child γψ's organization
    // (§6's example: τPG after γ∅). ψ∈{∅,L} → a single partition; ψ∈{∅,S,
    // T,ST} → one group per partition.
    if (input->kind() == PlanKind::kGroupBy) {
      GroupKey psi = input->group_key();
      bool single_partition =
          psi == GroupKey::kNone || psi == GroupKey::kL;
      bool single_group_per_partition = !GroupKeyUsesLength(psi);
      bool p = OrderKeyOrdersPartitions(key) && !single_partition;
      bool grp = OrderKeyOrdersGroups(key) && !single_group_per_partition;
      bool a = OrderKeyOrdersPaths(key);
      std::optional<OrderKey> reduced = MakeOrderKeyFromComponents(p, grp, a);
      if (!reduced.has_value()) {
        Note("orderby-simplify");
        return input;  // τ is a complete no-op
      }
      if (*reduced != key) {
        Note("orderby-simplify");
        return PlanNode::OrderBy(*reduced, input);
      }
    }
    return std::nullopt;
  }

  // --- ρ and ϕ rules -------------------------------------------------------

  /// True if every path a ϕ/ρ with `producer` semantics emits already
  /// satisfies the `filter` restrictor (the semantics containment lattice:
  /// acyclic ⊆ simple ⊆ trail ⊆ walk; shortest answers are per-pair
  /// minimal by construction).
  static bool ProducerImpliesFilter(PathSemantics producer,
                                    PathSemantics filter) {
    if (filter == PathSemantics::kWalk) return true;
    if (filter == producer) return true;
    switch (filter) {
      case PathSemantics::kTrail:
        return producer == PathSemantics::kAcyclic ||
               producer == PathSemantics::kSimple;
      case PathSemantics::kSimple:
        return producer == PathSemantics::kAcyclic;
      default:
        return false;
    }
  }

  std::optional<PlanPtr> TryRestrict(const PlanPtr& node) {
    const PlanPtr& input = node->child();
    // restrict-elim: ρ over a ϕ or ρ whose output already satisfies it.
    if ((input->kind() == PlanKind::kRecursive ||
         input->kind() == PlanKind::kRestrict) &&
        ProducerImpliesFilter(input->semantics(), node->semantics())) {
      Note("restrict-elim");
      return input;
    }
    // ρWalk is the identity on any input.
    if (node->semantics() == PathSemantics::kWalk) {
      Note("restrict-elim");
      return input;
    }
    // Length-≤1 paths are always trails and always simple, so those two
    // filters are no-ops over atoms (and σ chains above them). NOT true
    // for acyclic — a self-loop edge (n,e,n) repeats its node — nor for
    // shortest, which is a set-level filter (a zero-length path displaces
    // same-pair self-loops).
    LengthBounds b = input->Bounds();
    if ((node->semantics() == PathSemantics::kTrail ||
         node->semantics() == PathSemantics::kSimple) &&
        b.max.has_value() && *b.max <= 1) {
      Note("restrict-elim");
      return input;
    }
    return std::nullopt;
  }

  std::optional<PlanPtr> TryRecursive(const PlanPtr& node) {
    const PlanPtr& input = node->child();
    // recursive-idempotent: ϕs(ϕs(x)) = ϕs(x). Compositions of
    // s-compositions are s-compositions whose boundary prefixes already
    // satisfy s (prefix-closure holds for each semantics as argued in
    // DESIGN.md), so the outer ϕ adds nothing.
    if (input->kind() == PlanKind::kRecursive &&
        input->semantics() == node->semantics()) {
      Note("recursive-idempotent");
      return input;
    }
    return std::nullopt;
  }

  std::optional<PlanPtr> TryJoin(const PlanPtr& node) {
    // join-identity: x ⋈ Nodes(G) = x = Nodes(G) ⋈ x — every path's
    // endpoint has its zero-length continuation in Nodes(G).
    if (options.join_identity) {
      if (node->child(1)->kind() == PlanKind::kNodesScan) {
        Note("join-identity");
        return node->child(0);
      }
      if (node->child(0)->kind() == PlanKind::kNodesScan) {
        Note("join-identity");
        return node->child(1);
      }
    }
    // join-reassociation (cost-based): ⋈ is associative; pick the grouping
    // with the cheaper estimate. (a⋈b)⋈c ↔ a⋈(b⋈c).
    if (options.join_reassociation && options.stats != nullptr) {
      const GraphStats& stats = *options.stats;
      if (node->child(0)->kind() == PlanKind::kJoin) {
        PlanPtr alt = PlanNode::Join(
            node->child(0)->child(0),
            PlanNode::Join(node->child(0)->child(1), node->child(1)));
        if (EstimateCost(alt, stats).cost <
            EstimateCost(node, stats).cost) {
          Note("join-reassociation");
          return alt;
        }
      }
      if (node->child(1)->kind() == PlanKind::kJoin) {
        PlanPtr alt = PlanNode::Join(
            PlanNode::Join(node->child(0), node->child(1)->child(0)),
            node->child(1)->child(1));
        if (EstimateCost(alt, stats).cost <
            EstimateCost(node, stats).cost) {
          Note("join-reassociation");
          return alt;
        }
      }
    }
    return std::nullopt;
  }

  static std::optional<OrderKey> MakeOrderKeyFromComponents(bool p, bool g,
                                                            bool a) {
    if (p && g && a) return OrderKey::kPGA;
    if (p && g) return OrderKey::kPG;
    if (p && a) return OrderKey::kPA;
    if (g && a) return OrderKey::kGA;
    if (p) return OrderKey::kP;
    if (g) return OrderKey::kG;
    if (a) return OrderKey::kA;
    return std::nullopt;
  }

  // --- π rules -------------------------------------------------------------

  std::optional<PlanPtr> TryProject(const PlanPtr& node) {
    const ProjectionSpec& spec = node->projection();

    // project-all: π(*,*,*) over any γ/τ chain returns every path.
    if (options.project_all && !spec.partitions.has_value() &&
        !spec.groups.has_value() && !spec.paths.has_value()) {
      PlanPtr base = node->child();
      while (base->ProducesSpace()) base = base->child();
      Note("project-all");
      return base;
    }

    // any-shortest: π(*,*,1)(τA(γST(ϕWalk(x)))) — only a per-pair shortest
    // path survives, so ϕWalk can become ϕShortest. Exact because ties
    // resolve canonically and partition numbering is canonical. The γ may
    // sit over endpoint-only σ chains (the regex compiler emits endpoint
    // filters there); those commute with ST-partitions.
    if (options.any_shortest && spec.paths == 1) {
      const PlanPtr& tau = node->child();
      if (tau->kind() == PlanKind::kOrderBy &&
          tau->order_key() == OrderKey::kA) {
        const PlanPtr& gamma = tau->child();
        if (gamma->kind() == PlanKind::kGroupBy &&
            gamma->group_key() == GroupKey::kST) {
          PlanPtr swapped = SwapWalkSemanticsThroughEndpointSelects(
              gamma->child(), PathSemantics::kShortest);
          if (swapped != nullptr) {
            Note("any-shortest");
            return PlanNode::Project(
                spec, PlanNode::OrderBy(
                          OrderKey::kA,
                          PlanNode::GroupBy(GroupKey::kST,
                                            std::move(swapped))));
          }
        }
      }
    }

    // all-shortest: π(*,1,*)(τG(γSTL(ϕWalk(x)))) → same with ϕShortest.
    // The first length-group of each (s,t) partition is exactly the
    // per-pair shortest set.
    if (options.any_shortest && spec.groups == 1 &&
        !spec.paths.has_value()) {
      const PlanPtr& tau = node->child();
      if (tau->kind() == PlanKind::kOrderBy &&
          tau->order_key() == OrderKey::kG) {
        const PlanPtr& gamma = tau->child();
        if (gamma->kind() == PlanKind::kGroupBy &&
            gamma->group_key() == GroupKey::kSTL) {
          PlanPtr swapped = SwapWalkSemanticsThroughEndpointSelects(
              gamma->child(), PathSemantics::kShortest);
          if (swapped != nullptr) {
            Note("any-shortest");
            return PlanNode::Project(
                spec, PlanNode::OrderBy(
                          OrderKey::kG,
                          PlanNode::GroupBy(GroupKey::kSTL,
                                            std::move(swapped))));
          }
        }
      }
    }

    // walk-to-shortest (§7.3): π(#p,#g,*)(τG(γL(ϕWalk(x)))) → ϕShortest.
    // Exact when #g == 1 (the first length-group is the set of globally
    // shortest paths either way — endpoint-only σ keeps/drops whole pairs,
    // so the argument survives the σ chain); a semantics-changing rescue
    // otherwise, gated behind enable_walk_rescue.
    if (!spec.paths.has_value()) {
      const PlanPtr& tau = node->child();
      if (tau->kind() == PlanKind::kOrderBy &&
          tau->order_key() == OrderKey::kG) {
        const PlanPtr& gamma = tau->child();
        if (gamma->kind() == PlanKind::kGroupBy &&
            gamma->group_key() == GroupKey::kL) {
          PlanPtr swapped = SwapWalkSemanticsThroughEndpointSelects(
              gamma->child(), PathSemantics::kShortest);
          if (swapped != nullptr) {
            bool exact = spec.groups == 1 && options.any_shortest;
            if (exact || options.enable_walk_rescue) {
              Note(exact ? "global-shortest" : "walk-rescue");
              return PlanNode::Project(
                  spec, PlanNode::OrderBy(
                            OrderKey::kG,
                            PlanNode::GroupBy(GroupKey::kL,
                                              std::move(swapped))));
            }
          }
        }
      }
    }
    return std::nullopt;
  }

  // --- driver --------------------------------------------------------------

  PlanPtr Rewrite(const PlanPtr& node) {
    // Bottom-up: rewrite children, rebuild if any changed.
    std::vector<PlanPtr> kids;
    bool changed = false;
    for (const PlanPtr& c : node->children()) {
      PlanPtr r = Rewrite(c);
      changed |= (r != c);
      kids.push_back(std::move(r));
    }
    PlanPtr cur = node;
    if (changed) cur = RebuildWithChildren(node, std::move(kids));

    // Apply local rules until none fires.
    bool fired = true;
    size_t guard = 0;
    while (fired && guard++ < 64) {
      fired = false;
      std::optional<PlanPtr> r;
      switch (cur->kind()) {
        case PlanKind::kSelect:
          r = TrySelect(cur);
          break;
        case PlanKind::kOrderBy:
          r = TryOrderBy(cur);
          break;
        case PlanKind::kProject:
          r = TryProject(cur);
          break;
        case PlanKind::kRestrict:
          if (options.restrict_elim) r = TryRestrict(cur);
          break;
        case PlanKind::kRecursive:
          if (options.recursive_idempotent) r = TryRecursive(cur);
          break;
        case PlanKind::kJoin:
          if (options.join_identity ||
              (options.join_reassociation && options.stats != nullptr)) {
            r = TryJoin(cur);
          }
          break;
        case PlanKind::kUnion:
          if (options.union_dedup &&
              cur->child(0)->Equals(*cur->child(1))) {
            Note("union-dedup");
            r = cur->child(0);
          }
          break;
        default:
          break;
      }
      if (r.has_value()) {
        // A local rewrite may expose opportunities below the new root
        // (e.g. pushdown creates nested selects): recurse on the result.
        cur = Rewrite(*r);
        fired = true;
      }
    }
    return cur;
  }

  static PlanPtr RebuildWithChildren(const PlanPtr& node,
                                     std::vector<PlanPtr> kids) {
    switch (node->kind()) {
      case PlanKind::kNodesScan:
      case PlanKind::kEdgesScan:
        return node;
      case PlanKind::kSelect:
        return PlanNode::Select(node->condition(), std::move(kids[0]));
      case PlanKind::kJoin:
        return PlanNode::Join(std::move(kids[0]), std::move(kids[1]));
      case PlanKind::kUnion:
        return PlanNode::Union(std::move(kids[0]), std::move(kids[1]));
      case PlanKind::kIntersect:
        return PlanNode::Intersect(std::move(kids[0]), std::move(kids[1]));
      case PlanKind::kDifference:
        return PlanNode::Difference(std::move(kids[0]), std::move(kids[1]));
      case PlanKind::kRecursive:
        return PlanNode::Recursive(node->semantics(), std::move(kids[0]));
      case PlanKind::kRestrict:
        return PlanNode::Restrict(node->semantics(), std::move(kids[0]));
      case PlanKind::kGroupBy:
        return PlanNode::GroupBy(node->group_key(), std::move(kids[0]));
      case PlanKind::kOrderBy:
        return PlanNode::OrderBy(node->order_key(), std::move(kids[0]));
      case PlanKind::kProject:
        return PlanNode::Project(node->projection(), std::move(kids[0]));
    }
    return node;
  }
};

}  // namespace

OptimizeResult Optimize(const PlanPtr& plan, const OptimizerOptions& options) {
  OptimizeResult result;
  result.plan = plan;
  if (plan == nullptr) return result;
  Rewriter rewriter{options, &result.applied};
  for (size_t pass = 0; pass < options.max_passes; ++pass) {
    PlanPtr next = rewriter.Rewrite(result.plan);
    if (next->Equals(*result.plan)) break;
    result.plan = next;
  }
  return result;
}

}  // namespace pathalg
