#include "plan/cost.h"

#include <algorithm>
#include <string>

namespace pathalg {

GraphStats GraphStats::Collect(const PropertyGraph& g) {
  GraphStats s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    std::string_view label = g.EdgeLabel(e);
    if (!label.empty()) s.edge_label_counts[std::string(label)]++;
  }
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    std::string_view label = g.NodeLabel(n);
    if (!label.empty()) s.node_label_counts[std::string(label)]++;
  }
  return s;
}

namespace {

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

double SimpleSelectivity(const Condition& c, const GraphStats& stats) {
  double nodes = std::max<double>(1, stats.num_nodes);
  double edges = std::max<double>(1, stats.num_edges);
  switch (c.access()) {
    case AccessKind::kEdgeLabel: {
      if (c.op() == CompareOp::kEq && c.constant().is_string()) {
        auto it = stats.edge_label_counts.find(c.constant().AsString());
        double count = it == stats.edge_label_counts.end()
                           ? 0.0
                           : static_cast<double>(it->second);
        return Clamp01(count / edges);
      }
      return 0.5;
    }
    case AccessKind::kNodeLabel:
    case AccessKind::kFirstLabel:
    case AccessKind::kLastLabel: {
      if (c.op() == CompareOp::kEq && c.constant().is_string()) {
        auto it = stats.node_label_counts.find(c.constant().AsString());
        double count = it == stats.node_label_counts.end()
                           ? 0.0
                           : static_cast<double>(it->second);
        return Clamp01(count / nodes);
      }
      return 0.5;
    }
    case AccessKind::kFirstProp:
    case AccessKind::kLastProp:
    case AccessKind::kNodeProp:
      // Point lookup on a node property: assume it identifies ~one node.
      return c.op() == CompareOp::kEq ? Clamp01(1.0 / nodes) : 0.3;
    case AccessKind::kEdgeProp:
      return c.op() == CompareOp::kEq ? Clamp01(1.0 / edges) : 0.3;
    case AccessKind::kLen:
      // Equality on one length out of many; inequalities keep more.
      return c.op() == CompareOp::kEq ? 0.2 : 0.5;
  }
  return 0.5;
}

}  // namespace

double EstimateSelectivity(const Condition& c, const GraphStats& stats) {
  switch (c.kind()) {
    case Condition::Kind::kSimple:
      return SimpleSelectivity(c, stats);
    case Condition::Kind::kAnd:
      return Clamp01(EstimateSelectivity(*c.left(), stats) *
                     EstimateSelectivity(*c.right(), stats));
    case Condition::Kind::kOr: {
      double l = EstimateSelectivity(*c.left(), stats);
      double r = EstimateSelectivity(*c.right(), stats);
      return Clamp01(l + r - l * r);
    }
    case Condition::Kind::kNot:
      return Clamp01(1.0 - EstimateSelectivity(*c.left(), stats));
  }
  return 0.5;
}

CostEstimate EstimateCost(const PlanPtr& plan, const GraphStats& stats) {
  if (plan == nullptr) return {0, 0};
  double nodes = std::max<double>(1, stats.num_nodes);
  // Recursion blowup cap: how many times the base a ϕ may amplify. The
  // honest answer is "unbounded"; for ranking purposes a fixed factor
  // penalizes ϕ-heavy plans without drowning every other signal.
  constexpr double kPhiBlowup = 16.0;

  switch (plan->kind()) {
    case PlanKind::kNodesScan:
      return {nodes, nodes};
    case PlanKind::kEdgesScan: {
      double edges = std::max<double>(1, stats.num_edges);
      return {edges, edges};
    }
    case PlanKind::kSelect: {
      CostEstimate c = EstimateCost(plan->child(), stats);
      double out =
          c.cardinality * EstimateSelectivity(*plan->condition(), stats);
      return {out, c.cost + c.cardinality};
    }
    case PlanKind::kJoin: {
      CostEstimate l = EstimateCost(plan->child(0), stats);
      CostEstimate r = EstimateCost(plan->child(1), stats);
      // Uniform-endpoint assumption: a pair joins with probability 1/N.
      double out = l.cardinality * r.cardinality / nodes;
      return {out, l.cost + r.cost + l.cardinality + r.cardinality + out};
    }
    case PlanKind::kUnion: {
      CostEstimate l = EstimateCost(plan->child(0), stats);
      CostEstimate r = EstimateCost(plan->child(1), stats);
      return {l.cardinality + r.cardinality,
              l.cost + r.cost + l.cardinality + r.cardinality};
    }
    case PlanKind::kIntersect: {
      CostEstimate l = EstimateCost(plan->child(0), stats);
      CostEstimate r = EstimateCost(plan->child(1), stats);
      return {0.5 * std::min(l.cardinality, r.cardinality),
              l.cost + r.cost + l.cardinality + r.cardinality};
    }
    case PlanKind::kDifference: {
      CostEstimate l = EstimateCost(plan->child(0), stats);
      CostEstimate r = EstimateCost(plan->child(1), stats);
      return {0.5 * l.cardinality,
              l.cost + r.cost + l.cardinality + r.cardinality};
    }
    case PlanKind::kRecursive: {
      CostEstimate c = EstimateCost(plan->child(), stats);
      double blowup =
          plan->semantics() == PathSemantics::kShortest ? 4.0 : kPhiBlowup;
      double out = c.cardinality * blowup;
      return {out, c.cost + out};
    }
    case PlanKind::kRestrict: {
      CostEstimate c = EstimateCost(plan->child(), stats);
      double keep =
          plan->semantics() == PathSemantics::kWalk ? 1.0 : 0.6;
      return {c.cardinality * keep, c.cost + c.cardinality};
    }
    case PlanKind::kGroupBy:
    case PlanKind::kOrderBy: {
      CostEstimate c = EstimateCost(plan->child(), stats);
      return {c.cardinality, c.cost + c.cardinality};
    }
    case PlanKind::kProject: {
      CostEstimate c = EstimateCost(plan->child(), stats);
      const ProjectionSpec& spec = plan->projection();
      double keep = 1.0;
      if (spec.partitions.has_value()) keep *= 0.5;
      if (spec.groups.has_value()) keep *= 0.5;
      if (spec.paths.has_value()) keep *= 0.3;
      return {c.cardinality * keep, c.cost + c.cardinality};
    }
  }
  return {1, 1};
}

}  // namespace pathalg
