#include "plan/plan.h"

#include <algorithm>

namespace pathalg {

const char* PlanKindToString(PlanKind k) {
  switch (k) {
    case PlanKind::kNodesScan:
      return "Nodes(G)";
    case PlanKind::kEdgesScan:
      return "Edges(G)";
    case PlanKind::kSelect:
      return "Select";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kUnion:
      return "Union";
    case PlanKind::kIntersect:
      return "Intersect";
    case PlanKind::kDifference:
      return "Difference";
    case PlanKind::kRecursive:
      return "Recursive";
    case PlanKind::kRestrict:
      return "Restrict";
    case PlanKind::kGroupBy:
      return "GroupBy";
    case PlanKind::kOrderBy:
      return "OrderBy";
    case PlanKind::kProject:
      return "Project";
  }
  return "?";
}

// The factory plumbing uses a tiny builder struct to keep PlanNode
// immutable from the outside while writing its fields exactly once here.
struct PlanBuilderAccess {
  static std::shared_ptr<PlanNode> Make(PlanKind kind,
                                        std::vector<PlanPtr> children) {
    auto node = std::shared_ptr<PlanNode>(new PlanNode());
    node->kind_ = kind;
    node->children_ = std::move(children);
    return node;
  }
  static void SetCondition(PlanNode& n, ConditionPtr c) {
    n.condition_ = std::move(c);
  }
  static void SetSemantics(PlanNode& n, PathSemantics s) {
    n.semantics_ = s;
  }
  static void SetGroupKey(PlanNode& n, GroupKey k) { n.group_key_ = k; }
  static void SetOrderKey(PlanNode& n, OrderKey k) { n.order_key_ = k; }
  static void SetProjection(PlanNode& n, ProjectionSpec p) {
    n.projection_ = std::move(p);
  }
};

PlanPtr PlanNode::NodesScan() {
  return PlanBuilderAccess::Make(PlanKind::kNodesScan, {});
}

PlanPtr PlanNode::EdgesScan() {
  return PlanBuilderAccess::Make(PlanKind::kEdgesScan, {});
}

PlanPtr PlanNode::Select(ConditionPtr condition, PlanPtr input) {
  auto n = PlanBuilderAccess::Make(PlanKind::kSelect, {std::move(input)});
  PlanBuilderAccess::SetCondition(*n, std::move(condition));
  return n;
}

PlanPtr PlanNode::Join(PlanPtr left, PlanPtr right) {
  return PlanBuilderAccess::Make(PlanKind::kJoin,
                                 {std::move(left), std::move(right)});
}

PlanPtr PlanNode::Union(PlanPtr left, PlanPtr right) {
  return PlanBuilderAccess::Make(PlanKind::kUnion,
                                 {std::move(left), std::move(right)});
}

PlanPtr PlanNode::Intersect(PlanPtr left, PlanPtr right) {
  return PlanBuilderAccess::Make(PlanKind::kIntersect,
                                 {std::move(left), std::move(right)});
}

PlanPtr PlanNode::Difference(PlanPtr left, PlanPtr right) {
  return PlanBuilderAccess::Make(PlanKind::kDifference,
                                 {std::move(left), std::move(right)});
}

PlanPtr PlanNode::Recursive(PathSemantics semantics, PlanPtr input) {
  auto n = PlanBuilderAccess::Make(PlanKind::kRecursive, {std::move(input)});
  PlanBuilderAccess::SetSemantics(*n, semantics);
  return n;
}

PlanPtr PlanNode::Restrict(PathSemantics semantics, PlanPtr input) {
  auto n = PlanBuilderAccess::Make(PlanKind::kRestrict, {std::move(input)});
  PlanBuilderAccess::SetSemantics(*n, semantics);
  return n;
}

PlanPtr PlanNode::GroupBy(GroupKey key, PlanPtr input) {
  auto n = PlanBuilderAccess::Make(PlanKind::kGroupBy, {std::move(input)});
  PlanBuilderAccess::SetGroupKey(*n, key);
  return n;
}

PlanPtr PlanNode::OrderBy(OrderKey key, PlanPtr input) {
  auto n = PlanBuilderAccess::Make(PlanKind::kOrderBy, {std::move(input)});
  PlanBuilderAccess::SetOrderKey(*n, key);
  return n;
}

PlanPtr PlanNode::Project(ProjectionSpec spec, PlanPtr input) {
  auto n = PlanBuilderAccess::Make(PlanKind::kProject, {std::move(input)});
  PlanBuilderAccess::SetProjection(*n, std::move(spec));
  return n;
}

Status PlanNode::Validate() const {
  size_t want_arity;
  switch (kind_) {
    case PlanKind::kNodesScan:
    case PlanKind::kEdgesScan:
      want_arity = 0;
      break;
    case PlanKind::kSelect:
    case PlanKind::kRecursive:
    case PlanKind::kRestrict:
    case PlanKind::kGroupBy:
    case PlanKind::kOrderBy:
    case PlanKind::kProject:
      want_arity = 1;
      break;
    default:
      want_arity = 2;
  }
  if (children_.size() != want_arity) {
    return Status::InvalidArgument(std::string(PlanKindToString(kind_)) +
                                   " expects " +
                                   std::to_string(want_arity) + " inputs");
  }
  for (const PlanPtr& c : children_) {
    if (c == nullptr) {
      return Status::InvalidArgument("null child plan");
    }
    PATHALG_RETURN_NOT_OK(c->Validate());
  }
  if (kind_ == PlanKind::kSelect && condition_ == nullptr) {
    return Status::InvalidArgument("Select requires a condition");
  }
  // Typing: γ and π consume paths/space respectively; τ consumes a space.
  switch (kind_) {
    case PlanKind::kOrderBy:
      if (!children_[0]->ProducesSpace()) {
        return Status::InvalidArgument(
            "OrderBy input must be a solution space (GroupBy/OrderBy)");
      }
      break;
    case PlanKind::kProject:
      if (!children_[0]->ProducesSpace()) {
        return Status::InvalidArgument(
            "Project input must be a solution space (GroupBy/OrderBy)");
      }
      break;
    default:
      for (const PlanPtr& c : children_) {
        if (c->ProducesSpace()) {
          return Status::InvalidArgument(
              std::string(PlanKindToString(kind_)) +
              " input must be a set of paths, not a solution space");
        }
      }
  }
  return Status::OK();
}

LengthBounds PlanNode::Bounds() const {
  auto add = [](std::optional<size_t> a,
                std::optional<size_t> b) -> std::optional<size_t> {
    if (!a.has_value() || !b.has_value()) return std::nullopt;
    return *a + *b;
  };
  switch (kind_) {
    case PlanKind::kNodesScan:
      return {0, 0};
    case PlanKind::kEdgesScan:
      return {1, 1};
    case PlanKind::kSelect:
    case PlanKind::kGroupBy:
    case PlanKind::kOrderBy:
    case PlanKind::kProject:
    case PlanKind::kDifference:
      return children_[0]->Bounds();
    case PlanKind::kJoin: {
      LengthBounds l = children_[0]->Bounds();
      LengthBounds r = children_[1]->Bounds();
      return {l.min + r.min, add(l.max, r.max)};
    }
    case PlanKind::kUnion: {
      LengthBounds l = children_[0]->Bounds();
      LengthBounds r = children_[1]->Bounds();
      std::optional<size_t> max;
      if (l.max.has_value() && r.max.has_value()) {
        max = std::max(*l.max, *r.max);
      }
      return {std::min(l.min, r.min), max};
    }
    case PlanKind::kIntersect: {
      LengthBounds l = children_[0]->Bounds();
      LengthBounds r = children_[1]->Bounds();
      std::optional<size_t> max = l.max;
      if (r.max.has_value() && (!max.has_value() || *r.max < *max)) {
        max = r.max;
      }
      return {std::max(l.min, r.min), max};
    }
    case PlanKind::kRestrict:
      return children_[0]->Bounds();
    case PlanKind::kRecursive: {
      LengthBounds c = children_[0]->Bounds();
      // ϕ includes the base (min unchanged); compositions are unbounded
      // unless the base can only produce zero-length paths.
      if (c.max.has_value() && *c.max == 0) return {c.min, c.max};
      return {c.min, std::nullopt};
    }
  }
  return {0, std::nullopt};
}

bool PlanNode::Equals(const PlanNode& other) const {
  if (kind_ != other.kind_) return false;
  if (children_.size() != other.children_.size()) return false;
  switch (kind_) {
    case PlanKind::kSelect:
      if (!condition_->Equals(*other.condition_)) return false;
      break;
    case PlanKind::kRecursive:
    case PlanKind::kRestrict:
      if (semantics_ != other.semantics_) return false;
      break;
    case PlanKind::kGroupBy:
      if (group_key_ != other.group_key_) return false;
      break;
    case PlanKind::kOrderBy:
      if (order_key_ != other.order_key_) return false;
      break;
    case PlanKind::kProject:
      if (projection_.partitions != other.projection_.partitions ||
          projection_.groups != other.projection_.groups ||
          projection_.paths != other.projection_.paths) {
        return false;
      }
      break;
    default:
      break;
  }
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

std::string PlanNode::ToAlgebraString() const {
  switch (kind_) {
    case PlanKind::kNodesScan:
      return "Nodes(G)";
    case PlanKind::kEdgesScan:
      return "Edges(G)";
    case PlanKind::kSelect:
      return "σ[" + condition_->ToString() + "](" +
             children_[0]->ToAlgebraString() + ")";
    case PlanKind::kJoin:
      return "(" + children_[0]->ToAlgebraString() + " ⋈ " +
             children_[1]->ToAlgebraString() + ")";
    case PlanKind::kUnion:
      return "(" + children_[0]->ToAlgebraString() + " ∪ " +
             children_[1]->ToAlgebraString() + ")";
    case PlanKind::kIntersect:
      return "(" + children_[0]->ToAlgebraString() + " ∩ " +
             children_[1]->ToAlgebraString() + ")";
    case PlanKind::kDifference:
      return "(" + children_[0]->ToAlgebraString() + " − " +
             children_[1]->ToAlgebraString() + ")";
    case PlanKind::kRecursive:
      return std::string("ϕ[") + PathSemanticsToString(semantics_) + "](" +
             children_[0]->ToAlgebraString() + ")";
    case PlanKind::kRestrict:
      return std::string("ρ[") + PathSemanticsToString(semantics_) + "](" +
             children_[0]->ToAlgebraString() + ")";
    case PlanKind::kGroupBy:
      return std::string("γ[") + GroupKeyToString(group_key_) + "](" +
             children_[0]->ToAlgebraString() + ")";
    case PlanKind::kOrderBy:
      return std::string("τ[") + OrderKeyToString(order_key_) + "](" +
             children_[0]->ToAlgebraString() + ")";
    case PlanKind::kProject:
      return "π" + projection_.ToString() + "(" +
             children_[0]->ToAlgebraString() + ")";
  }
  return "?";
}

namespace {
void AppendTree(const PlanNode& node, size_t depth, std::string& out) {
  out.append(depth * 2, ' ');
  switch (node.kind()) {
    case PlanKind::kNodesScan:
      out += "Nodes(G)";
      break;
    case PlanKind::kEdgesScan:
      out += "Edges(G)";
      break;
    case PlanKind::kSelect:
      out += "Select (" + node.condition()->ToString() + ")";
      break;
    case PlanKind::kRecursive:
      out += std::string("Recursive (") +
             PathSemanticsToString(node.semantics()) + ")";
      break;
    case PlanKind::kRestrict:
      out += std::string("Restrict (") +
             PathSemanticsToString(node.semantics()) + ")";
      break;
    case PlanKind::kGroupBy: {
      std::string key = GroupKeyToString(node.group_key());
      out += "GroupBy (" + (key.empty() ? std::string("-") : key) + ")";
      break;
    }
    case PlanKind::kOrderBy:
      out += std::string("OrderBy (") + OrderKeyToString(node.order_key()) +
             ")";
      break;
    case PlanKind::kProject:
      out += "Project " + node.projection().ToString();
      break;
    default:
      out += PlanKindToString(node.kind());
  }
  out += "\n";
  for (const PlanPtr& c : node.children()) {
    AppendTree(*c, depth + 1, out);
  }
}
}  // namespace

std::string PlanNode::ToTreeString() const {
  std::string out;
  AppendTree(*this, 0, out);
  return out;
}

}  // namespace pathalg
