#ifndef PATHALG_SERVER_GRAPH_CATALOG_H_
#define PATHALG_SERVER_GRAPH_CATALOG_H_

/// \file graph_catalog.h
/// Load-once shared graph store for the concurrent server: every session
/// that names the same graph spec gets the same immutable PropertyGraph
/// instance (shared_ptr), so a thousand connections on one social graph
/// cost one build, not a thousand. Specs are the `# graph` workload specs
/// (engine/workload_file.h: figure1, social ..., skewed ..., cycle,
/// chain, diamond, grid, random) plus `csv <path>` for graphs loaded from
/// a CSV file and `snapshot <path>` for binary snapshots (storage/),
/// which mmap in without a rebuild.
///
/// With GraphCatalogOptions::snapshot_dir set the catalog also *writes*
/// snapshots: the first build of a generator spec persists one, and later
/// cold Gets (in this or any future server process) mmap it instead of
/// regenerating — the fast-restart path. Cache files are LRU-evicted
/// beyond max_snapshot_files.
///
/// Thread-safe, and a build never holds the catalog map lock: each spec
/// gets a per-entry latch — the first Get installs it and builds outside
/// the lock, racers for the *same* spec wait on that latch, and Gets for
/// other (cached or cold) specs proceed immediately. A session loading a
/// huge CSV therefore cannot stall the accept loop or other sessions'
/// opens. Failed loads are not cached (the latch is removed), so a
/// mistyped CSV path can be retried after fixing the file.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "graph/property_graph.h"
#include "mutation/live_graph.h"

namespace pathalg {
namespace server {

/// Catalog-level facts about one loaded graph, shared alongside it.
struct GraphStats {
  size_t nodes = 0;
  size_t edges = 0;
  size_t labels = 0;
  /// One-time build/load cost (amortization accounting, `!stats`).
  uint64_t load_us = 0;
};

/// One catalog entry: the shared immutable graph plus its stats and the
/// canonical spec it was loaded under. With GraphCatalogOptions::
/// mutation_dir set, `live` additionally carries the mutable identity
/// behind the entry: sessions route `!mutate` through it and refresh
/// their engine from `live->Current()`, while `graph` stays the version
/// current at load time (pinning it keeps that version alive for the
/// entry's whole lifetime, so readers never see a dangling base).
struct CatalogEntry {
  std::string spec;
  std::shared_ptr<const PropertyGraph> graph;
  GraphStats stats;
  /// Null for read-only catalogs (no mutation_dir). LiveGraph is
  /// internally synchronized, so sharing one per spec across sessions is
  /// exactly the per-graph write serialization the protocol promises.
  std::shared_ptr<mutation::LiveGraph> live;
};

using CatalogEntryPtr = std::shared_ptr<const CatalogEntry>;

/// Monotonic counters; exposed through the server's `!stats`.
struct CatalogCounters {
  uint64_t loads = 0;   // cold Get calls that built a graph
  uint64_t hits = 0;    // Get calls answered from the catalog
  uint64_t errors = 0;  // Get calls whose spec failed to parse/build
  /// Snapshot-cache traffic (only moves when snapshot_dir is configured):
  /// a cold Get served by mmap'ing a cached snapshot file / a cold Get
  /// that had to build from the generator / cache files removed by LRU.
  uint64_t snapshot_hits = 0;
  uint64_t snapshot_misses = 0;
  uint64_t snapshot_evictions = 0;
  /// Cache files that failed to open with a non-NotFound error twice
  /// (once plus one bounded-backoff retry) and were renamed aside to
  /// `<file>.quarantined`; the graph was rebuilt from its generator spec
  /// instead of failing the session.
  uint64_t quarantined_snapshots = 0;
};

struct GraphCatalogOptions {
  /// When non-empty, first builds of generator specs persist a binary
  /// snapshot under this directory (created if missing, one level) and
  /// later cold Gets — including in future server processes — mmap it
  /// instead of rebuilding. `csv`/`snapshot` specs are never cached:
  /// they already name a file.
  std::string snapshot_dir;
  /// Cache files kept per catalog before least-recently-used ones are
  /// deleted (only files this catalog touched are ever evicted).
  size_t max_snapshot_files = 64;
  /// When non-empty, catalog graphs are *mutable*: every entry is opened
  /// as a mutation::LiveGraph with its journal at
  /// `<mutation_dir>/<slug>-<hash>.journal` and its compacted base at
  /// `<mutation_dir>/<slug>-<hash>.base.snap`. A cold Get prefers the
  /// on-disk base over rebuilding from the spec and replays the journal
  /// over it (crash recovery) — so a restarted server resumes at exactly
  /// the version the last acknowledged mutation left behind.
  std::string mutation_dir;
  /// Pending mutations that trigger folding the delta into the next base
  /// snapshot (mutation::LiveGraphOptions::compact_threshold); 0 keeps
  /// the journal growing until process exit.
  size_t mutation_compact_threshold = 64;
  /// Run threshold compactions detached on the shared ThreadPool instead
  /// of inline on the mutating session's thread.
  bool mutation_background_compaction = true;
};

/// Aggregated mutation counters across every live entry (the `!stats`
/// mutation line). Zero-valued when mutation_dir is unset.
struct CatalogMutationStats {
  size_t live_graphs = 0;
  mutation::LiveGraphCounters totals;
};

class GraphCatalog {
 public:
  GraphCatalog() = default;
  explicit GraphCatalog(GraphCatalogOptions options);
  GraphCatalog(const GraphCatalog&) = delete;
  GraphCatalog& operator=(const GraphCatalog&) = delete;

  /// Returns the graph for `spec`, loading it exactly once per canonical
  /// spec (whitespace-normalized; empty means figure1). Errors are not
  /// cached — a mistyped CSV path can be retried after fixing the file.
  Result<CatalogEntryPtr> Get(std::string_view spec);

  /// Number of loaded graphs (completed loads only).
  size_t size() const;
  CatalogCounters counters() const;
  /// Sums LiveGraphCounters over every mutable entry (order-independent
  /// reduction — unordered iteration never reaches a caller).
  CatalogMutationStats mutation_stats() const;

 private:
  /// Per-spec load latch: the loader builds with the catalog lock
  /// released; racers wait on `cv` until `done`.
  struct Slot {
    Mutex m;
    CondVar cv;
    bool done PA_GUARDED_BY(m) = false;
    /// Null when the load failed.
    CatalogEntryPtr entry PA_GUARDED_BY(m);
    Status error PA_GUARDED_BY(m) = Status::OK();
  };

  /// Loads `key` (a canonical spec), going through the snapshot cache
  /// when it is enabled and `key` is a generator spec.
  Result<PropertyGraph> LoadGraph(const std::string& key);

  /// Opens the mutable identity for `key` (mutation_dir mode): the base
  /// is the compacted on-disk snapshot when one exists (version id read
  /// from its header), else the spec-built graph, and journal recovery
  /// replays any acknowledged tail over it.
  Result<std::shared_ptr<mutation::LiveGraph>> OpenLive(
      const std::string& key);

  /// Marks `path` most-recently-used in the cache LRU, evicting (deleting)
  /// the oldest cache files beyond max_snapshot_files.
  void TouchCacheFile(const std::string& path);

  const GraphCatalogOptions options_;

  mutable Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Slot>> entries_
      PA_GUARDED_BY(mu_);
  CatalogCounters counters_ PA_GUARDED_BY(mu_);
  /// Snapshot cache files this catalog created or reused, oldest use
  /// first.
  std::vector<std::string> cache_lru_ PA_GUARDED_BY(mu_);
};

}  // namespace server
}  // namespace pathalg

#endif  // PATHALG_SERVER_GRAPH_CATALOG_H_
