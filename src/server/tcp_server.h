#ifndef PATHALG_SERVER_TCP_SERVER_H_
#define PATHALG_SERVER_TCP_SERVER_H_

/// \file tcp_server.h
/// The multi-client TCP front-end: a loopback listener whose accept loop
/// and per-connection handlers are detached tasks on the shared work
/// pool (common/thread_pool.h::Submit) — the same workers that fan out
/// σ/⋈/ϕ chunks serve connections, sized so blocked reads never starve
/// query evaluation. Each accepted connection gets one ServerSession
/// (admission-gated by the SessionManager; refusals answer one BUSY line
/// and close), then speaks the line protocol until EOF or !quit.
///
/// Lifecycle: Start binds/listens and returns (port() reports the bound
/// port — pass 0 to let the kernel pick, which is what the tests and the
/// in-process throughput bench do); Stop shuts the listener and every
/// open connection down and blocks until the handlers drained. The
/// destructor calls Stop.
///
/// POSIX-only (like pathalg_serve's TCP mode); Start returns
/// Unimplemented elsewhere.

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "server/session.h"

namespace pathalg {
namespace server {

struct TcpServerOptions {
  /// Port to bind on 127.0.0.1; 0 = kernel-assigned (see port()).
  uint16_t port = 0;
  int backlog = 16;
};

class TcpServer {
 public:
  /// `manager` must outlive the server.
  explicit TcpServer(SessionManager* manager);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  Status Start(const TcpServerOptions& options = {});

  /// The bound port (valid after a successful Start).
  uint16_t port() const;

  /// True while the listener is accepting.
  bool running() const;

  /// Stops accepting, shuts down open connections, and blocks until every
  /// handler finished. Idempotent.
  void Stop();

  /// Blocks until Stop() is called (from a signal handler thread or
  /// another session) — the forever-serving shape of `pathalg_serve
  /// --port`.
  void WaitUntilStopped();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace server
}  // namespace pathalg

#endif  // PATHALG_SERVER_TCP_SERVER_H_
