#ifndef PATHALG_SERVER_TCP_SERVER_H_
#define PATHALG_SERVER_TCP_SERVER_H_

/// \file tcp_server.h
/// The multi-client TCP front-end: a loopback listener whose accept loop
/// and per-connection handlers are detached tasks on the shared work
/// pool (common/thread_pool.h::Submit) — the same workers that fan out
/// σ/⋈/ϕ chunks serve connections, sized so blocked reads never starve
/// query evaluation. Each accepted connection gets one ServerSession
/// (admission-gated by the SessionManager; refusals answer one BUSY line
/// and close), then speaks the line protocol until EOF or !quit.
///
/// Lifecycle: Start binds/listens and returns (port() reports the bound
/// port — pass 0 to let the kernel pick, which is what the tests and the
/// in-process throughput bench do); Stop drains gracefully: it stops
/// accepting, half-closes every connection's read side so in-flight
/// queries finish and live `!record` captures flush, waits up to
/// TcpServerOptions::drain_deadline_ms, then trips the manager's
/// shutdown CancelToken (stragglers return the pinned cancellation ERR,
/// algebra/eval_budget.h) and fully shuts the sockets. The destructor
/// calls Stop; `pathalg_serve` wires SIGTERM/SIGINT to it.
///
/// Slow-client policy: response writes carry a bounded timeout
/// (SO_SNDTIMEO, shared with the refusal drain's SO_RCVTIMEO); a client
/// that stops reading gets its connection dropped cleanly and counted in
/// the manager's slow_client_drops.
///
/// POSIX-only (like pathalg_serve's TCP mode); Start returns
/// Unimplemented elsewhere.

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "server/session.h"

namespace pathalg {
namespace server {

struct TcpServerOptions {
  /// Port to bind on 127.0.0.1; 0 = kernel-assigned (see port()).
  uint16_t port = 0;
  int backlog = 16;
  /// Graceful-stop drain budget: how long Stop() lets in-flight queries
  /// run after closing the intake before cancelling them through the
  /// manager's shutdown token. 0 = cancel immediately.
  uint64_t drain_deadline_ms = 2000;
};

class TcpServer {
 public:
  /// `manager` must outlive the server.
  explicit TcpServer(SessionManager* manager);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  Status Start(const TcpServerOptions& options = {});

  /// The bound port (valid after a successful Start).
  uint16_t port() const;

  /// True while the listener is accepting.
  bool running() const;

  /// Graceful stop: closes the intake, drains in-flight handlers under
  /// the configured deadline (cancelling stragglers through the
  /// manager's shutdown token), and blocks until every handler finished.
  /// Idempotent. Async-signal-UNSAFE (locks, condition waits) — invoke
  /// from a normal thread, never from signal context (`pathalg_serve`
  /// dedicates a sigwait thread to SIGTERM/SIGINT for exactly this).
  void Stop();

  /// Blocks until Stop() is called (from a signal handler thread or
  /// another session) — the forever-serving shape of `pathalg_serve
  /// --port`.
  void WaitUntilStopped();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace server
}  // namespace pathalg

#endif  // PATHALG_SERVER_TCP_SERVER_H_
