#ifndef PATHALG_SERVER_LINE_CLIENT_H_
#define PATHALG_SERVER_LINE_CLIENT_H_

/// \file line_client.h
/// A minimal blocking line-protocol client over loopback TCP, for the
/// in-process consumers of the server: the multi-client throughput bench
/// and the server tests. One request line out, one buffered response line
/// back (`!stats`-style multi-line responses are read line by line; every
/// response block ends with an OK/ERR/BUSY/HELP-prefixed line). POSIX
/// only, like the server.

#include <cstdint>
#include <string>

#include "common/result.h"

namespace pathalg {
namespace server {

class LineClient {
 public:
  LineClient() = default;
  ~LineClient();
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;

  /// Connects to 127.0.0.1:port.
  Status Connect(uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Writes `line` (a trailing '\n' is appended when missing).
  Status SendLine(const std::string& line);

  /// Blocks for the next '\n'-terminated line (without the '\n').
  /// NotFound on clean EOF with no pending data.
  Result<std::string> ReadLine();

  /// SendLine + ReadLine: the single-response round trip of a query.
  Result<std::string> RoundTrip(const std::string& line);

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace server
}  // namespace pathalg

#endif  // PATHALG_SERVER_LINE_CLIENT_H_
