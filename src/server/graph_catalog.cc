#include "server/graph_catalog.h"

#ifdef _WIN32
#include <direct.h>
#else
#include <sys/stat.h>
#include <sys/types.h>
#endif

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "common/fault_injection.h"
#include "common/str_util.h"
#include "common/timing.h"
#include "engine/workload_file.h"
#include "storage/snapshot_format.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

namespace pathalg {
namespace server {

namespace {

/// One bounded pause between the first failed snapshot-cache open and
/// its single retry (transient I/O errors clear fast or not at all;
/// anything longer just stalls the session's first query).
constexpr std::chrono::milliseconds kSnapshotRetryBackoff{10};

/// True when `stripped` starts with the word `kind` ("csv" alone or
/// "csv <path>").
bool IsKind(std::string_view stripped, std::string_view kind) {
  if (!StartsWith(stripped, kind)) return false;
  return stripped.size() == kind.size() || stripped[kind.size()] == ' ' ||
         stripped[kind.size()] == '\t';
}

/// Specs that name a file on disk keep their payload byte-for-byte; they
/// are also the specs the snapshot cache must never shadow.
bool IsPathSpec(std::string_view stripped) {
  return IsKind(stripped, "csv") || IsKind(stripped, "snapshot");
}

/// Canonical catalog key: surrounding whitespace stripped, inner runs of
/// whitespace collapsed to one space. "social persons=40  seed=7" and
/// " social persons=40 seed=7 " must hit the same entry, and the empty
/// default spec maps to "figure1" so it shares that entry too. `csv` and
/// `snapshot` specs keep their payload byte-for-byte (after trimming) — a
/// file path may legitimately contain interior whitespace runs, and
/// collapsing them would silently point the key at a different file than
/// the `# graph` directive the same spec round-trips through.
std::string CanonicalSpec(std::string_view spec) {
  const std::string_view stripped = StripWhitespace(spec);
  if (IsPathSpec(stripped)) {
    const size_t kind_len = stripped.find_first_of(" \t");
    if (kind_len == std::string_view::npos) {
      return std::string(stripped);  // bare kind; rejected at build
    }
    const std::string_view kind = stripped.substr(0, kind_len);
    const std::string_view path = StripWhitespace(stripped.substr(kind_len));
    if (path.empty()) return std::string(kind);  // rejected at build
    return std::string(kind) + " " + std::string(path);
  }
  std::string out;
  bool pending_space = false;
  for (char c : stripped) {
    if (c == ' ' || c == '\t') {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) out += ' ';
    pending_space = false;
    out += c;
  }
  if (out.empty()) return "figure1";
  return out;
}

/// Filename stem for a canonical spec: a readable slug plus an FNV-1a
/// hash of the full spec, so distinct specs can never collide even when
/// the slug truncates. Pure function of the spec — stable across
/// processes, which is what makes snapshot caches and mutation journals
/// survive restarts.
std::string SpecFileStem(const std::string& key) {
  std::string slug;
  for (char c : key) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9')) {
      slug += c;
    } else {
      slug += '_';
    }
    if (slug.size() >= 48) break;
  }
  const uint64_t h = storage::Fnv1a64(key.data(), key.size());
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(h));
  return slug + "-" + hex;
}

std::string SnapshotCacheName(const std::string& key) {
  return SpecFileStem(key) + ".snap";
}

void MakeDirBestEffort(const std::string& dir) {
#ifdef _WIN32
  _mkdir(dir.c_str());
#else
  ::mkdir(dir.c_str(), 0755);
#endif
}

}  // namespace

GraphCatalog::GraphCatalog(GraphCatalogOptions options)
    : options_(std::move(options)) {
  // Best-effort create (one level): a missing cache directory should mean
  // a cold cache, not a silently disabled one. Failure (no permission,
  // parent missing) leaves the cache off exactly as before — every write
  // attempt below is already best-effort.
  if (!options_.snapshot_dir.empty()) MakeDirBestEffort(options_.snapshot_dir);
  if (!options_.mutation_dir.empty()) MakeDirBestEffort(options_.mutation_dir);
}

Result<CatalogEntryPtr> GraphCatalog::Get(std::string_view spec) {
  const std::string key = CanonicalSpec(spec);
  std::shared_ptr<Slot> slot;
  bool loader = false;
  {
    MutexLock lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      slot = it->second;
    } else {
      slot = std::make_shared<Slot>();
      entries_.emplace(key, slot);
      loader = true;
    }
  }

  if (!loader) {
    // Wait on the per-spec latch; the catalog lock is not held, so
    // other specs' Gets (and the accept loop) proceed concurrently.
    CatalogEntryPtr entry;
    Status error = Status::OK();
    {
      MutexLock lock(slot->m);
      while (!slot->done) slot->cv.Wait(slot->m);
      entry = slot->entry;
      error = slot->error;
    }
    // A "hit" is a Get answered with a graph; waiters on a load that
    // failed got an error, not a hit (the loader counted the error).
    if (entry == nullptr) return error;
    MutexLock lock(mu_);
    ++counters_.hits;
    return entry;
  }

  // Build with no catalog lock held. Generator specs and `csv <path>`
  // alike go through the workload-file machinery, so catalog specs and
  // recorded `# graph` directives can never drift apart — a workload
  // recorded on any catalog graph loads.
  const SteadyClock::time_point start = SteadyClock::now();
  auto entry = std::make_shared<CatalogEntry>();
  entry->spec = key;
  Status load_error = Status::OK();
  if (options_.mutation_dir.empty()) {
    Result<PropertyGraph> built = LoadGraph(key);
    if (built.ok()) {
      entry->graph =
          std::make_shared<const PropertyGraph>(std::move(built).value());
    } else {
      load_error = built.status();
    }
  } else {
    // Mutable catalog: the entry's graph is whatever version crash
    // recovery lands on (compacted base + replayed journal tail).
    Result<std::shared_ptr<mutation::LiveGraph>> live = OpenLive(key);
    if (live.ok()) {
      entry->live = std::move(live).value();
      entry->graph = entry->live->Current();
    } else {
      load_error = live.status();
    }
  }
  if (!load_error.ok()) {
    {
      // Errors are not cached: remove the latch so a later Get retries.
      MutexLock lock(mu_);
      entries_.erase(key);
      ++counters_.errors;
    }
    MutexLock lock(slot->m);
    slot->error = load_error;
    slot->done = true;
    slot->cv.NotifyAll();
    return load_error;
  }
  entry->stats.nodes = entry->graph->num_nodes();
  entry->stats.edges = entry->graph->num_edges();
  entry->stats.labels = entry->graph->num_labels();
  entry->stats.load_us = MicrosSince(start);
  CatalogEntryPtr shared = std::move(entry);
  {
    MutexLock lock(mu_);
    ++counters_.loads;
  }
  MutexLock lock(slot->m);
  slot->entry = shared;
  slot->done = true;
  slot->cv.NotifyAll();
  return shared;
}

Result<PropertyGraph> GraphCatalog::LoadGraph(const std::string& key) {
  // The catalog-load injection site: models the graph build (or the CSV
  // parse behind it) failing. No degradation path exists below a failed
  // build — the error propagates to the session as a clean ERR.
  if (FaultInjector::Global().ShouldFail(FaultSite::kCatalogLoad)) {
    return InjectedFault(FaultSite::kCatalogLoad);
  }
  const bool cacheable =
      !options_.snapshot_dir.empty() && !IsPathSpec(key);
  if (!cacheable) return engine::BuildWorkloadGraph(key);

  const std::string cache_path =
      options_.snapshot_dir + "/" + SnapshotCacheName(key);
  // A cached snapshot mmaps in without rebuilding — the fast-restart
  // path. NotFound is a normal cold-cache miss; any *other* failure
  // (torn write, corrupt image, injected I/O error) gets one retry after
  // a bounded backoff — transient errors under memory/disk pressure are
  // common — and, if it persists, the bad file is renamed aside to
  // `<file>.quarantined` so the rebuild below writes a fresh cache file
  // and no future session ever re-reads the bad bytes. The session sees
  // a slower load, never a failure.
  Result<PropertyGraph> cached = storage::SnapshotReader::Open(cache_path);
  if (!cached.ok() && !cached.status().IsNotFound()) {
    std::this_thread::sleep_for(kSnapshotRetryBackoff);
    cached = storage::SnapshotReader::Open(cache_path);
    if (!cached.ok() && !cached.status().IsNotFound()) {
      const std::string quarantine_path = cache_path + ".quarantined";
      std::rename(cache_path.c_str(), quarantine_path.c_str());
      MutexLock lock(mu_);
      ++counters_.quarantined_snapshots;
    }
  }
  if (cached.ok()) {
    {
      MutexLock lock(mu_);
      ++counters_.snapshot_hits;
    }
    TouchCacheFile(cache_path);
    return cached;
  }
  {
    MutexLock lock(mu_);
    ++counters_.snapshot_misses;
  }
  PATHALG_ASSIGN_OR_RETURN(PropertyGraph built,
                           engine::BuildWorkloadGraph(key));
  // Persisting is best-effort: an unwritable cache dir degrades to
  // build-every-start, it must not fail the Get.
  if (storage::SnapshotWriter::Write(built, cache_path).ok()) {
    TouchCacheFile(cache_path);
  }
  return built;
}

Result<std::shared_ptr<mutation::LiveGraph>> GraphCatalog::OpenLive(
    const std::string& key) {
  const std::string stem = options_.mutation_dir + "/" + SpecFileStem(key);
  mutation::LiveGraphOptions live_options;
  live_options.journal_path = stem + ".journal";
  live_options.base_snapshot_path = stem + ".base.snap";
  live_options.compact_threshold = options_.mutation_compact_threshold;
  live_options.background_compaction =
      options_.mutation_background_compaction;

  // A compacted base on disk supersedes the spec: it already folds in
  // every mutation acknowledged before the last compaction. NotFound
  // falls back to the deterministic spec build; any other failure is a
  // real error — silently rebuilding from the spec would roll the graph
  // back past acknowledged mutations.
  std::shared_ptr<const PropertyGraph> base;
  uint64_t version_hint = 0;
  Result<PropertyGraph> on_disk =
      storage::SnapshotReader::Open(live_options.base_snapshot_path);
  if (on_disk.ok()) {
    Result<storage::SnapshotReader::Info> info =
        storage::SnapshotReader::Probe(live_options.base_snapshot_path);
    if (info.ok()) version_hint = info->version_id;
    base = std::make_shared<const PropertyGraph>(std::move(on_disk).value());
  } else if (on_disk.status().IsNotFound()) {
    PATHALG_ASSIGN_OR_RETURN(PropertyGraph built, LoadGraph(key));
    base = std::make_shared<const PropertyGraph>(std::move(built));
  } else {
    return on_disk.status();
  }
  return mutation::LiveGraph::Open(std::move(base), std::move(live_options),
                                   version_hint);
}

CatalogMutationStats GraphCatalog::mutation_stats() const {
  std::vector<std::shared_ptr<mutation::LiveGraph>> live;
  {
    MutexLock lock(mu_);
    // determinism-lint: allow(unordered-iteration)
    for (const auto& kv : entries_) {
      // Collection only — unordered iteration feeds an order-independent
      // sum, never response ordering.
      Slot* slot = kv.second.get();
      MutexLock slot_lock(slot->m);
      if (slot->done && slot->entry != nullptr &&
          slot->entry->live != nullptr) {
        live.push_back(slot->entry->live);
      }
    }
  }
  CatalogMutationStats out;
  out.live_graphs = live.size();
  for (const auto& lg : live) {
    const mutation::LiveGraphCounters c = lg->counters();
    out.totals.mutations_applied += c.mutations_applied;
    out.totals.mutations_rejected += c.mutations_rejected;
    out.totals.pending += c.pending;
    out.totals.compactions += c.compactions;
    out.totals.materializations += c.materializations;
    out.totals.recovered_records += c.recovered_records;
    out.totals.stale_journals += c.stale_journals;
  }
  return out;
}

void GraphCatalog::TouchCacheFile(const std::string& path) {
  std::vector<std::string> evicted;
  {
    MutexLock lock(mu_);
    auto it = std::find(cache_lru_.begin(), cache_lru_.end(), path);
    if (it != cache_lru_.end()) cache_lru_.erase(it);
    cache_lru_.push_back(path);
    while (cache_lru_.size() > options_.max_snapshot_files) {
      evicted.push_back(cache_lru_.front());
      cache_lru_.erase(cache_lru_.begin());
      ++counters_.snapshot_evictions;
    }
  }
  // Unlink outside the lock; on POSIX an already-mmap'd evictee stays
  // readable through its mapping until the graph drops it.
  for (const std::string& p : evicted) std::remove(p.c_str());
}

size_t GraphCatalog::size() const {
  MutexLock lock(mu_);
  size_t n = 0;
  for (const auto& kv : entries_) {
    // Counting only — unordered iteration order never reaches a caller.
    Slot* slot = kv.second.get();
    MutexLock slot_lock(slot->m);
    if (slot->done && slot->entry != nullptr) ++n;
  }
  return n;
}

CatalogCounters GraphCatalog::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

}  // namespace server
}  // namespace pathalg
