#include "server/graph_catalog.h"

#include <utility>

#include "common/str_util.h"
#include "common/timing.h"
#include "engine/workload_file.h"

namespace pathalg {
namespace server {

namespace {

/// True when `stripped` is a `csv` spec ("csv" alone or "csv <path>").
bool IsCsvSpec(std::string_view stripped) {
  return stripped == "csv" || StartsWith(stripped, "csv ") ||
         StartsWith(stripped, "csv\t");
}

/// Canonical catalog key: surrounding whitespace stripped, inner runs of
/// whitespace collapsed to one space. "social persons=40  seed=7" and
/// " social persons=40 seed=7 " must hit the same entry, and the empty
/// default spec maps to "figure1" so it shares that entry too. `csv`
/// specs keep their payload byte-for-byte (after trimming) — a file path
/// may legitimately contain interior whitespace runs, and collapsing
/// them would silently point the key at a different file than the
/// `# graph` directive the same spec round-trips through.
std::string CanonicalSpec(std::string_view spec) {
  const std::string_view stripped = StripWhitespace(spec);
  if (IsCsvSpec(stripped)) {
    const std::string_view path = StripWhitespace(stripped.substr(3));
    if (path.empty()) return std::string(stripped);  // rejected at build
    return "csv " + std::string(path);
  }
  std::string out;
  bool pending_space = false;
  for (char c : stripped) {
    if (c == ' ' || c == '\t') {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) out += ' ';
    pending_space = false;
    out += c;
  }
  if (out.empty()) return "figure1";
  return out;
}

}  // namespace

Result<CatalogEntryPtr> GraphCatalog::Get(std::string_view spec) {
  const std::string key = CanonicalSpec(spec);
  std::shared_ptr<Slot> slot;
  bool loader = false;
  {
    MutexLock lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      slot = it->second;
    } else {
      slot = std::make_shared<Slot>();
      entries_.emplace(key, slot);
      loader = true;
    }
  }

  if (!loader) {
    // Wait on the per-spec latch; the catalog lock is not held, so
    // other specs' Gets (and the accept loop) proceed concurrently.
    CatalogEntryPtr entry;
    Status error = Status::OK();
    {
      MutexLock lock(slot->m);
      while (!slot->done) slot->cv.Wait(slot->m);
      entry = slot->entry;
      error = slot->error;
    }
    // A "hit" is a Get answered with a graph; waiters on a load that
    // failed got an error, not a hit (the loader counted the error).
    if (entry == nullptr) return error;
    MutexLock lock(mu_);
    ++counters_.hits;
    return entry;
  }

  // Build with no catalog lock held. Generator specs and `csv <path>`
  // alike go through the workload-file machinery, so catalog specs and
  // recorded `# graph` directives can never drift apart — a workload
  // recorded on any catalog graph loads.
  const SteadyClock::time_point start = SteadyClock::now();
  Result<PropertyGraph> built = engine::BuildWorkloadGraph(key);
  if (!built.ok()) {
    {
      // Errors are not cached: remove the latch so a later Get retries.
      MutexLock lock(mu_);
      entries_.erase(key);
      ++counters_.errors;
    }
    MutexLock lock(slot->m);
    slot->error = built.status();
    slot->done = true;
    slot->cv.NotifyAll();
    return built.status();
  }
  auto entry = std::make_shared<CatalogEntry>();
  entry->spec = key;
  entry->graph =
      std::make_shared<const PropertyGraph>(std::move(built).value());
  entry->stats.nodes = entry->graph->num_nodes();
  entry->stats.edges = entry->graph->num_edges();
  entry->stats.labels = entry->graph->num_labels();
  entry->stats.load_us = MicrosSince(start);
  CatalogEntryPtr shared = std::move(entry);
  {
    MutexLock lock(mu_);
    ++counters_.loads;
  }
  MutexLock lock(slot->m);
  slot->entry = shared;
  slot->done = true;
  slot->cv.NotifyAll();
  return shared;
}

size_t GraphCatalog::size() const {
  MutexLock lock(mu_);
  size_t n = 0;
  for (const auto& kv : entries_) {
    // Counting only — unordered iteration order never reaches a caller.
    Slot* slot = kv.second.get();
    MutexLock slot_lock(slot->m);
    if (slot->done && slot->entry != nullptr) ++n;
  }
  return n;
}

CatalogCounters GraphCatalog::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

}  // namespace server
}  // namespace pathalg
