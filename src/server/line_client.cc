#include "server/line_client.h"

#ifdef __unix__

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace pathalg {
namespace server {

LineClient::~LineClient() { Close(); }

LineClient::LineClient(LineClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void LineClient::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
  buffer_.clear();
}

Status LineClient::Connect(uint16_t port) {
  Close();
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd);
    return Status::Internal("connect() to 127.0.0.1:" +
                            std::to_string(port) + " failed");
  }
  fd_ = fd;
  return Status::OK();
}

Status LineClient::SendLine(const std::string& line) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  std::string payload = line;
  if (payload.empty() || payload.back() != '\n') payload += '\n';
  size_t off = 0;
  while (off < payload.size()) {
    const ssize_t w = write(fd_, payload.data() + off, payload.size() - off);
    if (w <= 0) return Status::Internal("write() failed (server closed?)");
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

Result<std::string> LineClient::ReadLine() {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  for (;;) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    char buf[4096];
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n < 0) return Status::Internal("read() failed");
    if (n == 0) {
      if (buffer_.empty()) return Status::NotFound("EOF");
      std::string line = std::move(buffer_);
      buffer_.clear();
      return line;
    }
    buffer_.append(buf, static_cast<size_t>(n));
  }
}

Result<std::string> LineClient::RoundTrip(const std::string& line) {
  PATHALG_RETURN_NOT_OK(SendLine(line));
  return ReadLine();
}

}  // namespace server
}  // namespace pathalg

#else  // !__unix__

namespace pathalg {
namespace server {

LineClient::~LineClient() = default;
LineClient::LineClient(LineClient&&) noexcept {}
LineClient& LineClient::operator=(LineClient&&) noexcept { return *this; }
void LineClient::Close() {}
Status LineClient::Connect(uint16_t) {
  return Status::NotImplemented("LineClient requires a POSIX platform");
}
Status LineClient::SendLine(const std::string&) {
  return Status::NotImplemented("LineClient requires a POSIX platform");
}
Result<std::string> LineClient::ReadLine() {
  return Status::NotImplemented("LineClient requires a POSIX platform");
}
Result<std::string> LineClient::RoundTrip(const std::string&) {
  return Status::NotImplemented("LineClient requires a POSIX platform");
}

}  // namespace server
}  // namespace pathalg

#endif  // __unix__
