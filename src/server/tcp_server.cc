#include "server/tcp_server.h"

#ifdef __unix__

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <memory>
#include <unordered_set>
#include <utility>

#include "common/fault_injection.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/timing.h"

namespace pathalg {
namespace server {

namespace {

/// The one socket-I/O patience policy: how long a misbehaving peer may
/// pin a pool worker on a single syscall. Applied as SO_RCVTIMEO on the
/// refusal drain's reads and SO_SNDTIMEO on every connection's response
/// writes — one named constant so the two bounds cannot drift apart.
constexpr time_t kSocketIoTimeoutSec = 1;

timeval SocketIoTimeout() {
  timeval tv{};
  tv.tv_sec = kSocketIoTimeoutSec;
  return tv;
}

}  // namespace

struct TcpServer::Impl {
  /// Set once at construction, immutable afterwards (no guard needed).
  SessionManager* const manager;

  explicit Impl(SessionManager* m) : manager(m) {}

  Mutex mu;
  CondVar cv;
  int listener PA_GUARDED_BY(mu) = -1;
  uint16_t port PA_GUARDED_BY(mu) = 0;
  /// The accept loop is (or is being) started.
  bool accepting PA_GUARDED_BY(mu) = false;
  /// The accept-loop task is live.
  bool accept_running PA_GUARDED_BY(mu) = false;
  bool stopping PA_GUARDED_BY(mu) = false;
  /// Fds with live handlers.
  std::unordered_set<int> connections PA_GUARDED_BY(mu);
  size_t handlers_running PA_GUARDED_BY(mu) = 0;
  /// Refusal tasks in flight. Each holds a pool worker for its bounded
  /// drain, and Submit grows the pool per unfinished task — so a
  /// connection flood against a full gate must not fan out one task per
  /// refusal, or it would permanently grow the pool by the flood size.
  /// Shared-ptr'd so stragglers finishing after ~Impl stay safe.
  std::shared_ptr<std::atomic<int>> refusals_in_flight =
      std::make_shared<std::atomic<int>>(0);
  static constexpr int kMaxRefusalTasks = 8;
  /// Refusal-drain budget in *bytes* (on top of the per-read count and
  /// timeout bounds): a refused peer gets at most this much of its
  /// pipelined backlog read before the fd closes regardless.
  static constexpr size_t kMaxRefusalDrainBytes = 1024;
  /// Stop()'s drain budget (TcpServerOptions::drain_deadline_ms), fixed
  /// at Start.
  std::chrono::milliseconds drain_deadline PA_GUARDED_BY(mu){2000};

  /// Registers a freshly-accepted fd unless the server is stopping (in
  /// which case the caller must close it). Guards the Stop() sweep: a fd
  /// registered here is guaranteed to receive Stop's shutdown().
  bool RegisterConnection(int fd) PA_EXCLUDES(mu) {
    MutexLock lock(mu);
    if (stopping) return false;
    connections.insert(fd);
    ++handlers_running;
    return true;
  }

  void UnregisterConnection(int fd) PA_EXCLUDES(mu) {
    {
      // Notify under the mutex: Stop() may destroy this Impl (and the
      // cv) the moment it observes handlers_running == 0, which it can
      // only do while holding mu — a notify outside the lock could touch
      // a destroyed cv. The close stays outside (it touches only the fd)
      // and after the erase, so Stop's shutdown sweep never sees a
      // closed — possibly reused — descriptor in `connections`.
      MutexLock lock(mu);
      connections.erase(fd);
      --handlers_running;
      cv.NotifyAll();
    }
    close(fd);
  }

  /// One connection: line-buffered reads over the raw fd, whole-response
  /// writes, one ServerSession for the connection's lifetime (destroying
  /// it releases the admission slot and flushes any recording).
  void ServeConnection(int fd, std::unique_ptr<ServerSession> session) {
    // A client that stops reading must not pin this worker for the
    // connection's lifetime: response writes time out after the shared
    // socket-I/O bound and the connection is dropped cleanly (counted in
    // slow_client_drops). The kernel send buffer absorbs normal reader
    // lag; only a peer stuck for the full timeout with the buffer full
    // trips this.
    const timeval timeout = SocketIoTimeout();
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    std::string pending;
    char buf[4096];
    ssize_t n;
    bool quit = false;
    auto respond = [&](const std::string& line) {
      std::string response;
      quit = !session->HandleLine(line, &response);
      size_t off = 0;
      while (off < response.size()) {
        // The socket-write injection site: models the send wedging
        // against a stuck peer, exercising the same drop path the
        // SO_SNDTIMEO expiry takes.
        if (FaultInjector::Global().ShouldFail(FaultSite::kSocketWrite)) {
          manager->RecordSlowClientDrop();
          quit = true;
          break;
        }
        const ssize_t w =
            write(fd, response.data() + off, response.size() - off);
        if (w <= 0) {
          // EAGAIN/EWOULDBLOCK is the SO_SNDTIMEO write timeout — the
          // slow-client drop, which we count; anything else means the
          // client went away (EPIPE with SIGPIPE ignored).
          if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            manager->RecordSlowClientDrop();
          }
          quit = true;
          break;
        }
        off += static_cast<size_t>(w);
      }
    };
    while (!quit && (n = read(fd, buf, sizeof(buf))) > 0) {
      pending.append(buf, static_cast<size_t>(n));
      size_t nl;
      while (!quit && (nl = pending.find('\n')) != std::string::npos) {
        std::string line = pending.substr(0, nl);
        pending.erase(0, nl + 1);
        respond(line);
      }
    }
    // A final request without a trailing newline still gets an answer
    // (parity with the piped mode, where getline handles the last line).
    if (!quit && !pending.empty()) respond(pending);
    session.reset();  // release the admission slot before unregistering
    UnregisterConnection(fd);
  }

  /// Writes the refusal line and closes without destroying it: a
  /// pipelining client may already have queued request bytes we never
  /// read, and close()-with-unread-data sends an RST that discards the
  /// in-flight response on the client's side. Half-close our sending
  /// direction, then drain until the peer acknowledges with EOF — but
  /// only for a bounded number of bounded-time reads, so a peer that
  /// trickles bytes forever cannot pin this task. Runs as its own pool
  /// task (touching only the fd, never the Impl), keeping the accept
  /// loop free to serve the next connection immediately.
  static void RefuseAndClose(int fd, const std::string& line) {
    (void)!write(fd, line.data(), line.size());
    shutdown(fd, SHUT_WR);
    const timeval timeout = SocketIoTimeout();
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    // Bounded three ways — reads, total bytes, per-read timeout — so a
    // peer trickling bytes can pin this task for at most a handful of
    // short reads, never proportionally to what it queued.
    char buf[256];
    size_t drained = 0;
    for (int reads = 0; reads < 8 && drained < kMaxRefusalDrainBytes;
         ++reads) {
      const ssize_t r = read(fd, buf, sizeof(buf));
      if (r <= 0) break;  // EOF, error or timeout
      drained += static_cast<size_t>(r);
    }
    close(fd);
  }

  /// `listener_fd` is passed by value: the accept loop runs for the
  /// whole listener lifetime, and reading the mu-guarded `listener`
  /// member without the lock (as this loop once did) is exactly the kind
  /// of convention-only discipline the thread-safety annotations exist
  /// to reject. Stop() still reaches the loop through the member — same
  /// fd, shutdown() under the lock.
  void AcceptLoop(const int listener_fd) PA_EXCLUDES(mu) {
    for (;;) {
      const int fd = accept(listener_fd, nullptr, nullptr);
      if (fd < 0) {
        MutexLock lock(mu);
        if (stopping) break;
        continue;  // transient accept failure; keep serving
      }
      Result<std::unique_ptr<ServerSession>> session = manager->Open();
      if (!session.ok()) {
        // Admission-gate refusals answer the BUSY line (retryable); any
        // other Open failure — e.g. a broken default graph spec — is a
        // real error the client must see as such, not an invitation to
        // retry forever.
        const std::string line =
            session.status().code() == StatusCode::kResourceExhausted
                ? manager->BusyLine()
                : "ERR " + engine::OneLine(session.status().ToString()) +
                      "\n";
        auto in_flight = refusals_in_flight;
        if (in_flight->fetch_add(1, std::memory_order_relaxed) <
            kMaxRefusalTasks) {
          ThreadPool::Shared().Submit([fd, line, in_flight] {
            RefuseAndClose(fd, line);
            in_flight->fetch_sub(1, std::memory_order_relaxed);
          });
        } else {
          // Flood path: past the task budget, answer and close inline
          // without the polite drain — a possible RST beats unbounded
          // worker growth, and the accept loop never blocks either way.
          in_flight->fetch_sub(1, std::memory_order_relaxed);
          (void)!write(fd, line.data(), line.size());
          close(fd);
        }
        continue;
      }
      if (!RegisterConnection(fd)) {
        close(fd);
        break;  // stopping: the session unwinds via its destructor
      }
      // Detach the handler onto the pool; it owns fd + session.
      auto handler = std::make_shared<std::unique_ptr<ServerSession>>(
          std::move(session).value());
      ThreadPool::Shared().Submit([this, fd, handler] {
        ServeConnection(fd, std::move(*handler));
      });
    }
    // Notify under the mutex (see UnregisterConnection).
    MutexLock lock(mu);
    accept_running = false;
    cv.NotifyAll();
  }
};

TcpServer::TcpServer(SessionManager* manager) : impl_(new Impl(manager)) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start(const TcpServerOptions& options) {
  int listener = -1;
  {
    MutexLock lock(impl_->mu);
    if (impl_->accepting) {
      return Status::InvalidArgument("server already started");
    }
    // A client closing its end mid-response must not SIGPIPE-kill the
    // process; writes then fail with EPIPE and the handler drops the
    // connection.
    std::signal(SIGPIPE, SIG_IGN);
    listener = socket(AF_INET, SOCK_STREAM, 0);
    if (listener < 0) return Status::Internal("socket() failed");
    int one = 1;
    setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options.port);
    if (bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      close(listener);
      return Status::Internal("bind() failed (port in use?)");
    }
    socklen_t len = sizeof(addr);
    if (getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
      close(listener);
      return Status::Internal("getsockname() failed");
    }
    if (listen(listener, options.backlog) < 0) {
      close(listener);
      return Status::Internal("listen() failed");
    }
    impl_->listener = listener;
    impl_->port = ntohs(addr.sin_port);
    impl_->accepting = true;
    impl_->accept_running = true;
    impl_->stopping = false;
    impl_->drain_deadline =
        std::chrono::milliseconds(options.drain_deadline_ms);
  }
  Impl* impl = impl_.get();
  ThreadPool::Shared().Submit([impl, listener] { impl->AcceptLoop(listener); });
  return Status::OK();
}

uint16_t TcpServer::port() const {
  MutexLock lock(impl_->mu);
  return impl_->port;
}

bool TcpServer::running() const {
  MutexLock lock(impl_->mu);
  return impl_->accept_running;
}

void TcpServer::Stop() {
  MutexLock lock(impl_->mu);
  if (!impl_->accepting) return;
  impl_->stopping = true;
  // Phase 1 — close the intake. Unblock the accept loop, and half-close
  // (SHUT_RD, not RDWR) every connection's read side: blocked reads see
  // EOF, no new request line is ever picked up, but in-flight queries
  // keep running and their responses still flow out. Handlers unwind
  // through their normal path, so live `!record` captures flush via the
  // session destructor. shutdown() (not close()) so no fd number is
  // reused while its handler still touches it.
  if (impl_->listener >= 0) shutdown(impl_->listener, SHUT_RDWR);
  for (int fd : impl_->connections) shutdown(fd, SHUT_RD);
  // Phase 2 — bounded drain: give in-flight queries the configured
  // deadline to finish on their own.
  const SteadyClock::time_point drain_until =
      SteadyClock::now() + impl_->drain_deadline;
  while (impl_->accept_running || impl_->handlers_running != 0) {
    if (!impl_->cv.WaitUntil(impl_->mu, drain_until)) break;
  }
  // Phase 3 — cancel stragglers. Trip the process-wide shutdown token
  // (every in-flight query polls it cooperatively and returns the pinned
  // cancellation ERR promptly), fully shut the sockets, and wait without
  // a deadline: after cancellation the handlers' remaining work is a
  // bounded unwind, so this converges.
  if (impl_->accept_running || impl_->handlers_running != 0) {
    impl_->manager->CancelAllQueries();
    for (int fd : impl_->connections) shutdown(fd, SHUT_RDWR);
    while (impl_->accept_running || impl_->handlers_running != 0) {
      impl_->cv.Wait(impl_->mu);
    }
  }
  if (impl_->listener >= 0) close(impl_->listener);
  impl_->listener = -1;
  impl_->accepting = false;
  impl_->cv.NotifyAll();
}

void TcpServer::WaitUntilStopped() {
  MutexLock lock(impl_->mu);
  while (impl_->accepting) impl_->cv.Wait(impl_->mu);
}

}  // namespace server
}  // namespace pathalg

#else  // !__unix__

namespace pathalg {
namespace server {

struct TcpServer::Impl {};

TcpServer::TcpServer(SessionManager*) : impl_(new Impl()) {}
TcpServer::~TcpServer() = default;
Status TcpServer::Start(const TcpServerOptions&) {
  return Status::NotImplemented("TCP serving requires a POSIX platform");
}
uint16_t TcpServer::port() const { return 0; }
bool TcpServer::running() const { return false; }
void TcpServer::Stop() {}
void TcpServer::WaitUntilStopped() {}

}  // namespace server
}  // namespace pathalg

#endif  // __unix__
