#ifndef PATHALG_SERVER_SESSION_H_
#define PATHALG_SERVER_SESSION_H_

/// \file session.h
/// The concurrent server's session layer. A SessionManager owns the
/// process-wide sharing surfaces — the GraphCatalog, one thread-safe
/// PlanCache handed to every session, the admission gate — and mints
/// ServerSessions: one per connection, each wrapping a private
/// engine::QueryEngine (per-session stats/options) over the shared graph
/// and cache.
///
/// A ServerSession speaks the line protocol of engine/serve.h extended
/// with server commands:
///
///   !threads N                 per-session eval thread count
///   !limits [k=v ...]          per-session EvalLimits (admission control:
///                              max_paths, max_len, max_iterations,
///                              truncate=0|1); bare !limits prints them
///   !deadline <ms>|off         per-query wall-clock deadline: each later
///                              query runs under a CancelToken armed with
///                              this budget and trips to the pinned
///                              "query cancelled (deadline)" ERR
///                              (algebra/eval_budget.h). Wall-clock trips
///                              are excluded from the byte-identity
///                              surface the same way `!timing` output is.
///   !timing on|off             timings off = deterministic "OK <n> paths"
///                              responses (the byte-identity surface)
///   !record <path> | stop      live workload recording: queries issued
///                              while recording are captured (successful
///                              ones with `# expect <n>`) and written as a
///                              replayable .gqlw via FormatWorkload
///   !graph <spec>              swap the session graph *via the catalog*
///                              (shared, load-once; never clears the
///                              shared plan cache)
///   !mutate <op ...>           live graph mutation (mutation_dir mode):
///                              add-node [name] [label=L] [k=v ...],
///                              add-edge <src> <dst> [label=L] [name=N]
///                              [k=v ...], rm-node <name>, rm-edge <name>.
///                              Journalled (fsync) before the OK line,
///                              which echoes the resolved record; writers
///                              are serialized per graph, in-flight
///                              queries keep their pinned version
///   !version                   content-addressed id of the session
///                              graph's current version ("OK version
///                              <16 hex digits>"); two graphs share an id
///                              iff their snapshots are byte-identical
///   !stats                     engine stats + catalog/session/pool lines
///
/// plus everything the base protocol handles (queries, !help, !cache
/// clear, !quit).
///
/// Determinism contract: with `!timing off`, a session's responses to
/// queries and to the session-scoped commands are byte-identical to a
/// serial single-client run of the same request stream — shared-cache
/// hit/miss and scheduling affect latency only, never path counts,
/// order of response lines, or error text. (`!stats` is the deliberate
/// exception: its whole point is to report the shared mutable counters,
/// which legitimately differ under concurrency.) The concurrent fuzz
/// suite in tests/server_test.cc pins this.
///
/// Thread model: one ServerSession is used by one connection handler at a
/// time (not internally synchronized); the manager's counters and the
/// shared pieces are thread-safe.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/cancel.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "engine/query_engine.h"
#include "engine/serve.h"
#include "engine/workload_file.h"
#include "server/graph_catalog.h"

namespace pathalg {
namespace server {

struct SessionManagerOptions {
  /// Admission gate: concurrent sessions beyond this are refused with a
  /// BUSY line ("Complexity of Evaluating GQL Queries" motivates budget
  /// admission; this is the connection-level analogue). 0 = unlimited.
  size_t max_sessions = 8;
  /// Graph spec sessions start on (catalog key; empty = figure1).
  std::string default_graph_spec;
  /// Per-query deadline every session starts with (0 = none); sessions
  /// adjust theirs with `!deadline <ms>|off`. Surfaced as
  /// `pathalg_serve --default-deadline-ms`.
  uint64_t default_deadline_ms = 0;
  /// Base engine options for every session. `shared_cache` is overwritten
  /// with the manager's process-wide cache; `plan_cache_capacity` sizes
  /// that cache. The optimizer's GraphStats pointer is nulled: plans in a
  /// shared cache must be graph-independent, and sessions may sit on
  /// different catalog graphs.
  engine::EngineOptions engine;
};

/// Monotonic + gauge counters; exposed through `!stats`.
struct SessionCounters {
  uint64_t opened = 0;
  uint64_t closed = 0;
  uint64_t rejected = 0;  // admission-gate refusals
  size_t active = 0;
  size_t peak_active = 0;
  /// Queries whose CancelToken tripped on its armed deadline.
  uint64_t deadline_trips = 0;
  /// Queries cancelled externally (shutdown drain) — disjoint from
  /// deadline_trips.
  uint64_t cancelled_queries = 0;
  /// Connections dropped because a response write timed out against a
  /// slow/stuck client (reported by the transport layer).
  uint64_t slow_client_drops = 0;
};

class SessionManager;

/// One connection's protocol state machine. Create via
/// SessionManager::Open(); destroying the session releases its admission
/// slot and flushes any active recording.
class ServerSession {
 public:
  ~ServerSession();
  ServerSession(const ServerSession&) = delete;
  ServerSession& operator=(const ServerSession&) = delete;

  /// Handles one request line (no trailing newline), appending one or
  /// more '\n'-terminated response lines to `out`. Returns false when the
  /// session should end (`!quit`).
  bool HandleLine(const std::string& line, std::string* out);

  const engine::ServeResult& result() const { return result_; }
  engine::QueryEngine& engine() { return engine_; }
  const std::string& graph_spec() const { return graph_spec_; }
  bool recording() const { return recording_; }

 private:
  friend class SessionManager;
  ServerSession(SessionManager* manager, CatalogEntryPtr catalog_entry,
                engine::EngineOptions options);

  bool HandleServerCommand(std::string_view cmd, std::string_view rest,
                           std::string* out, bool* handled);
  /// Finishes an active recording, writing the .gqlw; returns the status
  /// line ("OK recorded ..." or "ERR ...").
  std::string StopRecording();
  /// Re-points the engine at the live graph's current version when it
  /// moved (this session's own !mutate, or another session's). Cheap when
  /// nothing changed: one shared_ptr copy and a pointer compare.
  void RefreshLiveGraph();

  SessionManager* const manager_;
  CatalogEntryPtr catalog_entry_;  // keeps the shared graph alive
  std::string graph_spec_;
  engine::QueryEngine engine_;
  engine::ServeOptions serve_;
  engine::ServeResult result_;

  /// Per-query wall-clock budget (`!deadline`); 0 = none.
  uint64_t deadline_ms_ = 0;

  bool recording_ = false;
  std::string record_path_;
  engine::Workload recorded_;
};

class SessionManager {
 public:
  /// `catalog` must outlive the manager and every session.
  SessionManager(GraphCatalog* catalog, SessionManagerOptions options);

  /// Opens a session on the default graph (or `graph_spec` when given).
  /// ResourceExhausted when the admission gate is full — the transport
  /// layer turns that into the BUSY line.
  Result<std::unique_ptr<ServerSession>> Open(
      std::string_view graph_spec = {});

  /// The line-protocol BUSY response for a gate refusal.
  std::string BusyLine() const;

  GraphCatalog& catalog() { return *catalog_; }
  engine::PlanCache& shared_cache() { return *shared_cache_; }
  size_t max_sessions() const { return options_.max_sessions; }
  SessionCounters counters() const;

  /// The process-wide shutdown token. Every per-query CancelToken is
  /// parented to it, so tripping it (the TCP server's drain-deadline
  /// path) cancels every in-flight query at its next poll. Sticky: a
  /// manager whose token tripped is shutting down for good.
  const CancelToken& shutdown_token() const { return shutdown_token_; }
  void CancelAllQueries() { shutdown_token_.Cancel(); }

  /// Counter feeds from the session/transport layers (thread-safe).
  void RecordQueryCancelled(bool deadline);
  void RecordSlowClientDrop();

  /// The catalog/session/pool "STAT ..." lines appended to `!stats`.
  std::string StatsLines() const;

 private:
  friend class ServerSession;
  void ReleaseSlot();

  GraphCatalog* const catalog_;
  SessionManagerOptions options_;
  std::shared_ptr<engine::PlanCache> shared_cache_;
  CancelToken shutdown_token_;  // internally synchronized (atomics)
  mutable Mutex mu_;
  SessionCounters counters_ PA_GUARDED_BY(mu_);
};

}  // namespace server
}  // namespace pathalg

#endif  // PATHALG_SERVER_SESSION_H_
