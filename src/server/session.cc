#include "server/session.h"

#include <cstdio>
#include <fstream>
#include <utility>
#include <vector>

#include "algebra/eval_budget.h"
#include "common/fault_injection.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "storage/snapshot_writer.h"

namespace pathalg {
namespace server {

namespace {

std::string LimitsLine(const EvalLimits& l) {
  return "OK limits max_paths=" + std::to_string(l.max_paths) +
         " max_len=" + std::to_string(l.max_path_length) +
         " max_iterations=" + std::to_string(l.max_iterations) +
         " truncate=" + (l.truncate ? "1" : "0") + "\n";
}

std::string VersionHex(uint64_t version) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(version));
  return hex;
}

}  // namespace

// ---------------------------------------------------------------------------
// SessionManager
// ---------------------------------------------------------------------------

SessionManager::SessionManager(GraphCatalog* catalog,
                               SessionManagerOptions options)
    : catalog_(catalog), options_(std::move(options)) {
  // Plans in the shared cache are reused across sessions that may sit on
  // different catalog graphs, so preparation must not depend on the
  // graph: drop any graph-derived optimizer statistics from the base
  // options. (Text + OptimizerOptions is then the full prepare input,
  // which the cache key covers.)
  options_.engine.query.optimizer.stats = nullptr;
  shared_cache_ = std::make_shared<engine::PlanCache>(
      options_.engine.plan_cache_capacity);
  options_.engine.shared_cache = shared_cache_;
}

Result<std::unique_ptr<ServerSession>> SessionManager::Open(
    std::string_view graph_spec) {
  {
    MutexLock lock(mu_);
    if (options_.max_sessions != 0 &&
        counters_.active >= options_.max_sessions) {
      ++counters_.rejected;
      return Status::ResourceExhausted(
          "session limit reached (max_sessions=" +
          std::to_string(options_.max_sessions) + ")");
    }
    // The slot is claimed here (so a racing Open sees the gate full),
    // but opened/peak_active only count once a session is actually
    // minted — a graph-load failure must not read as sessions served.
    ++counters_.active;
  }
  const std::string_view spec =
      graph_spec.empty() ? std::string_view(options_.default_graph_spec)
                         : graph_spec;
  Result<CatalogEntryPtr> entry = catalog_->Get(spec);
  if (!entry.ok()) {
    MutexLock lock(mu_);
    --counters_.active;  // undo the claim; nothing opened, nothing closed
    return entry.status();
  }
  {
    MutexLock lock(mu_);
    ++counters_.opened;
    if (counters_.active > counters_.peak_active) {
      counters_.peak_active = counters_.active;
    }
  }
  return std::unique_ptr<ServerSession>(
      new ServerSession(this, std::move(entry).value(), options_.engine));
}

std::string SessionManager::BusyLine() const {
  return "BUSY max_sessions=" + std::to_string(options_.max_sessions) +
         " reached, retry later\n";
}

void SessionManager::ReleaseSlot() {
  MutexLock lock(mu_);
  --counters_.active;
  ++counters_.closed;
}

void SessionManager::RecordQueryCancelled(bool deadline) {
  MutexLock lock(mu_);
  if (deadline) {
    ++counters_.deadline_trips;
  } else {
    ++counters_.cancelled_queries;
  }
}

void SessionManager::RecordSlowClientDrop() {
  MutexLock lock(mu_);
  ++counters_.slow_client_drops;
}

SessionCounters SessionManager::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

std::string SessionManager::StatsLines() const {
  const CatalogCounters cat = catalog_->counters();
  const SessionCounters ses = counters();
  const ThreadPoolCounters pool = ThreadPool::Shared().Counters();
  std::string out;
  out += "STAT catalog_graphs=" + std::to_string(catalog_->size()) +
         " catalog_loads=" + std::to_string(cat.loads) +
         " catalog_hits=" + std::to_string(cat.hits) +
         " catalog_errors=" + std::to_string(cat.errors) + "\n";
  out += "STAT snapshot_hits=" + std::to_string(cat.snapshot_hits) +
         " snapshot_misses=" + std::to_string(cat.snapshot_misses) +
         " snapshot_evictions=" + std::to_string(cat.snapshot_evictions) +
         "\n";
  out += "STAT sessions_active=" + std::to_string(ses.active) +
         " sessions_peak=" + std::to_string(ses.peak_active) +
         " sessions_opened=" + std::to_string(ses.opened) +
         " sessions_closed=" + std::to_string(ses.closed) +
         " sessions_rejected=" + std::to_string(ses.rejected) +
         " max_sessions=" + std::to_string(options_.max_sessions) + "\n";
  out += "STAT pool_workers=" + std::to_string(pool.workers) +
         " pool_regions=" + std::to_string(pool.regions) +
         " pool_chunks=" + std::to_string(pool.chunks) +
         " pool_steals=" + std::to_string(pool.steals) +
         " pool_tasks=" + std::to_string(pool.tasks_submitted) + "\n";
  const CatalogMutationStats mut = catalog_->mutation_stats();
  out += "STAT mutation_graphs=" + std::to_string(mut.live_graphs) +
         " mutations_applied=" + std::to_string(mut.totals.mutations_applied) +
         " mutations_rejected=" +
         std::to_string(mut.totals.mutations_rejected) +
         " mutations_pending=" + std::to_string(mut.totals.pending) +
         " compactions=" + std::to_string(mut.totals.compactions) +
         " materializations=" + std::to_string(mut.totals.materializations) +
         " recovered_records=" +
         std::to_string(mut.totals.recovered_records) +
         " stale_journals=" + std::to_string(mut.totals.stale_journals) +
         "\n";
  out += "STAT deadline_trips=" + std::to_string(ses.deadline_trips) +
         " cancelled_queries=" + std::to_string(ses.cancelled_queries) +
         " slow_client_drops=" + std::to_string(ses.slow_client_drops) +
         " quarantined_snapshots=" +
         std::to_string(cat.quarantined_snapshots) + "\n";
  const FaultInjector& faults = FaultInjector::Global();
  std::string fault_line = "STAT faults";
  for (int s = 0; s < kNumFaultSites; ++s) {
    const FaultSite site = static_cast<FaultSite>(s);
    fault_line += std::string(" ") + FaultSiteName(site) + "=" +
                  std::to_string(faults.Injected(site));
  }
  out += fault_line + "\n";
  return out;
}

// ---------------------------------------------------------------------------
// ServerSession
// ---------------------------------------------------------------------------

ServerSession::ServerSession(SessionManager* manager,
                             CatalogEntryPtr catalog_entry,
                             engine::EngineOptions options)
    : manager_(manager),
      catalog_entry_(std::move(catalog_entry)),
      graph_spec_(catalog_entry_->spec),
      engine_(catalog_entry_->graph, std::move(options)) {
  deadline_ms_ = manager_->options_.default_deadline_ms;
  serve_.query_observer = [this](std::string_view query,
                                 const Result<PathSet>& result) {
    // Classify cancellations by the pinned Status wording so the
    // deadline_trips / cancelled_queries counters track the ERR lines
    // clients actually saw.
    if (!result.ok() && IsCancelledStatus(result.status())) {
      manager_->RecordQueryCancelled(
          IsDeadlineCancelledStatus(result.status()));
    }
    if (!recording_) return;
    // A leading '#' would read back as a directive; such lines are
    // unrepresentable in .gqlw (and are never valid GQL anyway).
    if (!query.empty() && query[0] == '#') return;
    engine::WorkloadEntry entry;
    entry.name = "q" + std::to_string(recorded_.entries.size() + 1);
    entry.query = std::string(query);
    // Successful queries replay as correctness checks: the recorded
    // cardinality becomes `# expect`, which ReplayWorkload asserts —
    // but only when the session runs under the default EvalLimits. The
    // .gqlw format has no limits directive, so a cardinality shaped by
    // `!limits` (a truncated answer, say) would fail every replay.
    const EvalLimits& l = engine_.eval_limits();
    const EvalLimits defaults;
    const bool default_limits = l.max_paths == defaults.max_paths &&
                                l.max_path_length == defaults.max_path_length &&
                                l.max_iterations == defaults.max_iterations &&
                                l.truncate == defaults.truncate;
    if (result.ok() && default_limits) entry.expect = result->size();
    recorded_.entries.push_back(std::move(entry));
  };
}

ServerSession::~ServerSession() {
  if (recording_) StopRecording();  // best-effort flush on disconnect
  manager_->ReleaseSlot();
}

std::string ServerSession::StopRecording() {
  recording_ = false;
  const size_t n = recorded_.entries.size();
  std::ofstream file(record_path_);
  if (!file) {
    return "ERR cannot write workload file '" + record_path_ + "'\n";
  }
  file << engine::FormatWorkload(recorded_);
  file.flush();
  // The record-flush injection site: models the final flush losing bytes
  // (disk full, NFS hiccup). Shares the real short-write ERR shape so
  // clients and tests see one failure surface.
  if (FaultInjector::Global().ShouldFail(FaultSite::kRecordFlush) || !file) {
    return "ERR short write to workload file '" + record_path_ + "'\n";
  }
  std::string line = "OK recorded " + std::to_string(n) + " queries to " +
                     record_path_ + "\n";
  record_path_.clear();
  recorded_ = engine::Workload();
  return line;
}

bool ServerSession::HandleServerCommand(std::string_view cmd,
                                        std::string_view rest,
                                        std::string* out, bool* handled) {
  *handled = true;
  auto ok = [&](std::string line) {
    *out += std::move(line);
    ++result_.requests;
    ++result_.ok;
  };
  auto err = [&](std::string line) {
    *out += std::move(line);
    ++result_.requests;
    ++result_.errors;
  };

  if (cmd == "!threads") {
    size_t n = 0;
    if (!ParseSizeT(rest, &n)) {
      err("ERR !threads takes one non-negative integer "
          "(0 = hardware concurrency)\n");
      return true;
    }
    engine_.SetEvalThreads(n);
    ok("OK threads " + std::to_string(n) + "\n");
    return true;
  }

  if (cmd == "!limits") {
    EvalLimits limits = engine_.eval_limits();
    for (std::string_view word : SplitWhitespace(rest)) {
      const size_t eq = word.find('=');
      if (eq == std::string_view::npos || eq == 0) {
        err("ERR !limits expects key=value pairs (max_paths, max_len, "
            "max_iterations, truncate)\n");
        return true;
      }
      const std::string_view key = word.substr(0, eq);
      size_t value = 0;
      if (!ParseSizeT(word.substr(eq + 1), &value)) {
        err("ERR !limits value for '" + std::string(key) +
            "' must be a non-negative integer\n");
        return true;
      }
      if (key == "max_paths") {
        limits.max_paths = value;
      } else if (key == "max_len") {
        limits.max_path_length = value;
      } else if (key == "max_iterations") {
        limits.max_iterations = value;
      } else if (key == "truncate") {
        limits.truncate = value != 0;
      } else {
        err("ERR !limits unknown key '" + std::string(key) +
            "' (known: max_paths, max_len, max_iterations, truncate)\n");
        return true;
      }
    }
    engine_.SetEvalLimits(limits);
    ok(LimitsLine(limits));
    return true;
  }

  if (cmd == "!deadline") {
    if (rest == "off") {
      deadline_ms_ = 0;
      ok("OK deadline off\n");
      return true;
    }
    size_t n = 0;
    if (!ParseSizeT(rest, &n) || n == 0) {
      err("ERR !deadline takes a positive millisecond count or 'off'\n");
      return true;
    }
    deadline_ms_ = n;
    ok("OK deadline " + std::to_string(n) + "\n");
    return true;
  }

  if (cmd == "!timing") {
    if (rest == "on") {
      serve_.timings = true;
      ok("OK timing on\n");
    } else if (rest == "off") {
      serve_.timings = false;
      ok("OK timing off\n");
    } else {
      err("ERR !timing takes 'on' or 'off'\n");
    }
    return true;
  }

  if (cmd == "!record") {
    if (rest == "stop") {
      if (!recording_) {
        err("ERR no active recording (start one with !record <path>)\n");
        return true;
      }
      std::string line = StopRecording();
      if (StartsWith(line, "OK")) {
        ok(std::move(line));
      } else {
        err(std::move(line));
      }
      return true;
    }
    if (rest.empty()) {
      err("ERR !record takes a file path or 'stop'\n");
      return true;
    }
    if (recording_) {
      err("ERR already recording to '" + record_path_ +
          "' (finish with !record stop)\n");
      return true;
    }
    {
      // Fail fast on an unwritable path: discovering it only at !record
      // stop (or at disconnect, where the error has nobody to go to)
      // would silently discard the whole recording.
      std::ofstream probe{std::string(rest)};
      if (!probe) {
        err("ERR cannot write workload file '" + std::string(rest) + "'\n");
        return true;
      }
    }
    recording_ = true;
    record_path_ = std::string(rest);
    recorded_ = engine::Workload();
    recorded_.graph_spec = graph_spec_;
    // Non-default thread counts are part of the session context a replay
    // should reproduce.
    if (engine_.eval_threads() != 1) {
      recorded_.threads = engine_.eval_threads();
    }
    ok("OK recording to " + record_path_ + "\n");
    return true;
  }

  if (cmd == "!graph") {
    if (rest.empty()) {
      // The catalog maps an empty spec to the figure1 default (for
      // server startup); a bare client command is far more likely a typo
      // than a request to swap to figure1 — reject it, matching the base
      // protocol's "empty graph spec" error.
      err("ERR !graph needs a spec (try figure1, social ..., csv <path>; "
          "see !help)\n");
      return true;
    }
    if (recording_) {
      // .gqlw has one `# graph` before the first query; a mid-recording
      // swap would silently misattribute every later query.
      err("ERR cannot swap graph while recording (finish with !record "
          "stop)\n");
      return true;
    }
    Result<CatalogEntryPtr> entry = manager_->catalog().Get(rest);
    if (!entry.ok()) {
      err("ERR " + engine::OneLine(entry.status().ToString()) + "\n");
      return true;
    }
    catalog_entry_ = std::move(entry).value();
    graph_spec_ = catalog_entry_->spec;
    // Shared graph, shared cache: swap without clearing (plans are
    // graph-independent; the cache belongs to every session).
    engine_.SetGraph(catalog_entry_->graph);
    RefreshLiveGraph();  // a mutable entry may already be past load-time
    ok("OK graph " + std::to_string(engine_.graph().num_nodes()) +
       " nodes " + std::to_string(engine_.graph().num_edges()) + " edges\n");
    return true;
  }

  if (cmd == "!mutate") {
    if (rest.empty()) {
      err("ERR !mutate takes add-node|add-edge|rm-node|rm-edge "
          "arguments (see !help)\n");
      return true;
    }
    if (catalog_entry_->live == nullptr) {
      err("ERR graph '" + graph_spec_ +
          "' is read-only (start the server with --mutation-dir)\n");
      return true;
    }
    Result<mutation::DeltaRecord> rec =
        mutation::ParseMutationCommand(rest);
    if (!rec.ok()) {
      err("ERR " + engine::OneLine(rec.status().ToString()) + "\n");
      return true;
    }
    mutation::DeltaRecord resolved;
    Status applied = catalog_entry_->live->Mutate(*rec, &resolved);
    if (!applied.ok()) {
      err("ERR " + engine::OneLine(applied.ToString()) + "\n");
      return true;
    }
    RefreshLiveGraph();
    if (recording_) {
      // Mutations are part of the session history a replay must
      // reproduce: record the *resolved* form (auto names filled in) so
      // the replayed graph evolves identically.
      engine::WorkloadEntry entry;
      entry.name = "q" + std::to_string(recorded_.entries.size() + 1);
      entry.mutation = mutation::FormatMutation(resolved);
      recorded_.entries.push_back(std::move(entry));
    }
    ok("OK mutate " + mutation::FormatMutation(resolved) +
       " nodes=" + std::to_string(engine_.graph().num_nodes()) +
       " edges=" + std::to_string(engine_.graph().num_edges()) + "\n");
    return true;
  }

  if (cmd == "!version") {
    if (!rest.empty()) {
      err("ERR !version takes no arguments\n");
      return true;
    }
    // Mutable entries keep their id incrementally; a read-only graph
    // pays one serialization per ask (command path, never query path).
    const uint64_t version =
        catalog_entry_->live != nullptr
            ? catalog_entry_->live->VersionId()
            : storage::SnapshotWriter::VersionId(*catalog_entry_->graph);
    ok("OK version " + VersionHex(version) + "\n");
    return true;
  }

  if (cmd == "!stats") {
    *out += engine::StatsLines(engine_);
    *out += manager_->StatsLines();
    ok("OK stats\n");
    return true;
  }

  if (cmd == "!help") {
    *out +=
        "HELP one query per line; directives: !help !stats !cache clear "
        "!graph <spec> !mutate <op ...> !version !threads N "
        "!limits [k=v ...] !deadline <ms>|off "
        "!timing on|off !record <path>|stop !quit; mutation ops: "
        "add-node [name] [label=L] [k=v ...] / add-edge <src> <dst> "
        "[label=L] [name=N] [k=v ...] / rm-node <name> / rm-edge <name>\n";
    ok("OK help\n");
    return true;
  }

  *handled = false;
  return true;
}

void ServerSession::RefreshLiveGraph() {
  if (catalog_entry_->live == nullptr) return;
  std::shared_ptr<const PropertyGraph> cur = catalog_entry_->live->Current();
  if (cur.get() != engine_.shared_graph().get()) {
    engine_.SetGraph(std::move(cur));
  }
}

bool ServerSession::HandleLine(const std::string& line, std::string* out) {
  const std::string_view trimmed = StripWhitespace(line);
  if (trimmed.empty()) return true;
  // Pick up versions published by other sessions' mutations before
  // handling anything — each request line sees the latest version, and
  // keeps it pinned (shared_ptr) for exactly this line's duration.
  RefreshLiveGraph();
  if (trimmed[0] == '!') {
    const size_t space = trimmed.find_first_of(" \t");
    const std::string_view cmd = trimmed.substr(0, space);
    const std::string_view rest =
        space == std::string_view::npos
            ? std::string_view()
            : StripWhitespace(trimmed.substr(space + 1));
    bool handled = false;
    const bool keep_going = HandleServerCommand(cmd, rest, out, &handled);
    if (handled) return keep_going;
    // Fall through to the base protocol (!cache clear, !quit, unknown).
  }
  // The original line, not a copy of the trimmed view: HandleRequestLine
  // strips whitespace itself.
  //
  // Every query runs under a fresh per-query CancelToken parented to the
  // manager's shutdown token: the session's `!deadline` budget arms it,
  // and a server-wide drain cancels through the parent. The token lives
  // on this frame — HandleRequestLine is synchronous and the engine
  // drops the pointer before returning.
  CancelToken cancel(&manager_->shutdown_token());
  if (deadline_ms_ > 0) cancel.ArmDeadline(deadline_ms_);
  engine_.SetCancelToken(&cancel);
  const bool keep_going =
      engine::HandleRequestLine(engine_, line, out, &result_, serve_);
  engine_.SetCancelToken(nullptr);
  return keep_going;
}

}  // namespace server
}  // namespace pathalg
