#ifndef PATHALG_MUTATION_OVERLAY_H_
#define PATHALG_MUTATION_OVERLAY_H_

/// \file overlay.h
/// Materializes (base + delta) into the next immutable `PropertyGraph`
/// version, behind the exact adjacency/label-slice interface every engine
/// already consumes — the four ϕ engines, σ/⋈ and the fused frontier
/// closure evaluate overlay versions with zero changes.
///
/// Why materialize instead of a lazy view: `NeighborRange` is a pair of
/// raw pointers into one contiguous CSR run, `Nodes(G)` plan leaves and
/// the automaton baseline enumerate the dense id space 0..N, and the
/// label CSR is a single flat partition — tombstones and side-arrays
/// cannot be spliced into those surfaces without changing every engine's
/// inner loop. So the overlay *is* a graph: `Apply` merges tombstoned
/// base arrays with the delta's added objects into fresh dense arrays
/// (old ids remapped monotonically, no string re-hashing for survivors)
/// and rebuilds the CSR index. Query cost is then identical to any other
/// graph version; mutation cost is O(graph) per materialization, which
/// the LiveGraph layer amortizes by batching (queries between two
/// mutations share one materialization, and background compaction
/// periodically folds the delta away entirely).
///
/// Canonical form. Both construction paths enumerate objects in the same
/// order — live base nodes by ascending id, then live added nodes in log
/// order; edges likewise — and intern labels/property keys in first-use
/// order over that enumeration. Object ids, label ids and property-key
/// ids in the result are therefore *history-independent*: a graph that
/// removed node x and a graph that never had node x are byte-identical
/// under `SnapshotWriter::Serialize`, which is what makes snapshot
/// version ids content-addressable and lets the differential suite
/// require `Serialize(Apply(b,d)) == Serialize(RebuildReference(b,d))`
/// exactly.
///
/// `Apply` is the production path (array merge + remap, CSR built by
/// comparison sort); `RebuildReference` is the executable specification
/// (feed the same enumeration through `GraphBuilder`, which interns by
/// string and counting-sorts its CSR). They share no construction code
/// on purpose: their byte-equality over random mutation histories is the
/// subsystem's differential contract.

#include "graph/property_graph.h"
#include "mutation/delta_log.h"

namespace pathalg {
namespace mutation {

class DeltaOverlayGraph {
 public:
  /// Merges `state` (over `state.base()`) into the next graph version.
  static PropertyGraph Apply(const DeltaState& state);

  /// From-scratch rebuild through GraphBuilder over the same canonical
  /// enumeration — the differential reference for Apply.
  static PropertyGraph RebuildReference(const DeltaState& state);
};

}  // namespace mutation
}  // namespace pathalg

#endif  // PATHALG_MUTATION_OVERLAY_H_
