#include "mutation/overlay.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pathalg {
namespace mutation {

namespace {

/// First-use-order interner mirroring GraphBuilder's, plus a fast lane
/// for ids already interned in the base graph: a survivor's old id maps
/// through a flat remap array after one string lookup, so the merge
/// re-hashes each distinct base label/key at most once, not per object.
class Interner {
 public:
  explicit Interner(size_t num_old) : old_remap_(num_old, kInvalidId) {}

  uint32_t InternString(std::string_view name) {
    auto [it, inserted] = index_.emplace(std::string(name),
                                         static_cast<uint32_t>(names_.size()));
    if (inserted) names_.emplace_back(name);
    return it->second;
  }

  uint32_t InternOld(uint32_t old_id, std::string_view old_name) {
    if (old_remap_[old_id] != kInvalidId) return old_remap_[old_id];
    uint32_t id = InternString(old_name);
    old_remap_[old_id] = id;
    return id;
  }

  std::vector<std::string> TakeNames() { return std::move(names_); }
  std::unordered_map<std::string, uint32_t> TakeIndex() {
    return std::move(index_);
  }
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<uint32_t> old_remap_;
};

/// GraphBuilder::InternProps semantics over already-interned keys:
/// stable-sort by key id, last writer wins on duplicates.
PropertyList SortDedupProps(PropertyList props) {
  std::stable_sort(props.begin(), props.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  PropertyList dedup;
  dedup.reserve(props.size());
  for (size_t i = 0; i < props.size(); ++i) {
    if (i + 1 < props.size() && props[i + 1].first == props[i].first) {
      continue;
    }
    dedup.push_back(std::move(props[i]));
  }
  return dedup;
}

/// CSR construction independent of GraphBuilder's counting-sort path: one
/// comparison sort of the edge ids by (key, label, id) — the same
/// (label, edge id) per-bucket order the builder produces.
template <typename KeyFn>
void BuildCsrBySort(size_t num_keys, size_t num_edges, KeyFn key,
                    const std::vector<LabelId>& edge_labels,
                    std::vector<uint32_t>* offsets,
                    std::vector<EdgeId>* edges,
                    std::vector<LabelId>* labels) {
  edges->resize(num_edges);
  std::iota(edges->begin(), edges->end(), 0);
  std::sort(edges->begin(), edges->end(), [&](EdgeId a, EdgeId b) {
    uint32_t ka = key(a), kb = key(b);
    if (ka != kb) return ka < kb;
    if (edge_labels[a] != edge_labels[b]) {
      return edge_labels[a] < edge_labels[b];
    }
    return a < b;
  });
  offsets->assign(num_keys + 1, 0);
  for (EdgeId e = 0; e < num_edges; ++e) (*offsets)[key(e) + 1]++;
  for (size_t k = 0; k < num_keys; ++k) (*offsets)[k + 1] += (*offsets)[k];
  labels->resize(num_edges);
  for (size_t i = 0; i < num_edges; ++i) {
    (*labels)[i] = edge_labels[(*edges)[i]];
  }
}

}  // namespace

PropertyGraph DeltaOverlayGraph::Apply(const DeltaState& state) {
  const PropertyGraph& base = state.base();
  const auto& node_live = state.base_node_live();
  const auto& edge_live = state.base_edge_live();
  const auto& added_nodes = state.added_nodes();
  const auto& added_edges = state.added_edges();

  // Monotone dense remaps: live base objects keep their relative order,
  // live added objects follow in log order.
  std::vector<NodeId> base_node_map(base.num_nodes(), kInvalidId);
  NodeId next_node = 0;
  for (NodeId n = 0; n < base.num_nodes(); ++n) {
    if (node_live[n]) base_node_map[n] = next_node++;
  }
  std::vector<NodeId> added_node_map(added_nodes.size(), kInvalidId);
  for (size_t i = 0; i < added_nodes.size(); ++i) {
    if (added_nodes[i].live) added_node_map[i] = next_node++;
  }
  const size_t num_nodes = next_node;

  Interner label_interner(base.num_labels());
  Interner key_interner(base.num_prop_keys());

  auto remap_base_props = [&](const PropertyList& old_props) {
    PropertyList out;
    out.reserve(old_props.size());
    for (const auto& [k, v] : old_props) {
      out.emplace_back(key_interner.InternOld(k, base.PropKeyName(k)), v);
    }
    return SortDedupProps(std::move(out));
  };
  auto intern_new_props =
      [&](const std::vector<std::pair<std::string, Value>>& raw) {
        PropertyList out;
        out.reserve(raw.size());
        for (const auto& [k, v] : raw) {
          out.emplace_back(key_interner.InternString(k), v);
        }
        return SortDedupProps(std::move(out));
      };

  // Node arrays in canonical enumeration order (interning order matters:
  // label first, then property keys, per object — the same sequence
  // RebuildReference feeds GraphBuilder).
  std::vector<LabelId> node_labels;
  std::vector<std::string> node_names;
  std::vector<PropertyList> node_props;
  node_labels.reserve(num_nodes);
  node_names.reserve(num_nodes);
  node_props.reserve(num_nodes);
  for (NodeId n = 0; n < base.num_nodes(); ++n) {
    if (!node_live[n]) continue;
    LabelId old = base.NodeLabelId(n);
    node_labels.push_back(
        old == kNoLabel ? kNoLabel
                        : label_interner.InternOld(old, base.LabelName(old)));
    node_names.push_back(base.NodeName(n));
    node_props.push_back(remap_base_props(base.NodeProperties(n)));
  }
  for (const auto& an : added_nodes) {
    if (!an.live) continue;
    node_labels.push_back(an.label.empty()
                              ? kNoLabel
                              : label_interner.InternString(an.label));
    node_names.push_back(an.name);
    node_props.push_back(intern_new_props(an.props));
  }

  // Edge arrays, same discipline. Endpoints of surviving base edges are
  // live by the cascade invariant; added-edge refs likewise.
  std::vector<NodeId> edge_src, edge_dst;
  std::vector<LabelId> edge_labels;
  std::vector<std::string> edge_names;
  std::vector<PropertyList> edge_props;
  const size_t num_edges_hint = state.live_edge_count();
  edge_src.reserve(num_edges_hint);
  edge_dst.reserve(num_edges_hint);
  edge_labels.reserve(num_edges_hint);
  edge_names.reserve(num_edges_hint);
  edge_props.reserve(num_edges_hint);
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    if (!edge_live[e]) continue;
    edge_src.push_back(base_node_map[base.Source(e)]);
    edge_dst.push_back(base_node_map[base.Target(e)]);
    LabelId old = base.EdgeLabelId(e);
    edge_labels.push_back(
        old == kNoLabel ? kNoLabel
                        : label_interner.InternOld(old, base.LabelName(old)));
    edge_names.push_back(base.EdgeName(e));
    edge_props.push_back(remap_base_props(base.EdgeProperties(e)));
  }
  auto resolve = [&](const DeltaRef& ref) {
    return ref.added ? added_node_map[ref.index] : base_node_map[ref.index];
  };
  for (const auto& ae : added_edges) {
    if (!ae.live) continue;
    edge_src.push_back(resolve(ae.src));
    edge_dst.push_back(resolve(ae.dst));
    edge_labels.push_back(ae.label.empty()
                              ? kNoLabel
                              : label_interner.InternString(ae.label));
    edge_names.push_back(ae.name);
    edge_props.push_back(intern_new_props(ae.props));
  }
  const size_t num_edges = edge_src.size();

  // CSR index over the merged arrays (comparison sort — deliberately not
  // GraphBuilder's counting-sort path; see file comment).
  std::vector<uint32_t> out_offsets, in_offsets;
  std::vector<EdgeId> out_edges, in_edges;
  std::vector<LabelId> out_labels, in_labels;
  BuildCsrBySort(
      num_nodes, num_edges, [&](EdgeId e) { return edge_src[e]; },
      edge_labels, &out_offsets, &out_edges, &out_labels);
  BuildCsrBySort(
      num_nodes, num_edges, [&](EdgeId e) { return edge_dst[e]; },
      edge_labels, &in_offsets, &in_edges, &in_labels);

  const size_t num_labels = label_interner.size();
  std::vector<EdgeId> labelled;
  labelled.reserve(num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) {
    if (edge_labels[e] != kNoLabel) labelled.push_back(e);
  }
  std::sort(labelled.begin(), labelled.end(), [&](EdgeId a, EdgeId b) {
    if (edge_labels[a] != edge_labels[b]) {
      return edge_labels[a] < edge_labels[b];
    }
    return a < b;
  });
  std::vector<uint32_t> label_offsets(num_labels + 1, 0);
  for (EdgeId e : labelled) label_offsets[edge_labels[e] + 1]++;
  for (size_t l = 0; l < num_labels; ++l) {
    label_offsets[l + 1] += label_offsets[l];
  }

  PropertyGraph g;
  g.node_labels_ = FlatArray<LabelId>(std::move(node_labels));
  g.node_props_ = std::move(node_props);
  g.node_name_index_.reserve(node_names.size());
  for (NodeId n = 0; n < node_names.size(); ++n) {
    g.node_name_index_.emplace(node_names[n], n);
  }
  g.node_names_ = std::move(node_names);
  g.edge_src_ = FlatArray<NodeId>(std::move(edge_src));
  g.edge_dst_ = FlatArray<NodeId>(std::move(edge_dst));
  g.edge_labels_ = FlatArray<LabelId>(std::move(edge_labels));
  g.edge_props_ = std::move(edge_props);
  g.edge_names_ = std::move(edge_names);
  g.labels_ = label_interner.TakeNames();
  g.label_index_ = label_interner.TakeIndex();
  g.prop_keys_ = key_interner.TakeNames();
  g.prop_key_index_ = key_interner.TakeIndex();
  g.csr_out_offsets_ = FlatArray<uint32_t>(std::move(out_offsets));
  g.csr_out_edges_ = FlatArray<EdgeId>(std::move(out_edges));
  g.csr_out_labels_ = FlatArray<LabelId>(std::move(out_labels));
  g.csr_in_offsets_ = FlatArray<uint32_t>(std::move(in_offsets));
  g.csr_in_edges_ = FlatArray<EdgeId>(std::move(in_edges));
  g.csr_in_labels_ = FlatArray<LabelId>(std::move(in_labels));
  g.label_offsets_ = FlatArray<uint32_t>(std::move(label_offsets));
  g.label_edges_ = FlatArray<EdgeId>(std::move(labelled));
  return g;
}

PropertyGraph DeltaOverlayGraph::RebuildReference(const DeltaState& state) {
  const PropertyGraph& base = state.base();
  GraphBuilder b;

  auto props_as_strings = [&](const PropertyList& props) {
    std::vector<std::pair<std::string, Value>> out;
    out.reserve(props.size());
    for (const auto& [k, v] : props) {
      out.emplace_back(std::string(base.PropKeyName(k)), v);
    }
    return out;
  };

  std::vector<NodeId> base_node_map(base.num_nodes(), kInvalidId);
  for (NodeId n = 0; n < base.num_nodes(); ++n) {
    if (!state.base_node_live()[n]) continue;
    base_node_map[n] = b.AddNamedNode(base.NodeName(n), base.NodeLabel(n),
                                      props_as_strings(base.NodeProperties(n)));
  }
  std::vector<NodeId> added_node_map(state.added_nodes().size(), kInvalidId);
  for (size_t i = 0; i < state.added_nodes().size(); ++i) {
    const auto& an = state.added_nodes()[i];
    if (!an.live) continue;
    added_node_map[i] = b.AddNamedNode(an.name, an.label, an.props);
  }

  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    if (!state.base_edge_live()[e]) continue;
    auto added = b.AddNamedEdge(base.EdgeName(e), base_node_map[base.Source(e)],
                                base_node_map[base.Target(e)], base.EdgeLabel(e),
                                props_as_strings(base.EdgeProperties(e)));
    (void)added;  // endpoints are live by the cascade invariant
  }
  auto resolve = [&](const DeltaRef& ref) {
    return ref.added ? added_node_map[ref.index] : base_node_map[ref.index];
  };
  for (const auto& ae : state.added_edges()) {
    if (!ae.live) continue;
    auto added = b.AddNamedEdge(ae.name, resolve(ae.src), resolve(ae.dst),
                                ae.label, ae.props);
    (void)added;
  }
  return b.Build();
}

}  // namespace mutation
}  // namespace pathalg
