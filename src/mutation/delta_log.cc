#include "mutation/delta_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/str_util.h"
#include "storage/snapshot_format.h"

namespace pathalg {
namespace mutation {

namespace {

constexpr char kJournalMagic[8] = {'P', 'A', 'L', 'G', 'D', 'L', 'O', 'G'};
constexpr uint32_t kJournalVersion = 1;

struct JournalHeader {
  char magic[8];
  uint32_t version;
  uint32_t reserved;
  uint64_t base_version;
};
static_assert(sizeof(JournalHeader) == 24, "header is packed");

/// Protocol value typing: int64 when the whole token parses as one, else
/// double, else the bool/null literals, else the raw string.
Value ParseValueToken(std::string_view tok) {
  if (tok == "true") return Value(true);
  if (tok == "false") return Value(false);
  if (tok == "null") return Value();
  if (!tok.empty()) {
    std::string s(tok);
    char* end = nullptr;
    errno = 0;
    long long i = std::strtoll(s.c_str(), &end, 10);
    if (errno == 0 && end != s.c_str() && *end == '\0') {
      return Value(static_cast<int64_t>(i));
    }
    errno = 0;
    double d = std::strtod(s.c_str(), &end);
    if (errno == 0 && end != s.c_str() && *end == '\0') return Value(d);
  }
  return Value(std::string(tok));
}

/// Inverse of ParseValueToken. Doubles use the shortest %g form that
/// round-trips exactly, so Format∘Parse is the identity on every token
/// ParseValueToken can produce.
std::string FormatValueToken(const Value& v) {
  switch (v.type()) {
    case Value::Type::kNull:
      return "null";
    case Value::Type::kBool:
      return v.AsBool() ? "true" : "false";
    case Value::Type::kInt:
      return std::to_string(v.AsInt());
    case Value::Type::kDouble: {
      char buf[64];
      double d = v.AsDouble();
      for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
        if (std::strtod(buf, nullptr) == d) break;
      }
      return buf;
    }
    case Value::Type::kString:
      return v.AsString();
  }
  return "null";
}

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutStr(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked reader over a record payload.
struct Cursor {
  const unsigned char* p;
  size_t left;

  bool GetU8(uint8_t* v) {
    if (left < 1) return false;
    *v = *p;
    ++p;
    --left;
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (left < 4) return false;
    std::memcpy(v, p, 4);
    p += 4;
    left -= 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (left < 8) return false;
    std::memcpy(v, p, 8);
    p += 8;
    left -= 8;
    return true;
  }
  bool GetStr(std::string* s) {
    uint32_t n = 0;
    if (!GetU32(&n) || left < n) return false;
    s->assign(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return true;
  }
};

Status CorruptRecord() {
  return Status::InvalidArgument("malformed delta record payload");
}

Status WriteBufferDurably(const std::string& path, const std::string& buf) {
  const std::string tmp = path + ".tmp";
  PATHALG_RETURN_NOT_OK(WriteFileDurably(tmp, buf));
  Status moved = RenameDurably(tmp, path);
  if (!moved.ok()) std::remove(tmp.c_str());
  return moved;
}

/// fsync on the directory holding `path`, so a just-completed rename in
/// it survives a crash (the rename is atomic without this, but not
/// guaranteed durable).
Status SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open directory '" + dir +
                                   "' for sync: " + std::strerror(errno));
  }
  // Some filesystems reject fsync on directory fds; rename atomicity
  // still holds there.
  if (::fsync(fd) != 0 && errno != EINVAL) {
    int saved = errno;
    ::close(fd);
    return Status::InvalidArgument("cannot sync directory '" + dir +
                                   "': " + std::strerror(saved));
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace

Status WriteFileDurably(const std::string& path, const std::string& data) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::InvalidArgument("cannot create file '" + path +
                                   "': " + std::strerror(errno));
  }
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(path.c_str());
      return Status::InvalidArgument("short write on file '" + path +
                                     "': " + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    std::remove(path.c_str());
    return Status::InvalidArgument("cannot sync file '" + path + "'");
  }
  return Status::OK();
}

Status RenameDurably(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::InvalidArgument("cannot move '" + from +
                                   "' into place at '" + to +
                                   "': " + std::strerror(errno));
  }
  return SyncParentDir(to);
}

std::string_view DeltaOpName(DeltaOp op) {
  switch (op) {
    case DeltaOp::kAddNode:
      return "add-node";
    case DeltaOp::kAddEdge:
      return "add-edge";
    case DeltaOp::kRemoveNode:
      return "rm-node";
    case DeltaOp::kRemoveEdge:
      return "rm-edge";
  }
  return "?";
}

bool DeltaRecord::operator==(const DeltaRecord& other) const {
  return op == other.op && name == other.name && label == other.label &&
         src == other.src && dst == other.dst && props == other.props;
}

Result<DeltaRecord> ParseMutationCommand(std::string_view text) {
  std::vector<std::string_view> toks = SplitWhitespace(text);
  if (toks.empty()) {
    return Status::InvalidArgument(
        "empty mutation; expected add-node|add-edge|rm-node|rm-edge");
  }
  DeltaRecord rec;
  std::string_view verb = toks[0];
  if (verb == "add-node") {
    rec.op = DeltaOp::kAddNode;
  } else if (verb == "add-edge") {
    rec.op = DeltaOp::kAddEdge;
  } else if (verb == "rm-node") {
    rec.op = DeltaOp::kRemoveNode;
  } else if (verb == "rm-edge") {
    rec.op = DeltaOp::kRemoveEdge;
  } else {
    return Status::InvalidArgument(
        "unknown mutation op '" + std::string(verb) +
        "'; expected add-node|add-edge|rm-node|rm-edge");
  }

  if (rec.op == DeltaOp::kRemoveNode || rec.op == DeltaOp::kRemoveEdge) {
    // Removals take the name verbatim (names may contain '=').
    if (toks.size() != 2) {
      return Status::InvalidArgument(std::string(DeltaOpName(rec.op)) +
                                     " takes exactly one name");
    }
    rec.name = std::string(toks[1]);
    return rec;
  }

  std::vector<std::string_view> positional;
  bool saw_name_kv = false;
  for (size_t i = 1; i < toks.size(); ++i) {
    std::string_view t = toks[i];
    size_t eq = t.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      positional.push_back(t);
      continue;
    }
    std::string_view key = t.substr(0, eq);
    std::string_view val = t.substr(eq + 1);
    if (key == "label") {
      if (!rec.label.empty()) {
        return Status::InvalidArgument("duplicate label= in mutation");
      }
      rec.label = std::string(val);
    } else if (key == "name") {
      if (saw_name_kv) {
        return Status::InvalidArgument("duplicate name= in mutation");
      }
      saw_name_kv = true;
      rec.name = std::string(val);
    } else {
      rec.props.emplace_back(std::string(key), ParseValueToken(val));
    }
  }

  if (rec.op == DeltaOp::kAddNode) {
    if (positional.size() > 1) {
      return Status::InvalidArgument(
          "add-node takes at most one positional name");
    }
    if (!positional.empty()) {
      if (saw_name_kv) {
        return Status::InvalidArgument(
            "add-node given both a positional name and name=");
      }
      rec.name = std::string(positional[0]);
    }
  } else {  // kAddEdge
    if (positional.size() != 2) {
      return Status::InvalidArgument(
          "add-edge takes exactly two positional node names: add-edge "
          "<src> <dst> [label=L] [name=N] [key=value ...]");
    }
    rec.src = std::string(positional[0]);
    rec.dst = std::string(positional[1]);
  }
  return rec;
}

std::string FormatMutation(const DeltaRecord& rec) {
  std::string out(DeltaOpName(rec.op));
  switch (rec.op) {
    case DeltaOp::kRemoveNode:
    case DeltaOp::kRemoveEdge:
      out += ' ';
      out += rec.name;
      return out;
    case DeltaOp::kAddNode:
      // A name containing '=' would re-parse as a property in positional
      // form; it goes through `name=` below instead (the add-edge path).
      if (!rec.name.empty() &&
          rec.name.find('=') == std::string::npos) {
        out += ' ';
        out += rec.name;
      }
      break;
    case DeltaOp::kAddEdge:
      out += ' ';
      out += rec.src;
      out += ' ';
      out += rec.dst;
      break;
  }
  if (!rec.label.empty()) {
    out += " label=";
    out += rec.label;
  }
  if (!rec.name.empty() &&
      (rec.op == DeltaOp::kAddEdge ||
       (rec.op == DeltaOp::kAddNode &&
        rec.name.find('=') != std::string::npos))) {
    out += " name=";
    out += rec.name;
  }
  for (const auto& [key, value] : rec.props) {
    out += ' ';
    out += key;
    out += '=';
    out += FormatValueToken(value);
  }
  return out;
}

// ---------------------------------------------------------------------------
// DeltaState

DeltaState::DeltaState(std::shared_ptr<const PropertyGraph> base)
    : base_(std::move(base)),
      base_node_live_(base_->num_nodes(), true),
      base_edge_live_(base_->num_edges(), true),
      live_nodes_(base_->num_nodes()),
      live_edges_(base_->num_edges()) {}

Status DeltaState::Apply(DeltaRecord* rec) {
  Status st;
  switch (rec->op) {
    case DeltaOp::kAddNode:
      st = ApplyAddNode(rec);
      break;
    case DeltaOp::kAddEdge:
      st = ApplyAddEdge(rec);
      break;
    case DeltaOp::kRemoveNode:
      st = ApplyRemoveNode(*rec);
      break;
    case DeltaOp::kRemoveEdge:
      st = ApplyRemoveEdge(*rec);
      break;
  }
  if (st.ok()) records_.push_back(*rec);
  return st;
}

Result<DeltaRef> DeltaState::LookupNode(std::string_view name) const {
  auto it = added_node_by_name_.find(std::string(name));
  if (it != added_node_by_name_.end()) {
    return DeltaRef{/*added=*/true, it->second};
  }
  NodeId id = base_->FindNodeByName(name);
  if (id != kInvalidId && base_node_live_[id]) {
    return DeltaRef{/*added=*/false, id};
  }
  return Status::NotFound("no live node named '" + std::string(name) + "'");
}

Result<DeltaRef> DeltaState::LookupEdge(std::string_view name) const {
  auto it = added_edge_by_name_.find(std::string(name));
  if (it != added_edge_by_name_.end()) {
    return DeltaRef{/*added=*/true, it->second};
  }
  const_cast<DeltaState*>(this)->EnsureBaseEdgeNameIndex();
  auto bit = base_edge_name_index_.find(std::string(name));
  if (bit != base_edge_name_index_.end() && base_edge_live_[bit->second]) {
    return DeltaRef{/*added=*/false, bit->second};
  }
  return Status::NotFound("no live edge named '" + std::string(name) + "'");
}

void DeltaState::EnsureBaseEdgeNameIndex() {
  if (base_edge_name_index_built_) return;
  base_edge_name_index_built_ = true;
  const size_t n = base_->num_edges();
  base_edge_name_index_.reserve(n);
  for (EdgeId e = 0; e < n; ++e) {
    // First-wins on duplicate names, matching FindNodeByName for nodes.
    base_edge_name_index_.emplace(base_->EdgeName(e), e);
  }
}

Status DeltaState::ApplyAddNode(DeltaRecord* rec) {
  if (rec->name.empty()) {
    // Insertion-order auto name, GraphBuilder's scheme: one past every
    // node ever added (dead ones included — ids are never reused).
    rec->name =
        "n" + std::to_string(base_->num_nodes() + added_nodes_.size() + 1);
    if (LookupNode(rec->name).ok()) {
      return Status::InvalidArgument("auto node name '" + rec->name +
                                     "' is taken; pass an explicit name");
    }
  } else if (LookupNode(rec->name).ok()) {
    return Status::InvalidArgument("node '" + rec->name +
                                   "' already exists");
  }
  uint32_t index = static_cast<uint32_t>(added_nodes_.size());
  added_nodes_.push_back(AddedNode{rec->name, rec->label, rec->props, true});
  added_node_by_name_.emplace(rec->name, index);
  ++live_nodes_;
  return Status::OK();
}

Status DeltaState::ApplyAddEdge(DeltaRecord* rec) {
  Result<DeltaRef> src = LookupNode(rec->src);
  if (!src.ok()) return src.status();
  Result<DeltaRef> dst = LookupNode(rec->dst);
  if (!dst.ok()) return dst.status();
  if (rec->name.empty()) {
    rec->name =
        "e" + std::to_string(base_->num_edges() + added_edges_.size() + 1);
    if (LookupEdge(rec->name).ok()) {
      return Status::InvalidArgument("auto edge name '" + rec->name +
                                     "' is taken; pass an explicit name");
    }
  } else if (LookupEdge(rec->name).ok()) {
    return Status::InvalidArgument("edge '" + rec->name +
                                   "' already exists");
  }
  uint32_t index = static_cast<uint32_t>(added_edges_.size());
  added_edges_.push_back(AddedEdge{rec->name, rec->label, *src, *dst,
                                   rec->props, true});
  added_edge_by_name_.emplace(rec->name, index);
  ++live_edges_;
  return Status::OK();
}

void DeltaState::RemoveEdgeRef(const DeltaRef& ref) {
  if (ref.added) {
    AddedEdge& e = added_edges_[ref.index];
    if (!e.live) return;
    e.live = false;
    added_edge_by_name_.erase(e.name);
  } else {
    if (!base_edge_live_[ref.index]) return;
    base_edge_live_[ref.index] = false;
  }
  --live_edges_;
}

Status DeltaState::ApplyRemoveNode(const DeltaRecord& rec) {
  Result<DeltaRef> ref = LookupNode(rec.name);
  if (!ref.ok()) return ref.status();
  // Cascade: ρ is total on E, so every incident edge goes with the node.
  if (!ref->added) {
    NodeId id = ref->index;
    for (EdgeId e : base_->OutEdges(id)) {
      if (base_edge_live_[e]) RemoveEdgeRef(DeltaRef{false, e});
    }
    for (EdgeId e : base_->InEdges(id)) {
      if (base_edge_live_[e]) RemoveEdgeRef(DeltaRef{false, e});
    }
  }
  for (uint32_t i = 0; i < added_edges_.size(); ++i) {
    const AddedEdge& e = added_edges_[i];
    if (!e.live) continue;
    auto touches = [&](const DeltaRef& end) {
      return end.added == ref->added && end.index == ref->index;
    };
    if (touches(e.src) || touches(e.dst)) RemoveEdgeRef(DeltaRef{true, i});
  }
  if (ref->added) {
    added_nodes_[ref->index].live = false;
    added_node_by_name_.erase(rec.name);
  } else {
    base_node_live_[ref->index] = false;
  }
  --live_nodes_;
  return Status::OK();
}

Status DeltaState::ApplyRemoveEdge(const DeltaRecord& rec) {
  Result<DeltaRef> ref = LookupEdge(rec.name);
  if (!ref.ok()) return ref.status();
  RemoveEdgeRef(*ref);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Record serialization

std::string SerializeDeltaRecord(const DeltaRecord& rec) {
  std::string out;
  out.push_back(static_cast<char>(rec.op));
  PutStr(&out, rec.name);
  PutStr(&out, rec.label);
  PutStr(&out, rec.src);
  PutStr(&out, rec.dst);
  PutU32(&out, static_cast<uint32_t>(rec.props.size()));
  for (const auto& [key, value] : rec.props) {
    PutStr(&out, key);
    out.push_back(static_cast<char>(value.type()));
    switch (value.type()) {
      case Value::Type::kNull:
        break;
      case Value::Type::kBool:
        out.push_back(value.AsBool() ? 1 : 0);
        break;
      case Value::Type::kInt: {
        uint64_t bits = static_cast<uint64_t>(value.AsInt());
        PutU64(&out, bits);
        break;
      }
      case Value::Type::kDouble: {
        uint64_t bits = 0;
        double d = value.AsDouble();
        std::memcpy(&bits, &d, sizeof(bits));
        PutU64(&out, bits);
        break;
      }
      case Value::Type::kString:
        PutStr(&out, value.AsString());
        break;
    }
  }
  return out;
}

Result<DeltaRecord> ParseDeltaRecord(const void* data, size_t size) {
  Cursor c{static_cast<const unsigned char*>(data), size};
  DeltaRecord rec;
  uint8_t op = 0;
  if (!c.GetU8(&op)) return CorruptRecord();
  if (op < 1 || op > 4) return CorruptRecord();
  rec.op = static_cast<DeltaOp>(op);
  if (!c.GetStr(&rec.name) || !c.GetStr(&rec.label) ||
      !c.GetStr(&rec.src) || !c.GetStr(&rec.dst)) {
    return CorruptRecord();
  }
  uint32_t nprops = 0;
  if (!c.GetU32(&nprops)) return CorruptRecord();
  rec.props.reserve(nprops);
  for (uint32_t i = 0; i < nprops; ++i) {
    std::string key;
    uint8_t type = 0;
    if (!c.GetStr(&key) || !c.GetU8(&type)) return CorruptRecord();
    switch (static_cast<Value::Type>(type)) {
      case Value::Type::kNull:
        rec.props.emplace_back(std::move(key), Value());
        break;
      case Value::Type::kBool: {
        uint8_t b = 0;
        if (!c.GetU8(&b)) return CorruptRecord();
        rec.props.emplace_back(std::move(key), Value(b != 0));
        break;
      }
      case Value::Type::kInt: {
        uint64_t bits = 0;
        if (!c.GetU64(&bits)) return CorruptRecord();
        rec.props.emplace_back(std::move(key),
                               Value(static_cast<int64_t>(bits)));
        break;
      }
      case Value::Type::kDouble: {
        uint64_t bits = 0;
        if (!c.GetU64(&bits)) return CorruptRecord();
        double d = 0;
        std::memcpy(&d, &bits, sizeof(d));
        rec.props.emplace_back(std::move(key), Value(d));
        break;
      }
      case Value::Type::kString: {
        std::string s;
        if (!c.GetStr(&s)) return CorruptRecord();
        rec.props.emplace_back(std::move(key), Value(std::move(s)));
        break;
      }
      default:
        return CorruptRecord();
    }
  }
  if (c.left != 0) return CorruptRecord();
  return rec;
}

// ---------------------------------------------------------------------------
// DeltaJournal

DeltaJournal::~DeltaJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<DeltaJournal>> DeltaJournal::OpenForAppend(
    std::string path, uint64_t base_version) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open journal '" + path +
                                   "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::InvalidArgument("cannot stat journal '" + path + "'");
  }
  if (st.st_size == 0) {
    JournalHeader h{};
    std::memcpy(h.magic, kJournalMagic, sizeof(h.magic));
    h.version = kJournalVersion;
    h.base_version = base_version;
    if (::write(fd, &h, sizeof(h)) != sizeof(h) || ::fsync(fd) != 0) {
      ::close(fd);
      return Status::InvalidArgument("cannot initialize journal '" + path +
                                     "'");
    }
    return std::unique_ptr<DeltaJournal>(
        new DeltaJournal(std::move(path), fd));
  }
  // Existing journal: validate via ReadAll (which finds the valid
  // prefix), then truncate any torn tail before appending after it.
  Result<Contents> contents = ReadAll(path);
  if (!contents.ok()) {
    ::close(fd);
    return contents.status();
  }
  if (contents->base_version != base_version) {
    ::close(fd);
    return Status::InvalidArgument(
        "journal '" + path + "' is bound to a different base version");
  }
  off_t valid =
      static_cast<off_t>(st.st_size) -
      static_cast<off_t>(contents->dropped_bytes);
  if (contents->dropped_bytes != 0 &&
      (::ftruncate(fd, valid) != 0 || ::fsync(fd) != 0)) {
    ::close(fd);
    return Status::InvalidArgument("cannot truncate torn journal tail in '" +
                                   path + "'");
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return Status::InvalidArgument("cannot seek journal '" + path + "'");
  }
  return std::unique_ptr<DeltaJournal>(new DeltaJournal(std::move(path), fd));
}

Status DeltaJournal::Append(const DeltaRecord& rec) {
  std::string payload = SerializeDeltaRecord(rec);
  std::string frame;
  frame.reserve(16 + payload.size());
  PutU64(&frame, payload.size());
  PutU64(&frame, storage::Fnv1a64(payload.data(), payload.size()));
  frame += payload;
  size_t done = 0;
  while (done < frame.size()) {
    ssize_t n = ::write(fd_, frame.data() + done, frame.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("journal append failed on '" + path_ +
                              "': " + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    return Status::Internal("journal fsync failed on '" + path_ + "'");
  }
  return Status::OK();
}

Result<DeltaJournal::Contents> DeltaJournal::ReadAll(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no journal at '" + path + "'");
  }
  std::string buf;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buf.append(chunk, n);
  }
  std::fclose(f);
  if (buf.size() < sizeof(JournalHeader)) {
    return Status::InvalidArgument("journal '" + path +
                                   "' is shorter than its header");
  }
  JournalHeader h;
  std::memcpy(&h, buf.data(), sizeof(h));
  if (std::memcmp(h.magic, kJournalMagic, sizeof(h.magic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a delta journal");
  }
  if (h.version != kJournalVersion) {
    return Status::InvalidArgument("journal '" + path +
                                   "' has unsupported format version " +
                                   std::to_string(h.version));
  }
  Contents out;
  out.base_version = h.base_version;
  size_t pos = sizeof(JournalHeader);
  while (pos < buf.size()) {
    // A frame that does not fully check out — short header, payload past
    // EOF, checksum mismatch, unparseable payload — ends the valid
    // prefix: standard WAL torn-tail semantics.
    if (buf.size() - pos < 16) break;
    uint64_t payload_size = 0, checksum = 0;
    std::memcpy(&payload_size, buf.data() + pos, 8);
    std::memcpy(&checksum, buf.data() + pos + 8, 8);
    if (payload_size > buf.size() - pos - 16) break;
    const char* payload = buf.data() + pos + 16;
    if (storage::Fnv1a64(payload, payload_size) != checksum) break;
    Result<DeltaRecord> rec = ParseDeltaRecord(payload, payload_size);
    if (!rec.ok()) break;
    out.records.push_back(std::move(rec).value());
    pos += 16 + payload_size;
  }
  out.dropped_bytes = buf.size() - pos;
  return out;
}

Status DeltaJournal::WriteAll(const std::string& path, uint64_t base_version,
                              const std::vector<DeltaRecord>& records) {
  std::string buf;
  JournalHeader h{};
  std::memcpy(h.magic, kJournalMagic, sizeof(h.magic));
  h.version = kJournalVersion;
  h.base_version = base_version;
  buf.append(reinterpret_cast<const char*>(&h), sizeof(h));
  for (const DeltaRecord& rec : records) {
    std::string payload = SerializeDeltaRecord(rec);
    PutU64(&buf, payload.size());
    PutU64(&buf, storage::Fnv1a64(payload.data(), payload.size()));
    buf += payload;
  }
  return WriteBufferDurably(path, buf);
}

}  // namespace mutation
}  // namespace pathalg
