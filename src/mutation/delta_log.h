#ifndef PATHALG_MUTATION_DELTA_LOG_H_
#define PATHALG_MUTATION_DELTA_LOG_H_

/// \file delta_log.h
/// The mutation half of the live-graph subsystem: delta records, the one
/// mutation grammar shared by the `!mutate` session command and `.gqlw`
/// `# mutate` directives, the in-memory `DeltaState` that validates and
/// accumulates mutations over an immutable base `PropertyGraph`, and the
/// fsync'd on-disk `DeltaJournal` that makes acknowledged mutations
/// durable (crash recovery replays it over the last snapshot on disk).
///
/// Design constraints, in order:
///
///  - *The base graph is never touched.* A `PropertyGraph` is immutable
///    after build (shared across sessions by shared_ptr), so mutations
///    accumulate in a side structure — tombstone bitmaps over base
///    nodes/edges plus append-only arrays of added objects — and become
///    visible to queries only when `DeltaOverlayGraph::Apply`
///    (mutation/overlay.h) materializes the next version.
///
///  - *Records are self-contained and name-based.* Journal records refer
///    to nodes/edges by display name, never by dense id: compaction
///    renumbers ids, names survive it. Auto-assigned names ("n7"/"e12"
///    in GraphBuilder's insertion-order scheme) are resolved at apply
///    time and journalled resolved, so replay is order-deterministic.
///
///  - *Replay is exact.* `DeltaState` application is strictly sequential
///    and deterministic: replaying a journal over the same base version
///    reproduces the same state (the kill-and-recover tests pin that the
///    recovered `!version` id equals the pre-crash one).
///
/// Grammar (one line per mutation; tokens split on whitespace):
///
///   add-node [name] [label=L] [key=value ...]
///   add-edge <src> <dst> [label=L] [name=N] [key=value ...]
///   rm-node <name>
///   rm-edge <name>
///
/// `label=`/`name=` are reserved keys. `add-node` accepts its name
/// either positionally or as `name=N`; FormatMutation emits the
/// key-value form whenever the name contains '=', so a positional
/// re-parse cannot misread it as a property. Values type themselves:
/// int64 if the token parses fully as one, else double, else
/// true/false/null, else the raw string (so values cannot contain
/// whitespace — the protocol is line-oriented). `rm-node` cascades to
/// every incident edge, mirroring the paper's requirement that ρ stay
/// total on E.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/property_graph.h"
#include "graph/value.h"

namespace pathalg {
namespace mutation {

enum class DeltaOp : uint8_t {
  kAddNode = 1,
  kAddEdge = 2,
  kRemoveNode = 3,
  kRemoveEdge = 4,
};

/// Returns "add-node", "add-edge", "rm-node" or "rm-edge".
std::string_view DeltaOpName(DeltaOp op);

/// One mutation. Only the fields relevant to `op` are populated:
/// add-node: name (may be empty = auto), label, props.
/// add-edge: name (may be empty = auto), label, src, dst, props.
/// rm-node / rm-edge: name.
struct DeltaRecord {
  DeltaOp op = DeltaOp::kAddNode;
  std::string name;
  std::string label;
  std::string src;
  std::string dst;
  std::vector<std::pair<std::string, Value>> props;

  bool operator==(const DeltaRecord& other) const;
  bool operator!=(const DeltaRecord& other) const {
    return !(*this == other);
  }
};

/// Parses one mutation command (the text after `!mutate ` / `# mutate `).
Result<DeltaRecord> ParseMutationCommand(std::string_view text);

/// Renders `rec` back into the grammar above. Round-trip stable:
/// Parse(Format(r)) == r for every record Parse can produce.
std::string FormatMutation(const DeltaRecord& rec);

/// Reference to a node/edge in a DeltaState: either a base-graph id or an
/// index into the added-object array.
struct DeltaRef {
  bool added = false;
  uint32_t index = 0;
};

/// Validated, applied mutations over one immutable base graph. Owner
/// provides synchronization (LiveGraph serializes writers); DeltaState
/// itself is single-writer.
class DeltaState {
 public:
  struct AddedNode {
    std::string name;
    std::string label;
    std::vector<std::pair<std::string, Value>> props;
    bool live = true;
  };
  struct AddedEdge {
    std::string name;
    std::string label;
    DeltaRef src;
    DeltaRef dst;
    std::vector<std::pair<std::string, Value>> props;
    bool live = true;
  };

  explicit DeltaState(std::shared_ptr<const PropertyGraph> base);

  /// Validates `*rec` against the current state and applies it. Empty
  /// add names are resolved in place (insertion-order "n<k>"/"e<k>"), so
  /// the caller journals the resolved record. On error the state is
  /// unchanged.
  Status Apply(DeltaRecord* rec);

  const PropertyGraph& base() const { return *base_; }
  const std::shared_ptr<const PropertyGraph>& shared_base() const {
    return base_;
  }

  /// Applied records, in order (the journal tail for compaction).
  const std::vector<DeltaRecord>& records() const { return records_; }
  size_t num_records() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Tombstone bitmaps over the base (true = survives).
  const std::vector<bool>& base_node_live() const { return base_node_live_; }
  const std::vector<bool>& base_edge_live() const { return base_edge_live_; }
  const std::vector<AddedNode>& added_nodes() const { return added_nodes_; }
  const std::vector<AddedEdge>& added_edges() const { return added_edges_; }

  /// Live object counts of the merged graph this state denotes.
  size_t live_node_count() const { return live_nodes_; }
  size_t live_edge_count() const { return live_edges_; }

  /// Resolves a display name to a live node/edge; !found.ok() when the
  /// name does not denote a live object.
  Result<DeltaRef> LookupNode(std::string_view name) const;
  Result<DeltaRef> LookupEdge(std::string_view name) const;

 private:
  Status ApplyAddNode(DeltaRecord* rec);
  Status ApplyAddEdge(DeltaRecord* rec);
  Status ApplyRemoveNode(const DeltaRecord& rec);
  Status ApplyRemoveEdge(const DeltaRecord& rec);
  void RemoveEdgeRef(const DeltaRef& ref);
  /// Builds base_edge_name_index_ on first use (rm-edge / explicit edge
  /// names); first-wins on duplicate base edge names, matching
  /// FindNodeByName's behavior for nodes.
  void EnsureBaseEdgeNameIndex();

  std::shared_ptr<const PropertyGraph> base_;
  std::vector<DeltaRecord> records_;
  std::vector<bool> base_node_live_;
  std::vector<bool> base_edge_live_;
  std::vector<AddedNode> added_nodes_;
  std::vector<AddedEdge> added_edges_;
  size_t live_nodes_ = 0;
  size_t live_edges_ = 0;
  /// Name lookup side tables. Lookup-only (never iterated into ordered
  /// output — enumeration goes through the vectors above).
  std::unordered_map<std::string, uint32_t> added_node_by_name_;
  std::unordered_map<std::string, uint32_t> added_edge_by_name_;
  std::unordered_map<std::string, EdgeId> base_edge_name_index_;
  bool base_edge_name_index_built_ = false;
};

/// Append-only on-disk journal of DeltaRecords, bound to one base-graph
/// version. Layout (all integers little-endian host width):
///
///   [8]  magic "PALGDLOG"
///   u32  format version (1)
///   u32  reserved (0)
///   u64  base_version  — SnapshotWriter::VersionId of the base graph
///   then per record: [u64 payload_size][u64 fnv1a64(payload)][payload]
///
/// Appends are fsync'd before Mutate acknowledges, so an acknowledged
/// mutation survives a crash. A torn tail (crash mid-append) or a
/// corrupt frame invalidates that record and everything after it — the
/// prefix before it replays normally and `Contents::dropped_bytes`
/// reports what was cut.
class DeltaJournal {
 public:
  ~DeltaJournal();
  DeltaJournal(const DeltaJournal&) = delete;
  DeltaJournal& operator=(const DeltaJournal&) = delete;

  /// Opens `path` for appending, creating it (header only) if absent.
  /// An existing file is validated: the header's base_version must equal
  /// `base_version`, and a torn tail is truncated away before the first
  /// append.
  static Result<std::unique_ptr<DeltaJournal>> OpenForAppend(
      std::string path, uint64_t base_version);

  /// Appends one framed record and fsyncs.
  Status Append(const DeltaRecord& rec);

  const std::string& path() const { return path_; }

  struct Contents {
    uint64_t base_version = 0;
    std::vector<DeltaRecord> records;
    /// Bytes dropped off the tail (torn append / corrupt frame); 0 for a
    /// cleanly closed journal.
    uint64_t dropped_bytes = 0;
  };
  /// Reads every valid record. Fails only on missing file / bad header;
  /// tail damage is tolerated and reported via dropped_bytes.
  static Result<Contents> ReadAll(const std::string& path);

  /// Writes a complete journal (header + records) atomically via a
  /// same-directory temp file + rename + fsync. Compaction uses this to
  /// emit the next base version's tail journal.
  static Status WriteAll(const std::string& path, uint64_t base_version,
                         const std::vector<DeltaRecord>& records);

 private:
  DeltaJournal(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
};

/// Serialized frame payload for one record (exposed for tests that build
/// corrupt journals byte by byte).
std::string SerializeDeltaRecord(const DeltaRecord& rec);
Result<DeltaRecord> ParseDeltaRecord(const void* data, size_t size);

/// Durable-file primitives shared by the journal and the compaction
/// publication path. WriteFileDurably creates/truncates `path`, writes
/// `data` and fsyncs before closing — the bytes survive a crash, but the
/// file is not yet published. RenameDurably renames `from` over `to` and
/// fsyncs the destination directory, making the rename itself durable
/// (filesystems that refuse directory fsync are tolerated; rename
/// atomicity still holds there).
Status WriteFileDurably(const std::string& path, const std::string& data);
Status RenameDurably(const std::string& from, const std::string& to);

}  // namespace mutation
}  // namespace pathalg

#endif  // PATHALG_MUTATION_DELTA_LOG_H_
