#ifndef PATHALG_MUTATION_LIVE_GRAPH_H_
#define PATHALG_MUTATION_LIVE_GRAPH_H_

/// \file live_graph.h
/// One mutable graph identity: an immutable base version + the delta
/// accumulated on top of it, publishing immutable `PropertyGraph`
/// versions to readers. The server's GraphCatalog holds one LiveGraph
/// per mutable catalog entry; sessions call `Current()` before each
/// query and keep whatever version they got pinned by shared_ptr for the
/// query's duration — MVCC falls out of the catalog's existing sharing
/// model, no reader locks anywhere on the query path.
///
/// Write path (`Mutate`): validate + apply to the DeltaState, append the
/// resolved record to the fsync'd journal (durability point — a mutation
/// is acknowledged only once it would survive a crash), invalidate the
/// cached current version. Writers are serialized per graph by the
/// annotated mutex; queries never take it (they hold a shared_ptr).
/// A failed journal append rolls the record back out of the DeltaState
/// (published versions never show a mutation the client saw ERR for) and
/// poisons the write path: the file tail and fd are suspect after a
/// failed append, so further Mutate/Compact calls are refused — the
/// graph stays readable, and a restart recovers the durable prefix. The
/// same poisoning applies if compaction loses the journal mid-swap;
/// acknowledged-implies-durable holds at every instant either way.
///
/// Versions: `Current()` materializes (base + delta) via
/// `DeltaOverlayGraph::Apply` at most once per delta generation;
/// `VersionId()` is the content-addressed snapshot checksum
/// (SnapshotWriter::VersionId) of that version, reported by `!version`.
///
/// Compaction folds the whole delta into the next on-disk base snapshot
/// and resets the journal, keeping recovery O(tail) instead of O(all
/// mutations ever). It runs synchronously via `Compact()` (tests, and
/// the write path when `compact_threshold` is crossed with no pool) or
/// detached on the shared ThreadPool. Either way it is phased so queries
/// (which take mu_ briefly in Current()) and writers are never blocked
/// behind the fold: the delta is pinned under the mutex, the serialize +
/// fsync'd writes run unlocked against the immutable materialized
/// version, and the mutex is re-taken only for the cheap renames — the
/// swap is abandoned and refolded if a writer advanced the delta
/// meanwhile (delta generation check). Crash-safe publication order:
///
///   1. write journal.next  — tail records, bound to the *new* version,
///      fsync'd (the base image lands durably at base.snap.tmp too,
///      unpublished until step 2)
///   2. rename base.snap    — the new base becomes durable (fsync'd
///      rename via RenameDurably)
///   3. rename journal.next → journal
///
/// Recovery (`Open`) inverts it: a journal whose base_version matches
/// the on-disk base replays directly; on mismatch, journal.next is
/// promoted if *it* matches (crash between 2 and 3); otherwise the
/// journal is quarantined aside as `<journal>.stale` — never silently
/// deleted — and counted. Every acknowledged mutation is therefore in
/// the durable base or in whichever journal matches it, at every instant.

#include <cstdint>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "graph/property_graph.h"
#include "mutation/delta_log.h"

namespace pathalg {
namespace mutation {

struct LiveGraphOptions {
  /// On-disk journal path; empty = in-memory only (no durability, no
  /// recovery — bench/test mode).
  std::string journal_path;
  /// Where compaction writes the next base snapshot. Empty disables
  /// compaction (the delta only grows until process exit).
  std::string base_snapshot_path;
  /// Pending mutations that trigger a compaction after a Mutate; 0 =
  /// only explicit Compact() calls.
  size_t compact_threshold = 0;
  /// Run threshold-triggered compactions detached on the shared
  /// ThreadPool instead of inline on the mutating session's thread.
  bool background_compaction = false;
};

struct LiveGraphCounters {
  uint64_t mutations_applied = 0;
  uint64_t mutations_rejected = 0;
  /// Records applied since the last compaction (journal tail length).
  uint64_t pending = 0;
  uint64_t compactions = 0;
  /// Versions materialized by Current() (cache misses of the overlay).
  uint64_t materializations = 0;
  /// Journal records replayed by Open() recovery.
  uint64_t recovered_records = 0;
  /// Journals quarantined aside because they were bound to a different
  /// base version than the one on disk.
  uint64_t stale_journals = 0;
};

class LiveGraph : public std::enable_shared_from_this<LiveGraph> {
 public:
  /// Opens a live graph over `base`, running crash recovery against
  /// `options.journal_path` (replay / promote / quarantine as described
  /// above). `base` must be the graph loaded from
  /// `options.base_snapshot_path` when that file exists, else the
  /// deterministic from-spec build; `base_version_hint` short-circuits
  /// the O(serialize) version-id computation when the caller probed the
  /// snapshot header (0 = compute).
  static Result<std::shared_ptr<LiveGraph>> Open(
      std::shared_ptr<const PropertyGraph> base, LiveGraphOptions options,
      uint64_t base_version_hint = 0);

  /// Validates and applies one mutation, journalling the resolved record
  /// before acknowledging. `resolved`, when non-null, receives the
  /// record with auto names filled in (the `!mutate` OK line echoes it).
  /// May trigger compaction per LiveGraphOptions. Fails without applying
  /// once the journal is poisoned (failed append or lost swap — see file
  /// header); the graph is then read-only until reopened.
  Status Mutate(const DeltaRecord& rec, DeltaRecord* resolved = nullptr);

  /// The current published version. Readers hold the shared_ptr for as
  /// long as they need a stable view; later mutations never touch
  /// already-returned versions.
  std::shared_ptr<const PropertyGraph> Current();

  /// Content-addressed id of Current() (the `!version` surface).
  uint64_t VersionId();

  /// Folds the delta into the next base snapshot + journal reset
  /// (no-op when the delta is empty or base_snapshot_path is unset).
  Status Compact();

  /// True while a detached compaction is queued/running (test sync).
  bool compaction_in_flight() const;

  LiveGraphCounters counters() const;

 private:
  LiveGraph(std::shared_ptr<const PropertyGraph> base,
            LiveGraphOptions options, uint64_t base_version);

  std::shared_ptr<const PropertyGraph> EnsureCurrentLocked()
      PA_REQUIRES(mu_);
  /// The phased fold described in the file header. Takes mu_ itself (in
  /// two short critical sections); must be called unlocked.
  Status CompactImpl() PA_EXCLUDES(mu_);
  /// Returns true when the caller should run CompactImpl inline after
  /// releasing mu_ (threshold crossed, no background pool); schedules
  /// the detached variant itself otherwise.
  bool MaybeScheduleCompactionLocked() PA_REQUIRES(mu_);
  /// Rebuilds state_ without its most recent record (deterministic
  /// replay of the surviving prefix) after a failed journal append.
  void RollbackLastRecordLocked() PA_REQUIRES(mu_);

  const LiveGraphOptions options_;

  mutable Mutex mu_;
  std::shared_ptr<const PropertyGraph> base_ PA_GUARDED_BY(mu_);
  uint64_t base_version_ PA_GUARDED_BY(mu_);
  std::unique_ptr<DeltaState> state_ PA_GUARDED_BY(mu_);
  std::unique_ptr<DeltaJournal> journal_ PA_GUARDED_BY(mu_);
  /// Cache of the materialized current version; null = dirty. When the
  /// delta is empty this aliases base_.
  std::shared_ptr<const PropertyGraph> current_ PA_GUARDED_BY(mu_);
  /// Version id of current_; 0 = not yet computed for this version.
  uint64_t version_id_ PA_GUARDED_BY(mu_) = 0;
  /// Bumped on every applied mutation; compaction pins it under the
  /// mutex before folding unlocked and abandons the swap on mismatch.
  uint64_t delta_generation_ PA_GUARDED_BY(mu_) = 0;
  /// True after a failed journal append or a failed journal swap: disk
  /// can no longer track acknowledgements, so writes are refused (the
  /// graph stays readable; reopening recovers the durable prefix).
  bool journal_failed_ PA_GUARDED_BY(mu_) = false;
  bool compaction_in_flight_ PA_GUARDED_BY(mu_) = false;
  LiveGraphCounters counters_ PA_GUARDED_BY(mu_);
};

}  // namespace mutation
}  // namespace pathalg

#endif  // PATHALG_MUTATION_LIVE_GRAPH_H_
