#include "mutation/live_graph.h"

#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "mutation/overlay.h"
#include "storage/snapshot_format.h"
#include "storage/snapshot_writer.h"

namespace pathalg {
namespace mutation {

namespace {

uint64_t VersionIdOfImage(const std::string& image) {
  storage::SnapshotHeader h;
  std::memcpy(&h, image.data(), sizeof(h));
  return h.table_checksum;
}

Status JournalFailedError() {
  return Status::Internal(
      "journal unavailable after a failed append or swap; the live graph "
      "is read-only (reopen to recover the durable state)");
}

}  // namespace

LiveGraph::LiveGraph(std::shared_ptr<const PropertyGraph> base,
                     LiveGraphOptions options, uint64_t base_version)
    : options_(std::move(options)),
      base_(std::move(base)),
      base_version_(base_version),
      state_(std::make_unique<DeltaState>(base_)) {}

Result<std::shared_ptr<LiveGraph>> LiveGraph::Open(
    std::shared_ptr<const PropertyGraph> base, LiveGraphOptions options,
    uint64_t base_version_hint) {
  uint64_t base_version = base_version_hint != 0
                              ? base_version_hint
                              : storage::SnapshotWriter::VersionId(*base);
  std::shared_ptr<LiveGraph> lg(
      new LiveGraph(std::move(base), std::move(options), base_version));
  const std::string& jpath = lg->options_.journal_path;
  if (jpath.empty()) return lg;

  MutexLock lock(lg->mu_);
  const std::string next_path = jpath + ".next";
  Result<DeltaJournal::Contents> journal = DeltaJournal::ReadAll(jpath);
  bool replay_ready = journal.ok() && journal->base_version == base_version;
  if (!replay_ready) {
    // The journal is absent or bound to another version. A compaction
    // that crashed between publishing the new base and swapping journals
    // left the matching journal at `<journal>.next` — promote it. Any
    // non-matching journal is quarantined aside, never deleted.
    Result<DeltaJournal::Contents> next = DeltaJournal::ReadAll(next_path);
    bool promote = next.ok() && next->base_version == base_version;
    if (journal.ok() || journal.status().IsInvalidArgument()) {
      std::rename(jpath.c_str(), (jpath + ".stale").c_str());
      ++lg->counters_.stale_journals;
    }
    if (promote) {
      if (std::rename(next_path.c_str(), jpath.c_str()) != 0) {
        return Status::InvalidArgument("cannot promote journal '" +
                                       next_path + "'");
      }
      journal = std::move(next);
      replay_ready = true;
    } else {
      std::rename(next_path.c_str(), (next_path + ".stale").c_str());
    }
  } else {
    // Normal open: a leftover .next (crash before the base rename) holds
    // a subset of the journal's records — redundant, drop it.
    std::remove(next_path.c_str());
  }

  if (replay_ready) {
    for (const DeltaRecord& rec : journal->records) {
      DeltaRecord copy = rec;
      Status applied = lg->state_->Apply(&copy);
      if (!applied.ok()) {
        return Status::Internal("journal replay failed on '" +
                                FormatMutation(rec) +
                                "': " + applied.ToString());
      }
      ++lg->counters_.recovered_records;
    }
  }
  PATHALG_ASSIGN_OR_RETURN(lg->journal_,
                           DeltaJournal::OpenForAppend(jpath, base_version));
  return lg;
}

Status LiveGraph::Mutate(const DeltaRecord& rec, DeltaRecord* resolved) {
  bool compact_inline = false;
  {
    MutexLock lock(mu_);
    if (journal_failed_ ||
        (!options_.journal_path.empty() && journal_ == nullptr)) {
      ++counters_.mutations_rejected;
      return JournalFailedError();
    }
    DeltaRecord r = rec;
    Status applied = state_->Apply(&r);
    if (!applied.ok()) {
      ++counters_.mutations_rejected;
      return applied;
    }
    if (journal_ != nullptr) {
      // Durability point. On append failure the fd and file tail are
      // suspect (a torn frame may be on disk), so the write path is
      // poisoned, and the record is rolled back out of memory so no
      // published version ever shows a mutation the client saw ERR for.
      Status logged = journal_->Append(r);
      if (!logged.ok()) {
        journal_failed_ = true;
        RollbackLastRecordLocked();
        ++counters_.mutations_rejected;
        return logged;
      }
    }
    ++counters_.mutations_applied;
    ++delta_generation_;
    current_.reset();
    version_id_ = 0;
    if (resolved != nullptr) *resolved = r;
    compact_inline = MaybeScheduleCompactionLocked();
  }
  if (compact_inline) {
    (void)CompactImpl();  // failure leaves the delta pending
    MutexLock lock(mu_);
    compaction_in_flight_ = false;
  }
  return Status::OK();
}

void LiveGraph::RollbackLastRecordLocked() {
  std::vector<DeltaRecord> keep = state_->records();
  if (keep.empty()) return;
  keep.pop_back();
  auto fresh = std::make_unique<DeltaState>(state_->shared_base());
  for (DeltaRecord& r : keep) {
    // Replay of previously-accepted records over the same base is
    // deterministic; a failure here would mean DeltaState broke its own
    // contract, in which case the poisoned-for-writes state above
    // already keeps the phantom out of any future published version.
    if (!fresh->Apply(&r).ok()) return;
  }
  state_ = std::move(fresh);
}

std::shared_ptr<const PropertyGraph> LiveGraph::Current() {
  MutexLock lock(mu_);
  return EnsureCurrentLocked();
}

std::shared_ptr<const PropertyGraph> LiveGraph::EnsureCurrentLocked() {
  if (current_ != nullptr) return current_;
  if (state_->empty()) {
    current_ = base_;
    version_id_ = base_version_;
  } else {
    current_ = std::make_shared<const PropertyGraph>(
        DeltaOverlayGraph::Apply(*state_));
    ++counters_.materializations;
  }
  return current_;
}

uint64_t LiveGraph::VersionId() {
  MutexLock lock(mu_);
  std::shared_ptr<const PropertyGraph> cur = EnsureCurrentLocked();
  if (version_id_ == 0) {
    version_id_ = storage::SnapshotWriter::VersionId(*cur);
  }
  return version_id_;
}

bool LiveGraph::MaybeScheduleCompactionLocked() {
  if (options_.compact_threshold == 0 ||
      options_.base_snapshot_path.empty() || compaction_in_flight_ ||
      state_->num_records() < options_.compact_threshold) {
    return false;
  }
  compaction_in_flight_ = true;
  if (options_.background_compaction) {
    std::shared_ptr<LiveGraph> self = shared_from_this();
    ThreadPool::Shared().Submit([self] {
      (void)self->CompactImpl();  // failure leaves the delta pending
      MutexLock lock(self->mu_);
      self->compaction_in_flight_ = false;
    });
    return false;
  }
  return true;  // caller folds inline once it has released mu_
}

Status LiveGraph::Compact() { return CompactImpl(); }

Status LiveGraph::CompactImpl() {
  // A writer advancing the delta while the fold runs unlocked
  // invalidates the serialized image; refold against the new state a
  // bounded number of times, then give up and leave the delta pending
  // (the next Mutate past the threshold reschedules).
  for (int attempt = 0; attempt < 3; ++attempt) {
    std::shared_ptr<const PropertyGraph> next;
    uint64_t parent_version = 0;
    uint64_t folded_generation = 0;
    {
      MutexLock lock(mu_);
      if (journal_failed_) return JournalFailedError();
      if (state_->empty()) return Status::OK();
      if (options_.base_snapshot_path.empty()) {
        return Status::InvalidArgument(
            "compaction disabled: no base snapshot path configured");
      }
      next = EnsureCurrentLocked();
      parent_version = base_version_;
      folded_generation = delta_generation_;
    }
    // Serialization and the fsync'd writes run unlocked: `next` is
    // immutable, so queries refreshing via Current() and new writers
    // proceed while the image lands on disk. One serialization yields
    // the new version id, the journal binding and the bytes published
    // (parent chained to the version being folded away).
    std::string image =
        storage::SnapshotWriter::Serialize(*next, parent_version);
    uint64_t next_version = VersionIdOfImage(image);
    const std::string tmp = options_.base_snapshot_path + ".tmp";
    // Crash-safe order (see live_graph.h): tail journal for the new
    // version first, then the base image (unpublished at .tmp), then —
    // under the mutex — the renames and the journal swap.
    if (!options_.journal_path.empty()) {
      PATHALG_RETURN_NOT_OK(DeltaJournal::WriteAll(
          options_.journal_path + ".next", next_version, {}));
    }
    PATHALG_RETURN_NOT_OK(WriteFileDurably(tmp, image));

    MutexLock lock(mu_);
    if (journal_failed_) {
      std::remove(tmp.c_str());
      return JournalFailedError();
    }
    if (delta_generation_ != folded_generation ||
        base_version_ != parent_version) {
      // A writer (or a concurrent explicit Compact) advanced the state;
      // the image no longer folds the full delta. Leftover .tmp/.next
      // files are rewritten by the retry and ignored by recovery.
      std::remove(tmp.c_str());
      continue;
    }
    PATHALG_RETURN_NOT_OK(
        RenameDurably(tmp, options_.base_snapshot_path));
    if (!options_.journal_path.empty()) {
      journal_.reset();  // close the old fd before renaming over its file
      Status swapped = RenameDurably(options_.journal_path + ".next",
                                     options_.journal_path);
      if (!swapped.ok()) {
        // journal_ is gone; mutations could only be acknowledged
        // unjournalled from here, so poison the write path (Mutate and
        // further compactions refuse; reads continue).
        journal_failed_ = true;
        return swapped;
      }
      Result<std::unique_ptr<DeltaJournal>> reopened =
          DeltaJournal::OpenForAppend(options_.journal_path, next_version);
      if (!reopened.ok()) {
        journal_failed_ = true;
        return reopened.status();
      }
      journal_ = std::move(reopened).value();
    }

    base_ = next;
    base_version_ = next_version;
    state_ = std::make_unique<DeltaState>(base_);
    current_ = next;
    version_id_ = next_version;
    ++counters_.compactions;
    return Status::OK();
  }
  return Status::ResourceExhausted(
      "compaction kept losing the race against concurrent mutations; "
      "delta left pending");
}

bool LiveGraph::compaction_in_flight() const {
  MutexLock lock(mu_);
  return compaction_in_flight_;
}

LiveGraphCounters LiveGraph::counters() const {
  MutexLock lock(mu_);
  LiveGraphCounters out = counters_;
  out.pending = state_->num_records();
  return out;
}

}  // namespace mutation
}  // namespace pathalg
