#include "mutation/live_graph.h"

#include <cstdio>
#include <utility>

#include "common/thread_pool.h"
#include "mutation/overlay.h"
#include "storage/snapshot_format.h"
#include "storage/snapshot_writer.h"

namespace pathalg {
namespace mutation {

namespace {

/// tmp + rename, same idiom as SnapshotWriter::Write but over an image we
/// already hold (compaction serializes once: the image yields both the
/// new version id and the bytes on disk).
Status WriteImageAtomic(const std::string& path, const std::string& image) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot create snapshot file '" + tmp +
                                   "'");
  }
  size_t written =
      image.empty() ? 0 : std::fwrite(image.data(), 1, image.size(), f);
  bool flushed = std::fclose(f) == 0;
  if (written != image.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::InvalidArgument("short write on snapshot file '" + tmp +
                                   "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::InvalidArgument("cannot move snapshot into place at '" +
                                   path + "'");
  }
  return Status::OK();
}

uint64_t VersionIdOfImage(const std::string& image) {
  storage::SnapshotHeader h;
  std::memcpy(&h, image.data(), sizeof(h));
  return h.table_checksum;
}

}  // namespace

LiveGraph::LiveGraph(std::shared_ptr<const PropertyGraph> base,
                     LiveGraphOptions options, uint64_t base_version)
    : options_(std::move(options)),
      base_(std::move(base)),
      base_version_(base_version),
      state_(std::make_unique<DeltaState>(base_)) {}

Result<std::shared_ptr<LiveGraph>> LiveGraph::Open(
    std::shared_ptr<const PropertyGraph> base, LiveGraphOptions options,
    uint64_t base_version_hint) {
  uint64_t base_version = base_version_hint != 0
                              ? base_version_hint
                              : storage::SnapshotWriter::VersionId(*base);
  std::shared_ptr<LiveGraph> lg(
      new LiveGraph(std::move(base), std::move(options), base_version));
  const std::string& jpath = lg->options_.journal_path;
  if (jpath.empty()) return lg;

  MutexLock lock(lg->mu_);
  const std::string next_path = jpath + ".next";
  Result<DeltaJournal::Contents> journal = DeltaJournal::ReadAll(jpath);
  bool replay_ready = journal.ok() && journal->base_version == base_version;
  if (!replay_ready) {
    // The journal is absent or bound to another version. A compaction
    // that crashed between publishing the new base and swapping journals
    // left the matching journal at `<journal>.next` — promote it. Any
    // non-matching journal is quarantined aside, never deleted.
    Result<DeltaJournal::Contents> next = DeltaJournal::ReadAll(next_path);
    bool promote = next.ok() && next->base_version == base_version;
    if (journal.ok() || journal.status().IsInvalidArgument()) {
      std::rename(jpath.c_str(), (jpath + ".stale").c_str());
      ++lg->counters_.stale_journals;
    }
    if (promote) {
      if (std::rename(next_path.c_str(), jpath.c_str()) != 0) {
        return Status::InvalidArgument("cannot promote journal '" +
                                       next_path + "'");
      }
      journal = std::move(next);
      replay_ready = true;
    } else {
      std::rename(next_path.c_str(), (next_path + ".stale").c_str());
    }
  } else {
    // Normal open: a leftover .next (crash before the base rename) holds
    // a subset of the journal's records — redundant, drop it.
    std::remove(next_path.c_str());
  }

  if (replay_ready) {
    for (const DeltaRecord& rec : journal->records) {
      DeltaRecord copy = rec;
      Status applied = lg->state_->Apply(&copy);
      if (!applied.ok()) {
        return Status::Internal("journal replay failed on '" +
                                FormatMutation(rec) +
                                "': " + applied.ToString());
      }
      ++lg->counters_.recovered_records;
    }
  }
  PATHALG_ASSIGN_OR_RETURN(lg->journal_,
                           DeltaJournal::OpenForAppend(jpath, base_version));
  return lg;
}

Status LiveGraph::Mutate(const DeltaRecord& rec, DeltaRecord* resolved) {
  MutexLock lock(mu_);
  DeltaRecord r = rec;
  Status applied = state_->Apply(&r);
  if (!applied.ok()) {
    ++counters_.mutations_rejected;
    return applied;
  }
  if (journal_ != nullptr) {
    // Durability point. On append failure the in-memory state is ahead
    // of disk; surfacing the error (instead of silently continuing)
    // lets the operator fail the session before acknowledging.
    Status logged = journal_->Append(r);
    if (!logged.ok()) return logged;
  }
  ++counters_.mutations_applied;
  current_.reset();
  version_id_ = 0;
  if (resolved != nullptr) *resolved = r;
  MaybeScheduleCompactionLocked();
  return Status::OK();
}

std::shared_ptr<const PropertyGraph> LiveGraph::Current() {
  MutexLock lock(mu_);
  return EnsureCurrentLocked();
}

std::shared_ptr<const PropertyGraph> LiveGraph::EnsureCurrentLocked() {
  if (current_ != nullptr) return current_;
  if (state_->empty()) {
    current_ = base_;
    version_id_ = base_version_;
  } else {
    current_ = std::make_shared<const PropertyGraph>(
        DeltaOverlayGraph::Apply(*state_));
    ++counters_.materializations;
  }
  return current_;
}

uint64_t LiveGraph::VersionId() {
  MutexLock lock(mu_);
  std::shared_ptr<const PropertyGraph> cur = EnsureCurrentLocked();
  if (version_id_ == 0) {
    version_id_ = storage::SnapshotWriter::VersionId(*cur);
  }
  return version_id_;
}

void LiveGraph::MaybeScheduleCompactionLocked() {
  if (options_.compact_threshold == 0 ||
      options_.base_snapshot_path.empty() || compaction_in_flight_ ||
      state_->num_records() < options_.compact_threshold) {
    return;
  }
  compaction_in_flight_ = true;
  if (options_.background_compaction) {
    std::shared_ptr<LiveGraph> self = shared_from_this();
    ThreadPool::Shared().Submit([self] {
      MutexLock lock(self->mu_);
      (void)self->CompactLocked();  // failure leaves the delta pending
      self->compaction_in_flight_ = false;
    });
  } else {
    (void)CompactLocked();
    compaction_in_flight_ = false;
  }
}

Status LiveGraph::Compact() {
  MutexLock lock(mu_);
  return CompactLocked();
}

Status LiveGraph::CompactLocked() {
  if (state_->empty()) return Status::OK();
  if (options_.base_snapshot_path.empty()) {
    return Status::InvalidArgument(
        "compaction disabled: no base snapshot path configured");
  }
  std::shared_ptr<const PropertyGraph> next = EnsureCurrentLocked();
  // One serialization yields the new version id, the journal binding and
  // the bytes published on disk (parent chained to the version being
  // folded away).
  std::string image = storage::SnapshotWriter::Serialize(*next, base_version_);
  uint64_t next_version = VersionIdOfImage(image);

  // Crash-safe order (see live_graph.h): tail journal for the new
  // version first, then the base, then the journal swap. The mutex is
  // held throughout, so the delta cannot grow mid-fold and the new
  // journal is always empty.
  if (!options_.journal_path.empty()) {
    PATHALG_RETURN_NOT_OK(DeltaJournal::WriteAll(
        options_.journal_path + ".next", next_version, {}));
  }
  PATHALG_RETURN_NOT_OK(WriteImageAtomic(options_.base_snapshot_path, image));
  if (!options_.journal_path.empty()) {
    journal_.reset();  // close the old fd before renaming over its file
    if (std::rename((options_.journal_path + ".next").c_str(),
                    options_.journal_path.c_str()) != 0) {
      return Status::InvalidArgument("cannot swap journal at '" +
                                     options_.journal_path + "'");
    }
    PATHALG_ASSIGN_OR_RETURN(
        journal_,
        DeltaJournal::OpenForAppend(options_.journal_path, next_version));
  }

  base_ = next;
  base_version_ = next_version;
  state_ = std::make_unique<DeltaState>(base_);
  current_ = next;
  version_id_ = next_version;
  ++counters_.compactions;
  return Status::OK();
}

bool LiveGraph::compaction_in_flight() const {
  MutexLock lock(mu_);
  return compaction_in_flight_;
}

LiveGraphCounters LiveGraph::counters() const {
  MutexLock lock(mu_);
  LiveGraphCounters out = counters_;
  out.pending = state_->num_records();
  return out;
}

}  // namespace mutation
}  // namespace pathalg
