#ifndef PATHALG_BASELINE_AUTOMATON_EVAL_H_
#define PATHALG_BASELINE_AUTOMATON_EVAL_H_

/// \file automaton_eval.h
/// The classical automaton-based RPQ evaluator (§8.2): traverses the
/// product of the graph with the regex NFA and returns *whole paths* under
/// a restrictor semantics. This is the independent comparator for the
/// algebra: differential tests check algebra plans against it, and
/// bench/algebra_vs_automaton compares their performance.
///
/// Semantics note: this evaluator applies the restrictor to the whole path
/// (GQL's reading). For query shapes where the paper's per-ϕ reading
/// coincides (a closure at the top of each union branch — all the paper's
/// examples), results match the algebra exactly.

#include <optional>

#include "algebra/recursive.h"
#include "common/result.h"
#include "graph/property_graph.h"
#include "path/path_set.h"
#include "regex/ast.h"

namespace pathalg {

struct AutomatonEvalOptions {
  PathSemantics semantics = PathSemantics::kWalk;
  EvalLimits limits;
  /// Restrict to paths starting / ending at a given node.
  std::optional<NodeId> source;
  std::optional<NodeId> target;
  /// Per-source fan-out over the shared pool (PR 4 follow-up): chunk
  /// outputs are disjoint (every path starts at its source) and merge in
  /// chunk index order, so results, partial answers and Status are
  /// byte-identical at any thread count.
  ParallelOptions parallel;
  ParallelStats* parallel_stats = nullptr;
};

/// Returns every path p of `g` with λ(p) ∈ L(regex) that satisfies the
/// restrictor (and per-pair minimality for kShortest), within the limits.
Result<PathSet> EvaluateRpqAutomaton(const PropertyGraph& g,
                                     const RegexPtr& regex,
                                     const AutomatonEvalOptions& options = {});

}  // namespace pathalg

#endif  // PATHALG_BASELINE_AUTOMATON_EVAL_H_
