#ifndef PATHALG_BASELINE_PRODUCT_INDEX_H_
#define PATHALG_BASELINE_PRODUCT_INDEX_H_

/// \file product_index.h
/// NFA transitions re-indexed by interned graph LabelId, shared by the
/// automaton baseline (automaton_eval.cc) and the NFA-fused frontier
/// engine (algebra/frontier_closure.cc). Per state the live labels are
/// kept as a *label-sorted vector* rather than a hash map: product walks
/// iterate a state's labels in every inner loop, and walking them in
/// LabelId order makes the enumeration order — and with it result order,
/// truncation points and partial answers — a pure function of the graph
/// and the regex, never of hash-bucket layout.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "baseline/nfa.h"
#include "graph/property_graph.h"

namespace pathalg {

struct ProductIndex {
  /// One live label at a state and the NFA states an edge with that label
  /// moves to. States preserve NFA transition order (deduplicated).
  struct Arc {
    LabelId label = kNoLabel;
    std::vector<uint32_t> states;
  };

  /// forward[s]: arcs leaving state s, sorted by label.
  std::vector<std::vector<Arc>> forward;
  /// backward[s]: arcs entering state s, sorted by label.
  std::vector<std::vector<Arc>> backward;

  ProductIndex(const PropertyGraph& g, const Nfa& nfa) {
    forward.resize(nfa.num_states());
    backward.resize(nfa.num_states());
    for (uint32_t s = 0; s < nfa.num_states(); ++s) {
      for (const Nfa::Transition& tr : nfa.TransitionsFrom(s)) {
        LabelId l = g.FindLabel(tr.label);
        if (l == kNoLabel) continue;  // label absent from graph: dead edge
        AddState(forward[s], l, tr.next);
        AddState(backward[tr.next], l, s);
      }
    }
    for (auto& arcs : forward) SortArcs(arcs);
    for (auto& arcs : backward) SortArcs(arcs);
  }

 private:
  static void AddState(std::vector<Arc>& arcs, LabelId l, uint32_t state) {
    for (Arc& a : arcs) {
      if (a.label != l) continue;
      for (uint32_t existing : a.states) {
        if (existing == state) return;
      }
      a.states.push_back(state);
      return;
    }
    arcs.push_back(Arc{l, {state}});
  }

  static void SortArcs(std::vector<Arc>& arcs) {
    std::sort(arcs.begin(), arcs.end(),
              [](const Arc& a, const Arc& b) { return a.label < b.label; });
  }
};

}  // namespace pathalg

#endif  // PATHALG_BASELINE_PRODUCT_INDEX_H_
