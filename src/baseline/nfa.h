#ifndef PATHALG_BASELINE_NFA_H_
#define PATHALG_BASELINE_NFA_H_

/// \file nfa.h
/// Finite automata over edge-label alphabets, for the classical
/// automaton-based RPQ evaluation baseline (§8.2: "automata-based
/// approaches traverse the graph while tracking the states of an automaton
/// constructed from the regular expression"). Built from a regex via
/// Thompson construction followed by ε-elimination, so the evaluator only
/// sees labelled transitions.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "regex/ast.h"

namespace pathalg {

class Nfa {
 public:
  /// Builds an ε-free NFA recognizing exactly the language of `regex`.
  static Nfa FromRegex(const RegexPtr& regex);

  size_t num_states() const { return transitions_.size(); }
  uint32_t start() const { return start_; }
  bool IsAccepting(uint32_t state) const { return accepting_[state]; }

  struct Transition {
    std::string label;
    uint32_t next;
  };
  const std::vector<Transition>& TransitionsFrom(uint32_t state) const {
    return transitions_[state];
  }

  /// Language membership test for a word of edge labels; used by tests to
  /// cross-check the construction against direct regex matching.
  bool Matches(const std::vector<std::string>& word) const;

 private:
  uint32_t start_ = 0;
  std::vector<bool> accepting_;
  std::vector<std::vector<Transition>> transitions_;
};

}  // namespace pathalg

#endif  // PATHALG_BASELINE_NFA_H_
