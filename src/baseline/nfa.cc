#include "baseline/nfa.h"

#include <unordered_set>

namespace pathalg {

namespace {

/// Thompson construction with explicit ε-transitions.
struct ThompsonNfa {
  struct State {
    std::vector<std::pair<std::string, uint32_t>> labelled;
    std::vector<uint32_t> eps;
  };
  std::vector<State> states;

  uint32_t NewState() {
    states.emplace_back();
    return static_cast<uint32_t>(states.size() - 1);
  }

  /// Builds the fragment for `r`; returns (in, out) states.
  std::pair<uint32_t, uint32_t> Build(const RegexNode& r) {
    switch (r.kind()) {
      case RegexKind::kLabel: {
        uint32_t in = NewState(), out = NewState();
        states[in].labelled.emplace_back(r.label(), out);
        return {in, out};
      }
      case RegexKind::kConcat: {
        auto [lin, lout] = Build(*r.left());
        auto [rin, rout] = Build(*r.right());
        states[lout].eps.push_back(rin);
        return {lin, rout};
      }
      case RegexKind::kUnion: {
        uint32_t in = NewState(), out = NewState();
        auto [lin, lout] = Build(*r.left());
        auto [rin, rout] = Build(*r.right());
        states[in].eps.push_back(lin);
        states[in].eps.push_back(rin);
        states[lout].eps.push_back(out);
        states[rout].eps.push_back(out);
        return {in, out};
      }
      case RegexKind::kPlus: {
        auto [cin, cout] = Build(*r.left());
        states[cout].eps.push_back(cin);  // loop back
        return {cin, cout};
      }
      case RegexKind::kStar: {
        uint32_t in = NewState(), out = NewState();
        auto [cin, cout] = Build(*r.left());
        states[in].eps.push_back(cin);
        states[in].eps.push_back(out);
        states[cout].eps.push_back(cin);
        states[cout].eps.push_back(out);
        return {in, out};
      }
      case RegexKind::kOptional: {
        uint32_t in = NewState(), out = NewState();
        auto [cin, cout] = Build(*r.left());
        states[in].eps.push_back(cin);
        states[in].eps.push_back(out);
        states[cout].eps.push_back(out);
        return {in, out};
      }
    }
    uint32_t s = NewState();
    return {s, s};
  }

  void EpsClosure(uint32_t s, std::vector<bool>* seen) const {
    if ((*seen)[s]) return;
    (*seen)[s] = true;
    for (uint32_t t : states[s].eps) EpsClosure(t, seen);
  }
};

}  // namespace

Nfa Nfa::FromRegex(const RegexPtr& regex) {
  ThompsonNfa t;
  auto [in, out] = t.Build(*regex);

  // ε-eliminate: state s keeps the labelled transitions of every state in
  // its ε-closure; s accepts iff its closure contains `out`.
  Nfa nfa;
  nfa.start_ = in;
  size_t n = t.states.size();
  nfa.accepting_.assign(n, false);
  nfa.transitions_.resize(n);
  for (uint32_t s = 0; s < n; ++s) {
    std::vector<bool> closure(n, false);
    t.EpsClosure(s, &closure);
    for (uint32_t c = 0; c < n; ++c) {
      if (!closure[c]) continue;
      if (c == out) nfa.accepting_[s] = true;
      for (const auto& [label, next] : t.states[c].labelled) {
        nfa.transitions_[s].push_back({label, next});
      }
    }
  }
  return nfa;
}

bool Nfa::Matches(const std::vector<std::string>& word) const {
  std::unordered_set<uint32_t> current{start_};
  for (const std::string& label : word) {
    std::unordered_set<uint32_t> next;
    for (uint32_t s : current) {
      for (const Transition& tr : transitions_[s]) {
        if (tr.label == label) next.insert(tr.next);
      }
    }
    current = std::move(next);
    if (current.empty()) return false;
  }
  for (uint32_t s : current) {
    if (accepting_[s]) return true;
  }
  return false;
}

}  // namespace pathalg
