#include "baseline/automaton_eval.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baseline/nfa.h"

namespace pathalg {

namespace {

/// NFA transitions re-indexed by interned graph LabelId for O(1) stepping.
struct ProductIndex {
  // forward[state][label] -> next states.
  std::vector<std::unordered_map<LabelId, std::vector<uint32_t>>> forward;
  // backward[state][label] -> predecessor states.
  std::vector<std::unordered_map<LabelId, std::vector<uint32_t>>> backward;

  ProductIndex(const PropertyGraph& g, const Nfa& nfa) {
    forward.resize(nfa.num_states());
    backward.resize(nfa.num_states());
    for (uint32_t s = 0; s < nfa.num_states(); ++s) {
      for (const Nfa::Transition& tr : nfa.TransitionsFrom(s)) {
        LabelId l = g.FindLabel(tr.label);
        if (l == kNoLabel) continue;  // label absent from graph: dead edge
        forward[s][l].push_back(tr.next);
        backward[tr.next][l].push_back(s);
      }
    }
  }
};

class AutomatonEvaluator {
 public:
  AutomatonEvaluator(const PropertyGraph& g, const RegexPtr& regex,
                     const AutomatonEvalOptions& options)
      : g_(g),
        options_(options),
        nfa_(Nfa::FromRegex(regex)),
        index_(g, nfa_) {}

  Result<PathSet> Run() {
    std::vector<NodeId> sources;
    if (options_.source.has_value()) {
      if (!g_.IsValidNode(*options_.source)) {
        return Status::InvalidArgument("unknown source node");
      }
      sources.push_back(*options_.source);
    } else {
      for (NodeId n = 0; n < g_.num_nodes(); ++n) sources.push_back(n);
    }
    for (NodeId s : sources) {
      Status st = options_.semantics == PathSemantics::kShortest
                      ? RunShortestFrom(s)
                      : RunDfsFrom(s);
      PATHALG_RETURN_NOT_OK(st);
    }
    return std::move(out_);
  }

 private:
  bool TargetOk(NodeId n) const {
    return !options_.target.has_value() || *options_.target == n;
  }

  Status Emit(Path p) {
    if (out_.size() >= options_.limits.max_paths) {
      if (options_.limits.truncate) return Status::OK();
      return Status::ResourceExhausted(
          "automaton evaluation exceeded max_paths");
    }
    out_.Insert(std::move(p));
    return Status::OK();
  }

  // --- DFS enumeration for walk / trail / acyclic / simple ----------------

  Status RunDfsFrom(NodeId source) {
    if (nfa_.IsAccepting(nfa_.start()) && TargetOk(source)) {
      PATHALG_RETURN_NOT_OK(Emit(Path::SingleNode(source)));
    }
    nodes_ = {source};
    edges_.clear();
    used_edges_.clear();
    visited_nodes_ = {source};
    budget_hit_ = false;
    PATHALG_RETURN_NOT_OK(Dfs(source, nfa_.start()));
    if (budget_hit_ && !options_.limits.truncate) {
      return Status::ResourceExhausted(
          "automaton WALK enumeration exceeded max_path_length; the answer "
          "set may be infinite — use a restrictor or truncate=true");
    }
    return Status::OK();
  }

  /// One product step of the DFS: edge `e` under the automaton transitions
  /// `next_states` (all carrying λ(e)).
  Status DfsStep(EdgeId e, const std::vector<uint32_t>& next_states) {
    NodeId next = g_.Target(e);

    bool closes_cycle = false;  // simple: next == first, path becomes closed
    switch (options_.semantics) {
      case PathSemantics::kWalk:
        break;
      case PathSemantics::kTrail:
        if (used_edges_.count(e) != 0) return Status::OK();
        break;
      case PathSemantics::kAcyclic:
        if (visited_nodes_.count(next) != 0) return Status::OK();
        break;
      case PathSemantics::kSimple:
        if (visited_nodes_.count(next) != 0) {
          if (next != nodes_.front()) return Status::OK();
          closes_cycle = true;
        }
        break;
      case PathSemantics::kShortest:
        return Status::Internal("shortest uses BFS, not DFS");
    }

    nodes_.push_back(next);
    edges_.push_back(e);
    used_edges_.insert(e);
    bool newly_visited = visited_nodes_.insert(next).second;

    Status st = Status::OK();
    for (uint32_t next_state : next_states) {
      if (nfa_.IsAccepting(next_state) && TargetOk(next)) {
        st = Emit(Path(nodes_, edges_));
        if (!st.ok()) break;
      }
      if (!closes_cycle) {
        st = Dfs(next, next_state);
        if (!st.ok()) break;
      }
    }

    nodes_.pop_back();
    edges_.pop_back();
    used_edges_.erase(e);
    if (newly_visited) visited_nodes_.erase(next);
    return st;
  }

  Status Dfs(NodeId node, uint32_t state) {
    if (edges_.size() >= options_.limits.max_path_length) {
      // Only WALK can actually grow without bound, but the cap applies to
      // all semantics for symmetry with ϕ's EvalLimits.
      budget_hit_ = true;
      return Status::OK();
    }
    const auto& by_label = index_.forward[state];
    // Label-partitioned expansion: one CSR slice per live NFA label, each a
    // contiguous range scan — no per-edge hash probe.
    for (const auto& [label, next_states] : by_label) {
      for (EdgeId e : g_.OutEdgesWithLabel(node, label)) {
        PATHALG_RETURN_NOT_OK(DfsStep(e, next_states));
      }
    }
    return Status::OK();
  }

  // --- BFS + backward enumeration for shortest -----------------------------

  Status RunShortestFrom(NodeId source) {
    constexpr size_t kInf = std::numeric_limits<size_t>::max();
    const size_t num_states = nfa_.num_states();
    auto key = [&](NodeId n, uint32_t s) { return n * num_states + s; };
    std::vector<size_t> dist(g_.num_nodes() * num_states, kInf);
    std::queue<std::pair<NodeId, uint32_t>> queue;
    dist[key(source, nfa_.start())] = 0;
    queue.push({source, nfa_.start()});
    while (!queue.empty()) {
      auto [node, state] = queue.front();
      queue.pop();
      size_t d = dist[key(node, state)];
      if (d >= options_.limits.max_path_length) continue;
      const auto& by_label = index_.forward[state];
      auto relax = [&](EdgeId e, const std::vector<uint32_t>& states) {
        NodeId next = g_.Target(e);
        for (uint32_t ns : states) {
          if (dist[key(next, ns)] == kInf) {
            dist[key(next, ns)] = d + 1;
            queue.push({next, ns});
          }
        }
      };
      for (const auto& [label, states] : by_label) {
        for (EdgeId e : g_.OutEdgesWithLabel(node, label)) {
          relax(e, states);
        }
      }
    }

    // Per target: best = min dist over accepting states, then enumerate all
    // dist-decreasing backward paths of exactly that length.
    for (NodeId t = 0; t < g_.num_nodes(); ++t) {
      if (!TargetOk(t)) continue;
      size_t best = kInf;
      for (uint32_t s = 0; s < num_states; ++s) {
        if (nfa_.IsAccepting(s)) best = std::min(best, dist[key(t, s)]);
      }
      if (best == kInf) continue;
      if (best == 0) {
        PATHALG_RETURN_NOT_OK(Emit(Path::SingleNode(t)));
        continue;
      }
      for (uint32_t s = 0; s < num_states; ++s) {
        if (!nfa_.IsAccepting(s) || dist[key(t, s)] != best) continue;
        nodes_suffix_ = {t};
        edges_suffix_.clear();
        PATHALG_RETURN_NOT_OK(
            Backtrack(source, t, s, best, dist, num_states));
      }
    }
    return Status::OK();
  }

  /// Walks dist-decreasing product edges backwards from (node, state) at
  /// depth `d`, emitting every completed shortest path.
  Status Backtrack(NodeId source, NodeId node, uint32_t state, size_t d,
                   const std::vector<size_t>& dist, size_t num_states) {
    auto key = [&](NodeId n, uint32_t s) { return n * num_states + s; };
    if (d == 0) {
      if (node == source && state == nfa_.start()) {
        std::vector<NodeId> nodes(nodes_suffix_.rbegin(),
                                  nodes_suffix_.rend());
        std::vector<EdgeId> edges(edges_suffix_.rbegin(),
                                  edges_suffix_.rend());
        PATHALG_RETURN_NOT_OK(Emit(Path(std::move(nodes), std::move(edges))));
      }
      return Status::OK();
    }
    const auto& by_label = index_.backward[state];
    auto step = [&](EdgeId e,
                    const std::vector<uint32_t>& prev_states) -> Status {
      NodeId prev = g_.Source(e);
      for (uint32_t ps : prev_states) {
        if (dist[key(prev, ps)] != d - 1) continue;
        nodes_suffix_.push_back(prev);
        edges_suffix_.push_back(e);
        PATHALG_RETURN_NOT_OK(
            Backtrack(source, prev, ps, d - 1, dist, num_states));
        nodes_suffix_.pop_back();
        edges_suffix_.pop_back();
      }
      return Status::OK();
    };
    for (const auto& [label, prev_states] : by_label) {
      for (EdgeId e : g_.InEdgesWithLabel(node, label)) {
        PATHALG_RETURN_NOT_OK(step(e, prev_states));
      }
    }
    return Status::OK();
  }

  const PropertyGraph& g_;
  const AutomatonEvalOptions& options_;
  Nfa nfa_;
  ProductIndex index_;
  PathSet out_;

  // DFS working state.
  std::vector<NodeId> nodes_;
  std::vector<EdgeId> edges_;
  std::unordered_set<EdgeId> used_edges_;
  std::unordered_set<NodeId> visited_nodes_;
  bool budget_hit_ = false;

  // Backtrack working state (stored target-to-source, reversed on emit).
  std::vector<NodeId> nodes_suffix_;
  std::vector<EdgeId> edges_suffix_;
};

}  // namespace

Result<PathSet> EvaluateRpqAutomaton(const PropertyGraph& g,
                                     const RegexPtr& regex,
                                     const AutomatonEvalOptions& options) {
  if (regex == nullptr) return Status::InvalidArgument("null regex");
  return AutomatonEvaluator(g, regex, options).Run();
}

}  // namespace pathalg
