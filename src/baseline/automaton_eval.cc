#include "baseline/automaton_eval.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "algebra/eval_budget.h"
#include "baseline/nfa.h"
#include "baseline/product_index.h"
#include "common/thread_pool.h"

namespace pathalg {

namespace {

/// Per-chunk enumeration state: runs the product traversal for a range of
/// source nodes, writing into a chunk-private PathSet. Paths start at
/// their source, so per-source outputs are disjoint across sources and a
/// chunk-local dedup equals the global one; the chunk caps its output at
/// max_paths + 1 distinct paths — enough for the caller's merge to detect
/// a global budget trip — and keeps enumerating without inserting past
/// the cap (the traversal itself is bounded by max_path_length).
///
/// Budget edges follow algebra/eval_budget.h: `dropped` is set only when
/// an *admissible* accepting one-step extension was suppressed by
/// max_path_length (checked by lookahead at the cap), and is consulted by
/// the caller only after the complete enumeration. max_iterations has no
/// fixpoint counterpart here and is not consulted.
class SourceRunner {
 public:
  SourceRunner(const PropertyGraph& g, const Nfa& nfa,
               const ProductIndex& index, const AutomatonEvalOptions& options)
      : g_(g), nfa_(nfa), index_(index), options_(options) {}

  void Run(NodeId source, PathSet* out) {
    out_ = out;
    if (options_.semantics == PathSemantics::kShortest) {
      RunShortestFrom(source);
    } else {
      RunDfsFrom(source);
    }
  }

  bool dropped() const { return dropped_; }

  /// True once the evaluation's CancelToken tripped; the caller skips
  /// the remaining sources of its chunk.
  bool stopped() const { return stopped_; }

 private:
  /// Stride poll inside the product traversals (same rationale as the
  /// frontier engine's SegmentWalker): once the token trips the runner
  /// stops emitting and unwinds — safe because a cancelled evaluation
  /// discards every partial result (eval_budget.h).
  bool Poll() {
    if (!stopped_ && options_.limits.cancel != nullptr &&
        --cancel_countdown_ == 0) {
      cancel_countdown_ = kCancelCheckStride;
      if (options_.limits.cancel->Cancelled()) stopped_ = true;
    }
    return stopped_;
  }

  bool TargetOk(NodeId n) const {
    return !options_.target.has_value() || *options_.target == n;
  }

  void Emit(Path p) {
    // size() > max_paths means the chunk already holds the max_paths + 1
    // distinct paths the merge needs to see; stop growing.
    if (out_->size() > options_.limits.max_paths) return;
    out_->Insert(std::move(p));
  }

  // --- DFS enumeration for walk / trail / acyclic / simple ----------------

  void RunDfsFrom(NodeId source) {
    if (nfa_.IsAccepting(nfa_.start()) && TargetOk(source)) {
      Emit(Path::SingleNode(source));
    }
    nodes_ = {source};
    edges_.clear();
    used_edges_.clear();
    visited_nodes_ = {source};
    Dfs(source, nfa_.start());
  }

  /// One product step of the DFS: edge `e` under the automaton transitions
  /// `next_states` (all carrying λ(e)).
  void DfsStep(EdgeId e, const std::vector<uint32_t>& next_states) {
    NodeId next = g_.Target(e);

    bool closes_cycle = false;  // simple: next == first, path becomes closed
    switch (options_.semantics) {
      case PathSemantics::kWalk:
        break;
      case PathSemantics::kTrail:
        if (used_edges_.count(e) != 0) return;
        break;
      case PathSemantics::kAcyclic:
        if (visited_nodes_.count(next) != 0) return;
        break;
      case PathSemantics::kSimple:
        if (visited_nodes_.count(next) != 0) {
          if (next != nodes_.front()) return;
          closes_cycle = true;
        }
        break;
      case PathSemantics::kShortest:
        return;  // shortest uses BFS, never this DFS
    }

    nodes_.push_back(next);
    edges_.push_back(e);
    used_edges_.insert(e);
    bool newly_visited = visited_nodes_.insert(next).second;

    for (uint32_t next_state : next_states) {
      if (nfa_.IsAccepting(next_state) && TargetOk(next)) {
        Emit(Path(nodes_, edges_));
      }
      if (!closes_cycle) Dfs(next, next_state);
    }

    nodes_.pop_back();
    edges_.pop_back();
    used_edges_.erase(e);
    if (newly_visited) visited_nodes_.erase(next);
  }

  void Dfs(NodeId node, uint32_t state) {
    if (Poll()) return;
    if (edges_.size() >= options_.limits.max_path_length) {
      // The cap is a silent filter; `dropped` records only *admissible*
      // suppressed candidates (semantics checked before length —
      // eval_budget.h), so look one step ahead instead of flagging
      // unconditionally: a walk that merely touched the cap with no
      // admissible accepting extension lost nothing.
      if (!dropped_) dropped_ = HasAdmissibleAcceptingExtension(node, state);
      return;
    }
    // Label-partitioned expansion: one CSR slice per live NFA label, each a
    // contiguous range scan — no per-edge hash probe. Arcs are
    // label-sorted (ProductIndex), so enumeration order is a pure function
    // of the graph and the regex.
    for (const ProductIndex::Arc& arc : index_.forward[state]) {
      for (EdgeId e : g_.OutEdgesWithLabel(node, arc.label)) {
        DfsStep(e, arc.states);
      }
    }
  }

  /// True when some one-edge extension of the current DFS path passes the
  /// restrictor and lands in an accepting state — i.e. an admissible
  /// accepting candidate of length max_path_length + 1 exists.
  bool HasAdmissibleAcceptingExtension(NodeId node, uint32_t state) const {
    for (const ProductIndex::Arc& arc : index_.forward[state]) {
      bool accepts = false;
      for (uint32_t ns : arc.states) {
        if (nfa_.IsAccepting(ns)) {
          accepts = true;
          break;
        }
      }
      if (!accepts) continue;
      for (EdgeId e : g_.OutEdgesWithLabel(node, arc.label)) {
        NodeId next = g_.Target(e);
        switch (options_.semantics) {
          case PathSemantics::kWalk:
            break;
          case PathSemantics::kTrail:
            if (used_edges_.count(e) != 0) continue;
            break;
          case PathSemantics::kAcyclic:
            if (visited_nodes_.count(next) != 0) continue;
            break;
          case PathSemantics::kSimple:
            if (visited_nodes_.count(next) != 0 && next != nodes_.front()) {
              continue;
            }
            break;
          case PathSemantics::kShortest:
            return false;
        }
        if (TargetOk(next)) return true;
      }
    }
    return false;
  }

  // --- BFS + backward enumeration for shortest -----------------------------

  void RunShortestFrom(NodeId source) {
    constexpr size_t kInf = std::numeric_limits<size_t>::max();
    const size_t num_states = nfa_.num_states();
    auto key = [&](NodeId n, uint32_t s) { return n * num_states + s; };
    std::vector<size_t> dist(g_.num_nodes() * num_states, kInf);
    std::queue<std::pair<NodeId, uint32_t>> queue;
    dist[key(source, nfa_.start())] = 0;
    queue.push({source, nfa_.start()});
    while (!queue.empty()) {
      if (Poll()) return;
      auto [node, state] = queue.front();
      queue.pop();
      size_t d = dist[key(node, state)];
      // kShortest treats the cap as a pure silent filter (eval_budget.h).
      if (d >= options_.limits.max_path_length) continue;
      for (const ProductIndex::Arc& arc : index_.forward[state]) {
        for (EdgeId e : g_.OutEdgesWithLabel(node, arc.label)) {
          NodeId next = g_.Target(e);
          for (uint32_t ns : arc.states) {
            if (dist[key(next, ns)] == kInf) {
              dist[key(next, ns)] = d + 1;
              queue.push({next, ns});
            }
          }
        }
      }
    }

    // Per target: best = min dist over accepting states, then enumerate all
    // dist-decreasing backward paths of exactly that length.
    for (NodeId t = 0; t < g_.num_nodes(); ++t) {
      if (stopped_) return;
      if (!TargetOk(t)) continue;
      size_t best = kInf;
      for (uint32_t s = 0; s < num_states; ++s) {
        if (nfa_.IsAccepting(s)) best = std::min(best, dist[key(t, s)]);
      }
      if (best == kInf) continue;
      if (best == 0) {
        Emit(Path::SingleNode(t));
        continue;
      }
      for (uint32_t s = 0; s < num_states; ++s) {
        if (!nfa_.IsAccepting(s) || dist[key(t, s)] != best) continue;
        nodes_suffix_ = {t};
        edges_suffix_.clear();
        Backtrack(source, t, s, best, dist, num_states);
      }
    }
  }

  /// Walks dist-decreasing product edges backwards from (node, state) at
  /// depth `d`, emitting every completed shortest path.
  void Backtrack(NodeId source, NodeId node, uint32_t state, size_t d,
                 const std::vector<size_t>& dist, size_t num_states) {
    auto key = [&](NodeId n, uint32_t s) { return n * num_states + s; };
    if (Poll()) return;
    if (d == 0) {
      if (node == source && state == nfa_.start()) {
        std::vector<NodeId> nodes(nodes_suffix_.rbegin(),
                                  nodes_suffix_.rend());
        std::vector<EdgeId> edges(edges_suffix_.rbegin(),
                                  edges_suffix_.rend());
        Emit(Path(std::move(nodes), std::move(edges)));
      }
      return;
    }
    for (const ProductIndex::Arc& arc : index_.backward[state]) {
      for (EdgeId e : g_.InEdgesWithLabel(node, arc.label)) {
        NodeId prev = g_.Source(e);
        for (uint32_t ps : arc.states) {
          if (dist[key(prev, ps)] != d - 1) continue;
          nodes_suffix_.push_back(prev);
          edges_suffix_.push_back(e);
          Backtrack(source, prev, ps, d - 1, dist, num_states);
          nodes_suffix_.pop_back();
          edges_suffix_.pop_back();
        }
      }
    }
  }

  const PropertyGraph& g_;
  const Nfa& nfa_;
  const ProductIndex& index_;
  const AutomatonEvalOptions& options_;
  PathSet* out_ = nullptr;

  // DFS working state.
  std::vector<NodeId> nodes_;
  std::vector<EdgeId> edges_;
  std::unordered_set<EdgeId> used_edges_;
  std::unordered_set<NodeId> visited_nodes_;
  bool dropped_ = false;
  uint32_t cancel_countdown_ = kCancelCheckStride;
  bool stopped_ = false;

  // Backtrack working state (stored target-to-source, reversed on emit).
  std::vector<NodeId> nodes_suffix_;
  std::vector<EdgeId> edges_suffix_;
};

}  // namespace

Result<PathSet> EvaluateRpqAutomaton(const PropertyGraph& g,
                                     const RegexPtr& regex,
                                     const AutomatonEvalOptions& options) {
  if (regex == nullptr) return Status::InvalidArgument("null regex");
  if (options.source.has_value() && !g.IsValidNode(*options.source)) {
    return Status::InvalidArgument("unknown source node");
  }
  const Nfa nfa = Nfa::FromRegex(regex);
  const ProductIndex index(g, nfa);

  std::vector<NodeId> sources;
  if (options.source.has_value()) {
    sources.push_back(*options.source);
  } else {
    sources.reserve(g.num_nodes());
    for (NodeId n = 0; n < g.num_nodes(); ++n) sources.push_back(n);
  }

  // Per-source fan-out: every path starts at its source, so chunk outputs
  // are disjoint and merging them in chunk index order reproduces the
  // serial source-major enumeration byte-for-byte at any thread count.
  // Chunk bodies only write chunk-private state (no locks).
  const ChunkLayout layout = ThreadPool::PlanFor(sources.size(),
                                                 options.parallel);
  std::vector<PathSet> results(layout.num_chunks);
  std::vector<uint8_t> chunk_dropped(layout.num_chunks, 0);
  ThreadPool::Shared().ParallelFor(
      sources.size(), options.parallel, options.parallel_stats,
      [&](size_t chunk, size_t begin, size_t end) {
        SourceRunner runner(g, nfa, index, options);
        for (size_t i = begin; i < end; ++i) {
          if (runner.stopped()) break;
          runner.Run(sources[i], &results[chunk]);
        }
        chunk_dropped[chunk] = runner.dropped() ? 1 : 0;
      });
  // Runners that saw the token trip stopped mid-traversal, so chunk
  // outputs may be truncated — cancellation discards them all.
  if (CancelRequested(options.limits.cancel)) {
    return EvalCancelled(*options.limits.cancel);
  }

  PathSet out;
  bool dropped = false;
  for (size_t c = 0; c < layout.num_chunks; ++c) {
    if (chunk_dropped[c] != 0) dropped = true;
    for (const Path& p : results[c]) {
      if (out.Contains(p)) continue;  // duplicates never trip the budget
      if (out.size() >= options.limits.max_paths) {
        if (options.limits.truncate) return out;
        return BudgetExhausted("max_paths");
      }
      out.Insert(p);
    }
  }
  // `dropped` is only consulted after the complete enumeration, so a
  // max_paths trip anywhere above takes precedence (eval_budget.h).
  if (dropped && !options.limits.truncate) {
    return BudgetExhausted("max_path_length");
  }
  return out;
}

}  // namespace pathalg
