// graph_convert — import a graph (CSV file or any generator spec) and emit
// a binary snapshot (src/storage/), or inspect/verify an existing one.
//
// Usage:
//   graph_convert --csv graph.csv --out graph.snap
//   graph_convert --spec "social persons=200 seed=7" --out graph.snap
//   graph_convert --info graph.snap      # header metadata, no decode
//   graph_convert --verify graph.snap    # full open (copy + mmap modes),
//                                        # checksum + round-trip check
//
// The writer is deterministic, so converting the same input twice yields
// byte-identical files — safe to commit, diff and cache.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "engine/workload_file.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

using namespace pathalg;  // NOLINT — tool brevity

namespace {

int Fail(const std::string& msg) {
  std::fprintf(stderr, "graph_convert: %s\n", msg.c_str());
  return 1;
}

int Usage(bool ok) {
  std::fprintf(
      stderr,
      "usage: graph_convert (--csv <file> | --spec \"<graph spec>\") "
      "--out <file.snap>\n"
      "       graph_convert --info <file.snap>\n"
      "       graph_convert --verify <file.snap>\n");
  return ok ? 0 : 1;
}

int Convert(const std::string& spec, const std::string& out_path) {
  Result<PropertyGraph> graph = engine::BuildWorkloadGraph(spec);
  if (!graph.ok()) return Fail(graph.status().ToString());
  Status written = storage::SnapshotWriter::Write(*graph, out_path);
  if (!written.ok()) return Fail(written.ToString());
  Result<storage::SnapshotReader::Info> info =
      storage::SnapshotReader::Probe(out_path);
  if (!info.ok()) return Fail(info.status().ToString());
  std::printf("wrote %s: %llu nodes, %llu edges, %llu bytes\n",
              out_path.c_str(),
              static_cast<unsigned long long>(info->num_nodes),
              static_cast<unsigned long long>(info->num_edges),
              static_cast<unsigned long long>(info->file_size));
  return 0;
}

int Info(const std::string& path) {
  Result<storage::SnapshotReader::Info> info =
      storage::SnapshotReader::Probe(path);
  if (!info.ok()) return Fail(info.status().ToString());
  std::printf("snapshot %s\n", path.c_str());
  std::printf("  format version: %u\n", info->version);
  std::printf("  sections:       %u\n", info->section_count);
  std::printf("  nodes:          %llu\n",
              static_cast<unsigned long long>(info->num_nodes));
  std::printf("  edges:          %llu\n",
              static_cast<unsigned long long>(info->num_edges));
  std::printf("  file size:      %llu bytes\n",
              static_cast<unsigned long long>(info->file_size));
  std::printf("  version id:     %016llx\n",
              static_cast<unsigned long long>(info->version_id));
  if (info->parent_version != 0) {
    std::printf("  parent version: %016llx\n",
                static_cast<unsigned long long>(info->parent_version));
  }
  return 0;
}

int Verify(const std::string& path) {
  // Copy-mode open decodes and validates every section eagerly.
  storage::OpenOptions copy_opts;
  copy_opts.mode = storage::OpenMode::kCopy;
  Result<PropertyGraph> copied =
      storage::SnapshotReader::Open(path, copy_opts);
  if (!copied.ok()) return Fail(copied.status().ToString());

  // mmap-mode open must agree structurally.
  Result<PropertyGraph> mapped = storage::SnapshotReader::Open(path);
  if (!mapped.ok()) return Fail(mapped.status().ToString());
  if (mapped->num_nodes() != copied->num_nodes() ||
      mapped->num_edges() != copied->num_edges()) {
    return Fail("copy and mmap opens disagree on graph size");
  }

  // Round trip: re-serializing the decoded graph must reproduce the file
  // byte for byte (deterministic writer). The parent-version chaining
  // field is the one header input not derived from the graph itself, so
  // re-serialize with the file's own.
  Result<storage::SnapshotReader::Info> info =
      storage::SnapshotReader::Probe(path);
  if (!info.ok()) return Fail(info.status().ToString());
  std::ifstream file(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string original = buffer.str();
  if (storage::SnapshotWriter::Serialize(*copied, info->parent_version) !=
      original) {
    return Fail("re-serialization differs from the file — writer "
                "determinism violated or file written by another version");
  }
  std::printf("ok: %s (%zu nodes, %zu edges, %zu bytes, round-trip exact)\n",
              path.c_str(), copied->num_nodes(), copied->num_edges(),
              original.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path, spec, out_path, info_path, verify_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--csv") {
      const char* v = next();
      if (v == nullptr) return Fail("--csv needs a path");
      csv_path = v;
    } else if (arg == "--spec") {
      const char* v = next();
      if (v == nullptr) return Fail("--spec needs a graph spec");
      spec = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Fail("--out needs a path");
      out_path = v;
    } else if (arg == "--info") {
      const char* v = next();
      if (v == nullptr) return Fail("--info needs a path");
      info_path = v;
    } else if (arg == "--verify") {
      const char* v = next();
      if (v == nullptr) return Fail("--verify needs a path");
      verify_path = v;
    } else if (arg == "--help") {
      return Usage(true);
    } else {
      return Usage(false);
    }
  }

  if (!info_path.empty()) return Info(info_path);
  if (!verify_path.empty()) return Verify(verify_path);
  if (csv_path.empty() == spec.empty()) {
    return Fail("need exactly one of --csv or --spec (or --info/--verify)");
  }
  if (out_path.empty()) return Fail("--out is required when converting");
  return Convert(spec.empty() ? "csv " + csv_path : spec, out_path);
}
