#!/usr/bin/env python3
"""Project-specific determinism lint for the path-algebra engine.

The engine's correctness surface is a *determinism contract*: parallel
evaluation must equal serial evaluation byte-for-byte, and a served
session's responses (under `!timing off`) must be byte-identical to a
serial single-client run. Generic static analyzers can't know that; this
lint flags the project-specific hazards that silently break it:

  unordered-iteration   a range-for over an std::unordered_{map,set,...}
                        whose body feeds an order-sensitive sink (PathSet
                        Insert/InsertHashed, push_back/emplace_back merge
                        loops, response-string appends, stream writes,
                        GraphBuilder AddNamedNode/AddNamedEdge version
                        emission, journal Append).
                        Hash-order iteration must go through a sorted or
                        chunk-order merge instead.
  raw-random            rand()/srand()/rand_r/drand48/lrand48,
                        std::random_device, arc4random outside
                        tests/fuzz_util.h (the one blessed home for
                        seeded randomness helpers). Seeded std::mt19937
                        engines are fine anywhere and are not flagged.
  clock-in-response     a wall-clock value (MicrosSince/..._us/..._ms/
                        ::now()) appended to a protocol response string
                        in a response-producing file without a `timings`
                        guard in view. Two declared nondeterministic
                        surfaces are exempt: `"STAT ...` lines (the
                        `!stats` counters) and lines carrying
                        `cancelled (` (the deadline/shutdown
                        cancellation ERR of algebra/eval_budget.h —
                        wall-clock trips are excluded from the
                        byte-identity surface the same way `!timing`
                        output is).
  raw-clock             clock primitives other than common/timing.h's
                        SteadyClock/MicrosSince (steady_clock spelled
                        raw, system_clock, high_resolution_clock,
                        gettimeofday, time(NULL), clock(), localtime,
                        ...) outside common/timing.h. One clock, one
                        entry point.

Escape hatch: a finding is suppressed when the flagged line, or the line
above it, carries

    // determinism-lint: allow(<rule-id>)     (or allow(all))

Use it with a comment explaining why the site is safe.

Engines: the default regex engine needs nothing but Python and works on
arbitrary file lists (fixtures included). When clang-query is available
and a compilation database is given (-p), the hybrid engine additionally
asks clang-query for type-accurate unordered-container range-for
candidates (catching cases the regex tier can't see, e.g. containers
reached through an index or a method return); the sink/allow
classification is shared. clang-query failures fall back to regex-only
with a note — the lint never fails because tooling is missing.

Exit status: 0 = clean, 1 = findings, 2 = usage/setup error.
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys

RULES = {
    "unordered-iteration":
        "range-for over an unordered container into an order-sensitive sink",
    "raw-random":
        "rand()/random_device-style nondeterministic randomness",
    "clock-in-response":
        "wall-clock value in a protocol response without a timings guard",
    "raw-clock":
        "clock primitive other than common/timing.h's SteadyClock",
}

ALLOW_RE = re.compile(r"determinism-lint:\s*allow\(([a-z\-]+|all)\)")

SOURCE_EXTS = (".cc", ".cpp", ".cxx", ".h", ".hpp")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments, string and char literals, preserving line
    structure and column offsets so reported positions stay exact."""
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"' or c == "'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
            i += 1
        else:  # inside a string/char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
                out.append(c)
            else:
                out.append(c if c == "\n" else " ")
            i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, path):
        self.path = path
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.raw = f.read()
        self.clean = strip_comments_and_strings(self.raw)
        self.raw_lines = self.raw.splitlines()
        self.clean_lines = self.clean.splitlines()

    def allowed(self, line_no, rule):
        """True when line_no (1-based) or the line above carries an
        allow() comment for `rule`."""
        for ln in (line_no, line_no - 1):
            if 1 <= ln <= len(self.raw_lines):
                m = ALLOW_RE.search(self.raw_lines[ln - 1])
                if m and m.group(1) in (rule, "all"):
                    return True
        return False

    def line_of(self, offset):
        return self.clean.count("\n", 0, offset) + 1


# --------------------------------------------------------------------------
# Rule: unordered-iteration
# --------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"(?<![\w:])(?:std::)?unordered_(?:map|multimap|set|multiset)\s*<")

# Order-sensitive sinks. Deliberately NOT here: lowercase .insert()/
# .emplace() (inserting into another associative container is
# order-insensitive), integer accumulation (commutative).
SINK_RES = [
    (re.compile(r"\.Insert(?:Hashed)?\s*\("), "PathSet insert"),
    # Frontier-closure survivor emission and merge helpers: anything named
    # Emit*/Merge* appends to an ordered output, so feeding it from a hash
    # walk breaks the chunk-order byte-identity contract.
    (re.compile(r"\bEmit\w*\s*\("), "survivor emit"),
    (re.compile(r"\bMerge\w*\s*\("), "ordered merge"),
    (re.compile(r"\.(?:push_back|emplace_back)\s*\("), "sequence append"),
    # Mutation subsystem surfaces: building a merged graph version
    # (GraphBuilder::AddNamedNode/AddNamedEdge — the overlay merge must
    # emit in canonical order or version ids stop being content-
    # addressed) and appending resolved records to the fsync'd journal
    # (replay order is the recovery contract).
    (re.compile(r"\bAddNamed(?:Node|Edge)\s*\("), "graph build emission"),
    (re.compile(r"\.Append\s*\("), "journal append"),
    (re.compile(r"(?:\*\s*)?\w*(?:out|os|resp|str|text|buf|line)\w*\s*\+=",
                re.IGNORECASE), "string append"),
    (re.compile(r"<<"), "stream write"),
]


def unordered_identifiers(files):
    """Names declared (anywhere in the scanned set) as a direct
    unordered container. Vector-of-unordered etc. deliberately do not
    match — iterating the outer vector is ordered."""
    names = set()
    for sf in files:
        for m in UNORDERED_DECL_RE.finditer(sf.clean):
            start = m.end() - 1  # at '<'
            tail = sf.clean[start:start + 600]
            depth, j = 0, 0
            while j < len(tail):
                if tail[j] == "<":
                    depth += 1
                elif tail[j] == ">":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            ident = re.match(r"\s*(?:const\s+)?[&*]?\s*([A-Za-z_]\w*)",
                             tail[j + 1:])
            if ident:
                names.add(ident.group(1))
    return names


def find_range_fors(sf):
    """Yields (line_no, range_expr, body_text) for each range-based for."""
    clean = sf.clean
    for m in re.finditer(r"\bfor\s*\(", clean):
        open_paren = m.end() - 1
        depth, j = 0, open_paren
        colon = -1
        while j < len(clean):
            c = clean[j]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    break
            elif c == ":" and depth == 1:
                # skip '::'
                if clean[j - 1] != ":" and (j + 1 >= len(clean)
                                            or clean[j + 1] != ":"):
                    colon = j
            j += 1
        if colon < 0 or j >= len(clean):
            continue  # classic for, or unbalanced
        range_expr = clean[colon + 1:j].strip()
        # Body: a braced block or a single statement.
        k = j + 1
        while k < len(clean) and clean[k] in " \t\n":
            k += 1
        if k < len(clean) and clean[k] == "{":
            depth, b = 0, k
            while b < len(clean):
                if clean[b] == "{":
                    depth += 1
                elif clean[b] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                b += 1
            body = clean[k:b + 1]
            body_end = b
        else:
            end = clean.find(";", k)
            body = clean[k:end + 1] if end >= 0 else clean[k:]
            body_end = end if end >= 0 else len(clean) - 1
        yield sf.line_of(m.start()), sf.line_of(body_end), range_expr, body


def check_unordered_iteration(sf, unordered_names, extra_candidates=None):
    findings = []
    extra = extra_candidates or set()
    for line_no, end_line, range_expr, body in find_range_fors(sf):
        expr = range_expr.lstrip("*& ").strip()
        is_unordered = ("unordered" in expr
                        or (re.fullmatch(r"(?:this->)?[A-Za-z_]\w*", expr)
                            and expr.replace("this->", "") in unordered_names)
                        or line_no in extra)
        if not is_unordered:
            continue
        # An allow() on any line of the loop (the sink line included)
        # suppresses the whole loop, not just the for-statement line.
        allowed = any(sf.allowed(ln, "unordered-iteration")
                      for ln in range(line_no, end_line + 1))
        for sink_re, sink_name in SINK_RES:
            if sink_re.search(body):
                if not allowed:
                    findings.append(Finding(
                        sf.path, line_no, "unordered-iteration",
                        f"iterates '{expr}' (hash order) into an "
                        f"order-sensitive sink ({sink_name}); merge in "
                        f"sorted/chunk order instead"))
                break
    return findings


# --------------------------------------------------------------------------
# Rule: raw-random
# --------------------------------------------------------------------------

RANDOM_RES = [
    re.compile(r"\bs?rand\s*\("),
    re.compile(r"\brand_r\s*\("),
    re.compile(r"\b[dl]rand48\s*\("),
    re.compile(r"\brandom_device\b"),
    re.compile(r"\barc4random\w*\s*\("),
]


def check_raw_random(sf):
    findings = []
    for i, line in enumerate(sf.clean_lines, 1):
        for rx in RANDOM_RES:
            m = rx.search(line)
            if m and not sf.allowed(i, "raw-random"):
                findings.append(Finding(
                    sf.path, i, "raw-random",
                    f"'{m.group(0).strip()}' is nondeterministic; use a "
                    f"seeded std::mt19937 (see tests/fuzz_util.h)"))
                break
    return findings


# --------------------------------------------------------------------------
# Rule: clock-in-response
# --------------------------------------------------------------------------

RESPONSE_APPEND_RE = re.compile(
    r"(?:\*\s*out\b|\bout\b|\bresponse\b|\*\s*os\b|\bos\b)\s*(?:\+=|<<)")
TIMING_TOKEN_RE = re.compile(r"MicrosSince\s*\(|::now\s*\(|_us\b|_ms\b")
GUARD_WINDOW = 25  # lines scanned upward for a `timing`/`timings` guard


def is_response_file(sf):
    return '"OK ' in sf.raw or '"ERR ' in sf.raw


def check_clock_in_response(sf):
    if not is_response_file(sf):
        return []
    findings = []
    for i, line in enumerate(sf.clean_lines, 1):
        if not (RESPONSE_APPEND_RE.search(line)
                and TIMING_TOKEN_RE.search(line)):
            continue
        raw = sf.raw_lines[i - 1] if i <= len(sf.raw_lines) else ""
        if '"STAT' in raw:
            continue  # !stats: the declared nondeterministic surface
        if 'cancelled (' in raw:
            # Deadline/shutdown-trip ERR lines: the other declared
            # nondeterministic surface (algebra/eval_budget.h pins the
            # wording; wall-clock trips are outside byte-identity).
            continue
        window = sf.clean_lines[max(0, i - 1 - GUARD_WINDOW):i - 1]
        if any(re.search(r"\btimings?\b", w) for w in window):
            continue
        if sf.allowed(i, "clock-in-response"):
            continue
        findings.append(Finding(
            sf.path, i, "clock-in-response",
            "wall-clock value flows into a response line with no "
            "`timings` guard in view; `!timing off` responses must be "
            "byte-deterministic"))
    return findings


# --------------------------------------------------------------------------
# Rule: raw-clock
# --------------------------------------------------------------------------

CLOCK_RES = [
    re.compile(r"\bgettimeofday\s*\("),
    re.compile(r"\bsystem_clock\b"),
    re.compile(r"\bhigh_resolution_clock\b"),
    re.compile(r"\bsteady_clock\b"),  # raw spelling; use the SteadyClock alias
    re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
    re.compile(r"\bclock\s*\(\s*\)"),
    re.compile(r"\b(?:localtime|gmtime|ctime|strftime)\s*\("),
]


def check_raw_clock(sf):
    findings = []
    for i, line in enumerate(sf.clean_lines, 1):
        for rx in CLOCK_RES:
            m = rx.search(line)
            if m and not sf.allowed(i, "raw-clock"):
                findings.append(Finding(
                    sf.path, i, "raw-clock",
                    f"'{m.group(0).strip()}' bypasses common/timing.h; "
                    f"use SteadyClock/MicrosSince"))
                break
    return findings


# --------------------------------------------------------------------------
# clang-query hybrid tier (optional)
# --------------------------------------------------------------------------

CLANG_QUERY_MATCHER = (
    "match cxxForRangeStmt(hasRangeInit(expr(hasType(hasUnqualifiedDesugaredType("
    "recordType(hasDeclaration(classTemplateSpecializationDecl("
    "matchesName(\"::std::unordered_\")))))))))"
)


def clang_query_candidates(binary, build_dir, paths, verbose):
    """Returns {abs_path: {line, ...}} of unordered range-for locations,
    or None when clang-query is unusable (caller falls back to regex)."""
    try:
        cmd = ([binary, "-p", build_dir, "-c", "set output diag",
                "-c", CLANG_QUERY_MATCHER] + paths)
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=600)
        if proc.returncode != 0 and not proc.stdout:
            if verbose:
                print(f"note: clang-query failed ({proc.stderr[:200]}); "
                      f"regex tier only", file=sys.stderr)
            return None
        candidates = {}
        for m in re.finditer(r"^(/[^\s:]+):(\d+):\d+:", proc.stdout,
                             re.MULTILINE):
            candidates.setdefault(m.group(1), set()).add(int(m.group(2)))
        return candidates
    except Exception as e:  # missing binary, timeout, parse error
        if verbose:
            print(f"note: clang-query unavailable ({e}); regex tier only",
                  file=sys.stderr)
        return None


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def files_from_compile_db(build_dir, root):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.exit(f"error: no compile_commands.json in {build_dir} "
                 f"(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)")
    with open(db_path) as f:
        db = json.load(f)
    files = set()
    for entry in db:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        if path.startswith(os.path.join(root, "")):
            files.add(path)
    # Headers never appear in a compilation database; the contract lives
    # in src/ headers too (inline PlanCache methods, catalog Slot).
    for dirpath, _, names in os.walk(os.path.join(root, "src")):
        for name in names:
            if name.endswith((".h", ".hpp")):
                files.add(os.path.join(dirpath, name))
    return sorted(files)


def in_src(root, path):
    return os.path.normpath(path).startswith(
        os.path.join(os.path.normpath(root), "src") + os.sep)


def run_lint(args):
    root = os.path.abspath(args.root)
    explicit = bool(args.files)
    if explicit:
        paths = [os.path.abspath(p) for p in args.files]
    else:
        paths = files_from_compile_db(os.path.abspath(args.build_dir), root)
    paths = [p for p in paths if p.endswith(SOURCE_EXTS)]

    sources = []
    for p in paths:
        try:
            sources.append(SourceFile(p))
        except OSError as e:
            sys.exit(f"error: cannot read {p}: {e}")

    unordered_names = unordered_identifiers(sources)

    cq_candidates = None
    if not explicit and args.engine in ("auto", "clang-query"):
        binary = args.clang_query or shutil.which("clang-query")
        if binary:
            src_ccs = [s.path for s in sources
                       if in_src(root, s.path) and not s.path.endswith(".h")]
            cq_candidates = clang_query_candidates(
                binary, os.path.abspath(args.build_dir), src_ccs,
                args.verbose)
        elif args.engine == "clang-query":
            sys.exit("error: --engine clang-query but no clang-query binary "
                     "found (pass --clang-query)")

    findings = []
    for sf in sources:
        # Fixture/explicit mode applies every rule to every given file;
        # tree mode scopes rules to where the contract lives.
        scoped_src = explicit or in_src(root, sf.path)
        fuzz_home = sf.path.endswith(os.path.join("tests", "fuzz_util.h"))
        timing_home = sf.path.endswith(os.path.join("common", "timing.h"))
        if scoped_src:
            extra = (cq_candidates or {}).get(sf.path)
            findings += check_unordered_iteration(sf, unordered_names, extra)
            if not timing_home:
                findings += check_raw_clock(sf)
            findings += check_clock_in_response(sf)
        if not fuzz_home:
            findings += check_raw_random(sf)

    findings.sort(key=lambda f: (f.path, f.line))
    for f in findings:
        print(f)
    if findings:
        print(f"\ndeterminism-lint: {len(findings)} finding(s) across "
              f"{len(sources)} file(s). Suppress a verified-safe site with "
              f"// determinism-lint: allow(<rule>).")
        return 1
    if args.verbose:
        print(f"determinism-lint: clean ({len(sources)} files)")
    return 0


def run_self_test(fixtures_dir):
    """Asserts each bad_<rule>.cc fixture trips exactly its rule and each
    ok_*.cc fixture is clean."""
    fixtures = sorted(os.listdir(fixtures_dir))
    failures = []
    for name in fixtures:
        if not name.endswith(SOURCE_EXTS):
            continue
        path = os.path.join(fixtures_dir, name)
        sf = SourceFile(path)
        names = unordered_identifiers([sf])
        found = set()
        for f in (check_unordered_iteration(sf, names)
                  + check_raw_random(sf)
                  + check_clock_in_response(sf)
                  + check_raw_clock(sf)):
            found.add(f.rule)
        if name.startswith("bad_"):
            # A "__variant" suffix names an alternate fixture for the same
            # rule (e.g. bad_unordered_iteration__emit.cc).
            expected = (name[len("bad_"):].rsplit(".", 1)[0]
                        .split("__")[0].replace("_", "-"))
            if expected not in RULES:
                failures.append(f"{name}: unknown expected rule '{expected}'")
            elif expected not in found:
                failures.append(
                    f"{name}: expected [{expected}], lint found "
                    f"{sorted(found) or 'nothing'}")
            else:
                print(f"PASS {name}: flagged [{expected}]")
        elif name.startswith("ok_"):
            if found:
                failures.append(f"{name}: expected clean, lint found "
                                f"{sorted(found)}")
            else:
                print(f"PASS {name}: clean")
    if not any(n.startswith("bad_") for n in fixtures):
        failures.append("no bad_* fixtures found")
    for f in failures:
        print(f"FAIL {f}")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("-p", "--build-dir", default="build",
                        help="build dir holding compile_commands.json")
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: the lint's grandparent dir)")
    parser.add_argument("--files", nargs="+",
                        help="lint exactly these files (all rules apply; "
                             "no compilation database needed)")
    parser.add_argument("--engine", choices=["auto", "regex", "clang-query"],
                        default="auto",
                        help="auto = regex, plus clang-query when available")
    parser.add_argument("--clang-query", help="clang-query binary to use")
    parser.add_argument("--self-test", metavar="FIXTURES_DIR",
                        help="assert the seeded-violation fixtures behave")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:22} {desc}")
        return 0
    if args.self_test:
        return run_self_test(args.self_test)
    return run_lint(args)


if __name__ == "__main__":
    sys.exit(main())
