// Lint fixture: nondeterministic randomness outside tests/fuzz_util.h.
// Expect: [raw-random] findings; nothing else.
#include <cstdlib>
#include <random>

int PickShard(int shards) {
  // BAD: rand() — unseeded libc state, differs per run and per libc.
  return rand() % shards;
}

unsigned SeedFromEntropy() {
  // BAD: random_device — fresh entropy defeats replayable fuzz failures.
  std::random_device rd;
  return rd();
}
