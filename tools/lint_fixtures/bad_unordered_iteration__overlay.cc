// Lint fixture: hash-order iteration feeding the mutation subsystem's
// sinks — merged-version graph building (AddNamedNode/AddNamedEdge) and
// journal appends. Expect: [unordered-iteration] findings; nothing else.
#include <string>
#include <unordered_map>

struct Builder {
  int AddNamedNode(const std::string&, const std::string&) { return 0; }
};

struct Journal {
  void Append(const std::string&) {}
};

void MergeOverlay(Builder* b,
                  const std::unordered_map<std::string, std::string>& added) {
  // BAD: a merged version must emit added nodes in log order (canonical
  // enumeration), never in bucket order — the serialized snapshot, and
  // with it the content-addressed version id, would depend on hashing.
  for (const auto& kv : added) {
    b->AddNamedNode(kv.first, kv.second);
  }
}

void FlushPending(Journal& journal,
                  const std::unordered_map<int, std::string>& pending) {
  // BAD: recovery replays the journal front to back; appending pending
  // records in hash order makes the replayed graph history-dependent.
  for (const auto& kv : pending) {
    journal.Append(kv.second);
  }
}
