// Lint fixture: wall-clock value in a protocol response line with no
// `timings` guard in view. The '"OK ' literal below marks this file as
// response-producing, which is what scopes the rule onto it.
// Expect: [clock-in-response]; nothing else.
#include <cstdint>
#include <string>

namespace pathalg {
uint64_t MicrosSince(uint64_t start);
}

void Respond(std::string* out, uint64_t start, size_t paths) {
  *out += "OK " + std::to_string(paths) + " paths";
  // BAD: elapsed time appended unconditionally — `!timing off` responses
  // are no longer byte-identical to a serial run.
  *out += " (" + std::to_string(pathalg::MicrosSince(start)) + "_us)";
  *out += "\n";
}
