// Lint fixture: clock primitives bypassing common/timing.h.
// Expect: [raw-clock] findings; nothing else.
#include <chrono>
#include <ctime>

long WallMicros() {
  // BAD: system_clock is wall time — NTP steps move it backwards.
  auto now = std::chrono::system_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             now.time_since_epoch())
      .count();
}

long Epoch() {
  // BAD: time(NULL) — second-granularity wall clock.
  return static_cast<long>(time(nullptr));
}
