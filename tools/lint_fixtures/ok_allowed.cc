// Lint fixture: the same hazards as the bad_* fixtures, each suppressed
// with the inline escape hatch. Expect: clean.
#include <cstdlib>
#include <ctime>
#include <string>
#include <unordered_map>

std::string RenderDebugDump(const std::unordered_map<std::string, int>& m) {
  std::string out;
  // Debug-only dump, never compared byte-for-byte.
  // determinism-lint: allow(unordered-iteration)
  for (const auto& kv : m) {
    out += kv.first + "\n";
  }
  return out;
}

int JitterForBackoffOnly() {
  // Retry jitter: nondeterminism is the point here.
  return rand() % 16;  // determinism-lint: allow(raw-random)
}

long LogTimestamp() {
  // Log-line timestamp, not a measured duration.
  return static_cast<long>(time(nullptr));  // determinism-lint: allow(raw-clock)
}
