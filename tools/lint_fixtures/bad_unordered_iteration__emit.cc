// Lint fixture: hash-order iteration feeding the frontier-closure sinks
// (survivor emission, chunk merge). Expect: [unordered-iteration]
// findings; nothing else.
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Survivors {
  void EmitSurvivor(int) {}
};

void DrainFrontier(Survivors* out,
                   const std::unordered_set<int>& accepting) {
  // BAD: survivors must be emitted in walk order (node-major, label-
  // sorted arcs), never in the hash table's bucket order.
  for (int state : accepting) {
    out->EmitSurvivor(state);
  }
}

void MergeChunk(std::vector<int>* acc,
                const std::unordered_map<int, int>& chunk);

void FoldChunks(std::vector<int>* acc,
                const std::unordered_set<std::unordered_map<int, int>*>& chunks) {
  // BAD: chunk results must merge in chunk index order, not hash order.
  for (auto* chunk : chunks) {
    MergeChunk(acc, *chunk);
  }
}
