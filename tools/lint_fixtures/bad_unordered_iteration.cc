// Lint fixture: hash-order iteration feeding order-sensitive sinks.
// Expect: [unordered-iteration] findings; nothing else.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct PathSet {
  void Insert(int) {}
};

std::string RenderCounts(const std::unordered_map<std::string, int>& counts) {
  std::string out;
  // BAD: response text assembled in hash order — byte-identity across
  // runs (and standard-library versions) is gone.
  for (const auto& kv : counts) {
    out += kv.first + "=" + std::to_string(kv.second) + "\n";
  }
  return out;
}

void MergeInto(PathSet* merged, const std::unordered_set<int>& partial) {
  // BAD: PathSet insertion order follows the hash table's bucket walk.
  for (int id : partial) {
    merged->Insert(id);
  }
}

std::vector<int> Collect(const std::unordered_set<int>& ids) {
  std::vector<int> ordered;
  // BAD: sequence append from an unordered range.
  for (int id : ids) {
    ordered.push_back(id);
  }
  return ordered;
}
