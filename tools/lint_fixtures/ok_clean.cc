// Lint fixture: deterministic idioms the lint must NOT flag.
// Expect: clean.
#include <algorithm>
#include <map>
#include <random>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

// Seeded engine: replayable, allowed anywhere.
int SeededPick(int shards) {
  std::mt19937_64 rng(42);
  return static_cast<int>(rng() % shards);
}

// Ordered container iteration into a string: deterministic. (Named
// distinctly from the unordered maps below: the lint resolves container
// kinds by identifier, so reusing one name for both kinds would FP.)
std::string RenderSorted(const std::map<std::string, int>& sorted_counts) {
  std::string out;
  for (const auto& kv : sorted_counts) {
    out += kv.first + "\n";
  }
  return out;
}

// Unordered iteration into another associative container:
// order-insensitive, must not be flagged.
std::unordered_set<int> CopySet(const std::unordered_set<int>& in) {
  std::unordered_set<int> copy;
  for (int id : in) {
    copy.insert(id);
  }
  return copy;
}

// Unordered iteration for commutative accumulation: fine.
size_t CountPositive(const std::unordered_map<std::string, int>& m) {
  size_t n = 0;
  for (const auto& kv : m) {
    if (kv.second > 0) ++n;
  }
  return n;
}

// Sort-then-emit: the canonical fix for hash-order output.
std::vector<std::string> SortedKeys(
    const std::unordered_map<std::string, int>& m) {
  std::vector<std::string> keys;
  for (const auto& kv : m) {
    keys.push_back(kv.first);  // determinism-lint: allow(unordered-iteration)
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}
