// Lint fixture: a deadline-trip ERR that embeds a wall-clock value but
// does NOT use the pinned cancellation wording of algebra/eval_budget.h.
// Only lines carrying `cancelled (` are a declared nondeterministic
// surface; an ad-hoc "deadline exceeded after N" response leaks the
// clock into the byte-identity surface. The '"ERR ' literal below marks
// this file as response-producing, which is what scopes the rule onto it.
// Expect: [clock-in-response]; nothing else.
#include <cstdint>
#include <string>

namespace pathalg {
uint64_t MicrosSince(uint64_t start);
}

void RespondDeadline(std::string* out, uint64_t start) {
  *out += "ERR deadline exceeded after ";
  // BAD: the elapsed time rides in an ERR line that is not spelled with
  // the exempt `cancelled (` wording — `!timing off` responses are no
  // longer byte-identical across runs.
  *out += std::to_string(pathalg::MicrosSince(start)) + "_us\n";
}
