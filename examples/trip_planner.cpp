// Trip planner: a transport network where edges carry a `km` cost,
// demonstrating the extension features — §2.3 sequenced path queries
// (train legs, then ferry legs, whole route acyclic), group variables
// (collect the city names along a route), and per-route aggregates
// (total kilometres via SumEdgeProperty).

#include <cstdio>

#include "gql/sequence.h"
#include "path/path_functions.h"
#include "plan/evaluator.h"
#include "regex/parser.h"

using namespace pathalg;  // NOLINT — example brevity

namespace {

PropertyGraph MakeTransportNetwork() {
  GraphBuilder b;
  auto city = [&b](const char* name) {
    return b.AddNode("City", {{"name", Value(name)}});
  };
  NodeId lyon = city("Lyon");
  NodeId paris = city("Paris");
  NodeId lille = city("Lille");
  NodeId calais = city("Calais");
  NodeId dover = city("Dover");
  NodeId london = city("London");
  NodeId brussels = city("Brussels");
  auto link = [&b](NodeId a, NodeId c, const char* mode, double km) {
    (void)b.AddEdge(a, c, mode, {{"km", Value(km)}});
  };
  link(lyon, paris, "Train", 465);
  link(paris, lille, "Train", 225);
  link(lille, calais, "Train", 110);
  link(paris, calais, "Train", 290);   // direct but longer than via Lille? no: shorter hop count
  link(lille, brussels, "Train", 110);
  link(calais, dover, "Ferry", 42);
  link(dover, london, "Train", 125);
  link(brussels, london, "Train", 370);  // Eurostar via the tunnel
  return b.Build();
}

}  // namespace

int main() {
  PropertyGraph g = MakeTransportNetwork();
  std::printf("network: %zu cities, %zu links\n\n", g.num_nodes(),
              g.num_edges());

  // §2.3 sequence: any number of train legs, then exactly one ferry, then
  // any number of train legs; the whole route must be acyclic.
  SequenceQuery q;
  q.selector = {SelectorKind::kAll, 1};
  q.restrictor = PathSemantics::kAcyclic;
  auto part = [](const char* regex_text, ConditionPtr filter) {
    SequencePart p;
    p.selector = {SelectorKind::kAll, 1};
    p.restrictor = PathSemantics::kAcyclic;
    p.regex = *ParseRegex(regex_text);
    p.filter = std::move(filter);
    return p;
  };
  q.parts.push_back(
      part(":Train+", FirstPropEq("name", Value("Lyon"))));
  q.parts.push_back(part(":Ferry", nullptr));
  q.parts.push_back(
      part(":Train+", LastPropEq("name", Value("London"))));

  auto plan = BuildSequencePlan(q);
  if (!plan.ok()) {
    std::printf("plan error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("sequence plan:\n%s\n", (*plan)->ToTreeString().c_str());
  auto routes = Evaluate(g, *plan);
  if (!routes.ok()) {
    std::printf("eval error: %s\n", routes.status().ToString().c_str());
    return 1;
  }

  std::printf("Lyon → (train+) → ferry → (train+) → London routes:\n");
  for (const Path& route : routes->Sorted()) {
    // Group variables: the cities along the route and the total distance.
    auto names = CollectNodeProperty(g, route, "name");
    std::string itinerary;
    for (const auto& name : names) {
      if (!itinerary.empty()) itinerary += " → ";
      itinerary += name.has_value() ? name->AsString() : "?";
    }
    auto km = SumEdgeProperty(g, route, "km");
    std::printf("  %-55s %2zu legs, %6.0f km\n", itinerary.c_str(),
                route.Len(), km.value_or(0));
  }

  // Compare: the all-train alternative (no ferry) via Brussels.
  SequenceQuery train_only;
  train_only.selector = {SelectorKind::kAllShortest, 1};
  train_only.restrictor = PathSemantics::kAcyclic;
  train_only.parts.push_back(
      part(":Train+", Condition::And(FirstPropEq("name", Value("Lyon")),
                                     LastPropEq("name", Value("London")))));
  auto train_plan = BuildSequencePlan(train_only);
  auto train_routes = Evaluate(g, *train_plan);
  std::printf("\nfewest-leg all-train route:\n");
  for (const Path& route : train_routes->Sorted()) {
    auto names = CollectNodeProperty(g, route, "name");
    std::string itinerary;
    for (const auto& name : names) {
      if (!itinerary.empty()) itinerary += " → ";
      itinerary += name.has_value() ? name->AsString() : "?";
    }
    auto km = SumEdgeProperty(g, route, "km");
    std::printf("  %-55s %2zu legs, %6.0f km\n", itinerary.c_str(),
                route.Len(), km.value_or(0));
  }
  return 0;
}
