// Social-network scenario: the paper's motivating domain (Figure 1 is an
// LDBC SNB snippet). Loads the exact Figure 1 graph, runs the paper's
// queries, then scales up with the SNB-like generator and runs
// selector/restrictor variations.

#include <cstdio>

#include "gql/query.h"
#include "workload/figure1.h"
#include "workload/generators.h"

using namespace pathalg;  // NOLINT — example brevity

namespace {

void RunAndPrint(const PropertyGraph& g, const char* title,
                 const char* query, const QueryOptions& opts = {}) {
  std::printf("-- %s\n   %s\n", title, query);
  auto result = ExecuteQuery(g, query, opts);
  if (!result.ok()) {
    std::printf("   => %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("   => %zu paths", result->size());
  if (result->size() <= 8) {
    std::printf(": %s", result->ToString(g).c_str());
  }
  std::printf("\n\n");
}

}  // namespace

int main() {
  std::printf("=== Part 1: the paper's Figure 1 graph ===\n\n");
  PropertyGraph fig1 = MakeFigure1Graph();

  RunAndPrint(fig1, "the introduction's double-cycle query (SIMPLE)",
              "MATCH ALL SIMPLE p = (?x {name:\"Moe\"})"
              "-[(:Knows+)|(:Likes/:Has_creator)+]->(?y {name:\"Apu\"})");

  RunAndPrint(fig1, "friends and friends-of-friends of Moe (§3)",
              "MATCH ALL WALK p = (?x {name:\"Moe\"})"
              "-[Knows|(Knows/Knows)]->(?y)");

  RunAndPrint(fig1, "one shortest trail per pair (Figure 5)",
              "MATCH ANY SHORTEST TRAIL p = (x)-[:Knows+]->(y)");

  RunAndPrint(fig1, "all shortest acyclic paths per pair (§6's example)",
              "MATCH ALL SHORTEST ACYCLIC p = (x)-[:Knows+]->(y)");

  RunAndPrint(fig1, "extended grammar: a sample trail per target (§7.1)",
              "MATCH ALL PARTITIONS ALL GROUPS 1 PATHS "
              "TRAIL p = (?x)-[(:Knows)*]->(?y) "
              "GROUP BY TARGET ORDER BY PATH");

  RunAndPrint(fig1, "who likes a message created by Lisa?",
              "MATCH ALL WALK p = (?x)-[:Likes/:Has_creator]->"
              "(?y {name:\"Lisa\"})");

  std::printf("=== Part 2: a scaled LDBC-like graph ===\n\n");
  SocialGraphOptions opts;
  opts.num_persons = 200;
  opts.num_messages = 400;
  opts.random_knows = 150;
  PropertyGraph snb = MakeSocialGraph(opts);
  std::printf("generated %zu nodes, %zu edges\n\n", snb.num_nodes(),
              snb.num_edges());

  QueryOptions bounded;
  bounded.eval.limits.max_path_length = 3;
  bounded.eval.limits.truncate = true;

  RunAndPrint(snb, "3-hop friendship trails of person0 (bounded)",
              "MATCH ALL TRAIL p = (?x {name:\"person0\"})-[:Knows+]->(?y)",
              bounded);

  RunAndPrint(snb, "shortest friendship path person0 → person100",
              "MATCH ANY SHORTEST WALK p = (?x {name:\"person0\"})"
              "-[:Knows+]->(?y {name:\"person100\"})");

  RunAndPrint(snb,
              "fan-out: whose message did person0 like (2-step pattern)?",
              "MATCH ALL WALK p = (?x {name:\"person0\"})"
              "-[:Likes/:Has_creator]->(?y)");

  RunAndPrint(snb, "2 shortest interaction chains per pair, length >= 4",
              "MATCH SHORTEST 2 WALK p = (?x {name:\"person0\"})"
              "-[(:Likes/:Has_creator)+]->(?y) WHERE len() >= 4",
              bounded);
  return 0;
}
