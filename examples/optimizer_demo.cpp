// Optimizer walkthrough: shows each §7.3-family rewrite on a real plan,
// with before/after algebra expressions, result equality checks, and
// wall-clock measurements on a scaled graph — a narrative version of
// bench/fig6_pushdown and bench/walk_to_shortest.

#include <chrono>
#include <cstdio>

#include "plan/evaluator.h"
#include "plan/optimizer.h"
#include "workload/generators.h"

using namespace pathalg;  // NOLINT — example brevity

namespace {

double MeasureMs(const PropertyGraph& g, const PlanPtr& plan,
                 const EvalOptions& opts = {}) {
  auto start = std::chrono::steady_clock::now();
  auto r = Evaluate(g, plan, opts);
  auto end = std::chrono::steady_clock::now();
  if (!r.ok()) return -1;
  return std::chrono::duration<double, std::milli>(end - start).count();
}

void Show(const char* title, const PlanPtr& before,
          const OptimizeResult& after) {
  std::printf("=== %s ===\n", title);
  std::printf("before: %s\n", before->ToAlgebraString().c_str());
  std::printf("after:  %s\n", after.plan->ToAlgebraString().c_str());
  std::printf("rules: ");
  for (const std::string& r : after.applied) std::printf(" %s", r.c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  SocialGraphOptions sopts;
  sopts.num_persons = 300;
  sopts.num_messages = 600;
  sopts.random_knows = 200;
  PropertyGraph g = MakeSocialGraph(sopts);
  std::printf("graph: %zu nodes, %zu edges\n\n", g.num_nodes(),
              g.num_edges());

  PlanPtr knows =
      PlanNode::Select(EdgeLabelEq(1, "Knows"), PlanNode::EdgesScan());

  // 1. Figure 6: predicate pushdown.
  PlanPtr fig6 = PlanNode::Select(FirstPropEq("name", Value("person0")),
                                  PlanNode::Join(knows, knows));
  OptimizeResult fig6_opt = Optimize(fig6);
  Show("Figure 6: predicate pushdown", fig6, fig6_opt);
  double before_ms = MeasureMs(g, fig6);
  double after_ms = MeasureMs(g, fig6_opt.plan);
  std::printf("evaluation: %.2f ms -> %.2f ms (%.1fx)\n\n", before_ms,
              after_ms, before_ms / after_ms);

  // 2. ANY SHORTEST WALK: the divergence rescue that is also exact.
  PlanPtr any_shortest = PlanNode::Project(
      {std::nullopt, std::nullopt, 1},
      PlanNode::OrderBy(
          OrderKey::kA,
          PlanNode::GroupBy(GroupKey::kST,
                            PlanNode::Recursive(PathSemantics::kWalk,
                                                knows))));
  OptimizeResult as_opt = Optimize(any_shortest);
  Show("ANY SHORTEST WALK: ϕWalk → ϕShortest", any_shortest, as_opt);
  EvalOptions tight;
  tight.limits.max_path_length = 64;
  auto diverges = Evaluate(g, any_shortest, tight);
  std::printf("before: %s\n", diverges.status().ToString().c_str());
  std::printf("after:  %.2f ms (terminates, exact)\n\n",
              MeasureMs(g, as_opt.plan, tight));

  // 3. §6: a redundant order-by is removed.
  PlanPtr redundant = PlanNode::Project(
      {std::nullopt, std::nullopt, 1},
      PlanNode::OrderBy(
          OrderKey::kPG,
          PlanNode::GroupBy(GroupKey::kNone,
                            PlanNode::Recursive(PathSemantics::kTrail,
                                                knows))));
  Show("§6: redundant τPG after γ∅", redundant, Optimize(redundant));
  std::printf("\n");

  // 4. Select merge + split interplay.
  PlanPtr merged = PlanNode::Select(
      LenEq(2),
      PlanNode::Select(
          FirstPropEq("name", Value("person0")),
          PlanNode::Join(knows, knows)));
  Show("select-merge then conjunct split", merged, Optimize(merged));
  std::printf("\n");
  return 0;
}
