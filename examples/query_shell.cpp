// Interactive query shell — the C++ counterpart of the paper's §7.2
// command-line parser, now sitting on the engine::QueryEngine session
// layer: type a path query, get the textual logical plan (paper style),
// the algebra expression, the optimized plan, and the result — plus the
// session's per-stage timings and plan-cache status (repeat a query to
// watch parse+optimize drop to zero).
//
// Usage:
//   query_shell                # Figure 1 graph, read queries from stdin
//   query_shell graph.csv      # your own graph (see graph/csv.h format)
//
// When stdin has no queries (e.g. in CI), runs a built-in demo script.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "engine/query_engine.h"
#include "graph/csv.h"
#include "workload/figure1.h"

using namespace pathalg;  // NOLINT — example brevity

namespace {

void RunOne(engine::QueryEngine& eng, const std::string& line) {
  engine::ExecStats stats;
  auto prepared = eng.Prepare(line, &stats);
  if (!prepared.ok()) {
    std::printf("!! %s\n", prepared.status().ToString().c_str());
    return;
  }
  const engine::PreparedQuery& q = **prepared;
  std::printf("\n-- plan (paper §7.2 style) --------------------------\n%s",
              q.query.parsed().ToPlanText().c_str());
  std::printf("-- algebra ------------------------------------------\n%s\n",
              q.query.plan()->ToAlgebraString().c_str());
  if (!q.optimizer_rules.empty()) {
    std::printf("-- optimized (");
    for (size_t i = 0; i < q.optimizer_rules.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", q.optimizer_rules[i].c_str());
    }
    std::printf(") ----\n%s\n", q.effective_plan->ToAlgebraString().c_str());
  }
  auto result = eng.ExecutePrepared(q, &stats);
  if (!result.ok()) {
    std::printf("!! %s\n", result.status().ToString().c_str());
    return;
  }
  // Per-call costs: on a cache hit parse/optimize are genuinely 0 (the
  // one-time costs live in q.parse_us/q.optimize_us).
  std::printf("-- result (%zu paths; plan %s, parse %llu µs, optimize %llu "
              "µs, eval %llu µs) ----\n",
              result->size(), stats.cache_hit ? "cached" : "fresh",
              static_cast<unsigned long long>(stats.parse_us),
              static_cast<unsigned long long>(stats.optimize_us),
              static_cast<unsigned long long>(stats.eval_us));
  size_t shown = 0;
  for (const Path& p : result->Sorted()) {
    if (++shown > 20) {
      std::printf("  ... (%zu more)\n", result->size() - 20);
      break;
    }
    std::printf("  %s\n", p.ToString(eng.graph()).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  PropertyGraph g;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    auto loaded = LoadGraphFromCsv(buffer.str());
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    g = std::move(loaded).value();
    std::printf("loaded %s: %zu nodes, %zu edges\n", argv[1], g.num_nodes(),
                g.num_edges());
  } else {
    g = MakeFigure1Graph();
    std::printf("using the paper's Figure 1 graph (7 nodes, 11 edges)\n");
  }

  engine::EngineOptions options;
  options.query.eval.limits.max_path_length = 16;
  options.query.eval.limits.truncate = true;
  engine::QueryEngine eng(std::move(g), options);

  std::printf("enter path queries, one per line (empty line to quit)\n> ");
  std::string line;
  bool any_input = false;
  while (std::getline(std::cin, line)) {
    if (line.empty()) break;
    any_input = true;
    RunOne(eng, line);
    std::printf("\n> ");
  }
  if (!any_input) {
    std::printf("(no stdin; running the demo script)\n");
    for (const char* demo : {
             "MATCH ANY SHORTEST TRAIL p = (x)-[:Knows+]->(y)",
             "MATCH ALL SIMPLE p = (?x {name:\"Moe\"})"
             "-[(:Knows+)|(:Likes/:Has_creator)+]->(?y {name:\"Apu\"})",
             "MATCH ALL PARTITIONS ALL GROUPS 1 PATHS TRAIL "
             "p = (?x)-[(:Knows)*]->(?y) GROUP BY TARGET ORDER BY PATH",
             // Repeat of the first query: exercises the plan cache (the
             // result line reports "plan cached").
             "MATCH ANY SHORTEST TRAIL p = (x)-[:Knows+]->(y)",
         }) {
      std::printf("\n> %s\n", demo);
      RunOne(eng, demo);
    }
    std::printf("\nsession plan cache: %llu hits, %llu misses\n",
                static_cast<unsigned long long>(eng.cache().stats().hits),
                static_cast<unsigned long long>(eng.cache().stats().misses));
  }
  return 0;
}
