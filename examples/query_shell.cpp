// Interactive query shell — the C++ counterpart of the paper's §7.2
// command-line parser: type a path query, get the textual logical plan
// (paper style), the algebra expression, the optimized plan, and the
// result evaluated over the Figure 1 graph (or a graph loaded from a CSV
// file passed as argv[1]).
//
// Usage:
//   query_shell                # Figure 1 graph, read queries from stdin
//   query_shell graph.csv      # your own graph (see graph/csv.h format)
//
// When stdin has no queries (e.g. in CI), runs a built-in demo script.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "graph/csv.h"
#include "gql/query.h"
#include "plan/optimizer.h"
#include "workload/figure1.h"

using namespace pathalg;  // NOLINT — example brevity

namespace {

void RunOne(const PropertyGraph& g, const std::string& line) {
  auto query = Query::Parse(line);
  if (!query.ok()) {
    std::printf("!! %s\n", query.status().ToString().c_str());
    return;
  }
  std::printf("\n-- plan (paper §7.2 style) --------------------------\n%s",
              query->parsed().ToPlanText().c_str());
  std::printf("-- algebra ------------------------------------------\n%s\n",
              query->plan()->ToAlgebraString().c_str());
  QueryOptions opts;
  opts.eval.limits.max_path_length = 16;
  opts.eval.limits.truncate = true;
  OptimizeResult optimized = Optimize(query->plan(), opts.optimizer);
  if (!optimized.applied.empty()) {
    std::printf("-- optimized (");
    for (size_t i = 0; i < optimized.applied.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", optimized.applied[i].c_str());
    }
    std::printf(") ----\n%s\n", optimized.plan->ToAlgebraString().c_str());
  }
  auto result = query->Execute(g, opts);
  if (!result.ok()) {
    std::printf("!! %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("-- result (%zu paths) -------------------------------\n",
              result->size());
  size_t shown = 0;
  for (const Path& p : result->Sorted()) {
    if (++shown > 20) {
      std::printf("  ... (%zu more)\n", result->size() - 20);
      break;
    }
    std::printf("  %s\n", p.ToString(g).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  PropertyGraph g;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    auto loaded = LoadGraphFromCsv(buffer.str());
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    g = std::move(loaded).value();
    std::printf("loaded %s: %zu nodes, %zu edges\n", argv[1], g.num_nodes(),
                g.num_edges());
  } else {
    g = MakeFigure1Graph();
    std::printf("using the paper's Figure 1 graph (7 nodes, 11 edges)\n");
  }

  std::printf("enter path queries, one per line (empty line to quit)\n> ");
  std::string line;
  bool any_input = false;
  while (std::getline(std::cin, line)) {
    if (line.empty()) break;
    any_input = true;
    RunOne(g, line);
    std::printf("\n> ");
  }
  if (!any_input) {
    std::printf("(no stdin; running the demo script)\n");
    for (const char* demo : {
             "MATCH ANY SHORTEST TRAIL p = (x)-[:Knows+]->(y)",
             "MATCH ALL SIMPLE p = (?x {name:\"Moe\"})"
             "-[(:Knows+)|(:Likes/:Has_creator)+]->(?y {name:\"Apu\"})",
             "MATCH ALL PARTITIONS ALL GROUPS 1 PATHS TRAIL "
             "p = (?x)-[(:Knows)*]->(?y) GROUP BY TARGET ORDER BY PATH",
         }) {
      std::printf("\n> %s\n", demo);
      RunOne(g, demo);
    }
  }
  return 0;
}
