// Quickstart: build a property graph, run core algebra operators by hand,
// then let the GQL facade do the whole pipeline. Mirrors the README's
// 5-minute tour.

#include <cstdio>

#include "algebra/core_ops.h"
#include "algebra/recursive.h"
#include "gql/query.h"
#include "path/path_ops.h"

using namespace pathalg;  // NOLINT — example brevity

int main() {
  // 1. Build a graph: three people, a couple of friendships.
  GraphBuilder builder;
  NodeId ann = builder.AddNode("Person", {{"name", Value("Ann")}});
  NodeId bob = builder.AddNode("Person", {{"name", Value("Bob")}});
  NodeId cat = builder.AddNode("Person", {{"name", Value("Cat")}});
  (void)builder.AddEdge(ann, bob, "Knows");
  (void)builder.AddEdge(bob, cat, "Knows");
  (void)builder.AddEdge(cat, ann, "Knows");  // a cycle!
  PropertyGraph g = builder.Build();
  std::printf("graph: %zu nodes, %zu edges\n", g.num_nodes(), g.num_edges());

  // 2. The algebra's atoms: Nodes(G) and Edges(G) are paths of length 0/1.
  PathSet nodes = NodesOf(g);
  PathSet edges = EdgesOf(g);
  std::printf("Nodes(G) = %s\n", nodes.ToString(g).c_str());
  std::printf("Edges(G) = %s\n", edges.ToString(g).c_str());

  // 3. Core operators: σ, ⋈, ∪.
  PathSet knows = Select(g, edges, *EdgeLabelEq(1, "Knows"));
  PathSet two_hops = Join(knows, knows);
  PathSet both = Union(knows, two_hops);
  std::printf("knows ∪ (knows ⋈ knows) has %zu paths\n", both.size());

  // 4. The recursive operator ϕ. Walk semantics diverges on our cycle —
  //    the library reports it instead of hanging.
  auto walk = Recursive(knows, PathSemantics::kWalk,
                        {.max_path_length = 64});
  std::printf("phi_WALK:    %s\n", walk.status().ToString().c_str());
  //    Trail semantics is finite.
  auto trails = Recursive(knows, PathSemantics::kTrail);
  std::printf("phi_TRAIL:   %zu paths\n", trails->size());
  auto shortest = Recursive(knows, PathSemantics::kShortest);
  std::printf("phi_SHORTEST: %zu paths (one per reachable pair here)\n",
              shortest->size());

  // 5. Or just write GQL. The optimizer turns ANY SHORTEST WALK into a
  //    terminating ϕShortest plan automatically.
  auto result = ExecuteQuery(
      g, "MATCH ANY SHORTEST WALK p = (?x {name:\"Ann\"})-[:Knows+]->(?y)");
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("ANY SHORTEST WALK from Ann: %s\n",
              result->ToString(g).c_str());
  return 0;
}
