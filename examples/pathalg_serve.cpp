// pathalg_serve — the concurrent query server (src/server): a shared
// GraphCatalog + process-wide plan cache underneath one session per
// client, speaking the line protocol of engine/serve.h extended with the
// server commands (!threads, !limits, !timing, !record, catalog-backed
// !graph, !stats with catalog/session/pool counters).
//
// Usage:
//   pathalg_serve                          # Figure 1 graph, stdin/stdout
//   pathalg_serve --graph "social persons=200 seed=7"
//   pathalg_serve --csv graph.csv          # graph from a CSV file
//   pathalg_serve --port 7687              # TCP: concurrent clients on
//                                          # loopback (0 = kernel-picked,
//                                          # printed to stderr)
//   pathalg_serve --max-sessions 8         # admission gate; clients over
//                                          # the limit get one BUSY line
//   pathalg_serve --min-ok 3               # exit 1 unless >= 3 queries
//                                          # answered OK (CI smoke gate)
//   pathalg_serve --threads 4              # parallel operator evaluation
//                                          # (0 = hardware concurrency)
//   pathalg_serve --snapshot <file.snap>   # graph from a binary snapshot
//                                          # (mmap'd, storage/)
//   pathalg_serve --snapshot-dir cache/    # persist generator graphs as
//                                          # snapshots; later starts mmap
//                                          # them instead of rebuilding
//   pathalg_serve --mutation-dir live/     # graphs become mutable: !mutate
//                                          # journals to disk (fsync),
//                                          # compaction publishes base
//                                          # snapshots, restart recovers
//                                          # the last acknowledged version
//   pathalg_serve --default-deadline-ms 50 # per-query wall-clock deadline
//                                          # every session starts with
//                                          # (sessions adjust via
//                                          # !deadline <ms>|off)
//   pathalg_serve --drain-deadline-ms 500  # graceful-stop budget: how
//                                          # long SIGTERM lets in-flight
//                                          # queries finish before
//                                          # cancelling them
//   pathalg_serve --fault-inject 'seed=7;snapshot-read=1'
//                                          # deterministic fault injection
//                                          # (common/fault_injection.h);
//                                          # robustness testing only
//
// SIGTERM/SIGINT in TCP mode trigger a graceful drain: the intake
// closes, in-flight queries get --drain-deadline-ms to finish (then are
// cooperatively cancelled), and live !record captures flush.
//
// Examples:
//   printf 'MATCH ANY SHORTEST TRAIL p = (x)-[:Knows+]->(y)\n!stats\n'
//     | pathalg_serve
//   pathalg_serve --port 7687 &  then:  nc localhost 7687  (several at once)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#ifdef __unix__
#include <signal.h>  // NOLINT — sigwait/pthread_sigmask need the POSIX header
#endif

#include "common/fault_injection.h"
#include "server/session.h"
#include "server/tcp_server.h"

using namespace pathalg;  // NOLINT — example brevity

namespace {

int Fail(const char* msg) {
  std::fprintf(stderr, "pathalg_serve: %s\n", msg);
  return 1;
}

/// stdin mode: one ServerSession over the same stack as a TCP connection,
/// so !record / !limits / !threads work identically when piped.
int ServePipe(server::SessionManager& manager, size_t min_ok) {
  Result<std::unique_ptr<server::ServerSession>> session = manager.Open();
  if (!session.ok()) return Fail(session.status().ToString().c_str());
  server::ServerSession& s = **session;
  std::string line;
  while (std::getline(std::cin, line)) {
    std::string response;
    const bool keep_going = s.HandleLine(line, &response);
    std::cout << response << std::flush;
    if (!keep_going) break;
  }
  const engine::ServeResult& result = s.result();
  std::fprintf(stderr, "session done: %zu requests, %zu ok, %zu errors\n",
               result.requests, result.ok, result.errors);
  if (result.ok < min_ok) {
    std::fprintf(stderr,
                 "pathalg_serve: only %zu OK answers (< --min-ok %zu)\n",
                 result.ok, min_ok);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string graph_spec;
  std::string snapshot_dir;
  std::string mutation_dir;
  std::string fault_spec;
  int port = -1;
  size_t min_ok = 0;
  size_t threads = 1;
  size_t max_sessions = 8;
  size_t default_deadline = 0;   // ms; 0 = none
  size_t drain_deadline = 2000;  // ms
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto next_size = [&](const char* what, size_t* out) {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "pathalg_serve: %s needs a number\n", what);
        return false;
      }
      char* end = nullptr;
      long parsed = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || parsed < 0) {
        std::fprintf(stderr,
                     "pathalg_serve: %s must be a non-negative integer\n",
                     what);
        return false;
      }
      *out = static_cast<size_t>(parsed);
      return true;
    };
    if (arg == "--graph") {
      const char* v = next();
      if (v == nullptr) return Fail("--graph needs a spec");
      graph_spec = v;
    } else if (arg == "--csv") {
      const char* v = next();
      if (v == nullptr) return Fail("--csv needs a path");
      graph_spec = std::string("csv ") + v;
    } else if (arg == "--snapshot") {
      const char* v = next();
      if (v == nullptr) return Fail("--snapshot needs a path");
      graph_spec = std::string("snapshot ") + v;
    } else if (arg == "--snapshot-dir") {
      const char* v = next();
      if (v == nullptr) return Fail("--snapshot-dir needs a directory");
      snapshot_dir = v;
    } else if (arg == "--mutation-dir") {
      const char* v = next();
      if (v == nullptr) return Fail("--mutation-dir needs a directory");
      mutation_dir = v;
    } else if (arg == "--port") {
      size_t value = 0;
      if (!next_size("--port", &value)) return 1;
      if (value > 65535) {
        return Fail("--port must be an integer in [0, 65535]");
      }
      port = static_cast<int>(value);
    } else if (arg == "--min-ok") {
      if (!next_size("--min-ok", &min_ok)) return 1;
    } else if (arg == "--threads") {
      if (!next_size("--threads", &threads)) return 1;
    } else if (arg == "--max-sessions") {
      if (!next_size("--max-sessions", &max_sessions)) return 1;
    } else if (arg == "--default-deadline-ms") {
      if (!next_size("--default-deadline-ms", &default_deadline)) return 1;
    } else if (arg == "--drain-deadline-ms") {
      if (!next_size("--drain-deadline-ms", &drain_deadline)) return 1;
    } else if (arg == "--fault-inject") {
      const char* v = next();
      if (v == nullptr) {
        return Fail("--fault-inject needs a spec like "
                    "'seed=7;snapshot-read=1'");
      }
      fault_spec = v;
    } else {
      std::fprintf(stderr,
                   "usage: pathalg_serve [--graph <spec> | --csv <file> | "
                   "--snapshot <file>] [--snapshot-dir <dir>] "
                   "[--mutation-dir <dir>] "
                   "[--port N] [--max-sessions N] [--min-ok N] "
                   "[--threads N] [--default-deadline-ms N] "
                   "[--drain-deadline-ms N] [--fault-inject <spec>]\n");
      return arg == "--help" ? 0 : 1;
    }
  }

  if (!fault_spec.empty()) {
    const Status configured =
        FaultInjector::Global().Configure(fault_spec);
    if (!configured.ok()) return Fail(configured.ToString().c_str());
    std::fprintf(stderr, "fault injection ON: %s\n", fault_spec.c_str());
  }

#ifdef __unix__
  // Graceful shutdown needs SIGTERM/SIGINT claimed by sigwait before any
  // worker thread exists (threads inherit the mask; a thread with the
  // signal unblocked would take the default, terminating, disposition).
  // Pipe mode keeps default signal handling — Ctrl-C just kills the pipe.
  sigset_t stop_signals;
  sigemptyset(&stop_signals);
  sigaddset(&stop_signals, SIGTERM);
  sigaddset(&stop_signals, SIGINT);
  if (port >= 0) pthread_sigmask(SIG_BLOCK, &stop_signals, nullptr);
#endif

  server::GraphCatalogOptions catalog_options;
  catalog_options.snapshot_dir = snapshot_dir;
  catalog_options.mutation_dir = mutation_dir;
  server::GraphCatalog catalog(catalog_options);
  server::SessionManagerOptions options;
  options.max_sessions = max_sessions;
  options.default_graph_spec = graph_spec;
  options.default_deadline_ms = default_deadline;
  options.engine.query.eval.threads = threads;
  server::SessionManager manager(&catalog, options);

  // Load the default graph up front so a bad spec fails at startup, not
  // on the first connection.
  Result<server::CatalogEntryPtr> entry = catalog.Get(graph_spec);
  if (!entry.ok()) return Fail(entry.status().ToString().c_str());
  std::fprintf(stderr,
               "graph ready: %zu nodes, %zu edges (eval threads: %zu, "
               "max sessions: %zu)\n",
               (*entry)->stats.nodes, (*entry)->stats.edges, threads,
               max_sessions);

  if (port >= 0) {
    if (min_ok > 0) {
      return Fail("--min-ok only applies to stdin mode (TCP serves "
                  "clients forever)");
    }
    server::TcpServer tcp(&manager);
    server::TcpServerOptions tcp_options;
    tcp_options.port = static_cast<uint16_t>(port);
    tcp_options.drain_deadline_ms = drain_deadline;
    Status started = tcp.Start(tcp_options);
    if (!started.ok()) return Fail(started.ToString().c_str());
#ifdef __unix__
    // One dedicated thread owns the (blocked) stop signals: Stop() locks
    // and condition-waits, so it must run in a normal thread, never in
    // signal context. sigwait returns on the first SIGTERM/SIGINT and
    // the thread performs the graceful drain.
    std::thread signal_waiter([&stop_signals, &tcp] {
      int sig = 0;
      if (sigwait(&stop_signals, &sig) == 0) {
        std::fprintf(stderr, "signal %d: draining and stopping\n", sig);
      }
      tcp.Stop();
    });
#endif
    std::fprintf(stderr,
                 "listening on 127.0.0.1:%u (SIGTERM/Ctrl-C drains and "
                 "stops)\n",
                 tcp.port());
    tcp.WaitUntilStopped();
#ifdef __unix__
    signal_waiter.join();
#endif
    return 0;
  }

  return ServePipe(manager, min_ok);
}
