// pathalg_serve — the line-protocol query server (engine/serve.h): one
// query or !command per line in, one response line out. The front door for
// driving end-to-end throughput from an external client.
//
// Usage:
//   pathalg_serve                          # Figure 1 graph, stdin/stdout
//   pathalg_serve --graph "social persons=200 seed=7"
//   pathalg_serve --csv graph.csv          # graph from a CSV file
//   pathalg_serve --port 7687              # TCP mode: serve one client at
//                                          # a time, line protocol per
//                                          # connection (e.g. via netcat)
//   pathalg_serve --min-ok 3               # exit 1 unless >= 3 queries
//                                          # answered OK (CI smoke gate)
//   pathalg_serve --threads 4              # parallel operator evaluation
//                                          # (0 = hardware concurrency)
//
// Examples:
//   printf 'MATCH ANY SHORTEST TRAIL p = (x)-[:Knows+]->(y)\n!stats\n'
//     | pathalg_serve
//   pathalg_serve --port 7687 &  then:  nc localhost 7687

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "engine/serve.h"
#include "engine/workload_file.h"
#include "graph/csv.h"

#ifdef __unix__
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

using namespace pathalg;  // NOLINT — example brevity

namespace {

int Fail(const char* msg) {
  std::fprintf(stderr, "pathalg_serve: %s\n", msg);
  return 1;
}

#ifdef __unix__
// Serves TCP clients sequentially: accept, run the line protocol over the
// connection, repeat. One session/cache per process keeps the demo
// single-threaded; a client issuing !quit ends its connection only.
int ServeTcp(engine::QueryEngine& eng, int port) {
  // A client closing its end mid-response must not SIGPIPE-kill the
  // server; write() then fails with EPIPE and we drop the connection.
  std::signal(SIGPIPE, SIG_IGN);
  int listener = socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) return Fail("socket() failed");
  int one = 1;
  setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(listener);
    return Fail("bind() failed (port in use?)");
  }
  if (listen(listener, 4) < 0) {
    close(listener);
    return Fail("listen() failed");
  }
  std::fprintf(stderr, "listening on 127.0.0.1:%d (Ctrl-C to stop)\n", port);
  while (true) {
    int fd = accept(listener, nullptr, nullptr);
    if (fd < 0) continue;
    // Line-buffered read loop over the raw fd; responses are written
    // whole, so the protocol stays one-line-in / lines-out.
    std::string pending;
    char buf[4096];
    ssize_t n;
    bool quit = false;
    engine::ServeResult result;
    auto respond = [&](const std::string& line) {
      std::string response;
      quit = !engine::HandleRequestLine(eng, line, &response, &result);
      size_t off = 0;
      while (off < response.size()) {
        ssize_t w = write(fd, response.data() + off, response.size() - off);
        if (w <= 0) {
          quit = true;
          break;
        }
        off += static_cast<size_t>(w);
      }
    };
    while (!quit && (n = read(fd, buf, sizeof(buf))) > 0) {
      pending.append(buf, static_cast<size_t>(n));
      size_t nl;
      while (!quit && (nl = pending.find('\n')) != std::string::npos) {
        std::string line = pending.substr(0, nl);
        pending.erase(0, nl + 1);
        respond(line);
      }
    }
    // A final request without a trailing newline still gets an answer
    // (parity with stdin mode, where getline handles the last line).
    if (!quit && !pending.empty()) respond(pending);
    close(fd);
    std::fprintf(stderr, "client done: %zu requests, %zu ok, %zu errors\n",
                 result.requests, result.ok, result.errors);
  }
}
#endif  // __unix__

}  // namespace

int main(int argc, char** argv) {
  std::string graph_spec;
  std::string csv_path;
  int port = -1;
  size_t min_ok = 0;
  size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--graph") {
      const char* v = next();
      if (v == nullptr) return Fail("--graph needs a spec");
      graph_spec = v;
    } else if (arg == "--csv") {
      const char* v = next();
      if (v == nullptr) return Fail("--csv needs a path");
      csv_path = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Fail("--port needs a number");
      char* end = nullptr;
      long parsed = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || parsed < 0 || parsed > 65535) {
        return Fail("--port must be an integer in [0, 65535]");
      }
      port = static_cast<int>(parsed);
    } else if (arg == "--min-ok") {
      const char* v = next();
      if (v == nullptr) return Fail("--min-ok needs a number");
      char* end = nullptr;
      long parsed = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || parsed < 0) {
        return Fail("--min-ok must be a non-negative integer");
      }
      min_ok = static_cast<size_t>(parsed);
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Fail("--threads needs a number");
      char* end = nullptr;
      long parsed = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || parsed < 0) {
        return Fail("--threads must be a non-negative integer "
                    "(0 = hardware concurrency)");
      }
      threads = static_cast<size_t>(parsed);
    } else {
      std::fprintf(stderr,
                   "usage: pathalg_serve [--graph <spec> | --csv <file>] "
                   "[--port N] [--min-ok N] [--threads N]\n");
      return arg == "--help" ? 0 : 1;
    }
  }

  PropertyGraph g;
  if (!csv_path.empty()) {
    std::ifstream file(csv_path);
    if (!file) return Fail("cannot open --csv file");
    std::stringstream buffer;
    buffer << file.rdbuf();
    auto loaded = LoadGraphFromCsv(buffer.str());
    if (!loaded.ok()) return Fail(loaded.status().ToString().c_str());
    g = std::move(loaded).value();
  } else {
    auto built = engine::BuildWorkloadGraph(graph_spec);
    if (!built.ok()) return Fail(built.status().ToString().c_str());
    g = std::move(built).value();
  }

  engine::EngineOptions eng_options;
  eng_options.query.eval.threads = threads;
  engine::QueryEngine eng(std::move(g), eng_options);
  std::fprintf(stderr, "graph ready: %zu nodes, %zu edges (eval threads: %zu)\n",
               eng.graph().num_nodes(), eng.graph().num_edges(),
               eng.eval_threads());

  if (port >= 0) {
#ifdef __unix__
    if (min_ok > 0) {
      return Fail("--min-ok only applies to stdin mode (TCP serves "
                  "clients forever)");
    }
    return ServeTcp(eng, port);
#else
    return Fail("--port requires a POSIX platform; use stdin mode");
#endif
  }

  engine::ServeResult result = engine::ServeLines(eng, std::cin, std::cout);
  std::fprintf(stderr, "session done: %zu requests, %zu ok, %zu errors\n",
               result.requests, result.ok, result.errors);
  if (result.ok < min_ok) {
    std::fprintf(stderr, "pathalg_serve: only %zu OK answers (< --min-ok %zu)\n",
                 result.ok, min_ok);
    return 1;
  }
  return 0;
}
