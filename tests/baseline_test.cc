// Tests for the automaton baseline: NFA construction/matching and the
// product-graph RPQ evaluator under every restrictor, cross-checked on
// Figure 1 against hand-derived answers.

#include <gtest/gtest.h>

#include "baseline/automaton_eval.h"
#include "baseline/nfa.h"
#include "regex/parser.h"
#include "workload/figure1.h"

namespace pathalg {
namespace {

RegexPtr MustParse(std::string_view text) {
  auto r = ParseRegex(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

TEST(NfaTest, MatchesLabel) {
  Nfa nfa = Nfa::FromRegex(MustParse(":Knows"));
  EXPECT_TRUE(nfa.Matches({"Knows"}));
  EXPECT_FALSE(nfa.Matches({"Likes"}));
  EXPECT_FALSE(nfa.Matches({}));
  EXPECT_FALSE(nfa.Matches({"Knows", "Knows"}));
}

TEST(NfaTest, MatchesConcatUnionClosures) {
  Nfa ab = Nfa::FromRegex(MustParse(":a/:b"));
  EXPECT_TRUE(ab.Matches({"a", "b"}));
  EXPECT_FALSE(ab.Matches({"a"}));
  EXPECT_FALSE(ab.Matches({"b", "a"}));

  Nfa alt = Nfa::FromRegex(MustParse(":a|:b"));
  EXPECT_TRUE(alt.Matches({"a"}));
  EXPECT_TRUE(alt.Matches({"b"}));
  EXPECT_FALSE(alt.Matches({"a", "b"}));

  Nfa plus = Nfa::FromRegex(MustParse(":a+"));
  EXPECT_FALSE(plus.Matches({}));
  EXPECT_TRUE(plus.Matches({"a"}));
  EXPECT_TRUE(plus.Matches({"a", "a", "a"}));
  EXPECT_FALSE(plus.Matches({"a", "b"}));

  Nfa star = Nfa::FromRegex(MustParse("(:a/:b)*"));
  EXPECT_TRUE(star.Matches({}));
  EXPECT_TRUE(star.Matches({"a", "b"}));
  EXPECT_TRUE(star.Matches({"a", "b", "a", "b"}));
  EXPECT_FALSE(star.Matches({"a", "b", "a"}));

  Nfa opt = Nfa::FromRegex(MustParse(":a?"));
  EXPECT_TRUE(opt.Matches({}));
  EXPECT_TRUE(opt.Matches({"a"}));
  EXPECT_FALSE(opt.Matches({"a", "a"}));
}

TEST(NfaTest, PaperPattern) {
  Nfa nfa = Nfa::FromRegex(MustParse("(:Knows+)|(:Likes/:Has_creator)+"));
  EXPECT_TRUE(nfa.Matches({"Knows"}));
  EXPECT_TRUE(nfa.Matches({"Knows", "Knows", "Knows"}));
  EXPECT_TRUE(nfa.Matches({"Likes", "Has_creator"}));
  EXPECT_TRUE(nfa.Matches({"Likes", "Has_creator", "Likes", "Has_creator"}));
  EXPECT_FALSE(nfa.Matches({"Likes"}));
  EXPECT_FALSE(nfa.Matches({"Knows", "Likes", "Has_creator"}));
  EXPECT_FALSE(nfa.Matches({}));
}

class AutomatonEvalTest : public ::testing::Test {
 protected:
  void SetUp() override { g_ = MakeFigure1Graph(&ids_); }
  PropertyGraph g_;
  Figure1Ids ids_;
};

TEST_F(AutomatonEvalTest, TrailMatchesHandDerivedAnswer) {
  AutomatonEvalOptions opts;
  opts.semantics = PathSemantics::kTrail;
  auto r = EvaluateRpqAutomaton(g_, MustParse(":Knows+"), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 12u);  // the complete Knows+ trail set
  for (const Path& p : *r) EXPECT_TRUE(p.IsTrail());
}

TEST_F(AutomatonEvalTest, AcyclicSimpleShortestCounts) {
  AutomatonEvalOptions opts;
  opts.semantics = PathSemantics::kAcyclic;
  auto acyclic = EvaluateRpqAutomaton(g_, MustParse(":Knows+"), opts);
  ASSERT_TRUE(acyclic.ok());
  EXPECT_EQ(acyclic->size(), 7u);

  opts.semantics = PathSemantics::kSimple;
  auto simple = EvaluateRpqAutomaton(g_, MustParse(":Knows+"), opts);
  ASSERT_TRUE(simple.ok());
  EXPECT_EQ(simple->size(), 9u);

  opts.semantics = PathSemantics::kShortest;
  auto shortest = EvaluateRpqAutomaton(g_, MustParse(":Knows+"), opts);
  ASSERT_TRUE(shortest.ok());
  EXPECT_EQ(shortest->size(), 9u);
}

TEST_F(AutomatonEvalTest, WalkBudget) {
  AutomatonEvalOptions opts;
  opts.semantics = PathSemantics::kWalk;
  opts.limits.max_path_length = 4;
  opts.limits.truncate = true;
  auto r = EvaluateRpqAutomaton(g_, MustParse(":Knows+"), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 18u);  // walks of length ≤ 4, as in recursive_test

  opts.limits.truncate = false;
  auto err = EvaluateRpqAutomaton(g_, MustParse(":Knows+"), opts);
  EXPECT_TRUE(err.status().IsResourceExhausted());
}

TEST_F(AutomatonEvalTest, SourceAndTargetConstraints) {
  AutomatonEvalOptions opts;
  opts.semantics = PathSemantics::kSimple;
  opts.source = ids_.n1;
  opts.target = ids_.n4;
  auto r = EvaluateRpqAutomaton(
      g_, MustParse("(:Knows+)|(:Likes/:Has_creator)+"), opts);
  ASSERT_TRUE(r.ok());
  // Exactly the paper's path1 and path2.
  PathSet expected;
  expected.Insert(Path({ids_.n1, ids_.n2, ids_.n4}, {ids_.e1, ids_.e4}));
  expected.Insert(Path({ids_.n1, ids_.n6, ids_.n3, ids_.n7, ids_.n4},
                       {ids_.e8, ids_.e11, ids_.e7, ids_.e10}));
  EXPECT_EQ(*r, expected);
}

TEST_F(AutomatonEvalTest, EmptyWordProducesZeroLengthPaths) {
  AutomatonEvalOptions opts;
  opts.semantics = PathSemantics::kAcyclic;
  auto r = EvaluateRpqAutomaton(g_, MustParse(":Knows*"), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 14u);  // 7 nodes + 7 acyclic Knows+ paths
  opts.source = ids_.n5;      // n5 has no Knows edges at all
  auto only_node = EvaluateRpqAutomaton(g_, MustParse(":Knows*"), opts);
  ASSERT_TRUE(only_node.ok());
  EXPECT_EQ(only_node->size(), 1u);
  EXPECT_TRUE(only_node->Contains(Path::SingleNode(ids_.n5)));
}

TEST_F(AutomatonEvalTest, ShortestEnumeratesAllMinimalWitnesses) {
  // Two shortest (Likes/Has_creator)+ routes? On Figure 1 routes are
  // unique, so check the diamond graph instead via labels.
  GraphBuilder b;
  NodeId s = b.AddNode("N");
  NodeId t1 = b.AddNode("N");
  NodeId t2 = b.AddNode("N");
  NodeId e = b.AddNode("N");
  ASSERT_TRUE(b.AddEdge(s, t1, "a").ok());
  ASSERT_TRUE(b.AddEdge(s, t2, "a").ok());
  ASSERT_TRUE(b.AddEdge(t1, e, "a").ok());
  ASSERT_TRUE(b.AddEdge(t2, e, "a").ok());
  PropertyGraph g = b.Build();
  AutomatonEvalOptions opts;
  opts.semantics = PathSemantics::kShortest;
  opts.source = s;
  opts.target = e;
  auto r = EvaluateRpqAutomaton(g, MustParse(":a+"), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);  // both 2-edge routes are minimal
}

TEST_F(AutomatonEvalTest, InvalidInputs) {
  AutomatonEvalOptions opts;
  opts.source = 999;
  EXPECT_TRUE(EvaluateRpqAutomaton(g_, MustParse(":Knows"), opts)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      EvaluateRpqAutomaton(g_, nullptr, {}).status().IsInvalidArgument());
}

TEST_F(AutomatonEvalTest, MaxPathsBudget) {
  AutomatonEvalOptions opts;
  opts.semantics = PathSemantics::kTrail;
  opts.limits.max_paths = 3;
  auto err = EvaluateRpqAutomaton(g_, MustParse(":Knows+"), opts);
  EXPECT_TRUE(err.status().IsResourceExhausted());
  opts.limits.truncate = true;
  auto ok = EvaluateRpqAutomaton(g_, MustParse(":Knows+"), opts);
  ASSERT_TRUE(ok.ok());
  EXPECT_LE(ok->size(), 3u);
}

}  // namespace
}  // namespace pathalg
