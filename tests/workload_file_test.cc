// Tests for the `.gqlw` workload format (engine/workload_file.h) and the
// replay driver (engine/replay.h): parsing and directives, bad-directive
// diagnostics, format round-trip, graph-spec building, and
// expected-cardinality / cache-hit checking end to end.

#include <gtest/gtest.h>

#include "engine/replay.h"
#include "engine/workload_file.h"

namespace pathalg {
namespace engine {
namespace {

// --- ParseWorkload ---------------------------------------------------------

TEST(WorkloadFileTest, ParsesDirectivesAndDefaults) {
  auto w = ParseWorkload(
      "## a comment\n"
      "# graph social persons=10 seed=3\n"
      "\n"
      "# name warmup\n"
      "# expect 42\n"
      "MATCH ALL WALK p = (?x)-[:Knows]->(?y)\n"
      "# repeat 3\n"
      "MATCH ALL WALK p = (?x)-[:Likes]->(?y)\n"
      "MATCH ALL WALK p = (?x)-[:Follows]->(?y)\n");
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_EQ(w->graph_spec, "social persons=10 seed=3");
  ASSERT_EQ(w->entries.size(), 3u);

  EXPECT_EQ(w->entries[0].name, "warmup");
  EXPECT_EQ(w->entries[0].repeat, 1u);
  EXPECT_EQ(w->entries[0].expect, std::optional<size_t>(42));
  EXPECT_EQ(w->entries[0].line, 6u);

  // expect/name are one-shot; repeat is sticky; names default to q<i>.
  EXPECT_EQ(w->entries[1].name, "q2");
  EXPECT_EQ(w->entries[1].repeat, 3u);
  EXPECT_FALSE(w->entries[1].expect.has_value());
  EXPECT_EQ(w->entries[2].repeat, 3u);
}

TEST(WorkloadFileTest, EmptyAndCommentOnlyInputs) {
  auto empty = ParseWorkload("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->entries.empty());
  EXPECT_TRUE(empty->graph_spec.empty());
  auto comments = ParseWorkload("## only\n##comments\n#\n");
  ASSERT_TRUE(comments.ok()) << comments.status();
  EXPECT_TRUE(comments->entries.empty());
}

TEST(WorkloadFileTest, BadDirectiveDiagnostics) {
  struct Case {
    const char* text;
    const char* want;  // substring of the error message
  };
  const Case cases[] = {
      {"# bogus 1\n", "unknown directive"},
      {"# repeat\nq\n", "'# repeat' takes one integer"},
      {"# repeat zero\nq\n", "non-negative integer"},
      {"# repeat 0\nq\n", "must be >= 1"},
      {"# expect -3\nq\n", "non-negative integer"},
      {"# expect 1\n# expect 2\nq\n", "duplicate '# expect'"},
      {"# name a\n# name b\nq\n", "duplicate '# name'"},
      {"# expect 5\n", "no following query"},
      {"# graph figure1\n# graph figure1\n", "duplicate '# graph'"},
      {"q1\n# graph figure1\n", "must precede the first query"},
      {"# threads\nq\n", "'# threads' takes one integer"},
      {"# threads four\nq\n", "non-negative integer"},
      {"# threads 2\n# threads 4\nq\n", "duplicate '# threads'"},
      {"q1\n# threads 2\n", "must precede the first query"},
      {"# graph\n", "'# graph' needs a spec"},
      {"# graph klein_bottle\n", "unknown graph kind"},
      {"# graph social wombats=3\n", "unknown parameter 'wombats'"},
      {"# graph social persons=many\n", "non-negative integer"},
      {"# graph social persons\n", "expected key=value"},
      // Names key the replay JSON rollups, so collisions are rejected —
      // including an explicit name shadowing a later default ("q2").
      {"# name a\nq1\n# name a\nq2\n", "duplicate query name 'a'"},
      {"# name q2\nq1\nq2\n", "duplicate query name 'q2'"},
  };
  for (const Case& c : cases) {
    auto w = ParseWorkload(c.text);
    ASSERT_FALSE(w.ok()) << "accepted: " << c.text;
    EXPECT_TRUE(w.status().IsParseError()) << c.text;
    EXPECT_NE(w.status().message().find(c.want), std::string::npos)
        << "for input <" << c.text << "> got: " << w.status().message();
    // Every diagnostic carries a line number.
    EXPECT_NE(w.status().message().find("workload line"), std::string::npos);
  }
}

TEST(WorkloadFileTest, ErrorsCarryTheRightLineNumber) {
  auto w = ParseWorkload("## fine\nq1\n# bogus\n");
  ASSERT_FALSE(w.ok());
  EXPECT_NE(w.status().message().find("workload line 3"), std::string::npos)
      << w.status().message();
}

TEST(WorkloadFileTest, ThreadsDirectiveParsesAndDefaultsToUnset) {
  auto w = ParseWorkload("# graph figure1\n# threads 4\nq1\n");
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_EQ(w->threads, std::optional<size_t>(4));
  // 0 is legal: hardware concurrency (EvalOptions::threads semantics).
  auto hw = ParseWorkload("# threads 0\nq1\n");
  ASSERT_TRUE(hw.ok()) << hw.status();
  EXPECT_EQ(hw->threads, std::optional<size_t>(0));
  auto unset = ParseWorkload("q1\n");
  ASSERT_TRUE(unset.ok());
  EXPECT_FALSE(unset->threads.has_value());
}

TEST(WorkloadFileTest, FormatRoundTrips) {
  const char* text =
      "# graph skewed persons=50 knows=3 seed=9\n"
      "# threads 4\n"
      "# name first\n"
      "# expect 7\n"
      "MATCH ALL WALK p = (?x)-[:Knows]->(?y)\n"
      "# repeat 4\n"
      "MATCH ALL WALK p = (?x)-[:Follows]->(?y)\n"
      "# repeat 1\n"
      "# name last\n"
      "MATCH ANY SHORTEST p = (?x)-[:Knows+]->(?y)\n";
  auto w = ParseWorkload(text);
  ASSERT_TRUE(w.ok()) << w.status();
  std::string formatted = FormatWorkload(*w);
  auto reparsed = ParseWorkload(formatted);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << formatted;
  EXPECT_EQ(*w, *reparsed) << formatted;
  // And formatting is a fixpoint.
  EXPECT_EQ(FormatWorkload(*reparsed), formatted);
}

TEST(WorkloadFileTest, LoadMissingFileIsNotFound) {
  auto w = LoadWorkloadFile("/nonexistent/nope.gqlw");
  ASSERT_FALSE(w.ok());
  EXPECT_TRUE(w.status().IsNotFound());
}

// --- BuildWorkloadGraph ----------------------------------------------------

TEST(BuildWorkloadGraphTest, BuildsEveryFamily) {
  auto fig1 = BuildWorkloadGraph("figure1");
  ASSERT_TRUE(fig1.ok());
  EXPECT_EQ(fig1->num_nodes(), 7u);
  EXPECT_EQ(fig1->num_edges(), 11u);

  // Empty spec defaults to figure1.
  auto dflt = BuildWorkloadGraph("");
  ASSERT_TRUE(dflt.ok());
  EXPECT_EQ(dflt->num_nodes(), 7u);

  auto cycle = BuildWorkloadGraph("cycle n=5 label=Hop");
  ASSERT_TRUE(cycle.ok());
  EXPECT_EQ(cycle->num_nodes(), 5u);
  EXPECT_NE(cycle->FindLabel("Hop"), kNoLabel);

  auto chain = BuildWorkloadGraph("chain n=5");
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->num_edges(), 4u);

  auto grid = BuildWorkloadGraph("grid w=3 h=4");
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->num_nodes(), 12u);

  auto diamond = BuildWorkloadGraph("diamond k=2");
  ASSERT_TRUE(diamond.ok());
  EXPECT_EQ(diamond->num_edges(), 8u);

  auto random = BuildWorkloadGraph("random n=10 m=20 seed=1 labels=a,b");
  ASSERT_TRUE(random.ok());
  EXPECT_EQ(random->num_edges(), 20u);

  auto social = BuildWorkloadGraph("social persons=10 messages=5 seed=2");
  ASSERT_TRUE(social.ok());
  EXPECT_EQ(social->num_nodes(), 15u);

  auto skewed = BuildWorkloadGraph("skewed persons=20 knows=2 follows=1");
  ASSERT_TRUE(skewed.ok());
  EXPECT_EQ(skewed->num_nodes(), 20u);
  EXPECT_EQ(skewed->num_edges(), 60u);
}

TEST(BuildWorkloadGraphTest, RejectsDegenerateParameters) {
  EXPECT_FALSE(BuildWorkloadGraph("social persons=1").ok());
  EXPECT_FALSE(BuildWorkloadGraph("skewed persons=0").ok());
  EXPECT_FALSE(BuildWorkloadGraph("random n=0").ok());
}

// --- ReplayWorkload --------------------------------------------------------

Workload Figure1Workload() {
  auto w = ParseWorkload(
      "# graph figure1\n"
      "# expect 9\n"
      "MATCH ANY SHORTEST TRAIL p = (x)-[:Knows+]->(y)\n"
      "# repeat 2\n"
      "# expect 4\n"
      "MATCH ALL WALK p = (?x)-[:Knows]->(?y)\n");
  EXPECT_TRUE(w.ok()) << w.status();
  return std::move(w).value();
}

TEST(ReplayWorkloadTest, ChecksExpectationsAndCountsCacheHits) {
  ReplayOptions options;
  options.passes = 2;
  auto report = ReplayWorkload(Figure1Workload(), options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok());
  EXPECT_EQ(report->passes, 2u);
  EXPECT_EQ(report->total_runs, 6u);  // (1 + 2) entries x 2 passes
  EXPECT_EQ(report->cache_misses, 2u);  // one per distinct query
  EXPECT_EQ(report->cache_hits, 4u);
  EXPECT_EQ(report->errors, 0u);
  EXPECT_EQ(report->expect_failures, 0u);
  ASSERT_EQ(report->queries.size(), 2u);
  EXPECT_EQ(report->queries[0].result_paths, 9u);
  EXPECT_TRUE(report->queries[0].stable_cardinality);
  EXPECT_GT(report->queries[0].eval_us + report->queries[0].parse_us, 0u);
}

TEST(ReplayWorkloadTest, ThreadsDirectiveAndOverrideReachTheEngine) {
  Workload w = Figure1Workload();
  w.threads = 4;
  // The workload directive configures the replay...
  auto report = ReplayWorkload(w);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok());
  EXPECT_EQ(report->threads, 4u);
  // ...but is scoped to it: a long-lived session keeps its own setting.
  {
    PropertyGraph g = BuildWorkloadGraph(w.graph_spec).value();
    EngineOptions eng_options;
    eng_options.query.eval.threads = 8;
    QueryEngine session(std::move(g), eng_options);
    auto scoped = ReplayWorkload(session, w);
    ASSERT_TRUE(scoped.ok()) << scoped.status();
    EXPECT_EQ(scoped->threads, 4u);        // the replay ran at 4
    EXPECT_EQ(session.eval_threads(), 8u);  // the session came back at 8
  }
  EXPECT_NE(ReplayReportToJson(*report).find("\"threads\": 4"),
            std::string::npos);
  // ...an explicit ReplayOptions override wins (the bench sweep knob)...
  ReplayOptions options;
  options.threads = 2;
  auto overridden = ReplayWorkload(w, options);
  ASSERT_TRUE(overridden.ok()) << overridden.status();
  EXPECT_EQ(overridden->threads, 2u);
  // ...and results are identical at every thread count (determinism).
  auto serial_opts = ReplayOptions();
  serial_opts.threads = 1;
  auto serial = ReplayWorkload(w, serial_opts);
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(serial->queries.size(), overridden->queries.size());
  for (size_t i = 0; i < serial->queries.size(); ++i) {
    EXPECT_EQ(serial->queries[i].result_paths,
              overridden->queries[i].result_paths);
  }
}

TEST(ReplayWorkloadTest, ReportsExpectationFailure) {
  auto w = ParseWorkload(
      "# graph figure1\n"
      "# expect 12345\n"
      "MATCH ALL WALK p = (?x)-[:Knows]->(?y)\n");
  ASSERT_TRUE(w.ok());
  auto report = ReplayWorkload(*w);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->ok());
  EXPECT_EQ(report->expect_failures, 1u);
  EXPECT_FALSE(report->queries[0].expect_ok);
  EXPECT_EQ(report->queries[0].result_paths, 4u);
  EXPECT_EQ(report->errors, 0u);  // a miss is not an error
}

TEST(ReplayWorkloadTest, RecordsQueryErrorsAndContinues) {
  auto w = ParseWorkload(
      "# graph figure1\n"
      "NOT GQL AT ALL\n"
      "MATCH ALL WALK p = (?x)-[:Knows]->(?y)\n");
  ASSERT_TRUE(w.ok());
  auto report = ReplayWorkload(*w);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->errors, 1u);
  EXPECT_FALSE(report->queries[0].error.ok());
  EXPECT_TRUE(report->queries[1].error.ok());
  EXPECT_EQ(report->queries[1].result_paths, 4u);

  ReplayOptions fail_fast;
  fail_fast.fail_fast = true;
  auto failed = ReplayWorkload(*w, fail_fast);
  EXPECT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsParseError());
}

TEST(ReplayWorkloadTest, JsonReportHasCompareCompatibleRollups) {
  auto report = ReplayWorkload(Figure1Workload());
  ASSERT_TRUE(report.ok());
  std::string json = ReplayReportToJson(*report);
  EXPECT_NE(json.find("\"schema\": \"pathalg-replay-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"wall_time_ms\": {\"q1\":"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"sum_iteration_time_ms\": {\"q1\":"),
            std::string::npos);
  EXPECT_NE(json.find("\"expect\": 9"), std::string::npos);
  std::string table = ReplayReportToTable(*report);
  EXPECT_NE(table.find("q1"), std::string::npos);
  EXPECT_NE(table.find("ok"), std::string::npos);
}

TEST(ReplayWorkloadTest, JsonEscapesControlCharacters) {
  // A query with an interior tab is legal (the GQL lexer skips it) but
  // must be escaped in the JSON report, not emitted raw.
  auto w = ParseWorkload(
      "# graph figure1\n"
      "MATCH ALL WALK p =\t(?x)-[:Knows]->(?y)\n");
  ASSERT_TRUE(w.ok()) << w.status();
  auto report = ReplayWorkload(*w);
  ASSERT_TRUE(report.ok());
  std::string json = ReplayReportToJson(*report);
  EXPECT_EQ(json.find('\t'), std::string::npos) << json;
  EXPECT_NE(json.find("p =\\t("), std::string::npos) << json;
}

TEST(ReplayWorkloadTest, RejectsZeroPasses) {
  ReplayOptions options;
  options.passes = 0;
  auto report = ReplayWorkload(Figure1Workload(), options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInvalidArgument());
}

}  // namespace
}  // namespace engine
}  // namespace pathalg
