// Tests for the Recursive Path Algebra (§4): the ϕ operator under all five
// semantics, both engines (naive Definition 4.1 fixpoint and optimized),
// budget behaviour on cyclic inputs, and the paper's Table 3.

#include <gtest/gtest.h>

#include "algebra/core_ops.h"
#include "algebra/recursive.h"
#include "path/path_ops.h"
#include "workload/figure1.h"
#include "workload/generators.h"

namespace pathalg {
namespace {

class RecursiveTest : public ::testing::Test {
 protected:
  void SetUp() override { g_ = MakeFigure1Graph(&ids_); }

  PathSet KnowsEdges() {
    return Select(g_, EdgesOf(g_), *EdgeLabelEq(1, "Knows"));
  }

  // The 14 paths of Table 3 (Knows+ paths on Figure 1).
  Path T3(int which) {
    auto& i = ids_;
    switch (which) {
      case 1: return Path({i.n1, i.n2}, {i.e1});
      case 2: return Path({i.n1, i.n2, i.n3, i.n2}, {i.e1, i.e2, i.e3});
      case 3: return Path({i.n1, i.n2, i.n3}, {i.e1, i.e2});
      case 4:
        return Path({i.n1, i.n2, i.n3, i.n2, i.n3},
                    {i.e1, i.e2, i.e3, i.e2});
      case 5: return Path({i.n1, i.n2, i.n4}, {i.e1, i.e4});
      case 6:
        return Path({i.n1, i.n2, i.n3, i.n2, i.n4},
                    {i.e1, i.e2, i.e3, i.e4});
      case 7: return Path({i.n2, i.n3, i.n2}, {i.e2, i.e3});
      case 8:
        return Path({i.n2, i.n3, i.n2, i.n3, i.n2},
                    {i.e2, i.e3, i.e2, i.e3});
      case 9: return Path({i.n2, i.n3}, {i.e2});
      case 10:
        return Path({i.n2, i.n3, i.n2, i.n3}, {i.e2, i.e3, i.e2});
      case 11: return Path({i.n2, i.n4}, {i.e4});
      case 12:
        return Path({i.n2, i.n3, i.n2, i.n4}, {i.e2, i.e3, i.e4});
      case 13: return Path({i.n3, i.n2, i.n4}, {i.e3, i.e4});
      case 14:
        return Path({i.n3, i.n2, i.n3, i.n2, i.n4},
                    {i.e3, i.e2, i.e3, i.e4});
      default:
        ADD_FAILURE() << "bad Table 3 index";
        return Path();
    }
  }

  PropertyGraph g_;
  Figure1Ids ids_;
};

// ---------------------------------------------------------------------------
// Table 3: membership of the paper's 14 sample paths under each semantics.
// The paper's checkmark columns, derived from the definitions:
//   Walk: all 14.
//   Trail (no repeated edge): p1,p2,p3,p5,p6,p7,p9,p11,p12,p13 — exactly the
//     set §5 Step 3 quotes.
//   Acyclic (no repeated node): p1,p3,p5,p9,p11,p13.
//   Simple (acyclic or closed): acyclic + p7.
//   Shortest (per endpoints): p1,p3,p5,p7,p9,p11,p13.
// ---------------------------------------------------------------------------
TEST_F(RecursiveTest, Table3Walk) {
  // All Table 3 paths are valid Knows+ walks; ϕWalk truncated at length 4
  // must contain every one of them.
  auto r = Recursive(KnowsEdges(), PathSemantics::kWalk,
                     {.max_path_length = 4, .truncate = true});
  ASSERT_TRUE(r.ok());
  for (int i = 1; i <= 14; ++i) {
    EXPECT_TRUE(r->Contains(T3(i))) << "p" << i;
  }
  // Walks of length ≤ 4 over the Knows subgraph: 4 + 5 + 4 + 5 = 18.
  EXPECT_EQ(r->size(), 18u);
}

TEST_F(RecursiveTest, Table3Trail) {
  auto r = Recursive(KnowsEdges(), PathSemantics::kTrail);
  ASSERT_TRUE(r.ok());
  const std::set<int> in_table = {1, 2, 3, 5, 6, 7, 9, 11, 12, 13};
  for (int i = 1; i <= 14; ++i) {
    EXPECT_EQ(r->Contains(T3(i)), in_table.count(i) == 1) << "p" << i;
  }
  // The complete trail set additionally contains (n3,e3,n2) and
  // (n3,e3,n2,e2,n3), which Table 3 (explicitly non-exhaustive) omits.
  EXPECT_TRUE(r->Contains(Path({ids_.n3, ids_.n2}, {ids_.e3})));
  EXPECT_TRUE(
      r->Contains(Path({ids_.n3, ids_.n2, ids_.n3}, {ids_.e3, ids_.e2})));
  EXPECT_EQ(r->size(), 12u);
}

TEST_F(RecursiveTest, Table3Acyclic) {
  auto r = Recursive(KnowsEdges(), PathSemantics::kAcyclic);
  ASSERT_TRUE(r.ok());
  const std::set<int> in_table = {1, 3, 5, 9, 11, 13};
  for (int i = 1; i <= 14; ++i) {
    EXPECT_EQ(r->Contains(T3(i)), in_table.count(i) == 1) << "p" << i;
  }
  // Complete acyclic answer: the 4 edges + 3 two-hop paths.
  EXPECT_EQ(r->size(), 7u);
  EXPECT_TRUE(r->Contains(Path({ids_.n3, ids_.n2}, {ids_.e3})));
}

TEST_F(RecursiveTest, Table3Simple) {
  auto r = Recursive(KnowsEdges(), PathSemantics::kSimple);
  ASSERT_TRUE(r.ok());
  const std::set<int> in_table = {1, 3, 5, 7, 9, 11, 13};
  for (int i = 1; i <= 14; ++i) {
    EXPECT_EQ(r->Contains(T3(i)), in_table.count(i) == 1) << "p" << i;
  }
  // Complete simple answer: 7 acyclic + closed cycles (n2..n2), (n3..n3).
  EXPECT_EQ(r->size(), 9u);
  EXPECT_TRUE(
      r->Contains(Path({ids_.n3, ids_.n2, ids_.n3}, {ids_.e3, ids_.e2})));
}

TEST_F(RecursiveTest, Table3Shortest) {
  auto r = Recursive(KnowsEdges(), PathSemantics::kShortest);
  ASSERT_TRUE(r.ok());
  const std::set<int> in_table = {1, 3, 5, 7, 9, 11, 13};
  for (int i = 1; i <= 14; ++i) {
    EXPECT_EQ(r->Contains(T3(i)), in_table.count(i) == 1) << "p" << i;
  }
  // One shortest path per reachable (s,t) pair here; 9 pairs in total
  // (Table 3's 7 plus (n3,n2) and (n3,n3)).
  EXPECT_EQ(r->size(), 9u);
}

// ---------------------------------------------------------------------------
// Termination and budgets.
// ---------------------------------------------------------------------------
TEST_F(RecursiveTest, WalkOnCyclicInputExhaustsBudget) {
  // §4: "the recursive operator will never halt" — our engines report it.
  auto r = Recursive(KnowsEdges(), PathSemantics::kWalk,
                     {.max_path_length = 64, .truncate = false});
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

TEST_F(RecursiveTest, WalkTruncateReturnsBoundedAnswer) {
  auto r = Recursive(KnowsEdges(), PathSemantics::kWalk,
                     {.max_path_length = 2, .truncate = true});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 9u);  // 4 edges + 5 two-hop walks
  for (const Path& p : *r) EXPECT_LE(p.Len(), 2u);
}

TEST_F(RecursiveTest, WalkTerminatesNaturallyOnAcyclicInput) {
  PropertyGraph chain = MakeChainGraph(6);
  auto r = Recursive(EdgesOf(chain), PathSemantics::kWalk);
  ASSERT_TRUE(r.ok());
  // All subpaths of length ≥ 1 of a 6-node chain: 5+4+3+2+1 = 15.
  EXPECT_EQ(r->size(), 15u);
}

TEST_F(RecursiveTest, MaxPathsBudget) {
  PropertyGraph cycle = MakeCycleGraph(4);
  auto r = Recursive(EdgesOf(cycle), PathSemantics::kWalk,
                     {.max_paths = 10, .truncate = false});
  EXPECT_TRUE(r.status().IsResourceExhausted());
  auto t = Recursive(EdgesOf(cycle), PathSemantics::kWalk,
                     {.max_paths = 10, .truncate = true});
  ASSERT_TRUE(t.ok());
  EXPECT_LE(t->size(), 10u);
}

// ---------------------------------------------------------------------------
// Edge cases.
// ---------------------------------------------------------------------------
TEST_F(RecursiveTest, EmptyBase) {
  for (auto sem :
       {PathSemantics::kWalk, PathSemantics::kTrail, PathSemantics::kAcyclic,
        PathSemantics::kSimple, PathSemantics::kShortest}) {
    for (auto engine : {PhiEngine::kNaive, PhiEngine::kOptimized}) {
      auto r = Recursive(PathSet(), sem, {}, engine);
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(r->empty());
    }
  }
}

TEST_F(RecursiveTest, ZeroLengthBasePathsAreFixpoint) {
  // ϕ over Nodes(G): joins add nothing; the result is Nodes(G) itself.
  PathSet nodes = NodesOf(g_);
  for (auto sem :
       {PathSemantics::kWalk, PathSemantics::kTrail, PathSemantics::kAcyclic,
        PathSemantics::kSimple, PathSemantics::kShortest}) {
    auto r = Recursive(nodes, sem);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, nodes) << PathSemanticsToString(sem);
  }
}

TEST_F(RecursiveTest, MixedZeroAndOneLengthBase) {
  // ϕ over Nodes ∪ KnowsEdges under acyclic semantics: node paths are
  // join-identities, so the answer is Nodes ∪ ϕAcyclic(Knows).
  PathSet base = Union(NodesOf(g_), KnowsEdges());
  auto r = Recursive(base, PathSemantics::kAcyclic);
  ASSERT_TRUE(r.ok());
  auto knows_only = Recursive(KnowsEdges(), PathSemantics::kAcyclic);
  ASSERT_TRUE(knows_only.ok());
  EXPECT_EQ(*r, Union(NodesOf(g_), *knows_only));
}

TEST_F(RecursiveTest, ShortestWithZeroLengthPaths) {
  // With Nodes(G) in the base, the shortest n→n path is the trivial (n).
  PathSet base = Union(NodesOf(g_), KnowsEdges());
  auto r = Recursive(base, PathSemantics::kShortest);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Contains(Path::SingleNode(ids_.n2)));
  // The 2-cycle (n2,e2,n3,e3,n2) is no longer per-pair shortest.
  EXPECT_FALSE(
      r->Contains(Path({ids_.n2, ids_.n3, ids_.n2}, {ids_.e2, ids_.e3})));
}

TEST_F(RecursiveTest, NonTrailBasePathIsFilteredOut) {
  // A base path that itself violates the restrictor must not appear.
  Path bad({ids_.n2, ids_.n3, ids_.n2, ids_.n3},
           {ids_.e2, ids_.e3, ids_.e2});  // repeats e2
  PathSet base;
  base.Insert(bad);
  auto r = Recursive(base, PathSemantics::kTrail);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST_F(RecursiveTest, CompositeBaseUnits) {
  // ϕ over 2-edge units (Likes/Has_creator): lengths are multiples of 2.
  PathSet likes = Select(g_, EdgesOf(g_), *EdgeLabelEq(1, "Likes"));
  PathSet hc = Select(g_, EdgesOf(g_), *EdgeLabelEq(1, "Has_creator"));
  PathSet unit = Join(likes, hc);
  auto r = Recursive(unit, PathSemantics::kSimple);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->empty());
  for (const Path& p : *r) {
    EXPECT_EQ(p.Len() % 2, 0u);
    EXPECT_TRUE(p.IsSimple());
  }
  // path2 of §1 (n1,e8,n6,e11,n3,e7,n7,e10,n4) is a 2-unit composition.
  EXPECT_TRUE(r->Contains(Path({ids_.n1, ids_.n6, ids_.n3, ids_.n7, ids_.n4},
                               {ids_.e8, ids_.e11, ids_.e7, ids_.e10})));
}

// ---------------------------------------------------------------------------
// Differential: naive Definition 4.1 engine ≡ optimized engine.
// ---------------------------------------------------------------------------
using SemParam = ::testing::TestWithParam<PathSemantics>;

TEST_P(SemParam, NaiveEqualsOptimizedOnFigure1) {
  Figure1Ids ids;
  PropertyGraph g = MakeFigure1Graph(&ids);
  PathSet knows = Select(g, EdgesOf(g), *EdgeLabelEq(1, "Knows"));
  EvalLimits limits;
  if (GetParam() == PathSemantics::kWalk) {
    limits.max_path_length = 6;
    limits.truncate = true;
  }
  auto naive = Recursive(knows, GetParam(), limits, PhiEngine::kNaive);
  auto opt = Recursive(knows, GetParam(), limits, PhiEngine::kOptimized);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(*naive, *opt);
}

TEST_P(SemParam, NaiveEqualsOptimizedOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    PropertyGraph g = MakeRandomGraph(8, 14, {"a", "b"}, seed);
    PathSet base = EdgesOf(g);
    EvalLimits limits;
    if (GetParam() == PathSemantics::kWalk) {
      limits.max_path_length = 4;
      limits.truncate = true;
    }
    auto naive = Recursive(base, GetParam(), limits, PhiEngine::kNaive);
    auto opt = Recursive(base, GetParam(), limits, PhiEngine::kOptimized);
    ASSERT_TRUE(naive.ok()) << "seed " << seed;
    ASSERT_TRUE(opt.ok()) << "seed " << seed;
    EXPECT_EQ(*naive, *opt) << "seed " << seed << " sem "
                            << PathSemanticsToString(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSemantics, SemParam,
    ::testing::Values(PathSemantics::kWalk, PathSemantics::kTrail,
                      PathSemantics::kAcyclic, PathSemantics::kSimple,
                      PathSemantics::kShortest),
    [](const ::testing::TestParamInfo<PathSemantics>& info) {
      return PathSemanticsToString(info.param);
    });

// ---------------------------------------------------------------------------
// Semantics-level invariants (property tests over random graphs).
// ---------------------------------------------------------------------------
TEST(RecursivePropertyTest, ContainmentLattice) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    PropertyGraph g = MakeRandomGraph(7, 12, {"a"}, seed);
    PathSet base = EdgesOf(g);
    auto acyclic = Recursive(base, PathSemantics::kAcyclic);
    auto simple = Recursive(base, PathSemantics::kSimple);
    auto trail = Recursive(base, PathSemantics::kTrail);
    auto shortest = Recursive(base, PathSemantics::kShortest);
    ASSERT_TRUE(acyclic.ok() && simple.ok() && trail.ok() && shortest.ok());
    // acyclic ⊆ simple ⊆ trail (repeating a node forces repeating an edge
    // only in the simple→trail direction: a simple path repeats no edge).
    for (const Path& p : *acyclic) EXPECT_TRUE(simple->Contains(p));
    for (const Path& p : *simple) EXPECT_TRUE(p.IsTrail());
    for (const Path& p : *simple) EXPECT_TRUE(trail->Contains(p));
    // Every shortest path is a shortest among walks: minimal per pair.
    for (const Path& a : *shortest) {
      for (const Path& b : *shortest) {
        if (a.First() == b.First() && a.Last() == b.Last()) {
          EXPECT_EQ(a.Len(), b.Len());
        }
      }
    }
  }
}

TEST(RecursivePropertyTest, ShortestAgreesWithTrailMinima) {
  // A shortest walk never repeats an edge (cutting the cycle shortens it),
  // so per-pair minima over trails equal per-pair minima over walks.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    PropertyGraph g = MakeRandomGraph(7, 12, {"a", "b"}, seed);
    PathSet base = EdgesOf(g);
    auto shortest = Recursive(base, PathSemantics::kShortest);
    auto trail = Recursive(base, PathSemantics::kTrail);
    ASSERT_TRUE(shortest.ok() && trail.ok());
    EXPECT_EQ(*shortest, KeepShortestPerEndpointPair(*trail));
  }
}

TEST(RecursivePropertyTest, DiamondChainShortestCountDoubles) {
  // k diamonds → 2^k shortest end-to-end paths; checks all-shortest
  // enumeration, not just one witness.
  for (size_t k : {1u, 2u, 3u, 4u}) {
    PropertyGraph g = MakeDiamondChainGraph(k);
    auto r = Recursive(EdgesOf(g), PathSemantics::kShortest);
    ASSERT_TRUE(r.ok());
    NodeId first = g.FindNodeByProperty("id", Value(int64_t(0)));
    NodeId last = g.FindNodeByProperty("id", Value(int64_t(k)));
    size_t count = 0;
    for (const Path& p : *r) {
      if (p.First() == first && p.Last() == last) {
        ++count;
        EXPECT_EQ(p.Len(), 2 * k);
      }
    }
    EXPECT_EQ(count, size_t(1) << k);
  }
}

TEST(RecursivePropertyTest, TrailBoundedByEdgeCount) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    PropertyGraph g = MakeRandomGraph(5, 9, {"a"}, seed);
    auto r = Recursive(EdgesOf(g), PathSemantics::kTrail);
    ASSERT_TRUE(r.ok());
    for (const Path& p : *r) {
      EXPECT_LE(p.Len(), g.num_edges());
      EXPECT_TRUE(p.IsTrail());
    }
  }
}

TEST(RecursivePropertyTest, AcyclicBoundedByNodeCount) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    PropertyGraph g = MakeRandomGraph(6, 12, {"a"}, seed);
    auto r = Recursive(EdgesOf(g), PathSemantics::kAcyclic);
    ASSERT_TRUE(r.ok());
    for (const Path& p : *r) {
      EXPECT_LT(p.Len(), g.num_nodes());
      EXPECT_TRUE(p.IsAcyclic());
    }
  }
}

TEST(RecursiveTest2, SemanticsNames) {
  EXPECT_STREQ(PathSemanticsToString(PathSemantics::kWalk), "WALK");
  EXPECT_STREQ(PathSemanticsToString(PathSemantics::kTrail), "TRAIL");
  EXPECT_STREQ(PathSemanticsToString(PathSemantics::kAcyclic), "ACYCLIC");
  EXPECT_STREQ(PathSemanticsToString(PathSemantics::kSimple), "SIMPLE");
  EXPECT_STREQ(PathSemanticsToString(PathSemantics::kShortest), "SHORTEST");
}

}  // namespace
}  // namespace pathalg
