// Concurrency stress for the two process-wide sharing surfaces the
// server hands every session: the GraphCatalog (load-once graph store)
// and the shared PlanCache (thread-safe LRU). Unlike server_test.cc's
// protocol-level coverage, these tests hammer the raw components from
// detached ThreadPool tasks — the same execution substrate the real
// server uses for its accept loop and connection handlers — with far
// more contention than the protocol tests generate: mixed hot/cold/bad
// catalog specs racing per-spec latches, and cache traffic sized to
// force continuous LRU eviction during concurrent Get/Put/Clear/stats.
//
// The suite names carry "Stress" so CI's TSan job picks them up (see
// .github/workflows/ci.yml and the tsan test preset): under TSan these
// are the torture tests for the Mutex/CondVar discipline that the
// thread-safety annotations (common/thread_annotations.h) check
// statically.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "engine/plan_cache.h"
#include "gql/query.h"
#include "server/graph_catalog.h"

namespace pathalg {
namespace {

using engine::PlanCache;
using engine::PreparedQuery;
using engine::PreparedQueryPtr;
using server::CatalogEntryPtr;
using server::GraphCatalog;

/// Submits `count` copies of `task` as detached pool tasks and blocks
/// until all have finished. Detached tasks never report completion
/// (ThreadPool::Submit is fire-and-forget by contract), so completion is
/// counted here.
void RunOnPool(size_t count, const std::function<void(size_t)>& task) {
  auto done = std::make_shared<std::atomic<size_t>>(0);
  for (size_t i = 0; i < count; ++i) {
    ThreadPool::Shared().Submit([task, done, i] {
      task(i);
      done->fetch_add(1, std::memory_order_release);
    });
  }
  while (done->load(std::memory_order_acquire) < count) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// ---------------------------------------------------------------------------
// GraphCatalog under task-level contention
// ---------------------------------------------------------------------------

TEST(CatalogStressTest, MixedSpecsLoadOncePerSpecUnderContention) {
  GraphCatalog catalog;
  // Three distinct good specs, interleaved so every spec's per-entry
  // latch sees racers while other specs' Gets run concurrently.
  const std::vector<std::string> specs = {
      "skewed persons=40 seed=3",
      "social persons=30 seed=7",
      "grid",
  };
  constexpr size_t kTasks = 48;
  std::vector<CatalogEntryPtr> got(kTasks);
  RunOnPool(kTasks, [&](size_t i) {
    auto e = catalog.Get(specs[i % specs.size()]);
    if (e.ok()) got[i] = *e;
  });
  // Every Get succeeded, and all Gets of one spec share one instance.
  for (size_t i = 0; i < kTasks; ++i) {
    ASSERT_NE(got[i], nullptr) << "task " << i;
    EXPECT_EQ(got[i].get(), got[i % specs.size()].get());
  }
  EXPECT_EQ(catalog.counters().loads, specs.size());
  EXPECT_EQ(catalog.counters().hits, kTasks - specs.size());
  EXPECT_EQ(catalog.counters().errors, 0u);
  EXPECT_EQ(catalog.size(), specs.size());
}

TEST(CatalogStressTest, BadSpecsErrorConcurrentlyAndAreNeverCached) {
  GraphCatalog catalog;
  constexpr size_t kTasks = 32;
  std::atomic<size_t> errors{0};
  std::atomic<size_t> good{0};
  RunOnPool(kTasks, [&](size_t i) {
    if (i % 2 == 0) {
      auto e = catalog.Get("no-such-generator");
      if (!e.ok()) errors.fetch_add(1);
    } else {
      auto e = catalog.Get("cycle");
      if (e.ok() && *e != nullptr) good.fetch_add(1);
    }
  });
  // Every bad Get errored (whether it raced as the loader or as a
  // waiter on a failing load), every good Get succeeded, and the failed
  // spec left nothing behind: only the good graph is in the catalog.
  EXPECT_EQ(errors.load(), kTasks / 2);
  EXPECT_EQ(good.load(), kTasks / 2);
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.counters().loads, 1u);
  EXPECT_GE(catalog.counters().errors, 1u);
  // The error latch was removed each time: a retry after the storm still
  // errors (not a poisoned cache hit) and a fresh good Get still shares.
  EXPECT_FALSE(catalog.Get("no-such-generator").ok());
  EXPECT_TRUE(catalog.Get("cycle").ok());
}

// ---------------------------------------------------------------------------
// PlanCache under task-level contention
// ---------------------------------------------------------------------------

/// One shared prepared entry: contents never matter here (the cache
/// stores opaque shared_ptrs), contention on the map/list/stats does.
PreparedQueryPtr MakeEntry() {
  auto prepared = std::make_shared<PreparedQuery>();
  auto parsed = Query::Parse("MATCH ANY SHORTEST WALK p = (x)-[:Knows+]->(y)");
  EXPECT_TRUE(parsed.ok());
  if (parsed.ok()) prepared->query = std::move(parsed).value();
  prepared->effective_plan = prepared->query.plan();
  return prepared;
}

TEST(PlanCacheStressTest, EvictionChurnKeepsInvariantsUnderContention) {
  // Capacity far below the working set: every task's Put storm forces
  // evictions while other tasks Get, Clear, and snapshot stats.
  constexpr size_t kCapacity = 8;
  constexpr size_t kTasks = 24;
  constexpr size_t kOpsPerTask = 200;
  constexpr size_t kKeySpace = 64;
  PlanCache cache(kCapacity);
  const PreparedQueryPtr entry = MakeEntry();
  std::atomic<uint64_t> hits_seen{0};
  RunOnPool(kTasks, [&](size_t t) {
    for (size_t op = 0; op < kOpsPerTask; ++op) {
      const std::string key =
          "q" + std::to_string((t * 7 + op * 13) % kKeySpace);
      switch ((t + op) % 4) {
        case 0:
          cache.Put(key, entry);
          break;
        case 1: {
          PreparedQueryPtr got = cache.Get(key);
          // A hit must hand back a live entry even if another task
          // evicts or clears it this instant (entries are shared_ptr).
          if (got != nullptr) {
            hits_seen.fetch_add(1);
            EXPECT_NE(got->effective_plan, nullptr);
          }
          break;
        }
        case 2: {
          engine::PlanCacheStats stats = cache.stats();
          // Counter coherence under the lock: a snapshot can never show
          // more evictions than insertions.
          EXPECT_LE(stats.evictions, stats.insertions);
          EXPECT_LE(cache.size(), kCapacity);
          break;
        }
        case 3:
          if (op % 50 == 0) {
            cache.Clear();
          } else {
            cache.Put(key, entry);
          }
          break;
      }
    }
  });
  const engine::PlanCacheStats stats = cache.stats();
  EXPECT_LE(cache.size(), kCapacity);
  EXPECT_LE(stats.evictions, stats.insertions);
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_EQ(stats.hits, hits_seen.load());
}

TEST(PlanCacheStressTest, SharedCatalogAndCacheTogetherUnderLoad) {
  // The server's actual sharing shape: one catalog + one cache touched
  // by every "session" task. Tasks alternate graph lookups and plan
  // cache traffic so both mutexes interleave within each task — the
  // cross-component schedule the protocol tests only lightly exercise.
  GraphCatalog catalog;
  PlanCache cache(4);
  const PreparedQueryPtr entry = MakeEntry();
  constexpr size_t kTasks = 32;
  std::atomic<size_t> graph_failures{0};
  RunOnPool(kTasks, [&](size_t t) {
    const std::string spec = (t % 2 == 0) ? "diamond" : "chain";
    for (size_t op = 0; op < 50; ++op) {
      auto e = catalog.Get(spec);
      if (!e.ok() || *e == nullptr || (*e)->graph == nullptr) {
        graph_failures.fetch_add(1);
        continue;
      }
      const std::string key = "plan" + std::to_string(op % 10);
      if (cache.Get(key) == nullptr) cache.Put(key, entry);
    }
  });
  EXPECT_EQ(graph_failures.load(), 0u);
  EXPECT_EQ(catalog.counters().loads, 2u);
  EXPECT_LE(cache.size(), 4u);
}

}  // namespace
}  // namespace pathalg
