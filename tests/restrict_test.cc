// Tests for the ρ (whole-path restrictor) extension operator and the
// optimizer rules added around it: restrict-elim (semantics lattice),
// join-identity, recursive-idempotent, and σ pushdown through ∩ / − / ρ.

#include <gtest/gtest.h>

#include <algorithm>

#include "algebra/core_ops.h"
#include "path/path_ops.h"
#include "plan/evaluator.h"
#include "plan/optimizer.h"
#include "workload/figure1.h"

namespace pathalg {
namespace {

PlanPtr KnowsEdgesPlan() {
  return PlanNode::Select(EdgeLabelEq(1, "Knows"), PlanNode::EdgesScan());
}

bool Applied(const OptimizeResult& r, std::string_view rule) {
  return std::find(r.applied.begin(), r.applied.end(), rule) !=
         r.applied.end();
}

class RestrictTest : public ::testing::Test {
 protected:
  void SetUp() override { g_ = MakeFigure1Graph(&ids_); }
  PropertyGraph g_;
  Figure1Ids ids_;
};

TEST_F(RestrictTest, RestrictPathsFiltersBySemantics) {
  PathSet walks = *Recursive(
      Select(g_, EdgesOf(g_), *EdgeLabelEq(1, "Knows")),
      PathSemantics::kWalk, {.max_path_length = 4, .truncate = true});
  EXPECT_EQ(walks.size(), 18u);
  EXPECT_EQ(RestrictPaths(walks, PathSemantics::kWalk), walks);
  PathSet trails = RestrictPaths(walks, PathSemantics::kTrail);
  for (const Path& p : trails) EXPECT_TRUE(p.IsTrail());
  EXPECT_EQ(trails.size(), 12u);  // all 12 trails have length ≤ 4
  PathSet acyclic = RestrictPaths(walks, PathSemantics::kAcyclic);
  EXPECT_EQ(acyclic.size(), 7u);
  PathSet simple = RestrictPaths(walks, PathSemantics::kSimple);
  EXPECT_EQ(simple.size(), 9u);
  PathSet shortest = RestrictPaths(walks, PathSemantics::kShortest);
  EXPECT_EQ(shortest.size(), 9u);
}

TEST_F(RestrictTest, RestrictPlanNodeEvaluates) {
  // ρTrail over a bounded ϕWalk = the length-bounded trail answer.
  PlanPtr plan = PlanNode::Restrict(
      PathSemantics::kTrail,
      PlanNode::Recursive(PathSemantics::kWalk, KnowsEdgesPlan()));
  EvalOptions opts;
  opts.limits.max_path_length = 4;
  opts.limits.truncate = true;
  auto r = Evaluate(g_, plan, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 12u);
  EXPECT_EQ(plan->ToAlgebraString(),
            "ρ[TRAIL](ϕ[WALK](σ[label(edge(1)) = \"Knows\"](Edges(G))))");
  EXPECT_NE(plan->ToTreeString().find("Restrict (TRAIL)"),
            std::string::npos);
}

TEST_F(RestrictTest, RestrictValidatesTyping) {
  PlanPtr bad = PlanNode::Restrict(
      PathSemantics::kTrail,
      PlanNode::GroupBy(GroupKey::kST, PlanNode::EdgesScan()));
  EXPECT_TRUE(bad->Validate().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Optimizer rules.
// ---------------------------------------------------------------------------
TEST_F(RestrictTest, RestrictElimOnImpliedSemantics) {
  // ρTrail(ϕAcyclic(x)) → ϕAcyclic(x): acyclic paths never repeat edges.
  PlanPtr plan = PlanNode::Restrict(
      PathSemantics::kTrail,
      PlanNode::Recursive(PathSemantics::kAcyclic, KnowsEdgesPlan()));
  OptimizeResult opt = Optimize(plan);
  EXPECT_TRUE(Applied(opt, "restrict-elim"));
  EXPECT_EQ(opt.plan->kind(), PlanKind::kRecursive);

  // ρSimple(ϕAcyclic(x)) → eliminated; ρAcyclic(ϕSimple(x)) → kept.
  EXPECT_TRUE(Applied(
      Optimize(PlanNode::Restrict(
          PathSemantics::kSimple,
          PlanNode::Recursive(PathSemantics::kAcyclic, KnowsEdgesPlan()))),
      "restrict-elim"));
  OptimizeResult kept = Optimize(PlanNode::Restrict(
      PathSemantics::kAcyclic,
      PlanNode::Recursive(PathSemantics::kSimple, KnowsEdgesPlan())));
  EXPECT_EQ(kept.plan->kind(), PlanKind::kRestrict);
}

TEST_F(RestrictTest, RestrictElimKeptIsNotANoop) {
  // ρAcyclic over ϕSimple genuinely removes closed cycles — verify the
  // optimizer was right to keep it.
  PlanPtr plan = PlanNode::Restrict(
      PathSemantics::kAcyclic,
      PlanNode::Recursive(PathSemantics::kSimple, KnowsEdgesPlan()));
  auto restricted = Evaluate(g_, plan);
  auto unrestricted = Evaluate(
      g_, PlanNode::Recursive(PathSemantics::kSimple, KnowsEdgesPlan()));
  ASSERT_TRUE(restricted.ok() && unrestricted.ok());
  EXPECT_EQ(restricted->size(), 7u);
  EXPECT_EQ(unrestricted->size(), 9u);
}

TEST_F(RestrictTest, RestrictWalkIsIdentity) {
  PlanPtr plan = PlanNode::Restrict(
      PathSemantics::kWalk,
      PlanNode::Join(KnowsEdgesPlan(), KnowsEdgesPlan()));
  OptimizeResult opt = Optimize(plan);
  EXPECT_TRUE(Applied(opt, "restrict-elim"));
  EXPECT_EQ(opt.plan->kind(), PlanKind::kJoin);
}

TEST_F(RestrictTest, RestrictOverAtomsEliminated) {
  // Single edges satisfy every restrictor (but not ρShortest, which is
  // set-level: parallel edges between a pair are all minimal, yet a
  // 0-length path could displace them — only safe without shortest).
  PlanPtr plan =
      PlanNode::Restrict(PathSemantics::kSimple, KnowsEdgesPlan());
  EXPECT_TRUE(Applied(Optimize(plan), "restrict-elim"));
  PlanPtr shortest =
      PlanNode::Restrict(PathSemantics::kShortest,
                         PlanNode::Union(PlanNode::NodesScan(),
                                         PlanNode::EdgesScan()));
  EXPECT_FALSE(Applied(Optimize(shortest), "restrict-elim"));
}

TEST_F(RestrictTest, RestrictAcyclicOverAtomsKeptBecauseOfSelfLoops) {
  // ρAcyclic over Edges(G) is NOT a no-op: self-loop edges are length-1
  // paths that repeat their node.
  GraphBuilder b;
  NodeId n = b.AddNode("N");
  NodeId m = b.AddNode("N");
  ASSERT_TRUE(b.AddEdge(n, n, "a").ok());  // self-loop
  ASSERT_TRUE(b.AddEdge(n, m, "a").ok());
  PropertyGraph g = b.Build();
  PlanPtr plan =
      PlanNode::Restrict(PathSemantics::kAcyclic, PlanNode::EdgesScan());
  OptimizeResult opt = Optimize(plan);
  EXPECT_FALSE(Applied(opt, "restrict-elim"));
  auto r = Evaluate(g, opt.plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);  // only (n,e2,m); the self-loop is filtered
  // ρTrail / ρSimple over atoms remain eliminable and correct with the
  // self-loop present.
  for (PathSemantics sem :
       {PathSemantics::kTrail, PathSemantics::kSimple}) {
    PlanPtr p2 = PlanNode::Restrict(sem, PlanNode::EdgesScan());
    OptimizeResult o2 = Optimize(p2);
    EXPECT_TRUE(Applied(o2, "restrict-elim")) << PathSemanticsToString(sem);
    auto before = Evaluate(g, p2);
    auto after = Evaluate(g, o2.plan);
    ASSERT_TRUE(before.ok() && after.ok());
    EXPECT_EQ(*before, *after) << PathSemanticsToString(sem);
  }
}

TEST_F(RestrictTest, JoinIdentityWithNodes) {
  PlanPtr plan = PlanNode::Join(KnowsEdgesPlan(), PlanNode::NodesScan());
  OptimizeResult opt = Optimize(plan);
  EXPECT_TRUE(Applied(opt, "join-identity"));
  EXPECT_TRUE(opt.plan->Equals(*KnowsEdgesPlan()));
  PlanPtr plan2 = PlanNode::Join(PlanNode::NodesScan(), KnowsEdgesPlan());
  EXPECT_TRUE(Optimize(plan2).plan->Equals(*KnowsEdgesPlan()));
  // And it is actually an identity:
  auto a = Evaluate(g_, plan);
  auto b = Evaluate(g_, KnowsEdgesPlan());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_F(RestrictTest, RecursiveIdempotent) {
  for (PathSemantics sem :
       {PathSemantics::kTrail, PathSemantics::kAcyclic,
        PathSemantics::kSimple, PathSemantics::kShortest}) {
    PlanPtr twice = PlanNode::Recursive(
        sem, PlanNode::Recursive(sem, KnowsEdgesPlan()));
    OptimizeResult opt = Optimize(twice);
    EXPECT_TRUE(Applied(opt, "recursive-idempotent"))
        << PathSemanticsToString(sem);
    // Semantics check: evaluating ϕ twice equals once.
    auto once = Evaluate(g_, PlanNode::Recursive(sem, KnowsEdgesPlan()));
    auto double_eval = Evaluate(g_, twice);
    ASSERT_TRUE(once.ok() && double_eval.ok());
    EXPECT_EQ(*once, *double_eval) << PathSemanticsToString(sem);
  }
  // Different semantics do not merge.
  PlanPtr mixed = PlanNode::Recursive(
      PathSemantics::kTrail,
      PlanNode::Recursive(PathSemantics::kAcyclic, KnowsEdgesPlan()));
  EXPECT_FALSE(Applied(Optimize(mixed), "recursive-idempotent"));
}

TEST_F(RestrictTest, PushdownThroughIntersectAndDifference) {
  auto likes =
      PlanNode::Select(EdgeLabelEq(1, "Likes"), PlanNode::EdgesScan());
  PlanPtr isect = PlanNode::Select(
      FirstLabelEq("Person"),
      PlanNode::Intersect(PlanNode::EdgesScan(), likes));
  OptimizeResult opt = Optimize(isect);
  EXPECT_TRUE(Applied(opt, "select-pushdown"));
  EXPECT_EQ(opt.plan->kind(), PlanKind::kIntersect);
  auto before = Evaluate(g_, isect);
  auto after = Evaluate(g_, opt.plan);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(*before, *after);

  PlanPtr diff = PlanNode::Select(
      FirstLabelEq("Person"),
      PlanNode::Difference(PlanNode::EdgesScan(), likes));
  OptimizeResult opt2 = Optimize(diff);
  EXPECT_EQ(opt2.plan->kind(), PlanKind::kDifference);
  auto before2 = Evaluate(g_, diff);
  auto after2 = Evaluate(g_, opt2.plan);
  ASSERT_TRUE(before2.ok() && after2.ok());
  EXPECT_EQ(*before2, *after2);
}

TEST_F(RestrictTest, PushdownThroughNonShortestRestrict) {
  PlanPtr plan = PlanNode::Select(
      FirstPropEq("name", Value("Moe")),
      PlanNode::Restrict(
          PathSemantics::kTrail,
          PlanNode::Join(KnowsEdgesPlan(), KnowsEdgesPlan())));
  OptimizeResult opt = Optimize(plan);
  // σ moved below ρ (and further into the join).
  EXPECT_EQ(opt.plan->kind(), PlanKind::kRestrict);
  auto before = Evaluate(g_, plan);
  auto after = Evaluate(g_, opt.plan);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(*before, *after);

  // ρShortest blocks the pushdown: σ then minima ≠ minima then σ.
  PlanPtr blocked = PlanNode::Select(
      LenEq(2), PlanNode::Restrict(
                    PathSemantics::kShortest,
                    PlanNode::Join(KnowsEdgesPlan(), KnowsEdgesPlan())));
  OptimizeResult opt2 = Optimize(blocked);
  EXPECT_EQ(opt2.plan->kind(), PlanKind::kSelect);
  EXPECT_EQ(opt2.plan->child()->kind(), PlanKind::kRestrict);
}

}  // namespace
}  // namespace pathalg
