// Unit tests for selection conditions (§3.1): every simple access kind,
// every comparator (footnote 1), complex conditions, missing-data
// semantics, printing and the optimizer analysis helpers.

#include <gtest/gtest.h>

#include "algebra/condition.h"
#include "workload/figure1.h"

namespace pathalg {
namespace {

class ConditionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = MakeFigure1Graph(&ids_);
    // p = (n1, e1, n2, e2, n3): Moe -Knows-> Homer -Knows-> Lisa.
    p_ = Path({ids_.n1, ids_.n2, ids_.n3}, {ids_.e1, ids_.e2});
  }
  PropertyGraph g_;
  Figure1Ids ids_;
  Path p_;
};

TEST_F(ConditionTest, NodeLabelAt) {
  EXPECT_TRUE(NodeLabelEq(1, "Person")->Evaluate(g_, p_));
  EXPECT_FALSE(NodeLabelEq(1, "Message")->Evaluate(g_, p_));
  EXPECT_FALSE(NodeLabelEq(9, "Person")->Evaluate(g_, p_));  // out of range
}

TEST_F(ConditionTest, EdgeLabelAt) {
  EXPECT_TRUE(EdgeLabelEq(1, "Knows")->Evaluate(g_, p_));
  EXPECT_TRUE(EdgeLabelEq(2, "Knows")->Evaluate(g_, p_));
  EXPECT_FALSE(EdgeLabelEq(1, "Likes")->Evaluate(g_, p_));
  EXPECT_FALSE(EdgeLabelEq(3, "Knows")->Evaluate(g_, p_));  // out of range
}

TEST_F(ConditionTest, FirstLastLabel) {
  EXPECT_TRUE(FirstLabelEq("Person")->Evaluate(g_, p_));
  EXPECT_TRUE(LastLabelEq("Person")->Evaluate(g_, p_));
  Path msg({ids_.n1, ids_.n6}, {ids_.e8});
  EXPECT_TRUE(LastLabelEq("Message")->Evaluate(g_, msg));
  EXPECT_FALSE(LastLabelEq("Person")->Evaluate(g_, msg));
}

TEST_F(ConditionTest, FirstLastProp) {
  EXPECT_TRUE(FirstPropEq("name", Value("Moe"))->Evaluate(g_, p_));
  EXPECT_FALSE(FirstPropEq("name", Value("Apu"))->Evaluate(g_, p_));
  EXPECT_TRUE(LastPropEq("name", Value("Lisa"))->Evaluate(g_, p_));
  // Missing property: false for = and for != (documented semantics).
  EXPECT_FALSE(FirstPropEq("age", Value(30))->Evaluate(g_, p_));
  auto ne = Condition::MakeSimple(AccessKind::kFirstProp, 0, "age",
                                  CompareOp::kNe, Value(30));
  EXPECT_FALSE(ne->Evaluate(g_, p_));
}

TEST_F(ConditionTest, PositionalProps) {
  EXPECT_TRUE(NodePropEq(2, "name", Value("Homer"))->Evaluate(g_, p_));
  EXPECT_FALSE(NodePropEq(2, "name", Value("Lisa"))->Evaluate(g_, p_));
  EXPECT_FALSE(NodePropEq(5, "name", Value("Homer"))->Evaluate(g_, p_));
  EXPECT_FALSE(EdgePropEq(1, "since", Value(2020))->Evaluate(g_, p_));
}

TEST_F(ConditionTest, LenComparators) {
  EXPECT_TRUE(LenEq(2)->Evaluate(g_, p_));
  EXPECT_FALSE(LenEq(3)->Evaluate(g_, p_));
  EXPECT_TRUE(LenCompare(CompareOp::kLt, 3)->Evaluate(g_, p_));
  EXPECT_TRUE(LenCompare(CompareOp::kLe, 2)->Evaluate(g_, p_));
  EXPECT_FALSE(LenCompare(CompareOp::kGt, 2)->Evaluate(g_, p_));
  EXPECT_TRUE(LenCompare(CompareOp::kGe, 2)->Evaluate(g_, p_));
  EXPECT_TRUE(LenCompare(CompareOp::kNe, 5)->Evaluate(g_, p_));
}

TEST_F(ConditionTest, ValueComparatorsOnProperties) {
  GraphBuilder b;
  NodeId n = b.AddNode("Person", {{"age", Value(30)}});
  PropertyGraph g = b.Build();
  Path p = Path::SingleNode(n);
  auto age = [&](CompareOp op, int64_t v) {
    return Condition::MakeSimple(AccessKind::kFirstProp, 0, "age", op,
                                 Value(v))
        ->Evaluate(g, p);
  };
  EXPECT_TRUE(age(CompareOp::kEq, 30));
  EXPECT_TRUE(age(CompareOp::kNe, 31));
  EXPECT_TRUE(age(CompareOp::kLt, 31));
  EXPECT_FALSE(age(CompareOp::kLt, 30));
  EXPECT_TRUE(age(CompareOp::kLe, 30));
  EXPECT_TRUE(age(CompareOp::kGt, 29));
  EXPECT_TRUE(age(CompareOp::kGe, 30));
  EXPECT_FALSE(age(CompareOp::kGe, 31));
}

TEST_F(ConditionTest, ComplexConditions) {
  auto both = Condition::And(FirstPropEq("name", Value("Moe")),
                             LastPropEq("name", Value("Lisa")));
  EXPECT_TRUE(both->Evaluate(g_, p_));
  auto either = Condition::Or(FirstPropEq("name", Value("Apu")),
                              LastPropEq("name", Value("Lisa")));
  EXPECT_TRUE(either->Evaluate(g_, p_));
  auto neither = Condition::Or(FirstPropEq("name", Value("Apu")),
                               LastPropEq("name", Value("Apu")));
  EXPECT_FALSE(neither->Evaluate(g_, p_));
  EXPECT_TRUE(Condition::Not(neither)->Evaluate(g_, p_));
  EXPECT_FALSE(Condition::Not(both)->Evaluate(g_, p_));
}

TEST_F(ConditionTest, ToStringMatchesPaperSyntax) {
  EXPECT_EQ(EdgeLabelEq(1, "Knows")->ToString(),
            "label(edge(1)) = \"Knows\"");
  EXPECT_EQ(FirstPropEq("name", Value("Moe"))->ToString(),
            "first.name = \"Moe\"");
  EXPECT_EQ(LenEq(3)->ToString(), "len() = 3");
  EXPECT_EQ(NodeLabelEq(2, "Person")->ToString(),
            "label(node(2)) = \"Person\"");
  EXPECT_EQ(Condition::And(FirstPropEq("name", Value("Moe")),
                           LastPropEq("name", Value("Apu")))
                ->ToString(),
            "(first.name = \"Moe\" AND last.name = \"Apu\")");
  EXPECT_EQ(Condition::Not(LenEq(0))->ToString(), "NOT (len() = 0)");
  EXPECT_EQ(LenCompare(CompareOp::kGe, 2)->ToString(), "len() >= 2");
}

TEST_F(ConditionTest, StructuralEquality) {
  EXPECT_TRUE(EdgeLabelEq(1, "Knows")->Equals(*EdgeLabelEq(1, "Knows")));
  EXPECT_FALSE(EdgeLabelEq(1, "Knows")->Equals(*EdgeLabelEq(2, "Knows")));
  EXPECT_FALSE(EdgeLabelEq(1, "Knows")->Equals(*EdgeLabelEq(1, "Likes")));
  auto a = Condition::And(LenEq(1), LenEq(2));
  auto b = Condition::And(LenEq(1), LenEq(2));
  auto c = Condition::Or(LenEq(1), LenEq(2));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
}

TEST_F(ConditionTest, AnalysisFirstLast) {
  EXPECT_TRUE(RefersOnlyToFirstNode(*FirstPropEq("name", Value("Moe"))));
  EXPECT_TRUE(RefersOnlyToFirstNode(*NodeLabelEq(1, "Person")));
  EXPECT_TRUE(RefersOnlyToFirstNode(*NodePropEq(1, "name", Value("Moe"))));
  EXPECT_FALSE(RefersOnlyToFirstNode(*NodeLabelEq(2, "Person")));
  EXPECT_FALSE(RefersOnlyToFirstNode(*LastPropEq("name", Value("Apu"))));
  EXPECT_FALSE(RefersOnlyToFirstNode(*EdgeLabelEq(1, "Knows")));
  EXPECT_TRUE(RefersOnlyToFirstNode(*Condition::And(
      FirstPropEq("name", Value("Moe")), FirstLabelEq("Person"))));
  EXPECT_FALSE(RefersOnlyToFirstNode(*Condition::And(
      FirstPropEq("name", Value("Moe")), LastLabelEq("Person"))));

  EXPECT_TRUE(RefersOnlyToLastNode(*LastPropEq("name", Value("Apu"))));
  EXPECT_TRUE(RefersOnlyToLastNode(*LastLabelEq("Person")));
  EXPECT_FALSE(RefersOnlyToLastNode(*FirstLabelEq("Person")));
  EXPECT_FALSE(RefersOnlyToLastNode(*LenEq(1)));
}

TEST_F(ConditionTest, AnalysisLenAndPositions) {
  EXPECT_TRUE(UsesLen(*LenEq(1)));
  EXPECT_TRUE(UsesLen(*Condition::And(FirstLabelEq("x"), LenEq(1))));
  EXPECT_FALSE(UsesLen(*EdgeLabelEq(1, "Knows")));

  EXPECT_EQ(MaxNodePosition(*NodeLabelEq(3, "x"), 99), 3u);
  EXPECT_EQ(MaxNodePosition(*FirstLabelEq("x"), 99), 1u);
  EXPECT_EQ(MaxNodePosition(*LastLabelEq("x"), 99), 99u);  // dynamic
  EXPECT_EQ(MaxNodePosition(
                *Condition::And(NodeLabelEq(2, "x"), NodePropEq(5, "p", 1)),
                99),
            5u);
  EXPECT_EQ(MaxEdgePosition(*EdgeLabelEq(4, "x"), 99), 4u);
  EXPECT_EQ(MaxEdgePosition(*FirstLabelEq("x"), 99), 0u);
  EXPECT_EQ(MaxEdgePosition(*LenEq(1), 99), 99u);  // dynamic
}

TEST_F(ConditionTest, UnlabelledObjectsNeverMatchLabelConditions) {
  GraphBuilder b;
  NodeId a = b.AddNode();  // no label
  NodeId c = b.AddNode();
  auto e = b.AddEdge(a, c);
  ASSERT_TRUE(e.ok());
  PropertyGraph g = b.Build();
  Path p = Path::EdgeOf(g, *e);
  EXPECT_FALSE(FirstLabelEq("Person")->Evaluate(g, p));
  EXPECT_FALSE(EdgeLabelEq(1, "Knows")->Evaluate(g, p));
  // Negation of a failed access is still false (missing-data semantics).
  EXPECT_FALSE(Condition::MakeSimple(AccessKind::kEdgeLabel, 1, {},
                                     CompareOp::kNe, Value("Knows"))
                   ->Evaluate(g, p));
}

}  // namespace
}  // namespace pathalg
