// Tests for the footnote-1 condition built-ins: CONTAINS / STARTS WITH
// (the substr family) and EXISTS (bound), through the C++ factories, the
// WHERE parser, and end-to-end queries.

#include <gtest/gtest.h>

#include "gql/query.h"
#include "workload/figure1.h"

namespace pathalg {
namespace {

class BuiltinConditionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = MakeFigure1Graph(&ids_);
    moe_ = Path::SingleNode(ids_.n1);
    msg_ = Path::SingleNode(ids_.n5);  // content = "I am so smart, SMRT"
  }
  PropertyGraph g_;
  Figure1Ids ids_;
  Path moe_, msg_;
};

TEST_F(BuiltinConditionTest, Contains) {
  EXPECT_TRUE(FirstPropContains("name", "oe")->Evaluate(g_, moe_));
  EXPECT_TRUE(FirstPropContains("name", "Moe")->Evaluate(g_, moe_));
  EXPECT_FALSE(FirstPropContains("name", "Apu")->Evaluate(g_, moe_));
  EXPECT_TRUE(FirstPropContains("content", "SMRT")->Evaluate(g_, msg_));
  // Missing property: false.
  EXPECT_FALSE(FirstPropContains("age", "3")->Evaluate(g_, moe_));
  // Non-string value vs CONTAINS: false, not a crash.
  GraphBuilder b;
  NodeId n = b.AddNode("X", {{"v", Value(42)}});
  PropertyGraph g = b.Build();
  EXPECT_FALSE(
      FirstPropContains("v", "4")->Evaluate(g, Path::SingleNode(n)));
}

TEST_F(BuiltinConditionTest, StartsWith) {
  auto starts = Condition::MakeSimple(AccessKind::kFirstProp, 0, "name",
                                      CompareOp::kStartsWith, Value("Mo"));
  EXPECT_TRUE(starts->Evaluate(g_, moe_));
  auto not_start = Condition::MakeSimple(AccessKind::kFirstProp, 0, "name",
                                         CompareOp::kStartsWith,
                                         Value("oe"));
  EXPECT_FALSE(not_start->Evaluate(g_, moe_));
}

TEST_F(BuiltinConditionTest, Exists) {
  EXPECT_TRUE(FirstPropExists("name")->Evaluate(g_, moe_));
  EXPECT_FALSE(FirstPropExists("age")->Evaluate(g_, moe_));
  EXPECT_TRUE(FirstPropExists("content")->Evaluate(g_, msg_));
  // NOT EXISTS works as "not bound".
  EXPECT_TRUE(
      Condition::Not(FirstPropExists("age"))->Evaluate(g_, moe_));
  Path p({ids_.n1, ids_.n2}, {ids_.e1});
  EXPECT_TRUE(LastPropExists("name")->Evaluate(g_, p));
}

TEST_F(BuiltinConditionTest, ToStringForms) {
  EXPECT_EQ(FirstPropContains("name", "oe")->ToString(),
            "first.name CONTAINS \"oe\"");
  EXPECT_EQ(FirstPropExists("name")->ToString(), "first.name EXISTS");
  auto sw = Condition::MakeSimple(AccessKind::kLastProp, 0, "name",
                                  CompareOp::kStartsWith, Value("A"));
  EXPECT_EQ(sw->ToString(), "last.name STARTS WITH \"A\"");
}

TEST_F(BuiltinConditionTest, ParserAcceptsBuiltins) {
  auto q = ParseQuery(
      "MATCH ALL TRAIL p = (x)-[:Knows+]->(y) "
      "WHERE first.name CONTAINS \"o\" AND last.name EXISTS "
      "AND NOT (first.name STARTS WITH \"A\")");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_NE(q->where, nullptr);
  EXPECT_EQ(q->where->ToString(),
            "((first.name CONTAINS \"o\" AND last.name EXISTS) AND "
            "NOT (first.name STARTS WITH \"A\"))");
}

TEST_F(BuiltinConditionTest, EndToEndQueryWithBuiltins) {
  // Persons whose name contains "o" knowing someone with a bound name:
  // Moe and Homer qualify as sources.
  auto r = ExecuteQuery(g_,
                        "MATCH ALL WALK p = (x)-[:Knows]->(y) "
                        "WHERE first.name CONTAINS \"o\" "
                        "AND last.name EXISTS");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Knows edges from {Moe, Homer}: e1 (Moe→Homer), e2 (Homer→Lisa),
  // e4 (Homer→Apu).
  EXPECT_EQ(r->size(), 3u);
  auto r2 = ExecuteQuery(g_,
                         "MATCH ALL WALK p = (x)-[:Likes]->(y) "
                         "WHERE last.content CONTAINS \"Moe\"");
  ASSERT_TRUE(r2.ok());
  // Likes edges into n6 ("Flaming Moe's tonight"): e8 only.
  EXPECT_EQ(r2->size(), 1u);
  auto r3 = ExecuteQuery(g_,
                         "MATCH ALL WALK p = (x)-[:Knows]->(y) "
                         "WHERE first.name STARTS WITH \"L\"");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->size(), 1u);  // Lisa knows Homer (e3)
}

TEST_F(BuiltinConditionTest, ParserErrorsOnMalformedBuiltins) {
  EXPECT_TRUE(ParseQuery("MATCH p = (x)-[:a]->(y) WHERE first.name STARTS")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(
      ParseQuery("MATCH p = (x)-[:a]->(y) WHERE first.name CONTAINS")
          .status()
          .IsParseError());
}

}  // namespace
}  // namespace pathalg
